// The Hermes service daemon / demo.
//
// With no arguments, runs the in-process smoke demo: one
// `service::Server` owning a shared maritime MOD, four concurrent client
// sessions issuing S2T_MEMBERS / RANGE / QUT statements, and a writer
// session streaming INSERTs through the background ingest worker — the
// embedded analogue of many psql clients against Hermes@PostgreSQL while
// data arrives. Exits non-zero if any statement fails or any reader
// observes a non-prefix state, so CI runs it as an end-to-end smoke test.
//
// With `--port=N` (and optionally `--listen=ADDR`, default loopback), it
// becomes a real daemon: the same seeded server fronted by the TCP wire
// protocol (`net::NetServer`), serving until SIGINT/SIGTERM. Shutdown is
// clean — stop accepting, finish in-flight statements, drain the ingest
// queue (FLUSH), then stop the service.
//
//   hermes_serve --port=7878
//   hermes_serve --listen=0.0.0.0 --port=7878 --ships=64
//
// With `--wal-dir=DIR` the daemon is durable: every acked INSERT is
// write-ahead-logged with group commit, `CHECKPOINT` persists the
// catalog, and a restart pointing at the same directory recovers the
// acked state (the demo fleet is only seeded on first boot, never over a
// recovered catalog).

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/maritime.h"
#include "net/net_server.h"
#include "service/client_session.h"
#include "service/server.h"
#include "storage/env.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int /*sig*/) { g_stop = 1; }

/// Generates the demo fleet and starts a seeded service server.
hermes::StatusOr<std::unique_ptr<hermes::service::Server>> StartSeeded(
    size_t num_ships, const std::string& wal_dir,
    hermes::traj::TrajectoryStore* ships_out) {
  using namespace hermes;
  datagen::MaritimeScenarioParams mp;
  mp.num_ships = num_ships;
  mp.sample_dt = 300.0;
  mp.seed = 4;
  HERMES_ASSIGN_OR_RETURN(auto maritime,
                          datagen::GenerateMaritimeScenario(mp));
  *ships_out = std::move(maritime.store);

  service::ServerOptions opts;
  opts.threads = 2;
  opts.session_defaults.sigma = 800.0;
  opts.session_defaults.epsilon = 1600.0;
  opts.wal_dir = wal_dir;
  // Durability needs a real filesystem; the default in-memory env dies
  // with the process.
  storage::Env* env = wal_dir.empty() ? nullptr : storage::Env::Posix();
  return service::Server::Start(std::move(opts), env);
}

/// `--port=N --listen=ADDR [--ships=K]`: serve the wire protocol until a
/// signal, then drain and exit.
int RunDaemon(const std::string& listen, int port, size_t num_ships,
              const std::string& wal_dir) {
  using namespace hermes;
  traj::TrajectoryStore ships;
  auto server_or = StartSeeded(num_ships, wal_dir, &ships);
  if (!server_or.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  auto server = std::move(*server_or);
  // A recovered catalog already holds the acked state — re-seeding the
  // demo fleet would wipe what recovery just restored.
  const bool recovered = server->SnapshotMod("ships").ok();
  if (!recovered &&
      !server->RegisterStore("ships", std::move(ships)).ok()) {
    return 1;
  }

  net::NetServerOptions nopts;
  nopts.listen_addr = listen;
  nopts.port = static_cast<uint16_t>(port);
  auto net_or = net::NetServer::Start(server.get(), nopts);
  if (!net_or.ok()) {
    std::fprintf(stderr, "listen failed: %s\n",
                 net_or.status().ToString().c_str());
    return 1;
  }
  auto net = std::move(*net_or);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::printf("hermes_serve listening on %s:%u (MOD ships %s)\n",
              listen.c_str(), net->port(),
              recovered ? "recovered" : "seeded");
  std::fflush(stdout);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("signal received; draining...\n");
  net->Shutdown();          // stop accepting, finish in-flight statements
  if (!server->Flush().ok()) {
    std::fprintf(stderr, "final flush failed\n");
  }
  server->Shutdown();       // drain the ingest queue and join the worker
  std::printf("hermes_serve stopped cleanly\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hermes;

  std::string listen = "127.0.0.1";
  std::string wal_dir;
  int port = -1;
  size_t daemon_ships = 24;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--listen=", 0) == 0) {
      listen = arg.substr(9);
    } else if (arg.rfind("--port=", 0) == 0) {
      port = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--ships=", 0) == 0) {
      daemon_ships = static_cast<size_t>(std::atol(arg.c_str() + 8));
    } else if (arg.rfind("--wal-dir=", 0) == 0) {
      wal_dir = arg.substr(10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--listen=ADDR] [--port=N] [--ships=K] "
                   "[--wal-dir=DIR]\n"
                   "(no arguments: run the in-process smoke demo)\n",
                   argv[0]);
      return 2;
    }
  }
  if (port >= 0) return RunDaemon(listen, port, daemon_ships, wal_dir);

  datagen::MaritimeScenarioParams mp;
  mp.num_ships = 24;
  mp.sample_dt = 300.0;
  mp.seed = 4;
  auto maritime = datagen::GenerateMaritimeScenario(mp);
  if (!maritime.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 maritime.status().ToString().c_str());
    return 1;
  }
  const traj::TrajectoryStore ships = std::move(maritime->store);
  const auto [t0, t1] = ships.TimeDomain();

  service::ServerOptions opts;
  opts.threads = 2;
  opts.session_defaults.sigma = 800.0;
  opts.session_defaults.epsilon = 1600.0;
  auto server_or = service::Server::Start(std::move(opts));
  if (!server_or.ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }
  auto server = std::move(*server_or);

  // Seed the shared MOD with the first half of the fleet.
  const size_t initial = ships.NumTrajectories() / 2;
  traj::TrajectoryStore seed;
  for (traj::TrajectoryId tid = 0; tid < initial; ++tid) {
    if (!seed.Add(ships.Get(tid)).ok()) return 1;
  }
  if (!server->RegisterStore("ships", std::move(seed)).ok()) return 1;

  std::atomic<int> failures{0};
  std::atomic<bool> ingest_done{false};

  // Four readers, each its own session (and two of them their own
  // 2-thread exec context), querying while ingest proceeds.
  const std::string range_sql = "SELECT RANGE(ships, " + std::to_string(t0) +
                                ", " + std::to_string(t1 + 1) + ");";
  std::vector<std::thread> readers;
  for (int rix = 0; rix < 4; ++rix) {
    readers.emplace_back([&, rix] {
      auto session = server->Connect();
      if (rix % 2 == 1 &&
          !session->Execute("SET hermes.threads = 2;").ok()) {
        ++failures;
        return;
      }
      size_t last_rows = 0;
      while (!ingest_done.load(std::memory_order_relaxed)) {
        auto members = session->Execute("SELECT S2T_MEMBERS(ships);");
        if (!members.ok()) {
          std::fprintf(stderr, "reader %d: %s\n", rix,
                       members.status().ToString().c_str());
          ++failures;
          return;
        }
        auto range = session->Execute(range_sql);
        if (!range.ok()) {
          ++failures;
          return;
        }
        // Published snapshots are id-order prefixes: the qualifying-row
        // count can only grow.
        if (range->rows.size() < last_rows) {
          std::fprintf(stderr, "reader %d: snapshot went backwards\n", rix);
          ++failures;
          return;
        }
        last_rows = range->rows.size();
      }
    });
  }

  // The writer: stream the back half through the ingest queue, then
  // flush and run a QUT over the shared (incrementally caught-up) tree.
  {
    auto writer = server->Connect();
    for (traj::TrajectoryId tid = initial; tid < ships.NumTrajectories();
         ++tid) {
      std::vector<traj::Trajectory> batch;
      batch.push_back(ships.Get(tid));
      if (!server->EnqueueInsert("ships", std::move(batch)).ok()) {
        ++failures;
        break;
      }
    }
    if (!writer->Execute("FLUSH;").ok()) ++failures;
    const double tau = (t1 - t0) / 2;
    const std::string qut_sql =
        "SELECT QUT(ships, " + std::to_string(t0) + ", " +
        std::to_string(t1 + 1) + ", " + std::to_string(tau) + ", " +
        std::to_string(tau / 4) + ", " + std::to_string(tau / 4) +
        ", 1600, 8);";
    auto qut = writer->Execute(qut_sql);
    if (!qut.ok()) {
      std::fprintf(stderr, "QUT failed: %s\n",
                   qut.status().ToString().c_str());
      ++failures;
    } else {
      std::printf("hermes=# %s\n%s\n", qut_sql.c_str(),
                  qut->ToString().c_str());
    }
  }
  ingest_done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  // Final state + service counters.
  auto session = server->Connect();
  for (const char* stmt :
       {"SELECT STATS(ships);", "SHOW SERVICE STATS;", "SHOW ALL;"}) {
    auto table = session->Execute(stmt);
    if (!table.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", stmt,
                   table.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("hermes=# %s\n%s\n", stmt, table->ToString().c_str());
  }

  server->Shutdown();
  if (failures.load() != 0) {
    std::fprintf(stderr, "%d failure(s)\n", failures.load());
    return 1;
  }
  std::printf("service demo OK\n");
  return 0;
}
