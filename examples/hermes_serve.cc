// The Hermes service daemon / demo.
//
// With no arguments, runs the in-process smoke demo: a sharded
// `shard::Coordinator` (default 2 shards) owning a shared maritime MOD,
// four concurrent client sessions issuing S2T_MEMBERS / RANGE / QUT
// statements, and a writer session streaming INSERTs through the
// per-shard background ingest workers — the embedded analogue of many
// psql clients against Hermes@PostgreSQL while data arrives. Every
// statement travels the backend-neutral `sql::StatementExecutor` API.
// Exits non-zero if any statement fails or any reader observes a
// non-prefix state, so CI runs it as an end-to-end smoke test.
//
// With `--port=N` (and optionally `--listen=ADDR`, default loopback), it
// becomes a real daemon: the same seeded topology fronted by the TCP
// wire protocol (`net::NetServer`), serving until SIGINT/SIGTERM.
// Shutdown is clean — stop accepting, finish in-flight statements, drain
// the ingest queues (FLUSH), then stop the service.
//
//   hermes_serve --port=7878
//   hermes_serve --listen=0.0.0.0 --port=7878 --ships=64 --shards=4
//
// With `--wal-dir=DIR` the daemon is durable: every acked INSERT is
// write-ahead-logged with group commit, `CHECKPOINT` persists the
// catalog, and a restart pointing at the same directory recovers the
// acked state (the demo fleet is only seeded on first boot, never over a
// recovered catalog). With `--shards=N` each shard logs to its own
// `DIR/shard<k>`; the default single shard keeps the plain layout, so
// existing WAL directories recover unchanged.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/maritime.h"
#include "net/net_server.h"
#include "service/service_config.h"
#include "shard/coordinator.h"
#include "sql/statement_executor.h"
#include "storage/env.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int /*sig*/) { g_stop = 1; }

hermes::StatusOr<hermes::traj::TrajectoryStore> DemoFleet(size_t num_ships) {
  using namespace hermes;
  datagen::MaritimeScenarioParams mp;
  mp.num_ships = num_ships;
  mp.sample_dt = 300.0;
  mp.seed = 4;
  HERMES_ASSIGN_OR_RETURN(auto maritime,
                          datagen::GenerateMaritimeScenario(mp));
  return std::move(maritime.store);
}

/// `--port=N --listen=ADDR [--ships=K] [--shards=N]`: serve the wire
/// protocol until a signal, then drain and exit.
int RunDaemon(const hermes::service::ServiceConfig& config,
              size_t num_ships) {
  using namespace hermes;
  // Durability needs a real filesystem; the default in-memory env dies
  // with the process.
  auto coord_or = shard::Coordinator::Start(
      config, config.wal_dir.empty() ? nullptr : storage::Env::Posix());
  if (!coord_or.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 coord_or.status().ToString().c_str());
    return 1;
  }
  auto coord = std::move(*coord_or);
  // A recovered catalog already holds the acked state — re-seeding the
  // demo fleet would wipe what recovery just restored.
  const bool recovered = coord->GatherSnapshot("ships").ok();
  if (!recovered) {
    auto fleet = DemoFleet(num_ships);
    if (!fleet.ok() ||
        !coord->RegisterStore("ships", std::move(*fleet)).ok()) {
      return 1;
    }
  }

  auto net_or = net::NetServer::Start(
      [raw = coord.get()] { return raw->Connect(); },
      net::MakeNetServerOptions(config));
  if (!net_or.ok()) {
    std::fprintf(stderr, "listen failed: %s\n",
                 net_or.status().ToString().c_str());
    return 1;
  }
  auto net = std::move(*net_or);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::printf("hermes_serve listening on %s:%u (MOD ships %s)\n",
              config.listen_addr.c_str(), net->port(),
              recovered ? "recovered" : "seeded");
  std::fflush(stdout);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("signal received; draining...\n");
  net->Shutdown();          // stop accepting, finish in-flight statements
  if (!coord->Flush().ok()) {
    std::fprintf(stderr, "final flush failed\n");
  }
  coord->Shutdown();        // drain the ingest queues and join workers
  std::printf("hermes_serve stopped cleanly\n");
  return 0;
}

/// Streams one trajectory through the statement plane: an
/// all-placeholder INSERT prepared on the executor and bound to typed
/// values, so coordinates round-trip exactly.
hermes::Status InsertTrajectory(hermes::sql::StatementExecutor* ex,
                                const hermes::traj::Trajectory& t) {
  using namespace hermes;
  std::string text = "INSERT INTO ships VALUES ";
  std::vector<sql::Value> binds;
  binds.reserve(t.size() * 4);
  for (size_t i = 0; i < t.size(); ++i) {
    const auto& p = t.samples()[i];
    if (i > 0) text += ", ";
    text += "($" + std::to_string(4 * i + 1) + ", $" +
            std::to_string(4 * i + 2) + ", $" + std::to_string(4 * i + 3) +
            ", $" + std::to_string(4 * i + 4) + ")";
    binds.push_back(sql::Value::Int(static_cast<int64_t>(t.object_id())));
    binds.push_back(sql::Value::Double(p.t));
    binds.push_back(sql::Value::Double(p.x));
    binds.push_back(sql::Value::Double(p.y));
  }
  text += ";";
  HERMES_ASSIGN_OR_RETURN(sql::PreparedHandle handle, ex->Prepare(text));
  StatusOr<sql::Table> ack = ex->BindExecute(handle.id, binds);
  (void)ex->ClosePrepared(handle.id);
  return ack.status();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hermes;

  service::ServiceConfig config;
  config.threads = 2;
  config.session_defaults.sigma = 800.0;
  config.session_defaults.epsilon = 1600.0;
  int port = -1;
  size_t num_ships = 24;
  bool shards_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--listen=", 0) == 0) {
      config.listen_addr = arg.substr(9);
    } else if (arg.rfind("--port=", 0) == 0) {
      port = std::atoi(arg.c_str() + 7);
      config.port = static_cast<uint16_t>(port);
    } else if (arg.rfind("--ships=", 0) == 0) {
      num_ships = static_cast<size_t>(std::atol(arg.c_str() + 8));
    } else if (arg.rfind("--wal-dir=", 0) == 0) {
      config.wal_dir = arg.substr(10);
    } else if (arg.rfind("--shards=", 0) == 0) {
      config.shards = static_cast<size_t>(std::atol(arg.c_str() + 9));
      shards_set = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--listen=ADDR] [--port=N] [--ships=K] "
                   "[--wal-dir=DIR] [--shards=N]\n"
                   "(no arguments: run the in-process smoke demo)\n",
                   argv[0]);
      return 2;
    }
  }
  // The demo defaults to 2 shards so CI exercises the scatter–gather
  // paths; the daemon stays single-shard unless asked (its plain
  // directory layout is what existing WAL dirs recover from).
  if (!shards_set && port < 0) config.shards = 2;
  if (Status st = config.Validate(); !st.ok()) {
    std::fprintf(stderr, "bad configuration: %s\n", st.ToString().c_str());
    return 2;
  }
  if (port >= 0) return RunDaemon(config, num_ships);

  auto fleet = DemoFleet(num_ships);
  if (!fleet.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 fleet.status().ToString().c_str());
    return 1;
  }
  const traj::TrajectoryStore ships = std::move(*fleet);
  const auto [t0, t1] = ships.TimeDomain();

  auto coord_or = shard::Coordinator::Start(config);
  if (!coord_or.ok()) {
    std::fprintf(stderr, "coordinator start failed: %s\n",
                 coord_or.status().ToString().c_str());
    return 1;
  }
  auto coord = std::move(*coord_or);

  // Seed the shared MOD with the first half of the fleet.
  const size_t initial = ships.NumTrajectories() / 2;
  traj::TrajectoryStore seed;
  for (traj::TrajectoryId tid = 0; tid < initial; ++tid) {
    if (!seed.Add(ships.Get(tid)).ok()) return 1;
  }
  if (!coord->RegisterStore("ships", std::move(seed)).ok()) return 1;

  std::atomic<int> failures{0};
  std::atomic<bool> ingest_done{false};

  // Four readers, each its own coordinator session (and two of them
  // their own 2-thread exec context), querying while ingest proceeds.
  const std::string range_sql = "SELECT RANGE(ships, " + std::to_string(t0) +
                                ", " + std::to_string(t1 + 1) + ");";
  std::vector<std::thread> readers;
  for (int rix = 0; rix < 4; ++rix) {
    readers.emplace_back([&, rix] {
      auto session = coord->Connect();
      if (rix % 2 == 1 &&
          !session->Execute("SET hermes.threads = 2;").ok()) {
        ++failures;
        return;
      }
      size_t last_rows = 0;
      while (!ingest_done.load(std::memory_order_relaxed)) {
        auto members = session->Execute("SELECT S2T_MEMBERS(ships);");
        if (!members.ok()) {
          std::fprintf(stderr, "reader %d: %s\n", rix,
                       members.status().ToString().c_str());
          ++failures;
          return;
        }
        auto range = session->Execute(range_sql);
        if (!range.ok()) {
          ++failures;
          return;
        }
        // Published snapshots are id-order prefixes: the qualifying-row
        // count can only grow.
        if (range->rows.size() < last_rows) {
          std::fprintf(stderr, "reader %d: snapshot went backwards\n", rix);
          ++failures;
          return;
        }
        last_rows = range->rows.size();
      }
    });
  }

  // The writer: stream the back half through the routed statement path,
  // then flush and run a QUT over the merged tree.
  {
    auto writer = coord->Connect();
    for (traj::TrajectoryId tid = initial; tid < ships.NumTrajectories();
         ++tid) {
      if (!InsertTrajectory(writer.get(), ships.Get(tid)).ok()) {
        ++failures;
        break;
      }
    }
    if (!writer->Execute("FLUSH;").ok()) ++failures;
    const double tau = (t1 - t0) / 2;
    const std::string qut_sql =
        "SELECT QUT(ships, " + std::to_string(t0) + ", " +
        std::to_string(t1 + 1) + ", " + std::to_string(tau) + ", " +
        std::to_string(tau / 4) + ", " + std::to_string(tau / 4) +
        ", 1600, 8);";
    auto qut = writer->Execute(qut_sql);
    if (!qut.ok()) {
      std::fprintf(stderr, "QUT failed: %s\n",
                   qut.status().ToString().c_str());
      ++failures;
    } else {
      std::printf("hermes=# %s\n%s\n", qut_sql.c_str(),
                  qut->ToString().c_str());
    }
  }
  ingest_done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  // Final state + aggregated service counters.
  auto session = coord->Connect();
  for (const char* stmt :
       {"SELECT STATS(ships);", "SHOW SERVICE STATS;", "SHOW ALL;"}) {
    auto table = session->Execute(stmt);
    if (!table.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", stmt,
                   table.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("hermes=# %s\n%s\n", stmt, table->ToString().c_str());
  }

  coord->Shutdown();
  if (failures.load() != 0) {
    std::fprintf(stderr, "%d failure(s)\n", failures.load());
    return 1;
  }
  std::printf("service demo OK\n");
  return 0;
}
