// The multi-session service in action: one `service::Server` owning a
// shared maritime MOD, four concurrent client sessions issuing
// S2T_MEMBERS / RANGE / QUT statements, and a writer session streaming
// INSERTs through the background ingest worker — the embedded analogue of
// many psql clients against Hermes@PostgreSQL while data arrives.
//
// Exits non-zero if any statement fails or any reader observes a
// non-prefix state, so CI runs it as an end-to-end smoke test.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "datagen/maritime.h"
#include "service/client_session.h"
#include "service/server.h"

int main() {
  using namespace hermes;

  datagen::MaritimeScenarioParams mp;
  mp.num_ships = 24;
  mp.sample_dt = 300.0;
  mp.seed = 4;
  auto maritime = datagen::GenerateMaritimeScenario(mp);
  if (!maritime.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 maritime.status().ToString().c_str());
    return 1;
  }
  const traj::TrajectoryStore ships = std::move(maritime->store);
  const auto [t0, t1] = ships.TimeDomain();

  service::ServerOptions opts;
  opts.threads = 2;
  opts.session_defaults.sigma = 800.0;
  opts.session_defaults.epsilon = 1600.0;
  auto server_or = service::Server::Start(std::move(opts));
  if (!server_or.ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }
  auto server = std::move(*server_or);

  // Seed the shared MOD with the first half of the fleet.
  const size_t initial = ships.NumTrajectories() / 2;
  traj::TrajectoryStore seed;
  for (traj::TrajectoryId tid = 0; tid < initial; ++tid) {
    if (!seed.Add(ships.Get(tid)).ok()) return 1;
  }
  if (!server->RegisterStore("ships", std::move(seed)).ok()) return 1;

  std::atomic<int> failures{0};
  std::atomic<bool> ingest_done{false};

  // Four readers, each its own session (and two of them their own
  // 2-thread exec context), querying while ingest proceeds.
  const std::string range_sql = "SELECT RANGE(ships, " + std::to_string(t0) +
                                ", " + std::to_string(t1 + 1) + ");";
  std::vector<std::thread> readers;
  for (int rix = 0; rix < 4; ++rix) {
    readers.emplace_back([&, rix] {
      auto session = server->Connect();
      if (rix % 2 == 1 &&
          !session->Execute("SET hermes.threads = 2;").ok()) {
        ++failures;
        return;
      }
      size_t last_rows = 0;
      while (!ingest_done.load(std::memory_order_relaxed)) {
        auto members = session->Execute("SELECT S2T_MEMBERS(ships);");
        if (!members.ok()) {
          std::fprintf(stderr, "reader %d: %s\n", rix,
                       members.status().ToString().c_str());
          ++failures;
          return;
        }
        auto range = session->Execute(range_sql);
        if (!range.ok()) {
          ++failures;
          return;
        }
        // Published snapshots are id-order prefixes: the qualifying-row
        // count can only grow.
        if (range->rows.size() < last_rows) {
          std::fprintf(stderr, "reader %d: snapshot went backwards\n", rix);
          ++failures;
          return;
        }
        last_rows = range->rows.size();
      }
    });
  }

  // The writer: stream the back half through the ingest queue, then
  // flush and run a QUT over the shared (incrementally caught-up) tree.
  {
    auto writer = server->Connect();
    for (traj::TrajectoryId tid = initial; tid < ships.NumTrajectories();
         ++tid) {
      std::vector<traj::Trajectory> batch;
      batch.push_back(ships.Get(tid));
      if (!server->EnqueueInsert("ships", std::move(batch)).ok()) {
        ++failures;
        break;
      }
    }
    if (!writer->Execute("FLUSH;").ok()) ++failures;
    const double tau = (t1 - t0) / 2;
    const std::string qut_sql =
        "SELECT QUT(ships, " + std::to_string(t0) + ", " +
        std::to_string(t1 + 1) + ", " + std::to_string(tau) + ", " +
        std::to_string(tau / 4) + ", " + std::to_string(tau / 4) +
        ", 1600, 8);";
    auto qut = writer->Execute(qut_sql);
    if (!qut.ok()) {
      std::fprintf(stderr, "QUT failed: %s\n",
                   qut.status().ToString().c_str());
      ++failures;
    } else {
      std::printf("hermes=# %s\n%s\n", qut_sql.c_str(),
                  qut->ToString().c_str());
    }
  }
  ingest_done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  // Final state + service counters.
  auto session = server->Connect();
  for (const char* stmt :
       {"SELECT STATS(ships);", "SHOW SERVICE STATS;", "SHOW ALL;"}) {
    auto table = session->Execute(stmt);
    if (!table.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", stmt,
                   table.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("hermes=# %s\n%s\n", stmt, table->ToString().c_str());
  }

  server->Shutdown();
  if (failures.load() != 0) {
    std::fprintf(stderr, "%d failure(s)\n", failures.load());
    return 1;
  }
  std::printf("service demo OK\n");
  return 0;
}
