// Quickstart: build a tiny MOD, run S2T-Clustering, inspect the result.
//
//   $ ./quickstart
//
// Three lanes of co-moving objects plus one stray wanderer: S2T discovers
// one cluster per lane and isolates the wanderer as an outlier.

#include <cstdio>

#include "core/s2t_clustering.h"
#include "datagen/noise.h"
#include "va/ascii_map.h"

int main() {
  using namespace hermes;

  // 1. A MOD: three lanes, four objects each, 500 m apart.
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      /*lanes=*/3, /*per_lane=*/4, /*lane_gap=*/500.0, /*length=*/1000.0,
      /*speed=*/10.0, /*sample_dt=*/10.0, /*seed=*/42, /*jitter=*/2.0);
  // ... plus one stray random walker.
  geom::Mbb3D area(0, 2000, 0, 1500, 6000, 100);
  (void)datagen::AddNoiseTrajectories(&store, 1, area, 15.0, 10.0, 7, 99);

  std::printf("MOD: %zu trajectories, %zu points\n",
              store.NumTrajectories(), store.NumPoints());

  // 2. Configure and run S2T-Clustering.
  core::S2TParams params;
  params.SetSigma(50.0)      // Voting bandwidth: who counts as co-moving.
      .SetEpsilon(100.0);    // Cluster radius around each representative.
  params.sampling.sigma = 200.0;          // Coverage bandwidth.
  params.sampling.gain_stop_ratio = 0.2;  // Stop when gains get marginal.
  params.segmentation.min_part_length = 3;

  core::S2TClustering s2t(params);
  auto result = s2t.Run(store);
  if (!result.ok()) {
    std::fprintf(stderr, "S2T failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 3. Inspect.
  std::printf("sub-trajectories: %zu\n", result->sub_trajectories.size());
  std::printf("clusters: %zu, outliers: %zu\n", result->NumClusters(),
              result->NumOutliers());
  for (size_t ci = 0; ci < result->clustering.clusters.size(); ++ci) {
    const auto& cluster = result->clustering.clusters[ci];
    const auto& rep = result->sub_trajectories[cluster.representative];
    std::printf("  cluster %zu: %zu members, rep=obj %llu, t=[%.0f, %.0f]\n",
                ci, cluster.members.size(),
                static_cast<unsigned long long>(rep.object_id),
                rep.StartTime(), rep.EndTime());
  }
  for (size_t o : result->clustering.outliers) {
    std::printf("  outlier: obj %llu\n",
                static_cast<unsigned long long>(
                    result->sub_trajectories[o].object_id));
  }

  // 4. Terminal map (the V-Analytics stand-in).
  std::printf("\nmap (letters = clusters, dots = outliers):\n%s\n",
              va::RenderAsciiMap(*result, 72, 14).c_str());

  std::printf("phase timings: voting %.1f ms, segmentation %.1f ms, "
              "sampling %.1f ms, clustering %.1f ms\n",
              result->timings.voting_us / 1000.0,
              result->timings.segmentation_us / 1000.0,
              result->timings.sampling_us / 1000.0,
              result->timings.clustering_us / 1000.0);
  return 0;
}
