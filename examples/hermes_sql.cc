// Preparatory phase of the demo: the Hermes SQL API. Runs a scripted
// session exercising the datatypes and operands — including the paper's
// `SELECT QUT(D, Wi, We, tau, delta, t, d, gamma)` statement — and then,
// with `-i`, drops into an interactive shell.
//
//   $ ./hermes_sql            # scripted demo
//   $ ./hermes_sql -i         # interactive: type SQL, 'quit' to exit

#include <cstdio>
#include <iostream>
#include <string>

#include "datagen/maritime.h"
#include "sql/executor.h"

int main(int argc, char** argv) {
  using namespace hermes;
  sql::Session session;

  // Preload a maritime MOD so QUT/S2T have something realistic to chew on.
  datagen::MaritimeScenarioParams mp;
  mp.num_ships = 40;
  mp.seed = 4;
  auto maritime = datagen::GenerateMaritimeScenario(mp);
  if (maritime.ok()) {
    (void)session.RegisterStore("ships", std::move(maritime->store));
  }

  const char* script[] = {
      "SELECT STATS(ships);",
      "CREATE MOD demo;",
      "INSERT INTO demo VALUES (1, 0, 0, 0), (1, 60, 500, 0), "
      "(1, 120, 1000, 0), (2, 0, 0, 40), (2, 60, 500, 40), "
      "(2, 120, 1000, 40);",
      "SELECT STATS(demo);",
      "SELECT RANGE(demo, 0, 90);",
      "SELECT S2T(demo, 100, 200);",
      "SET hermes.threads = 4;",  // Analytic statements now fan out.
      "SELECT S2T(ships, 800, 1600);",
      "SELECT QUT(ships, 0, 7200, 3600, 900, 225, 1600, 16);",
  };
  for (const char* stmt : script) {
    std::printf("hermes=# %s\n", stmt);
    auto result = session.Execute(stmt);
    if (result.ok()) {
      std::printf("%s\n", result->ToString().c_str());
    } else {
      std::printf("ERROR: %s\n\n", result.status().ToString().c_str());
    }
  }

  if (argc > 1 && std::string(argv[1]) == "-i") {
    std::printf("interactive mode; 'quit' to exit\n");
    std::string line;
    while (true) {
      std::printf("hermes=# ");
      if (!std::getline(std::cin, line) || line == "quit") break;
      if (line.empty()) continue;
      auto result = session.Execute(line);
      if (result.ok()) {
        std::printf("%s\n", result->ToString().c_str());
      } else {
        std::printf("ERROR: %s\n", result.status().ToString().c_str());
      }
    }
  }
  return 0;
}
