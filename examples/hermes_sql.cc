// Preparatory phase of the demo: the Hermes SQL API. Runs a scripted
// session exercising the datatypes and operands — including the paper's
// `SELECT QUT(D, Wi, We, tau, delta, t, d, gamma)` statement, the
// GUC-style settings registry (`SET` / `SHOW`), prepared statements, and
// streaming cursors — and then, with `-i`, drops into an interactive
// shell. Exits non-zero if any scripted statement fails, so CI can run it
// as an end-to-end smoke test.
//
//   $ ./hermes_sql            # scripted demo
//   $ ./hermes_sql -i         # interactive: type SQL, 'quit' to exit

#include <cstdio>
#include <iostream>
#include <string>

#include "datagen/maritime.h"
#include "sql/cursor.h"
#include "sql/executor.h"
#include "sql/statement_executor.h"

int main(int argc, char** argv) {
  using namespace hermes;
  sql::Session session;
  // Every statement below travels the backend-neutral
  // `sql::StatementExecutor` API — the same calls would drive a service
  // session, a shard coordinator, or a remote `net::Client`.
  std::unique_ptr<sql::StatementExecutor> db =
      sql::MakeSessionExecutor(&session);
  int failures = 0;

  // Preload a maritime MOD so QUT/S2T have something realistic to chew on.
  datagen::MaritimeScenarioParams mp;
  mp.num_ships = 40;
  mp.seed = 4;
  auto maritime = datagen::GenerateMaritimeScenario(mp);
  if (maritime.ok()) {
    (void)session.RegisterStore("ships", std::move(maritime->store));
  } else {
    ++failures;
  }

  const char* script[] = {
      "SELECT STATS(ships);",
      "CREATE MOD demo;",
      "INSERT INTO demo VALUES (1, 0, 0, 0), (1, 60, 500, 0), "
      "(1, 120, 1000, 0), (2, 0, 0, 40), (2, 60, 500, 40), "
      "(2, 120, 1000, 40);",
      "SELECT STATS(demo);",
      "SELECT RANGE(demo, 0, 90);",
      "SELECT S2T(demo, 100, 200);",
      "SET hermes.sigma = 100;",   // Session defaults for S2T...
      "SET hermes.epsilon = 200;",
      "SELECT S2T(demo);",         // ...picked up when args are omitted.
      "SHOW hermes.sigma;",
      "SHOW ALL;",
      "SET hermes.threads = 4;",   // Analytic statements now fan out.
      "SELECT S2T(ships, 800, 1600);",
      "SELECT QUT(ships, 0, 7200, 3600, 900, 225, 1600, 16);",
      "SHOW STATS;",               // Typed per-phase breakdown.
  };
  for (const char* stmt : script) {
    std::printf("hermes=# %s\n", stmt);
    auto result = db->Execute(stmt);
    if (result.ok()) {
      std::printf("%s\n", result->ToString().c_str());
    } else {
      std::printf("ERROR: %s\n\n", result.status().ToString().c_str());
      ++failures;
    }
  }

  // Prepared statement: parse `RANGE($1, $2)` once, execute per window —
  // the shape a maintenance loop or bench uses to skip per-call parsing.
  std::printf("hermes=# PREPARE win AS SELECT RANGE(ships, $1, $2);\n");
  auto prepared = db->Prepare("SELECT RANGE(ships, $1, $2);");
  if (!prepared.ok()) {
    std::printf("ERROR: %s\n", prepared.status().ToString().c_str());
    ++failures;
  } else {
    for (double w0 = 0.0; w0 < 3 * 1800.0; w0 += 1800.0) {
      auto windowed = db->BindExecute(
          prepared->id,
          {sql::Value::Double(w0), sql::Value::Double(w0 + 1800.0)});
      if (!windowed.ok()) {
        std::printf("ERROR: %s\n", windowed.status().ToString().c_str());
        ++failures;
        continue;
      }
      std::printf("hermes=# EXECUTE win(%.0f, %.0f); -> %zu ships\n", w0,
                  w0 + 1800.0, windowed->rows.size());
    }
    (void)db->ClosePrepared(prepared->id);
  }

  // Streaming cursor: peel the first rows of a large member listing
  // without materializing the rest.
  std::printf("\nhermes=# DECLARE c CURSOR FOR "
              "SELECT S2T_MEMBERS(ships, 800, 1600); FETCH 5;\n");
  auto cursor = db->ExecuteCursor("SELECT S2T_MEMBERS(ships, 800, 1600);");
  if (!cursor.ok()) {
    std::printf("ERROR: %s\n", cursor.status().ToString().c_str());
    ++failures;
  } else {
    std::vector<sql::Value> row;
    for (int i = 0; i < 5; ++i) {
      auto more = (*cursor)->Next(&row);
      if (!more.ok()) {
        std::printf("ERROR: %s\n", more.status().ToString().c_str());
        ++failures;
        break;
      }
      if (!*more) break;
      std::printf("  cluster=%s object=%lld [%s, %s]\n",
                  row[0].ToString().c_str(),
                  static_cast<long long>(row[1].AsInt()),
                  row[2].ToString().c_str(), row[3].ToString().c_str());
    }
  }

  if (argc > 1 && std::string(argv[1]) == "-i") {
    std::printf("interactive mode; 'quit' to exit\n");
    std::string line;
    while (true) {
      std::printf("hermes=# ");
      if (!std::getline(std::cin, line) || line == "quit") break;
      if (line.empty()) continue;
      auto result = db->Execute(line);
      if (result.ok()) {
        std::printf("%s\n", result->ToString().c_str());
      } else {
        std::printf("ERROR: %s\n", result.status().ToString().c_str());
      }
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "%d statement(s) failed\n", failures);
    return 1;
  }
  return 0;
}
