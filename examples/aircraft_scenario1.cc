// Demo scenario 1 (ICDE'18 paper, Section III): progressive clustering of
// the aircraft MOD with S2T-Clustering.
//
//   $ ./aircraft_scenario1 [output_dir]
//
// Reproduces the data behind the paper's figures:
//   Fig. 1 (top)    -> out/fig1_map.csv + terminal map (cluster colors)
//   Fig. 1 (middle) -> out/fig1_histogram.csv + terminal histogram
//   Fig. 1 (bottom) -> out/fig1_shapes3d.csv (x, y, t member shapes)
//   Fig. 3          -> out/fig3_runA_reps.csv / fig3_runB_reps.csv
//                      (two S2T runs with different parameters)
//   Fig. 4          -> holding-pattern discovery report (loops near the
//                      approach fix grouped into their own clusters)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/s2t_clustering.h"
#include "datagen/aircraft.h"
#include "traj/simplify.h"
#include "va/ascii_map.h"
#include "va/exporters.h"

namespace {

hermes::core::S2TParams RunAParams() {
  hermes::core::S2TParams p;
  p.SetSigma(1500.0).SetEpsilon(3000.0);
  p.segmentation.min_part_length = 3;
  p.sampling.sigma = 4000.0;
  p.sampling.gain_stop_ratio = 0.1;
  p.sampling.min_overlap_ratio = 0.3;
  p.clustering.min_overlap_ratio = 0.3;
  p.voting.min_overlap_ratio = 0.3;
  return p;
}

hermes::core::S2TParams RunBParams() {
  hermes::core::S2TParams p = RunAParams();
  p.SetSigma(3000.0).SetEpsilon(6000.0);  // Coarser co-movement notion.
  p.sampling.sigma = 8000.0;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hermes;
  const std::string out_dir = argc > 1 ? argv[1] : "out";
  std::filesystem::create_directories(out_dir);

  // The aircraft MOD standing in for the London-area dataset.
  datagen::AircraftScenarioParams sp =
      datagen::AircraftScenarioParams::Default();
  sp.num_flights = 80;
  sp.holding_probability = 0.35;
  sp.outlier_fraction = 0.1;
  sp.sample_dt = 15.0;
  sp.seed = 2018;
  auto scenario = datagen::GenerateAircraftScenario(sp);
  if (!scenario.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  std::printf("aircraft MOD: %zu flights, %zu samples\n",
              scenario->store.NumTrajectories(),
              scenario->store.NumPoints());
  size_t holders = 0;
  for (const auto& f : scenario->flights) holders += f.has_holding;
  std::printf("  with holding patterns: %zu, stray overflights: %zu\n",
              holders,
              static_cast<size_t>(
                  std::count_if(scenario->flights.begin(),
                                scenario->flights.end(),
                                [](const auto& f) { return f.is_outlier; })));

  // Run A.
  core::S2TClustering run_a(RunAParams());
  auto result_a = run_a.Run(scenario->store);
  if (!result_a.ok()) {
    std::fprintf(stderr, "S2T run A failed\n");
    return 1;
  }
  std::printf("\nrun A (sigma=1.5km): %zu clusters, %zu outliers\n",
              result_a->NumClusters(), result_a->NumOutliers());

  // Run B (Fig. 3's comparison run).
  core::S2TClustering run_b(RunBParams());
  auto result_b = run_b.Run(scenario->store);
  if (!result_b.ok()) {
    std::fprintf(stderr, "S2T run B failed\n");
    return 1;
  }
  std::printf("run B (sigma=3.0km): %zu clusters, %zu outliers\n",
              result_b->NumClusters(), result_b->NumOutliers());

  // Fig. 1 exports.
  auto check = [](const Status& s, const char* what) {
    if (!s.ok()) std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
  };
  check(va::ExportClusterMapCsv(out_dir + "/fig1_map.csv", *result_a),
        "fig1_map");
  check(va::ExportTimeHistogramCsv(out_dir + "/fig1_histogram.csv",
                                   *result_a, 24),
        "fig1_histogram");
  check(va::Export3DShapesCsv(out_dir + "/fig1_shapes3d.csv", *result_a,
                              "runA", /*representatives_only=*/false),
        "fig1_shapes");
  check(va::ExportGeoJson(out_dir + "/fig1_map.geojson", *result_a),
        "fig1_geojson");

  // Fig. 3 exports: representatives of both runs for the 3D comparison.
  check(va::Export3DShapesCsv(out_dir + "/fig3_runA_reps.csv", *result_a,
                              "runA", true),
        "fig3_runA");
  check(va::Export3DShapesCsv(out_dir + "/fig3_runB_reps.csv", *result_b,
                              "runB", true),
        "fig3_runB");

  // Fig. 4: holding patterns. A holding flight's loop sub-trajectories sit
  // near the approach fix; report clusters whose representative loops.
  std::printf("\nholding-pattern report (Fig. 4):\n");
  size_t holding_clusters = 0;
  for (size_t ci = 0; ci < result_a->clustering.clusters.size(); ++ci) {
    const auto& cluster = result_a->clustering.clusters[ci];
    const auto& rep =
        result_a->sub_trajectories[cluster.representative];
    // A loop revisits its own neighborhood: path length much larger than
    // the bounding-box diagonal, with large accumulated turning.
    if (traj::LooksLikeLoop(rep.points) && cluster.members.size() >= 2) {
      ++holding_clusters;
      std::printf("  cluster %zu loops (path %.1f km, turning %.1f rad), "
                  "%zu members\n",
                  ci, rep.points.SpatialLength() / 1000.0,
                  traj::TotalTurning(rep.points), cluster.members.size());
    }
  }
  std::printf("  -> %zu holding-pattern clusters discovered\n",
              holding_clusters);

  // Terminal displays.
  std::printf("\nFig. 1 (top) map display:\n%s",
              va::RenderAsciiMap(*result_a, 90, 24).c_str());
  std::printf("\nFig. 1 (middle) cluster cardinality over time:\n%s",
              va::RenderAsciiHistogram(*result_a, 16, 60).c_str());
  std::printf("\nCSV/GeoJSON written to %s/\n", out_dir.c_str());
  return 0;
}
