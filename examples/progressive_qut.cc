// Demo scenario 2 (ICDE'18 paper, Section III): progressive time-aware
// analysis with QuT-Clustering over the ReTraTree.
//
//   $ ./progressive_qut [output_dir]
//
// The analyst starts from the landing phase (small W anchored at the end
// of the time domain) and progressively widens W into the past, watching
// patterns evolve from cruising into landing — without re-running the
// clustering pipeline. Each step is also timed against the alternative
// (range query -> fresh R-tree -> S2T from scratch), reproducing the
// demo's efficiency comparison (experiment E6/E7 in DESIGN.md).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "baselines/range_rebuild.h"
#include "core/qut_clustering.h"
#include "core/retratree.h"
#include "datagen/aircraft.h"
#include "rtree/str_bulk_load.h"
#include "storage/env.h"
#include "va/ascii_map.h"

namespace {
hermes::core::S2TParams S2TParamsForAircraft() {
  hermes::core::S2TParams p;
  p.SetSigma(1500.0).SetEpsilon(3000.0);
  p.segmentation.min_part_length = 3;
  p.sampling.sigma = 4000.0;
  p.sampling.gain_stop_ratio = 0.1;
  p.sampling.min_overlap_ratio = 0.3;
  p.clustering.min_overlap_ratio = 0.3;
  p.voting.min_overlap_ratio = 0.3;
  return p;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace hermes;
  const std::string out_dir = argc > 1 ? argv[1] : "out";
  std::filesystem::create_directories(out_dir);

  // Aircraft MOD with a long stagger so cruise and landing phases of
  // different flights interleave over hours.
  datagen::AircraftScenarioParams sp =
      datagen::AircraftScenarioParams::Default();
  sp.num_flights = 100;
  sp.time_span = 7200.0;
  sp.sample_dt = 20.0;
  sp.seed = 99;
  auto scenario = datagen::GenerateAircraftScenario(sp);
  if (!scenario.ok()) return 1;
  const auto [t0, t1] = scenario->store.TimeDomain();
  std::printf("aircraft MOD: %zu flights over [%.0f, %.0f] s\n",
              scenario->store.NumTrajectories(), t0, t1);

  // Build the ReTraTree (this is the one-off indexing investment).
  auto env = storage::Env::NewMemEnv();
  core::ReTraTreeParams tp;
  tp.tau = (t1 - t0) / 2;
  tp.delta = tp.tau / 4;
  tp.t_align = tp.delta;
  tp.d_assign = 3000.0;
  tp.gamma = 10;
  tp.origin = t0;
  tp.s2t = S2TParamsForAircraft();
  auto tree = core::ReTraTree::Open(env.get(), "demo_tree", tp);
  if (!tree.ok()) return 1;
  if (Status s = (*tree)->InsertStore(scenario->store); !s.ok()) {
    std::fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto& stats = (*tree)->stats();
  std::printf("ReTraTree: %zu representatives, %llu pieces "
              "(%llu assigned, %llu buffered, %llu S2T runs)\n\n",
              (*tree)->TotalRepresentatives(),
              static_cast<unsigned long long>(stats.pieces_inserted),
              static_cast<unsigned long long>(stats.assigned_to_existing),
              static_cast<unsigned long long>(stats.sent_to_outliers),
              static_cast<unsigned long long>(stats.s2t_runs));

  // Baseline setup: a global segment index over the whole MOD.
  auto global_index =
      rtree::BuildSegmentIndex(env.get(), "demo_glob.idx", scenario->store);
  if (!global_index.ok()) return 1;

  // Progressive widening: Wi moves into the past, We pinned at the end.
  core::QuTClustering qut(tree->get());
  std::ofstream evolution(out_dir + "/fig_evolution.csv");
  evolution << "window_s,clusters,members,outliers,qut_ms,baseline_ms\n";
  std::printf("%10s %9s %8s %9s %10s %13s %8s\n", "window[s]", "clusters",
              "members", "outliers", "QuT[ms]", "baseline[ms]", "speedup");
  for (double frac : {0.125, 0.25, 0.5, 0.75, 1.0}) {
    const double wi = t1 - (t1 - t0) * frac;
    auto result = qut.Query(wi, t1 + 1);
    if (!result.ok()) return 1;
    auto baseline = baselines::RunRangeRebuild(
        scenario->store, **global_index, wi, t1 + 1, tp.s2t);
    if (!baseline.ok()) return 1;
    const double qut_ms = result->stats.elapsed_us / 1000.0;
    const double base_ms = baseline->timings.TotalUs() / 1000.0;
    std::printf("%10.0f %9zu %8zu %9zu %10.2f %13.2f %7.1fx\n",
                (t1 - wi), result->clusters.size(), result->TotalMembers(),
                result->outliers.size(), qut_ms, base_ms,
                base_ms / std::max(qut_ms, 0.001));
    evolution << (t1 - wi) << ',' << result->clusters.size() << ','
              << result->TotalMembers() << ',' << result->outliers.size()
              << ',' << qut_ms << ',' << base_ms << '\n';

    // The widest window gets the full VA treatment.
    if (frac == 1.0) {
      std::printf("\nfull-window QuT map:\n%s",
                  va::RenderQuTAsciiMap(*result, 90, 22).c_str());
    }
  }
  std::printf("\nevolution series written to %s/fig_evolution.csv\n",
              out_dir.c_str());
  return 0;
}
