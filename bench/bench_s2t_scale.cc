// Experiment E5 companion (DESIGN.md): S2T-Clustering end-to-end runtime
// and per-phase breakdown as the MOD grows — the "efficient and scalable
// solutions for sub-trajectory clustering" claim.

#include <benchmark/benchmark.h>

#include "core/s2t_clustering.h"
#include "datagen/aircraft.h"

namespace {

using namespace hermes;

traj::TrajectoryStore MakeMod(size_t flights) {
  datagen::AircraftScenarioParams p =
      datagen::AircraftScenarioParams::Default();
  p.num_flights = flights;
  p.sample_dt = 20.0;
  p.seed = 31;
  auto scenario = datagen::GenerateAircraftScenario(p);
  return std::move(scenario->store);
}

core::S2TParams Params() {
  core::S2TParams p;
  p.SetSigma(1500.0).SetEpsilon(3000.0);
  p.segmentation.min_part_length = 3;
  p.sampling.sigma = 4000.0;
  p.sampling.gain_stop_ratio = 0.1;
  p.sampling.min_overlap_ratio = 0.3;
  p.clustering.min_overlap_ratio = 0.3;
  p.voting.min_overlap_ratio = 0.3;
  return p;
}

void BM_S2TFull(benchmark::State& state) {
  const auto store = MakeMod(state.range(0));
  core::S2TClustering s2t(Params());
  core::S2TTimings timings;
  size_t clusters = 0, outliers = 0, subs = 0;
  for (auto _ : state) {
    auto result = s2t.Run(store);
    benchmark::DoNotOptimize(result);
    timings = result->timings;
    clusters = result->NumClusters();
    outliers = result->NumOutliers();
    subs = result->sub_trajectories.size();
  }
  state.counters["N"] = static_cast<double>(store.NumTrajectories());
  state.counters["sub_trajs"] = static_cast<double>(subs);
  state.counters["clusters"] = static_cast<double>(clusters);
  state.counters["outliers"] = static_cast<double>(outliers);
  state.counters["voting_ms"] = timings.voting_us / 1000.0;
  state.counters["segmentation_ms"] = timings.segmentation_us / 1000.0;
  state.counters["sampling_ms"] = timings.sampling_us / 1000.0;
  state.counters["clustering_ms"] = timings.clustering_us / 1000.0;
  state.counters["index_ms"] = timings.index_build_us / 1000.0;
}

}  // namespace

BENCHMARK(BM_S2TFull)->Arg(20)->Arg(40)->Arg(80)->Arg(160)
    ->Unit(benchmark::kMillisecond);
