// Experiment E5 companion (DESIGN.md): S2T-Clustering end-to-end runtime
// and per-phase breakdown as the MOD grows — the "efficient and scalable
// solutions for sub-trajectory clustering" claim — plus a thread sweep of
// the exec fast path at the largest MOD. The sweep now covers every
// parallel phase: arena build, STR sorts, voting probe (per-chunk index
// handles) + kernel, and both NaTS segmentation passes, with the
// probe/kernel and DP/materialize splits reported separately.
//
// Besides the usual console report, every (N, threads) point is appended
// to `BENCH_s2t.json` in the working directory, so successive PRs can
// track the perf trajectory mechanically.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/s2t_clustering.h"
#include "datagen/aircraft.h"
#include "exec/exec_context.h"

namespace {

using namespace hermes;

struct BenchRecord {
  size_t flights = 0;
  size_t threads = 0;
  size_t segments = 0;
  size_t clusters = 0;
  size_t outliers = 0;
  size_t sub_trajs = 0;
  double wall_ms = 0.0;
  core::S2TTimings timings;
};

std::vector<BenchRecord>& Records() {
  static auto* records = new std::vector<BenchRecord>();
  return *records;
}

traj::TrajectoryStore MakeMod(size_t flights) {
  datagen::AircraftScenarioParams p =
      datagen::AircraftScenarioParams::Default();
  p.num_flights = flights;
  p.sample_dt = 20.0;
  p.seed = 31;
  auto scenario = datagen::GenerateAircraftScenario(p);
  return std::move(scenario->store);
}

core::S2TParams Params() {
  core::S2TParams p;
  p.SetSigma(1500.0).SetEpsilon(3000.0);
  p.segmentation.min_part_length = 3;
  p.sampling.sigma = 4000.0;
  p.sampling.gain_stop_ratio = 0.1;
  p.sampling.min_overlap_ratio = 0.3;
  p.clustering.min_overlap_ratio = 0.3;
  p.voting.min_overlap_ratio = 0.3;
  return p;
}

// Args: {flights, threads}.
void BM_S2TFull(benchmark::State& state) {
  const auto store = MakeMod(state.range(0));
  const auto threads = static_cast<size_t>(state.range(1));
  core::S2TClustering s2t(Params());
  exec::ExecContext ctx(threads);
  exec::ExecContext* exec = threads > 1 ? &ctx : nullptr;
  core::S2TTimings timings;
  size_t clusters = 0, outliers = 0, subs = 0;
  for (auto _ : state) {
    auto result = s2t.Run(store, exec);
    benchmark::DoNotOptimize(result);
    timings = result->timings;
    clusters = result->NumClusters();
    outliers = result->NumOutliers();
    subs = result->sub_trajectories.size();
  }
  state.counters["N"] = static_cast<double>(store.NumTrajectories());
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["sub_trajs"] = static_cast<double>(subs);
  state.counters["clusters"] = static_cast<double>(clusters);
  state.counters["outliers"] = static_cast<double>(outliers);
  state.counters["arena_ms"] = timings.arena_build_us / 1000.0;
  state.counters["index_ms"] = timings.index_build_us / 1000.0;
  state.counters["voting_ms"] = timings.voting_us / 1000.0;
  state.counters["voting_probe_ms"] = timings.voting_probe_us / 1000.0;
  state.counters["voting_kernel_ms"] = timings.voting_kernel_us / 1000.0;
  state.counters["segmentation_ms"] = timings.segmentation_us / 1000.0;
  state.counters["segmentation_dp_ms"] = timings.segmentation_dp_us / 1000.0;
  state.counters["segmentation_materialize_ms"] =
      timings.segmentation_materialize_us / 1000.0;
  state.counters["sampling_ms"] = timings.sampling_us / 1000.0;
  state.counters["clustering_ms"] = timings.clustering_us / 1000.0;

  BenchRecord rec;
  rec.flights = static_cast<size_t>(state.range(0));
  rec.threads = threads;
  rec.segments = store.NumSegments();
  rec.clusters = clusters;
  rec.outliers = outliers;
  rec.sub_trajs = subs;
  rec.wall_ms = timings.TotalUs() / 1000.0;
  rec.timings = timings;
  Records().push_back(rec);
}

void WriteJson(const char* path) {
  if (Records().empty()) {
    // A filtered run that skipped BM_S2TFull must not clobber a previous
    // measurement with an empty baseline.
    std::fprintf(stderr, "no records; leaving %s untouched\n", path);
    return;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"s2t_scale\",\n  \"runs\": [\n");
  // The harness calls each benchmark several times while calibrating the
  // iteration count; keep only the final (measured) record per point.
  std::vector<BenchRecord> recs;
  for (const auto& r : Records()) {
    bool replaced = false;
    for (auto& kept : recs) {
      if (kept.flights == r.flights && kept.threads == r.threads) {
        kept = r;
        replaced = true;
        break;
      }
    }
    if (!replaced) recs.push_back(r);
  }
  for (size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    std::fprintf(
        f,
        "    {\"flights\": %zu, \"threads\": %zu, \"segments\": %zu, "
        "\"sub_trajectories\": %zu, \"clusters\": %zu, \"outliers\": %zu, "
        "\"wall_ms\": %.3f, \"arena_build_ms\": %.3f, "
        "\"index_build_ms\": %.3f, \"voting_ms\": %.3f, "
        "\"voting_probe_ms\": %.3f, \"voting_kernel_ms\": %.3f, "
        "\"segmentation_ms\": %.3f, \"segmentation_dp_ms\": %.3f, "
        "\"segmentation_materialize_ms\": %.3f, \"sampling_ms\": %.3f, "
        "\"clustering_ms\": %.3f}%s\n",
        r.flights, r.threads, r.segments, r.sub_trajs, r.clusters, r.outliers,
        r.wall_ms, r.timings.arena_build_us / 1000.0,
        r.timings.index_build_us / 1000.0, r.timings.voting_us / 1000.0,
        r.timings.voting_probe_us / 1000.0,
        r.timings.voting_kernel_us / 1000.0,
        r.timings.segmentation_us / 1000.0,
        r.timings.segmentation_dp_us / 1000.0,
        r.timings.segmentation_materialize_us / 1000.0,
        r.timings.sampling_us / 1000.0, r.timings.clustering_us / 1000.0,
        i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

// Cardinality sweep at 1 thread, then a thread sweep at the largest MOD.
BENCHMARK(BM_S2TFull)
    ->Args({20, 1})
    ->Args({40, 1})
    ->Args({80, 1})
    ->Args({160, 1})
    ->Args({160, 2})
    ->Args({160, 4})
    ->Args({160, 8})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteJson("BENCH_s2t.json");
  return 0;
}
