// Experiment E8 (DESIGN.md): the Fig. 2 maintenance loop — ReTraTree
// insertion throughput, the gamma ablation (outlier-buffer threshold that
// triggers the S2T re-clustering runs), and the batch-vs-sequential
// ingest thread sweep of the two-phase `InsertBatch` pipeline.
//
// Besides the console report, every ingest-sweep point is appended to
// `BENCH_ingest.json` in the working directory (one record per
// (mode, threads) with the split/apply phase breakdown), so successive
// PRs can track the ingest perf trajectory mechanically — the companion
// of bench_s2t_scale's BENCH_s2t.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/retratree.h"
#include "datagen/aircraft.h"
#include "exec/exec_context.h"
#include "storage/env.h"

namespace {

using namespace hermes;

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

traj::TrajectoryStore MakeMod(size_t flights) {
  datagen::AircraftScenarioParams p =
      datagen::AircraftScenarioParams::Default();
  p.num_flights = flights;
  p.sample_dt = 20.0;
  p.seed = 41;
  auto scenario = datagen::GenerateAircraftScenario(p);
  return std::move(scenario->store);
}

core::ReTraTreeParams TreeParams(const traj::TrajectoryStore& store,
                                 size_t gamma) {
  const auto [t0, t1] = store.TimeDomain();
  core::ReTraTreeParams tp;
  tp.tau = (t1 - t0) / 4;
  tp.delta = tp.tau / 4;
  tp.t_align = tp.delta;
  tp.d_assign = 3000.0;
  tp.gamma = gamma;
  tp.origin = t0;
  tp.s2t.SetSigma(1500.0).SetEpsilon(3000.0);
  tp.s2t.segmentation.min_part_length = 3;
  tp.s2t.sampling.sigma = 4000.0;
  tp.s2t.sampling.gain_stop_ratio = 0.1;
  tp.s2t.sampling.min_overlap_ratio = 0.3;
  tp.s2t.clustering.min_overlap_ratio = 0.3;
  tp.s2t.voting.min_overlap_ratio = 0.3;
  return tp;
}

struct IngestRecord {
  std::string mode;  // "sequential" (per-trajectory loop) or "batch".
  size_t threads = 0;
  size_t flights = 0;
  size_t pieces = 0;
  size_t s2t_runs = 0;
  size_t reps = 0;
  double wall_ms = 0.0;
  double ingest_split_ms = 0.0;
  double ingest_apply_ms = 0.0;
};

std::vector<IngestRecord>& Records() {
  static auto* records = new std::vector<IngestRecord>();
  return *records;
}

/// Full build of the tree from a trajectory stream, gamma ablation.
void BM_ReTraTreeBuild(benchmark::State& state) {
  const auto store = MakeMod(80);
  core::ReTraTreeStats stats;
  size_t reps = 0;
  int run = 0;
  for (auto _ : state) {
    auto env = storage::Env::NewMemEnv();
    auto tree = std::move(core::ReTraTree::Open(
                              env.get(), "t" + std::to_string(run++),
                              TreeParams(store, state.range(0))))
                    .value();
    (void)tree->InsertStore(store);
    benchmark::DoNotOptimize(tree);
    stats = tree->stats();
    reps = tree->TotalRepresentatives();
  }
  state.counters["gamma"] = static_cast<double>(state.range(0));
  state.counters["pieces"] = static_cast<double>(stats.pieces_inserted);
  state.counters["assigned"] =
      static_cast<double>(stats.assigned_to_existing);
  state.counters["s2t_runs"] = static_cast<double>(stats.s2t_runs);
  state.counters["reps"] = static_cast<double>(reps);
}

/// Marginal insertion cost into an already-populated tree (the common
/// steady-state path: assignment against existing representatives).
void BM_ReTraTreeSteadyInsert(benchmark::State& state) {
  const auto store = MakeMod(80);
  auto env = storage::Env::NewMemEnv();
  auto tree = std::move(core::ReTraTree::Open(env.get(), "steady",
                                              TreeParams(store, 24)))
                  .value();
  (void)tree->InsertStore(store);
  // Fresh trajectories to insert, one per iteration.
  const auto extra = MakeMod(200);
  size_t next = 80;
  for (auto _ : state) {
    (void)tree->Insert(extra.Get(next % extra.NumTrajectories()), next);
    ++next;
  }
  state.SetItemsProcessed(state.iterations());
}

/// Batch-vs-sequential ingest thread sweep. Arg 0 is the thread count;
/// 0 means the sequential per-trajectory Insert loop (the pre-batch
/// baseline), >= 1 runs InsertStore's two-phase batch pipeline.
void BM_ReTraTreeIngest(benchmark::State& state) {
  constexpr size_t kFlights = 80;
  const auto store = MakeMod(kFlights);
  const auto threads = static_cast<size_t>(state.range(0));
  const bool batch = threads >= 1;
  core::ReTraTreeStats stats;
  size_t reps = 0;
  double wall_ms = 0.0;
  int run = 0;
  for (auto _ : state) {
    auto env = storage::Env::NewMemEnv();
    exec::ExecContext ctx(batch ? std::max<size_t>(threads, 1) : 1);
    exec::ExecContext* exec = threads > 1 ? &ctx : nullptr;
    auto tree = std::move(core::ReTraTree::Open(
                              env.get(), "i" + std::to_string(run++),
                              TreeParams(store, 12), exec))
                    .value();
    const int64_t start = NowUs();
    if (batch) {
      (void)tree->InsertStore(store, exec);
    } else {
      for (traj::TrajectoryId tid = 0; tid < store.NumTrajectories();
           ++tid) {
        (void)tree->Insert(store.Get(tid), tid);
      }
    }
    wall_ms = (NowUs() - start) / 1000.0;
    benchmark::DoNotOptimize(tree);
    stats = tree->stats();
    reps = tree->TotalRepresentatives();
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["pieces"] = static_cast<double>(stats.pieces_inserted);
  state.counters["s2t_runs"] = static_cast<double>(stats.s2t_runs);
  state.counters["reps"] = static_cast<double>(reps);
  state.counters["split_ms"] = stats.ingest_split_us / 1000.0;
  state.counters["apply_ms"] = stats.ingest_apply_us / 1000.0;

  IngestRecord rec;
  rec.mode = batch ? "batch" : "sequential";
  rec.threads = std::max<size_t>(threads, 1);
  rec.flights = kFlights;
  rec.pieces = stats.pieces_inserted;
  rec.s2t_runs = stats.s2t_runs;
  rec.reps = reps;
  rec.wall_ms = wall_ms;
  rec.ingest_split_ms = stats.ingest_split_us / 1000.0;
  rec.ingest_apply_ms = stats.ingest_apply_us / 1000.0;
  Records().push_back(rec);
}

void WriteJson(const char* path) {
  if (Records().empty()) {
    // A filtered run that skipped the ingest sweep must not clobber a
    // previous measurement with an empty baseline.
    std::fprintf(stderr, "no ingest records; leaving %s untouched\n", path);
    return;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  // The harness calls each benchmark several times while calibrating the
  // iteration count; keep only the final (measured) record per point.
  std::vector<IngestRecord> recs;
  for (const auto& r : Records()) {
    bool replaced = false;
    for (auto& kept : recs) {
      if (kept.mode == r.mode && kept.threads == r.threads) {
        kept = r;
        replaced = true;
        break;
      }
    }
    if (!replaced) recs.push_back(r);
  }
  std::fprintf(f, "{\n  \"bench\": \"retratree_ingest\",\n  \"runs\": [\n");
  for (size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"threads\": %zu, \"flights\": %zu, "
        "\"pieces\": %zu, \"s2t_runs\": %zu, \"reps\": %zu, "
        "\"wall_ms\": %.3f, \"ingest_split_ms\": %.3f, "
        "\"ingest_apply_ms\": %.3f}%s\n",
        r.mode.c_str(), r.threads, r.flights, r.pieces, r.s2t_runs, r.reps,
        r.wall_ms, r.ingest_split_ms, r.ingest_apply_ms,
        i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

// The workload yields ~20 pieces per sub-chunk, so the sweep covers the
// regime where the buffer threshold actually fires (4..24).
BENCHMARK(BM_ReTraTreeBuild)->Arg(4)->Arg(8)->Arg(12)->Arg(24)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReTraTreeSteadyInsert)->Unit(benchmark::kMicrosecond);
// 0 = sequential per-trajectory loop baseline; 1/2/4/8 = batch sweep.
BENCHMARK(BM_ReTraTreeIngest)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteJson("BENCH_ingest.json");
  return 0;
}
