// Experiment E8 (DESIGN.md): the Fig. 2 maintenance loop — ReTraTree
// insertion throughput and the gamma ablation (outlier-buffer threshold
// that triggers the S2T re-clustering runs).

#include <benchmark/benchmark.h>

#include "core/retratree.h"
#include "datagen/aircraft.h"
#include "storage/env.h"

namespace {

using namespace hermes;

traj::TrajectoryStore MakeMod(size_t flights) {
  datagen::AircraftScenarioParams p =
      datagen::AircraftScenarioParams::Default();
  p.num_flights = flights;
  p.sample_dt = 20.0;
  p.seed = 41;
  auto scenario = datagen::GenerateAircraftScenario(p);
  return std::move(scenario->store);
}

core::ReTraTreeParams TreeParams(const traj::TrajectoryStore& store,
                                 size_t gamma) {
  const auto [t0, t1] = store.TimeDomain();
  core::ReTraTreeParams tp;
  tp.tau = (t1 - t0) / 4;
  tp.delta = tp.tau / 4;
  tp.t_align = tp.delta;
  tp.d_assign = 3000.0;
  tp.gamma = gamma;
  tp.origin = t0;
  tp.s2t.SetSigma(1500.0).SetEpsilon(3000.0);
  tp.s2t.segmentation.min_part_length = 3;
  tp.s2t.sampling.sigma = 4000.0;
  tp.s2t.sampling.gain_stop_ratio = 0.1;
  tp.s2t.sampling.min_overlap_ratio = 0.3;
  tp.s2t.clustering.min_overlap_ratio = 0.3;
  tp.s2t.voting.min_overlap_ratio = 0.3;
  return tp;
}

/// Full build of the tree from a trajectory stream, gamma ablation.
void BM_ReTraTreeBuild(benchmark::State& state) {
  const auto store = MakeMod(80);
  core::ReTraTreeStats stats;
  size_t reps = 0;
  int run = 0;
  for (auto _ : state) {
    auto env = storage::Env::NewMemEnv();
    auto tree = std::move(core::ReTraTree::Open(
                              env.get(), "t" + std::to_string(run++),
                              TreeParams(store, state.range(0))))
                    .value();
    (void)tree->InsertStore(store);
    benchmark::DoNotOptimize(tree);
    stats = tree->stats();
    reps = tree->TotalRepresentatives();
  }
  state.counters["gamma"] = static_cast<double>(state.range(0));
  state.counters["pieces"] = static_cast<double>(stats.pieces_inserted);
  state.counters["assigned"] =
      static_cast<double>(stats.assigned_to_existing);
  state.counters["s2t_runs"] = static_cast<double>(stats.s2t_runs);
  state.counters["reps"] = static_cast<double>(reps);
}

/// Marginal insertion cost into an already-populated tree (the common
/// steady-state path: assignment against existing representatives).
void BM_ReTraTreeSteadyInsert(benchmark::State& state) {
  const auto store = MakeMod(80);
  auto env = storage::Env::NewMemEnv();
  auto tree = std::move(core::ReTraTree::Open(env.get(), "steady",
                                              TreeParams(store, 24)))
                  .value();
  (void)tree->InsertStore(store);
  // Fresh trajectories to insert, one per iteration.
  const auto extra = MakeMod(200);
  size_t next = 80;
  for (auto _ : state) {
    (void)tree->Insert(extra.Get(next % extra.NumTrajectories()), next);
    ++next;
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

// The workload yields ~20 pieces per sub-chunk, so the sweep covers the
// regime where the buffer threshold actually fires (4..24).
BENCHMARK(BM_ReTraTreeBuild)->Arg(4)->Arg(8)->Arg(12)->Arg(24)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReTraTreeSteadyInsert)->Unit(benchmark::kMicrosecond);
