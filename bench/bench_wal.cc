// Durability-path benchmarks: what the WAL costs on the ingest hot path
// and what a restart costs once a WAL tail has accumulated.
//
//   - append+sync: one group commit = N appends + 1 Sync (the shape the
//     ingest worker produces per drain), swept over batch sizes.
//   - replay scan: wal::ReadSegment over ~1/4/16 MB segments — the
//     CRC-checked sequential read recovery performs per segment.
//   - service recovery: full Server::Start against a WAL of the same
//     tail sizes (decode + re-apply + republish, not just the scan).
//
// Every point is appended to `BENCH_wal.json` so tools/bench_diff.py can
// gate the durability tax across PRs like the other BENCH files.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "datagen/maritime.h"
#include "service/server.h"
#include "storage/env.h"
#include "traj/trajectory_store.h"
#include "wal/wal.h"

namespace {

using namespace hermes;  // Bench-local brevity.

constexpr char kDir[] = "wal";

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct WalRecord {
  std::string mode;   // "append_sync" / "replay_scan" / "service_recovery".
  int batch = 0;      // Records per group commit (append_sync only).
  int tail_mb = 0;    // Target WAL size (replay/recovery only).
  double wall_ms = 0.0;
  double records_per_s = 0.0;
  double mb_per_s = 0.0;
  uint64_t records = 0;
};

std::vector<WalRecord>& Records() {
  static auto* records = new std::vector<WalRecord>();
  return *records;
}

// ---------------------------------------------------------------------------
// Group commit: N appends + one Sync per iteration
// ---------------------------------------------------------------------------

void BM_WalAppendSync(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const std::string payload(256, 'x');
  auto env = storage::Env::NewMemEnv();
  auto writer = std::move(wal::Writer::Open(env.get(), kDir, 1, 1)).value();
  uint64_t commits = 0;
  const int64_t start = NowUs();
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      auto lsn = writer->Append(wal::RecordType::kInsertBatch, payload);
      benchmark::DoNotOptimize(lsn);
    }
    auto sync = writer->Sync();
    benchmark::DoNotOptimize(sync);
    ++commits;
  }
  const double total_ms = (NowUs() - start) / 1000.0;
  const double total_records = static_cast<double>(commits) * batch;
  state.counters["batch"] = batch;
  state.counters["records_per_s"] =
      total_ms > 0 ? total_records / (total_ms / 1000.0) : 0.0;
  state.SetBytesProcessed(static_cast<int64_t>(writer->bytes_appended()));

  WalRecord rec;
  rec.mode = "append_sync";
  rec.batch = batch;
  rec.wall_ms = commits == 0 ? 0.0 : total_ms / static_cast<double>(commits);
  rec.records_per_s =
      total_ms > 0 ? total_records / (total_ms / 1000.0) : 0.0;
  rec.mb_per_s =
      total_ms > 0
          ? static_cast<double>(writer->bytes_appended()) / 1048576.0 /
                (total_ms / 1000.0)
          : 0.0;
  rec.records = static_cast<uint64_t>(total_records);
  Records().push_back(rec);
}

// ---------------------------------------------------------------------------
// Replay scan: ReadSegment over a pre-built segment of ~tail_mb MB
// ---------------------------------------------------------------------------

/// One pre-built segment per tail size, shared across calibration runs.
storage::Env* ScanEnv(int tail_mb) {
  static auto* envs = new std::map<int, std::unique_ptr<storage::Env>>();
  auto it = envs->find(tail_mb);
  if (it != envs->end()) return it->second.get();
  auto env = storage::Env::NewMemEnv();
  auto writer = std::move(wal::Writer::Open(env.get(), kDir, 1, 1)).value();
  const std::string payload(1024, 'p');
  const uint64_t target = static_cast<uint64_t>(tail_mb) << 20;
  while (writer->bytes_appended() < target) {
    (void)writer->Append(wal::RecordType::kInsertBatch, payload);
  }
  (void)writer->Sync();
  return envs->emplace(tail_mb, std::move(env)).first->second.get();
}

void BM_WalReplayScan(benchmark::State& state) {
  const int tail_mb = static_cast<int>(state.range(0));
  storage::Env* env = ScanEnv(tail_mb);
  uint64_t records = 0, bytes = 0, iters = 0;
  const int64_t start = NowUs();
  for (auto _ : state) {
    auto scan = wal::ReadSegment(env, kDir, 1);
    benchmark::DoNotOptimize(scan);
    records = scan->records.size();
    bytes = scan->valid_bytes;
    ++iters;
  }
  const double ms =
      iters == 0 ? 0.0 : (NowUs() - start) / 1000.0 / static_cast<double>(iters);
  state.counters["records"] = static_cast<double>(records);
  state.SetBytesProcessed(static_cast<int64_t>(bytes * iters));

  WalRecord rec;
  rec.mode = "replay_scan";
  rec.tail_mb = tail_mb;
  rec.wall_ms = ms;
  rec.records = records;
  rec.mb_per_s = ms > 0 ? static_cast<double>(bytes) / 1048576.0 / (ms / 1000.0)
                        : 0.0;
  rec.records_per_s =
      ms > 0 ? static_cast<double>(records) / (ms / 1000.0) : 0.0;
  Records().push_back(rec);
}

// ---------------------------------------------------------------------------
// Service recovery: Server::Start against a populated WAL
// ---------------------------------------------------------------------------

/// One populated durable Env per tail size: a server ingests FLUSH-acked
/// batches until the WAL reaches the target, then shuts down cleanly
/// (no checkpoint — recovery must replay the whole tail).
storage::Env* RecoveryEnv(int tail_mb) {
  static auto* envs = new std::map<int, std::unique_ptr<storage::Env>>();
  auto it = envs->find(tail_mb);
  if (it != envs->end()) return it->second.get();

  auto env = storage::Env::NewMemEnv();
  {
    service::ServerOptions opts;
    opts.wal_dir = kDir;
    auto server = std::move(service::Server::Start(opts, env.get())).value();
    (void)server->CreateMod("fleet");
    datagen::MaritimeScenarioParams p;
    p.num_ships = 32;
    p.sample_dt = 300.0;
    p.seed = 13;
    const traj::TrajectoryStore store =
        std::move(datagen::GenerateMaritimeScenario(p)->store);
    std::vector<traj::Trajectory> batch;
    for (size_t i = 0; i < store.NumTrajectories(); ++i) {
      batch.push_back(store.Get(static_cast<traj::TrajectoryId>(i)));
    }
    const uint64_t target = static_cast<uint64_t>(tail_mb) << 20;
    while (server->Stats().wal_bytes_appended < target) {
      (void)server->EnqueueInsert("fleet", batch);
      (void)server->Flush();
    }
  }
  return envs->emplace(tail_mb, std::move(env)).first->second.get();
}

void BM_ServiceRecovery(benchmark::State& state) {
  const int tail_mb = static_cast<int>(state.range(0));
  storage::Env* env = RecoveryEnv(tail_mb);
  service::ServerOptions opts;
  opts.wal_dir = kDir;
  uint64_t replayed = 0, iters = 0;
  const int64_t start = NowUs();
  for (auto _ : state) {
    // Each recovery opens one fresh (empty) segment, so later iterations
    // scan a few trivial extra files — constant noise, not growth in the
    // replayed record count reported below.
    auto server = service::Server::Start(opts, env);
    benchmark::DoNotOptimize(server);
    replayed = (*server)->Stats().wal_records_replayed;
    ++iters;
  }
  const double ms =
      iters == 0 ? 0.0 : (NowUs() - start) / 1000.0 / static_cast<double>(iters);
  state.counters["replayed"] = static_cast<double>(replayed);

  WalRecord rec;
  rec.mode = "service_recovery";
  rec.tail_mb = tail_mb;
  rec.wall_ms = ms;
  rec.records = replayed;
  rec.records_per_s =
      ms > 0 ? static_cast<double>(replayed) / (ms / 1000.0) : 0.0;
  rec.mb_per_s = ms > 0 ? static_cast<double>(tail_mb) / (ms / 1000.0) : 0.0;
  Records().push_back(rec);
}

void WriteJson(const char* path) {
  if (Records().empty()) {
    // A filtered run must not clobber a previous measurement with an
    // empty baseline.
    std::fprintf(stderr, "no wal records; leaving %s untouched\n", path);
    return;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  // The harness calls each benchmark several times while calibrating the
  // iteration count; keep only the final (measured) record per point.
  std::vector<WalRecord> recs;
  for (const auto& r : Records()) {
    bool replaced = false;
    for (auto& kept : recs) {
      if (kept.mode == r.mode && kept.batch == r.batch &&
          kept.tail_mb == r.tail_mb) {
        kept = r;
        replaced = true;
        break;
      }
    }
    if (!replaced) recs.push_back(r);
  }
  std::fprintf(f, "{\n  \"bench\": \"wal\",\n  \"runs\": [\n");
  for (size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"batch\": %d, \"tail_mb\": %d, "
        "\"wall_ms\": %.3f, \"records\": %llu, \"records_per_s\": %.0f, "
        "\"mb_per_s\": %.1f}%s\n",
        r.mode.c_str(), r.batch, r.tail_mb, r.wall_ms,
        static_cast<unsigned long long>(r.records), r.records_per_s,
        r.mb_per_s, i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

BENCHMARK(BM_WalAppendSync)->Arg(1)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WalReplayScan)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ServiceRecovery)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteJson("BENCH_wal.json");
  return 0;
}
