// Sharded scatter–gather benchmark: the same mixed ingest+query workload
// against a shard::Coordinator with 1, 2, and 4 shards. "query" mode runs
// four concurrent sessions sweeping S2T_MEMBERS / RANGE over a quiesced
// merged snapshot; "mixed" mode streams the back half of the fleet
// through the routed INSERT path while the readers run. Every sweep
// point is appended to `BENCH_shard.json` (one record per
// (mode, shards)), diffed across runs by the CI bench-gate — the
// scatter/merge overhead a shard adds is exactly what this gate watches.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/maritime.h"
#include "service/service_config.h"
#include "shard/coordinator.h"
#include "sql/statement_executor.h"

namespace {

using namespace hermes;

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr size_t kShips = 24;
constexpr size_t kClients = 4;

traj::TrajectoryStore MakeMod(size_t ships) {
  datagen::MaritimeScenarioParams p;
  p.num_ships = ships;
  p.sample_dt = 300.0;
  p.seed = 7;
  auto scenario = datagen::GenerateMaritimeScenario(p);
  return std::move(scenario->store);
}

/// One trajectory through the routed statement plane: an
/// all-placeholder INSERT with typed binds.
Status InsertTrajectory(sql::StatementExecutor* db,
                        const traj::Trajectory& t) {
  std::string text = "INSERT INTO ships VALUES ";
  std::vector<sql::Value> binds;
  binds.reserve(t.size() * 4);
  for (size_t i = 0; i < t.size(); ++i) {
    const auto& p = t.samples()[i];
    if (i > 0) text += ", ";
    text += "($" + std::to_string(4 * i + 1) + ", $" +
            std::to_string(4 * i + 2) + ", $" + std::to_string(4 * i + 3) +
            ", $" + std::to_string(4 * i + 4) + ")";
    binds.push_back(sql::Value::Int(static_cast<int64_t>(t.object_id())));
    binds.push_back(sql::Value::Double(p.t));
    binds.push_back(sql::Value::Double(p.x));
    binds.push_back(sql::Value::Double(p.y));
  }
  text += ";";
  HERMES_ASSIGN_OR_RETURN(sql::PreparedHandle handle, db->Prepare(text));
  StatusOr<sql::Table> ack = db->BindExecute(handle.id, binds);
  (void)db->ClosePrepared(handle.id);
  return ack.status();
}

struct ShardRecord {
  std::string mode;  // "query" (quiesced) or "mixed" (ingest running).
  size_t shards = 0;
  size_t queries = 0;
  size_t ingested = 0;
  double wall_ms = 0.0;
  double queries_per_sec = 0.0;
};

std::vector<ShardRecord>& Records() {
  static auto* records = new std::vector<ShardRecord>();
  return *records;
}

/// One sweep: `state.range(0)` shards, `kClients` coordinator sessions
/// each issuing alternating S2T_MEMBERS / RANGE statements. With
/// `with_ingest`, the main thread simultaneously streams the back half
/// of the fleet through the routed INSERT path and flushes.
void RunSweep(benchmark::State& state, bool with_ingest) {
  const traj::TrajectoryStore ships = MakeMod(kShips);
  const auto [t0, t1] = ships.TimeDomain();
  const size_t shards = static_cast<size_t>(state.range(0));
  constexpr int kQueriesPerClient = 4;
  const std::string members_sql = "SELECT S2T_MEMBERS(ships, 800, 1600);";
  const std::string range_sql = "SELECT RANGE(ships, " + std::to_string(t0) +
                                ", " + std::to_string(t1 + 1) + ");";

  const size_t initial = with_ingest ? kShips / 2 : kShips;
  size_t queries = 0;
  size_t ingested = 0;
  double wall_ms = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    service::ServiceConfig config;
    config.shards = shards;
    config.threads = 2;
    auto coord = std::move(shard::Coordinator::Start(config)).value();
    traj::TrajectoryStore seed;
    for (traj::TrajectoryId tid = 0; tid < initial; ++tid) {
      (void)seed.Add(ships.Get(tid));
    }
    (void)coord->RegisterStore("ships", std::move(seed));
    state.ResumeTiming();

    const int64_t start = NowUs();
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&coord, &members_sql, &range_sql] {
        auto session = coord->Connect();
        for (int q = 0; q < kQueriesPerClient; ++q) {
          auto table =
              session->Execute(q % 2 == 0 ? members_sql : range_sql);
          benchmark::DoNotOptimize(table);
        }
      });
    }
    if (with_ingest) {
      auto writer = coord->Connect();
      for (traj::TrajectoryId tid = initial; tid < kShips; ++tid) {
        (void)InsertTrajectory(writer.get(), ships.Get(tid));
      }
      (void)coord->Flush();
    }
    for (auto& t : threads) t.join();
    wall_ms = (NowUs() - start) / 1000.0;
    queries = kClients * kQueriesPerClient;
    ingested = coord->Stats().total.trajectories_ingested;
    state.PauseTiming();
    coord->Shutdown();
    state.ResumeTiming();
  }

  state.counters["shards"] = static_cast<double>(shards);
  state.counters["queries"] = static_cast<double>(queries);
  state.counters["ingested"] = static_cast<double>(ingested);

  ShardRecord rec;
  rec.mode = with_ingest ? "mixed" : "query";
  rec.shards = shards;
  rec.queries = queries;
  rec.ingested = ingested;
  rec.wall_ms = wall_ms;
  rec.queries_per_sec = wall_ms > 0 ? queries / (wall_ms / 1000.0) : 0.0;
  Records().push_back(rec);
}

void BM_ShardQueryClients(benchmark::State& state) {
  RunSweep(state, /*with_ingest=*/false);
}

void BM_ShardMixedClients(benchmark::State& state) {
  RunSweep(state, /*with_ingest=*/true);
}

void WriteJson(const char* path) {
  if (Records().empty()) {
    // A filtered run that skipped the sweep must not clobber a previous
    // measurement with an empty baseline.
    std::fprintf(stderr, "no shard records; leaving %s untouched\n", path);
    return;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  // Keep only the final (measured) record per (mode, shards) point.
  std::vector<ShardRecord> recs;
  for (const auto& r : Records()) {
    bool replaced = false;
    for (auto& kept : recs) {
      if (kept.mode == r.mode && kept.shards == r.shards) {
        kept = r;
        replaced = true;
        break;
      }
    }
    if (!replaced) recs.push_back(r);
  }
  std::fprintf(f, "{\n  \"bench\": \"shard_scatter_gather\",\n  \"runs\": [\n");
  for (size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"shards\": %zu, \"queries\": %zu, "
        "\"ingested\": %zu, \"wall_ms\": %.3f, "
        "\"queries_per_sec\": %.2f}%s\n",
        r.mode.c_str(), r.shards, r.queries, r.ingested, r.wall_ms,
        r.queries_per_sec, i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

BENCHMARK(BM_ShardQueryClients)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ShardMixedClients)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteJson("BENCH_shard.json");
  return 0;
}
