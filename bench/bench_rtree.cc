// Experiment E9 (DESIGN.md): the pg3D-Rtree/GiST substrate — range-query
// cost vs sequential scan across selectivities, insert vs STR bulk-load
// construction, and buffer-pool behaviour.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>

#include "common/rng.h"
#include "exec/exec_context.h"
#include "rtree/rtree3d.h"
#include "storage/env.h"

namespace {

using namespace hermes;

std::vector<std::pair<geom::Mbb3D, uint64_t>> MakeBoxes(size_t n,
                                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<geom::Mbb3D, uint64_t>> items;
  items.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 10000);
    const double y = rng.Uniform(0, 10000);
    const double t = rng.Uniform(0, 10000);
    items.emplace_back(
        geom::Mbb3D(x, y, t, x + 20, y + 20, t + 20), i);
  }
  return items;
}

/// Query box with roughly `pct`% volume selectivity.
geom::Mbb3D QueryBox(double pct) {
  const double side = 10000.0 * std::cbrt(pct / 100.0);
  const double lo = (10000.0 - side) / 2;
  return geom::Mbb3D(lo, lo, lo, lo + side, lo + side, lo + side);
}

void BM_RTreeRangeQuery(benchmark::State& state) {
  auto env = storage::Env::NewMemEnv();
  auto tree = std::move(rtree::RTree3D::Open(env.get(), "q.idx")).value();
  auto items = MakeBoxes(50000, 3);
  (void)tree->BulkLoad(rtree::StrOrder(items, 128));
  const geom::Mbb3D query = QueryBox(static_cast<double>(state.range(0)));
  size_t hits = 0;
  for (auto _ : state) {
    auto result = tree->Search(query);
    benchmark::DoNotOptimize(result);
    hits = result->size();
  }
  state.counters["selectivity_pct"] = static_cast<double>(state.range(0));
  state.counters["hits"] = static_cast<double>(hits);
}

void BM_SequentialScan(benchmark::State& state) {
  auto items = MakeBoxes(50000, 3);
  const geom::Mbb3D query = QueryBox(static_cast<double>(state.range(0)));
  size_t hits = 0;
  for (auto _ : state) {
    size_t h = 0;
    for (const auto& [box, datum] : items) {
      if (box.Intersects(query)) ++h;
    }
    benchmark::DoNotOptimize(h);
    hits = h;
  }
  state.counters["selectivity_pct"] = static_cast<double>(state.range(0));
  state.counters["hits"] = static_cast<double>(hits);
}

void BM_RTreeInsertBuild(benchmark::State& state) {
  auto env = storage::Env::NewMemEnv();
  auto items = MakeBoxes(state.range(0), 5);
  int run = 0;
  for (auto _ : state) {
    auto tree = std::move(rtree::RTree3D::Open(
                              env.get(), "ins" + std::to_string(run++) +
                                             ".idx"))
                    .value();
    for (const auto& [box, datum] : items) {
      (void)tree->Insert(box, datum);
    }
    benchmark::DoNotOptimize(tree);
  }
}

void BM_RTreeStrBuild(benchmark::State& state) {
  auto env = storage::Env::NewMemEnv();
  auto items = MakeBoxes(state.range(0), 5);
  int run = 0;
  for (auto _ : state) {
    auto tree = std::move(rtree::RTree3D::Open(
                              env.get(), "str" + std::to_string(run++) +
                                             ".idx"))
                    .value();
    (void)tree->BulkLoad(rtree::StrOrder(items, 128));
    benchmark::DoNotOptimize(tree);
  }
}

// STR ordering with the sort phases fanned out over an ExecContext;
// reports speedup against the 1-thread run from the same process.
void BM_RTreeStrOrderParallel(benchmark::State& state) {
  auto items = MakeBoxes(200000, 11);
  static double seq_ms = 0.0;
  if (seq_ms == 0.0) {
    auto copy = items;
    const auto t0 = std::chrono::steady_clock::now();
    auto ordered = rtree::StrOrder(std::move(copy), 128, nullptr);
    benchmark::DoNotOptimize(ordered);
    seq_ms = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
  }
  exec::ExecContext ctx(state.range(0));
  double iter_ms_sum = 0.0;
  size_t iters = 0;
  for (auto _ : state) {
    auto copy = items;
    const auto t0 = std::chrono::steady_clock::now();
    auto ordered = rtree::StrOrder(std::move(copy), 128, &ctx);
    benchmark::DoNotOptimize(ordered);
    iter_ms_sum += std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    ++iters;
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["seq_ms"] = seq_ms;
  if (iters > 0 && iter_ms_sum > 0.0) {
    state.counters["speedup"] =
        seq_ms / (iter_ms_sum / static_cast<double>(iters));
  }
}

void BM_RTreeKnn(benchmark::State& state) {
  auto env = storage::Env::NewMemEnv();
  auto tree = std::move(rtree::RTree3D::Open(env.get(), "knn.idx")).value();
  (void)tree->BulkLoad(rtree::StrOrder(MakeBoxes(50000, 7), 128));
  size_t found = 0;
  for (auto _ : state) {
    auto result = tree->Knn({5000, 5000, 5000}, state.range(0));
    benchmark::DoNotOptimize(result);
    found = result->size();
  }
  state.counters["k"] = static_cast<double>(state.range(0));
  state.counters["found"] = static_cast<double>(found);
}

}  // namespace

BENCHMARK(BM_RTreeRangeQuery)->Arg(1)->Arg(5)->Arg(20)->Arg(60)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SequentialScan)->Arg(1)->Arg(5)->Arg(20)->Arg(60)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RTreeInsertBuild)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RTreeStrBuild)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RTreeStrOrderParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RTreeKnn)->Arg(1)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMicrosecond);
