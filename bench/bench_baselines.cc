// Experiment E5 (DESIGN.md): scenario-1 comparison — S2T-Clustering vs the
// related methods demoed alongside it: T-OPTICS [7], TRACLUS [5] and
// Convoys [4], on the same aircraft MOD.
//
// The paper's qualitative claim: S2T is the only one that is both
// sub-trajectory-grained and time-aware while remaining competitive in
// runtime; the co-movement method (Convoys) is parameter-heavy, TRACLUS
// ignores time, T-OPTICS clusters whole trajectories only.

#include <benchmark/benchmark.h>

#include "baselines/convoys.h"
#include "baselines/toptics.h"
#include "baselines/traclus.h"
#include "core/s2t_clustering.h"
#include "datagen/aircraft.h"

namespace {

using namespace hermes;

traj::TrajectoryStore MakeMod(size_t flights) {
  datagen::AircraftScenarioParams p =
      datagen::AircraftScenarioParams::Default();
  p.num_flights = flights;
  p.sample_dt = 20.0;
  p.seed = 37;
  auto scenario = datagen::GenerateAircraftScenario(p);
  return std::move(scenario->store);
}

void BM_S2T(benchmark::State& state) {
  const auto store = MakeMod(state.range(0));
  core::S2TParams p;
  p.SetSigma(1500.0).SetEpsilon(3000.0);
  p.segmentation.min_part_length = 3;
  p.sampling.sigma = 4000.0;
  p.sampling.gain_stop_ratio = 0.1;
  p.sampling.min_overlap_ratio = 0.3;
  p.clustering.min_overlap_ratio = 0.3;
  p.voting.min_overlap_ratio = 0.3;
  core::S2TClustering s2t(p);
  size_t clusters = 0;
  for (auto _ : state) {
    auto result = s2t.Run(store);
    benchmark::DoNotOptimize(result);
    clusters = result->NumClusters();
  }
  state.counters["clusters"] = static_cast<double>(clusters);
}

void BM_TOptics(benchmark::State& state) {
  const auto store = MakeMod(state.range(0));
  // Generous parameters: whole-trajectory clustering still struggles on
  // this workload (flights only co-move on sub-trajectories) — which is
  // the paper's motivation for sub-trajectory methods.
  baselines::TOpticsParams p;
  p.eps = 12000.0;
  p.min_pts = 2;
  p.min_overlap_ratio = 0.1;
  size_t clusters = 0;
  for (auto _ : state) {
    auto result = baselines::RunTOptics(store, p);
    benchmark::DoNotOptimize(result);
    clusters = result.num_clusters;
  }
  state.counters["clusters"] = static_cast<double>(clusters);
}

void BM_Traclus(benchmark::State& state) {
  const auto store = MakeMod(state.range(0));
  baselines::TraclusParams p;
  p.eps = 2500.0;
  p.min_lns = 4;
  size_t clusters = 0;
  for (auto _ : state) {
    auto result = baselines::RunTraclus(store, p);
    benchmark::DoNotOptimize(result);
    clusters = result.clusters.size();
  }
  state.counters["clusters"] = static_cast<double>(clusters);
}

void BM_Convoys(benchmark::State& state) {
  const auto store = MakeMod(state.range(0));
  // Lenient co-movement thresholds; the sensitivity of (eps, m, k) is the
  // "hard-to-tune parameters" point the paper makes about these patterns.
  baselines::ConvoyParams p;
  p.eps = 6000.0;
  p.m = 2;
  p.k = 2;
  p.snapshot_dt = 180.0;
  size_t convoys = 0;
  for (auto _ : state) {
    auto result = baselines::DiscoverConvoys(store, p);
    benchmark::DoNotOptimize(result);
    convoys = result.size();
  }
  state.counters["convoys"] = static_cast<double>(convoys);
}

}  // namespace

BENCHMARK(BM_S2T)->Arg(20)->Arg(40)->Arg(80)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TOptics)->Arg(20)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Traclus)->Arg(20)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Convoys)->Arg(20)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond);
