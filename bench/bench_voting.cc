// Experiment E4 (DESIGN.md): the preparatory-phase claim — in-DBMS,
// pg3D-Rtree-accelerated voting vs the "corresponding PostgreSQL
// function" (naive nested-loop voting), "orders of magnitude speedup".
//
// Series produced: naive vs indexed wall time for growing MOD cardinality
// N, plus the candidate-pair counts explaining the gap. Both engines
// produce bitwise-identical voting descriptors (tested in voting_test.cc).

#include <benchmark/benchmark.h>

#include "datagen/aircraft.h"
#include "rtree/str_bulk_load.h"
#include "storage/env.h"
#include "voting/voting.h"

namespace {

using hermes::datagen::AircraftScenarioParams;
using hermes::datagen::GenerateAircraftScenario;

hermes::traj::TrajectoryStore MakeMod(size_t flights) {
  AircraftScenarioParams p = AircraftScenarioParams::Default();
  p.num_flights = flights;
  p.sample_dt = 20.0;
  p.seed = 17;
  auto scenario = GenerateAircraftScenario(p);
  return std::move(scenario->store);
}

hermes::voting::VotingParams Params() {
  hermes::voting::VotingParams vp;
  vp.sigma = 1500.0;
  vp.cutoff_sigmas = 3.0;
  vp.min_overlap_ratio = 0.3;
  return vp;
}

void BM_VotingNaive(benchmark::State& state) {
  const auto store = MakeMod(state.range(0));
  uint64_t pairs = 0;
  for (auto _ : state) {
    auto result = hermes::voting::ComputeVotingNaive(store, Params());
    benchmark::DoNotOptimize(result);
    pairs = result->pairs_evaluated;
  }
  state.counters["N"] = static_cast<double>(store.NumTrajectories());
  state.counters["segments"] = static_cast<double>(store.NumSegments());
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_VotingIndexed(benchmark::State& state) {
  const auto store = MakeMod(state.range(0));
  auto env = hermes::storage::Env::NewMemEnv();
  auto index = hermes::rtree::BuildSegmentIndex(env.get(), "b.idx", store);
  uint64_t pairs = 0;
  for (auto _ : state) {
    auto result =
        hermes::voting::ComputeVotingIndexed(store, **index, Params());
    benchmark::DoNotOptimize(result);
    pairs = result->pairs_evaluated;
  }
  state.counters["N"] = static_cast<double>(store.NumTrajectories());
  state.counters["segments"] = static_cast<double>(store.NumSegments());
  state.counters["pairs"] = static_cast<double>(pairs);
}

// Multi-threaded indexed voting (identical output, private index handles
// per worker).
void BM_VotingParallel(benchmark::State& state) {
  const auto store = MakeMod(160);
  auto env = hermes::storage::Env::NewMemEnv();
  {
    auto index = hermes::rtree::BuildSegmentIndex(env.get(), "p.idx", store);
    (void)(*index)->Flush();
  }
  uint64_t pairs = 0;
  for (auto _ : state) {
    auto result = hermes::voting::ComputeVotingParallel(
        store, env.get(), "p.idx", Params(), state.range(0));
    benchmark::DoNotOptimize(result);
    pairs = result->pairs_evaluated;
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["pairs"] = static_cast<double>(pairs);
}

// Index construction cost (amortized setup of the fast path).
void BM_VotingIndexBuild(benchmark::State& state) {
  const auto store = MakeMod(state.range(0));
  auto env = hermes::storage::Env::NewMemEnv();
  int i = 0;
  for (auto _ : state) {
    auto index = hermes::rtree::BuildSegmentIndex(
        env.get(), "b" + std::to_string(i++) + ".idx", store);
    benchmark::DoNotOptimize(index);
  }
  state.counters["segments"] = static_cast<double>(store.NumSegments());
}

}  // namespace

BENCHMARK(BM_VotingNaive)->Arg(10)->Arg(20)->Arg(40)->Arg(80)->Arg(160)
    ->Arg(320)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VotingIndexed)->Arg(10)->Arg(20)->Arg(40)->Arg(80)->Arg(160)
    ->Arg(320)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VotingParallel)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VotingIndexBuild)->Arg(40)->Arg(160)
    ->Unit(benchmark::kMillisecond);
