// Experiment E4 (DESIGN.md): the preparatory-phase claim — in-DBMS,
// pg3D-Rtree-accelerated voting vs the "corresponding PostgreSQL
// function" (naive nested-loop voting), "orders of magnitude speedup".
//
// Series produced: naive vs indexed wall time for growing MOD cardinality
// N, plus the candidate-pair counts explaining the gap. Both engines
// produce bitwise-identical voting descriptors (tested in voting_test.cc).

#include <benchmark/benchmark.h>

#include <chrono>

#include "datagen/aircraft.h"
#include "exec/exec_context.h"
#include "rtree/str_bulk_load.h"
#include "storage/env.h"
#include "traj/segment_arena.h"
#include "voting/voting.h"

namespace {

using hermes::datagen::AircraftScenarioParams;
using hermes::datagen::GenerateAircraftScenario;

hermes::traj::TrajectoryStore MakeMod(size_t flights) {
  AircraftScenarioParams p = AircraftScenarioParams::Default();
  p.num_flights = flights;
  p.sample_dt = 20.0;
  p.seed = 17;
  auto scenario = GenerateAircraftScenario(p);
  return std::move(scenario->store);
}

hermes::voting::VotingParams Params() {
  hermes::voting::VotingParams vp;
  vp.sigma = 1500.0;
  vp.cutoff_sigmas = 3.0;
  vp.min_overlap_ratio = 0.3;
  return vp;
}

void BM_VotingNaive(benchmark::State& state) {
  const auto store = MakeMod(state.range(0));
  uint64_t pairs = 0;
  for (auto _ : state) {
    auto result = hermes::voting::ComputeVotingNaive(store, Params());
    benchmark::DoNotOptimize(result);
    pairs = result->pairs_evaluated;
  }
  state.counters["N"] = static_cast<double>(store.NumTrajectories());
  state.counters["segments"] = static_cast<double>(store.NumSegments());
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_VotingIndexed(benchmark::State& state) {
  const auto store = MakeMod(state.range(0));
  auto env = hermes::storage::Env::NewMemEnv();
  auto index = hermes::rtree::BuildSegmentIndex(env.get(), "b.idx", store);
  uint64_t pairs = 0;
  for (auto _ : state) {
    auto result =
        hermes::voting::ComputeVotingIndexed(store, **index, Params());
    benchmark::DoNotOptimize(result);
    pairs = result->pairs_evaluated;
  }
  state.counters["N"] = static_cast<double>(store.NumTrajectories());
  state.counters["segments"] = static_cast<double>(store.NumSegments());
  state.counters["pairs"] = static_cast<double>(pairs);
}

// Multi-threaded indexed voting (identical output, private index handles
// per worker).
void BM_VotingParallel(benchmark::State& state) {
  const auto store = MakeMod(160);
  auto env = hermes::storage::Env::NewMemEnv();
  {
    auto index = hermes::rtree::BuildSegmentIndex(env.get(), "p.idx", store);
    (void)(*index)->Flush();
  }
  uint64_t pairs = 0;
  for (auto _ : state) {
    auto result = hermes::voting::ComputeVotingParallel(
        store, env.get(), "p.idx", Params(), state.range(0));
    benchmark::DoNotOptimize(result);
    pairs = result->pairs_evaluated;
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["pairs"] = static_cast<double>(pairs);
}

// The arena + exec-context fast path: columnar `SegmentArena` shared by
// index build and voting, vote kernel fanned out over a thread pool.
// Reports the speedup versus the sequential (1-thread) arena run measured
// in the same process; results are bit-identical at every thread count.
void BM_VotingArenaIndexed(benchmark::State& state) {
  const auto store = MakeMod(320);
  auto env = hermes::storage::Env::NewMemEnv();
  auto index = hermes::rtree::BuildSegmentIndex(env.get(), "a.idx", store);
  const auto arena = hermes::traj::SegmentArena::Build(store);

  // Sequential reference, measured once per process.
  static double seq_ms = 0.0;
  if (seq_ms == 0.0) {
    const auto t0 = std::chrono::steady_clock::now();
    auto ref =
        hermes::voting::ComputeVotingIndexed(arena, store, **index, Params(),
                                             nullptr);
    benchmark::DoNotOptimize(ref);
    seq_ms = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
  }

  hermes::exec::ExecContext ctx(state.range(0));
  double iter_ms_sum = 0.0;
  size_t iters = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    auto result = hermes::voting::ComputeVotingIndexed(arena, store, **index,
                                                       Params(), &ctx);
    benchmark::DoNotOptimize(result);
    iter_ms_sum += std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    ++iters;
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["segments"] = static_cast<double>(arena.num_segments());
  state.counters["seq_ms"] = seq_ms;
  if (iters > 0 && iter_ms_sum > 0.0) {
    state.counters["speedup"] =
        seq_ms / (iter_ms_sum / static_cast<double>(iters));
  }
}

// Arena snapshot cost (the once-per-pipeline columnarization pass).
void BM_ArenaBuild(benchmark::State& state) {
  const auto store = MakeMod(320);
  hermes::exec::ExecContext ctx(state.range(0));
  for (auto _ : state) {
    auto arena = hermes::traj::SegmentArena::Build(store, &ctx);
    benchmark::DoNotOptimize(arena);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["segments"] = static_cast<double>(store.NumSegments());
}

// Index construction cost (amortized setup of the fast path).
void BM_VotingIndexBuild(benchmark::State& state) {
  const auto store = MakeMod(state.range(0));
  auto env = hermes::storage::Env::NewMemEnv();
  int i = 0;
  for (auto _ : state) {
    auto index = hermes::rtree::BuildSegmentIndex(
        env.get(), "b" + std::to_string(i++) + ".idx", store);
    benchmark::DoNotOptimize(index);
  }
  state.counters["segments"] = static_cast<double>(store.NumSegments());
}

}  // namespace

BENCHMARK(BM_VotingNaive)->Arg(10)->Arg(20)->Arg(40)->Arg(80)->Arg(160)
    ->Arg(320)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VotingIndexed)->Arg(10)->Arg(20)->Arg(40)->Arg(80)->Arg(160)
    ->Arg(320)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VotingParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VotingArenaIndexed)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ArenaBuild)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_VotingIndexBuild)->Arg(40)->Arg(160)
    ->Unit(benchmark::kMillisecond);
