// SQL surface overheads: what a client pays per statement, beyond the
// engine work itself. Three flavors of the same RANGE query:
//
//  - Execute:        tokenize + parse + execute, per call;
//  - Prepared:       parse once, Bind + execute per call;
//  - ExecuteCursor:  parse + execute, but rows pulled one at a time and
//                    the cursor dropped after the first k — the streaming
//                    win when a client only wants the head of a result.

#include <benchmark/benchmark.h>

#include "datagen/noise.h"
#include "sql/cursor.h"
#include "sql/executor.h"
#include "sql/statement_executor.h"

namespace {

using namespace hermes;

// All statement traffic goes through the backend-neutral
// `sql::StatementExecutor` — what the bench measures is the statement
// API any backend (embedded, service, shard coordinator, remote) pays.
sql::StatementExecutor& SharedExecutor() {
  static auto* executor = [] {
    auto* s = new sql::Session();
    traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
        4, 64, 2000.0, 800.0, 10.0, 10.0, /*seed=*/17, /*jitter=*/1.0);
    (void)s->RegisterStore("lanes", std::move(lanes));
    return sql::MakeSessionExecutor(s).release();
  }();
  return *executor;
}

void BM_SqlExecuteRange(benchmark::State& state) {
  sql::StatementExecutor& db = SharedExecutor();
  for (auto _ : state) {
    auto result = db.Execute("SELECT RANGE(lanes, 0, 1000);");
    if (!result.ok()) state.SkipWithError("RANGE failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SqlExecuteRange);

void BM_SqlPreparedRange(benchmark::State& state) {
  sql::StatementExecutor& db = SharedExecutor();
  auto prepared = db.Prepare("SELECT RANGE(lanes, $1, $2);");
  if (!prepared.ok()) {
    state.SkipWithError("prepare failed");
    return;
  }
  for (auto _ : state) {
    auto result = db.BindExecute(
        prepared->id, {sql::Value::Double(0.0), sql::Value::Double(1000.0)});
    if (!result.ok()) state.SkipWithError("RANGE failed");
    benchmark::DoNotOptimize(result);
  }
  (void)db.ClosePrepared(prepared->id);
}
BENCHMARK(BM_SqlPreparedRange);

// Args: rows fetched before the cursor is dropped.
void BM_SqlCursorRangeHead(benchmark::State& state) {
  sql::StatementExecutor& db = SharedExecutor();
  const auto head = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto cursor = db.ExecuteCursor("SELECT RANGE(lanes, 0, 1000);");
    if (!cursor.ok()) {
      state.SkipWithError("cursor failed");
      break;
    }
    std::vector<sql::Value> row;
    size_t fetched = 0;
    while (fetched < head) {
      auto more = (*cursor)->Next(&row);
      if (!more.ok() || !*more) break;
      ++fetched;
    }
    benchmark::DoNotOptimize(fetched);
  }
  state.counters["head_rows"] = static_cast<double>(head);
}
BENCHMARK(BM_SqlCursorRangeHead)->Arg(1)->Arg(16)->Arg(256);

void BM_SqlParseOnly(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = sql::ParseStatement(
        "SELECT QUT(lanes, 0, 3600, 900, 300, 75, 150, 32);");
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_SqlParseOnly);

}  // namespace
