// SQL surface overheads: what a client pays per statement, beyond the
// engine work itself. Three flavors of the same RANGE query:
//
//  - Execute:        tokenize + parse + execute, per call;
//  - Prepared:       parse once, Bind + execute per call;
//  - ExecuteCursor:  parse + execute, but rows pulled one at a time and
//                    the cursor dropped after the first k — the streaming
//                    win when a client only wants the head of a result.

#include <benchmark/benchmark.h>

#include "datagen/noise.h"
#include "sql/cursor.h"
#include "sql/executor.h"

namespace {

using namespace hermes;

sql::Session& SharedSession() {
  static auto* session = [] {
    auto* s = new sql::Session();
    traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
        4, 64, 2000.0, 800.0, 10.0, 10.0, /*seed=*/17, /*jitter=*/1.0);
    (void)s->RegisterStore("lanes", std::move(lanes));
    return s;
  }();
  return *session;
}

void BM_SqlExecuteRange(benchmark::State& state) {
  sql::Session& session = SharedSession();
  for (auto _ : state) {
    auto result = session.Execute("SELECT RANGE(lanes, 0, 1000);");
    if (!result.ok()) state.SkipWithError("RANGE failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SqlExecuteRange);

void BM_SqlPreparedRange(benchmark::State& state) {
  sql::Session& session = SharedSession();
  auto prepared = session.Prepare("SELECT RANGE(lanes, $1, $2);");
  if (!prepared.ok()) {
    state.SkipWithError("prepare failed");
    return;
  }
  for (auto _ : state) {
    (void)prepared->Bind(1, sql::Value::Double(0.0));
    (void)prepared->Bind(2, sql::Value::Double(1000.0));
    auto result = prepared->Execute();
    if (!result.ok()) state.SkipWithError("RANGE failed");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SqlPreparedRange);

// Args: rows fetched before the cursor is dropped.
void BM_SqlCursorRangeHead(benchmark::State& state) {
  sql::Session& session = SharedSession();
  const auto head = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto cursor = session.ExecuteCursor("SELECT RANGE(lanes, 0, 1000);");
    if (!cursor.ok()) {
      state.SkipWithError("cursor failed");
      break;
    }
    std::vector<sql::Value> row;
    size_t fetched = 0;
    while (fetched < head) {
      auto more = (*cursor)->Next(&row);
      if (!more.ok() || !*more) break;
      ++fetched;
    }
    benchmark::DoNotOptimize(fetched);
  }
  state.counters["head_rows"] = static_cast<double>(head);
}
BENCHMARK(BM_SqlCursorRangeHead)->Arg(1)->Arg(16)->Arg(256);

void BM_SqlParseOnly(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = sql::ParseStatement(
        "SELECT QUT(lanes, 0, 3600, 900, 300, 75, 150, 32);");
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_SqlParseOnly);

}  // namespace
