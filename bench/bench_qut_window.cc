// Experiment E6 (DESIGN.md): the scenario-2 headline — QuT-Clustering vs
// the alternative pipeline "(i) temporal range query, (ii) build an R-tree
// on the result, (iii) run S2T-Clustering", for varying temporal windows W.
//
// The paper's claim: QuT answers from the ReTraTree with boundary-only
// work, so it wins by a wide margin for small W and stays ahead as W
// grows. ReTraTree construction and the baseline's *global* index are both
// setup (not measured per query).

#include <benchmark/benchmark.h>

#include "baselines/range_rebuild.h"
#include "core/qut_clustering.h"
#include "core/retratree.h"
#include "datagen/aircraft.h"
#include "rtree/str_bulk_load.h"
#include "storage/env.h"

namespace {

using namespace hermes;  // Bench-local brevity.

struct Fixture {
  traj::TrajectoryStore store;
  std::unique_ptr<storage::Env> env;
  std::unique_ptr<core::ReTraTree> tree;
  std::unique_ptr<rtree::RTree3D> global_index;
  double t0 = 0.0;
  double t1 = 0.0;

  static core::S2TParams S2T() {
    core::S2TParams p;
    p.SetSigma(1500.0).SetEpsilon(3000.0);
    p.segmentation.min_part_length = 3;
    p.sampling.sigma = 4000.0;
    p.sampling.gain_stop_ratio = 0.1;
    p.sampling.min_overlap_ratio = 0.3;
    p.clustering.min_overlap_ratio = 0.3;
    p.voting.min_overlap_ratio = 0.3;
    return p;
  }

  explicit Fixture(size_t flights) {
    datagen::AircraftScenarioParams p =
        datagen::AircraftScenarioParams::Default();
    p.num_flights = flights;
    p.sample_dt = 20.0;
    p.time_span = 7200.0;
    p.seed = 29;
    auto scenario = datagen::GenerateAircraftScenario(p);
    store = std::move(scenario->store);
    std::tie(t0, t1) = store.TimeDomain();

    env = storage::Env::NewMemEnv();
    core::ReTraTreeParams tp;
    tp.tau = (t1 - t0) / 4;
    tp.delta = tp.tau / 4;
    tp.t_align = tp.delta;
    tp.d_assign = 3000.0;
    tp.gamma = 24;
    tp.origin = t0;
    tp.s2t = S2T();
    tree = std::move(core::ReTraTree::Open(env.get(), "bench_tree", tp))
               .value();
    (void)tree->InsertStore(store);
    global_index =
        std::move(rtree::BuildSegmentIndex(env.get(), "bench_glob.idx",
                                           store))
            .value();
  }

  /// Window covering `fraction` of the time domain, centered at the
  /// midpoint where the traffic density is steady (the demo's progressive
  /// widening from the landing phase into the cruise past).
  std::pair<double, double> Window(double fraction) const {
    const double mid = (t0 + t1) / 2;
    const double half = (t1 - t0) * fraction / 2;
    return {mid - half, mid + half};
  }
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture(120);
  return *fixture;
}

void BM_QuTQuery(benchmark::State& state) {
  Fixture& f = SharedFixture();
  const double fraction = static_cast<double>(state.range(0)) / 100.0;
  const auto [wi, we] = f.Window(fraction);
  core::QuTClustering qut(f.tree.get());
  size_t clusters = 0, members = 0;
  for (auto _ : state) {
    auto result = qut.Query(wi, we);
    benchmark::DoNotOptimize(result);
    clusters = result->clusters.size();
    members = result->TotalMembers();
  }
  state.counters["W_pct"] = static_cast<double>(state.range(0));
  state.counters["clusters"] = static_cast<double>(clusters);
  state.counters["members"] = static_cast<double>(members);
}

void BM_RangeRebuildS2T(benchmark::State& state) {
  Fixture& f = SharedFixture();
  const double fraction = static_cast<double>(state.range(0)) / 100.0;
  const auto [wi, we] = f.Window(fraction);
  size_t clusters = 0;
  for (auto _ : state) {
    auto result = baselines::RunRangeRebuild(f.store, *f.global_index, wi,
                                             we, Fixture::S2T());
    benchmark::DoNotOptimize(result);
    clusters = result->s2t.NumClusters();
  }
  state.counters["W_pct"] = static_cast<double>(state.range(0));
  state.counters["clusters"] = static_cast<double>(clusters);
}

}  // namespace

// W sweep: 5% .. 100% of the time domain.
BENCHMARK(BM_QuTQuery)->Arg(5)->Arg(10)->Arg(25)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RangeRebuildS2T)->Arg(5)->Arg(10)->Arg(25)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);
