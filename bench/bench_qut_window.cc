// Experiment E6 (DESIGN.md): the scenario-2 headline — QuT-Clustering vs
// the alternative pipeline "(i) temporal range query, (ii) build an R-tree
// on the result, (iii) run S2T-Clustering", for varying temporal windows W.
//
// The paper's claim: QuT answers from the ReTraTree with boundary-only
// work, so it wins by a wide margin for small W and stays ahead as W
// grows. ReTraTree construction and the baseline's *global* index are both
// setup (not measured per query).
//
// This file also carries the hot/cold tier sweep: QUT served from the
// in-memory MemRTree3D snapshots (hot) vs the on-disk heap+Gist path
// (cold, hot tier disabled via a zero budget), plus a concurrent-readers
// sweep over the lock-free hot probe path. Every tier point is appended
// to `BENCH_qut.json` (one record per (mode, W, threads)) so successive
// PRs can track the QUT latency trajectory mechanically.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/range_rebuild.h"
#include "core/qut_clustering.h"
#include "core/retratree.h"
#include "datagen/aircraft.h"
#include "rtree/str_bulk_load.h"
#include "storage/env.h"

namespace {

using namespace hermes;  // Bench-local brevity.

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Fixture {
  traj::TrajectoryStore store;
  std::unique_ptr<storage::Env> env;
  std::unique_ptr<core::ReTraTree> tree;
  std::unique_ptr<rtree::RTree3D> global_index;
  double t0 = 0.0;
  double t1 = 0.0;

  static core::S2TParams S2T() {
    core::S2TParams p;
    p.SetSigma(1500.0).SetEpsilon(3000.0);
    p.segmentation.min_part_length = 3;
    p.sampling.sigma = 4000.0;
    p.sampling.gain_stop_ratio = 0.1;
    p.sampling.min_overlap_ratio = 0.3;
    p.clustering.min_overlap_ratio = 0.3;
    p.voting.min_overlap_ratio = 0.3;
    return p;
  }

  explicit Fixture(size_t flights) {
    datagen::AircraftScenarioParams p =
        datagen::AircraftScenarioParams::Default();
    p.num_flights = flights;
    p.sample_dt = 20.0;
    p.time_span = 7200.0;
    p.seed = 29;
    auto scenario = datagen::GenerateAircraftScenario(p);
    store = std::move(scenario->store);
    std::tie(t0, t1) = store.TimeDomain();

    env = storage::Env::NewMemEnv();
    core::ReTraTreeParams tp;
    tp.tau = (t1 - t0) / 4;
    tp.delta = tp.tau / 4;
    tp.t_align = tp.delta;
    tp.d_assign = 3000.0;
    tp.gamma = 24;
    tp.origin = t0;
    tp.s2t = S2T();
    tree = std::move(core::ReTraTree::Open(env.get(), "bench_tree", tp))
               .value();
    (void)tree->InsertStore(store);
    global_index =
        std::move(rtree::BuildSegmentIndex(env.get(), "bench_glob.idx",
                                           store))
            .value();
  }

  /// Window covering `fraction` of the time domain, centered at the
  /// midpoint where the traffic density is steady (the demo's progressive
  /// widening from the landing phase into the cruise past).
  std::pair<double, double> Window(double fraction) const {
    const double mid = (t0 + t1) / 2;
    const double half = (t1 - t0) * fraction / 2;
    return {mid - half, mid + half};
  }
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture(120);
  return *fixture;
}

struct QutRecord {
  std::string mode;  // "cold" / "hot" / "hot_concurrent".
  int w_pct = 0;
  size_t threads = 1;
  double query_ms = 0.0;
  size_t clusters = 0;
  size_t members = 0;
  uint64_t hot_probes = 0;   // Tier probe deltas over the timed loop:
  uint64_t cold_probes = 0;  // hot serves must show zero cold probes.
};

std::vector<QutRecord>& Records() {
  static auto* records = new std::vector<QutRecord>();
  return *records;
}

void BM_QuTQuery(benchmark::State& state) {
  Fixture& f = SharedFixture();
  const double fraction = static_cast<double>(state.range(0)) / 100.0;
  const auto [wi, we] = f.Window(fraction);
  core::QuTClustering qut(f.tree.get());
  size_t clusters = 0, members = 0;
  for (auto _ : state) {
    auto result = qut.Query(wi, we);
    benchmark::DoNotOptimize(result);
    clusters = result->clusters.size();
    members = result->TotalMembers();
  }
  state.counters["W_pct"] = static_cast<double>(state.range(0));
  state.counters["clusters"] = static_cast<double>(clusters);
  state.counters["members"] = static_cast<double>(members);
}

void BM_RangeRebuildS2T(benchmark::State& state) {
  Fixture& f = SharedFixture();
  const double fraction = static_cast<double>(state.range(0)) / 100.0;
  const auto [wi, we] = f.Window(fraction);
  size_t clusters = 0;
  for (auto _ : state) {
    auto result = baselines::RunRangeRebuild(f.store, *f.global_index, wi,
                                             we, Fixture::S2T());
    benchmark::DoNotOptimize(result);
    clusters = result->s2t.NumClusters();
  }
  state.counters["W_pct"] = static_cast<double>(state.range(0));
  state.counters["clusters"] = static_cast<double>(clusters);
}

// ---------------------------------------------------------------------------
// Hot/cold tier sweep
// ---------------------------------------------------------------------------

/// Shared body of the single-threaded tier benchmarks: runs the timed
/// QUT loop and appends one record per (mode, W) point.
void RunTierSweep(benchmark::State& state, const char* mode) {
  Fixture& f = SharedFixture();
  const double fraction = static_cast<double>(state.range(0)) / 100.0;
  const auto [wi, we] = f.Window(fraction);
  core::QuTClustering qut(f.tree.get());
  // One un-timed query settles the tier: promotes (hot) or verifies
  // nothing promotes (cold, zero budget) before measurement starts.
  { auto warm = qut.Query(wi, we); benchmark::DoNotOptimize(warm); }
  const core::HotTierStats before = f.tree->hot_stats();
  size_t clusters = 0, members = 0, iters = 0;
  const int64_t start = NowUs();
  for (auto _ : state) {
    auto result = qut.Query(wi, we);
    benchmark::DoNotOptimize(result);
    clusters = result->clusters.size();
    members = result->TotalMembers();
    ++iters;
  }
  const double ms =
      iters == 0 ? 0.0 : (NowUs() - start) / 1000.0 / static_cast<double>(iters);
  const core::HotTierStats after = f.tree->hot_stats();
  state.counters["W_pct"] = static_cast<double>(state.range(0));
  state.counters["clusters"] = static_cast<double>(clusters);
  state.counters["hot_probes"] =
      static_cast<double>(after.qut_hot_probes - before.qut_hot_probes);
  state.counters["cold_probes"] =
      static_cast<double>(after.qut_cold_probes - before.qut_cold_probes);

  QutRecord rec;
  rec.mode = mode;
  rec.w_pct = static_cast<int>(state.range(0));
  rec.threads = 1;
  rec.query_ms = ms;
  rec.clusters = clusters;
  rec.members = members;
  rec.hot_probes = after.qut_hot_probes - before.qut_hot_probes;
  rec.cold_probes = after.qut_cold_probes - before.qut_cold_probes;
  Records().push_back(rec);
}

/// Cold tier: hot snapshots disabled (zero budget), every partition read
/// goes through the heap file + Gist — the pre-tier baseline. Registered
/// before the hot benchmarks so the budget flip-flop never races.
void BM_QuTQueryCold(benchmark::State& state) {
  SharedFixture().tree->SetHotIndexBudget(0);
  RunTierSweep(state, "cold");
}

/// Hot tier: default budget, partitions promoted on first touch, every
/// timed probe served lock-free from the in-memory snapshots.
void BM_QuTQueryHot(benchmark::State& state) {
  SharedFixture().tree->SetHotIndexBudget(core::kDefaultHotIndexBudget);
  RunTierSweep(state, "hot");
}

/// Concurrent readers over the warmed hot tier (the lock-free probe
/// path): N threads each running the same QUT window. Runs after
/// BM_QuTQueryHot, so the tier is already promoted and stays enabled.
void BM_QuTConcurrentReaders(benchmark::State& state) {
  Fixture& f = SharedFixture();
  constexpr int kWPct = 25;
  const auto [wi, we] = f.Window(kWPct / 100.0);
  core::QuTClustering qut(f.tree.get());
  if (state.thread_index() == 0) {
    f.tree->SetHotIndexBudget(core::kDefaultHotIndexBudget);
    auto warm = qut.Query(wi, we);
    benchmark::DoNotOptimize(warm);
  }
  size_t clusters = 0, members = 0, iters = 0;
  const core::HotTierStats before = f.tree->hot_stats();
  const int64_t start = NowUs();
  for (auto _ : state) {
    auto result = qut.Query(wi, we);
    benchmark::DoNotOptimize(result);
    clusters = result->clusters.size();
    members = result->TotalMembers();
    ++iters;
  }
  const double ms =
      iters == 0 ? 0.0 : (NowUs() - start) / 1000.0 / static_cast<double>(iters);
  if (state.thread_index() == 0) {
    state.counters["W_pct"] = static_cast<double>(kWPct);
    state.counters["clusters"] = static_cast<double>(clusters);
    QutRecord rec;
    rec.mode = "hot_concurrent";
    rec.w_pct = kWPct;
    rec.threads = static_cast<size_t>(state.threads());
    rec.query_ms = ms;  // Thread 0's own per-query latency.
    rec.clusters = clusters;
    rec.members = members;
    // Aggregate tier traffic across all reader threads during the sweep
    // (approximate at the edges — peers may still be draining — but a
    // non-zero cold count here would flag the probe path taking locks).
    const core::HotTierStats after = f.tree->hot_stats();
    rec.hot_probes = after.qut_hot_probes - before.qut_hot_probes;
    rec.cold_probes = after.qut_cold_probes - before.qut_cold_probes;
    Records().push_back(rec);
  }
}

void WriteJson(const char* path) {
  if (Records().empty()) {
    // A filtered run that skipped the tier sweep must not clobber a
    // previous measurement with an empty baseline.
    std::fprintf(stderr, "no qut records; leaving %s untouched\n", path);
    return;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  // The harness calls each benchmark several times while calibrating the
  // iteration count; keep only the final (measured) record per point.
  std::vector<QutRecord> recs;
  for (const auto& r : Records()) {
    bool replaced = false;
    for (auto& kept : recs) {
      if (kept.mode == r.mode && kept.w_pct == r.w_pct &&
          kept.threads == r.threads) {
        kept = r;
        replaced = true;
        break;
      }
    }
    if (!replaced) recs.push_back(r);
  }
  std::fprintf(f, "{\n  \"bench\": \"qut_window\",\n  \"runs\": [\n");
  for (size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"w_pct\": %d, \"threads\": %zu, "
        "\"query_ms\": %.3f, \"clusters\": %zu, \"members\": %zu, "
        "\"hot_probes\": %llu, \"cold_probes\": %llu}%s\n",
        r.mode.c_str(), r.w_pct, r.threads, r.query_ms, r.clusters,
        r.members, static_cast<unsigned long long>(r.hot_probes),
        static_cast<unsigned long long>(r.cold_probes),
        i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

// W sweep: 5% .. 100% of the time domain.
BENCHMARK(BM_QuTQuery)->Arg(5)->Arg(10)->Arg(25)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RangeRebuildS2T)->Arg(5)->Arg(10)->Arg(25)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);
// Tier sweep: cold first (budget 0), then hot, then the concurrent
// readers over the still-warm hot tier. Registration order is execution
// order, which is what keeps the shared tree's budget transitions clean.
BENCHMARK(BM_QuTQueryCold)->Arg(5)->Arg(25)->Arg(100)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QuTQueryHot)->Arg(5)->Arg(25)->Arg(100)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QuTConcurrentReaders)->Threads(1)->Threads(2)->Threads(4)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteJson("BENCH_qut.json");
  return 0;
}
