// Concurrent-clients service benchmark: N reader sessions sweeping
// published snapshots (S2T_MEMBERS + RANGE) against one service::Server,
// alone and while the background ingest worker drains batches. Every
// sweep point is appended to `BENCH_service.json` (one record per
// (mode, clients)), the third bench JSON the CI bench-gate diffs across
// runs — alongside BENCH_s2t.json and BENCH_ingest.json.
//
// `--socket` switches to the wire-protocol sweep instead: a real
// `net::NetServer` on loopback, 1/4/16/64 concurrent TCP connections of
// synchronous round-trip requests, reporting requests/s and p50/p99
// latency per connection count into `BENCH_net.json` (the fifth gated
// bench JSON). `--socket_requests=N` overrides per-connection volume
// (CI smoke uses a small N). google-benchmark flags are accepted and
// ignored in socket mode so the shared bench-gate runner can pass its
// usual `--benchmark_*` arguments.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/maritime.h"
#include "net/client.h"
#include "net/net_server.h"
#include "service/client_session.h"
#include "service/server.h"
#include "sql/statement_executor.h"

namespace {

using namespace hermes;

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr size_t kShips = 24;

traj::TrajectoryStore MakeMod(size_t ships) {
  datagen::MaritimeScenarioParams p;
  p.num_ships = ships;
  p.sample_dt = 300.0;
  p.seed = 7;
  auto scenario = datagen::GenerateMaritimeScenario(p);
  return std::move(scenario->store);
}

struct ServiceRecord {
  std::string mode;  // "query" (quiesced) or "mixed" (ingest running).
  size_t clients = 0;
  size_t queries = 0;
  size_t ingested = 0;
  double wall_ms = 0.0;
  double queries_per_sec = 0.0;
};

std::vector<ServiceRecord>& Records() {
  static auto* records = new std::vector<ServiceRecord>();
  return *records;
}

/// One sweep: `clients` sessions, each issuing `kQueriesPerClient`
/// alternating S2T_MEMBERS / RANGE statements. With `with_ingest`, the
/// main thread simultaneously streams the back half of the fleet through
/// the ingest queue and flushes.
void RunSweep(benchmark::State& state, bool with_ingest) {
  const traj::TrajectoryStore ships = MakeMod(kShips);
  const auto [t0, t1] = ships.TimeDomain();
  const size_t clients = static_cast<size_t>(state.range(0));
  constexpr int kQueriesPerClient = 4;
  const std::string members_sql = "SELECT S2T_MEMBERS(ships, 800, 1600);";
  const std::string range_sql = "SELECT RANGE(ships, " + std::to_string(t0) +
                                ", " + std::to_string(t1 + 1) + ");";

  const size_t initial = with_ingest ? kShips / 2 : kShips;
  size_t queries = 0;
  size_t ingested = 0;
  double wall_ms = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    service::ServerOptions opts;
    opts.threads = 2;
    auto server = std::move(service::Server::Start(std::move(opts))).value();
    traj::TrajectoryStore seed;
    for (traj::TrajectoryId tid = 0; tid < initial; ++tid) {
      (void)seed.Add(ships.Get(tid));
    }
    (void)server->RegisterStore("ships", std::move(seed));
    state.ResumeTiming();

    const int64_t start = NowUs();
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&server, &members_sql, &range_sql] {
        // Statements travel the backend-neutral executor API, exactly
        // like the examples and the shard coordinator.
        std::unique_ptr<sql::StatementExecutor> session =
            service::MakeStatementExecutor(server->Connect());
        for (int q = 0; q < kQueriesPerClient; ++q) {
          auto table =
              session->Execute(q % 2 == 0 ? members_sql : range_sql);
          benchmark::DoNotOptimize(table);
        }
      });
    }
    if (with_ingest) {
      for (traj::TrajectoryId tid = initial; tid < kShips; ++tid) {
        std::vector<traj::Trajectory> batch;
        batch.push_back(ships.Get(tid));
        (void)server->EnqueueInsert("ships", std::move(batch));
      }
      (void)server->Flush();
    }
    for (auto& t : threads) t.join();
    wall_ms = (NowUs() - start) / 1000.0;
    queries = clients * kQueriesPerClient;
    ingested = server->Stats().trajectories_ingested;
    state.PauseTiming();
    server->Shutdown();
    state.ResumeTiming();
  }

  state.counters["clients"] = static_cast<double>(clients);
  state.counters["queries"] = static_cast<double>(queries);
  state.counters["ingested"] = static_cast<double>(ingested);

  ServiceRecord rec;
  rec.mode = with_ingest ? "mixed" : "query";
  rec.clients = clients;
  rec.queries = queries;
  rec.ingested = ingested;
  rec.wall_ms = wall_ms;
  rec.queries_per_sec = wall_ms > 0 ? queries / (wall_ms / 1000.0) : 0.0;
  Records().push_back(rec);
}

void BM_ServiceQueryClients(benchmark::State& state) {
  RunSweep(state, /*with_ingest=*/false);
}

void BM_ServiceMixedClients(benchmark::State& state) {
  RunSweep(state, /*with_ingest=*/true);
}

void WriteJson(const char* path) {
  if (Records().empty()) {
    // A filtered run that skipped the sweep must not clobber a previous
    // measurement with an empty baseline.
    std::fprintf(stderr, "no service records; leaving %s untouched\n", path);
    return;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  // Keep only the final (measured) record per (mode, clients) point.
  std::vector<ServiceRecord> recs;
  for (const auto& r : Records()) {
    bool replaced = false;
    for (auto& kept : recs) {
      if (kept.mode == r.mode && kept.clients == r.clients) {
        kept = r;
        replaced = true;
        break;
      }
    }
    if (!replaced) recs.push_back(r);
  }
  std::fprintf(f, "{\n  \"bench\": \"service_clients\",\n  \"runs\": [\n");
  for (size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"clients\": %zu, \"queries\": %zu, "
        "\"ingested\": %zu, \"wall_ms\": %.3f, "
        "\"queries_per_sec\": %.2f}%s\n",
        r.mode.c_str(), r.clients, r.queries, r.ingested, r.wall_ms,
        r.queries_per_sec, i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// Socket mode (--socket): wire-protocol throughput / tail latency
// ---------------------------------------------------------------------------

struct NetRecord {
  size_t connections = 0;
  size_t requests = 0;
  double wall_ms = 0.0;
  double requests_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double Percentile(std::vector<int64_t>* lat_us, double p) {
  if (lat_us->empty()) return 0.0;
  const size_t idx = std::min(
      lat_us->size() - 1,
      static_cast<size_t>(p * static_cast<double>(lat_us->size() - 1)));
  std::nth_element(lat_us->begin(),
                   lat_us->begin() + static_cast<ptrdiff_t>(idx),
                   lat_us->end());
  return static_cast<double>((*lat_us)[idx]);
}

/// One sweep point: `connections` TCP clients, each issuing
/// `requests_per_conn` synchronous round trips (a cheap RANGE, a STATS,
/// and a FLUSH in rotation — wire overhead dominates, which is what this
/// bench measures). Each connection drives the same
/// `sql::StatementExecutor` API as every other backend.
NetRecord RunSocketSweep(uint16_t port, size_t connections,
                         size_t requests_per_conn,
                         const std::string& range_sql) {
  std::vector<std::vector<int64_t>> lat_per_conn(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const int64_t start = NowUs();
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      auto client_or = net::Client::Connect("127.0.0.1", port);
      if (!client_or.ok()) return;
      std::unique_ptr<sql::StatementExecutor> db =
          net::MakeStatementExecutor(std::move(*client_or));
      auto& lat = lat_per_conn[c];
      lat.reserve(requests_per_conn);
      for (size_t q = 0; q < requests_per_conn; ++q) {
        const int64_t t0 = NowUs();
        bool ok = false;
        switch (q % 3) {
          case 0:
            ok = db->Execute(range_sql).ok();
            break;
          case 1:
            ok = db->Execute("SELECT STATS(ships);").ok();
            break;
          default:
            ok = db->Flush().ok();
            break;
        }
        if (!ok) return;
        lat.push_back(NowUs() - t0);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_ms = (NowUs() - start) / 1000.0;

  std::vector<int64_t> all;
  for (const auto& lat : lat_per_conn) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  NetRecord rec;
  rec.connections = connections;
  rec.requests = all.size();
  rec.wall_ms = wall_ms;
  rec.requests_per_sec =
      wall_ms > 0 ? static_cast<double>(all.size()) / (wall_ms / 1000.0)
                  : 0.0;
  rec.p50_us = Percentile(&all, 0.50);
  rec.p99_us = Percentile(&all, 0.99);
  return rec;
}

void WriteNetJson(const char* path, const std::vector<NetRecord>& recs) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"net_socket\",\n  \"runs\": [\n");
  for (size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    std::fprintf(f,
                 "    {\"connections\": %zu, \"requests\": %zu, "
                 "\"wall_ms\": %.3f, \"requests_per_sec\": %.2f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f}%s\n",
                 r.connections, r.requests, r.wall_ms, r.requests_per_sec,
                 r.p50_us, r.p99_us, i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int RunSocketMode(size_t requests_per_conn) {
  const traj::TrajectoryStore ships = MakeMod(kShips);
  const auto [t0, t1] = ships.TimeDomain();
  const std::string range_sql = "SELECT RANGE(ships, " + std::to_string(t0) +
                                ", " + std::to_string(t1 + 1) + ");";

  service::ServerOptions opts;
  opts.threads = 2;
  auto server = std::move(service::Server::Start(std::move(opts))).value();
  traj::TrajectoryStore seed;
  for (traj::TrajectoryId tid = 0; tid < ships.NumTrajectories(); ++tid) {
    (void)seed.Add(ships.Get(tid));
  }
  if (!server->RegisterStore("ships", std::move(seed)).ok()) return 1;
  auto net_or = net::NetServer::Start(server.get(), net::NetServerOptions{});
  if (!net_or.ok()) {
    std::fprintf(stderr, "listen failed: %s\n",
                 net_or.status().ToString().c_str());
    return 1;
  }
  auto net = std::move(*net_or);

  std::vector<NetRecord> recs;
  for (const size_t connections : {1u, 4u, 16u, 64u}) {
    // Warm-up pass primes snapshots and the kernel accept path; the
    // second pass is the measurement.
    (void)RunSocketSweep(net->port(), connections,
                         std::max<size_t>(1, requests_per_conn / 4),
                         range_sql);
    NetRecord rec =
        RunSocketSweep(net->port(), connections, requests_per_conn,
                       range_sql);
    std::printf(
        "socket connections=%zu requests=%zu wall_ms=%.1f req/s=%.0f "
        "p50_us=%.0f p99_us=%.0f\n",
        rec.connections, rec.requests, rec.wall_ms, rec.requests_per_sec,
        rec.p50_us, rec.p99_us);
    recs.push_back(rec);
  }
  WriteNetJson("BENCH_net.json", recs);
  net->Shutdown();
  server->Shutdown();
  return 0;
}

}  // namespace

BENCHMARK(BM_ServiceQueryClients)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ServiceMixedClients)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

int main(int argc, char** argv) {
  // Socket mode is checked before google-benchmark sees the args: the CI
  // bench-gate runner always passes `--benchmark_*` flags, which do not
  // apply to the socket sweep and are ignored.
  bool socket_mode = false;
  size_t socket_requests = 512;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0) {
      socket_mode = true;
    } else if (std::strncmp(argv[i], "--socket_requests=", 18) == 0) {
      socket_requests = static_cast<size_t>(std::atol(argv[i] + 18));
      if (socket_requests == 0) socket_requests = 1;
    }
  }
  if (socket_mode) return RunSocketMode(socket_requests);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteJson("BENCH_service.json");
  return 0;
}
