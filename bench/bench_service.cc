// Concurrent-clients service benchmark: N reader sessions sweeping
// published snapshots (S2T_MEMBERS + RANGE) against one service::Server,
// alone and while the background ingest worker drains batches. Every
// sweep point is appended to `BENCH_service.json` (one record per
// (mode, clients)), the third bench JSON the CI bench-gate diffs across
// runs — alongside BENCH_s2t.json and BENCH_ingest.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "datagen/maritime.h"
#include "service/client_session.h"
#include "service/server.h"

namespace {

using namespace hermes;

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr size_t kShips = 24;

traj::TrajectoryStore MakeMod(size_t ships) {
  datagen::MaritimeScenarioParams p;
  p.num_ships = ships;
  p.sample_dt = 300.0;
  p.seed = 7;
  auto scenario = datagen::GenerateMaritimeScenario(p);
  return std::move(scenario->store);
}

struct ServiceRecord {
  std::string mode;  // "query" (quiesced) or "mixed" (ingest running).
  size_t clients = 0;
  size_t queries = 0;
  size_t ingested = 0;
  double wall_ms = 0.0;
  double queries_per_sec = 0.0;
};

std::vector<ServiceRecord>& Records() {
  static auto* records = new std::vector<ServiceRecord>();
  return *records;
}

/// One sweep: `clients` sessions, each issuing `kQueriesPerClient`
/// alternating S2T_MEMBERS / RANGE statements. With `with_ingest`, the
/// main thread simultaneously streams the back half of the fleet through
/// the ingest queue and flushes.
void RunSweep(benchmark::State& state, bool with_ingest) {
  const traj::TrajectoryStore ships = MakeMod(kShips);
  const auto [t0, t1] = ships.TimeDomain();
  const size_t clients = static_cast<size_t>(state.range(0));
  constexpr int kQueriesPerClient = 4;
  const std::string members_sql = "SELECT S2T_MEMBERS(ships, 800, 1600);";
  const std::string range_sql = "SELECT RANGE(ships, " + std::to_string(t0) +
                                ", " + std::to_string(t1 + 1) + ");";

  const size_t initial = with_ingest ? kShips / 2 : kShips;
  size_t queries = 0;
  size_t ingested = 0;
  double wall_ms = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    service::ServerOptions opts;
    opts.threads = 2;
    auto server = std::move(service::Server::Start(std::move(opts))).value();
    traj::TrajectoryStore seed;
    for (traj::TrajectoryId tid = 0; tid < initial; ++tid) {
      (void)seed.Add(ships.Get(tid));
    }
    (void)server->RegisterStore("ships", std::move(seed));
    state.ResumeTiming();

    const int64_t start = NowUs();
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&server, &members_sql, &range_sql] {
        auto session = server->Connect();
        for (int q = 0; q < kQueriesPerClient; ++q) {
          auto table =
              session->Execute(q % 2 == 0 ? members_sql : range_sql);
          benchmark::DoNotOptimize(table);
        }
      });
    }
    if (with_ingest) {
      for (traj::TrajectoryId tid = initial; tid < kShips; ++tid) {
        std::vector<traj::Trajectory> batch;
        batch.push_back(ships.Get(tid));
        (void)server->EnqueueInsert("ships", std::move(batch));
      }
      (void)server->Flush();
    }
    for (auto& t : threads) t.join();
    wall_ms = (NowUs() - start) / 1000.0;
    queries = clients * kQueriesPerClient;
    ingested = server->Stats().trajectories_ingested;
    state.PauseTiming();
    server->Shutdown();
    state.ResumeTiming();
  }

  state.counters["clients"] = static_cast<double>(clients);
  state.counters["queries"] = static_cast<double>(queries);
  state.counters["ingested"] = static_cast<double>(ingested);

  ServiceRecord rec;
  rec.mode = with_ingest ? "mixed" : "query";
  rec.clients = clients;
  rec.queries = queries;
  rec.ingested = ingested;
  rec.wall_ms = wall_ms;
  rec.queries_per_sec = wall_ms > 0 ? queries / (wall_ms / 1000.0) : 0.0;
  Records().push_back(rec);
}

void BM_ServiceQueryClients(benchmark::State& state) {
  RunSweep(state, /*with_ingest=*/false);
}

void BM_ServiceMixedClients(benchmark::State& state) {
  RunSweep(state, /*with_ingest=*/true);
}

void WriteJson(const char* path) {
  if (Records().empty()) {
    // A filtered run that skipped the sweep must not clobber a previous
    // measurement with an empty baseline.
    std::fprintf(stderr, "no service records; leaving %s untouched\n", path);
    return;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  // Keep only the final (measured) record per (mode, clients) point.
  std::vector<ServiceRecord> recs;
  for (const auto& r : Records()) {
    bool replaced = false;
    for (auto& kept : recs) {
      if (kept.mode == r.mode && kept.clients == r.clients) {
        kept = r;
        replaced = true;
        break;
      }
    }
    if (!replaced) recs.push_back(r);
  }
  std::fprintf(f, "{\n  \"bench\": \"service_clients\",\n  \"runs\": [\n");
  for (size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"clients\": %zu, \"queries\": %zu, "
        "\"ingested\": %zu, \"wall_ms\": %.3f, "
        "\"queries_per_sec\": %.2f}%s\n",
        r.mode.c_str(), r.clients, r.queries, r.ingested, r.wall_ms,
        r.queries_per_sec, i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

BENCHMARK(BM_ServiceQueryClients)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ServiceMixedClients)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteJson("BENCH_service.json");
  return 0;
}
