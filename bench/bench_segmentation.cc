// Experiment E10 (DESIGN.md): NaTS ablation — cost of the exact O(m^2)
// segmentation dynamic program vs trajectory length, and the lambda
// sensitivity (how the split penalty shapes the number of parts).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "segmentation/nats.h"

namespace {

using namespace hermes;

std::vector<double> MakeSignal(size_t m, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> votes;
  votes.reserve(m);
  double level = 5.0;
  for (size_t i = 0; i < m; ++i) {
    if (i % 25 == 0) level = rng.Uniform(0, 12);  // Regime changes.
    votes.push_back(level + rng.NextGaussian() * 0.4);
  }
  return votes;
}

void BM_NatsDp(benchmark::State& state) {
  const auto votes = MakeSignal(state.range(0), 13);
  segmentation::NatsParams p;
  p.min_part_length = 4;
  size_t parts = 0;
  for (auto _ : state) {
    auto result = segmentation::SegmentVotingSignal(votes, p);
    benchmark::DoNotOptimize(result);
    parts = result.size();
  }
  state.counters["m"] = static_cast<double>(state.range(0));
  state.counters["parts"] = static_cast<double>(parts);
}

void BM_NatsLambdaSweep(benchmark::State& state) {
  const auto votes = MakeSignal(400, 17);
  segmentation::NatsParams p;
  p.min_part_length = 4;
  p.lambda_scale = static_cast<double>(state.range(0)) / 1000.0;
  size_t parts = 0;
  for (auto _ : state) {
    auto result = segmentation::SegmentVotingSignal(votes, p);
    benchmark::DoNotOptimize(result);
    parts = result.size();
  }
  state.counters["lambda_scale_x1000"] =
      static_cast<double>(state.range(0));
  state.counters["parts"] = static_cast<double>(parts);
}

}  // namespace

BENCHMARK(BM_NatsDp)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Arg(800)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NatsLambdaSweep)->Arg(1)->Arg(10)->Arg(50)->Arg(200)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);
