#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "baselines/convoys.h"
#include "baselines/dbscan.h"
#include "baselines/range_rebuild.h"
#include "baselines/toptics.h"
#include "baselines/traclus.h"
#include "common/rng.h"
#include "datagen/noise.h"
#include "rtree/str_bulk_load.h"
#include "storage/env.h"

namespace hermes::baselines {
namespace {

// ---------------------------------------------------------------------------
// DBSCAN
// ---------------------------------------------------------------------------

TEST(DbscanTest, TwoBlobsAndNoise) {
  std::vector<geom::Point2D> points;
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    points.push_back({rng.NextGaussian() * 2, rng.NextGaussian() * 2});
  }
  for (int i = 0; i < 30; ++i) {
    points.push_back(
        {100 + rng.NextGaussian() * 2, 100 + rng.NextGaussian() * 2});
  }
  points.push_back({50, 50});  // Lone noise point.
  const Labels labels = DbscanPoints(points, 5.0, 4);
  std::set<int> clusters;
  for (int i = 0; i < 60; ++i) {
    EXPECT_GE(labels[i], 0);
    clusters.insert(labels[i]);
  }
  EXPECT_EQ(clusters.size(), 2u);
  EXPECT_EQ(labels[60], -1);
  // The blobs are separated.
  EXPECT_NE(labels[0], labels[30]);
}

TEST(DbscanTest, AllNoiseWhenSparse) {
  std::vector<geom::Point2D> points;
  for (int i = 0; i < 10; ++i) points.push_back({i * 1000.0, 0});
  const Labels labels = DbscanPoints(points, 5.0, 3);
  for (int l : labels) EXPECT_EQ(l, -1);
}

TEST(DbscanTest, ChainConnectivity) {
  // A chain of points each within eps of the next forms one cluster.
  std::vector<geom::Point2D> points;
  for (int i = 0; i < 20; ++i) points.push_back({i * 4.0, 0});
  const Labels labels = DbscanPoints(points, 5.0, 3);
  for (int l : labels) EXPECT_EQ(l, 0);
}

TEST(DbscanTest, EmptyInput) {
  EXPECT_TRUE(DbscanPoints({}, 1.0, 3).empty());
}

TEST(DbscanTest, GenericOracleVariant) {
  // 6 items in two triangles of mutual neighbors.
  auto neighbors = [](size_t i) -> std::vector<size_t> {
    if (i < 3) {
      std::vector<size_t> out;
      for (size_t j = 0; j < 3; ++j) {
        if (j != i) out.push_back(j);
      }
      return out;
    }
    std::vector<size_t> out;
    for (size_t j = 3; j < 6; ++j) {
      if (j != i) out.push_back(j);
    }
    return out;
  };
  const Labels labels = DbscanGeneric(6, neighbors, 3);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
}

// ---------------------------------------------------------------------------
// TRACLUS
// ---------------------------------------------------------------------------

traj::Trajectory LShape(traj::ObjectId id, double jitter_seed) {
  // Right angle: east 10 steps, then north 10 steps.
  Rng rng(static_cast<uint64_t>(jitter_seed));
  traj::Trajectory t(id);
  double time = 0;
  for (int i = 0; i <= 10; ++i) {
    EXPECT_TRUE(
        t.Append({i * 100.0, rng.NextGaussian() * 2.0, time}).ok());
    time += 10;
  }
  for (int i = 1; i <= 10; ++i) {
    EXPECT_TRUE(
        t.Append({1000.0 + rng.NextGaussian() * 2.0, i * 100.0, time}).ok());
    time += 10;
  }
  return t;
}

TEST(TraclusTest, PartitioningFindsTheCorner) {
  const traj::Trajectory t = LShape(1, 7);
  const auto cps = PartitionCharacteristicPoints(t);
  ASSERT_GE(cps.size(), 3u);
  EXPECT_EQ(cps.front(), 0u);
  EXPECT_EQ(cps.back(), t.size() - 1);
  // One characteristic point near the corner (index 10).
  bool corner = false;
  for (size_t cp : cps) {
    if (cp >= 8 && cp <= 12) corner = true;
  }
  EXPECT_TRUE(corner);
}

TEST(TraclusTest, StraightLinePartitionsMinimally) {
  traj::Trajectory t(1);
  for (int i = 0; i <= 20; ++i) {
    ASSERT_TRUE(t.Append({i * 50.0, 0.0, i * 10.0}).ok());
  }
  const auto cps = PartitionCharacteristicPoints(t);
  EXPECT_LE(cps.size(), 3u);  // Perfectly straight: start + end (±1).
}

TEST(TraclusTest, GroupsParallelBundle) {
  traj::TrajectoryStore store;
  for (int k = 0; k < 6; ++k) {
    traj::Trajectory t(k);
    for (int i = 0; i <= 20; ++i) {
      ASSERT_TRUE(t.Append({i * 50.0, k * 10.0, i * 10.0}).ok());
    }
    ASSERT_TRUE(store.Add(std::move(t)).ok());
  }
  TraclusParams params;
  params.eps = 80.0;
  params.min_lns = 3;
  const TraclusResult result = RunTraclus(store, params);
  ASSERT_GE(result.clusters.size(), 1u);
  // The bundle cluster must draw from most trajectories.
  size_t biggest = 0;
  for (const auto& c : result.clusters) {
    biggest = std::max(biggest, c.distinct_trajectories);
  }
  EXPECT_GE(biggest, 5u);
}

TEST(TraclusTest, IgnoresTimeByDesign) {
  // Same corridor but hours apart: TRACLUS clusters them anyway — the
  // paper's motivating limitation.
  traj::TrajectoryStore store;
  for (int k = 0; k < 6; ++k) {
    traj::Trajectory t(k);
    const double t0 = k * 10000.0;  // Temporally disjoint!
    for (int i = 0; i <= 20; ++i) {
      ASSERT_TRUE(t.Append({i * 50.0, k * 5.0, t0 + i * 10.0}).ok());
    }
    ASSERT_TRUE(store.Add(std::move(t)).ok());
  }
  TraclusParams params;
  params.eps = 80.0;
  params.min_lns = 3;
  const TraclusResult result = RunTraclus(store, params);
  ASSERT_GE(result.clusters.size(), 1u);
  size_t biggest = 0;
  for (const auto& c : result.clusters) {
    biggest = std::max(biggest, c.distinct_trajectories);
  }
  EXPECT_GE(biggest, 5u);  // Clusters despite zero co-existence.
}

TEST(TraclusTest, RepresentativeFollowsBundle) {
  traj::TrajectoryStore store;
  for (int k = 0; k < 5; ++k) {
    traj::Trajectory t(k);
    for (int i = 0; i <= 20; ++i) {
      ASSERT_TRUE(t.Append({i * 50.0, k * 8.0, i * 10.0}).ok());
    }
    ASSERT_TRUE(store.Add(std::move(t)).ok());
  }
  TraclusParams params;
  params.eps = 60.0;
  params.min_lns = 3;
  params.sweep_min_lines = 3;
  const TraclusResult result = RunTraclus(store, params);
  ASSERT_FALSE(result.clusters.empty());
  const auto& rep = result.clusters[0].representative;
  ASSERT_GE(rep.size(), 2u);
  // Representative stays inside the bundle's y band [0, 32].
  for (const auto& p : rep) {
    EXPECT_GE(p.y, -10.0);
    EXPECT_LE(p.y, 42.0);
  }
}

TEST(TraclusTest, NoiseSegmentsReported) {
  traj::TrajectoryStore store;
  for (int k = 0; k < 4; ++k) {
    traj::Trajectory t(k);
    for (int i = 0; i <= 10; ++i) {
      ASSERT_TRUE(t.Append({i * 50.0, k * 10.0, i * 10.0}).ok());
    }
    ASSERT_TRUE(store.Add(std::move(t)).ok());
  }
  // One lone trajectory far away.
  traj::Trajectory lone(9);
  for (int i = 0; i <= 10; ++i) {
    ASSERT_TRUE(lone.Append({i * 50.0, 99000.0, i * 10.0}).ok());
  }
  ASSERT_TRUE(store.Add(std::move(lone)).ok());
  TraclusParams params;
  params.eps = 60.0;
  params.min_lns = 3;
  const TraclusResult result = RunTraclus(store, params);
  bool lone_is_noise = false;
  for (size_t si : result.noise) {
    if (result.segments[si].source == 4) lone_is_noise = true;
  }
  EXPECT_TRUE(lone_is_noise);
}

// ---------------------------------------------------------------------------
// T-OPTICS
// ---------------------------------------------------------------------------

TEST(TOpticsTest, SeparatesTemporalGroups) {
  // Two groups sharing space but not time: T-OPTICS (time-aware) must
  // keep them apart — unlike TRACLUS above.
  traj::TrajectoryStore store;
  for (int k = 0; k < 5; ++k) {  // Group A at t in [0, 200].
    traj::Trajectory t(k);
    for (int i = 0; i <= 20; ++i) {
      ASSERT_TRUE(t.Append({i * 50.0, k * 10.0, i * 10.0}).ok());
    }
    ASSERT_TRUE(store.Add(std::move(t)).ok());
  }
  for (int k = 5; k < 10; ++k) {  // Group B at t in [10000, 10200].
    traj::Trajectory t(k);
    for (int i = 0; i <= 20; ++i) {
      ASSERT_TRUE(
          t.Append({i * 50.0, (k - 5) * 10.0, 10000.0 + i * 10.0}).ok());
    }
    ASSERT_TRUE(store.Add(std::move(t)).ok());
  }
  TOpticsParams params;
  params.eps = 100.0;
  params.min_pts = 3;
  const TOpticsResult result = RunTOptics(store, params);
  EXPECT_GE(result.num_clusters, 2u);
  // No cluster mixes the groups.
  for (int label = 0; label < static_cast<int>(result.num_clusters);
       ++label) {
    bool a = false, b = false;
    for (size_t i = 0; i < 10; ++i) {
      if (result.labels[i] == label) {
        (i < 5 ? a : b) = true;
      }
    }
    EXPECT_FALSE(a && b);
  }
}

TEST(TOpticsTest, OrderingVisitsEveryTrajectory) {
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      2, 4, 200.0, 500.0, 10.0, 10.0, /*seed=*/3, /*jitter=*/1.0);
  TOpticsParams params;
  params.eps = 300.0;
  params.min_pts = 3;
  const TOpticsResult result = RunTOptics(store, params);
  EXPECT_EQ(result.ordering.size(), store.NumTrajectories());
  EXPECT_EQ(result.reachability.size(), store.NumTrajectories());
  std::set<traj::TrajectoryId> seen(result.ordering.begin(),
                                    result.ordering.end());
  EXPECT_EQ(seen.size(), store.NumTrajectories());
}

TEST(TOpticsTest, IsolatedTrajectoryIsNoise) {
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      1, 5, 0.0, 500.0, 10.0, 10.0, /*seed=*/5, /*jitter=*/1.0);
  traj::Trajectory lone(99);
  for (int i = 0; i <= 10; ++i) {
    ASSERT_TRUE(lone.Append({i * 50.0, 90000.0, i * 5.0}).ok());
  }
  auto lone_id = store.Add(std::move(lone));
  ASSERT_TRUE(lone_id.ok());
  TOpticsParams params;
  params.eps = 100.0;
  params.min_pts = 3;
  const TOpticsResult result = RunTOptics(store, params);
  EXPECT_EQ(result.labels[*lone_id], -1);
}

TEST(TOpticsTest, EmptyStore) {
  traj::TrajectoryStore store;
  const TOpticsResult result = RunTOptics(store, TOpticsParams{});
  EXPECT_TRUE(result.ordering.empty());
  EXPECT_EQ(result.num_clusters, 0u);
}

// ---------------------------------------------------------------------------
// Convoys
// ---------------------------------------------------------------------------

TEST(ConvoyTest, DiscoversCoMovingGroup) {
  traj::TrajectoryStore store;
  for (int k = 0; k < 5; ++k) {
    traj::Trajectory t(k);
    for (int i = 0; i <= 30; ++i) {
      ASSERT_TRUE(t.Append({i * 20.0, k * 10.0, i * 10.0}).ok());
    }
    ASSERT_TRUE(store.Add(std::move(t)).ok());
  }
  ConvoyParams params;
  params.eps = 60.0;
  params.m = 3;
  params.k = 3;
  params.snapshot_dt = 30.0;
  const auto convoys = DiscoverConvoys(store, params);
  ASSERT_GE(convoys.size(), 1u);
  // The big convoy contains all five objects for (almost) the whole span.
  size_t best = 0;
  for (const auto& c : convoys) best = std::max(best, c.objects.size());
  EXPECT_EQ(best, 5u);
}

TEST(ConvoyTest, RequiresConsecutiveLifetime) {
  // Objects together only for 2 snapshots while k=3: no convoy.
  traj::TrajectoryStore store;
  for (int k = 0; k < 4; ++k) {
    traj::Trajectory t(k);
    // Converge at t in [100, 150] only.
    ASSERT_TRUE(t.Append({k * 5000.0, 0, 0}).ok());
    ASSERT_TRUE(t.Append({0, k * 10.0, 100}).ok());
    ASSERT_TRUE(t.Append({50, k * 10.0, 150}).ok());
    ASSERT_TRUE(t.Append({k * 5000.0, 0, 300}).ok());
    ASSERT_TRUE(store.Add(std::move(t)).ok());
  }
  ConvoyParams params;
  params.eps = 60.0;
  params.m = 3;
  params.k = 3;
  params.snapshot_dt = 25.0;
  const auto convoys = DiscoverConvoys(store, params);
  for (const auto& c : convoys) {
    EXPECT_LT(c.Lifetime(params.snapshot_dt), 5u);
  }
}

TEST(ConvoyTest, SeparateGroupsSeparateConvoys) {
  traj::TrajectoryStore store;
  for (int g = 0; g < 2; ++g) {
    for (int k = 0; k < 3; ++k) {
      traj::Trajectory t(g * 10 + k);
      for (int i = 0; i <= 20; ++i) {
        ASSERT_TRUE(
            t.Append({i * 20.0, g * 50000.0 + k * 10.0, i * 10.0}).ok());
      }
      ASSERT_TRUE(store.Add(std::move(t)).ok());
    }
  }
  ConvoyParams params;
  params.eps = 60.0;
  params.m = 3;
  params.k = 3;
  params.snapshot_dt = 40.0;
  const auto convoys = DiscoverConvoys(store, params);
  ASSERT_GE(convoys.size(), 2u);
  for (const auto& c : convoys) {
    bool low = false, high = false;
    for (traj::ObjectId id : c.objects) {
      (id < 10 ? low : high) = true;
    }
    EXPECT_FALSE(low && high);
  }
}

TEST(ConvoyTest, EmptyStoreNoConvoys) {
  traj::TrajectoryStore store;
  EXPECT_TRUE(DiscoverConvoys(store, ConvoyParams{}).empty());
}

// ---------------------------------------------------------------------------
// Range + rebuild + S2T baseline
// ---------------------------------------------------------------------------

class RangeRebuildTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = datagen::MakeParallelLanes(2, 5, 2000.0, 1500.0, 10.0, 10.0,
                                        /*seed=*/7, /*jitter=*/1.0);
    env_ = storage::Env::NewMemEnv();
    auto index = rtree::BuildSegmentIndex(env_.get(), "g.idx", store_);
    ASSERT_TRUE(index.ok());
    index_ = std::move(index).value();
    params_.SetSigma(30.0).SetEpsilon(60.0);
    params_.segmentation.min_part_length = 2;
    params_.sampling.sigma = 120.0;
    params_.sampling.gain_stop_ratio = 0.2;
  }
  traj::TrajectoryStore store_;
  std::unique_ptr<storage::Env> env_;
  std::unique_ptr<rtree::RTree3D> index_;
  core::S2TParams params_;
};

TEST_F(RangeRebuildTest, MaterializesOnlyWindow) {
  auto result = RunRangeRebuild(store_, *index_, 30.0, 90.0, params_);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->window_store.NumTrajectories(), 0u);
  const auto [t0, t1] = result->window_store.TimeDomain();
  EXPECT_GE(t0, 30.0 - 1e-6);
  EXPECT_LE(t1, 90.0 + 1e-6);
}

TEST_F(RangeRebuildTest, FindsLanesInWindow) {
  auto result = RunRangeRebuild(store_, *index_, 0.0, 150.0, params_);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->s2t.NumClusters(), 2u);
}

TEST_F(RangeRebuildTest, TimingsPopulated) {
  auto result = RunRangeRebuild(store_, *index_, 0.0, 150.0, params_);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->timings.TotalUs(), 0);
  EXPECT_GT(result->timings.s2t_us, 0);
}

TEST_F(RangeRebuildTest, RejectsEmptyWindow) {
  EXPECT_TRUE(
      RunRangeRebuild(store_, *index_, 50.0, 50.0, params_).status()
          .IsInvalidArgument());
}

TEST_F(RangeRebuildTest, EmptyWindowResultNoTrajectories) {
  auto result = RunRangeRebuild(store_, *index_, 1e7, 2e7, params_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->window_store.NumTrajectories(), 0u);
  EXPECT_EQ(result->s2t.NumClusters(), 0u);
}

}  // namespace
}  // namespace hermes::baselines
