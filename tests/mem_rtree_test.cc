// The in-memory hot-tier pg3D R-tree: STR bulk-load layout determinism
// across thread counts, probe parity against a brute-force scan for every
// query mode, structural validation, and the epoch-pin accounting that
// keeps published snapshots alive while readers hold them.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "datagen/aircraft.h"
#include "exec/exec_context.h"
#include "geom/mbb.h"
#include "rtree/mem_rtree3d.h"
#include "rtree/str_bulk_load.h"
#include "traj/segment_arena.h"
#include "traj/trajectory_store.h"

namespace hermes::rtree {
namespace {

traj::TrajectoryStore MakeStore(size_t flights) {
  datagen::AircraftScenarioParams p =
      datagen::AircraftScenarioParams::Default();
  p.num_flights = flights;
  p.sample_dt = 40.0;
  p.seed = 7;
  auto scenario = datagen::GenerateAircraftScenario(p);
  return std::move(scenario->store);
}

std::vector<std::pair<geom::Mbb3D, uint64_t>> ArenaItems(
    const traj::SegmentArena& arena) {
  std::vector<std::pair<geom::Mbb3D, uint64_t>> items(arena.num_segments());
  for (size_t r = 0; r < arena.num_segments(); ++r) {
    items[r] = {arena.BoundsOf(r), PackSegmentRef(arena.RefOf(r))};
  }
  return items;
}

/// Leaf-level predicate of `RTreeOpClass::Consistent` (closed boxes) —
/// the ground truth `SearchInto` must reproduce.
bool Matches(const geom::Mbb3D& item, const geom::Mbb3D& query,
             QueryMode mode) {
  switch (mode) {
    case QueryMode::kIntersects:
      return item.Intersects(query);
    case QueryMode::kContainedBy:
      return query.Contains(item);
    case QueryMode::kContains:
      return item.Contains(query);
  }
  return false;
}

TEST(MemRTreeTest, BulkLoadLayoutIsThreadCountIndependent) {
  const traj::TrajectoryStore store = MakeStore(16);
  const traj::SegmentArena arena = store.ArenaSnapshot();
  ASSERT_GT(arena.num_segments(), 100u);

  auto base = BuildMemSegmentIndex(arena, 0.9, /*ctx=*/nullptr);
  ASSERT_NE(base, nullptr);
  ASSERT_TRUE(base->Validate().ok());
  EXPECT_EQ(base->num_entries(), arena.num_segments());
  EXPECT_GT(base->height(), 1u);  // Enough entries to force real packing.
  const uint64_t expected = base->Fingerprint();

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    exec::ExecContext ctx(threads);
    auto tree = BuildMemSegmentIndex(arena, 0.9, &ctx);
    ASSERT_NE(tree, nullptr);
    ASSERT_TRUE(tree->Validate().ok()) << "threads=" << threads;
    EXPECT_EQ(tree->Fingerprint(), expected) << "threads=" << threads;
    EXPECT_EQ(tree->num_nodes(), base->num_nodes()) << "threads=" << threads;
    EXPECT_EQ(tree->bytes(), base->bytes()) << "threads=" << threads;
  }
}

TEST(MemRTreeTest, SearchMatchesBruteForceForEveryMode) {
  const traj::TrajectoryStore store = MakeStore(12);
  const traj::SegmentArena arena = store.ArenaSnapshot();
  const auto items = ArenaItems(arena);
  auto tree = BuildMemSegmentIndex(arena);
  ASSERT_NE(tree, nullptr);

  // Probe boxes: the whole domain, octant slices, a thin temporal band,
  // a single item's exact bounds (exercises kContains non-trivially),
  // and a box far outside the domain.
  geom::Mbb3D domain;
  for (const auto& [box, datum] : items) domain.Extend(box);
  std::vector<geom::Mbb3D> queries = {domain, items[items.size() / 2].first};
  const double mx = (domain.min_x + domain.max_x) / 2;
  const double my = (domain.min_y + domain.max_y) / 2;
  const double mt = (domain.min_t + domain.max_t) / 2;
  queries.push_back({domain.min_x, domain.min_y, domain.min_t, mx, my, mt});
  queries.push_back({mx, my, mt, domain.max_x, domain.max_y, domain.max_t});
  queries.push_back({domain.min_x, domain.min_y, mt - 1.0, domain.max_x,
                     domain.max_y, mt + 1.0});
  queries.push_back({domain.max_x + 10.0, domain.max_y + 10.0,
                     domain.max_t + 10.0, domain.max_x + 20.0,
                     domain.max_y + 20.0, domain.max_t + 20.0});

  for (QueryMode mode : {QueryMode::kIntersects, QueryMode::kContainedBy,
                         QueryMode::kContains}) {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      std::vector<uint64_t> expected;
      for (const auto& [box, datum] : items) {
        if (Matches(box, queries[qi], mode)) expected.push_back(datum);
      }
      std::vector<uint64_t> got;
      tree->SearchInto(queries[qi], mode, &got);
      std::sort(expected.begin(), expected.end());
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected)
          << "mode=" << static_cast<int>(mode) << " query=" << qi;
    }
  }
}

TEST(MemRTreeTest, DeepTreeSearchSpillsDfsStackToHeap) {
  // A fill factor of 0.1 clamps per-node occupancy to the minimum of 2,
  // so a few thousand entries build a tree past height 6 — where the
  // DFS stack's worst-case occupancy, 1 + (height-1)*(kFanout-1),
  // exceeds SearchInto's 64-slot inline buffer and the search must
  // spill to a heap stack instead of writing past a fixed array (the
  // default fill factor hits the same bound at ~500k+ entries).
  const size_t n = 4096;
  std::vector<std::pair<geom::Mbb3D, uint64_t>> items;
  items.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i % 64);
    const double y = static_cast<double>(i / 64);
    items.push_back({{x, y, 0.0, x + 0.5, y + 0.5, 1.0}, i});
  }
  auto tree = MemRTree3D::BulkLoad(items, /*fill_factor=*/0.1);
  ASSERT_NE(tree, nullptr);
  ASSERT_TRUE(tree->Validate().ok());
  ASSERT_GE(tree->height(), 6u);

  std::vector<uint64_t> got;
  tree->SearchInto({-1, -1, -1, 100, 100, 2}, QueryMode::kIntersects, &got);
  EXPECT_EQ(got.size(), n);

  const geom::Mbb3D window{10.0, 10.0, 0.0, 30.0, 40.0, 1.0};
  std::vector<uint64_t> expected;
  for (const auto& [box, datum] : items) {
    if (box.Intersects(window)) expected.push_back(datum);
  }
  tree->SearchInto(window, QueryMode::kIntersects, &got);
  std::sort(got.begin(), got.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);
}

TEST(MemRTreeTest, EmptyTree) {
  auto tree = MemRTree3D::BulkLoad({});
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->num_entries(), 0u);
  EXPECT_EQ(tree->height(), 0u);
  EXPECT_TRUE(tree->Validate().ok());
  std::vector<uint64_t> out = {42};  // SearchInto must clear stale content.
  tree->SearchInto({0, 0, 0, 1, 1, 1}, QueryMode::kIntersects, &out);
  EXPECT_TRUE(out.empty());
  // Two empty trees fingerprint identically.
  EXPECT_EQ(tree->Fingerprint(), MemRTree3D::BulkLoad({})->Fingerprint());
}

TEST(MemRTreeTest, SingleItemTree) {
  const geom::Mbb3D box{0, 0, 0, 10, 10, 10};
  auto tree = MemRTree3D::BulkLoad({{box, 99}});
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->num_entries(), 1u);
  EXPECT_EQ(tree->height(), 1u);
  ASSERT_TRUE(tree->Validate().ok());
  std::vector<uint64_t> out;
  tree->SearchInto({5, 5, 5, 6, 6, 6}, QueryMode::kIntersects, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 99u);
  tree->SearchInto({20, 20, 20, 30, 30, 30}, QueryMode::kIntersects, &out);
  EXPECT_TRUE(out.empty());
}

TEST(MemRTreeTest, BytesGrowWithEntries) {
  const traj::TrajectoryStore small = MakeStore(4);
  const traj::TrajectoryStore large = MakeStore(16);
  auto empty = MemRTree3D::BulkLoad({});
  auto a = BuildMemSegmentIndex(small.ArenaSnapshot());
  auto b = BuildMemSegmentIndex(large.ArenaSnapshot());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_GT(a->bytes(), empty->bytes());  // First node block allocated.
  // Node storage is block-granular (64 nodes per bump-arena block), so
  // a bigger tree may round to the same byte count — but never fewer.
  EXPECT_GE(b->bytes(), a->bytes());
  EXPECT_GT(b->num_nodes(), a->num_nodes());
}

TEST(MemRTreeTest, EpochPinAccounting) {
  // The pin RAII the hot tier hangs its snapshots on: live rises with
  // each pin, total never falls, live drops only when the *last* shared
  // owner releases.
  auto registry = std::make_shared<traj::EpochPinRegistry>();
  EXPECT_EQ(registry->live.load(), 0u);
  {
    auto pin = std::make_shared<traj::EpochPin>(registry);
    EXPECT_EQ(registry->live.load(), 1u);
    EXPECT_EQ(registry->total.load(), 1u);
    auto second = std::make_shared<traj::EpochPin>(registry);
    EXPECT_EQ(registry->live.load(), 2u);
    auto alias = second;  // Shared owner, not a new pin.
    EXPECT_EQ(registry->live.load(), 2u);
    second.reset();
    EXPECT_EQ(registry->live.load(), 2u);  // `alias` still holds it.
    alias.reset();
    EXPECT_EQ(registry->live.load(), 1u);
  }
  EXPECT_EQ(registry->live.load(), 0u);
  EXPECT_EQ(registry->total.load(), 2u);
}

}  // namespace
}  // namespace hermes::rtree
