// Multi-session service layer: shared catalog, background ingest worker,
// per-session settings, snapshot-isolated concurrent readers.
//
// The headline test is the acceptance criterion of the service PR: four
// concurrent reader sessions issue S2T_MEMBERS / RANGE statements while
// the ingest worker drains queued batches, and every result must be
// *bit-identical* to a quiesced sequential run over one of the published
// store prefixes — concurrency may change timing, never values. The file
// runs under the TSan CI leg, so the same test doubles as the data-race
// gate for the whole read path.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/maritime.h"
#include "service/client_session.h"
#include "service/ingest_queue.h"
#include "service/server.h"
#include "sql/executor.h"
#include "sql/value.h"

namespace hermes::service {
namespace {

using sql::Table;
using sql::Value;
using sql::ValueType;

traj::TrajectoryStore MakeShips(size_t num_ships) {
  datagen::MaritimeScenarioParams p;
  p.num_ships = num_ships;
  p.sample_dt = 300.0;
  p.seed = 13;
  auto s = datagen::GenerateMaritimeScenario(p);
  return std::move(s->store);
}

/// First `k` trajectories of `full`, re-added in id order — exactly the
/// store the service publishes after the batches summing to `k` applied.
traj::TrajectoryStore Prefix(const traj::TrajectoryStore& full, size_t k) {
  traj::TrajectoryStore out;
  for (traj::TrajectoryId tid = 0; tid < k; ++tid) {
    auto r = out.Add(full.Get(tid));
    EXPECT_TRUE(r.ok());
  }
  return out;
}

// ---------------------------------------------------------------------------
// IngestQueue
// ---------------------------------------------------------------------------

TEST(IngestQueueTest, PreservesOrderAndTickets) {
  IngestQueue q(/*capacity=*/8);
  for (int i = 0; i < 3; ++i) {
    IngestBatch b;
    b.mod = "M" + std::to_string(i);
    auto seq = q.Push(std::move(b));
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(*seq, static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(q.depth(), 3u);
  EXPECT_EQ(q.last_enqueued_seq(), 3u);
  std::vector<IngestBatch> got;
  ASSERT_TRUE(q.PopAll(&got));
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].mod, "M0");
  EXPECT_EQ(got[2].mod, "M2");
  EXPECT_EQ(got[2].seq, 3u);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(IngestQueueTest, CloseFailsPushAndDrainsPops) {
  IngestQueue q(4);
  IngestBatch b;
  b.mod = "X";
  ASSERT_TRUE(q.Push(std::move(b)).ok());
  q.Close();
  IngestBatch after;
  after.mod = "Y";
  EXPECT_FALSE(q.Push(std::move(after)).ok());
  std::vector<IngestBatch> got;
  EXPECT_TRUE(q.PopAll(&got));  // The pre-close batch still drains.
  EXPECT_EQ(got.size(), 1u);
  EXPECT_FALSE(q.PopAll(&got));  // Closed and empty: worker exits.
}

TEST(IngestQueueTest, ConcurrentProducersAllArrive) {
  IngestQueue q(/*capacity=*/2);  // Small: exercises backpressure blocking.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 25;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        IngestBatch b;
        b.mod = "P" + std::to_string(p);
        ASSERT_TRUE(q.Push(std::move(b)).ok());
      }
    });
  }
  size_t received = 0;
  std::vector<IngestBatch> got;
  while (received < kProducers * kPerProducer) {
    ASSERT_TRUE(q.PopAll(&got));
    received += got.size();
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(received, static_cast<size_t>(kProducers * kPerProducer));
  EXPECT_EQ(q.last_enqueued_seq(),
            static_cast<uint64_t>(kProducers * kPerProducer));
}

// ---------------------------------------------------------------------------
// Server lifecycle + SQL surface
// ---------------------------------------------------------------------------

TEST(ServiceTest, SqlLifecycleAcrossSessions) {
  auto server = std::move(Server::Start(ServerOptions{})).value();
  auto s1 = server->Connect();
  auto s2 = server->Connect();

  // DDL from one session is visible to the other (shared catalog).
  ASSERT_TRUE(s1->Execute("CREATE MOD fleet;").ok());
  EXPECT_FALSE(s2->Execute("CREATE MOD fleet;").ok());  // AlreadyExists.

  // INSERT queues; FLUSH makes it query-visible — from either session.
  auto ins = s1->Execute(
      "INSERT INTO fleet VALUES (1, 0, 0, 0), (1, 60, 500, 0), "
      "(2, 0, 0, 40), (2, 60, 500, 40);");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_EQ(ins->columns[1].name, "trajectories_queued");
  EXPECT_EQ(ins->rows[0][1], Value::Int(2));
  ASSERT_TRUE(s2->Execute("FLUSH;").ok());
  auto stats = s2->Execute("SELECT STATS(fleet);");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows[0][0], Value::Int(2));  // trajectories
  EXPECT_EQ(stats->rows[0][1], Value::Int(4));  // points

  // SHOW SERVICE STATS reflects the ingest.
  auto svc = s1->Execute("SHOW SERVICE STATS;");
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  int64_t ingested = -1, sessions = -1, published = -1;
  for (const auto& row : svc->rows) {
    if (row[0] == Value::Str("trajectories_ingested")) ingested = row[1].AsInt();
    if (row[0] == Value::Str("sessions_active")) sessions = row[1].AsInt();
    if (row[0] == Value::Str("snapshots_published")) published = row[1].AsInt();
  }
  EXPECT_EQ(ingested, 2);
  EXPECT_EQ(sessions, 2);
  EXPECT_GE(published, 2);  // CREATE + post-drain republish.

  // DROP from session 2; session 1's next query fails cleanly.
  ASSERT_TRUE(s2->Execute("DROP MOD fleet;").ok());
  EXPECT_FALSE(s1->Execute("SELECT STATS(fleet);").ok());
}

TEST(ServiceTest, PerSessionSettingsDoNotInterfere) {
  ServerOptions opts;
  opts.session_defaults.sigma = 700.0;
  auto server = std::move(Server::Start(std::move(opts))).value();
  auto a = server->Connect();
  auto b = server->Connect();

  // Both sessions start from the server defaults...
  EXPECT_EQ(a->settings().Get("hermes.sigma")->AsDouble(), 700.0);
  EXPECT_EQ(b->settings().Get("hermes.sigma")->AsDouble(), 700.0);

  // ...and diverge independently: a's SETs never leak into b.
  ASSERT_TRUE(a->Execute("SET hermes.sigma = 111;").ok());
  ASSERT_TRUE(a->Execute("SET hermes.threads = 4;").ok());
  ASSERT_TRUE(a->Execute("SET hermes.use_index = off;").ok());
  EXPECT_EQ(a->settings().Get("hermes.sigma")->AsDouble(), 111.0);
  EXPECT_EQ(b->settings().Get("hermes.sigma")->AsDouble(), 700.0);
  EXPECT_EQ(b->settings().Get("hermes.threads")->AsInt(), 1);
  EXPECT_EQ(b->settings().Get("hermes.use_index")->AsInt(), 1);
  EXPECT_NE(a->exec_context(), nullptr);
  EXPECT_EQ(b->exec_context(), nullptr);

  // Per-session validation still holds.
  EXPECT_FALSE(a->Execute("SET hermes.threads = 0;").ok());
}

TEST(ServiceTest, CursorHoldsItsSnapshotWhileIngestPublishes) {
  auto server = std::move(Server::Start(ServerOptions{})).value();
  const traj::TrajectoryStore ships = MakeShips(6);
  ASSERT_TRUE(server->RegisterStore("ships", Prefix(ships, 4)).ok());
  auto session = server->Connect();

  const auto [t0, t1] = ships.TimeDomain();
  const std::string range = "SELECT RANGE(ships, " + std::to_string(t0) +
                            ", " + std::to_string(t1 + 1) + ");";
  auto cursor = session->ExecuteCursor(range);
  ASSERT_TRUE(cursor.ok());
  std::vector<Value> row;
  auto first = (*cursor)->Next(&row);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(*first);

  // Ingest two more trajectories and force visibility.
  std::vector<traj::Trajectory> batch;
  batch.push_back(ships.Get(4));
  batch.push_back(ships.Get(5));
  ASSERT_TRUE(server->EnqueueInsert("ships", std::move(batch)).ok());
  ASSERT_TRUE(server->Flush().ok());

  // The open cursor still sweeps its original 4-trajectory snapshot...
  size_t rows = 1;
  while (true) {
    auto more = (*cursor)->Next(&row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ++rows;
  }
  EXPECT_EQ(rows, 4u);
  // ...while a fresh statement sees the published 6.
  auto after = session->Execute(range);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows.size(), 6u);

  // Pin accounting: the cursor's snapshot epoch was released; the
  // server's own published snapshot keeps exactly one pin per MOD.
  cursor->reset();
  auto svc = session->Execute("SHOW SERVICE STATS;");
  ASSERT_TRUE(svc.ok());
  for (const auto& r : svc->rows) {
    if (r[0] == Value::Str("arena_epochs_pinned")) {
      EXPECT_EQ(r[1], Value::Int(1));
    }
  }
}

TEST(ServiceTest, QutUsesSharedTreeAndCatchesUpAfterIngest) {
  auto server = std::move(Server::Start(ServerOptions{})).value();
  const traj::TrajectoryStore ships = MakeShips(8);
  ASSERT_TRUE(server->RegisterStore("ships", Prefix(ships, 6)).ok());
  auto session = server->Connect();

  const auto [t0, t1] = ships.TimeDomain();
  const double tau = (t1 - t0) / 2, delta = tau / 4;
  auto qut_sql = [&](const char* mod) {
    return std::string("SELECT QUT(") + mod + ", " + std::to_string(t0) +
           ", " + std::to_string(t1 + 1) + ", " + std::to_string(tau) + ", " +
           std::to_string(delta) + ", " + std::to_string(delta) +
           ", 900, 6);";
  };
  auto before = session->Execute(qut_sql("ships"));
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  std::vector<traj::Trajectory> batch;
  batch.push_back(ships.Get(6));
  batch.push_back(ships.Get(7));
  ASSERT_TRUE(server->EnqueueInsert("ships", std::move(batch)).ok());
  ASSERT_TRUE(session->Execute("FLUSH;").ok());
  auto after = session->Execute(qut_sql("ships"));
  ASSERT_TRUE(after.ok()) << after.status().ToString();

  // The worker (or query path) caught the shared tree up incrementally
  // instead of rebuilding it.
  EXPECT_GE(server->Stats().tree_catchups, 1u);

  // Parity: a fresh server fed all 8 up front answers identically.
  auto fresh = std::move(Server::Start(ServerOptions{})).value();
  ASSERT_TRUE(fresh->RegisterStore("ships", Prefix(ships, 8)).ok());
  auto fresh_session = fresh->Connect();
  auto expected = fresh_session->Execute(qut_sql("ships"));
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(after->rows, expected->rows);
}

TEST(ServiceTest, ServiceStatsExposeHotTierCounters) {
  auto server = std::move(Server::Start(ServerOptions{})).value();
  const traj::TrajectoryStore ships = MakeShips(6);
  ASSERT_TRUE(server->RegisterStore("ships", Prefix(ships, 6)).ok());
  auto session = server->Connect();

  const auto [t0, t1] = ships.TimeDomain();
  const double tau = (t1 - t0) / 2, delta = tau / 4;
  const std::string qut_sql =
      "SELECT QUT(ships, " + std::to_string(t0) + ", " +
      std::to_string(t1 + 1) + ", " + std::to_string(tau) + ", " +
      std::to_string(delta) + ", " + std::to_string(delta) + ", 900, 6);";
  // First query promotes (cold probes), second serves hot.
  ASSERT_TRUE(session->Execute(qut_sql).ok());
  ASSERT_TRUE(session->Execute(qut_sql).ok());

  auto svc = session->Execute("SHOW SERVICE STATS;");
  ASSERT_TRUE(svc.ok());
  int64_t hot = -1, cold = -1, bytes = -1, parts = -1, pins = -1;
  for (const auto& row : svc->rows) {
    if (row[0] == Value::Str("qut_hot_probes")) hot = row[1].AsInt();
    if (row[0] == Value::Str("qut_cold_probes")) cold = row[1].AsInt();
    if (row[0] == Value::Str("hot_index_bytes")) bytes = row[1].AsInt();
    if (row[0] == Value::Str("hot_partitions")) parts = row[1].AsInt();
    if (row[0] == Value::Str("hot_pins_total")) pins = row[1].AsInt();
  }
  EXPECT_GT(hot, 0);
  EXPECT_GT(cold, 0);
  EXPECT_GT(bytes, 0);
  // The tier counters embedded SHOW STATS reports must ride along too.
  EXPECT_GT(parts, 0);
  EXPECT_GT(pins, 0);

  // A zero server budget keeps every shared tree cold.
  ServerOptions cold_opts;
  cold_opts.session_defaults.hot_index_budget = 0;
  auto cold_server = std::move(Server::Start(std::move(cold_opts))).value();
  ASSERT_TRUE(cold_server->RegisterStore("ships", Prefix(ships, 6)).ok());
  auto cold_session = cold_server->Connect();
  ASSERT_TRUE(cold_session->Execute(qut_sql).ok());
  ASSERT_TRUE(cold_session->Execute(qut_sql).ok());
  const ServiceStats cs = cold_server->Stats();
  EXPECT_EQ(cs.qut_hot_probes, 0u);
  EXPECT_GT(cs.qut_cold_probes, 0u);
  EXPECT_EQ(cs.hot_index_bytes, 0u);

  // Start-time validation mirrors the SET-path validator.
  ServerOptions bad;
  bad.session_defaults.hot_index_budget = -5;
  EXPECT_TRUE(Server::Start(std::move(bad)).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// The acceptance criterion: concurrent readers + ingest worker,
// bit-identical to quiesced sequential runs over published prefixes.
// ---------------------------------------------------------------------------

TEST(ServiceTest, ConcurrentReadersMatchQuiescedSequentialPrefixes) {
  constexpr size_t kTotal = 16;
  constexpr size_t kInitial = 8;
  constexpr size_t kBatch = 2;
  const traj::TrajectoryStore ships = MakeShips(kTotal);
  const auto [t0, t1] = ships.TimeDomain();
  const std::string members_sql = "SELECT S2T_MEMBERS(ships, 800, 1600);";
  const std::string range_sql = "SELECT RANGE(ships, " + std::to_string(t0) +
                                ", " + std::to_string(t1 + 1) + ");";

  // Quiesced sequential baselines, one per possible published prefix
  // (initial load, then whole batches in queue order — the worker never
  // splits a batch across a republication).
  std::vector<size_t> prefixes;
  for (size_t k = kInitial; k <= kTotal; k += kBatch) prefixes.push_back(k);
  std::vector<Table> expected_members;
  std::vector<Table> expected_range;
  for (size_t k : prefixes) {
    sql::Session quiesced;
    ASSERT_TRUE(quiesced.RegisterStore("ships", Prefix(ships, k)).ok());
    auto m = quiesced.Execute(members_sql);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    expected_members.push_back(std::move(*m));
    auto r = quiesced.Execute(range_sql);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected_range.push_back(std::move(*r));
  }

  ServerOptions opts;
  opts.threads = 2;  // The ingest drains themselves fan out.
  auto server = std::move(Server::Start(std::move(opts))).value();
  ASSERT_TRUE(server->RegisterStore("ships", Prefix(ships, kInitial)).ok());

  // 4 reader sessions × alternating S2T_MEMBERS / RANGE, concurrent with
  // the ingest worker draining the remaining batches.
  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 6;
  struct ReaderResult {
    bool is_members = false;
    Table table;
  };
  std::vector<std::vector<ReaderResult>> results(kReaders);
  std::vector<std::string> failures(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int rix = 0; rix < kReaders; ++rix) {
    readers.emplace_back([&, rix] {
      auto session = server->Connect();
      // Two of the readers run their statements multi-threaded, so the
      // per-session exec contexts overlap with the worker's.
      if (rix % 2 == 1 &&
          !session->Execute("SET hermes.threads = 2;").ok()) {
        failures[rix] = "SET hermes.threads failed";
        return;
      }
      for (int q = 0; q < kQueriesPerReader; ++q) {
        const bool members = (q % 2 == 0);
        auto table = session->Execute(members ? members_sql : range_sql);
        if (!table.ok()) {
          failures[rix] = table.status().ToString();
          return;
        }
        results[rix].push_back({members, std::move(*table)});
      }
    });
  }

  // The single writer: queue the remaining trajectories in kBatch chunks.
  for (size_t next = kInitial; next < kTotal; next += kBatch) {
    std::vector<traj::Trajectory> batch;
    for (size_t tid = next; tid < next + kBatch && tid < kTotal; ++tid) {
      batch.push_back(ships.Get(tid));
    }
    ASSERT_TRUE(server->EnqueueInsert("ships", std::move(batch)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(server->Flush().ok());
  for (auto& t : readers) t.join();

  for (int rix = 0; rix < kReaders; ++rix) {
    ASSERT_EQ(failures[rix], "") << "reader " << rix;
    ASSERT_EQ(results[rix].size(), static_cast<size_t>(kQueriesPerReader));
    for (size_t q = 0; q < results[rix].size(); ++q) {
      const ReaderResult& got = results[rix][q];
      const auto& expected = got.is_members ? expected_members : expected_range;
      bool matched = false;
      for (const Table& e : expected) {
        if (got.table.rows == e.rows) {
          matched = true;
          break;
        }
      }
      EXPECT_TRUE(matched)
          << "reader " << rix << " query " << q << " ("
          << (got.is_members ? "S2T_MEMBERS" : "RANGE")
          << ") matches no quiesced sequential prefix result:\n"
          << got.table.ToString();
    }
  }

  // Quiesced end state: both statements now equal the full-store
  // baseline exactly.
  auto session = server->Connect();
  auto final_members = session->Execute(members_sql);
  ASSERT_TRUE(final_members.ok());
  EXPECT_EQ(final_members->rows, expected_members.back().rows);
  auto final_range = session->Execute(range_sql);
  ASSERT_TRUE(final_range.ok());
  EXPECT_EQ(final_range->rows, expected_range.back().rows);

  const ServiceStats stats = server->Stats();
  EXPECT_EQ(stats.trajectories_ingested, kTotal - kInitial);
  EXPECT_EQ(stats.ingest_errors, 0u);
  EXPECT_GE(stats.batches_applied, 1u);
}

TEST(ServiceTest, SingleSampleInsertIsRejectedBeforeQueueing) {
  auto server = std::move(Server::Start(ServerOptions{})).value();
  auto session = server->Connect();
  ASSERT_TRUE(session->Execute("CREATE MOD m;").ok());
  // One sample can never form a segment (and would poison the shared
  // tree's catch-up); the precondition fails at the ack, not in the
  // worker.
  auto bad = session->Execute("INSERT INTO m VALUES (7, 0, 0, 0);");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(session->Execute("FLUSH;").ok());
  auto stats = session->Execute("SELECT STATS(m);");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows[0][0], Value::Int(0));
  EXPECT_EQ(server->Stats().ingest_errors, 0u);
}

TEST(ServiceTest, ShutdownRejectsLaterInsertsButKeepsQueries) {
  auto server = std::move(Server::Start(ServerOptions{})).value();
  ASSERT_TRUE(server->RegisterStore("ships", MakeShips(4)).ok());
  auto session = server->Connect();
  server->Shutdown();
  // A Push racing (or following) Close() gets the distinct Unavailable
  // code — not ResourceExhausted, which means "queue at capacity" and
  // would tell a client to retry against a server that is gone.
  const auto late = session->Execute("INSERT INTO ships VALUES (9, 0, 0, 0), "
                                     "(9, 60, 10, 0);");
  ASSERT_FALSE(late.ok());
  EXPECT_TRUE(late.status().IsUnavailable()) << late.status().ToString();
  EXPECT_FALSE(late.status().IsResourceExhausted());
  auto stats = session->Execute("SELECT STATS(ships);");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows[0][0], Value::Int(4));
}

// ---------------------------------------------------------------------------
// Prepared statements (the wire protocol's PREPARE / BIND+EXECUTE path)
// ---------------------------------------------------------------------------

/// Regression for the old hard-rejection of `$N` statements in service
/// sessions: Prepare/Bind/Execute through a ClientSession must match the
/// embedded sql::Session bit-for-bit — typed cells, not rendered text.
TEST(ServiceTest, PreparedStatementsMatchEmbeddedSessionBitForBit) {
  const traj::TrajectoryStore ships = MakeShips(8);

  sql::Session embedded;
  ASSERT_TRUE(embedded.RegisterStore("ships", Prefix(ships, 8)).ok());
  auto server = std::move(Server::Start(ServerOptions{})).value();
  ASSERT_TRUE(server->RegisterStore("ships", Prefix(ships, 8)).ok());
  auto session = server->Connect();

  const auto same = [](const Table& got, const Table& want) {
    ASSERT_EQ(got.columns.size(), want.columns.size());
    for (size_t c = 0; c < want.columns.size(); ++c) {
      EXPECT_EQ(got.columns[c].name, want.columns[c].name);
      EXPECT_EQ(got.columns[c].type, want.columns[c].type);
    }
    ASSERT_EQ(got.rows.size(), want.rows.size());
    for (size_t r = 0; r < want.rows.size(); ++r) {
      for (size_t c = 0; c < want.rows[r].size(); ++c) {
        EXPECT_TRUE(got.rows[r][c] == want.rows[r][c])
            << "row " << r << " col " << c;
      }
    }
  };

  // The MOD position itself as `$1` plus numeric parameters — the shared
  // ResolveSelectModName path on both frontends.
  struct Case {
    const char* stmt;
    std::vector<Value> binds;  ///< $2.. — $1 is always the MOD name.
  };
  const std::vector<Case> cases = {
      {"SELECT RANGE($1, $2, $3);",
       {Value::Double(0.0), Value::Double(1e9)}},
      {"SELECT STATS($1);", {}},
      {"SELECT S2T($1, $2, $3);",
       {Value::Double(100.0), Value::Double(200.0)}},
  };
  for (const auto& [stmt, extra] : cases) {
    auto e = embedded.Prepare(stmt);
    auto s = session->Prepare(stmt);
    ASSERT_TRUE(e.ok()) << stmt;
    ASSERT_TRUE(s.ok()) << stmt;
    EXPECT_EQ(e->num_params(), s->num_params());
    for (auto* ps : {&*e, &*s}) {
      ASSERT_TRUE(ps->Bind(1, Value::Str("ships")).ok());
      for (size_t i = 0; i < extra.size(); ++i) {
        ASSERT_TRUE(ps->Bind(static_cast<int>(i) + 2, extra[i]).ok());
      }
    }
    auto want = e->Execute();
    auto got = s->Execute();
    ASSERT_TRUE(want.ok()) << stmt;
    ASSERT_TRUE(got.ok()) << stmt;
    same(*got, *want);
    // Re-execution with persistent binds is stable on both.
    auto again = s->Execute();
    ASSERT_TRUE(again.ok());
    same(*again, *want);
  }

  // Plain ExecuteCursor still rejects unbound placeholders — but with the
  // same message as the embedded session, not the old hard rejection.
  auto direct = session->ExecuteCursor("SELECT STATS($1);");
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kInvalidArgument);
  auto edirect = embedded.ExecuteCursor("SELECT STATS($1);");
  ASSERT_FALSE(edirect.ok());

  // Unbound parameter and bad MOD-bind type fail identically.
  auto e_hole = embedded.Prepare("SELECT STATS($1);");
  auto s_hole = session->Prepare("SELECT STATS($1);");
  ASSERT_TRUE(e_hole.ok());
  ASSERT_TRUE(s_hole.ok());
  EXPECT_EQ(e_hole->Execute().status().message(),
            s_hole->Execute().status().message());
  ASSERT_TRUE(e_hole->Bind(1, Value::Int(3)).ok());
  ASSERT_TRUE(s_hole->Bind(1, Value::Int(3)).ok());
  EXPECT_EQ(e_hole->Execute().status().message(),
            s_hole->Execute().status().message());

  // INSERT with $N binds: queued through the service, applied by FLUSH,
  // and visible with the same STATS as the embedded synchronous insert.
  auto e_ins = embedded.Prepare(
      "INSERT INTO ships VALUES ($1, 0, 0, 0), ($1, 300, 50, 50);");
  auto s_ins = session->Prepare(
      "INSERT INTO ships VALUES ($1, 0, 0, 0), ($1, 300, 50, 50);");
  ASSERT_TRUE(e_ins.ok());
  ASSERT_TRUE(s_ins.ok());
  ASSERT_TRUE(e_ins->Bind(1, Value::Int(123)).ok());
  ASSERT_TRUE(s_ins->Bind(1, Value::Int(123)).ok());
  ASSERT_TRUE(e_ins->Execute().ok());
  ASSERT_TRUE(s_ins->Execute().ok());  // async ack (queued + ticket)
  ASSERT_TRUE(session->Execute("FLUSH;").ok());
  auto want_stats = embedded.Execute("SELECT STATS(ships);");
  auto got_stats = session->Execute("SELECT STATS(ships);");
  ASSERT_TRUE(want_stats.ok());
  ASSERT_TRUE(got_stats.ok());
  same(*got_stats, *want_stats);
}

}  // namespace
}  // namespace hermes::service
