// Crash recovery of the durable service: WAL replay, checkpoints, and
// the fault-injected failure modes of ISSUE 9's acceptance criterion —
// every FLUSH-acked trajectory survives a restart bit-identically, a
// torn WAL tail is dropped (never half-applied), and a WAL that stops
// accepting writes turns the server read-only instead of un-durable.
//
// "Crash" here = abandon the server's Env handles and re-open the same
// base MemEnv: whatever the fault points let through is the disk image
// the dead process left behind. The process-level SIGKILL variant is
// tests/restart_test.cc, against the real daemon and filesystem.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "datagen/aircraft.h"
#include "datagen/maritime.h"
#include "datagen/urban.h"
#include "service/client_session.h"
#include "service/server.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "traj/trajectory_io.h"
#include "wal/wal.h"

namespace hermes::service {
namespace {

constexpr char kWalDir[] = "waldir";

ServerOptions DurableOptions() {
  ServerOptions opts;
  opts.wal_dir = kWalDir;
  return opts;
}

std::unique_ptr<Server> StartDurable(storage::Env* env) {
  auto server = Server::Start(DurableOptions(), env);
  EXPECT_TRUE(server.ok()) << server.status().message();
  return std::move(server).value();
}

traj::TrajectoryStore MakeMaritime(size_t n) {
  datagen::MaritimeScenarioParams p;
  p.num_ships = n;
  p.sample_dt = 300.0;
  p.seed = 13;
  return std::move(datagen::GenerateMaritimeScenario(p)->store);
}

traj::TrajectoryStore MakeAircraft(size_t n) {
  datagen::AircraftScenarioParams p = datagen::AircraftScenarioParams::Default();
  p.num_flights = n;
  p.sample_dt = 60.0;
  p.seed = 7;
  return std::move(datagen::GenerateAircraftScenario(p)->store);
}

traj::TrajectoryStore MakeUrban(size_t n) {
  datagen::UrbanScenarioParams p;
  p.num_vehicles = n;
  p.time_span = 600.0;
  p.seed = 11;
  return std::move(datagen::GenerateUrbanScenario(p)->store);
}

/// Trajectories [lo, hi) of `s`, as an ingest batch.
std::vector<traj::Trajectory> Slice(const traj::TrajectoryStore& s, size_t lo,
                                    size_t hi) {
  std::vector<traj::Trajectory> out;
  for (size_t i = lo; i < hi && i < s.NumTrajectories(); ++i) {
    out.push_back(s.Get(static_cast<traj::TrajectoryId>(i)));
  }
  return out;
}

/// The MOD's published snapshot, binary-encoded — the bit-identity
/// witness (trajectory_io's encode is bit-exact on doubles).
std::string Encoded(Server* server, const std::string& mod) {
  auto snap = server->SnapshotMod(mod);
  EXPECT_TRUE(snap.ok()) << snap.status().message();
  if (!snap.ok()) return "";
  std::string out;
  traj::EncodeStore(**snap, &out);
  return out;
}

/// Creates `mod` and ingests all of `data` in `batches` FLUSH-acked
/// batches.
void Ingest(Server* server, const std::string& mod,
            const traj::TrajectoryStore& data, size_t batches) {
  ASSERT_TRUE(server->CreateMod(mod).ok());
  const size_t n = data.NumTrajectories();
  const size_t per = (n + batches - 1) / batches;
  for (size_t lo = 0; lo < n; lo += per) {
    ASSERT_TRUE(
        server->EnqueueInsert(mod, Slice(data, lo, lo + per)).ok());
  }
  ASSERT_TRUE(server->Flush().ok());
}

// ---------------------------------------------------------------------------
// Configuration gates
// ---------------------------------------------------------------------------

TEST(RecoveryTest, NonDurableServerRejectsCheckpoint) {
  auto server = std::move(Server::Start(ServerOptions{})).value();
  auto st = server->Checkpoint();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotSupported());

  auto table = server->Connect()->Execute("CHECKPOINT;");
  ASSERT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsNotSupported());
}

// ---------------------------------------------------------------------------
// WAL replay (no checkpoint): all three movement domains, bit-identical
// ---------------------------------------------------------------------------

TEST(RecoveryTest, WalReplayRestoresEveryDomainBitIdentical) {
  auto env = storage::Env::NewMemEnv();
  const traj::TrajectoryStore aircraft = MakeAircraft(6);
  const traj::TrajectoryStore maritime = MakeMaritime(6);
  const traj::TrajectoryStore urban = MakeUrban(6);

  std::string want_air, want_sea, want_road;
  {
    auto server = StartDurable(env.get());
    Ingest(server.get(), "flights", aircraft, 2);
    Ingest(server.get(), "ships", maritime, 2);
    Ingest(server.get(), "cars", urban, 2);
    want_air = Encoded(server.get(), "flights");
    want_sea = Encoded(server.get(), "ships");
    want_road = Encoded(server.get(), "cars");
    ASSERT_FALSE(want_air.empty());
    // No Checkpoint: everything must come back from the WAL alone.
  }

  auto restarted = StartDurable(env.get());
  EXPECT_EQ(Encoded(restarted.get(), "flights"), want_air);
  EXPECT_EQ(Encoded(restarted.get(), "ships"), want_sea);
  EXPECT_EQ(Encoded(restarted.get(), "cars"), want_road);

  const ServiceStats stats = restarted->Stats();
  EXPECT_EQ(stats.mods, 3u);
  // 3 creates + 6 insert batches, replayed exactly once each.
  EXPECT_EQ(stats.wal_records_replayed, 9u);
  EXPECT_EQ(stats.wal_torn_bytes_dropped, 0u);

  // The recovered server is a first-class durable server: ingest more,
  // restart again, and the chain still replays bit-identically.
  ASSERT_TRUE(
      restarted->EnqueueInsert("ships", Slice(maritime, 0, 2)).ok());
  ASSERT_TRUE(restarted->Flush().ok());
  const std::string want_sea2 = Encoded(restarted.get(), "ships");
  restarted.reset();

  auto third = StartDurable(env.get());
  EXPECT_EQ(Encoded(third.get(), "ships"), want_sea2);
  EXPECT_EQ(Encoded(third.get(), "flights"), want_air);
}

TEST(RecoveryTest, DropAndRecreateReplayInLogOrder) {
  auto env = storage::Env::NewMemEnv();
  const traj::TrajectoryStore ships = MakeMaritime(6);
  std::string want;
  {
    auto server = StartDurable(env.get());
    Ingest(server.get(), "m", ships, 1);
    ASSERT_TRUE(server->DropMod("m").ok());
    // Recreate with different contents: replay must land on the second
    // incarnation, not resurrect the first.
    ASSERT_TRUE(server->CreateMod("m").ok());
    ASSERT_TRUE(server->EnqueueInsert("m", Slice(ships, 2, 4)).ok());
    ASSERT_TRUE(server->Flush().ok());
    want = Encoded(server.get(), "m");
  }
  auto restarted = StartDurable(env.get());
  EXPECT_EQ(Encoded(restarted.get(), "m"), want);
  auto snap = restarted->SnapshotMod("m");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ((*snap)->NumTrajectories(), 2u);
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

TEST(RecoveryTest, CheckpointTruncatesWalAndBoundsReplay) {
  auto env = storage::Env::NewMemEnv();
  const traj::TrajectoryStore ships = MakeMaritime(8);
  std::string want;
  {
    auto server = StartDurable(env.get());
    Ingest(server.get(), "ships", ships, 4);
    ASSERT_TRUE(server->Checkpoint().ok());
    EXPECT_EQ(server->Stats().checkpoints_taken, 1u);

    // Covered segments are gone; only the fresh one remains.
    auto segments = wal::ListSegments(env.get(), kWalDir);
    ASSERT_TRUE(segments.ok());
    ASSERT_EQ(segments->size(), 1u);

    // Post-checkpoint tail: one more acked batch.
    ASSERT_TRUE(
        server->EnqueueInsert("ships", Slice(ships, 0, 3)).ok());
    ASSERT_TRUE(server->Flush().ok());
    want = Encoded(server.get(), "ships");
  }

  auto restarted = StartDurable(env.get());
  EXPECT_EQ(Encoded(restarted.get(), "ships"), want);
  // Only the tail replays; the checkpoint carried the rest.
  EXPECT_EQ(restarted->Stats().wal_records_replayed, 1u);

  // A second checkpoint supersedes the first and cleans its store files.
  ASSERT_TRUE(restarted->Checkpoint().ok());
  auto names = env->ListDir(kWalDir);
  ASSERT_TRUE(names.ok());
  size_t ckpt_files = 0;
  for (const std::string& name : *names) {
    if (name.rfind("ckpt_", 0) == 0) ++ckpt_files;
  }
  EXPECT_EQ(ckpt_files, 1u);
}

TEST(RecoveryTest, CheckpointSqlStatement) {
  auto env = storage::Env::NewMemEnv();
  const traj::TrajectoryStore ships = MakeMaritime(6);
  std::string want;
  {
    auto server = StartDurable(env.get());
    Ingest(server.get(), "ships", ships, 2);
    auto session = server->Connect();
    auto ack = session->Execute("CHECKPOINT;");
    ASSERT_TRUE(ack.ok()) << ack.status().message();
    EXPECT_EQ(server->Stats().checkpoints_taken, 1u);
    want = Encoded(server.get(), "ships");
  }
  auto restarted = StartDurable(env.get());
  EXPECT_EQ(Encoded(restarted.get(), "ships"), want);
  EXPECT_EQ(restarted->Stats().wal_records_replayed, 0u);
}

TEST(RecoveryTest, QutResultsSurviveCheckpointAndRestart) {
  const std::string qut = "SELECT QUT(SHIPS, 0, 100000, 600, 2, 3, 400, 0.8);";
  auto env = storage::Env::NewMemEnv();
  const traj::TrajectoryStore ships = MakeMaritime(8);
  sql::Table want;
  {
    auto server = StartDurable(env.get());
    Ingest(server.get(), "ships", ships, 2);
    auto got = server->Connect()->Execute(qut);
    ASSERT_TRUE(got.ok()) << got.status().message();
    want = std::move(got).value();
    ASSERT_TRUE(server->Checkpoint().ok());  // persists the shared tree
  }
  auto restarted = StartDurable(env.get());
  auto got = restarted->Connect()->Execute(qut);
  ASSERT_TRUE(got.ok()) << got.status().message();
  ASSERT_EQ(got->rows.size(), want.rows.size());
  for (size_t r = 0; r < want.rows.size(); ++r) {
    ASSERT_EQ(got->rows[r].size(), want.rows[r].size());
    for (size_t c = 0; c < want.rows[r].size(); ++c) {
      EXPECT_TRUE(got->rows[r][c] == want.rows[r][c])
          << "row " << r << " col " << c;
    }
  }
}

// ---------------------------------------------------------------------------
// Fault injection: torn writes, fsync failure, failed checkpoints
// ---------------------------------------------------------------------------

TEST(RecoveryTest, TornWalTailIsDroppedNeverHalfApplied) {
  auto base = storage::Env::NewMemEnv();
  storage::FaultInjectionEnv faulty(base.get());
  const traj::TrajectoryStore ships = MakeMaritime(8);

  std::string acked;
  {
    auto server = StartDurable(&faulty);
    Ingest(server.get(), "ships", ships, 1);  // acked batch, durable
    acked = Encoded(server.get(), "ships");

    // The next batch's WAL append tears after 9 bytes — a crash
    // mid-write. The batch must NOT be applied (it was never durable,
    // so applying it would make FLUSH lie after recovery).
    faulty.set_write_budget(9);
    ASSERT_TRUE(
        server->EnqueueInsert("ships", Slice(ships, 0, 4)).ok());
    ASSERT_TRUE(server->Flush().ok());  // ticket completes: as an error
    const ServiceStats stats = server->Stats();
    EXPECT_GE(stats.wal_errors, 1u);
    EXPECT_GE(stats.ingest_errors, 1u);
    EXPECT_EQ(Encoded(server.get(), "ships"), acked);  // unchanged

    // The server is read-only now: new ingest fast-fails.
    auto rejected = server->EnqueueInsert("ships", Slice(ships, 0, 1));
    ASSERT_FALSE(rejected.ok());
    EXPECT_TRUE(rejected.status().IsIOError());
    EXPECT_NE(rejected.status().message().find("read-only"),
              std::string::npos);
    // Reads keep working on the durable prefix.
    EXPECT_TRUE(server->Connect()->Execute("SELECT STATS(SHIPS);").ok());
  }

  // Recover from the base env: the torn 9-byte tail is dropped by CRC,
  // the acked prefix is intact, and the server writes again.
  auto restarted = StartDurable(base.get());
  EXPECT_EQ(Encoded(restarted.get(), "ships"), acked);
  EXPECT_EQ(restarted->Stats().wal_torn_bytes_dropped, 9u);
  ASSERT_TRUE(
      restarted->EnqueueInsert("ships", Slice(ships, 0, 2)).ok());
  ASSERT_TRUE(restarted->Flush().ok());
  auto snap = restarted->SnapshotMod("ships");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ((*snap)->NumTrajectories(), ships.NumTrajectories() + 2);
}

TEST(RecoveryTest, FsyncFailureMakesServerReadOnly) {
  auto base = storage::Env::NewMemEnv();
  storage::FaultInjectionEnv faulty(base.get());
  const traj::TrajectoryStore ships = MakeMaritime(6);

  auto server = StartDurable(&faulty);
  Ingest(server.get(), "ships", ships, 1);
  const std::string acked = Encoded(server.get(), "ships");

  // Group commit's fsync fails: the records' durability is unknowable,
  // so the drain is rejected whole and the server goes read-only.
  faulty.set_fail_syncs(true);
  ASSERT_TRUE(server->EnqueueInsert("ships", Slice(ships, 0, 3)).ok());
  ASSERT_TRUE(server->Flush().ok());
  EXPECT_GE(server->Stats().wal_errors, 1u);
  EXPECT_EQ(Encoded(server.get(), "ships"), acked);

  // Clearing the failpoint does not resurrect it — the durable prefix
  // froze at the failure; only a restart re-establishes it. DDL is
  // rejected too.
  faulty.set_fail_syncs(false);
  EXPECT_FALSE(server->EnqueueInsert("ships", Slice(ships, 0, 1)).ok());
  EXPECT_FALSE(server->CreateMod("another").ok());
  EXPECT_FALSE(server->Checkpoint().ok());
  server.reset();

  // A failed fsync leaves durability UNKNOWABLE: the appended records
  // may or may not be on disk (MemEnv persists them, so here they are).
  // The recovery contract is one-sided — every acked trajectory must
  // come back; never-acked ones may. The acked prefix must be
  // bit-identical; the resurrected batch, if present, must be whole.
  auto restarted = StartDurable(base.get());
  auto snap = restarted->SnapshotMod("ships");
  ASSERT_TRUE(snap.ok());
  const size_t n = ships.NumTrajectories();
  ASSERT_TRUE((*snap)->NumTrajectories() == n ||
              (*snap)->NumTrajectories() == n + 3)
      << (*snap)->NumTrajectories();
  for (size_t i = 0; i < n; ++i) {
    std::string got, want;
    traj::EncodeTrajectory(
        (*snap)->Get(static_cast<traj::TrajectoryId>(i)), &got);
    traj::EncodeTrajectory(ships.Get(static_cast<traj::TrajectoryId>(i)),
                           &want);
    EXPECT_EQ(got, want) << "trajectory " << i;
  }
}

TEST(RecoveryTest, FailedCheckpointLeavesOldManifestInForce) {
  auto base = storage::Env::NewMemEnv();
  storage::FaultInjectionEnv faulty(base.get());
  const traj::TrajectoryStore ships = MakeMaritime(8);

  std::string want;
  {
    auto server = StartDurable(&faulty);
    Ingest(server.get(), "ships", ships, 2);
    ASSERT_TRUE(server->Checkpoint().ok());
    ASSERT_TRUE(
        server->EnqueueInsert("ships", Slice(ships, 0, 3)).ok());
    ASSERT_TRUE(server->Flush().ok());
    want = Encoded(server.get(), "ships");

    // Disk full: the second checkpoint cannot write its store blobs.
    // It must fail without retracting the first checkpoint.
    faulty.set_write_budget(0);
    EXPECT_FALSE(server->Checkpoint().ok());
  }

  // Everything acked before the failed checkpoint recovers from the
  // old manifest + the WAL tail it still covers.
  auto restarted = StartDurable(base.get());
  EXPECT_EQ(Encoded(restarted.get(), "ships"), want);
}

}  // namespace
}  // namespace hermes::service
