// WAL unit tests: record framing, LSN continuity across segments, and —
// the point of having a WAL at all — the torn-tail and fsync-failure
// behavior under the fault-injecting Env. Every failure mode here maps
// to a crash the server-level recovery tests (recovery_test.cc) must
// survive; this file pins the layer below them.

#include "wal/wal.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "storage/env.h"
#include "storage/fault_env.h"

namespace hermes::wal {
namespace {

constexpr char kDir[] = "wal";
/// len(u32) + crc(u32) + lsn(u64) + type(u8) around each payload.
constexpr uint64_t kFramingBytes = 17;

std::unique_ptr<Writer> OpenWriter(storage::Env* env, uint64_t segment_id,
                                   uint64_t next_lsn) {
  auto writer = Writer::Open(env, kDir, segment_id, next_lsn);
  EXPECT_TRUE(writer.ok()) << writer.status().message();
  return std::move(writer).value();
}

TEST(WalTest, SegmentFileNamesRoundTrip) {
  EXPECT_EQ(SegmentFileName(0), "wal_000000.log");
  EXPECT_EQ(SegmentFileName(7), "wal_000007.log");
  EXPECT_EQ(SegmentFileName(1234567), "wal_1234567.log");

  uint64_t id = 99;
  EXPECT_TRUE(ParseSegmentFileName("wal_000007.log", &id));
  EXPECT_EQ(id, 7u);
  EXPECT_TRUE(ParseSegmentFileName("wal_1234567.log", &id));
  EXPECT_EQ(id, 1234567u);
  EXPECT_FALSE(ParseSegmentFileName("wal_.log", &id));
  EXPECT_FALSE(ParseSegmentFileName("wal_00x000.log", &id));
  EXPECT_FALSE(ParseSegmentFileName("MANIFEST", &id));
  EXPECT_FALSE(ParseSegmentFileName("ckpt_000001_ships.store", &id));
}

TEST(WalTest, AppendSyncReadRoundTrip) {
  auto env = storage::Env::NewMemEnv();
  ASSERT_TRUE(env->CreateDirs(kDir).ok());
  auto writer = OpenWriter(env.get(), 0, 0);

  const std::vector<std::pair<RecordType, std::string>> want = {
      {RecordType::kCreateMod, "ships"},
      {RecordType::kInsertBatch, std::string("batch\0with\0nuls", 15)},
      {RecordType::kDropMod, ""},  // empty payload is legal
      {RecordType::kSwapStore, std::string(10000, 'x')},
  };
  uint64_t expect_bytes = 0;
  for (size_t i = 0; i < want.size(); ++i) {
    auto lsn = writer->Append(want[i].first, want[i].second);
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, i);  // LSNs assigned densely from the seed
    expect_bytes += kFramingBytes + want[i].second.size();
  }
  EXPECT_EQ(writer->next_lsn(), want.size());
  EXPECT_EQ(writer->bytes_appended(), expect_bytes);
  ASSERT_TRUE(writer->Sync().ok());

  auto scan = ReadSegment(env.get(), kDir, 0);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->tail_bytes_dropped, 0u);
  EXPECT_EQ(scan->valid_bytes, expect_bytes);
  ASSERT_EQ(scan->records.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(scan->records[i].lsn, i);
    EXPECT_EQ(scan->records[i].type, want[i].first);
    EXPECT_EQ(scan->records[i].payload, want[i].second);
  }
}

TEST(WalTest, LsnsContinueAcrossSegments) {
  auto env = storage::Env::NewMemEnv();
  ASSERT_TRUE(env->CreateDirs(kDir).ok());

  auto w0 = OpenWriter(env.get(), 0, 0);
  ASSERT_TRUE(w0->Append(RecordType::kCreateMod, "a").ok());
  ASSERT_TRUE(w0->Append(RecordType::kCreateMod, "b").ok());
  const uint64_t carried = w0->next_lsn();
  ASSERT_TRUE(w0->Sync().ok());
  w0.reset();

  // Rotation carries the LSN counter (exactly what Checkpoint does).
  auto w1 = OpenWriter(env.get(), 1, carried);
  auto lsn = w1->Append(RecordType::kCreateMod, "c");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);
  ASSERT_TRUE(w1->Sync().ok());

  auto segments = ListSegments(env.get(), kDir);
  ASSERT_TRUE(segments.ok());
  EXPECT_EQ(*segments, (std::vector<uint64_t>{0, 1}));

  uint64_t next = 0;
  for (uint64_t seg : *segments) {
    auto scan = ReadSegment(env.get(), kDir, seg);
    ASSERT_TRUE(scan.ok());
    for (const Record& rec : scan->records) {
      EXPECT_EQ(rec.lsn, next);  // dense and gapless across the rotation
      ++next;
    }
  }
  EXPECT_EQ(next, 3u);
}

TEST(WalTest, ReopeningASegmentDropsItsOldBytes) {
  auto env = storage::Env::NewMemEnv();
  ASSERT_TRUE(env->CreateDirs(kDir).ok());
  {
    auto w = OpenWriter(env.get(), 5, 0);
    ASSERT_TRUE(w->Append(RecordType::kCreateMod, "stale").ok());
    ASSERT_TRUE(w->Sync().ok());
  }
  // Recovery always rotates to a fresh id; if an id is nevertheless
  // reused (a removed-future leftover), Open must not append after the
  // stale bytes — the scanner would replay them.
  auto w = OpenWriter(env.get(), 5, 100);
  EXPECT_EQ(w->bytes_appended(), 0u);
  ASSERT_TRUE(w->Append(RecordType::kCreateMod, "fresh").ok());
  ASSERT_TRUE(w->Sync().ok());

  auto scan = ReadSegment(env.get(), kDir, 5);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].lsn, 100u);
  EXPECT_EQ(scan->records[0].payload, "fresh");
}

TEST(WalTest, MissingSegmentIsNotFound) {
  auto env = storage::Env::NewMemEnv();
  ASSERT_TRUE(env->CreateDirs(kDir).ok());
  auto scan = ReadSegment(env.get(), kDir, 42);
  ASSERT_FALSE(scan.ok());
  EXPECT_TRUE(scan.status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

TEST(WalTest, TornWriteDropsOnlyTheTail) {
  auto base = storage::Env::NewMemEnv();
  ASSERT_TRUE(base->CreateDirs(kDir).ok());
  storage::FaultInjectionEnv faulty(base.get());

  auto writer = OpenWriter(&faulty, 0, 0);
  ASSERT_TRUE(writer->Append(RecordType::kCreateMod, "ships").ok());
  ASSERT_TRUE(writer->Append(RecordType::kInsertBatch, "payload-one").ok());
  ASSERT_TRUE(writer->Sync().ok());

  // The next record tears: only 5 of its bytes reach the "disk".
  faulty.set_write_budget(5);
  auto torn = writer->Append(RecordType::kInsertBatch, "payload-two");
  ASSERT_FALSE(torn.ok());
  EXPECT_TRUE(torn.status().IsIOError());
  EXPECT_EQ(faulty.writes_failed(), 1u);

  // Crash: abandon the writer, reread through the *base* env — the torn
  // prefix is exactly what a real crash mid-write leaves behind.
  writer.reset();
  auto scan = ReadSegment(base.get(), kDir, 0);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0].payload, "ships");
  EXPECT_EQ(scan->records[1].payload, "payload-one");
  EXPECT_EQ(scan->tail_bytes_dropped, 5u);
}

TEST(WalTest, AppendFailureIsSticky) {
  auto base = storage::Env::NewMemEnv();
  ASSERT_TRUE(base->CreateDirs(kDir).ok());
  storage::FaultInjectionEnv faulty(base.get());

  auto writer = OpenWriter(&faulty, 0, 0);
  ASSERT_TRUE(writer->Append(RecordType::kCreateMod, "a").ok());
  faulty.set_write_budget(0);  // ENOSPC from here on
  ASSERT_FALSE(writer->Append(RecordType::kCreateMod, "b").ok());

  // Clearing the failpoint must NOT resurrect the writer: a hole may be
  // on disk, and a valid record after it would be unreachable to the
  // scanner while looking durable to the caller.
  faulty.set_write_budget(-1);
  auto after = writer->Append(RecordType::kCreateMod, "c");
  ASSERT_FALSE(after.ok());
  EXPECT_TRUE(after.status().IsIOError());
  EXPECT_FALSE(writer->Sync().ok());
  EXPECT_EQ(writer->next_lsn(), 1u);  // failed appends consume no LSNs
}

TEST(WalTest, FsyncFailureSurfacesButDoesNotPoisonAppends) {
  auto base = storage::Env::NewMemEnv();
  ASSERT_TRUE(base->CreateDirs(kDir).ok());
  storage::FaultInjectionEnv faulty(base.get());

  auto writer = OpenWriter(&faulty, 0, 0);
  ASSERT_TRUE(writer->Append(RecordType::kCreateMod, "a").ok());
  faulty.set_fail_syncs(true);
  auto sync = writer->Sync();
  ASSERT_FALSE(sync.ok());
  EXPECT_TRUE(sync.IsIOError());
  // The *writer* stays usable — deciding whether a failed group commit
  // is fatal belongs to the caller (the service layer goes read-only).
  faulty.set_fail_syncs(false);
  ASSERT_TRUE(writer->Append(RecordType::kCreateMod, "b").ok());
  ASSERT_TRUE(writer->Sync().ok());

  auto scan = ReadSegment(base.get(), kDir, 0);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 2u);
}

TEST(WalTest, CorruptedMiddleRecordTruncatesTheScan) {
  auto env = storage::Env::NewMemEnv();
  ASSERT_TRUE(env->CreateDirs(kDir).ok());
  uint64_t first_len = 0;
  {
    auto writer = OpenWriter(env.get(), 0, 0);
    ASSERT_TRUE(writer->Append(RecordType::kCreateMod, "keep").ok());
    first_len = writer->bytes_appended();
    ASSERT_TRUE(writer->Append(RecordType::kInsertBatch, "flip-me").ok());
    ASSERT_TRUE(writer->Append(RecordType::kInsertBatch, "after").ok());
    ASSERT_TRUE(writer->Sync().ok());
  }
  // Flip one payload byte of the middle record.
  auto file = env->NewRWFile(std::string(kDir) + "/" + SegmentFileName(0));
  ASSERT_TRUE(file.ok());
  char byte = 0;
  const uint64_t victim = first_len + kFramingBytes;  // first payload byte
  ASSERT_TRUE((*file)->ReadAt(victim, 1, &byte).ok());
  byte ^= 0x40;
  ASSERT_TRUE((*file)->WriteAt(victim, 1, &byte).ok());

  // CRC catches it; the record and everything after are dropped. (In
  // recovery this is indistinguishable from a torn tail — by design:
  // only a never-acked suffix can be affected.)
  auto scan = ReadSegment(env.get(), kDir, 0);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].payload, "keep");
  EXPECT_GT(scan->tail_bytes_dropped, 0u);
}

TEST(WalTest, GarbageTailIsDropped) {
  auto env = storage::Env::NewMemEnv();
  ASSERT_TRUE(env->CreateDirs(kDir).ok());
  uint64_t valid = 0;
  {
    auto writer = OpenWriter(env.get(), 0, 0);
    ASSERT_TRUE(writer->Append(RecordType::kCreateMod, "ok").ok());
    valid = writer->bytes_appended();
    ASSERT_TRUE(writer->Sync().ok());
  }
  auto file = env->NewRWFile(std::string(kDir) + "/" + SegmentFileName(0));
  ASSERT_TRUE(file.ok());
  // A wildly oversize length prefix pointing past EOF (torn len write).
  const std::string garbage = "\xff\xff\xff\x7fjunk";
  ASSERT_TRUE(
      (*file)->WriteAt(valid, garbage.size(), garbage.data()).ok());

  auto scan = ReadSegment(env.get(), kDir, 0);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->valid_bytes, valid);
  EXPECT_EQ(scan->tail_bytes_dropped, garbage.size());
}

}  // namespace
}  // namespace hermes::wal
