#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "rtree/rtree3d.h"
#include "rtree/str_bulk_load.h"
#include "storage/env.h"
#include "traj/trajectory_store.h"

namespace hermes::rtree {
namespace {

geom::Mbb3D RandomBox(Rng* rng, double extent, double size) {
  const double x = rng->Uniform(0, extent);
  const double y = rng->Uniform(0, extent);
  const double t = rng->Uniform(0, extent);
  return geom::Mbb3D(x, y, t, x + rng->Uniform(0.1, size),
                     y + rng->Uniform(0.1, size),
                     t + rng->Uniform(0.1, size));
}

class RTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = storage::Env::NewMemEnv();
    auto tree = RTree3D::Open(env_.get(), "rt.idx");
    ASSERT_TRUE(tree.ok());
    tree_ = std::move(tree).value();
  }
  std::unique_ptr<storage::Env> env_;
  std::unique_ptr<RTree3D> tree_;
};

TEST_F(RTreeTest, InsertSearchRemoveCycle) {
  const geom::Mbb3D box(0, 0, 0, 1, 1, 1);
  ASSERT_TRUE(tree_->Insert(box, 7).ok());
  auto hits = tree_->Search(box);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0], 7u);
  ASSERT_TRUE(tree_->Remove(box, 7).ok());
  hits = tree_->Search(box);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST_F(RTreeTest, SearchModesAgainstBruteForce) {
  Rng rng(42);
  std::vector<geom::Mbb3D> boxes;
  for (uint64_t i = 0; i < 600; ++i) {
    boxes.push_back(RandomBox(&rng, 500.0, 40.0));
    ASSERT_TRUE(tree_->Insert(boxes.back(), i).ok());
  }
  const geom::Mbb3D query(100, 100, 100, 320, 320, 320);

  auto sorted = [](std::vector<uint64_t> v) {
    std::sort(v.begin(), v.end());
    return v;
  };

  std::vector<uint64_t> want_intersect, want_contained, want_contains;
  for (uint64_t i = 0; i < boxes.size(); ++i) {
    if (boxes[i].Intersects(query)) want_intersect.push_back(i);
    if (query.Contains(boxes[i])) want_contained.push_back(i);
    if (boxes[i].Contains(query)) want_contains.push_back(i);
  }
  auto got = tree_->Search(query, QueryMode::kIntersects);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(sorted(*got), want_intersect);
  got = tree_->Search(query, QueryMode::kContainedBy);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(sorted(*got), want_contained);
  got = tree_->Search(query, QueryMode::kContains);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(sorted(*got), want_contains);
}

TEST_F(RTreeTest, SearchHitsReturnStoredBoxes) {
  const geom::Mbb3D box(3, 4, 5, 6, 7, 8);
  ASSERT_TRUE(tree_->Insert(box, 11).ok());
  auto hits = tree_->SearchHits(box);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].box, box);
  EXPECT_EQ((*hits)[0].datum, 11u);
}

TEST_F(RTreeTest, KnnFindsNearestByMindist) {
  Rng rng(8);
  std::vector<geom::Mbb3D> boxes;
  for (uint64_t i = 0; i < 400; ++i) {
    boxes.push_back(RandomBox(&rng, 1000.0, 5.0));
    ASSERT_TRUE(tree_->Insert(boxes.back(), i).ok());
  }
  const geom::Point3D q{500, 500, 500};
  auto knn = tree_->Knn(q, 10);
  ASSERT_TRUE(knn.ok());
  ASSERT_EQ(knn->size(), 10u);

  // Brute-force k nearest by MINDIST.
  auto mindist = [&](const geom::Mbb3D& b) {
    auto axis = [](double v, double lo, double hi) {
      if (v < lo) return lo - v;
      if (v > hi) return v - hi;
      return 0.0;
    };
    const double dx = axis(q.x, b.min_x, b.max_x);
    const double dy = axis(q.y, b.min_y, b.max_y);
    const double dt = axis(q.t, b.min_t, b.max_t);
    return dx * dx + dy * dy + dt * dt;
  };
  std::vector<double> dists;
  for (const auto& b : boxes) dists.push_back(mindist(b));
  std::vector<double> sorted_dists = dists;
  std::sort(sorted_dists.begin(), sorted_dists.end());
  // Result distances must match the k smallest, in order.
  for (size_t k = 0; k < knn->size(); ++k) {
    EXPECT_NEAR(mindist((*knn)[k].box), sorted_dists[k], 1e-9);
  }
}

TEST_F(RTreeTest, KnnZeroAndOversizedK) {
  ASSERT_TRUE(tree_->Insert(geom::Mbb3D(0, 0, 0, 1, 1, 1), 1).ok());
  auto zero = tree_->Knn({0, 0, 0}, 0);
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->empty());
  auto more = tree_->Knn({0, 0, 0}, 10);
  ASSERT_TRUE(more.ok());
  EXPECT_EQ(more->size(), 1u);  // Only one entry exists.
}

TEST_F(RTreeTest, BulkLoadLargeAndValidate) {
  Rng rng(77);
  std::vector<std::pair<geom::Mbb3D, uint64_t>> items;
  for (uint64_t i = 0; i < 5000; ++i) {
    items.emplace_back(RandomBox(&rng, 2000.0, 10.0), i);
  }
  auto ordered = StrOrder(items, 128);
  ASSERT_TRUE(tree_->BulkLoad(ordered).ok());
  EXPECT_EQ(tree_->num_entries(), 5000u);
  ASSERT_TRUE(tree_->Validate().ok());

  const geom::Mbb3D query(0, 0, 0, 300, 300, 300);
  std::vector<uint64_t> expected;
  for (const auto& [box, datum] : items) {
    if (box.Intersects(query)) expected.push_back(datum);
  }
  std::sort(expected.begin(), expected.end());
  auto got = tree_->Search(query);
  ASSERT_TRUE(got.ok());
  std::sort(got->begin(), got->end());
  EXPECT_EQ(*got, expected);
}

TEST_F(RTreeTest, StrOrderImprovesLocality) {
  // STR-ordered bulk load should visit fewer nodes for a point query than
  // a randomly-ordered one.
  Rng rng(123);
  std::vector<std::pair<geom::Mbb3D, uint64_t>> items;
  for (uint64_t i = 0; i < 4000; ++i) {
    items.emplace_back(RandomBox(&rng, 1000.0, 4.0), i);
  }
  auto str_tree = RTree3D::Open(env_.get(), "str.idx");
  ASSERT_TRUE(str_tree.ok());
  ASSERT_TRUE((*str_tree)->BulkLoad(StrOrder(items, 128)).ok());
  auto random_tree = RTree3D::Open(env_.get(), "rand.idx");
  ASSERT_TRUE(random_tree.ok());
  ASSERT_TRUE((*random_tree)->BulkLoad(items).ok());  // Insertion order.

  const geom::Mbb3D probe(500, 500, 500, 520, 520, 520);
  (*str_tree)->ResetStats();
  (*random_tree)->ResetStats();
  ASSERT_TRUE((*str_tree)->Search(probe).ok());
  ASSERT_TRUE((*random_tree)->Search(probe).ok());
  EXPECT_LE((*str_tree)->stats().nodes_visited,
            (*random_tree)->stats().nodes_visited);
}

TEST_F(RTreeTest, SegmentRefPackUnpack) {
  traj::SegmentRef ref{123456, 789};
  const traj::SegmentRef back = UnpackSegmentRef(PackSegmentRef(ref));
  EXPECT_EQ(back.trajectory, ref.trajectory);
  EXPECT_EQ(back.segment_index, ref.segment_index);
}

TEST_F(RTreeTest, BuildSegmentIndexCoversStore) {
  traj::TrajectoryStore store;
  for (int k = 0; k < 10; ++k) {
    traj::Trajectory t(k);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(t.Append({i * 10.0, k * 100.0, i * 1.0}).ok());
    }
    ASSERT_TRUE(store.Add(std::move(t)).ok());
  }
  auto index = BuildSegmentIndex(env_.get(), "segs.idx", store);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->num_entries(), store.NumSegments());
  ASSERT_TRUE((*index)->Validate().ok());

  // Query a time slab: every trajectory has segments in [5, 8].
  const double kBig = 1e18;
  auto hits = (*index)->Search(geom::Mbb3D(-kBig, -kBig, 5.0, kBig, kBig, 8.0));
  ASSERT_TRUE(hits.ok());
  std::set<traj::TrajectoryId> tids;
  for (uint64_t d : *hits) tids.insert(UnpackSegmentRef(d).trajectory);
  EXPECT_EQ(tids.size(), 10u);
}

TEST_F(RTreeTest, InsertAndBulkBuildSameAnswers) {
  traj::TrajectoryStore store;
  for (int k = 0; k < 6; ++k) {
    traj::Trajectory t(k);
    for (int i = 0; i < 15; ++i) {
      ASSERT_TRUE(t.Append({i * 7.0 + k, k * 50.0, i * 2.0}).ok());
    }
    ASSERT_TRUE(store.Add(std::move(t)).ok());
  }
  auto bulk = BuildSegmentIndex(env_.get(), "bulk.idx", store);
  auto incr = BuildSegmentIndexByInsert(env_.get(), "incr.idx", store);
  ASSERT_TRUE(bulk.ok());
  ASSERT_TRUE(incr.ok());
  const geom::Mbb3D query(0, 0, 3.0, 100, 300, 9.0);
  auto a = (*bulk)->Search(query);
  auto b = (*incr)->Search(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::sort(a->begin(), a->end());
  std::sort(b->begin(), b->end());
  EXPECT_EQ(*a, *b);
}

// Parameterized: brute-force equivalence across dataset sizes.
class RTreeSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(RTreeSizeSweep, MatchesBruteForce) {
  auto env = storage::Env::NewMemEnv();
  auto tree = RTree3D::Open(env.get(), "sweep.idx");
  ASSERT_TRUE(tree.ok());
  Rng rng(GetParam());
  std::vector<geom::Mbb3D> boxes;
  for (int i = 0; i < GetParam(); ++i) {
    boxes.push_back(RandomBox(&rng, 300.0, 25.0));
    ASSERT_TRUE((*tree)->Insert(boxes.back(), i).ok());
  }
  ASSERT_TRUE((*tree)->Validate().ok());
  const geom::Mbb3D query(50, 50, 50, 180, 180, 180);
  std::vector<uint64_t> expected;
  for (size_t i = 0; i < boxes.size(); ++i) {
    if (boxes[i].Intersects(query)) expected.push_back(i);
  }
  auto got = (*tree)->Search(query);
  ASSERT_TRUE(got.ok());
  std::sort(got->begin(), got->end());
  EXPECT_EQ(*got, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeSizeSweep,
                         ::testing::Values(1, 10, 100, 145, 146, 147, 500,
                                           1500));

}  // namespace
}  // namespace hermes::rtree
