#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/coding.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"

namespace hermes {
namespace {

// ---------------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad sigma");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad sigma");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad sigma");
}

TEST(StatusTest, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_EQ(Status::Unavailable("x").ToString(), "Unavailable: x");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    HERMES_RETURN_NOT_OK(Status::IOError("disk gone"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsIOError());
}

TEST(StatusTest, ReturnNotOkMacroPassesThroughOk) {
  auto succeeds = []() -> Status {
    HERMES_RETURN_NOT_OK(Status::OK());
    return Status::InvalidArgument("reached");
  };
  EXPECT_TRUE(succeeds().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// StatusOr
// ---------------------------------------------------------------------------

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.ValueOr(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.ValueOr(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto provider = [](bool ok) -> StatusOr<int> {
    if (ok) return 10;
    return Status::OutOfRange("no");
  };
  auto consumer = [&](bool ok) -> StatusOr<int> {
    HERMES_ASSIGN_OR_RETURN(int x, provider(ok));
    return x * 2;
  };
  EXPECT_EQ(*consumer(true), 20);
  EXPECT_TRUE(consumer(false).status().IsOutOfRange());
}

// ---------------------------------------------------------------------------
// Math utilities
// ---------------------------------------------------------------------------

TEST(MathTest, ClampBounds) {
  EXPECT_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathTest, AlmostEqualTolerances) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0));
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(AlmostEqual(1.0, 1.001));
  EXPECT_TRUE(AlmostEqual(1e12, 1e12 * (1 + 1e-10)));
}

TEST(MathTest, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0, 3.0}), 1.0);  // Population variance.
}

TEST(MathTest, PrefixSumsAndRangeSse) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const auto ps = PrefixSum(xs);
  const auto pq = PrefixSqSum(xs);
  EXPECT_DOUBLE_EQ(ps[4], 10.0);
  EXPECT_DOUBLE_EQ(pq[4], 30.0);
  // SSE of {2,3} around mean 2.5 = 0.5.
  EXPECT_NEAR(RangeSse(ps, pq, 1, 2), 0.5, 1e-12);
  // SSE of a single element is 0.
  EXPECT_NEAR(RangeSse(ps, pq, 3, 3), 0.0, 1e-12);
}

TEST(MathTest, RangeSseNonNegativeOnConstantSignal) {
  const std::vector<double> xs(64, 3.14159);
  const auto ps = PrefixSum(xs);
  const auto pq = PrefixSqSum(xs);
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t j = i; j < xs.size(); ++j) {
      EXPECT_GE(RangeSse(ps, pq, i, j), 0.0);
      EXPECT_NEAR(RangeSse(ps, pq, i, j), 0.0, 1e-6);
    }
  }
}

TEST(MathTest, SimpsonIntegratesPolynomialsExactly) {
  // Simpson is exact for cubics.
  auto cubic = [](double x) { return x * x * x - 2 * x + 1; };
  const double result = SimpsonIntegrate(cubic, 0.0, 2.0, 4);
  // Integral = x^4/4 - x^2 + x in [0,2] = 4 - 4 + 2 = 2.
  EXPECT_NEAR(result, 2.0, 1e-12);
}

TEST(MathTest, SimpsonHandlesOddPanelRequest) {
  auto f = [](double x) { return x; };
  EXPECT_NEAR(SimpsonIntegrate(f, 0.0, 1.0, 3), 0.5, 1e-12);
}

TEST(MathTest, GaussianKernelShape) {
  EXPECT_DOUBLE_EQ(GaussianKernel(0.0, 10.0), 1.0);
  EXPECT_NEAR(GaussianKernel(10.0, 10.0), std::exp(-0.5), 1e-12);
  EXPECT_GT(GaussianKernel(5.0, 10.0), GaussianKernel(15.0, 10.0));
  EXPECT_DOUBLE_EQ(GaussianKernel(1.0, 0.0), 0.0);   // Degenerate sigma.
  EXPECT_DOUBLE_EQ(GaussianKernel(0.0, 0.0), 1.0);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(31);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(77);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

// ---------------------------------------------------------------------------
// Coding
// ---------------------------------------------------------------------------

TEST(CodingTest, FixedWidthRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  PutDouble(&buf, -2.5);
  EXPECT_EQ(buf.size(), 2u + 4u + 8u + 8u);

  Decoder dec(buf);
  EXPECT_EQ(dec.ReadFixed16(), 0xBEEF);
  EXPECT_EQ(dec.ReadFixed32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.ReadFixed64(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(dec.ReadDouble(), -2.5);
  EXPECT_EQ(dec.remaining(), 0u);
}

TEST(CodingTest, DecoderTracksRemaining) {
  std::string buf;
  PutFixed32(&buf, 7);
  PutFixed32(&buf, 8);
  Decoder dec(buf);
  EXPECT_EQ(dec.remaining(), 8u);
  dec.ReadFixed32();
  EXPECT_EQ(dec.remaining(), 4u);
}

TEST(CodingTest, DoubleSpecialValues) {
  std::string buf;
  PutDouble(&buf, 0.0);
  PutDouble(&buf, -0.0);
  PutDouble(&buf, 1e308);
  Decoder dec(buf);
  EXPECT_EQ(dec.ReadDouble(), 0.0);
  EXPECT_EQ(dec.ReadDouble(), -0.0);
  EXPECT_EQ(dec.ReadDouble(), 1e308);
}

// Parameterized sweep: PutFixed64/GetFixed64 round-trips assorted patterns.
class CodingRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodingRoundTrip, Fixed64) {
  std::string buf;
  PutFixed64(&buf, GetParam());
  EXPECT_EQ(GetFixed64(buf.data()), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Patterns, CodingRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 0xFFULL, 0xFFFFFFFFULL,
                                           0xFFFFFFFFFFFFFFFFULL,
                                           0x8000000000000000ULL,
                                           0x0102030405060708ULL));

}  // namespace
}  // namespace hermes
