#include <gtest/gtest.h>

#include <cmath>

#include "geom/mbb.h"
#include "geom/moving_point.h"
#include "geom/point.h"
#include "geom/segment.h"

namespace hermes::geom {
namespace {

// ---------------------------------------------------------------------------
// Points
// ---------------------------------------------------------------------------

TEST(PointTest, ArithmeticOps) {
  Point2D a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ((a + b), (Point2D{4.0, 1.0}));
  EXPECT_EQ((a - b), (Point2D{-2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Point2D{2.0, 4.0}));
}

TEST(PointTest, DistanceAndNorm) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(Norm({3, 4}), 5.0);
}

TEST(PointTest, DotAndCross) {
  EXPECT_DOUBLE_EQ(Dot({1, 0}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(Dot({2, 3}, {4, 5}), 23.0);
  EXPECT_DOUBLE_EQ(Cross({1, 0}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Cross({0, 1}, {1, 0}), -1.0);
}

TEST(PointTest, SpatialDistanceIgnoresTime) {
  Point3D a{0, 0, 0}, b{3, 4, 999};
  EXPECT_DOUBLE_EQ(SpatialDistance(a, b), 5.0);
}

TEST(PointTest, InterpolateAtMidpoint) {
  Point3D a{0, 0, 0}, b{10, 20, 10};
  const Point2D mid = InterpolateAt(a, b, 5.0);
  EXPECT_DOUBLE_EQ(mid.x, 5.0);
  EXPECT_DOUBLE_EQ(mid.y, 10.0);
}

TEST(PointTest, InterpolateClampsOutsideLifespan) {
  Point3D a{0, 0, 0}, b{10, 0, 10};
  EXPECT_DOUBLE_EQ(InterpolateAt(a, b, -5.0).x, 0.0);
  EXPECT_DOUBLE_EQ(InterpolateAt(a, b, 15.0).x, 10.0);
}

TEST(PointTest, InterpolateDegenerateDuration) {
  Point3D a{1, 2, 5}, b{9, 9, 5};
  EXPECT_DOUBLE_EQ(InterpolateAt(a, b, 5.0).x, 1.0);
}

// ---------------------------------------------------------------------------
// Mbb3D
// ---------------------------------------------------------------------------

TEST(MbbTest, EmptyBoxBehaviour) {
  Mbb3D box;
  EXPECT_TRUE(box.empty());
  EXPECT_DOUBLE_EQ(box.Volume(), 0.0);
  EXPECT_FALSE(box.Intersects(box));
  Mbb3D other(0, 0, 0, 1, 1, 1);
  box.Extend(other);
  EXPECT_EQ(box, other);  // Empty is the identity for Extend.
}

TEST(MbbTest, FromPointAndSegment) {
  const Mbb3D p = Mbb3D::FromPoint({1, 2, 3});
  EXPECT_TRUE(p.ContainsPoint({1, 2, 3}));
  EXPECT_DOUBLE_EQ(p.Volume(), 0.0);
  const Mbb3D s = Mbb3D::FromSegment({0, 5, 0}, {10, 1, 7});
  EXPECT_DOUBLE_EQ(s.min_y, 1.0);
  EXPECT_DOUBLE_EQ(s.max_y, 5.0);
  EXPECT_DOUBLE_EQ(s.max_t, 7.0);
}

TEST(MbbTest, IntersectsSymmetricAndTouching) {
  Mbb3D a(0, 0, 0, 1, 1, 1);
  Mbb3D b(1, 1, 1, 2, 2, 2);  // Touches at the corner.
  Mbb3D c(1.5, 0, 0, 3, 1, 1);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
}

TEST(MbbTest, ContainsIsPartialOrder) {
  Mbb3D outer(0, 0, 0, 10, 10, 10);
  Mbb3D inner(2, 2, 2, 5, 5, 5);
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
  EXPECT_TRUE(outer.Contains(outer));
}

TEST(MbbTest, VolumeAndMargin) {
  Mbb3D box(0, 0, 0, 2, 3, 4);
  EXPECT_DOUBLE_EQ(box.Volume(), 24.0);
  EXPECT_DOUBLE_EQ(box.Margin(), 9.0);
}

TEST(MbbTest, IntersectionAndUnionVolume) {
  Mbb3D a(0, 0, 0, 2, 2, 2);
  Mbb3D b(1, 1, 1, 3, 3, 3);
  EXPECT_DOUBLE_EQ(a.IntersectionVolume(b), 1.0);
  EXPECT_DOUBLE_EQ(a.UnionVolume(b), 27.0);
  Mbb3D c(5, 5, 5, 6, 6, 6);
  EXPECT_DOUBLE_EQ(a.IntersectionVolume(c), 0.0);
}

TEST(MbbTest, ExpandedGrowsSpatialAndTemporal) {
  Mbb3D box(0, 0, 0, 1, 1, 1);
  Mbb3D e = box.Expanded(2.0, 3.0);
  EXPECT_DOUBLE_EQ(e.min_x, -2.0);
  EXPECT_DOUBLE_EQ(e.max_y, 3.0);
  EXPECT_DOUBLE_EQ(e.min_t, -3.0);
  EXPECT_DOUBLE_EQ(e.max_t, 4.0);
}

TEST(MbbTest, CenterOfBox) {
  Mbb3D box(0, 2, 4, 2, 6, 8);
  const Point3D c = box.Center();
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 4.0);
  EXPECT_DOUBLE_EQ(c.t, 6.0);
}

TEST(MbbTest, UnionCoversBothInputs) {
  Mbb3D a(0, 0, 0, 1, 1, 1);
  Mbb3D b(5, -2, 3, 6, 0, 4);
  const Mbb3D u = Union(a, b);
  EXPECT_TRUE(u.Contains(a));
  EXPECT_TRUE(u.Contains(b));
}

// ---------------------------------------------------------------------------
// 2D segment geometry
// ---------------------------------------------------------------------------

TEST(SegmentTest, PointSegmentDistanceInterior) {
  Segment2D s({0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(PointSegmentDistance({5, 3}, s), 3.0);
}

TEST(SegmentTest, PointSegmentDistanceBeyondEnds) {
  Segment2D s({0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(PointSegmentDistance({-3, 4}, s), 5.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistance({13, 4}, s), 5.0);
}

TEST(SegmentTest, ProjectionParameterClamped) {
  Segment2D s({0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(ProjectOntoSegment({5, 7}, s), 0.5);
  EXPECT_DOUBLE_EQ(ProjectOntoSegment({-5, 0}, s), 0.0);
  EXPECT_DOUBLE_EQ(ProjectOntoSegment({50, 0}, s), 1.0);
}

// ---------------------------------------------------------------------------
// TRACLUS distance components
// ---------------------------------------------------------------------------

TEST(TraclusDistanceTest, ParallelSegmentsPerpOnly) {
  Segment2D longer({0, 0}, {10, 0});
  Segment2D shorter({2, 3}, {8, 3});
  const TraclusComponents c = TraclusComponentsOf(longer, shorter);
  EXPECT_NEAR(c.perpendicular, 3.0, 1e-9);
  EXPECT_NEAR(c.parallel, 0.0, 1e-9);  // Projections inside the longer.
  EXPECT_NEAR(c.angular, 0.0, 1e-9);
}

TEST(TraclusDistanceTest, PerpendicularIsLehmerMean) {
  Segment2D longer({0, 0}, {10, 0});
  Segment2D shorter({2, 2}, {8, 4});
  const TraclusComponents c = TraclusComponentsOf(longer, shorter);
  // (l1^2 + l2^2) / (l1 + l2) with l1=2, l2=4.
  EXPECT_NEAR(c.perpendicular, 20.0 / 6.0, 1e-9);
}

TEST(TraclusDistanceTest, ParallelDistanceBeyondEnd) {
  Segment2D longer({0, 0}, {10, 0});
  Segment2D shorter({12, 1}, {15, 1});
  const TraclusComponents c = TraclusComponentsOf(longer, shorter);
  EXPECT_NEAR(c.parallel, 2.0, 1e-9);  // Nearest projection 12 -> end 10.
}

TEST(TraclusDistanceTest, AngularUsesSinTheta) {
  Segment2D longer({0, 0}, {10, 0});
  Segment2D shorter({0, 0}, {3, 3});  // 45 degrees, length 3*sqrt(2).
  const TraclusComponents c = TraclusComponentsOf(longer, shorter);
  EXPECT_NEAR(c.angular, 3.0, 1e-9);  // len*sin(45) = 3.
}

TEST(TraclusDistanceTest, ObtuseAngleUsesFullLength) {
  Segment2D longer({0, 0}, {10, 0});
  Segment2D shorter({5, 0}, {2, 1});  // Points backwards.
  const TraclusComponents c = TraclusComponentsOf(longer, shorter);
  EXPECT_NEAR(c.angular, shorter.Length(), 1e-9);
}

TEST(TraclusDistanceTest, SymmetricViaOrdering) {
  Segment2D a({0, 0}, {10, 0});
  Segment2D b({2, 3}, {5, 4});
  EXPECT_NEAR(TraclusDistance(a, b), TraclusDistance(b, a), 1e-9);
}

TEST(TraclusDistanceTest, IdenticalSegmentsZero) {
  Segment2D a({1, 1}, {4, 5});
  EXPECT_NEAR(TraclusDistance(a, a), 0.0, 1e-9);
}

TEST(TraclusDistanceTest, WeightsScaleComponents) {
  Segment2D a({0, 0}, {10, 0});
  Segment2D b({2, 3}, {8, 3});
  const double base = TraclusDistance(a, b, 1.0, 1.0, 1.0);
  const double doubled = TraclusDistance(a, b, 2.0, 1.0, 1.0);
  EXPECT_NEAR(doubled, base + 3.0, 1e-9);  // Perp component is 3.
}

// ---------------------------------------------------------------------------
// Moving-point distance
// ---------------------------------------------------------------------------

TEST(MovingPointTest, ParallelConstantSeparation) {
  Segment3D u({0, 0, 0}, {10, 0, 10});
  Segment3D v({0, 5, 0}, {10, 5, 10});
  const MovingDistance d = DistanceBetweenMoving(u, v);
  EXPECT_DOUBLE_EQ(d.overlap, 10.0);
  EXPECT_NEAR(d.min_dist, 5.0, 1e-9);
  EXPECT_NEAR(d.max_dist, 5.0, 1e-9);
  EXPECT_NEAR(d.avg_dist, 5.0, 1e-9);
}

TEST(MovingPointTest, CrossingPathsMinNearZero) {
  // Two objects crossing at t=5 at the same point.
  Segment3D u({0, 0, 0}, {10, 0, 10});
  Segment3D v({5, -5, 0}, {5, 5, 10});
  const MovingDistance d = DistanceBetweenMoving(u, v);
  EXPECT_NEAR(d.min_dist, 0.0, 1e-9);
  EXPECT_NEAR(d.t_min, 5.0, 1e-9);
  EXPECT_GT(d.avg_dist, 0.0);
}

TEST(MovingPointTest, DisjointLifespansInfinite) {
  Segment3D u({0, 0, 0}, {1, 0, 1});
  Segment3D v({0, 0, 5}, {1, 0, 6});
  const MovingDistance d = DistanceBetweenMoving(u, v);
  EXPECT_EQ(d.overlap, 0.0);
  EXPECT_TRUE(std::isinf(d.min_dist));
}

TEST(MovingPointTest, InstantaneousOverlapPointDistance) {
  Segment3D u({0, 0, 0}, {10, 0, 10});
  Segment3D v({10, 3, 10}, {20, 3, 20});
  const MovingDistance d = DistanceBetweenMoving(u, v);
  EXPECT_EQ(d.overlap, 0.0);
  EXPECT_NEAR(d.min_dist, 3.0, 1e-9);  // At the shared instant t=10.
}

TEST(MovingPointTest, PartialOverlapWindow) {
  Segment3D u({0, 0, 0}, {10, 0, 10});
  Segment3D v({0, 4, 5}, {10, 4, 15});
  const MovingDistance d = DistanceBetweenMoving(u, v);
  EXPECT_DOUBLE_EQ(d.overlap, 5.0);  // [5, 10].
}

TEST(MovingPointTest, SymmetricInArguments) {
  Segment3D u({0, 0, 0}, {7, 3, 10});
  Segment3D v({2, 8, 2}, {9, 1, 12});
  const MovingDistance duv = DistanceBetweenMoving(u, v);
  const MovingDistance dvu = DistanceBetweenMoving(v, u);
  EXPECT_NEAR(duv.min_dist, dvu.min_dist, 1e-9);
  EXPECT_NEAR(duv.avg_dist, dvu.avg_dist, 1e-9);
  EXPECT_NEAR(duv.overlap, dvu.overlap, 1e-9);
}

TEST(MovingPointTest, AvgBetweenMinAndMax) {
  Segment3D u({0, 0, 0}, {10, 0, 10});
  Segment3D v({0, 2, 0}, {10, 8, 10});  // Diverging.
  const MovingDistance d = DistanceBetweenMoving(u, v);
  EXPECT_LE(d.min_dist, d.avg_dist);
  EXPECT_LE(d.avg_dist, d.max_dist + 1e-9);
}

TEST(MovingPointTest, SeparationAtMatchesAnalysis) {
  Segment3D u({0, 0, 0}, {10, 0, 10});
  Segment3D v({0, 6, 0}, {10, 6, 10});
  EXPECT_NEAR(SeparationAt(u, v, 3.0), 6.0, 1e-9);
}

// Property sweep: the linear-motion average equals the closed quadrature
// for many random-ish configurations.
class MovingPointSweep : public ::testing::TestWithParam<int> {};

TEST_P(MovingPointSweep, AverageMatchesDenseSampling) {
  const int k = GetParam();
  // Deterministic pseudo-configuration derived from k.
  Segment3D u({k * 1.0, -k * 0.5, 0}, {k * 1.0 + 10, k * 0.25, 10});
  Segment3D v({-k * 0.3, k * 0.7, 0}, {12 - k * 0.2, -k * 0.4, 10});
  const MovingDistance d = DistanceBetweenMoving(u, v);
  // Dense numeric average.
  const int steps = 2000;
  double sum = 0.0;
  for (int i = 0; i <= steps; ++i) {
    sum += SeparationAt(u, v, 10.0 * i / steps);
  }
  const double dense_avg = sum / (steps + 1);
  EXPECT_NEAR(d.avg_dist, dense_avg, dense_avg * 0.01 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Configs, MovingPointSweep,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace hermes::geom
