#include <gtest/gtest.h>

#include <set>

#include "baselines/range_rebuild.h"
#include "baselines/traclus.h"
#include "core/qut_clustering.h"
#include "core/retratree.h"
#include "core/s2t_clustering.h"
#include "datagen/aircraft.h"
#include "rtree/str_bulk_load.h"
#include "sql/executor.h"
#include "storage/env.h"
#include "va/ascii_map.h"
#include "va/exporters.h"

namespace hermes {
namespace {

/// Small but realistic aircraft scenario shared by the pipeline tests.
datagen::AircraftScenario SmallScenario() {
  datagen::AircraftScenarioParams p =
      datagen::AircraftScenarioParams::Default();
  p.num_flights = 24;
  p.outlier_fraction = 0.1;
  p.holding_probability = 0.3;
  p.time_span = 1200.0;
  p.seed = 7;
  auto scenario = datagen::GenerateAircraftScenario(p);
  EXPECT_TRUE(scenario.ok());
  return std::move(scenario).value();
}

core::S2TParams AircraftS2TParams() {
  core::S2TParams params;
  params.SetSigma(1500.0).SetEpsilon(3000.0);
  params.segmentation.min_part_length = 3;
  params.sampling.sigma = 4000.0;
  params.sampling.gain_stop_ratio = 0.1;
  params.sampling.max_representatives = 24;
  params.sampling.min_overlap_ratio = 0.3;
  params.clustering.min_overlap_ratio = 0.3;
  params.voting.min_overlap_ratio = 0.3;
  return params;
}

TEST(IntegrationTest, AircraftScenarioEndToEndS2T) {
  datagen::AircraftScenario scenario = SmallScenario();
  core::S2TClustering s2t(AircraftS2TParams());
  auto result = s2t.Run(scenario.store);
  ASSERT_TRUE(result.ok());
  // Approach corridors form at least one cluster, and something is
  // declared outlier (stray overflights exist).
  EXPECT_GE(result->NumClusters(), 1u);
  EXPECT_GT(result->sub_trajectories.size(),
            scenario.store.NumTrajectories());
}

TEST(IntegrationTest, FullPipelineRetratreeQutAndVa) {
  datagen::AircraftScenario scenario = SmallScenario();
  auto env = storage::Env::NewMemEnv();

  core::ReTraTreeParams tp;
  const auto [t0, t1] = scenario.store.TimeDomain();
  tp.tau = (t1 - t0) / 2;
  tp.delta = tp.tau / 4;
  tp.t_align = tp.delta;
  tp.d_assign = 3000.0;
  tp.gamma = 16;
  tp.origin = t0;
  tp.s2t = AircraftS2TParams();
  auto tree = core::ReTraTree::Open(env.get(), "air_tree", tp);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE((*tree)->InsertStore(scenario.store).ok());
  ASSERT_TRUE((*tree)->Validate().ok());

  core::QuTClustering qut(tree->get());
  auto result = qut.Query(t0, t1 + 1);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->TotalMembers() + result->outliers.size(), 0u);

  // VA export of the QuT answer renders without error.
  const std::string map = va::RenderQuTAsciiMap(*result, 60, 20);
  EXPECT_EQ(map.size(), 20u * 61u);
}

TEST(IntegrationTest, ProgressiveWindowWidening) {
  // Scenario 2: analyst widens W into the past; results accumulate.
  datagen::AircraftScenario scenario = SmallScenario();
  auto env = storage::Env::NewMemEnv();
  core::ReTraTreeParams tp;
  const auto [t0, t1] = scenario.store.TimeDomain();
  tp.tau = (t1 - t0) / 2;
  tp.delta = tp.tau / 4;
  tp.t_align = tp.delta;
  tp.d_assign = 3000.0;
  tp.gamma = 16;
  tp.origin = t0;
  tp.s2t = AircraftS2TParams();
  auto tree = core::ReTraTree::Open(env.get(), "prog_tree", tp);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE((*tree)->InsertStore(scenario.store).ok());

  core::QuTClustering qut(tree->get());
  size_t prev = 0;
  for (double wi = t1 - tp.delta; wi >= t0; wi -= tp.delta) {
    auto result = qut.Query(wi, t1 + 1);
    ASSERT_TRUE(result.ok());
    const size_t total = result->TotalMembers() + result->outliers.size();
    EXPECT_GE(total, prev);
    prev = total;
  }
}

TEST(IntegrationTest, QutAndRangeRebuildSeeSameWindowData) {
  datagen::AircraftScenario scenario = SmallScenario();
  auto env = storage::Env::NewMemEnv();
  const auto [t0, t1] = scenario.store.TimeDomain();

  // ReTraTree + QuT.
  core::ReTraTreeParams tp;
  tp.tau = (t1 - t0) / 2;
  tp.delta = tp.tau / 4;
  tp.t_align = tp.delta;
  tp.d_assign = 3000.0;
  tp.gamma = 16;
  tp.origin = t0;
  tp.s2t = AircraftS2TParams();
  auto tree = core::ReTraTree::Open(env.get(), "cmp_tree", tp);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE((*tree)->InsertStore(scenario.store).ok());
  core::QuTClustering qut(tree->get());
  const double wi = t0 + (t1 - t0) / 4;
  const double we = t0 + 3 * (t1 - t0) / 4;
  auto qut_result = qut.Query(wi, we);
  ASSERT_TRUE(qut_result.ok());

  // Baseline on the same window.
  auto gindex = rtree::BuildSegmentIndex(env.get(), "cmp.idx", scenario.store);
  ASSERT_TRUE(gindex.ok());
  auto baseline = baselines::RunRangeRebuild(scenario.store, **gindex, wi, we,
                                             AircraftS2TParams());
  ASSERT_TRUE(baseline.ok());

  // Both answers cover the same set of objects present in the window.
  std::set<traj::ObjectId> qut_objects;
  for (const auto& c : qut_result->clusters) {
    for (const auto& m : c.members) qut_objects.insert(m.object_id);
  }
  for (const auto& o : qut_result->outliers) qut_objects.insert(o.object_id);
  std::set<traj::ObjectId> window_objects;
  for (traj::TrajectoryId tid = 0;
       tid < baseline->window_store.NumTrajectories(); ++tid) {
    window_objects.insert(baseline->window_store.Get(tid).object_id());
  }
  EXPECT_EQ(qut_objects, window_objects);
}

TEST(IntegrationTest, SqlDrivesTheWholeEngine) {
  datagen::AircraftScenario scenario = SmallScenario();
  sql::Session session;
  ASSERT_TRUE(session.RegisterStore("air", std::move(scenario.store)).ok());

  auto stats = session.Execute("SELECT STATS(air);");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows[0][0], sql::Value::Int(24));

  auto s2t = session.Execute("SELECT S2T(air, 1500, 3000);");
  ASSERT_TRUE(s2t.ok());
  EXPECT_GE(s2t->rows.size(), 2u);

  auto qut = session.Execute(
      "SELECT QUT(air, 0, 3000, 1500, 375, 375, 3000, 16);");
  ASSERT_TRUE(qut.ok());
  EXPECT_GE(qut->rows.size(), 1u);
}

TEST(IntegrationTest, TimeAwareVsTraclusContrast) {
  // The paper's core motivation: two flows sharing a corridor at
  // different times. TRACLUS merges them; S2T keeps them apart.
  traj::TrajectoryStore store;
  for (int k = 0; k < 5; ++k) {  // Morning flow.
    traj::Trajectory t(k);
    for (int i = 0; i <= 30; ++i) {
      ASSERT_TRUE(t.Append({i * 40.0, k * 12.0, i * 10.0}).ok());
    }
    ASSERT_TRUE(store.Add(std::move(t)).ok());
  }
  for (int k = 5; k < 10; ++k) {  // Evening flow, same corridor.
    traj::Trajectory t(k);
    for (int i = 0; i <= 30; ++i) {
      ASSERT_TRUE(
          t.Append({i * 40.0, (k - 5) * 12.0, 50000.0 + i * 10.0}).ok());
    }
    ASSERT_TRUE(store.Add(std::move(t)).ok());
  }

  // TRACLUS (space only): one bundle.
  baselines::TraclusParams traclus_params;
  traclus_params.eps = 60.0;
  traclus_params.min_lns = 4;
  const auto traclus = baselines::RunTraclus(store, traclus_params);
  size_t biggest = 0;
  for (const auto& c : traclus.clusters) {
    std::set<traj::TrajectoryId> sources;
    for (size_t si : c.segment_indices) {
      sources.insert(traclus.segments[si].source);
    }
    bool morning = false, evening = false;
    for (auto s : sources) (s < 5 ? morning : evening) = true;
    if (morning && evening) biggest = std::max(biggest, sources.size());
  }
  EXPECT_GE(biggest, 8u);  // TRACLUS mixes the flows.

  // S2T (time-aware): no cluster mixes them.
  core::S2TParams params;
  params.SetSigma(30.0).SetEpsilon(60.0);
  params.segmentation.min_part_length = 3;
  params.sampling.sigma = 120.0;
  params.sampling.gain_stop_ratio = 0.2;
  core::S2TClustering s2t(params);
  auto result = s2t.Run(store);
  ASSERT_TRUE(result.ok());
  for (const auto& cluster : result->clustering.clusters) {
    bool morning = false, evening = false;
    for (size_t m : cluster.members) {
      const auto obj = result->sub_trajectories[m].object_id;
      (obj < 5 ? morning : evening) = true;
    }
    EXPECT_FALSE(morning && evening) << "S2T mixed temporally disjoint flows";
  }
}

TEST(IntegrationTest, VaExportsForQutAnswer) {
  datagen::AircraftScenario scenario = SmallScenario();
  auto env = storage::Env::NewMemEnv();
  core::ReTraTreeParams tp;
  const auto [t0, t1] = scenario.store.TimeDomain();
  tp.tau = (t1 - t0) / 2;
  tp.delta = tp.tau / 4;
  tp.t_align = tp.delta;
  tp.d_assign = 3000.0;
  tp.gamma = 16;
  tp.origin = t0;
  tp.s2t = AircraftS2TParams();
  auto tree = core::ReTraTree::Open(env.get(), "va_tree", tp);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE((*tree)->InsertStore(scenario.store).ok());
  core::QuTClustering qut(tree->get());
  auto result = qut.Query(t0, t1 + 1);
  ASSERT_TRUE(result.ok());

  const auto h = va::BuildQuTTimeHistogram(*result, 12);
  if (result->TotalMembers() + result->outliers.size() > 0) {
    ASSERT_EQ(h.bins, 12u);
    size_t total = 0;
    for (const auto& row : h.counts) {
      for (size_t c : row) total += c;
    }
    EXPECT_GT(total, 0u);
  }
}

}  // namespace
}  // namespace hermes
