#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "segmentation/nats.h"
#include "voting/voting.h"

namespace hermes::segmentation {
namespace {

NatsParams SmallParams() {
  NatsParams p;
  p.min_part_length = 2;
  p.lambda_scale = 0.05;
  return p;
}

TEST(NatsTest, EmptySignalYieldsNoParts) {
  EXPECT_TRUE(SegmentVotingSignal({}, SmallParams()).empty());
}

TEST(NatsTest, ShortSignalSinglePart) {
  const auto parts = SegmentVotingSignal({1.0, 2.0, 3.0}, SmallParams());
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].first_segment, 0u);
  EXPECT_EQ(parts[0].last_segment, 2u);
  EXPECT_NEAR(parts[0].mean_voting, 2.0, 1e-12);
}

TEST(NatsTest, ConstantSignalNeverSplits) {
  const std::vector<double> votes(40, 5.0);
  const auto parts = SegmentVotingSignal(votes, SmallParams());
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].NumSegments(), 40u);
  EXPECT_NEAR(parts[0].mean_voting, 5.0, 1e-12);
}

TEST(NatsTest, StepSignalSplitsAtTheStep) {
  // 20 segments at vote 1, then 20 at vote 9: the DP must cut at 20.
  std::vector<double> votes;
  votes.insert(votes.end(), 20, 1.0);
  votes.insert(votes.end(), 20, 9.0);
  const auto parts = SegmentVotingSignal(votes, SmallParams());
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].first_segment, 0u);
  EXPECT_EQ(parts[0].last_segment, 19u);
  EXPECT_EQ(parts[1].first_segment, 20u);
  EXPECT_EQ(parts[1].last_segment, 39u);
  EXPECT_NEAR(parts[0].mean_voting, 1.0, 1e-9);
  EXPECT_NEAR(parts[1].mean_voting, 9.0, 1e-9);
}

TEST(NatsTest, ThreeLevelSignal) {
  std::vector<double> votes;
  votes.insert(votes.end(), 10, 1.0);
  votes.insert(votes.end(), 10, 10.0);
  votes.insert(votes.end(), 10, 2.0);
  const auto parts = SegmentVotingSignal(votes, SmallParams());
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1].first_segment, 10u);
  EXPECT_EQ(parts[1].last_segment, 19u);
}

TEST(NatsTest, PartsArePartition) {
  Rng rng(42);
  std::vector<double> votes;
  for (int i = 0; i < 60; ++i) votes.push_back(rng.Uniform(0, 10));
  const auto parts = SegmentVotingSignal(votes, SmallParams());
  ASSERT_FALSE(parts.empty());
  EXPECT_EQ(parts.front().first_segment, 0u);
  EXPECT_EQ(parts.back().last_segment, 59u);
  for (size_t i = 1; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i].first_segment, parts[i - 1].last_segment + 1);
  }
}

TEST(NatsTest, MinPartLengthEnforced) {
  std::vector<double> votes;
  for (int i = 0; i < 30; ++i) votes.push_back((i % 2 == 0) ? 0.0 : 10.0);
  NatsParams p = SmallParams();
  p.min_part_length = 5;
  const auto parts = SegmentVotingSignal(votes, p);
  for (const auto& part : parts) {
    EXPECT_GE(part.NumSegments(), 5u);
  }
}

TEST(NatsTest, MaxPartsBoundRespected) {
  std::vector<double> votes;
  for (int b = 0; b < 6; ++b) {
    votes.insert(votes.end(), 8, b * 5.0);
  }
  NatsParams p = SmallParams();
  p.max_parts = 3;
  const auto parts = SegmentVotingSignal(votes, p);
  EXPECT_LE(parts.size(), 3u);
}

TEST(NatsTest, LargerLambdaFewerParts) {
  Rng rng(17);
  std::vector<double> votes;
  for (int b = 0; b < 8; ++b) {
    const double level = rng.Uniform(0, 20);
    for (int i = 0; i < 6; ++i) votes.push_back(level + rng.Uniform(-0.5, 0.5));
  }
  NatsParams fine = SmallParams();
  fine.lambda_scale = 0.001;
  NatsParams coarse = SmallParams();
  coarse.lambda_scale = 2.0;
  EXPECT_GE(SegmentVotingSignal(votes, fine).size(),
            SegmentVotingSignal(votes, coarse).size());
}

TEST(NatsTest, DpMatchesBruteForceCost) {
  // Exhaustive cross-check on small random signals.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    std::vector<double> votes;
    const int m = 8 + static_cast<int>(seed) % 4;
    for (int i = 0; i < m; ++i) votes.push_back(rng.Uniform(0, 10));
    NatsParams p = SmallParams();
    const auto dp = SegmentVotingSignal(votes, p);
    const auto bf = SegmentVotingSignalBruteForce(votes, p);
    const double lambda = EffectiveLambda(votes, p);
    EXPECT_NEAR(SegmentationCost(votes, dp, lambda),
                SegmentationCost(votes, bf, lambda), 1e-9)
        << "seed " << seed;
  }
}

TEST(NatsTest, SegmentStoreMaterializesSubTrajectories) {
  // One trajectory with a co-movement episode in the middle.
  traj::TrajectoryStore store;
  auto line = [&](traj::ObjectId id, double y, double t0, double t1) {
    traj::Trajectory t(id);
    for (int i = 0; i <= 40; ++i) {
      const double u = i / 40.0;
      EXPECT_TRUE(
          t.Append({u * 1000.0, y, t0 + u * (t1 - t0)}).ok());
    }
    return t;
  };
  ASSERT_TRUE(store.Add(line(1, 0, 0, 400)).ok());
  // Companion only during the middle third (same x range scaled in time).
  traj::Trajectory companion(2);
  for (int i = 0; i <= 13; ++i) {
    const double t = 133 + i * 10.0;
    const double x = 1000.0 * t / 400.0;
    ASSERT_TRUE(companion.Append({x, 10.0, t}).ok());
  }
  ASSERT_TRUE(store.Add(std::move(companion)).ok());

  voting::VotingParams vp{50.0, 3.0, 0.5};
  auto votes = voting::ComputeVotingNaive(store, vp);
  ASSERT_TRUE(votes.ok());

  NatsParams p;
  p.min_part_length = 3;
  const auto subs = SegmentStore(store, *votes, p);
  ASSERT_GE(subs.size(), 3u);  // Trajectory 1 splits around the episode.
  // Sub-trajectories must cover their sources contiguously.
  size_t from_first = 0;
  for (const auto& st : subs) {
    if (st.source_trajectory == 0) ++from_first;
    EXPECT_GE(st.points.size(), 2u);
    EXPECT_TRUE(st.points.Validate().ok());
  }
  EXPECT_GE(from_first, 2u);
}

TEST(NatsTest, TwoPassIdAssignmentGolden) {
  // Fixed fixture with hand-checked DP optima, so a refactor of the
  // two-pass (segment, then prefix-sum ids) scheme can never silently
  // renumber sub-trajectories or move their boundaries.
  //
  //   t0: 12 samples / 11 segments, step signal 5×1.0 then 6×9.0
  //       → parts [0,4], [5,10]
  //   t1:  8 samples /  7 segments, constant signal → one part [0,6]
  //   t2:  1 sample  /  0 segments → no parts (skipped trajectory)
  //   t3: 13 samples / 12 segments, levels 4×0, 4×8, 4×2
  //       → parts [0,3], [4,7], [8,11]
  traj::TrajectoryStore store;
  auto add = [&](traj::ObjectId oid, size_t samples) {
    traj::Trajectory t(oid);
    for (size_t i = 0; i < samples; ++i) {
      ASSERT_TRUE(t.Append({i * 10.0, oid * 100.0, i * 1.0}).ok());
    }
    ASSERT_TRUE(store.Add(std::move(t)).ok());
  };
  add(100, 12);
  add(101, 8);
  add(102, 1);
  add(103, 13);

  voting::VotingResult votes;
  votes.votes.resize(4);
  votes.votes[0] = {1, 1, 1, 1, 1, 9, 9, 9, 9, 9, 9};
  votes.votes[1] = {5, 5, 5, 5, 5, 5, 5};
  votes.votes[2] = {};
  votes.votes[3] = {0, 0, 0, 0, 8, 8, 8, 8, 2, 2, 2, 2};

  struct Golden {
    traj::SubTrajectoryId id;
    traj::TrajectoryId source;
    size_t first_sample;
    size_t num_points;
    double mean_voting;
  };
  const std::vector<Golden> golden = {
      {0, 0, 0, 6, 1.0}, {1, 0, 5, 7, 9.0}, {2, 1, 0, 8, 5.0},
      {3, 3, 0, 5, 0.0}, {4, 3, 4, 5, 8.0}, {5, 3, 8, 5, 2.0},
  };

  for (size_t threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    exec::ExecContext ctx(threads);
    const auto subs = SegmentStore(store, votes, SmallParams(), &ctx);
    ASSERT_EQ(subs.size(), golden.size());
    for (size_t i = 0; i < golden.size(); ++i) {
      EXPECT_EQ(subs[i].id, golden[i].id) << "sub " << i;
      EXPECT_EQ(subs[i].source_trajectory, golden[i].source) << "sub " << i;
      EXPECT_EQ(subs[i].first_sample_index, golden[i].first_sample)
          << "sub " << i;
      EXPECT_EQ(subs[i].points.size(), golden[i].num_points) << "sub " << i;
      EXPECT_NEAR(subs[i].mean_voting, golden[i].mean_voting, 1e-12)
          << "sub " << i;
      // Segment offsets: the piece starts at source sample
      // first_sample_index and is contiguous.
      const traj::Trajectory& src = store.Get(subs[i].source_trajectory);
      for (size_t s = 0; s < subs[i].points.size(); ++s) {
        EXPECT_EQ(subs[i].points[s].t,
                  src[golden[i].first_sample + s].t)
            << "sub " << i << " sample " << s;
      }
    }
  }
}

TEST(NatsTest, ParallelSegmentStoreMatchesSequential) {
  // Randomized store + real voting signals: the parallel two-pass result
  // must be field-for-field identical to the sequential sweep.
  traj::TrajectoryStore store;
  Rng rng(99);
  for (int k = 0; k < 12; ++k) {
    traj::Trajectory t(k);
    const size_t len = 8 + static_cast<size_t>(rng.Uniform(0, 30));
    for (size_t i = 0; i < len; ++i) {
      ASSERT_TRUE(t.Append({i * 10.0 + rng.Uniform(-2, 2),
                            k * 40.0 + rng.Uniform(-2, 2), i * 1.0})
                      .ok());
    }
    ASSERT_TRUE(store.Add(std::move(t)).ok());
  }
  voting::VotingParams vp{50.0, 3.0, 0.5};
  auto votes = voting::ComputeVotingNaive(store, vp);
  ASSERT_TRUE(votes.ok());

  const auto seq = SegmentStore(store, *votes, SmallParams());
  for (size_t threads : {2u, 4u, 8u}) {
    exec::ExecContext ctx(threads);
    SegmentationTimings timings;
    const auto par = SegmentStore(store, *votes, SmallParams(), &ctx,
                                  &timings);
    ASSERT_EQ(par.size(), seq.size()) << "threads=" << threads;
    for (size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(par[i].id, seq[i].id);
      EXPECT_EQ(par[i].source_trajectory, seq[i].source_trajectory);
      EXPECT_EQ(par[i].object_id, seq[i].object_id);
      EXPECT_EQ(par[i].first_sample_index, seq[i].first_sample_index);
      EXPECT_EQ(par[i].mean_voting, seq[i].mean_voting);
      ASSERT_EQ(par[i].points.size(), seq[i].points.size());
      for (size_t s = 0; s < seq[i].points.size(); ++s) {
        EXPECT_EQ(par[i].points[s].x, seq[i].points[s].x);
        EXPECT_EQ(par[i].points[s].y, seq[i].points[s].y);
        EXPECT_EQ(par[i].points[s].t, seq[i].points[s].t);
      }
    }
    EXPECT_GE(timings.dp_us, 0);
    EXPECT_GE(timings.materialize_us, 0);
    const auto phases = ctx.stats().PhaseTimings();
    EXPECT_EQ(phases.count("segmentation_dp"), 1u);
    EXPECT_EQ(phases.count("segmentation_materialize"), 1u);
  }
}

TEST(NatsTest, SegmentStoreAssignsSequentialIds) {
  traj::TrajectoryStore store = [] {
    traj::TrajectoryStore s;
    for (int k = 0; k < 3; ++k) {
      traj::Trajectory t(k);
      for (int i = 0; i <= 10; ++i) {
        EXPECT_TRUE(t.Append({i * 10.0, k * 100.0, i * 1.0}).ok());
      }
      EXPECT_TRUE(s.Add(std::move(t)).ok());
    }
    return s;
  }();
  voting::VotingParams vp{50.0, 3.0, 0.5};
  auto votes = voting::ComputeVotingNaive(store, vp);
  ASSERT_TRUE(votes.ok());
  const auto subs = SegmentStore(store, *votes, SmallParams());
  for (size_t i = 0; i < subs.size(); ++i) {
    EXPECT_EQ(subs[i].id, i);
  }
}

// Lambda-scale sweep property: part count is monotonically non-increasing
// in lambda.
class LambdaSweep : public ::testing::TestWithParam<double> {};

TEST_P(LambdaSweep, MoreLambdaNeverMoreParts) {
  Rng rng(1234);
  std::vector<double> votes;
  for (int i = 0; i < 48; ++i) {
    votes.push_back((i / 12) * 3.0 + rng.Uniform(-0.4, 0.4));
  }
  NatsParams base = SmallParams();
  base.lambda_scale = GetParam();
  NatsParams bigger = base;
  bigger.lambda_scale = GetParam() * 4.0;
  EXPECT_GE(SegmentVotingSignal(votes, base).size(),
            SegmentVotingSignal(votes, bigger).size());
}

INSTANTIATE_TEST_SUITE_P(Scales, LambdaSweep,
                         ::testing::Values(0.005, 0.02, 0.1, 0.5));

}  // namespace
}  // namespace hermes::segmentation
