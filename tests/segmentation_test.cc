#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "segmentation/nats.h"
#include "voting/voting.h"

namespace hermes::segmentation {
namespace {

NatsParams SmallParams() {
  NatsParams p;
  p.min_part_length = 2;
  p.lambda_scale = 0.05;
  return p;
}

TEST(NatsTest, EmptySignalYieldsNoParts) {
  EXPECT_TRUE(SegmentVotingSignal({}, SmallParams()).empty());
}

TEST(NatsTest, ShortSignalSinglePart) {
  const auto parts = SegmentVotingSignal({1.0, 2.0, 3.0}, SmallParams());
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].first_segment, 0u);
  EXPECT_EQ(parts[0].last_segment, 2u);
  EXPECT_NEAR(parts[0].mean_voting, 2.0, 1e-12);
}

TEST(NatsTest, ConstantSignalNeverSplits) {
  const std::vector<double> votes(40, 5.0);
  const auto parts = SegmentVotingSignal(votes, SmallParams());
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].NumSegments(), 40u);
  EXPECT_NEAR(parts[0].mean_voting, 5.0, 1e-12);
}

TEST(NatsTest, StepSignalSplitsAtTheStep) {
  // 20 segments at vote 1, then 20 at vote 9: the DP must cut at 20.
  std::vector<double> votes;
  votes.insert(votes.end(), 20, 1.0);
  votes.insert(votes.end(), 20, 9.0);
  const auto parts = SegmentVotingSignal(votes, SmallParams());
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].first_segment, 0u);
  EXPECT_EQ(parts[0].last_segment, 19u);
  EXPECT_EQ(parts[1].first_segment, 20u);
  EXPECT_EQ(parts[1].last_segment, 39u);
  EXPECT_NEAR(parts[0].mean_voting, 1.0, 1e-9);
  EXPECT_NEAR(parts[1].mean_voting, 9.0, 1e-9);
}

TEST(NatsTest, ThreeLevelSignal) {
  std::vector<double> votes;
  votes.insert(votes.end(), 10, 1.0);
  votes.insert(votes.end(), 10, 10.0);
  votes.insert(votes.end(), 10, 2.0);
  const auto parts = SegmentVotingSignal(votes, SmallParams());
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1].first_segment, 10u);
  EXPECT_EQ(parts[1].last_segment, 19u);
}

TEST(NatsTest, PartsArePartition) {
  Rng rng(42);
  std::vector<double> votes;
  for (int i = 0; i < 60; ++i) votes.push_back(rng.Uniform(0, 10));
  const auto parts = SegmentVotingSignal(votes, SmallParams());
  ASSERT_FALSE(parts.empty());
  EXPECT_EQ(parts.front().first_segment, 0u);
  EXPECT_EQ(parts.back().last_segment, 59u);
  for (size_t i = 1; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i].first_segment, parts[i - 1].last_segment + 1);
  }
}

TEST(NatsTest, MinPartLengthEnforced) {
  std::vector<double> votes;
  for (int i = 0; i < 30; ++i) votes.push_back((i % 2 == 0) ? 0.0 : 10.0);
  NatsParams p = SmallParams();
  p.min_part_length = 5;
  const auto parts = SegmentVotingSignal(votes, p);
  for (const auto& part : parts) {
    EXPECT_GE(part.NumSegments(), 5u);
  }
}

TEST(NatsTest, MaxPartsBoundRespected) {
  std::vector<double> votes;
  for (int b = 0; b < 6; ++b) {
    votes.insert(votes.end(), 8, b * 5.0);
  }
  NatsParams p = SmallParams();
  p.max_parts = 3;
  const auto parts = SegmentVotingSignal(votes, p);
  EXPECT_LE(parts.size(), 3u);
}

TEST(NatsTest, LargerLambdaFewerParts) {
  Rng rng(17);
  std::vector<double> votes;
  for (int b = 0; b < 8; ++b) {
    const double level = rng.Uniform(0, 20);
    for (int i = 0; i < 6; ++i) votes.push_back(level + rng.Uniform(-0.5, 0.5));
  }
  NatsParams fine = SmallParams();
  fine.lambda_scale = 0.001;
  NatsParams coarse = SmallParams();
  coarse.lambda_scale = 2.0;
  EXPECT_GE(SegmentVotingSignal(votes, fine).size(),
            SegmentVotingSignal(votes, coarse).size());
}

TEST(NatsTest, DpMatchesBruteForceCost) {
  // Exhaustive cross-check on small random signals.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    std::vector<double> votes;
    const int m = 8 + static_cast<int>(seed) % 4;
    for (int i = 0; i < m; ++i) votes.push_back(rng.Uniform(0, 10));
    NatsParams p = SmallParams();
    const auto dp = SegmentVotingSignal(votes, p);
    const auto bf = SegmentVotingSignalBruteForce(votes, p);
    const double lambda = EffectiveLambda(votes, p);
    EXPECT_NEAR(SegmentationCost(votes, dp, lambda),
                SegmentationCost(votes, bf, lambda), 1e-9)
        << "seed " << seed;
  }
}

TEST(NatsTest, SegmentStoreMaterializesSubTrajectories) {
  // One trajectory with a co-movement episode in the middle.
  traj::TrajectoryStore store;
  auto line = [&](traj::ObjectId id, double y, double t0, double t1) {
    traj::Trajectory t(id);
    for (int i = 0; i <= 40; ++i) {
      const double u = i / 40.0;
      EXPECT_TRUE(
          t.Append({u * 1000.0, y, t0 + u * (t1 - t0)}).ok());
    }
    return t;
  };
  ASSERT_TRUE(store.Add(line(1, 0, 0, 400)).ok());
  // Companion only during the middle third (same x range scaled in time).
  traj::Trajectory companion(2);
  for (int i = 0; i <= 13; ++i) {
    const double t = 133 + i * 10.0;
    const double x = 1000.0 * t / 400.0;
    ASSERT_TRUE(companion.Append({x, 10.0, t}).ok());
  }
  ASSERT_TRUE(store.Add(std::move(companion)).ok());

  voting::VotingParams vp{50.0, 3.0, 0.5};
  auto votes = voting::ComputeVotingNaive(store, vp);
  ASSERT_TRUE(votes.ok());

  NatsParams p;
  p.min_part_length = 3;
  const auto subs = SegmentStore(store, *votes, p);
  ASSERT_GE(subs.size(), 3u);  // Trajectory 1 splits around the episode.
  // Sub-trajectories must cover their sources contiguously.
  size_t from_first = 0;
  for (const auto& st : subs) {
    if (st.source_trajectory == 0) ++from_first;
    EXPECT_GE(st.points.size(), 2u);
    EXPECT_TRUE(st.points.Validate().ok());
  }
  EXPECT_GE(from_first, 2u);
}

TEST(NatsTest, SegmentStoreAssignsSequentialIds) {
  traj::TrajectoryStore store = [] {
    traj::TrajectoryStore s;
    for (int k = 0; k < 3; ++k) {
      traj::Trajectory t(k);
      for (int i = 0; i <= 10; ++i) {
        EXPECT_TRUE(t.Append({i * 10.0, k * 100.0, i * 1.0}).ok());
      }
      EXPECT_TRUE(s.Add(std::move(t)).ok());
    }
    return s;
  }();
  voting::VotingParams vp{50.0, 3.0, 0.5};
  auto votes = voting::ComputeVotingNaive(store, vp);
  ASSERT_TRUE(votes.ok());
  const auto subs = SegmentStore(store, *votes, SmallParams());
  for (size_t i = 0; i < subs.size(); ++i) {
    EXPECT_EQ(subs[i].id, i);
  }
}

// Lambda-scale sweep property: part count is monotonically non-increasing
// in lambda.
class LambdaSweep : public ::testing::TestWithParam<double> {};

TEST_P(LambdaSweep, MoreLambdaNeverMoreParts) {
  Rng rng(1234);
  std::vector<double> votes;
  for (int i = 0; i < 48; ++i) {
    votes.push_back((i / 12) * 3.0 + rng.Uniform(-0.4, 0.4));
  }
  NatsParams base = SmallParams();
  base.lambda_scale = GetParam();
  NatsParams bigger = base;
  bigger.lambda_scale = GetParam() * 4.0;
  EXPECT_GE(SegmentVotingSignal(votes, base).size(),
            SegmentVotingSignal(votes, bigger).size());
}

INSTANTIATE_TEST_SUITE_P(Scales, LambdaSweep,
                         ::testing::Values(0.005, 0.02, 0.1, 0.5));

}  // namespace
}  // namespace hermes::segmentation
