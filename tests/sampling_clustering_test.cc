#include <gtest/gtest.h>

#include <cmath>

#include "clustering/greedy_clustering.h"
#include "sampling/saco_sampling.h"

namespace hermes {
namespace {

using clustering::ClusterAroundRepresentatives;
using clustering::ClusteringParams;
using sampling::SamplingParams;
using sampling::SelectRepresentatives;

/// Builds a sub-trajectory moving along x at `y`, over [t0, t0+dur].
traj::SubTrajectory Sub(traj::SubTrajectoryId id, double y, double t0,
                        double dur, double voting, int samples = 11) {
  traj::SubTrajectory st;
  st.id = id;
  st.object_id = id;
  st.mean_voting = voting;
  traj::Trajectory t(id);
  for (int i = 0; i < samples; ++i) {
    const double u = static_cast<double>(i) / (samples - 1);
    EXPECT_TRUE(t.Append({u * 1000.0, y, t0 + u * dur}).ok());
  }
  st.points = std::move(t);
  return st;
}

SamplingParams DefaultSampling() {
  SamplingParams p;
  p.max_representatives = 8;
  p.gain_stop_ratio = 0.05;
  p.sigma = 50.0;
  p.min_overlap_ratio = 0.5;
  return p;
}

// ---------------------------------------------------------------------------
// SaCO sampling
// ---------------------------------------------------------------------------

TEST(SamplingTest, EmptyInputNoReps) {
  EXPECT_TRUE(SelectRepresentatives({}, DefaultSampling()).empty());
}

TEST(SamplingTest, PicksHighestScoredFirst) {
  std::vector<traj::SubTrajectory> subs;
  subs.push_back(Sub(0, 0, 0, 100, /*voting=*/1.0));
  subs.push_back(Sub(1, 5000, 0, 100, /*voting=*/9.0));  // Far lane, hot.
  subs.push_back(Sub(2, 10000, 0, 100, /*voting=*/4.0));
  const auto reps = SelectRepresentatives(subs, DefaultSampling());
  ASSERT_FALSE(reps.empty());
  EXPECT_EQ(reps[0], 1u);
}

TEST(SamplingTest, CoverageSuppressesNearDuplicates) {
  // Two nearly identical hot sub-trajectories plus one distant cool one:
  // greedy must pick one of the twins, then the distant one.
  std::vector<traj::SubTrajectory> subs;
  subs.push_back(Sub(0, 0, 0, 100, 9.0));
  subs.push_back(Sub(1, 1, 0, 100, 8.9));      // Twin of 0.
  subs.push_back(Sub(2, 8000, 0, 100, 3.0));   // Far away.
  SamplingParams p = DefaultSampling();
  p.max_representatives = 2;
  const auto reps = SelectRepresentatives(subs, p);
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_EQ(reps[0], 0u);
  EXPECT_EQ(reps[1], 2u);  // Not the twin.
}

TEST(SamplingTest, MaxRepresentativesBound) {
  std::vector<traj::SubTrajectory> subs;
  for (int i = 0; i < 20; ++i) {
    subs.push_back(Sub(i, i * 5000.0, 0, 100, 5.0));
  }
  SamplingParams p = DefaultSampling();
  p.max_representatives = 4;
  EXPECT_EQ(SelectRepresentatives(subs, p).size(), 4u);
}

TEST(SamplingTest, GainStopRatioTerminatesEarly) {
  std::vector<traj::SubTrajectory> subs;
  subs.push_back(Sub(0, 0, 0, 100, 100.0));      // Dominant.
  subs.push_back(Sub(1, 9000, 0, 100, 0.5));     // Tiny gain.
  subs.push_back(Sub(2, 18000, 0, 100, 0.4));
  SamplingParams p = DefaultSampling();
  p.gain_stop_ratio = 0.05;  // 5% of first gain = 5.0 > 0.5.
  const auto reps = SelectRepresentatives(subs, p);
  EXPECT_EQ(reps.size(), 1u);
}

TEST(SamplingTest, ZeroVotingNeverSelected) {
  std::vector<traj::SubTrajectory> subs;
  subs.push_back(Sub(0, 0, 0, 100, 0.0));
  subs.push_back(Sub(1, 100, 0, 100, 0.0));
  EXPECT_TRUE(SelectRepresentatives(subs, DefaultSampling()).empty());
}

TEST(SamplingTest, BaseScoreWeighsVotingAndDuration) {
  const auto short_hot = Sub(0, 0, 0, 10, 8.0);
  const auto long_warm = Sub(1, 0, 0, 100, 2.0);
  EXPECT_GT(sampling::BaseScore(long_warm), sampling::BaseScore(short_hot));
}

// ---------------------------------------------------------------------------
// Greedy clustering
// ---------------------------------------------------------------------------

TEST(ClusteringTest, MembersJoinNearestRep) {
  std::vector<traj::SubTrajectory> subs;
  subs.push_back(Sub(0, 0, 0, 100, 5.0));      // Rep A.
  subs.push_back(Sub(1, 1000, 0, 100, 5.0));   // Rep B.
  subs.push_back(Sub(2, 30, 0, 100, 1.0));     // Near A.
  subs.push_back(Sub(3, 960, 0, 100, 1.0));    // Near B.
  ClusteringParams p{/*epsilon=*/100.0, /*min_overlap_ratio=*/0.5};
  const auto result = ClusterAroundRepresentatives(subs, {0, 1}, p);
  ASSERT_EQ(result.clusters.size(), 2u);
  EXPECT_TRUE(result.outliers.empty());
  const auto assign = result.Assignment(subs.size());
  EXPECT_EQ(assign[2], assign[0]);
  EXPECT_EQ(assign[3], assign[1]);
  EXPECT_NE(assign[0], assign[1]);
}

TEST(ClusteringTest, FarSubTrajectoriesAreOutliers) {
  std::vector<traj::SubTrajectory> subs;
  subs.push_back(Sub(0, 0, 0, 100, 5.0));
  subs.push_back(Sub(1, 5000, 0, 100, 1.0));  // Way beyond epsilon.
  ClusteringParams p{100.0, 0.5};
  const auto result = ClusterAroundRepresentatives(subs, {0}, p);
  ASSERT_EQ(result.clusters.size(), 1u);
  ASSERT_EQ(result.outliers.size(), 1u);
  EXPECT_EQ(result.outliers[0], 1u);
}

TEST(ClusteringTest, TemporalMisalignmentMakesOutliers) {
  std::vector<traj::SubTrajectory> subs;
  subs.push_back(Sub(0, 0, 0, 100, 5.0));
  subs.push_back(Sub(1, 0, 500, 100, 1.0));  // Same path, later time.
  ClusteringParams p{100.0, 0.5};
  const auto result = ClusterAroundRepresentatives(subs, {0}, p);
  EXPECT_EQ(result.outliers.size(), 1u);
}

TEST(ClusteringTest, RepresentativeIsMemberOfOwnCluster) {
  std::vector<traj::SubTrajectory> subs;
  subs.push_back(Sub(0, 0, 0, 100, 5.0));
  const auto result =
      ClusterAroundRepresentatives(subs, {0}, ClusteringParams{});
  ASSERT_EQ(result.clusters.size(), 1u);
  ASSERT_EQ(result.clusters[0].members.size(), 1u);
  EXPECT_EQ(result.clusters[0].members[0], 0u);
}

TEST(ClusteringTest, NoRepsEverythingOutlier) {
  std::vector<traj::SubTrajectory> subs;
  subs.push_back(Sub(0, 0, 0, 100, 5.0));
  subs.push_back(Sub(1, 10, 0, 100, 5.0));
  const auto result =
      ClusterAroundRepresentatives(subs, {}, ClusteringParams{});
  EXPECT_TRUE(result.clusters.empty());
  EXPECT_EQ(result.outliers.size(), 2u);
}

TEST(ClusteringTest, AssignmentAndTotalsConsistent) {
  std::vector<traj::SubTrajectory> subs;
  for (int i = 0; i < 12; ++i) {
    subs.push_back(Sub(i, (i % 3) * 1000.0 + (i / 3) * 10.0, 0, 100, 2.0));
  }
  ClusteringParams p{100.0, 0.5};
  const auto result = ClusterAroundRepresentatives(subs, {0, 1, 2}, p);
  EXPECT_EQ(result.TotalMembers() + result.outliers.size(), subs.size());
  const auto assign = result.Assignment(subs.size());
  size_t assigned = 0;
  for (int a : assign) assigned += (a >= 0);
  EXPECT_EQ(assigned, result.TotalMembers());
}

// Epsilon sweep: more permissive epsilon never creates more outliers.
class EpsilonSweep : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonSweep, OutliersMonotoneInEpsilon) {
  std::vector<traj::SubTrajectory> subs;
  for (int i = 0; i < 10; ++i) {
    subs.push_back(Sub(i, i * 40.0, 0, 100, 2.0));
  }
  ClusteringParams tight{GetParam(), 0.5};
  ClusteringParams loose{GetParam() * 2.0, 0.5};
  const auto a = ClusterAroundRepresentatives(subs, {0}, tight);
  const auto b = ClusterAroundRepresentatives(subs, {0}, loose);
  EXPECT_GE(a.outliers.size(), b.outliers.size());
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonSweep,
                         ::testing::Values(20.0, 50.0, 120.0, 250.0));

}  // namespace
}  // namespace hermes
