#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/s2t_clustering.h"
#include "datagen/noise.h"
#include "va/ascii_map.h"
#include "va/exporters.h"

namespace hermes::va {
namespace {

std::string TempFile(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

size_t CountLines(const std::string& path) {
  std::ifstream in(path);
  size_t n = 0;
  std::string line;
  while (std::getline(in, line)) ++n;
  return n;
}

class VaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = datagen::MakeParallelLanes(2, 4, 2000.0, 800.0, 10.0, 10.0,
                                        /*seed=*/3, /*jitter=*/1.0);
    core::S2TParams params;
    params.SetSigma(30.0).SetEpsilon(60.0);
    params.segmentation.min_part_length = 2;
    params.sampling.sigma = 120.0;
    params.sampling.gain_stop_ratio = 0.2;
    core::S2TClustering s2t(params);
    auto result = s2t.Run(store_);
    ASSERT_TRUE(result.ok());
    result_ = std::move(result).value();
    ASSERT_GE(result_.NumClusters(), 2u);
  }

  traj::TrajectoryStore store_;
  core::S2TResult result_;
};

TEST_F(VaTest, ColorPaletteStableAndDistinct) {
  EXPECT_EQ(ColorFor(0).ToHex(), ColorFor(0).ToHex());
  EXPECT_NE(ColorFor(0).ToHex(), ColorFor(1).ToHex());
  EXPECT_EQ(ColorFor(0).ToHex(), ColorFor(12).ToHex());  // Palette cycles.
  EXPECT_EQ(ColorFor(-1).ToHex(), "#505050");            // Outlier gray.
  EXPECT_EQ(ColorFor(0).ToHex().size(), 7u);
}

TEST_F(VaTest, ClusterMapCsvWellFormed) {
  const std::string path = TempFile("hermes_map.csv");
  ASSERT_TRUE(ExportClusterMapCsv(path, result_).ok());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "cluster_id,color,object_id,sub_id,seq,x,y,t");
  // Every sample of every sub-trajectory appears exactly once.
  size_t expected = 0;
  for (const auto& st : result_.sub_trajectories) expected += st.points.size();
  EXPECT_EQ(CountLines(path), expected + 1);
  std::filesystem::remove(path);
}

TEST_F(VaTest, TimeHistogramSumsMatchMembers) {
  const TimeHistogram h = BuildTimeHistogram(result_, 10);
  ASSERT_EQ(h.bins, 10u);
  ASSERT_EQ(h.counts.size(), 10u);
  // Every member contributes to at least one bin.
  size_t total = 0;
  for (const auto& row : h.counts) {
    for (size_t c : row) total += c;
  }
  EXPECT_GE(total, result_.clustering.TotalMembers());
  // Column count = clusters + outlier column.
  EXPECT_EQ(h.counts[0].size(), result_.NumClusters() + 1);
}

TEST_F(VaTest, TimeHistogramCsvWellFormed) {
  const std::string path = TempFile("hermes_hist.csv");
  ASSERT_TRUE(ExportTimeHistogramCsv(path, result_, 8).ok());
  EXPECT_EQ(CountLines(path), 1 + 8 * (result_.NumClusters() + 1));
  std::filesystem::remove(path);
}

TEST_F(VaTest, ShapesCsvRepsOnlySmaller) {
  const std::string reps_path = TempFile("hermes_reps.csv");
  const std::string all_path = TempFile("hermes_all.csv");
  ASSERT_TRUE(Export3DShapesCsv(reps_path, result_, "runA", true).ok());
  ASSERT_TRUE(Export3DShapesCsv(all_path, result_, "runA", false).ok());
  EXPECT_LT(CountLines(reps_path), CountLines(all_path));
  std::filesystem::remove(reps_path);
  std::filesystem::remove(all_path);
}

TEST_F(VaTest, GeoJsonIsStructurallySound) {
  const std::string path = TempFile("hermes_map.geojson");
  ASSERT_TRUE(ExportGeoJson(path, result_).ok());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_EQ(json.find("{\"type\":\"FeatureCollection\""), 0u);
  EXPECT_EQ(json.back(), '}');
  // Balanced braces (crude but effective structural check).
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  std::filesystem::remove(path);
}

TEST_F(VaTest, ExportersFailOnBadPath) {
  EXPECT_TRUE(
      ExportClusterMapCsv("/nonexistent/dir/x.csv", result_).IsIOError());
  EXPECT_TRUE(
      ExportTimeHistogramCsv("/nonexistent/dir/x.csv", result_, 4)
          .IsIOError());
  EXPECT_TRUE(ExportGeoJson("/nonexistent/dir/x.csv", result_).IsIOError());
}

TEST_F(VaTest, AsciiMapShowsClusters) {
  const std::string map = RenderAsciiMap(result_, 80, 24);
  // 24 lines of 80 chars.
  EXPECT_EQ(map.size(), 24u * 81u);
  EXPECT_NE(map.find('A'), std::string::npos);
  EXPECT_NE(map.find('B'), std::string::npos);
}

TEST_F(VaTest, AsciiHistogramRendersBins) {
  const std::string hist = RenderAsciiHistogram(result_, 6, 40);
  size_t lines = 0;
  for (char c : hist) lines += (c == '\n');
  EXPECT_EQ(lines, 6u);
}

TEST_F(VaTest, EmptyResultRendersGracefully) {
  core::S2TResult empty;
  const TimeHistogram h = BuildTimeHistogram(empty, 5);
  EXPECT_TRUE(h.counts.empty());
  EXPECT_EQ(RenderAsciiHistogram(empty, 5, 40), "(empty)\n");
}

}  // namespace
}  // namespace hermes::va
