#include <gtest/gtest.h>

#include <cmath>

#include "common/mathutil.h"
#include "datagen/noise.h"
#include "rtree/str_bulk_load.h"
#include "storage/env.h"
#include "voting/voting.h"

namespace hermes::voting {
namespace {

traj::Trajectory Line(traj::ObjectId id, double y, double t0, double length,
                      double speed, double dt) {
  traj::Trajectory t(id);
  double x = 0.0, now = t0;
  while (x <= length) {
    EXPECT_TRUE(t.Append({x, y, now}).ok());
    x += speed * dt;
    now += dt;
  }
  return t;
}

class VotingTest : public ::testing::Test {
 protected:
  VotingParams params_ = {/*sigma=*/50.0, /*cutoff_sigmas=*/3.0,
                          /*min_overlap_ratio=*/0.5};
};

TEST_F(VotingTest, SingleTrajectoryGetsZeroVotes) {
  traj::TrajectoryStore store;
  ASSERT_TRUE(store.Add(Line(1, 0, 0, 1000, 10, 10)).ok());
  auto result = ComputeVotingNaive(store, params_);
  ASSERT_TRUE(result.ok());
  for (double v : result->votes[0]) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST_F(VotingTest, TwoCoMovingTrajectoriesVoteForEachOther) {
  traj::TrajectoryStore store;
  ASSERT_TRUE(store.Add(Line(1, 0, 0, 1000, 10, 10)).ok());
  ASSERT_TRUE(store.Add(Line(2, 25, 0, 1000, 10, 10)).ok());  // 25m apart.
  auto result = ComputeVotingNaive(store, params_);
  ASSERT_TRUE(result.ok());
  const double expected = GaussianKernel(25.0, 50.0);
  for (size_t tid = 0; tid < 2; ++tid) {
    for (double v : result->votes[tid]) {
      EXPECT_NEAR(v, expected, 0.02);
    }
  }
}

TEST_F(VotingTest, TemporallyDisjointNeverVote) {
  traj::TrajectoryStore store;
  ASSERT_TRUE(store.Add(Line(1, 0, 0, 500, 10, 10)).ok());
  ASSERT_TRUE(store.Add(Line(2, 0, 10000, 500, 10, 10)).ok());  // Same path,
                                                                // hours later.
  auto result = ComputeVotingNaive(store, params_);
  ASSERT_TRUE(result.ok());
  for (size_t tid = 0; tid < 2; ++tid) {
    for (double v : result->votes[tid]) EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST_F(VotingTest, BeyondCutoffContributesZero) {
  traj::TrajectoryStore store;
  ASSERT_TRUE(store.Add(Line(1, 0, 0, 1000, 10, 10)).ok());
  ASSERT_TRUE(store.Add(Line(2, 200, 0, 1000, 10, 10)).ok());  // 4 sigma.
  auto result = ComputeVotingNaive(store, params_);
  ASSERT_TRUE(result.ok());
  for (double v : result->votes[0]) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST_F(VotingTest, VotesScaleWithLaneCardinality) {
  // 5 co-moving lanes 20m apart: middle lane collects the most votes.
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      5, 1, 20.0, 1000.0, 10.0, 10.0, /*seed=*/1, /*jitter=*/0.0);
  auto result = ComputeVotingNaive(store, params_);
  ASSERT_TRUE(result.ok());
  const double middle = result->MeanVoting(2);
  const double edge = result->MeanVoting(0);
  EXPECT_GT(middle, edge);
  EXPECT_GT(middle, 2.0);  // Four voters, all within 40m.
}

TEST_F(VotingTest, IndexedMatchesNaiveExactly) {
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      4, 3, 60.0, 800.0, 10.0, 10.0, /*seed=*/5, /*jitter=*/3.0);
  auto naive = ComputeVotingNaive(store, params_);
  ASSERT_TRUE(naive.ok());

  auto env = storage::Env::NewMemEnv();
  auto index = rtree::BuildSegmentIndex(env.get(), "v.idx", store);
  ASSERT_TRUE(index.ok());
  auto indexed = ComputeVotingIndexed(store, **index, params_);
  ASSERT_TRUE(indexed.ok());

  ASSERT_EQ(naive->votes.size(), indexed->votes.size());
  for (size_t tid = 0; tid < naive->votes.size(); ++tid) {
    ASSERT_EQ(naive->votes[tid].size(), indexed->votes[tid].size());
    for (size_t i = 0; i < naive->votes[tid].size(); ++i) {
      EXPECT_NEAR(naive->votes[tid][i], indexed->votes[tid][i], 1e-9)
          << "tid=" << tid << " seg=" << i;
    }
  }
}

TEST_F(VotingTest, IndexPrunesCandidatePairs) {
  // Spread lanes far apart: the index must evaluate far fewer pairs.
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      8, 2, 5000.0, 800.0, 10.0, 10.0, /*seed=*/9, /*jitter=*/1.0);
  auto naive = ComputeVotingNaive(store, params_);
  ASSERT_TRUE(naive.ok());
  auto env = storage::Env::NewMemEnv();
  auto index = rtree::BuildSegmentIndex(env.get(), "p.idx", store);
  ASSERT_TRUE(index.ok());
  auto indexed = ComputeVotingIndexed(store, **index, params_);
  ASSERT_TRUE(indexed.ok());
  EXPECT_LT(indexed->pairs_evaluated, naive->pairs_evaluated / 4);
}

TEST_F(VotingTest, ConvenienceWrapperWorks) {
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      2, 2, 30.0, 500.0, 10.0, 10.0, /*seed=*/3, /*jitter=*/1.0);
  auto result = ComputeVoting(store, params_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->votes.size(), 4u);
  EXPECT_GT(result->TotalVoting(0), 0.0);
}

TEST_F(VotingTest, RejectsNonPositiveSigma) {
  traj::TrajectoryStore store;
  ASSERT_TRUE(store.Add(Line(1, 0, 0, 100, 10, 10)).ok());
  VotingParams bad = params_;
  bad.sigma = 0.0;
  EXPECT_TRUE(ComputeVotingNaive(store, bad).status().IsInvalidArgument());
  auto env = storage::Env::NewMemEnv();
  auto index = rtree::BuildSegmentIndex(env.get(), "bad.idx", store);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(
      ComputeVotingIndexed(store, **index, bad).status().IsInvalidArgument());
}

TEST_F(VotingTest, VoteForRespectsOverlapRatio) {
  // Other trajectory only covers 30% of the segment's lifespan.
  traj::Trajectory other(2);
  ASSERT_TRUE(other.Append({0, 10, 0}).ok());
  ASSERT_TRUE(other.Append({30, 10, 3}).ok());
  geom::Segment3D seg({0, 0, 0}, {100, 0, 10});
  VotingParams strict = params_;
  strict.min_overlap_ratio = 0.5;
  EXPECT_DOUBLE_EQ(VoteFor(seg, other, strict), 0.0);
  VotingParams lax = params_;
  lax.min_overlap_ratio = 0.2;
  EXPECT_GT(VoteFor(seg, other, lax), 0.0);
}

TEST_F(VotingTest, MeanAndTotalVotingConsistent) {
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      3, 1, 25.0, 400.0, 10.0, 10.0, /*seed=*/2, /*jitter=*/0.5);
  auto result = ComputeVotingNaive(store, params_);
  ASSERT_TRUE(result.ok());
  for (size_t tid = 0; tid < 3; ++tid) {
    const double total = result->TotalVoting(tid);
    const double mean = result->MeanVoting(tid);
    EXPECT_NEAR(total,
                mean * static_cast<double>(result->votes[tid].size()), 1e-9);
  }
}

TEST_F(VotingTest, ParallelMatchesSerialExactly) {
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      4, 3, 60.0, 800.0, 10.0, 10.0, /*seed=*/5, /*jitter=*/3.0);
  auto env = storage::Env::NewMemEnv();
  auto index = rtree::BuildSegmentIndex(env.get(), "par.idx", store);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE((*index)->Flush().ok());
  auto serial = ComputeVotingIndexed(store, **index, params_);
  ASSERT_TRUE(serial.ok());

  for (size_t threads : {1u, 2u, 4u, 7u}) {
    auto parallel =
        ComputeVotingParallel(store, env.get(), "par.idx", params_, threads);
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads;
    ASSERT_EQ(parallel->votes.size(), serial->votes.size());
    for (size_t tid = 0; tid < serial->votes.size(); ++tid) {
      for (size_t i = 0; i < serial->votes[tid].size(); ++i) {
        EXPECT_NEAR(parallel->votes[tid][i], serial->votes[tid][i], 1e-12);
      }
    }
    EXPECT_EQ(parallel->pairs_evaluated, serial->pairs_evaluated);
  }
}

TEST_F(VotingTest, ParallelValidatesArguments) {
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      2, 2, 60.0, 400.0, 10.0, 10.0, /*seed=*/5, /*jitter=*/1.0);
  auto env = storage::Env::NewMemEnv();
  EXPECT_TRUE(ComputeVotingParallel(store, env.get(), "missing.idx", params_,
                                    2)
                  .status()
                  .IsNotFound());
  auto index = rtree::BuildSegmentIndex(env.get(), "ok.idx", store);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE((*index)->Flush().ok());
  EXPECT_TRUE(ComputeVotingParallel(store, env.get(), "ok.idx", params_, 0)
                  .status()
                  .IsInvalidArgument());
}

// Sigma sweep: larger bandwidth -> strictly more voting mass.
class VotingSigmaSweep : public ::testing::TestWithParam<double> {};

TEST_P(VotingSigmaSweep, MonotoneInSigma) {
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      3, 2, 40.0, 600.0, 10.0, 10.0, /*seed=*/4, /*jitter=*/1.0);
  VotingParams narrow{GetParam(), 3.0, 0.5};
  VotingParams wide{GetParam() * 2.0, 3.0, 0.5};
  auto a = ComputeVotingNaive(store, narrow);
  auto b = ComputeVotingNaive(store, wide);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  double total_a = 0.0, total_b = 0.0;
  for (size_t tid = 0; tid < store.NumTrajectories(); ++tid) {
    total_a += a->TotalVoting(tid);
    total_b += b->TotalVoting(tid);
  }
  EXPECT_GE(total_b, total_a);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, VotingSigmaSweep,
                         ::testing::Values(20.0, 40.0, 80.0, 160.0));

}  // namespace
}  // namespace hermes::voting
