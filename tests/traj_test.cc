#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "traj/distance.h"
#include "traj/simplify.h"
#include "traj/sub_trajectory.h"
#include "traj/trajectory.h"
#include "traj/trajectory_store.h"

namespace hermes::traj {
namespace {

Trajectory Line(ObjectId id, double x0, double y0, double t0, double x1,
                double y1, double t1, int samples) {
  Trajectory t(id);
  for (int i = 0; i < samples; ++i) {
    const double u = static_cast<double>(i) / (samples - 1);
    EXPECT_TRUE(
        t.Append({x0 + (x1 - x0) * u, y0 + (y1 - y0) * u, t0 + (t1 - t0) * u})
            .ok());
  }
  return t;
}

// ---------------------------------------------------------------------------
// Trajectory
// ---------------------------------------------------------------------------

TEST(TrajectoryTest, AppendEnforcesMonotoneTime) {
  Trajectory t(1);
  EXPECT_TRUE(t.Append({0, 0, 0}).ok());
  EXPECT_TRUE(t.Append({1, 0, 1}).ok());
  EXPECT_TRUE(t.Append({2, 0, 1}).IsInvalidArgument());  // Equal time.
  EXPECT_TRUE(t.Append({2, 0, 0.5}).IsInvalidArgument());
  EXPECT_EQ(t.size(), 2u);
}

TEST(TrajectoryTest, AppendRejectsNonFinite) {
  Trajectory t(1);
  EXPECT_TRUE(t.Append({NAN, 0, 0}).IsInvalidArgument());
  EXPECT_TRUE(t.Append({0, INFINITY, 0}).IsInvalidArgument());
}

TEST(TrajectoryTest, BasicAccessors) {
  Trajectory t = Line(7, 0, 0, 10, 100, 0, 20, 11);
  EXPECT_EQ(t.object_id(), 7u);
  EXPECT_EQ(t.size(), 11u);
  EXPECT_EQ(t.NumSegments(), 10u);
  EXPECT_DOUBLE_EQ(t.StartTime(), 10.0);
  EXPECT_DOUBLE_EQ(t.EndTime(), 20.0);
  EXPECT_DOUBLE_EQ(t.Duration(), 10.0);
  EXPECT_NEAR(t.SpatialLength(), 100.0, 1e-9);
}

TEST(TrajectoryTest, SegmentAtGeometry) {
  Trajectory t = Line(1, 0, 0, 0, 10, 0, 10, 11);
  const geom::Segment3D s = t.SegmentAt(3);
  EXPECT_NEAR(s.a.x, 3.0, 1e-9);
  EXPECT_NEAR(s.b.x, 4.0, 1e-9);
  EXPECT_NEAR(s.duration(), 1.0, 1e-9);
}

TEST(TrajectoryTest, PositionAtInterpolates) {
  Trajectory t = Line(1, 0, 0, 0, 10, 20, 10, 2);
  auto p = t.PositionAt(5.0);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 5.0, 1e-9);
  EXPECT_NEAR(p->y, 10.0, 1e-9);
}

TEST(TrajectoryTest, PositionAtOutsideLifespan) {
  Trajectory t = Line(1, 0, 0, 0, 10, 0, 10, 2);
  EXPECT_FALSE(t.PositionAt(-1.0).has_value());
  EXPECT_FALSE(t.PositionAt(11.0).has_value());
  EXPECT_TRUE(t.PositionAt(0.0).has_value());
  EXPECT_TRUE(t.PositionAt(10.0).has_value());
}

TEST(TrajectoryTest, BoundsCoverSamples) {
  Trajectory t = Line(1, -5, 3, 2, 15, -7, 12, 5);
  const geom::Mbb3D b = t.Bounds();
  EXPECT_DOUBLE_EQ(b.min_x, -5.0);
  EXPECT_DOUBLE_EQ(b.max_x, 15.0);
  EXPECT_DOUBLE_EQ(b.min_y, -7.0);
  EXPECT_DOUBLE_EQ(b.max_y, 3.0);
  EXPECT_DOUBLE_EQ(b.min_t, 2.0);
  EXPECT_DOUBLE_EQ(b.max_t, 12.0);
}

TEST(TrajectoryTest, SliceInterior) {
  Trajectory t = Line(1, 0, 0, 0, 10, 0, 10, 11);
  const Trajectory s = t.Slice(2.5, 7.5);
  ASSERT_GE(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.StartTime(), 2.5);
  EXPECT_DOUBLE_EQ(s.EndTime(), 7.5);
  EXPECT_NEAR(s.front().x, 2.5, 1e-9);  // Interpolated entry.
  EXPECT_NEAR(s.back().x, 7.5, 1e-9);   // Interpolated exit.
  EXPECT_TRUE(s.Validate().ok());
}

TEST(TrajectoryTest, SliceCoveringWholeLifespan) {
  Trajectory t = Line(1, 0, 0, 0, 10, 0, 10, 11);
  const Trajectory s = t.Slice(-100, 100);
  EXPECT_EQ(s.size(), t.size());
  EXPECT_DOUBLE_EQ(s.StartTime(), 0.0);
  EXPECT_DOUBLE_EQ(s.EndTime(), 10.0);
}

TEST(TrajectoryTest, SliceDisjointIsEmpty) {
  Trajectory t = Line(1, 0, 0, 0, 10, 0, 10, 11);
  EXPECT_TRUE(t.Slice(20, 30).empty());
  EXPECT_TRUE(t.Slice(-10, -5).empty());
}

TEST(TrajectoryTest, SliceAlignsWithSampleTimes) {
  Trajectory t = Line(1, 0, 0, 0, 10, 0, 10, 11);
  const Trajectory s = t.Slice(3.0, 7.0);
  EXPECT_DOUBLE_EQ(s.StartTime(), 3.0);
  EXPECT_DOUBLE_EQ(s.EndTime(), 7.0);
  EXPECT_EQ(s.size(), 5u);  // 3,4,5,6,7 (boundaries are sample times).
  EXPECT_TRUE(s.Validate().ok());
}

TEST(TrajectoryTest, SlicePreservesPositions) {
  Trajectory t = Line(1, 0, 0, 0, 100, 50, 10, 21);
  const Trajectory s = t.Slice(2.3, 8.7);
  for (const auto& p : s.samples()) {
    auto orig = t.PositionAt(p.t);
    ASSERT_TRUE(orig.has_value());
    EXPECT_NEAR(p.x, orig->x, 1e-9);
    EXPECT_NEAR(p.y, orig->y, 1e-9);
  }
}

TEST(TrajectoryTest, ResampleUniformGrid) {
  Trajectory t = Line(1, 0, 0, 0, 10, 0, 10, 3);
  auto r = t.Resample(2.5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);  // 0, 2.5, 5, 7.5, 10.
  EXPECT_DOUBLE_EQ(r->EndTime(), 10.0);
}

TEST(TrajectoryTest, ResampleRejectsBadArgs) {
  Trajectory t = Line(1, 0, 0, 0, 10, 0, 10, 3);
  EXPECT_FALSE(t.Resample(0.0).ok());
  Trajectory single(1);
  ASSERT_TRUE(single.Append({0, 0, 0}).ok());
  EXPECT_FALSE(single.Resample(1.0).ok());
}

TEST(TrajectoryTest, ValidateDetectsCorruption) {
  Trajectory t = Line(1, 0, 0, 0, 10, 0, 10, 3);
  EXPECT_TRUE(t.Validate().ok());
}

// ---------------------------------------------------------------------------
// SubTrajectory
// ---------------------------------------------------------------------------

TEST(SubTrajectoryTest, AccessorsAndToString) {
  SubTrajectory st;
  st.id = 5;
  st.object_id = 9;
  st.points = Line(9, 0, 0, 10, 10, 0, 20, 5);
  st.mean_voting = 2.5;
  EXPECT_DOUBLE_EQ(st.StartTime(), 10.0);
  EXPECT_DOUBLE_EQ(st.EndTime(), 20.0);
  EXPECT_DOUBLE_EQ(st.Duration(), 10.0);
  EXPECT_NE(st.ToString().find("sub#5"), std::string::npos);
}

TEST(SubTrajectoryTest, TrimToWindowKeepsMetadata) {
  SubTrajectory st;
  st.id = 3;
  st.source_trajectory = 8;
  st.mean_voting = 1.5;
  st.points = Line(2, 0, 0, 0, 10, 0, 10, 11);
  const SubTrajectory trimmed = TrimToWindow(st, 2.0, 6.0);
  EXPECT_EQ(trimmed.id, 3u);
  EXPECT_EQ(trimmed.source_trajectory, 8u);
  EXPECT_DOUBLE_EQ(trimmed.mean_voting, 1.5);
  EXPECT_DOUBLE_EQ(trimmed.StartTime(), 2.0);
  EXPECT_DOUBLE_EQ(trimmed.EndTime(), 6.0);
}

TEST(SubTrajectoryTest, TrimToDisjointWindowEmpty) {
  SubTrajectory st;
  st.points = Line(2, 0, 0, 0, 10, 0, 10, 11);
  EXPECT_TRUE(TrimToWindow(st, 100, 200).points.empty());
}

// ---------------------------------------------------------------------------
// TrajectoryStore
// ---------------------------------------------------------------------------

TEST(StoreTest, AddAndRetrieve) {
  TrajectoryStore store;
  auto id = store.Add(Line(1, 0, 0, 0, 10, 0, 10, 5));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  EXPECT_EQ(store.NumTrajectories(), 1u);
  EXPECT_EQ(store.NumPoints(), 5u);
  EXPECT_EQ(store.NumSegments(), 4u);
  EXPECT_EQ(store.Get(0).object_id(), 1u);
}

TEST(StoreTest, RejectsEmptyTrajectory) {
  TrajectoryStore store;
  EXPECT_FALSE(store.Add(Trajectory(1)).ok());
}

TEST(StoreTest, TrajectoriesOfGroupsByObject) {
  TrajectoryStore store;
  ASSERT_TRUE(store.Add(Line(1, 0, 0, 0, 1, 0, 1, 2)).ok());
  ASSERT_TRUE(store.Add(Line(2, 0, 0, 0, 1, 0, 1, 2)).ok());
  ASSERT_TRUE(store.Add(Line(1, 0, 0, 2, 1, 0, 3, 2)).ok());
  EXPECT_EQ(store.TrajectoriesOf(1).size(), 2u);
  EXPECT_EQ(store.TrajectoriesOf(2).size(), 1u);
  EXPECT_TRUE(store.TrajectoriesOf(99).empty());
}

TEST(StoreTest, TimeDomainAndBounds) {
  TrajectoryStore store;
  ASSERT_TRUE(store.Add(Line(1, 0, 0, 5, 10, 0, 15, 3)).ok());
  ASSERT_TRUE(store.Add(Line(2, -5, 2, 0, 3, 9, 8, 3)).ok());
  const auto [t0, t1] = store.TimeDomain();
  EXPECT_DOUBLE_EQ(t0, 0.0);
  EXPECT_DOUBLE_EQ(t1, 15.0);
  const geom::Mbb3D b = store.Bounds();
  EXPECT_DOUBLE_EQ(b.min_x, -5.0);
  EXPECT_DOUBLE_EQ(b.max_x, 10.0);
}

TEST(StoreTest, ResolveSegmentRef) {
  TrajectoryStore store;
  ASSERT_TRUE(store.Add(Line(1, 0, 0, 0, 10, 0, 10, 11)).ok());
  const geom::Segment3D s = store.Resolve({0, 4});
  EXPECT_NEAR(s.a.x, 4.0, 1e-9);
}

TEST(StoreTest, CsvRoundTrip) {
  TrajectoryStore store;
  ASSERT_TRUE(store.Add(Line(3, 0, 0, 0, 10, 5, 10, 4)).ok());
  ASSERT_TRUE(store.Add(Line(8, 2, 2, 1, 6, 6, 9, 3)).ok());
  const std::string path =
      (std::filesystem::temp_directory_path() / "hermes_store_test.csv")
          .string();
  ASSERT_TRUE(store.SaveCsv(path).ok());

  TrajectoryStore loaded;
  ASSERT_TRUE(loaded.LoadCsv(path).ok());
  EXPECT_EQ(loaded.NumTrajectories(), 2u);
  EXPECT_EQ(loaded.NumPoints(), 7u);
  std::filesystem::remove(path);
}

TEST(StoreTest, LoadCsvRejectsMalformedRows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "hermes_bad_test.csv")
          .string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("obj_id,t,x,y\n1,0,0\n", f);  // Missing a field.
    std::fclose(f);
  }
  TrajectoryStore store;
  EXPECT_TRUE(store.LoadCsv(path).IsCorruption());
  std::filesystem::remove(path);
}

TEST(StoreTest, LoadCsvMissingFile) {
  TrajectoryStore store;
  EXPECT_TRUE(store.LoadCsv("/nonexistent/nowhere.csv").IsIOError());
}

// ---------------------------------------------------------------------------
// Time-aware distance
// ---------------------------------------------------------------------------

TEST(DistanceTest, ParallelLanesConstant) {
  Trajectory a = Line(1, 0, 0, 0, 100, 0, 100, 11);
  Trajectory b = Line(2, 0, 30, 0, 100, 30, 100, 11);
  const TimeAwareDistance d = ComputeTimeAwareDistance(a, b);
  EXPECT_TRUE(d.Coexist());
  EXPECT_NEAR(d.avg, 30.0, 1e-6);
  EXPECT_NEAR(d.min, 30.0, 1e-6);
  EXPECT_DOUBLE_EQ(d.overlap, 100.0);
  EXPECT_DOUBLE_EQ(d.overlap_ratio, 1.0);
}

TEST(DistanceTest, DisjointLifespansInfinite) {
  Trajectory a = Line(1, 0, 0, 0, 100, 0, 10, 5);
  Trajectory b = Line(2, 0, 0, 20, 100, 0, 30, 5);
  const TimeAwareDistance d = ComputeTimeAwareDistance(a, b);
  EXPECT_FALSE(d.Coexist());
  EXPECT_TRUE(std::isinf(d.avg));
}

TEST(DistanceTest, SamePathStaggeredInTimeIsFar) {
  // Same spatial path, shifted by half the lifespan: spatially identical
  // but NOT co-moving. The time-aware distance must see a large average.
  Trajectory a = Line(1, 0, 0, 0, 1000, 0, 100, 21);
  Trajectory b = Line(2, 0, 0, 50, 1000, 0, 150, 21);
  const TimeAwareDistance d = ComputeTimeAwareDistance(a, b);
  EXPECT_TRUE(d.Coexist());
  // During the shared window [50, 100], b is always 500 m behind a.
  EXPECT_NEAR(d.avg, 500.0, 1.0);
  EXPECT_DOUBLE_EQ(d.overlap, 50.0);
  EXPECT_DOUBLE_EQ(d.overlap_ratio, 0.5);
}

TEST(DistanceTest, SymmetricInArguments) {
  Trajectory a = Line(1, 0, 0, 0, 80, 40, 60, 13);
  Trajectory b = Line(2, 10, -5, 10, 60, 70, 90, 9);
  const TimeAwareDistance ab = ComputeTimeAwareDistance(a, b);
  const TimeAwareDistance ba = ComputeTimeAwareDistance(b, a);
  EXPECT_NEAR(ab.avg, ba.avg, 1e-9);
  EXPECT_NEAR(ab.min, ba.min, 1e-9);
  EXPECT_NEAR(ab.overlap, ba.overlap, 1e-12);
}

TEST(DistanceTest, IdentityIsZero) {
  Trajectory a = Line(1, 0, 0, 0, 80, 40, 60, 13);
  const TimeAwareDistance d = ComputeTimeAwareDistance(a, a);
  EXPECT_NEAR(d.avg, 0.0, 1e-9);
  EXPECT_NEAR(d.min, 0.0, 1e-9);
}

TEST(DistanceTest, ClusteringDistanceEnforcesOverlap) {
  Trajectory a = Line(1, 0, 0, 0, 1000, 0, 100, 21);
  Trajectory b = Line(2, 0, 10, 90, 1000, 10, 190, 21);  // 10% overlap.
  EXPECT_TRUE(std::isinf(ClusteringDistance(a, b, 0.5)));
  EXPECT_TRUE(std::isfinite(ClusteringDistance(a, b, 0.05)));
}

TEST(DistanceTest, SimilarityInUnitRange) {
  Trajectory a = Line(1, 0, 0, 0, 100, 0, 100, 11);
  Trajectory b = Line(2, 0, 20, 0, 100, 20, 100, 11);
  const double sim = TimeAwareSimilarity(a, b, 50.0);
  EXPECT_GT(sim, 0.0);
  EXPECT_LE(sim, 1.0);
  // Identical trajectories: similarity 1.
  EXPECT_NEAR(TimeAwareSimilarity(a, a, 50.0), 1.0, 1e-9);
  // Never co-existing: similarity 0.
  Trajectory c = Line(3, 0, 0, 500, 100, 0, 600, 11);
  EXPECT_DOUBLE_EQ(TimeAwareSimilarity(a, c, 50.0), 0.0);
}

TEST(DistanceTest, CloserLanesMoreSimilar) {
  Trajectory a = Line(1, 0, 0, 0, 100, 0, 100, 11);
  Trajectory near = Line(2, 0, 10, 0, 100, 10, 100, 11);
  Trajectory far = Line(3, 0, 60, 0, 100, 60, 100, 11);
  EXPECT_GT(TimeAwareSimilarity(a, near, 30.0),
            TimeAwareSimilarity(a, far, 30.0));
}

// ---------------------------------------------------------------------------
// Simplification & motion profiles
// ---------------------------------------------------------------------------

TEST(SimplifyTest, StraightLineCollapsesToEndpoints) {
  Trajectory t = Line(1, 0, 0, 0, 1000, 0, 100, 51);
  auto s = Simplify(t, 5.0);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 2u);
  EXPECT_EQ(s->front(), t.front());
  EXPECT_EQ(s->back(), t.back());
}

TEST(SimplifyTest, CornerIsPreserved) {
  Trajectory t(1);
  for (int i = 0; i <= 10; ++i) {
    ASSERT_TRUE(t.Append({i * 100.0, 0.0, i * 10.0}).ok());
  }
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(t.Append({1000.0, i * 100.0, 100.0 + i * 10.0}).ok());
  }
  auto s = Simplify(t, 5.0);
  ASSERT_TRUE(s.ok());
  ASSERT_GE(s->size(), 3u);
  // The corner sample (1000, 0) must survive.
  bool corner = false;
  for (const auto& p : s->samples()) {
    if (p.x == 1000.0 && p.y == 0.0) corner = true;
  }
  EXPECT_TRUE(corner);
}

TEST(SimplifyTest, TemporalGuardKeepsSpeedChanges) {
  // Spatially straight but the object stops in the middle: a pure spatial
  // simplifier would drop everything; the temporal guard must keep the
  // dwell points (the interpolated position at their time is far off).
  Trajectory t(1);
  ASSERT_TRUE(t.Append({0, 0, 0}).ok());
  ASSERT_TRUE(t.Append({500, 0, 50}).ok());
  ASSERT_TRUE(t.Append({500.1, 0, 500}).ok());  // Long dwell.
  ASSERT_TRUE(t.Append({1000, 0, 550}).ok());
  auto s = Simplify(t, 10.0);
  ASSERT_TRUE(s.ok());
  EXPECT_GE(s->size(), 3u);  // The dwell boundary samples survive.
}

TEST(SimplifyTest, ErrorBoundHolds) {
  // Every original sample must be within epsilon of the simplified
  // trajectory's synchronized position.
  Trajectory t(1);
  for (int i = 0; i <= 60; ++i) {
    const double x = i * 20.0;
    const double y = 40.0 * std::sin(i * 0.4);
    ASSERT_TRUE(t.Append({x, y, i * 5.0}).ok());
  }
  const double eps = 15.0;
  auto s = Simplify(t, eps);
  ASSERT_TRUE(s.ok());
  EXPECT_LT(s->size(), t.size());
  for (const auto& p : t.samples()) {
    auto at = s->PositionAt(p.t);
    ASSERT_TRUE(at.has_value());
    EXPECT_LE(geom::Distance(p.xy(), *at), eps + 1e-9);
  }
}

TEST(SimplifyTest, RejectsBadEpsilon) {
  Trajectory t = Line(1, 0, 0, 0, 10, 0, 10, 5);
  EXPECT_FALSE(Simplify(t, 0.0).ok());
  EXPECT_FALSE(Simplify(t, -1.0).ok());
}

TEST(SimplifyTest, TinyTrajectoriesUnchanged) {
  Trajectory t = Line(1, 0, 0, 0, 10, 0, 10, 2);
  auto s = Simplify(t, 1.0);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 2u);
}

TEST(MotionProfileTest, SpeedsAndHeadings) {
  Trajectory t(1);
  ASSERT_TRUE(t.Append({0, 0, 0}).ok());
  ASSERT_TRUE(t.Append({100, 0, 10}).ok());   // East at 10 m/s.
  ASSERT_TRUE(t.Append({100, 50, 15}).ok());  // North at 10 m/s.
  const MotionProfile p = ComputeMotionProfile(t);
  ASSERT_EQ(p.speeds.size(), 2u);
  EXPECT_NEAR(p.speeds[0], 10.0, 1e-9);
  EXPECT_NEAR(p.speeds[1], 10.0, 1e-9);
  EXPECT_NEAR(p.headings[0], 0.0, 1e-9);
  EXPECT_NEAR(p.headings[1], M_PI / 2, 1e-9);
  EXPECT_NEAR(p.MeanSpeed(), 10.0, 1e-9);
  EXPECT_NEAR(p.MaxSpeed(), 10.0, 1e-9);
}

TEST(MotionProfileTest, TotalTurningOfLoop) {
  // A full circle turns by ~2*pi.
  Trajectory t(1);
  for (int i = 0; i <= 36; ++i) {
    const double a = 2 * M_PI * i / 36;
    ASSERT_TRUE(
        t.Append({100 * std::cos(a), 100 * std::sin(a), i * 10.0}).ok());
  }
  // 36 segments -> 35 interior heading changes of 2*pi/36 each.
  EXPECT_NEAR(TotalTurning(t), 2 * M_PI * 35.0 / 36.0, 1e-6);
  EXPECT_TRUE(LooksLikeLoop(t));
}

TEST(MotionProfileTest, StraightPathIsNotALoop) {
  Trajectory t = Line(1, 0, 0, 0, 1000, 10, 100, 21);
  EXPECT_NEAR(TotalTurning(t), 0.0, 1e-6);
  EXPECT_FALSE(LooksLikeLoop(t));
}

// Triangle-ish property on co-temporal trajectories: the synchronized
// average distance is a proper metric when lifespans coincide.
class DistanceTriangle : public ::testing::TestWithParam<double> {};

TEST_P(DistanceTriangle, HoldsForCotemporalLanes) {
  const double gap = GetParam();
  Trajectory a = Line(1, 0, 0, 0, 100, 0, 100, 11);
  Trajectory b = Line(2, 0, gap, 0, 100, gap, 100, 11);
  Trajectory c = Line(3, 0, 2 * gap, 0, 100, 2 * gap, 100, 11);
  const double ab = ComputeTimeAwareDistance(a, b).avg;
  const double bc = ComputeTimeAwareDistance(b, c).avg;
  const double ac = ComputeTimeAwareDistance(a, c).avg;
  EXPECT_LE(ac, ab + bc + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Gaps, DistanceTriangle,
                         ::testing::Values(5.0, 20.0, 75.0, 200.0));

}  // namespace
}  // namespace hermes::traj
