// Wire-protocol front end: framing, the poll-based event loop, and the
// per-connection session workers.
//
// The headline test is the PR's acceptance criterion: socket clients —
// including pipelined and prepared ($N) statements — receive responses
// *bit-identical* to the same statements through an in-process
// `ClientSession`. The file also tortures the framing layer (malformed
// frames, oversize frames, a deliberately dribbling client writing a few
// bytes at a time) and runs under the TSan CI leg, making it the
// data-race gate for the loop/worker seam.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "datagen/maritime.h"
#include "net/client.h"
#include "net/net_server.h"
#include "net/wire.h"
#include "service/client_session.h"
#include "service/server.h"
#include "sql/value.h"

namespace hermes::net {
namespace {

using service::Server;
using service::ServerOptions;
using sql::Table;
using sql::Value;

traj::TrajectoryStore MakeShips(size_t num_ships) {
  datagen::MaritimeScenarioParams p;
  p.num_ships = num_ships;
  // Coarser sampling than service_test: S2T statements are quadratic in
  // points, and this suite re-runs them across pipelined connections
  // under TSan.
  p.sample_dt = 600.0;
  p.seed = 13;
  auto s = datagen::GenerateMaritimeScenario(p);
  return std::move(s->store);
}

struct Rig {
  std::unique_ptr<Server> server;
  std::unique_ptr<NetServer> net;

  explicit Rig(NetServerOptions net_opts = {}) {
    server = std::move(Server::Start(ServerOptions{})).value();
    // 6 ships keeps the S2T-heavy statements affordable under TSan while
    // still producing multi-cluster, multi-row results to compare.
    EXPECT_TRUE(server->RegisterStore("ships", MakeShips(6)).ok());
    net = std::move(NetServer::Start(server.get(), net_opts)).value();
  }

  std::unique_ptr<Client> Connect() {
    return std::move(Client::Connect("127.0.0.1", net->port())).value();
  }
};

/// Strict bit-for-bit table equality: column names, declared types, and
/// every typed cell (Int(2) != Double(2.0)).
void ExpectSameTable(const Table& got, const Table& want) {
  ASSERT_EQ(got.columns.size(), want.columns.size());
  for (size_t c = 0; c < want.columns.size(); ++c) {
    EXPECT_EQ(got.columns[c].name, want.columns[c].name);
    EXPECT_EQ(got.columns[c].type, want.columns[c].type);
  }
  ASSERT_EQ(got.rows.size(), want.rows.size());
  for (size_t r = 0; r < want.rows.size(); ++r) {
    ASSERT_EQ(got.rows[r].size(), want.rows[r].size());
    for (size_t c = 0; c < want.rows[r].size(); ++c) {
      EXPECT_TRUE(got.rows[r][c] == want.rows[r][c])
          << "row " << r << " col " << c;
    }
  }
}

// ---------------------------------------------------------------------------
// Wire encode/decode round-trips
// ---------------------------------------------------------------------------

TEST(WireTest, RequestRoundTrips) {
  std::string buf;
  AppendExecuteFrame("SELECT STATS(SHIPS);", &buf);
  AppendPrepareFrame(7, "SELECT RANGE($1, $2, $3);", &buf);
  AppendBindExecuteFrame(
      7, {Value::Str("ships"), Value::Double(0.0), Value::Int(42)}, &buf);
  AppendFlushFrame(&buf);
  AppendPingFrame(&buf);

  size_t off = 0;
  std::string body;
  ASSERT_EQ(ScanFrame(buf, &off, &body), FrameScan::kFrame);
  auto exec = DecodeRequest(body);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->op, Opcode::kExecute);
  EXPECT_EQ(exec->sql, "SELECT STATS(SHIPS);");

  ASSERT_EQ(ScanFrame(buf, &off, &body), FrameScan::kFrame);
  auto prep = DecodeRequest(body);
  ASSERT_TRUE(prep.ok());
  EXPECT_EQ(prep->op, Opcode::kPrepare);
  EXPECT_EQ(prep->stmt_id, 7u);
  EXPECT_EQ(prep->sql, "SELECT RANGE($1, $2, $3);");

  ASSERT_EQ(ScanFrame(buf, &off, &body), FrameScan::kFrame);
  auto bind = DecodeRequest(body);
  ASSERT_TRUE(bind.ok());
  EXPECT_EQ(bind->op, Opcode::kBindExecute);
  ASSERT_EQ(bind->binds.size(), 3u);
  EXPECT_TRUE(bind->binds[0] == Value::Str("ships"));
  EXPECT_TRUE(bind->binds[1] == Value::Double(0.0));
  EXPECT_TRUE(bind->binds[2] == Value::Int(42));

  ASSERT_EQ(ScanFrame(buf, &off, &body), FrameScan::kFrame);
  EXPECT_EQ(DecodeRequest(body)->op, Opcode::kFlush);
  ASSERT_EQ(ScanFrame(buf, &off, &body), FrameScan::kFrame);
  EXPECT_EQ(DecodeRequest(body)->op, Opcode::kPing);
  EXPECT_EQ(off, buf.size());
}

TEST(WireTest, TableAndErrorRoundTrips) {
  Table t;
  t.columns = {{"name", sql::ValueType::kString},
               {"n", sql::ValueType::kInt},
               {"x", sql::ValueType::kDouble}};
  t.rows = {{Value::Str("a"), Value::Int(-5), Value::Double(1.25)},
            {Value::Null(), Value::Int(1u << 30), Value::Double(-0.5)}};
  std::string buf;
  AppendTableFrame(t, &buf);
  AppendErrorFrame(Status::NotFound("no MOD named X"), &buf);

  size_t off = 0;
  std::string body;
  ASSERT_EQ(ScanFrame(buf, &off, &body), FrameScan::kFrame);
  auto table = DecodeResponse(body);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->op, Opcode::kTable);
  ExpectSameTable(table->table, t);

  ASSERT_EQ(ScanFrame(buf, &off, &body), FrameScan::kFrame);
  auto err = DecodeResponse(body);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->op, Opcode::kError);
  EXPECT_EQ(err->code, StatusCode::kNotFound);
  EXPECT_EQ(err->message, "no MOD named X");
}

TEST(WireTest, TruncatedAndTrailingPayloadsAreMalformed) {
  std::string buf;
  AppendPrepareFrame(3, "SELECT STATS($1);", &buf);
  size_t off = 0;
  std::string body;
  ASSERT_EQ(ScanFrame(buf, &off, &body), FrameScan::kFrame);
  // Truncated: drop the last payload byte.
  EXPECT_FALSE(DecodeRequest(body.substr(0, body.size() - 1)).ok());
  // Trailing: one rider byte after a valid payload.
  EXPECT_FALSE(DecodeRequest(body + "x").ok());
  // Unknown opcode.
  EXPECT_FALSE(DecodeRequest(std::string(1, '\x7f')).ok());
}

TEST(WireTest, ScanFrameHandlesPartialAndOversize) {
  std::string buf;
  AppendPingFrame(&buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string partial = buf.substr(0, cut);
    size_t off = 0;
    std::string body;
    EXPECT_EQ(ScanFrame(partial, &off, &body), FrameScan::kNeedMore);
  }
  std::string oversize;
  PutFixed32(&oversize, kMaxFrameBytes + 1);
  oversize.push_back('\x01');
  size_t off = 0;
  std::string body;
  EXPECT_EQ(ScanFrame(oversize, &off, &body), FrameScan::kOversize);
}

// ---------------------------------------------------------------------------
// Socket integration: bit-identical to the in-process session
// ---------------------------------------------------------------------------

TEST(NetServerTest, PingAndBasicExecute) {
  Rig rig;
  auto client = rig.Connect();
  ASSERT_TRUE(client->Ping().ok());
  auto stats = client->Execute("SELECT STATS(SHIPS);");
  ASSERT_TRUE(stats.ok());
  auto embedded = rig.server->Connect()->Execute("SELECT STATS(SHIPS);");
  ASSERT_TRUE(embedded.ok());
  ExpectSameTable(*stats, *embedded);
}

TEST(NetServerTest, ErrorsMatchInProcessSessionExactly) {
  Rig rig;
  auto client = rig.Connect();
  auto embedded = rig.server->Connect();
  for (const char* sql :
       {"SELECT STATS(NOPE);", "SELECT QUT(SHIPS, 1, 2);", "garbage",
        "SET hermes.unknown = 1;"}) {
    auto got = client->Execute(sql);
    auto want = embedded->Execute(sql);
    ASSERT_FALSE(got.ok());
    ASSERT_FALSE(want.ok());
    EXPECT_EQ(got.status().code(), want.status().code()) << sql;
    EXPECT_EQ(got.status().message(), want.status().message()) << sql;
  }
  // The connection survives every statement error.
  ASSERT_TRUE(client->Ping().ok());
}

/// The acceptance test: a deterministic mutation phase (sequential, so
/// queue tickets are reproducible) compared statement-by-statement
/// against a fresh in-process run, then a concurrent pipelined read-only
/// phase over 4 connections.
TEST(NetServerTest, SocketMatchesInProcessBitForBit) {
  const std::vector<std::string> script = {
      "CREATE MOD fleet;",
      "INSERT INTO fleet VALUES (1, 0, 0, 0), (1, 300, 100, 50);",
      "INSERT INTO fleet VALUES (2, 0, 500, 500), (2, 300, 600, 550);",
      "FLUSH;",
      "SELECT STATS(FLEET);",
      "SELECT RANGE(FLEET, 0, 1000);",
      "SELECT S2T(SHIPS);",
      "SELECT S2T_MEMBERS(SHIPS, 100, 200);",
      "SELECT QUT(SHIPS, 0, 100000, 600, 2, 3, 400, 0.8);",
      "SHOW hermes.sigma;",
      "SHOW SERVICE STATS;",
  };

  // In-process reference run on its own identically-seeded server.
  std::vector<StatusOr<Table>> want;
  {
    Rig ref;
    auto session = ref.server->Connect();
    for (const auto& sql : script) want.push_back(session->Execute(sql));
  }

  Rig rig;
  auto client = rig.Connect();
  for (size_t i = 0; i < script.size(); ++i) {
    auto got = client->Execute(script[i]);
    ASSERT_EQ(got.ok(), want[i].ok()) << script[i];
    if (!got.ok()) {
      EXPECT_EQ(got.status().message(), want[i].status().message());
      continue;
    }
    if (script[i] == "SHOW SERVICE STATS;") {
      // Counter *values* vary with run history; shape must match.
      ASSERT_EQ(got->rows.size(), want[i]->rows.size());
      for (size_t r = 0; r < got->rows.size(); ++r) {
        EXPECT_TRUE(got->rows[r][0] == want[i]->rows[r][0]);
      }
      continue;
    }
    ExpectSameTable(*got, *want[i]);
  }

  // Phase 2: four connections, each pipelining the read-only statements
  // several times, all answers bit-identical to the reference.
  const std::vector<size_t> reads = {4, 5, 6, 7, 8};  // indices into script
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&rig, &script, &reads, &want] {
      auto conn = rig.Connect();
      constexpr int kRounds = 2;
      for (int round = 0; round < kRounds; ++round) {
        for (size_t idx : reads) {
          ASSERT_TRUE(conn->SendExecute(script[idx]).ok());
        }
      }
      for (int round = 0; round < kRounds; ++round) {
        for (size_t idx : reads) {
          auto got = conn->ReadTable();
          ASSERT_TRUE(got.ok()) << script[idx];
          ExpectSameTable(*got, *want[idx]);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

TEST(NetServerTest, PreparedStatementsMatchEmbeddedSession) {
  Rig rig;
  auto client = rig.Connect();

  // Embedded reference through the *service* session's Prepare (which in
  // turn must match the embedded sql::Session path — covered by
  // service_test's regression test).
  auto session = rig.server->Connect();
  auto ref = session->Prepare("SELECT RANGE($1, $2, $3);");
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(ref->Bind(1, Value::Str("ships")).ok());
  ASSERT_TRUE(ref->Bind(2, Value::Double(0)).ok());
  ASSERT_TRUE(ref->Bind(3, Value::Double(100000)).ok());
  auto want = ref->Execute();
  ASSERT_TRUE(want.ok());

  auto nparams = client->Prepare(11, "SELECT RANGE($1, $2, $3);");
  ASSERT_TRUE(nparams.ok());
  EXPECT_EQ(*nparams, 3u);
  auto got = client->BindExecute(
      11, {Value::Str("ships"), Value::Double(0), Value::Double(100000)});
  ASSERT_TRUE(got.ok());
  ExpectSameTable(*got, *want);

  // Unknown id and unbound/bad parameters surface as in-order errors.
  auto missing = client->BindExecute(99, {});
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  auto unbound = client->BindExecute(11, {Value::Str("ships")});
  ASSERT_TRUE(unbound.ok());  // previous binds persist, like embedded
  ExpectSameTable(*unbound, *want);

  // Re-preparing an id replaces the statement.
  ASSERT_TRUE(client->Prepare(11, "SELECT STATS($1);").ok());
  auto stats = client->BindExecute(11, {Value::Str("ships")});
  ASSERT_TRUE(stats.ok());
  auto stats_want = session->Execute("SELECT STATS(SHIPS);");
  ASSERT_TRUE(stats_want.ok());
  ExpectSameTable(*stats, *stats_want);
}

// ---------------------------------------------------------------------------
// Framing torture
// ---------------------------------------------------------------------------

TEST(NetServerTest, MalformedFrameGetsErrorAndConnectionSurvives) {
  Rig rig;
  auto client = rig.Connect();

  // Unknown opcode in a well-framed frame.
  std::string frame;
  PutFixed32(&frame, 1);
  frame.push_back('\x7f');
  ASSERT_TRUE(client->SendRaw(frame.data(), frame.size()).ok());
  auto resp = client->ReadResponse();
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->op, Opcode::kError);
  EXPECT_EQ(resp->code, StatusCode::kInvalidArgument);

  // Truncated payload (PREPARE with half its fields).
  frame.clear();
  std::string body;
  body.push_back(static_cast<char>(Opcode::kPrepare));
  PutFixed16(&body, 1);  // too short for stmt_id
  PutFixed32(&frame, static_cast<uint32_t>(body.size()));
  frame.append(body);
  ASSERT_TRUE(client->SendRaw(frame.data(), frame.size()).ok());
  resp = client->ReadResponse();
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->op, Opcode::kError);

  // The same connection still serves well-formed requests afterwards.
  ASSERT_TRUE(client->Ping().ok());
  auto table = client->Execute("SELECT STATS(SHIPS);");
  EXPECT_TRUE(table.ok());
}

TEST(NetServerTest, OversizeFrameClosesOnlyThatConnection) {
  NetServerOptions opts;
  opts.max_frame_bytes = 1024;
  Rig rig(opts);
  auto victim = rig.Connect();
  auto bystander = rig.Connect();

  std::string frame;
  PutFixed32(&frame, 4096);  // declared length over the 1 KiB cap
  frame.append("attack");
  ASSERT_TRUE(victim->SendRaw(frame.data(), frame.size()).ok());
  auto resp = victim->ReadResponse();
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->op, Opcode::kError);
  // After the error flushes, the server closes the poisoned stream.
  auto next = victim->ReadResponse();
  EXPECT_FALSE(next.ok());

  // An untouched connection — and new ones — keep working.
  EXPECT_TRUE(bystander->Ping().ok());
  auto fresh = rig.Connect();
  EXPECT_TRUE(fresh->Execute("SELECT STATS(SHIPS);").ok());
}

/// Dribbling client: every request byte arrives in 1–3-byte chunks
/// (forcing partial reads and frame reassembly), and responses are read
/// normally. Mirrors short-write handling on the server: tiny SO_SNDBUF
/// is not portable to force here, but the pipelined QUT/S2T responses in
/// the bit-identical test already exceed one write() burst.
TEST(NetServerTest, DribblingClientReassemblesFrames) {
  Rig rig;
  auto client = rig.Connect();

  std::string bytes;
  AppendExecuteFrame("SELECT STATS(SHIPS);", &bytes);
  AppendPingFrame(&bytes);
  AppendExecuteFrame("SELECT RANGE(SHIPS, 0, 100000);", &bytes);

  size_t off = 0;
  int step = 1;
  while (off < bytes.size()) {
    const size_t n = std::min<size_t>(static_cast<size_t>(step), bytes.size() - off);
    ASSERT_TRUE(client->SendRaw(bytes.data() + off, n).ok());
    off += n;
    step = step % 3 + 1;  // 1, 2, 3, 1, ...
  }

  auto want_stats = rig.server->Connect()->Execute("SELECT STATS(SHIPS);");
  ASSERT_TRUE(want_stats.ok());
  auto stats = client->ReadTable();
  ASSERT_TRUE(stats.ok());
  ExpectSameTable(*stats, *want_stats);
  auto pong = client->ReadResponse();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->op, Opcode::kPong);
  auto range = client->ReadTable();
  ASSERT_TRUE(range.ok());
  auto want_range =
      rig.server->Connect()->Execute("SELECT RANGE(SHIPS, 0, 100000);");
  ASSERT_TRUE(want_range.ok());
  ExpectSameTable(*range, *want_range);
}

TEST(NetServerTest, HalfCloseDrainsPipelinedRequests) {
  Rig rig;
  auto client = rig.Connect();
  constexpr int kPipelined = 8;
  for (int i = 0; i < kPipelined; ++i) {
    ASSERT_TRUE(client->SendExecute("SELECT STATS(SHIPS);").ok());
  }
  client->CloseWrite();
  // Every queued request is still answered, in order, before the server
  // closes its side.
  for (int i = 0; i < kPipelined; ++i) {
    auto got = client->ReadTable();
    ASSERT_TRUE(got.ok()) << "response " << i;
  }
  auto eof = client->ReadResponse();
  EXPECT_FALSE(eof.ok());
}

// ---------------------------------------------------------------------------
// Deadlines (both default-off: opt-in per rig / per client)
// ---------------------------------------------------------------------------

TEST(NetServerTest, IdleConnectionsAreSwept) {
  NetServerOptions opts;
  opts.idle_timeout_ms = 100;
  Rig rig(opts);
  auto client = rig.Connect();
  // A connection with traffic is not idle: the round-trip stamps
  // last_activity well inside the window.
  ASSERT_TRUE(client->Ping().ok());
  // Go quiet. The sweep expires the connection through the peer-EOF
  // path, so the client observes a clean server-side close.
  auto eof = client->ReadResponse();
  ASSERT_FALSE(eof.ok());
  EXPECT_TRUE(eof.status().IsIOError());
  // The listener is untouched: fresh connections still serve.
  auto fresh = rig.Connect();
  EXPECT_TRUE(fresh->Ping().ok());
}

TEST(NetServerTest, ClientReceiveTimeoutExpiresWithoutResponse) {
  Rig rig;
  auto client = rig.Connect();
  // A generous deadline never fires when the server answers.
  client->set_receive_timeout_ms(5000);
  ASSERT_TRUE(client->Ping().ok());
  ASSERT_TRUE(client->Execute("SELECT STATS(SHIPS);").ok());
  // No request in flight: no response will ever arrive, so the read
  // deadline is the only thing standing between us and a hung test.
  client->set_receive_timeout_ms(50);
  auto resp = client->ReadResponse();
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsIOError());
  EXPECT_NE(resp.status().message().find("timeout"), std::string::npos);
}

TEST(NetServerTest, ShutdownWithLiveConnections) {
  Rig rig;
  auto a = rig.Connect();
  auto b = rig.Connect();
  ASSERT_TRUE(a->Ping().ok());
  ASSERT_TRUE(b->Execute("SELECT STATS(SHIPS);").ok());
  rig.net->Shutdown();   // idempotent; the Rig dtor calls it again
  rig.net->Shutdown();
}

}  // namespace
}  // namespace hermes::net
