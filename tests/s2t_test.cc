#include <gtest/gtest.h>

#include <set>

#include "core/s2t_clustering.h"
#include "traj/distance.h"
#include "datagen/noise.h"
#include "rtree/str_bulk_load.h"
#include "storage/env.h"

namespace hermes::core {
namespace {

S2TParams LaneParams() {
  S2TParams p;
  p.SetSigma(30.0).SetEpsilon(60.0);
  p.segmentation.min_part_length = 3;
  p.sampling.max_representatives = 16;
  p.sampling.min_overlap_ratio = 0.5;
  // Coverage bandwidth: pieces within ~2 lane widths count as covered, so
  // greedy sampling stops after one representative per lane.
  p.sampling.sigma = 120.0;
  p.sampling.gain_stop_ratio = 0.2;
  p.clustering.min_overlap_ratio = 0.5;
  return p;
}

TEST(S2TTest, DiscoversParallelLanes) {
  // 3 lanes, 4 objects each, lanes 800m apart, objects 15m apart in lane.
  traj::TrajectoryStore store;
  for (int lane = 0; lane < 3; ++lane) {
    for (int k = 0; k < 4; ++k) {
      traj::Trajectory t(lane * 4 + k);
      for (int i = 0; i <= 30; ++i) {
        ASSERT_TRUE(
            t.Append({i * 30.0, lane * 800.0 + k * 15.0, i * 3.0}).ok());
      }
      ASSERT_TRUE(store.Add(std::move(t)).ok());
    }
  }
  S2TClustering s2t(LaneParams());
  auto result = s2t.Run(store);
  ASSERT_TRUE(result.ok());
  // Expect (close to) one cluster per lane and few outliers.
  EXPECT_GE(result->NumClusters(), 3u);
  EXPECT_LE(result->NumClusters(), 6u);
  EXPECT_LE(result->NumOutliers(), 2u);

  // All members of any single cluster must come from one lane.
  for (const auto& cluster : result->clustering.clusters) {
    std::set<int> lanes;
    for (size_t m : cluster.members) {
      lanes.insert(
          static_cast<int>(result->sub_trajectories[m].object_id) / 4);
    }
    EXPECT_EQ(lanes.size(), 1u);
  }
}

TEST(S2TTest, IsolatesNoiseAsOutliers) {
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      2, 4, 1000.0, 900.0, 10.0, 10.0, /*seed=*/5, /*jitter=*/2.0);
  // Inject random wanderers far from the lanes.
  geom::Mbb3D noise_bounds(0, 4000, 0, 2000, 9000, 90);
  ASSERT_TRUE(datagen::AddNoiseTrajectories(&store, 3, noise_bounds, 15.0,
                                            10.0, 99, 100)
                  .ok());
  S2TClustering s2t(LaneParams());
  auto result = s2t.Run(store);
  ASSERT_TRUE(result.ok());
  // Noise objects (ids >= 100) must be outliers.
  std::set<traj::ObjectId> outlier_objects;
  for (size_t o : result->clustering.outliers) {
    outlier_objects.insert(result->sub_trajectories[o].object_id);
  }
  int noise_as_outlier = 0;
  for (traj::ObjectId id = 100; id < 103; ++id) {
    noise_as_outlier += outlier_objects.count(id);
  }
  EXPECT_GE(noise_as_outlier, 2);
}

TEST(S2TTest, IndexedAndNaivePathsAgree) {
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      3, 3, 500.0, 600.0, 10.0, 10.0, /*seed=*/7, /*jitter=*/1.0);
  S2TParams params = LaneParams();
  params.use_index = true;
  S2TClustering indexed(params);
  params.use_index = false;
  S2TClustering naive(params);
  auto a = indexed.Run(store);
  auto b = naive.Run(store);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->NumClusters(), b->NumClusters());
  EXPECT_EQ(a->NumOutliers(), b->NumOutliers());
  EXPECT_EQ(a->sub_trajectories.size(), b->sub_trajectories.size());
}

TEST(S2TTest, RunWithExternalIndex) {
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      2, 3, 400.0, 500.0, 10.0, 10.0, /*seed=*/3, /*jitter=*/1.0);
  auto env = storage::Env::NewMemEnv();
  auto index = rtree::BuildSegmentIndex(env.get(), "ext.idx", store);
  ASSERT_TRUE(index.ok());
  S2TClustering s2t(LaneParams());
  auto result = s2t.RunWithIndex(store, **index);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->NumClusters(), 2u);
  EXPECT_EQ(result->timings.index_build_us, 0);  // Build not charged here.
}

TEST(S2TTest, TimingsArePopulated) {
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      2, 3, 400.0, 500.0, 10.0, 10.0, /*seed=*/3, /*jitter=*/1.0);
  S2TClustering s2t(LaneParams());
  auto result = s2t.Run(store);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->timings.voting_us, 0);
  EXPECT_GE(result->timings.TotalUs(), result->timings.voting_us);
}

TEST(S2TTest, EveryMemberWithinEpsilonOfItsRep) {
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      3, 4, 700.0, 600.0, 10.0, 10.0, /*seed=*/11, /*jitter=*/2.0);
  S2TParams params = LaneParams();
  S2TClustering s2t(params);
  auto result = s2t.Run(store);
  ASSERT_TRUE(result.ok());
  for (const auto& cluster : result->clustering.clusters) {
    const auto& rep = result->sub_trajectories[cluster.representative];
    for (size_t m : cluster.members) {
      if (m == cluster.representative) continue;
      const double d = traj::ClusteringDistance(
          result->sub_trajectories[m].points, rep.points,
          params.clustering.min_overlap_ratio);
      EXPECT_LE(d, params.clustering.epsilon + 1e-9);
    }
  }
}

TEST(S2TTest, SubTrajectoryPartitionCoversAllSegments) {
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      2, 2, 300.0, 500.0, 10.0, 10.0, /*seed=*/13, /*jitter=*/1.0);
  S2TClustering s2t(LaneParams());
  auto result = s2t.Run(store);
  ASSERT_TRUE(result.ok());
  // Count samples per source trajectory: sub-trajectories share boundary
  // samples, so sum(sizes) = traj.size + (parts-1).
  std::vector<size_t> sample_sum(store.NumTrajectories(), 0);
  std::vector<size_t> parts(store.NumTrajectories(), 0);
  for (const auto& st : result->sub_trajectories) {
    sample_sum[st.source_trajectory] += st.points.size();
    parts[st.source_trajectory] += 1;
  }
  for (traj::TrajectoryId tid = 0; tid < store.NumTrajectories(); ++tid) {
    EXPECT_EQ(sample_sum[tid], store.Get(tid).size() + parts[tid] - 1);
  }
}

TEST(S2TTest, DifferentParamsDifferentRepresentatives) {
  // The Fig. 3 scenario: two S2T runs with different bandwidths produce
  // comparable but distinct representative sets.
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      4, 3, 300.0, 800.0, 10.0, 10.0, /*seed=*/21, /*jitter=*/3.0);
  S2TParams run_a = LaneParams();
  S2TParams run_b = LaneParams();
  run_b.SetSigma(150.0).SetEpsilon(400.0);
  auto a = S2TClustering(run_a).Run(store);
  auto b = S2TClustering(run_b).Run(store);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(a->representatives.size(), 1u);
  EXPECT_GE(b->representatives.size(), 1u);
  // The wider bandwidth merges lanes: fewer or equal clusters.
  EXPECT_LE(b->NumClusters(), a->NumClusters());
}

}  // namespace
}  // namespace hermes::core
