#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "storage/env.h"
#include "storage/heap_file.h"
#include "storage/pager.h"
#include "storage/partition_manager.h"

namespace hermes::storage {
namespace {

std::string TempDir() {
  auto dir = std::filesystem::temp_directory_path() / "hermes_storage_test";
  std::filesystem::create_directories(dir);
  return dir.string();
}

// ---------------------------------------------------------------------------
// Env (parameterized over Posix and Mem implementations)
// ---------------------------------------------------------------------------

struct EnvCase {
  const char* name;
  bool posix;
};

class EnvTest : public ::testing::TestWithParam<EnvCase> {
 protected:
  void SetUp() override {
    if (GetParam().posix) {
      env_ = Env::Posix();
      prefix_ = TempDir() + "/";
    } else {
      owned_ = Env::NewMemEnv();
      env_ = owned_.get();
      prefix_ = "mem/";
      ASSERT_TRUE(env_->CreateDirs("mem").ok());
    }
  }
  std::unique_ptr<Env> owned_;
  Env* env_ = nullptr;
  std::string prefix_;
};

TEST_P(EnvTest, WriteReadRoundTrip) {
  const std::string fname = prefix_ + "roundtrip.bin";
  auto file = env_->NewRWFile(fname);
  ASSERT_TRUE(file.ok());
  const std::string payload = "hello hermes";
  ASSERT_TRUE((*file)->WriteAt(0, payload.size(), payload.data()).ok());
  std::string back(payload.size(), '\0');
  ASSERT_TRUE((*file)->ReadAt(0, payload.size(), back.data()).ok());
  EXPECT_EQ(back, payload);
  ASSERT_TRUE(env_->DeleteFile(fname).ok());
}

TEST_P(EnvTest, WriteAtOffsetExtends) {
  const std::string fname = prefix_ + "extend.bin";
  auto file = env_->NewRWFile(fname);
  ASSERT_TRUE(file.ok());
  const char byte = 'x';
  ASSERT_TRUE((*file)->WriteAt(100, 1, &byte).ok());
  auto size = (*file)->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 101u);
  ASSERT_TRUE(env_->DeleteFile(fname).ok());
}

TEST_P(EnvTest, ShortReadIsError) {
  const std::string fname = prefix_ + "short.bin";
  auto file = env_->NewRWFile(fname);
  ASSERT_TRUE(file.ok());
  char buf[16];
  EXPECT_TRUE((*file)->ReadAt(0, 16, buf).IsIOError());
  ASSERT_TRUE(env_->DeleteFile(fname).ok());
}

TEST_P(EnvTest, FileExistsAndDelete) {
  const std::string fname = prefix_ + "exists.bin";
  EXPECT_FALSE(env_->FileExists(fname));
  auto file = env_->NewRWFile(fname);
  ASSERT_TRUE(file.ok());
  const char b = 1;
  ASSERT_TRUE((*file)->WriteAt(0, 1, &b).ok());
  EXPECT_TRUE(env_->FileExists(fname));
  ASSERT_TRUE(env_->DeleteFile(fname).ok());
  EXPECT_FALSE(env_->FileExists(fname));
}

TEST_P(EnvTest, PersistenceAcrossReopen) {
  const std::string fname = prefix_ + "persist.bin";
  {
    auto file = env_->NewRWFile(fname);
    ASSERT_TRUE(file.ok());
    const std::string data = "durable";
    ASSERT_TRUE((*file)->WriteAt(0, data.size(), data.data()).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  {
    auto file = env_->NewRWFile(fname);
    ASSERT_TRUE(file.ok());
    std::string back(7, '\0');
    ASSERT_TRUE((*file)->ReadAt(0, 7, back.data()).ok());
    EXPECT_EQ(back, "durable");
  }
  ASSERT_TRUE(env_->DeleteFile(fname).ok());
}

INSTANTIATE_TEST_SUITE_P(Envs, EnvTest,
                         ::testing::Values(EnvCase{"posix", true},
                                           EnvCase{"mem", false}),
                         [](const auto& param_info) {
                           return std::string(param_info.param.name);
                         });

// ---------------------------------------------------------------------------
// Pager
// ---------------------------------------------------------------------------

class PagerTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = Env::NewMemEnv(); }
  std::unique_ptr<Env> env_;
};

TEST_F(PagerTest, AllocateAssignsSequentialIds) {
  auto pager = Pager::Open(env_.get(), "p.db", 16);
  ASSERT_TRUE(pager.ok());
  for (PageId expect = 0; expect < 5; ++expect) {
    auto page = (*pager)->Allocate();
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->id, expect);
    (*pager)->Unpin(*page, false);
  }
  EXPECT_EQ((*pager)->num_pages(), 5u);
}

TEST_F(PagerTest, DataSurvivesEvictionAndReread) {
  auto pager = Pager::Open(env_.get(), "evict.db", 4);
  ASSERT_TRUE(pager.ok());
  // Write a recognizable byte into 16 pages (cache only holds 4).
  for (int i = 0; i < 16; ++i) {
    auto page = (*pager)->Allocate();
    ASSERT_TRUE(page.ok());
    (*page)->data[0] = static_cast<char>(i);
    (*pager)->Unpin(*page, true);
  }
  for (int i = 0; i < 16; ++i) {
    auto page = (*pager)->Fetch(i);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->data[0], static_cast<char>(i));
    (*pager)->Unpin(*page, false);
  }
  EXPECT_GT((*pager)->stats().evictions, 0u);
  EXPECT_GT((*pager)->stats().physical_writes, 0u);
}

TEST_F(PagerTest, FetchOutOfRangeFails) {
  auto pager = Pager::Open(env_.get(), "oor.db", 8);
  ASSERT_TRUE(pager.ok());
  EXPECT_TRUE((*pager)->Fetch(3).status().IsOutOfRange());
}

TEST_F(PagerTest, CacheHitsAreCounted) {
  auto pager = Pager::Open(env_.get(), "hits.db", 8);
  ASSERT_TRUE(pager.ok());
  auto page = (*pager)->Allocate();
  ASSERT_TRUE(page.ok());
  (*pager)->Unpin(*page, true);
  for (int i = 0; i < 5; ++i) {
    auto again = (*pager)->Fetch(0);
    ASSERT_TRUE(again.ok());
    (*pager)->Unpin(*again, false);
  }
  EXPECT_EQ((*pager)->stats().cache_hits, 5u);
  EXPECT_EQ((*pager)->stats().cache_misses, 0u);
}

TEST_F(PagerTest, PersistsAcrossReopen) {
  {
    auto pager = Pager::Open(env_.get(), "persist.db", 8);
    ASSERT_TRUE(pager.ok());
    auto page = (*pager)->Allocate();
    ASSERT_TRUE(page.ok());
    (*page)->data[100] = 'Z';
    (*pager)->Unpin(*page, true);
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  {
    auto pager = Pager::Open(env_.get(), "persist.db", 8);
    ASSERT_TRUE(pager.ok());
    EXPECT_EQ((*pager)->num_pages(), 1u);
    auto page = (*pager)->Fetch(0);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->data[100], 'Z');
    (*pager)->Unpin(*page, false);
  }
}

TEST_F(PagerTest, PinnedPagesAreNotEvicted) {
  auto pager = Pager::Open(env_.get(), "pins.db", 4);
  ASSERT_TRUE(pager.ok());
  auto pinned = (*pager)->Allocate();
  ASSERT_TRUE(pinned.ok());
  (*pinned)->data[0] = 'P';
  // Exceed the cache while the first page stays pinned.
  for (int i = 0; i < 10; ++i) {
    auto page = (*pager)->Allocate();
    ASSERT_TRUE(page.ok());
    (*pager)->Unpin(*page, true);
  }
  EXPECT_EQ((*pinned)->data[0], 'P');  // Still resident and intact.
  (*pager)->Unpin(*pinned, true);
}

// ---------------------------------------------------------------------------
// HeapFile
// ---------------------------------------------------------------------------

class HeapFileTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = Env::NewMemEnv(); }
  std::unique_ptr<Env> env_;
};

TEST_F(HeapFileTest, AppendAndRead) {
  auto hf = HeapFile::Open(env_.get(), "a.heap");
  ASSERT_TRUE(hf.ok());
  auto rid = (*hf)->Append("record-one");
  ASSERT_TRUE(rid.ok());
  auto back = (*hf)->Read(*rid);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "record-one");
  EXPECT_EQ((*hf)->live_records(), 1u);
}

TEST_F(HeapFileTest, ManyRecordsSpanPages) {
  auto hf = HeapFile::Open(env_.get(), "many.heap");
  ASSERT_TRUE(hf.ok());
  const std::string payload(1000, 'x');
  std::vector<RecordId> rids;
  for (int i = 0; i < 100; ++i) {
    auto rid = (*hf)->Append(payload + std::to_string(i));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  EXPECT_EQ((*hf)->live_records(), 100u);
  // Must have spilled beyond one data page (8 records/page at ~1KB).
  EXPECT_GT(rids.back().page, 1u);
  for (int i = 0; i < 100; ++i) {
    auto rec = (*hf)->Read(rids[i]);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(*rec, payload + std::to_string(i));
  }
}

TEST_F(HeapFileTest, RejectsOversizedRecord) {
  auto hf = HeapFile::Open(env_.get(), "big.heap");
  ASSERT_TRUE(hf.ok());
  EXPECT_TRUE((*hf)->Append(std::string(kPageSize, 'x')).status()
                  .IsInvalidArgument());
}

TEST_F(HeapFileTest, DeleteTombstonesRecord) {
  auto hf = HeapFile::Open(env_.get(), "del.heap");
  ASSERT_TRUE(hf.ok());
  auto rid1 = (*hf)->Append("keep");
  auto rid2 = (*hf)->Append("remove");
  ASSERT_TRUE(rid1.ok());
  ASSERT_TRUE(rid2.ok());
  ASSERT_TRUE((*hf)->Delete(*rid2).ok());
  EXPECT_TRUE((*hf)->Read(*rid2).status().IsNotFound());
  EXPECT_TRUE((*hf)->Read(*rid1).ok());
  EXPECT_EQ((*hf)->live_records(), 1u);
  EXPECT_EQ((*hf)->total_records(), 2u);
  // Idempotent.
  EXPECT_TRUE((*hf)->Delete(*rid2).ok());
  EXPECT_EQ((*hf)->live_records(), 1u);
}

TEST_F(HeapFileTest, ScanVisitsLiveRecordsInOrder) {
  auto hf = HeapFile::Open(env_.get(), "scan.heap");
  ASSERT_TRUE(hf.ok());
  std::vector<RecordId> rids;
  for (int i = 0; i < 10; ++i) {
    auto rid = (*hf)->Append("rec" + std::to_string(i));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  ASSERT_TRUE((*hf)->Delete(rids[3]).ok());
  std::vector<std::string> seen;
  ASSERT_TRUE((*hf)
                  ->Scan([&](const RecordId&, const std::string& rec) {
                    seen.push_back(rec);
                    return true;
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 9u);
  EXPECT_EQ(seen[0], "rec0");
  EXPECT_EQ(seen[3], "rec4");  // rec3 tombstoned.
}

TEST_F(HeapFileTest, ScanEarlyStop) {
  auto hf = HeapFile::Open(env_.get(), "stop.heap");
  ASSERT_TRUE(hf.ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE((*hf)->Append("r").ok());
  int count = 0;
  ASSERT_TRUE((*hf)
                  ->Scan([&](const RecordId&, const std::string&) {
                    return ++count < 3;
                  })
                  .ok());
  EXPECT_EQ(count, 3);
}

TEST_F(HeapFileTest, PersistsAcrossReopen) {
  RecordId rid;
  {
    auto hf = HeapFile::Open(env_.get(), "dur.heap");
    ASSERT_TRUE(hf.ok());
    auto r = (*hf)->Append("durable-record");
    ASSERT_TRUE(r.ok());
    rid = *r;
    ASSERT_TRUE((*hf)->Flush().ok());
  }
  {
    auto hf = HeapFile::Open(env_.get(), "dur.heap");
    ASSERT_TRUE(hf.ok());
    EXPECT_EQ((*hf)->live_records(), 1u);
    auto rec = (*hf)->Read(rid);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(*rec, "durable-record");
  }
}

TEST_F(HeapFileTest, ReadInvalidRecordIds) {
  auto hf = HeapFile::Open(env_.get(), "inv.heap");
  ASSERT_TRUE(hf.ok());
  ASSERT_TRUE((*hf)->Append("x").ok());
  EXPECT_TRUE((*hf)->Read(RecordId{99, 0}).status().IsNotFound());
  EXPECT_TRUE((*hf)->Read(RecordId{1, 42}).status().IsNotFound());
  EXPECT_TRUE((*hf)->Read(RecordId{}).status().IsNotFound());
}

TEST_F(HeapFileTest, RecordIdPackUnpack) {
  RecordId rid{12345, 678};
  const RecordId back = RecordId::Unpack(rid.Pack());
  EXPECT_EQ(back, rid);
}

TEST_F(HeapFileTest, EmptyRecordSupported) {
  auto hf = HeapFile::Open(env_.get(), "empty.heap");
  ASSERT_TRUE(hf.ok());
  auto rid = (*hf)->Append("");
  ASSERT_TRUE(rid.ok());
  auto rec = (*hf)->Read(*rid);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->empty());
}

// ---------------------------------------------------------------------------
// Failure injection: I/O errors must propagate as Status, never crash.
// ---------------------------------------------------------------------------

/// Env wrapper that starts failing writes after a budget is exhausted.
class FaultyEnv : public Env {
 public:
  explicit FaultyEnv(Env* base) : base_(base) {}

  /// Writes remaining before every subsequent write fails.
  void set_write_budget(int n) { budget_ = n; }

  class FaultyFile : public RandomRWFile {
   public:
    FaultyFile(std::unique_ptr<RandomRWFile> base, FaultyEnv* env)
        : base_(std::move(base)), env_(env) {}
    Status ReadAt(uint64_t off, size_t n, char* buf) const override {
      return base_->ReadAt(off, n, buf);
    }
    Status WriteAt(uint64_t off, size_t n, const char* buf) override {
      if (env_->budget_ >= 0 && env_->budget_-- <= 0) {
        return Status::IOError("injected write failure");
      }
      return base_->WriteAt(off, n, buf);
    }
    StatusOr<uint64_t> Size() const override { return base_->Size(); }
    Status Sync() override { return base_->Sync(); }

   private:
    std::unique_ptr<RandomRWFile> base_;
    FaultyEnv* env_;
  };

  StatusOr<std::unique_ptr<RandomRWFile>> NewRWFile(
      const std::string& fname) override {
    HERMES_ASSIGN_OR_RETURN(std::unique_ptr<RandomRWFile> base,
                            base_->NewRWFile(fname));
    return std::unique_ptr<RandomRWFile>(
        new FaultyFile(std::move(base), this));
  }
  bool FileExists(const std::string& f) const override {
    return base_->FileExists(f);
  }
  Status DeleteFile(const std::string& f) override {
    return base_->DeleteFile(f);
  }
  Status RenameFile(const std::string& src, const std::string& dst) override {
    return base_->RenameFile(src, dst);
  }
  Status CreateDirs(const std::string& d) override {
    return base_->CreateDirs(d);
  }
  StatusOr<std::vector<std::string>> ListDir(
      const std::string& d) const override {
    return base_->ListDir(d);
  }

 private:
  Env* base_;
  int budget_ = -1;  // -1 = unlimited.
};

TEST(FaultInjectionTest, HeapFileAppendSurfacesWriteErrors) {
  auto mem = Env::NewMemEnv();
  FaultyEnv faulty(mem.get());
  auto hf = HeapFile::Open(&faulty, "faulty.heap", /*cache_pages=*/4);
  ASSERT_TRUE(hf.ok());
  // Small cache forces evictions (and thus writes) while appending.
  faulty.set_write_budget(6);
  Status last = Status::OK();
  int appended = 0;
  for (int i = 0; i < 200 && last.ok(); ++i) {
    last = (*hf)->Append(std::string(2000, 'x')).ok()
               ? Status::OK()
               : Status::IOError("append failed");
    if (last.ok()) ++appended;
  }
  EXPECT_FALSE(last.ok());  // The injected failure surfaced as an error.
  EXPECT_GT(appended, 0);   // Some records made it before the fault.
  // Lift the fault so the destructor's flush can write back cleanly.
  faulty.set_write_budget(-1);
}

TEST(FaultInjectionTest, FlushReportsFailure) {
  auto mem = Env::NewMemEnv();
  FaultyEnv faulty(mem.get());
  auto pager = Pager::Open(&faulty, "faulty.db", 8);
  ASSERT_TRUE(pager.ok());
  auto page = (*pager)->Allocate();
  ASSERT_TRUE(page.ok());
  (*pager)->Unpin(*page, true);
  faulty.set_write_budget(0);
  EXPECT_TRUE((*pager)->Flush().IsIOError());
  // Restore the budget so the destructor's flush can succeed.
  faulty.set_write_budget(-1);
  ASSERT_TRUE((*pager)->Flush().ok());
}

TEST(FaultInjectionTest, ReadErrorsPropagateThroughFetch) {
  auto mem = Env::NewMemEnv();
  // Create a valid single-page file, then truncate it behind the pager's
  // back by writing a fresh shorter file.
  {
    auto pager = Pager::Open(mem.get(), "trunc.db", 4);
    ASSERT_TRUE(pager.ok());
    auto p0 = (*pager)->Allocate();
    ASSERT_TRUE(p0.ok());
    (*pager)->Unpin(*p0, true);
    auto p1 = (*pager)->Allocate();
    ASSERT_TRUE(p1.ok());
    (*pager)->Unpin(*p1, true);
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  // Out-of-range fetch is refused cleanly.
  auto pager = Pager::Open(mem.get(), "trunc.db", 4);
  ASSERT_TRUE(pager.ok());
  EXPECT_TRUE((*pager)->Fetch(99).status().IsOutOfRange());
}

// ---------------------------------------------------------------------------
// PartitionManager
// ---------------------------------------------------------------------------

class PartitionTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = Env::NewMemEnv(); }
  std::unique_ptr<Env> env_;
};

TEST_F(PartitionTest, GetOrCreateIsStable) {
  auto pm = PartitionManager::Open(env_.get(), "parts");
  ASSERT_TRUE(pm.ok());
  auto a = (*pm)->GetOrCreate("alpha");
  ASSERT_TRUE(a.ok());
  auto b = (*pm)->GetOrCreate("alpha");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);  // Same handle.
}

TEST_F(PartitionTest, ExistsAndList) {
  auto pm = PartitionManager::Open(env_.get(), "parts2");
  ASSERT_TRUE(pm.ok());
  ASSERT_TRUE((*pm)->GetOrCreate("zeta").ok());
  ASSERT_TRUE((*pm)->GetOrCreate("alpha").ok());
  EXPECT_TRUE((*pm)->Exists("zeta"));
  EXPECT_FALSE((*pm)->Exists("missing"));
  const auto names = (*pm)->List();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");  // Sorted.
  EXPECT_EQ(names[1], "zeta");
}

TEST_F(PartitionTest, DropRemovesData) {
  auto pm = PartitionManager::Open(env_.get(), "parts3");
  ASSERT_TRUE(pm.ok());
  auto hf = (*pm)->GetOrCreate("victim");
  ASSERT_TRUE(hf.ok());
  ASSERT_TRUE((*hf)->Append("doomed").ok());
  ASSERT_TRUE((*pm)->Drop("victim").ok());
  EXPECT_FALSE((*pm)->Exists("victim"));
  // Recreating starts fresh.
  auto again = (*pm)->GetOrCreate("victim");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->live_records(), 0u);
}

TEST_F(PartitionTest, DropMissingFails) {
  auto pm = PartitionManager::Open(env_.get(), "parts4");
  ASSERT_TRUE(pm.ok());
  EXPECT_TRUE((*pm)->Drop("ghost").IsNotFound());
}

TEST_F(PartitionTest, DataPersistsViaEnv) {
  {
    auto pm = PartitionManager::Open(env_.get(), "parts5");
    ASSERT_TRUE(pm.ok());
    auto hf = (*pm)->GetOrCreate("keep");
    ASSERT_TRUE(hf.ok());
    ASSERT_TRUE((*hf)->Append("persisted").ok());
    ASSERT_TRUE((*pm)->FlushAll().ok());
  }
  {
    auto pm = PartitionManager::Open(env_.get(), "parts5");
    ASSERT_TRUE(pm.ok());
    EXPECT_TRUE((*pm)->Exists("keep"));
    auto hf = (*pm)->GetOrCreate("keep");
    ASSERT_TRUE(hf.ok());
    EXPECT_EQ((*hf)->live_records(), 1u);
  }
}

}  // namespace
}  // namespace hermes::storage
