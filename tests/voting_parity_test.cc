// Naive-vs-indexed voting parity across the three synthetic movement
// domains (aircraft terminal area, maritime lanes, urban grid), at 1 and 4
// threads: the in-DBMS fast path must be a pure optimization — identical
// `VotingResult`s, and bit-for-bit reproducibility at any thread count.

#include <gtest/gtest.h>

#include "datagen/aircraft.h"
#include "datagen/maritime.h"
#include "datagen/urban.h"
#include "exec/exec_context.h"
#include "rtree/str_bulk_load.h"
#include "storage/env.h"
#include "traj/segment_arena.h"
#include "voting/voting.h"

namespace hermes::voting {
namespace {

struct Scenario {
  const char* name;
  traj::TrajectoryStore store;
  VotingParams params;
};

std::vector<Scenario> MakeScenarios() {
  std::vector<Scenario> scenarios;

  {
    datagen::AircraftScenarioParams p =
        datagen::AircraftScenarioParams::Default();
    p.num_flights = 24;
    p.sample_dt = 30.0;
    p.seed = 5;
    auto s = datagen::GenerateAircraftScenario(p);
    VotingParams vp;
    vp.sigma = 1500.0;
    vp.min_overlap_ratio = 0.3;
    scenarios.push_back({"aircraft", std::move(s->store), vp});
  }
  {
    datagen::MaritimeScenarioParams p;
    p.num_ships = 20;
    p.sample_dt = 240.0;
    p.seed = 6;
    auto s = datagen::GenerateMaritimeScenario(p);
    VotingParams vp;
    vp.sigma = 800.0;
    vp.min_overlap_ratio = 0.3;
    scenarios.push_back({"maritime", std::move(s->store), vp});
  }
  {
    datagen::UrbanScenarioParams p;
    p.num_vehicles = 25;
    p.sample_dt = 15.0;
    p.seed = 7;
    auto s = datagen::GenerateUrbanScenario(p);
    VotingParams vp;
    vp.sigma = 120.0;
    vp.min_overlap_ratio = 0.3;
    scenarios.push_back({"urban", std::move(s->store), vp});
  }
  return scenarios;
}

/// Exact (bitwise) equality of two voting results.
void ExpectBitIdentical(const VotingResult& a, const VotingResult& b,
                        const std::string& what) {
  ASSERT_EQ(a.votes.size(), b.votes.size()) << what;
  for (size_t tid = 0; tid < a.votes.size(); ++tid) {
    ASSERT_EQ(a.votes[tid].size(), b.votes[tid].size()) << what;
    for (size_t i = 0; i < a.votes[tid].size(); ++i) {
      EXPECT_EQ(a.votes[tid][i], b.votes[tid][i])
          << what << " tid=" << tid << " seg=" << i;
    }
  }
  EXPECT_EQ(a.pairs_evaluated, b.pairs_evaluated) << what;
}

TEST(VotingParityTest, NaiveAndIndexedAgreeAcrossScenariosAndThreads) {
  for (auto& sc : MakeScenarios()) {
    SCOPED_TRACE(sc.name);
    ASSERT_GT(sc.store.NumSegments(), 0u);

    auto env = storage::Env::NewMemEnv();
    auto index = rtree::BuildSegmentIndex(env.get(), "parity.idx", sc.store);
    ASSERT_TRUE(index.ok());
    const traj::SegmentArena arena = traj::SegmentArena::Build(sc.store);

    exec::ExecContext one(1);
    exec::ExecContext four(4);

    auto naive1 = ComputeVotingNaive(arena, sc.store, sc.params, &one);
    auto naive4 = ComputeVotingNaive(arena, sc.store, sc.params, &four);
    auto indexed1 =
        ComputeVotingIndexed(arena, sc.store, **index, sc.params, &one);
    auto indexed4 =
        ComputeVotingIndexed(arena, sc.store, **index, sc.params, &four);
    ASSERT_TRUE(naive1.ok());
    ASSERT_TRUE(naive4.ok());
    ASSERT_TRUE(indexed1.ok());
    ASSERT_TRUE(indexed4.ok());

    // Thread-count invariance is bit-exact by construction (each
    // trajectory's votes come from one chunk with sequential order).
    ExpectBitIdentical(*naive1, *naive4, "naive 1 vs 4 threads");
    ExpectBitIdentical(*indexed1, *indexed4, "indexed 1 vs 4 threads");

    // Engine parity: the pruned candidate set must not lose any voter
    // (pairs differ — that is the point of the index — but votes match;
    // non-candidates contribute exactly 0, so sums are bitwise equal).
    ASSERT_EQ(naive1->votes.size(), indexed1->votes.size());
    for (size_t tid = 0; tid < naive1->votes.size(); ++tid) {
      ASSERT_EQ(naive1->votes[tid].size(), indexed1->votes[tid].size());
      for (size_t i = 0; i < naive1->votes[tid].size(); ++i) {
        EXPECT_DOUBLE_EQ(naive1->votes[tid][i], indexed1->votes[tid][i])
            << sc.name << " tid=" << tid << " seg=" << i;
      }
    }
    EXPECT_LE(indexed1->pairs_evaluated, naive1->pairs_evaluated);
  }
}

TEST(VotingParityTest, StoreOverloadsMatchArenaEngines) {
  auto scenarios = MakeScenarios();
  auto& sc = scenarios.front();
  const traj::SegmentArena arena = traj::SegmentArena::Build(sc.store);
  auto via_store = ComputeVotingNaive(sc.store, sc.params);
  auto via_arena = ComputeVotingNaive(arena, sc.store, sc.params, nullptr);
  ASSERT_TRUE(via_store.ok());
  ASSERT_TRUE(via_arena.ok());
  ExpectBitIdentical(*via_store, *via_arena, "store vs arena overload");
}

TEST(VotingParityTest, StaleArenaIsRejected) {
  auto scenarios = MakeScenarios();
  auto& sc = scenarios.back();
  const traj::SegmentArena arena = traj::SegmentArena::Build(sc.store);
  traj::Trajectory extra(999);
  ASSERT_TRUE(extra.Append({0, 0, 0}).ok());
  ASSERT_TRUE(extra.Append({10, 10, 10}).ok());
  ASSERT_TRUE(sc.store.Add(std::move(extra)).ok());
  EXPECT_TRUE(ComputeVotingNaive(arena, sc.store, sc.params, nullptr)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace hermes::voting
