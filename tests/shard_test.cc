// Sharded scatter–gather execution: the shard::Coordinator must be an
// indistinguishable drop-in for one service::Server.
//
// The headline test is the acceptance criterion of the sharding PR:
// for three datagen domains (aircraft / maritime / urban) the full query
// surface — S2T_MEMBERS, RANGE, STATS, QUT — returns *bit-identical*
// tables on 1-, 2-, and 4-shard coordinators and on the unsharded
// server, with ingest routed row-by-row through the statement plane and
// with concurrent readers in flight. The file runs under the TSan CI
// leg, so it doubles as the data-race gate for the scatter–gather and
// merged-snapshot paths.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datagen/aircraft.h"
#include "datagen/maritime.h"
#include "datagen/urban.h"
#include "net/client.h"
#include "net/net_server.h"
#include "service/client_session.h"
#include "service/server.h"
#include "service/service_config.h"
#include "shard/coordinator.h"
#include "shard/partitioner.h"
#include "sql/executor.h"
#include "sql/statement_executor.h"
#include "sql/value.h"
#include "storage/env.h"

namespace hermes::shard {
namespace {

using sql::Table;
using sql::Value;

// ---------------------------------------------------------------------------
// Datagen domains
// ---------------------------------------------------------------------------

traj::TrajectoryStore MakeAircraft() {
  auto p = datagen::AircraftScenarioParams::Default();
  p.num_flights = 12;
  p.sample_dt = 40.0;
  p.time_span = 1200.0;
  p.seed = 12;
  auto s = datagen::GenerateAircraftScenario(p);
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  return std::move(s->store);
}

traj::TrajectoryStore MakeMaritime() {
  datagen::MaritimeScenarioParams p;
  p.num_ships = 12;
  p.sample_dt = 300.0;
  p.seed = 13;
  auto s = datagen::GenerateMaritimeScenario(p);
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  return std::move(s->store);
}

traj::TrajectoryStore MakeUrban() {
  datagen::UrbanScenarioParams p;
  p.num_vehicles = 12;
  p.sample_dt = 20.0;
  p.time_span = 900.0;
  p.seed = 14;
  auto s = datagen::GenerateUrbanScenario(p);
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  return std::move(s->store);
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// The query surface compared across topologies. QUT parameters derive
/// from the store's time domain so every domain gets a meaningful tree.
std::vector<std::string> QuerySuite(const std::string& mod,
                                    const traj::TrajectoryStore& store) {
  const auto [t0, t1] = store.TimeDomain();
  const double tau = (t1 - t0) / 2;
  return {
      "SELECT STATS(" + mod + ");",
      "SELECT RANGE(" + mod + ", " + std::to_string(t0) + ", " +
          std::to_string(t1 + 1) + ");",
      "SELECT S2T_MEMBERS(" + mod + ", 800, 1600);",
      "SELECT QUT(" + mod + ", " + std::to_string(t0) + ", " +
          std::to_string(t1 + 1) + ", " + std::to_string(tau) + ", " +
          std::to_string(tau / 4) + ", " + std::to_string(tau / 4) +
          ", 1600, 8);",
  };
}

/// Runs the suite, asserting every statement succeeds.
std::vector<Table> RunSuite(sql::StatementExecutor* db,
                            const std::vector<std::string>& suite) {
  std::vector<Table> out;
  for (const auto& q : suite) {
    auto t = db->Execute(q);
    EXPECT_TRUE(t.ok()) << q << ": " << t.status().ToString();
    out.push_back(t.ok() ? std::move(*t) : Table{});
  }
  return out;
}

/// Bit-exact table equality: schema, row count, and every Value
/// (doubles compare by representation, not tolerance).
void ExpectTablesEqual(const Table& want, const Table& got,
                       const std::string& label) {
  ASSERT_EQ(want.columns.size(), got.columns.size()) << label;
  for (size_t c = 0; c < want.columns.size(); ++c) {
    EXPECT_EQ(want.columns[c].name, got.columns[c].name) << label;
    EXPECT_EQ(want.columns[c].type, got.columns[c].type) << label;
  }
  ASSERT_EQ(want.rows.size(), got.rows.size()) << label;
  for (size_t r = 0; r < want.rows.size(); ++r) {
    ASSERT_EQ(want.rows[r].size(), got.rows[r].size()) << label;
    for (size_t c = 0; c < want.rows[r].size(); ++c) {
      EXPECT_TRUE(want.rows[r][c] == got.rows[r][c])
          << label << " row " << r << " col " << c << ": "
          << want.rows[r][c].ToString() << " vs "
          << got.rows[r][c].ToString();
    }
  }
}

/// Streams one trajectory through the statement plane as a single
/// all-placeholder INSERT with typed binds — coordinates round-trip
/// exactly, so sharded ingest can be bit-compared against RegisterStore.
Status InsertTrajectory(sql::StatementExecutor* db, const std::string& mod,
                        const traj::Trajectory& t) {
  std::string text = "INSERT INTO " + mod + " VALUES ";
  std::vector<Value> binds;
  binds.reserve(t.size() * 4);
  for (size_t i = 0; i < t.size(); ++i) {
    const auto& p = t.samples()[i];
    if (i > 0) text += ", ";
    text += "($" + std::to_string(4 * i + 1) + ", $" +
            std::to_string(4 * i + 2) + ", $" + std::to_string(4 * i + 3) +
            ", $" + std::to_string(4 * i + 4) + ")";
    binds.push_back(Value::Int(static_cast<int64_t>(t.object_id())));
    binds.push_back(Value::Double(p.t));
    binds.push_back(Value::Double(p.x));
    binds.push_back(Value::Double(p.y));
  }
  text += ";";
  HERMES_ASSIGN_OR_RETURN(sql::PreparedHandle handle, db->Prepare(text));
  StatusOr<Table> ack = db->BindExecute(handle.id, binds);
  (void)db->ClosePrepared(handle.id);
  return ack.status();
}

/// Unsharded oracle: one service::Server holding `store` whole.
std::unique_ptr<service::Server> StartBaseline(
    const traj::TrajectoryStore& store, const std::string& mod) {
  service::ServerOptions opts;
  opts.threads = 2;
  auto server = std::move(service::Server::Start(std::move(opts))).value();
  traj::TrajectoryStore copy = store;
  EXPECT_TRUE(server->RegisterStore(mod, std::move(copy)).ok());
  return server;
}

// ---------------------------------------------------------------------------
// ServiceConfig validation
// ---------------------------------------------------------------------------

TEST(ServiceConfigTest, RejectsZeroShards) {
  service::ServiceConfig config;
  config.shards = 0;
  auto st = config.Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("shards must be >= 1"), std::string::npos)
      << st.ToString();
}

TEST(ServiceConfigTest, RejectsWalDirCollision) {
  service::ServiceConfig config;
  config.shards = 3;
  config.shard_wal_dirs = {"wal/a", "wal/b", "wal/a"};
  auto st = config.Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("collision"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("shards 0 and 2"), std::string::npos)
      << st.ToString();
}

TEST(ServiceConfigTest, RejectsWrongShardWalDirCount) {
  service::ServiceConfig config;
  config.shards = 2;
  config.shard_wal_dirs = {"wal/a"};
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ServiceConfigTest, SingleShardKeepsPlainDirs) {
  service::ServiceConfig config;
  config.wal_dir = "walroot";
  config.data_dir = "dataroot";
  EXPECT_EQ(config.ShardWalDir(0), "walroot");
  EXPECT_EQ(config.ShardDataDir(0), "dataroot");

  config.shards = 2;
  EXPECT_EQ(config.ShardWalDir(0), "walroot/shard0");
  EXPECT_EQ(config.ShardWalDir(1), "walroot/shard1");
  EXPECT_EQ(config.ShardDataDir(1), "dataroot/shard1");
}

TEST(ServiceConfigTest, DefaultsValidate) {
  EXPECT_TRUE(service::ServiceConfig{}.Validate().ok());
}

// ---------------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------------

TEST(HashPartitionerTest, DeterministicInRangeAndSpreads) {
  auto part = MakeHashPartitioner();
  std::set<size_t> hit;
  for (uint64_t id = 0; id < 1000; ++id) {
    const size_t s = part->ShardOf(id, 4);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, part->ShardOf(id, 4));  // stable across calls
    hit.insert(s);
    EXPECT_EQ(part->ShardOf(id, 1), 0u);  // single shard short-circuits
  }
  EXPECT_EQ(hit.size(), 4u) << "1000 ids left a shard empty";
}

// ---------------------------------------------------------------------------
// Startup
// ---------------------------------------------------------------------------

TEST(CoordinatorStartTest, RecoveryFailureNamesShardAndUnwinds) {
  auto env = storage::Env::NewMemEnv();
  service::ServiceConfig config;
  config.shards = 2;
  config.wal_dir = "walroot";

  // Corrupt shard 1's checkpoint manifest: recovery must fail, the
  // Status must say *which* shard, and no half-started topology leaks.
  ASSERT_TRUE(env->CreateDirs("walroot/shard1").ok());
  auto file = env->NewRWFile("walroot/shard1/MANIFEST");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->WriteAt(0, 4, "junk").ok());

  auto coord = Coordinator::Start(config, env.get());
  ASSERT_FALSE(coord.ok());
  EXPECT_NE(coord.status().message().find("shard 1: "), std::string::npos)
      << coord.status().ToString();

  // Shard 0 was unwound: a retry with the corruption cleared starts
  // cleanly against the same env (nothing held or leaked).
  ASSERT_TRUE(env->DeleteFile("walroot/shard1/MANIFEST").ok());
  auto retry = Coordinator::Start(config, env.get());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  (*retry)->Shutdown();
}

TEST(CoordinatorStartTest, RejectsInvalidConfig) {
  service::ServiceConfig config;
  config.shards = 0;
  EXPECT_FALSE(Coordinator::Start(config).ok());
}

// ---------------------------------------------------------------------------
// Shard-count invariance: the acceptance criterion
// ---------------------------------------------------------------------------

struct Domain {
  const char* name;
  traj::TrajectoryStore store;
};

std::vector<Domain> Domains() {
  std::vector<Domain> out;
  out.push_back({"aircraft", MakeAircraft()});
  out.push_back({"maritime", MakeMaritime()});
  out.push_back({"urban", MakeUrban()});
  return out;
}

TEST(ShardInvarianceTest, ResultsBitIdenticalAcrossShardCounts) {
  for (auto& domain : Domains()) {
    SCOPED_TRACE(domain.name);
    const auto suite = QuerySuite("mod", domain.store);

    auto baseline = StartBaseline(domain.store, "mod");
    auto oracle_db =
        service::MakeStatementExecutor(baseline->Connect());
    const std::vector<Table> want = RunSuite(oracle_db.get(), suite);

    for (const size_t shards : {1u, 2u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      service::ServiceConfig config;
      config.shards = shards;
      config.threads = 2;
      auto coord_or = Coordinator::Start(config);
      ASSERT_TRUE(coord_or.ok()) << coord_or.status().ToString();
      auto coord = std::move(*coord_or);
      auto db = coord->Connect();

      // Ingest through the routed statement plane, not RegisterStore:
      // this is the path a real client takes.
      ASSERT_TRUE(db->Execute("CREATE MOD mod;").ok());
      for (traj::TrajectoryId tid = 0;
           tid < domain.store.NumTrajectories(); ++tid) {
        auto st = InsertTrajectory(db.get(), "mod", domain.store.Get(tid));
        ASSERT_TRUE(st.ok()) << st.ToString();
      }
      ASSERT_TRUE(db->Execute("FLUSH;").ok());

      const std::vector<Table> got = RunSuite(db.get(), suite);
      ASSERT_EQ(want.size(), got.size());
      for (size_t q = 0; q < want.size(); ++q) {
        ExpectTablesEqual(want[q], got[q], suite[q]);
      }
      coord->Shutdown();
    }
    baseline->Shutdown();
  }
}

TEST(ShardInvarianceTest, RegisterStorePartitionsMatchUnsharded) {
  // Bulk seeding (RegisterStore) splits by the partitioner; the merged
  // snapshot must still equal the unsharded store.
  auto store = MakeMaritime();
  const auto suite = QuerySuite("ships", store);
  auto baseline = StartBaseline(store, "ships");
  auto oracle_db = service::MakeStatementExecutor(baseline->Connect());
  const std::vector<Table> want = RunSuite(oracle_db.get(), suite);

  service::ServiceConfig config;
  config.shards = 4;
  auto coord = std::move(Coordinator::Start(config)).value();
  traj::TrajectoryStore copy = store;
  ASSERT_TRUE(coord->RegisterStore("ships", std::move(copy)).ok());
  auto db = coord->Connect();
  const std::vector<Table> got = RunSuite(db.get(), suite);
  for (size_t q = 0; q < want.size(); ++q) {
    ExpectTablesEqual(want[q], got[q], suite[q]);
  }
  coord->Shutdown();
  baseline->Shutdown();
}

// ---------------------------------------------------------------------------
// Concurrent ingest
// ---------------------------------------------------------------------------

TEST(ShardConcurrencyTest, ReadersSeeMonotonicSnapshotsDuringIngest) {
  const auto store = MakeMaritime();
  const auto [t0, t1] = store.TimeDomain();
  const std::string range_sql = "SELECT RANGE(ships, " + std::to_string(t0) +
                                ", " + std::to_string(t1 + 1) + ");";
  const size_t initial = store.NumTrajectories() / 2;

  service::ServiceConfig config;
  config.shards = 2;
  config.threads = 2;
  auto coord = std::move(Coordinator::Start(config)).value();
  traj::TrajectoryStore seed;
  for (traj::TrajectoryId tid = 0; tid < initial; ++tid) {
    ASSERT_TRUE(seed.Add(store.Get(tid)).ok());
  }
  ASSERT_TRUE(coord->RegisterStore("ships", std::move(seed)).ok());

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int rix = 0; rix < 3; ++rix) {
    readers.emplace_back([&] {
      auto session = coord->Connect();
      size_t last_rows = 0;
      while (!done.load(std::memory_order_relaxed)) {
        auto members = session->Execute("SELECT S2T_MEMBERS(ships);");
        auto range = session->Execute(range_sql);
        if (!members.ok() || !range.ok()) {
          ++failures;
          return;
        }
        // Merged snapshots only ever grow: each shard publishes id-order
        // prefixes, and the merge is a deterministic function of them.
        if (range->rows.size() < last_rows) {
          ++failures;
          return;
        }
        last_rows = range->rows.size();
      }
    });
  }

  {
    auto writer = coord->Connect();
    for (traj::TrajectoryId tid = initial; tid < store.NumTrajectories();
         ++tid) {
      ASSERT_TRUE(InsertTrajectory(writer.get(), "ships",
                                   store.Get(tid)).ok());
    }
    ASSERT_TRUE(writer->Execute("FLUSH;").ok());
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Post-flush the sharded state must equal the unsharded full store.
  auto baseline = StartBaseline(store, "ships");
  auto oracle_db = service::MakeStatementExecutor(baseline->Connect());
  const auto suite = QuerySuite("ships", store);
  const auto want = RunSuite(oracle_db.get(), suite);
  auto db = coord->Connect();
  const auto got = RunSuite(db.get(), suite);
  for (size_t q = 0; q < want.size(); ++q) {
    ExpectTablesEqual(want[q], got[q], suite[q]);
  }
  coord->Shutdown();
  baseline->Shutdown();
}

// ---------------------------------------------------------------------------
// Routing semantics
// ---------------------------------------------------------------------------

TEST(ShardRoutingTest, DdlBroadcastsToEveryShard) {
  service::ServiceConfig config;
  config.shards = 3;
  auto coord = std::move(Coordinator::Start(config)).value();
  auto db = coord->Connect();
  ASSERT_TRUE(db->Execute("CREATE MOD fleet;").ok());

  // Every shard owns the catalog entry (a per-shard session sees it).
  for (size_t k = 0; k < coord->num_shards(); ++k) {
    auto shard_db =
        service::MakeStatementExecutor(coord->shard(k)->Connect());
    auto stats = shard_db->Execute("SELECT STATS(fleet);");
    EXPECT_TRUE(stats.ok())
        << "shard " << k << ": " << stats.status().ToString();
  }

  // Errors keep parity with the unsharded server (lockstep catalogs fail
  // identically everywhere, so no shard prefix is added).
  auto dup = db->Execute("CREATE MOD fleet;");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().message().find("shard"), std::string::npos)
      << dup.status().ToString();

  ASSERT_TRUE(db->Execute("DROP MOD fleet;").ok());
  for (size_t k = 0; k < coord->num_shards(); ++k) {
    auto shard_db =
        service::MakeStatementExecutor(coord->shard(k)->Connect());
    EXPECT_FALSE(shard_db->Execute("SELECT STATS(fleet);").ok());
  }
  coord->Shutdown();
}

TEST(ShardRoutingTest, InsertRoutesByPartitioner) {
  service::ServiceConfig config;
  config.shards = 2;
  auto coord = std::move(Coordinator::Start(config)).value();
  auto db = coord->Connect();
  ASSERT_TRUE(db->Execute("CREATE MOD m;").ok());
  // Objects 0..7, two points each, routed through plain-text INSERT.
  for (int id = 0; id < 8; ++id) {
    const std::string text =
        "INSERT INTO m VALUES (" + std::to_string(id) + ", 0, 0, 0), (" +
        std::to_string(id) + ", 60, 100, 0);";
    ASSERT_TRUE(db->Execute(text).ok());
  }
  ASSERT_TRUE(db->Execute("FLUSH;").ok());

  const auto& part = coord->partitioner();
  for (size_t k = 0; k < coord->num_shards(); ++k) {
    size_t expect = 0;
    for (uint64_t id = 0; id < 8; ++id) {
      if (part.ShardOf(id, coord->num_shards()) == k) ++expect;
    }
    EXPECT_EQ(coord->shard(k)->Stats().trajectories_ingested, expect)
        << "shard " << k;
  }
  coord->Shutdown();
}

TEST(ShardRoutingTest, ShowServiceStatsAggregatesWithBreakdown) {
  service::ServiceConfig config;
  config.shards = 2;
  auto coord = std::move(Coordinator::Start(config)).value();
  const traj::TrajectoryStore store = MakeMaritime();
  const size_t total_trajectories = store.NumTrajectories();
  auto db = coord->Connect();
  // Ingest through the routed statement plane so the per-shard ingest
  // counters (what this test folds) actually tick.
  ASSERT_TRUE(db->Execute("CREATE MOD ships;").ok());
  for (traj::TrajectoryId tid = 0; tid < store.NumTrajectories(); ++tid) {
    ASSERT_TRUE(InsertTrajectory(db.get(), "ships", store.Get(tid)).ok());
  }
  ASSERT_TRUE(db->Execute("FLUSH;").ok());

  auto table = db->Execute("SHOW SERVICE STATS;");
  ASSERT_TRUE(table.ok()) << table.status().ToString();

  int64_t shards_row = -1, total = -1, shard0 = -1, shard1 = -1, mods = -1;
  for (const auto& row : table->rows) {
    const std::string& name = row[0].AsString();
    if (name == "shards") shards_row = row[1].AsInt();
    if (name == "trajectories_ingested") total = row[1].AsInt();
    if (name == "shard0.trajectories_ingested") shard0 = row[1].AsInt();
    if (name == "shard1.trajectories_ingested") shard1 = row[1].AsInt();
    if (name == "mods") mods = row[1].AsInt();
  }
  EXPECT_EQ(shards_row, 2);
  EXPECT_EQ(static_cast<size_t>(total), total_trajectories);
  EXPECT_EQ(total, shard0 + shard1);  // exact fold, no double counting
  EXPECT_EQ(mods, 1);  // broadcast DDL: max, not sum
  coord->Shutdown();
}

// ---------------------------------------------------------------------------
// One API, every backend
// ---------------------------------------------------------------------------

TEST(StatementExecutorParityTest, EmbeddedServiceCoordinatorAndWireAgree) {
  const auto store = MakeMaritime();
  const auto suite = QuerySuite("ships", store);

  // Embedded session.
  sql::Session session;
  {
    traj::TrajectoryStore copy = store;
    ASSERT_TRUE(session.RegisterStore("ships", std::move(copy)).ok());
  }
  auto embedded = sql::MakeSessionExecutor(&session);
  const auto want = RunSuite(embedded.get(), suite);

  // Service session.
  auto server = StartBaseline(store, "ships");
  auto service_db = service::MakeStatementExecutor(server->Connect());

  // Coordinator session (2 shards).
  service::ServiceConfig config;
  config.shards = 2;
  auto coord = std::move(Coordinator::Start(config)).value();
  {
    traj::TrajectoryStore copy = store;
    ASSERT_TRUE(coord->RegisterStore("ships", std::move(copy)).ok());
  }
  auto coord_db = coord->Connect();

  // Remote client over the wire protocol, fronting the coordinator.
  auto net = std::move(net::NetServer::Start(
                           [raw = coord.get()] { return raw->Connect(); },
                           net::NetServerOptions{}))
                 .value();
  auto client = std::move(net::Client::Connect("127.0.0.1", net->port()))
                    .value();
  auto wire_db = net::MakeStatementExecutor(std::move(client));

  for (auto* db : {service_db.get(), coord_db.get(), wire_db.get()}) {
    const auto got = RunSuite(db, suite);
    for (size_t q = 0; q < want.size(); ++q) {
      ExpectTablesEqual(want[q], got[q], suite[q]);
    }
  }

  // Prepared statements behave identically through every backend.
  const auto [t0, t1] = store.TimeDomain();
  for (auto* db : {embedded.get(), service_db.get(), coord_db.get(),
                   wire_db.get()}) {
    auto prepared = db->Prepare("SELECT RANGE(ships, $1, $2);");
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    EXPECT_EQ(prepared->num_params, 2);
    auto bound = db->BindExecute(
        prepared->id, {Value::Double(t0), Value::Double(t1 + 1)});
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    EXPECT_EQ(bound->rows.size(), store.NumTrajectories());
    EXPECT_TRUE(db->ClosePrepared(prepared->id).ok());
    EXPECT_FALSE(db->BindExecute(prepared->id, {Value::Double(t0),
                                                Value::Double(t1)})
                     .ok());
  }

  net->Shutdown();
  coord->Shutdown();
  server->Shutdown();
}

}  // namespace
}  // namespace hermes::shard
