#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "baselines/range_rebuild.h"
#include "core/qut_clustering.h"
#include "core/retratree.h"
#include "datagen/noise.h"
#include "rtree/str_bulk_load.h"
#include "storage/env.h"

namespace hermes::core {
namespace {

ReTraTreeParams TreeParams() {
  ReTraTreeParams p;
  p.tau = 400.0;
  p.delta = 100.0;
  p.t_align = 30.0;
  p.d_assign = 80.0;
  p.gamma = 8;
  p.min_new_cluster_size = 2;
  p.s2t.SetSigma(40.0).SetEpsilon(80.0);
  p.s2t.segmentation.min_part_length = 2;
  p.s2t.sampling.sigma = 120.0;
  p.s2t.sampling.gain_stop_ratio = 0.2;
  return p;
}

/// A lane of `n` co-moving objects along x at `y0`, over [t0, t1].
void AddLane(traj::TrajectoryStore* store, int first_id, int n, double y0,
             double t0, double t1) {
  for (int k = 0; k < n; ++k) {
    traj::Trajectory t(first_id + k);
    for (double now = t0; now <= t1 + 1e-9; now += 10.0) {
      ASSERT_TRUE(
          t.Append({(now - t0) * 10.0, y0 + k * 10.0, now}).ok());
    }
    ASSERT_TRUE(store->Add(std::move(t)).ok());
  }
}

class QuTTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = storage::Env::NewMemEnv();
    // Two lanes over [0, 795]: continuous movement across 8 sub-chunks.
    AddLane(&store_, 0, 10, 0.0, 0, 795);
    AddLane(&store_, 100, 10, 5000.0, 0, 795);
    auto tree = ReTraTree::Open(env_.get(), "qut_tree", TreeParams());
    ASSERT_TRUE(tree.ok());
    tree_ = std::move(tree).value();
    ASSERT_TRUE(tree_->InsertStore(store_).ok());
  }

  traj::TrajectoryStore store_;
  std::unique_ptr<storage::Env> env_;
  std::unique_ptr<ReTraTree> tree_;
};

TEST_F(QuTTest, RejectsEmptyWindow) {
  QuTClustering qut(tree_.get());
  EXPECT_TRUE(qut.Query(100, 100).status().IsInvalidArgument());
  EXPECT_TRUE(qut.Query(200, 100).status().IsInvalidArgument());
}

TEST_F(QuTTest, FullWindowFindsBothLanes) {
  QuTClustering qut(tree_.get());
  auto result = qut.Query(0, 800);
  ASSERT_TRUE(result.ok());
  // The two lanes are 5 km apart: they can never stitch together.
  EXPECT_GE(result->clusters.size(), 2u);
  EXPECT_GT(result->TotalMembers(), 0u);
  // All visited sub-chunks are fully covered: the progressive fast path.
  EXPECT_EQ(result->stats.sub_chunks_partial, 0u);
  EXPECT_GT(result->stats.sub_chunks_full, 0u);
}

TEST_F(QuTTest, ClustersSeparateTheLanes) {
  QuTClustering qut(tree_.get());
  auto result = qut.Query(0, 800);
  ASSERT_TRUE(result.ok());
  for (const auto& cluster : result->clusters) {
    bool low = false, high = false;
    for (const auto& m : cluster.members) {
      // Lane ids: 0..9 at y~0, 100..109 at y~5000.
      if (m.object_id < 50) low = true;
      if (m.object_id >= 100) high = true;
    }
    EXPECT_FALSE(low && high) << "lanes mixed in one cluster";
  }
}

TEST_F(QuTTest, BoundaryWindowTrimsMembers) {
  QuTClustering qut(tree_.get());
  // Window cutting sub-chunks [0,100) and [100,200) in half each.
  auto result = qut.Query(50, 150);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.sub_chunks_partial, 2u);
  EXPECT_EQ(result->stats.sub_chunks_full, 0u);
  for (const auto& cluster : result->clusters) {
    for (const auto& m : cluster.members) {
      EXPECT_GE(m.StartTime(), 50.0 - 1e-6);
      EXPECT_LE(m.EndTime(), 150.0 + 1e-6);
    }
  }
  for (const auto& o : result->outliers) {
    EXPECT_GE(o.StartTime(), 50.0 - 1e-6);
    EXPECT_LE(o.EndTime(), 150.0 + 1e-6);
  }
}

TEST_F(QuTTest, StitchingChainsAcrossSubChunks) {
  QuTClustering qut(tree_.get());
  auto result = qut.Query(0, 800);
  ASSERT_TRUE(result.ok());
  // The lanes move continuously; their per-sub-chunk cluster pieces must
  // be stitched into long chains rather than returned per sub-chunk.
  size_t max_chain = 0;
  for (const auto& cluster : result->clusters) {
    max_chain = std::max(max_chain, cluster.representatives.size());
  }
  EXPECT_GE(max_chain, 2u);
  EXPECT_GT(result->stats.stitches, 0u);
}

TEST_F(QuTTest, WideningWindowMonotoneMembers) {
  QuTClustering qut(tree_.get());
  size_t prev_members = 0;
  for (double we = 100; we <= 800; we += 100) {
    auto result = qut.Query(0, we);
    ASSERT_TRUE(result.ok());
    const size_t members = result->TotalMembers() + result->outliers.size();
    EXPECT_GE(members, prev_members);
    prev_members = members;
  }
}

TEST_F(QuTTest, DisjointWindowEmptyAnswer) {
  QuTClustering qut(tree_.get());
  auto result = qut.Query(5000, 6000);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->clusters.empty());
  EXPECT_TRUE(result->outliers.empty());
  EXPECT_EQ(result->stats.sub_chunks_visited, 0u);
}

TEST_F(QuTTest, AnswerRestrictedToWindow) {
  QuTClustering qut(tree_.get());
  auto result = qut.Query(200, 400);
  ASSERT_TRUE(result.ok());
  for (const auto& cluster : result->clusters) {
    EXPECT_GE(cluster.StartTime(), 200.0 - 1e-6);
    EXPECT_LE(cluster.EndTime(), 400.0 + 1e-6);
  }
}

TEST_F(QuTTest, AgreesWithFromScratchS2TOnMembership) {
  // QuT's answer over a window should roughly match running S2T from
  // scratch on the same window: same lane structure (2 groups), similar
  // member counts.
  QuTClustering qut(tree_.get());
  auto qut_result = qut.Query(0, 400);
  ASSERT_TRUE(qut_result.ok());

  auto genv = storage::Env::NewMemEnv();
  auto global_index =
      rtree::BuildSegmentIndex(genv.get(), "glob.idx", store_);
  ASSERT_TRUE(global_index.ok());
  auto baseline = baselines::RunRangeRebuild(store_, **global_index, 0, 400,
                                             TreeParams().s2t);
  ASSERT_TRUE(baseline.ok());

  // Both see two lanes (allowing minor fragmentation).
  EXPECT_GE(qut_result->clusters.size(), 2u);
  EXPECT_GE(baseline->s2t.NumClusters(), 2u);
  // Coverage: the majority of objects clustered by the baseline are also
  // clustered by QuT.
  std::set<traj::ObjectId> qut_objects;
  for (const auto& c : qut_result->clusters) {
    for (const auto& m : c.members) qut_objects.insert(m.object_id);
  }
  std::set<traj::ObjectId> base_objects;
  for (const auto& c : baseline->s2t.clustering.clusters) {
    for (size_t m : c.members) {
      base_objects.insert(baseline->s2t.sub_trajectories[m].object_id);
    }
  }
  size_t common = 0;
  for (traj::ObjectId id : base_objects) common += qut_objects.count(id);
  EXPECT_GE(common * 10, base_objects.size() * 7);  // >= 70% agreement.
}

TEST_F(QuTTest, StatsReportWork) {
  QuTClustering qut(tree_.get());
  auto result = qut.Query(0, 800);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.sub_chunks_visited,
            result->stats.sub_chunks_full + result->stats.sub_chunks_partial);
  EXPECT_GT(result->stats.members_read, 0u);
  EXPECT_GE(result->stats.elapsed_us, 0);
}

TEST_F(QuTTest, WarmHotTierProbesWithoutColdIoOrLocks) {
  QuTClustering qut(tree_.get());
  // First pass promotes every partition the window touches (full and
  // boundary sub-chunks both, so ReadMembers, ReadMembersInWindow, and
  // ReadOutliers all go hot).
  ASSERT_TRUE(qut.Query(50, 750).ok());
  const ColdIoStats io_before = tree_->cold_io_stats();
  const HotTierStats hot_before = tree_->hot_stats();
  auto result = qut.Query(50, 750);
  ASSERT_TRUE(result.ok());
  const ColdIoStats io_after = tree_->cold_io_stats();
  const HotTierStats hot_after = tree_->hot_stats();
  // The tier's acceptance bar: a warm QUT probe performs zero heap-file
  // page reads, zero Gist node visits/page reads, and zero per-partition
  // lock acquisitions — the probe path is one atomic snapshot load.
  EXPECT_EQ(io_after.heap_page_fetches, io_before.heap_page_fetches);
  EXPECT_EQ(io_after.heap_lock_acquisitions, io_before.heap_lock_acquisitions);
  EXPECT_EQ(io_after.index_nodes_visited, io_before.index_nodes_visited);
  EXPECT_EQ(io_after.index_page_fetches, io_before.index_page_fetches);
  EXPECT_EQ(io_after.index_lock_acquisitions,
            io_before.index_lock_acquisitions);
  EXPECT_GT(hot_after.qut_hot_probes, hot_before.qut_hot_probes);
  EXPECT_EQ(hot_after.qut_cold_probes, hot_before.qut_cold_probes);
  EXPECT_GT(hot_after.hot_index_bytes, 0u);
  EXPECT_GT(hot_after.hot_partitions, 0u);
}

TEST_F(QuTTest, ZeroBudgetDisablesAndDemotesHotTier) {
  QuTClustering qut(tree_.get());
  ASSERT_TRUE(qut.Query(0, 800).ok());  // Promote.
  ASSERT_GT(tree_->hot_stats().hot_index_bytes, 0u);
  tree_->SetHotIndexBudget(0);  // Demote everything, disable promotion.
  const HotTierStats demoted = tree_->hot_stats();
  EXPECT_EQ(demoted.hot_index_bytes, 0u);
  EXPECT_GT(demoted.hot_demotions, 0u);
  const uint64_t hot_probes = demoted.qut_hot_probes;
  auto result = qut.Query(0, 800);
  ASSERT_TRUE(result.ok());
  const HotTierStats after = tree_->hot_stats();
  EXPECT_EQ(after.qut_hot_probes, hot_probes);  // All probes went cold.
  EXPECT_GT(after.qut_cold_probes, demoted.qut_cold_probes);
  EXPECT_EQ(after.hot_index_bytes, 0u);
}

TEST_F(QuTTest, OverBudgetPartitionDoesNotRepayPromotionPerWindowRead) {
  // A tiny nonzero budget keeps the tier enabled but nothing fits.
  const RepresentativeEntry* entry = nullptr;
  for (const auto& [ci, chunk] : tree_->chunks()) {
    for (const auto& [si, sc] : chunk.sub_chunks) {
      for (const auto& e : sc.representatives) {
        if (entry == nullptr && e->member_count > 0) entry = e.get();
      }
    }
  }
  ASSERT_NE(entry, nullptr);
  tree_->SetHotIndexBudget(1);
  const uint64_t promotions = tree_->hot_stats().hot_promotions;

  // First window read pays the promote-on-read full scan, discovers the
  // snapshot can never fit, and memoizes that.
  const uint64_t read0 = tree_->stats().records_read;
  auto first = tree_->ReadMembersInWindow(*entry, 0, 800);
  ASSERT_TRUE(first.ok());
  const uint64_t read1 = tree_->stats().records_read;
  ASSERT_GT(first->size(), 0u);
  EXPECT_GT(read1 - read0, first->size());  // Scan + cold windowed read.

  // Later window reads skip the scan and go straight to the cold path:
  // exactly the window's records, nothing else.
  auto second = tree_->ReadMembersInWindow(*entry, 0, 800);
  ASSERT_TRUE(second.ok());
  const uint64_t read2 = tree_->stats().records_read;
  EXPECT_EQ(second->size(), first->size());
  EXPECT_EQ(read2 - read1, second->size());
  EXPECT_EQ(tree_->hot_stats().hot_promotions, promotions);

  // Raising the budget clears the memo: the next read promotes and
  // serves hot.
  tree_->SetHotIndexBudget(size_t{64} << 20);
  auto third = tree_->ReadMembersInWindow(*entry, 0, 800);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->size(), first->size());
  EXPECT_GT(tree_->hot_stats().hot_promotions, promotions);
}

TEST_F(QuTTest, HotSnapshotsReleaseTheirPins) {
  QuTClustering qut(tree_.get());
  ASSERT_TRUE(qut.Query(0, 800).ok());  // Promote.
  const auto& pins = tree_->hot_pin_registry();
  EXPECT_GT(pins->live.load(), 0u);
  EXPECT_GE(pins->total.load(), pins->live.load());
  tree_->SetHotIndexBudget(0);  // Demote: the only owners let go.
  EXPECT_EQ(pins->live.load(), 0u);
}

TEST_F(QuTTest, SurvivesSaveAndReopen) {
  // Persist the tree, reopen it, and ask the same question: the answer
  // must match the pre-restart one.
  QuTClustering before(tree_.get());
  auto expected = before.Query(0, 800);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(tree_->Save().ok());
  tree_.reset();

  auto reopened = ReTraTree::Open(env_.get(), "qut_tree", TreeParams());
  ASSERT_TRUE(reopened.ok());
  QuTClustering after(reopened->get());
  auto result = after.Query(0, 800);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters.size(), expected->clusters.size());
  EXPECT_EQ(result->TotalMembers(), expected->TotalMembers());
  EXPECT_EQ(result->outliers.size(), expected->outliers.size());
}

// Window-size sweep: QuT never reads more members than exist, and the
// boundary work scales with the boundary, not the window.
class QuTWindowSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuTWindowSweep, BoundaryWorkBounded) {
  auto env = storage::Env::NewMemEnv();
  traj::TrajectoryStore store;
  AddLane(&store, 0, 10, 0.0, 0, 795);
  auto tree = ReTraTree::Open(env.get(), "sweep_tree", TreeParams());
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE((*tree)->InsertStore(store).ok());
  QuTClustering qut(tree->get());
  const double we = GetParam();
  auto result = qut.Query(25, we);  // Always one leading partial sub-chunk.
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->stats.sub_chunks_partial, 2u);
}

INSTANTIATE_TEST_SUITE_P(Windows, QuTWindowSweep,
                         ::testing::Values(125.0, 325.0, 525.0, 800.0));

}  // namespace
}  // namespace hermes::core
