#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "datagen/noise.h"
#include "sql/cursor.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/settings.h"
#include "sql/tokenizer.h"
#include "sql/value.h"

namespace hermes::sql {
namespace {

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value::Int(42).type(), ValueType::kInt);
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_EQ(Value::Double(1.5).type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(Value::Double(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value::Str("hi").type(), ValueType::kString);
  EXPECT_EQ(Value::Str("hi").AsString(), "hi");
  // Numeric widening: ints read as doubles.
  EXPECT_DOUBLE_EQ(Value::Int(7).AsDouble(), 7.0);
  EXPECT_TRUE(Value::Int(7).is_numeric());
  EXPECT_TRUE(Value::Double(7).is_numeric());
  EXPECT_FALSE(Value::Str("7").is_numeric());
}

TEST(ValueTest, EqualityIsTypeExact) {
  EXPECT_EQ(Value::Int(2), Value::Int(2));
  EXPECT_NE(Value::Int(2), Value::Double(2.0));
  EXPECT_NE(Value::Int(2), Value::Str("2"));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Int(0));
}

TEST(ValueTest, DisplayForm) {
  EXPECT_EQ(Value::Null().ToString(), "");
  EXPECT_EQ(Value::Int(1234).ToString(), "1234");
  EXPECT_EQ(Value::Double(0.5).ToString(), "0.5");
  EXPECT_EQ(Value::Double(12345.678).ToString(), "1.235e+04");  // %.4g.
  EXPECT_EQ(Value::Str("x y").ToString(), "x y");
}

// ---------------------------------------------------------------------------
// Settings registry
// ---------------------------------------------------------------------------

TEST(SettingsTest, RegisterSetGet) {
  Settings settings;
  ASSERT_TRUE(settings.Register("hermes.alpha", Value::Double(1.0),
                                "test knob").ok());
  EXPECT_TRUE(settings.Register("HERMES.ALPHA", Value::Double(2.0), "dup")
                  .IsAlreadyExists());
  EXPECT_DOUBLE_EQ(settings.Get("hermes.alpha")->AsDouble(), 1.0);
  ASSERT_TRUE(settings.Set("HERMES.alpha", Value::Double(2.5)).ok());
  EXPECT_DOUBLE_EQ(settings.Get("hermes.alpha")->AsDouble(), 2.5);
  EXPECT_TRUE(settings.Get("hermes.beta").status().IsNotSupported());
  EXPECT_TRUE(
      settings.Set("hermes.beta", Value::Int(1)).IsNotSupported());
}

TEST(SettingsTest, CoercionRules) {
  Settings settings;
  ASSERT_TRUE(settings.Register("k.int", Value::Int(1), "int knob").ok());
  ASSERT_TRUE(settings.Register("k.dbl", Value::Double(1.0), "dbl").ok());
  // Integral double -> int.
  ASSERT_TRUE(settings.Set("k.int", Value::Double(4.0)).ok());
  EXPECT_EQ(*settings.Get("k.int"), Value::Int(4));
  // Fractional double -> error, value unchanged.
  EXPECT_TRUE(settings.Set("k.int", Value::Double(2.5))
                  .IsInvalidArgument());
  EXPECT_EQ(*settings.Get("k.int"), Value::Int(4));
  // Int widens for a double knob.
  ASSERT_TRUE(settings.Set("k.dbl", Value::Int(3)).ok());
  EXPECT_EQ(*settings.Get("k.dbl"), Value::Double(3.0));
  // Strings never coerce to numerics.
  EXPECT_TRUE(settings.Set("k.dbl", Value::Str("3")).IsInvalidArgument());
  EXPECT_TRUE(settings.Set("k.int", Value::Null()).IsInvalidArgument());
}

TEST(SettingsTest, ValidatorRejectsBeforeStateChanges) {
  Settings settings;
  int hook_calls = 0;
  ASSERT_TRUE(settings
                  .Register(
                      "k.pos", Value::Int(1), "positive",
                      [](const Value& v) {
                        return v.AsInt() > 0
                                   ? Status::OK()
                                   : Status::InvalidArgument("must be > 0");
                      },
                      [&hook_calls](const Value&) {
                        ++hook_calls;
                        return Status::OK();
                      })
                  .ok());
  EXPECT_TRUE(settings.Set("k.pos", Value::Int(0)).IsInvalidArgument());
  EXPECT_EQ(hook_calls, 0);  // Rejected before the hook fired.
  EXPECT_EQ(*settings.Get("k.pos"), Value::Int(1));
  ASSERT_TRUE(settings.Set("k.pos", Value::Int(9)).ok());
  EXPECT_EQ(hook_calls, 1);
}

TEST(SettingsTest, FailedHookRestoresPreviousValue) {
  Settings settings;
  ASSERT_TRUE(settings
                  .Register("k.h", Value::Int(1), "hooked", nullptr,
                            [](const Value& v) {
                              return v.AsInt() == 13
                                         ? Status::Internal("unlucky")
                                         : Status::OK();
                            })
                  .ok());
  ASSERT_TRUE(settings.Set("k.h", Value::Int(7)).ok());
  EXPECT_TRUE(settings.Set("k.h", Value::Int(13)).IsInternal());
  EXPECT_EQ(*settings.Get("k.h"), Value::Int(7));
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

TEST(TokenizerTest, BasicStatement) {
  auto tokens = Tokenize("SELECT QUT(d, 0, 100);");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 11u);  // incl. kEnd.
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "QUT");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kLParen);
  EXPECT_EQ((*tokens)[3].text, "D");  // Upper-cased.
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ((*tokens)[5].number, 0.0);
}

TEST(TokenizerTest, NumbersSignedAndScientific) {
  auto tokens = Tokenize("-1.5 +2e3 .25 7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ((*tokens)[0].number, -1.5);
  EXPECT_FALSE((*tokens)[0].is_integer);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, 2000.0);
  EXPECT_FALSE((*tokens)[1].is_integer);
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 0.25);
  EXPECT_DOUBLE_EQ((*tokens)[3].number, 7.0);
  EXPECT_TRUE((*tokens)[3].is_integer);
}

TEST(TokenizerTest, StringsAndComments) {
  auto tokens = Tokenize("LOAD MOD m FROM 'a b.csv'; -- comment\n");
  ASSERT_TRUE(tokens.ok());
  bool found = false;
  for (const auto& t : *tokens) {
    if (t.kind == TokenKind::kString) {
      EXPECT_EQ(t.text, "a b.csv");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TokenizerTest, Placeholders) {
  auto tokens = Tokenize("SELECT RANGE(d, $1, $23)");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ((*tokens)[5].kind, TokenKind::kParam);
  EXPECT_EQ((*tokens)[5].param_index, 1);
  EXPECT_EQ((*tokens)[5].text, "$1");
  ASSERT_EQ((*tokens)[7].kind, TokenKind::kParam);
  EXPECT_EQ((*tokens)[7].param_index, 23);

  EXPECT_TRUE(Tokenize("SELECT $").status().IsInvalidArgument());
  EXPECT_TRUE(Tokenize("SELECT $0").status().IsInvalidArgument());
  EXPECT_TRUE(Tokenize("SELECT $1000").status().IsInvalidArgument());
  EXPECT_TRUE(Tokenize("SELECT $99999999999").status().IsInvalidArgument());
}

TEST(TokenizerTest, UnterminatedStringFails) {
  EXPECT_TRUE(Tokenize("LOAD MOD m FROM 'oops").status().IsInvalidArgument());
}

TEST(TokenizerTest, StrayCharacterFails) {
  const Status status = Tokenize("SELECT @").status();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("at position 7"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ParserTest, CreateDropLoad) {
  auto create = ParseStatement("CREATE MOD flights;");
  ASSERT_TRUE(create.ok());
  EXPECT_EQ(create->kind, Statement::Kind::kCreateMod);
  EXPECT_EQ(create->mod, "FLIGHTS");

  auto drop = ParseStatement("drop mod flights");
  ASSERT_TRUE(drop.ok());
  EXPECT_EQ(drop->kind, Statement::Kind::kDropMod);

  auto load = ParseStatement("LOAD MOD flights FROM '/tmp/f.csv';");
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(load->kind, Statement::Kind::kLoadMod);
  EXPECT_EQ(load->path, "/tmp/f.csv");
}

TEST(ParserTest, InsertMultipleRows) {
  auto stmt = ParseStatement(
      "INSERT INTO d VALUES (1, 0, 10, 20), (1, 5, 11, 21);");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, Statement::Kind::kInsert);
  ASSERT_EQ(stmt->rows.size(), 2u);
  EXPECT_EQ(stmt->rows[1][1].value, Value::Int(5));
  EXPECT_EQ(stmt->rows[1][3].value, Value::Int(21));
}

TEST(ParserTest, SelectQutSignature) {
  auto stmt = ParseStatement(
      "SELECT QUT(D, 0, 3600, 900, 300, 75, 150, 32);");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, Statement::Kind::kSelect);
  EXPECT_EQ(stmt->function, "QUT");
  EXPECT_EQ(stmt->mod, "D");
  ASSERT_EQ(stmt->args.size(), 7u);
  EXPECT_EQ(stmt->args[2].value, Value::Int(900));
  EXPECT_EQ(stmt->num_params, 0);
}

TEST(ParserTest, NumericLiteralsKeepTheirSpelledType) {
  auto stmt = ParseStatement("SELECT S2T(d, 30, 60.5);");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->args[0].value, Value::Int(30));
  EXPECT_EQ(stmt->args[1].value, Value::Double(60.5));
  // Integer spellings beyond int64 range degrade to double, not UB.
  auto huge = ParseStatement("SELECT S2T(d, 99999999999999999999);");
  ASSERT_TRUE(huge.ok());
  EXPECT_EQ(huge->args[0].value.type(), ValueType::kDouble);
}

TEST(ParserTest, Placeholders) {
  auto stmt = ParseStatement("SELECT RANGE(d, $1, $2);");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->num_params, 2);
  EXPECT_EQ(stmt->args[0].param, 1);
  EXPECT_EQ(stmt->args[1].param, 2);

  auto insert = ParseStatement("INSERT INTO d VALUES ($1, $2, $3, $4);");
  ASSERT_TRUE(insert.ok());
  EXPECT_EQ(insert->num_params, 4);

  auto set = ParseStatement("SET hermes.threads = $1;");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->num_params, 1);
  EXPECT_EQ(set->set_value.param, 1);
}

TEST(ParserTest, SetStatementValueForms) {
  auto stmt = ParseStatement("SET hermes.threads = 4;");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, Statement::Kind::kSet);
  EXPECT_EQ(stmt->setting, "hermes.threads");
  EXPECT_EQ(stmt->set_value.value, Value::Int(4));

  auto dbl = ParseStatement("SET hermes.sigma = 1.5;");
  ASSERT_TRUE(dbl.ok());
  EXPECT_EQ(dbl->set_value.value, Value::Double(1.5));

  auto on = ParseStatement("SET hermes.use_index = on;");
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(on->set_value.value, Value::Int(1));
  auto off = ParseStatement("SET hermes.use_index = FALSE;");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->set_value.value, Value::Int(0));

  auto str = ParseStatement("SET hermes.mode = 'fast';");
  ASSERT_TRUE(str.ok());
  EXPECT_EQ(str->set_value.value, Value::Str("fast"));

  EXPECT_TRUE(ParseStatement("SET hermes.threads 4;")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseStatement("SET = 4;").status().IsInvalidArgument());
}

TEST(ParserTest, ShowStatement) {
  auto one = ParseStatement("SHOW hermes.threads;");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->kind, Statement::Kind::kShow);
  EXPECT_EQ(one->setting, "hermes.threads");

  auto all = ParseStatement("SHOW ALL;");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->setting, "all");

  auto stats = ParseStatement("show stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->setting, "stats");

  EXPECT_TRUE(ParseStatement("SHOW;").status().IsInvalidArgument());
}

TEST(ParserTest, ErrorsAreDescriptive) {
  EXPECT_TRUE(ParseStatement("FROB x").status().IsInvalidArgument());
  EXPECT_TRUE(ParseStatement("SELECT S2T d").status().IsInvalidArgument());
  EXPECT_TRUE(ParseStatement("CREATE TABLE t").status().IsInvalidArgument());
  EXPECT_TRUE(ParseStatement("SELECT QUT(d, 1").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseStatement("CREATE MOD a; extra").status().IsInvalidArgument());
}

TEST(ParserTest, ErrorsCarryPositionAndToken) {
  {
    const Status status = ParseStatement("SELECT S2T d").status();
    EXPECT_NE(status.message().find("at position 11"), std::string::npos)
        << status.message();
    EXPECT_NE(status.message().find("near 'D'"), std::string::npos);
  }
  {
    const Status status = ParseStatement("CREATE TABLE t").status();
    EXPECT_NE(status.message().find("at position 7"), std::string::npos)
        << status.message();
    EXPECT_NE(status.message().find("near 'TABLE'"), std::string::npos);
  }
  {
    // Truncated input points at end-of-input, not a stale token.
    const Status status = ParseStatement("SELECT QUT(d, 1").status();
    EXPECT_NE(status.message().find("near end of input"), std::string::npos)
        << status.message();
  }
}

TEST(ParserTest, ScriptSplitsStatements) {
  auto script = ParseScript(
      "CREATE MOD a; INSERT INTO a VALUES (1,0,0,0),(1,1,1,1); "
      "SELECT STATS(a);");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->size(), 3u);
}

TEST(ParserTest, ScriptSkipsEmptyStatements) {
  auto script = ParseScript(";;CREATE MOD a;; ;SELECT STATS(a);;;");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->size(), 2u);
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

class SqlSessionTest : public ::testing::Test {
 protected:
  Session session_;
};

TEST_F(SqlSessionTest, CreateInsertStats) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  ASSERT_TRUE(session_
                  .Execute("INSERT INTO d VALUES (1, 0, 0, 0), (1, 10, 100, "
                           "0), (2, 0, 0, 50), (2, 10, 100, 50);")
                  .ok());
  auto stats = session_.Execute("SELECT STATS(d);");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->rows.size(), 1u);
  EXPECT_EQ(stats->columns[0].name, "trajectories");
  EXPECT_EQ(stats->columns[0].type, ValueType::kInt);
  EXPECT_EQ(stats->rows[0][0], Value::Int(2));  // Trajectories.
  EXPECT_EQ(stats->rows[0][1], Value::Int(4));  // Points.
  EXPECT_EQ(stats->columns[3].type, ValueType::kDouble);
  EXPECT_EQ(stats->rows[0][4], Value::Double(10.0));  // t_max.
}

TEST_F(SqlSessionTest, DuplicateCreateFails) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  EXPECT_TRUE(session_.Execute("CREATE MOD d;").status().IsAlreadyExists());
}

TEST_F(SqlSessionTest, DropThenMissing) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  ASSERT_TRUE(session_.Execute("DROP MOD d;").ok());
  EXPECT_TRUE(session_.Execute("SELECT STATS(d);").status().IsNotFound());
  EXPECT_TRUE(session_.Execute("DROP MOD d;").status().IsNotFound());
}

TEST_F(SqlSessionTest, RangeQueryFiltersWindow) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  ASSERT_TRUE(session_
                  .Execute("INSERT INTO d VALUES (1, 0, 0, 0), (1, 100, 10, "
                           "0), (2, 500, 0, 0), (2, 600, 10, 0);")
                  .ok());
  auto result = session_.Execute("SELECT RANGE(d, 0, 200);");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);  // Only object 1.
  EXPECT_EQ(result->rows[0][0], Value::Int(1));
}

TEST_F(SqlSessionTest, S2TOverRegisteredScenario) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      2, 4, 2000.0, 800.0, 10.0, 10.0, /*seed=*/3, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("lanes", std::move(lanes)).ok());
  auto result = session_.Execute("SELECT S2T(lanes, 30, 60);");
  ASSERT_TRUE(result.ok());
  // Rows: clusters + the outlier summary line.
  ASSERT_GE(result->rows.size(), 3u);
  EXPECT_EQ(result->rows.back()[0], Value::Str("outliers"));
  // Data rows are typed: cluster ids int, rep times double.
  EXPECT_EQ(result->rows[0][0], Value::Int(0));
  EXPECT_EQ(result->rows[0][3].type(), ValueType::kDouble);
}

TEST_F(SqlSessionTest, QutBuildsTreeAndAnswers) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      2, 6, 5000.0, 1600.0, 10.0, 10.0, /*seed=*/5, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("lanes", std::move(lanes)).ok());
  auto result = session_.Execute(
      "SELECT QUT(lanes, 0, 160, 80, 40, 12, 80, 8);");
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->rows.size(), 1u);
  // Re-running with the same tree parameters reuses the tree.
  auto again = session_.Execute(
      "SELECT QUT(lanes, 40, 120, 80, 40, 12, 80, 8);");
  ASSERT_TRUE(again.ok());
}

TEST_F(SqlSessionTest, ShowStatsExposesIngestPhasesAfterQut) {
  // The tree build behind QUT runs the two-phase batch ingest; its
  // split/apply wall times must surface in SHOW STATS — both on the
  // sequential path (archived from the tree's stats) and with a live
  // exec context (recorded by InsertBatch itself).
  for (int threads : {1, 2}) {
    SCOPED_TRACE(threads);
    sql::Session session;
    ASSERT_TRUE(session
                    .Execute("SET hermes.threads = " +
                             std::to_string(threads) + ";")
                    .ok());
    traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
        2, 6, 5000.0, 1600.0, 10.0, 10.0, /*seed=*/5, /*jitter=*/1.0);
    ASSERT_TRUE(session.RegisterStore("lanes", std::move(lanes)).ok());
    ASSERT_TRUE(
        session.Execute("SELECT QUT(lanes, 0, 160, 80, 40, 12, 80, 8);")
            .ok());
    auto stats = session.Execute("SHOW STATS;");
    ASSERT_TRUE(stats.ok());
    bool saw_split = false;
    bool saw_apply = false;
    for (const auto& row : stats->rows) {
      if (row[0] == Value::Str("ingest_split")) saw_split = true;
      if (row[0] == Value::Str("ingest_apply")) saw_apply = true;
    }
    EXPECT_TRUE(saw_split);
    EXPECT_TRUE(saw_apply);
  }
}

TEST_F(SqlSessionTest, ArgumentCountValidatedWithPosition) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  EXPECT_TRUE(session_.Execute("SELECT QUT(d, 1, 2);").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session_.Execute("SELECT S2T(d, 1, 2, 3);").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session_.Execute("SELECT RANGE(d, 5, 5);").status()
                  .IsInvalidArgument());
  // Executor errors carry the offending token's position.
  const Status status = session_.Execute("SELECT QUT(d, 1, 2);").status();
  EXPECT_NE(status.message().find("at position 7 near 'QUT'"),
            std::string::npos)
      << status.message();
}

TEST_F(SqlSessionTest, UnknownFunctionRejected) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  EXPECT_TRUE(
      session_.Execute("SELECT FOO(d, 1);").status().IsNotSupported());
}

TEST_F(SqlSessionTest, LoadFromCsvFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "hermes_sql_load.csv")
          .string();
  {
    std::ofstream out(path);
    out << "obj_id,t,x,y\n";
    for (int i = 0; i < 10; ++i) {
      out << "7," << i * 10 << "," << i * 100 << ",0\n";
    }
  }
  auto result = session_.Execute("LOAD MOD fleet FROM '" + path + "';");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][1], Value::Int(1));
  auto stats = session_.Execute("SELECT STATS(fleet);");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows[0][0], Value::Int(1));
  EXPECT_EQ(stats->rows[0][1], Value::Int(10));
  std::filesystem::remove(path);
}

TEST_F(SqlSessionTest, FailedLoadLeavesNoPhantomMod) {
  EXPECT_FALSE(
      session_.Execute("LOAD MOD ghost FROM '/nonexistent/x.csv';").ok());
  // The failed load must not register an empty MOD...
  EXPECT_TRUE(session_.Execute("SELECT STATS(ghost);").status().IsNotFound());
  // ...and the name stays available.
  EXPECT_TRUE(session_.Execute("CREATE MOD ghost;").ok());
}

TEST_F(SqlSessionTest, TraclusFunctionRuns) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      1, 6, 10.0, 800.0, 10.0, 10.0, /*seed=*/9, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("bundle", std::move(lanes)).ok());
  auto result = session_.Execute("SELECT TRACLUS(bundle, 60, 3);");
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->rows.size(), 2u);  // >=1 cluster + noise row.
  EXPECT_EQ(result->rows.back()[0], Value::Str("noise"));
  EXPECT_TRUE(
      session_.Execute("SELECT TRACLUS(bundle, 60);").status()
          .IsInvalidArgument());
}

TEST_F(SqlSessionTest, TOpticsFunctionRuns) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      2, 4, 2000.0, 800.0, 10.0, 10.0, /*seed=*/11, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("lanes2", std::move(lanes)).ok());
  auto result = session_.Execute("SELECT TOPTICS(lanes2, 300, 3);");
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->rows.size(), 3u);  // 2 clusters + noise row.
  EXPECT_EQ(result->rows.back()[0], Value::Str("noise"));
}

TEST_F(SqlSessionTest, ConvoysFunctionRuns) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      1, 5, 10.0, 800.0, 10.0, 10.0, /*seed=*/13, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("fleet", std::move(lanes)).ok());
  auto result = session_.Execute("SELECT CONVOYS(fleet, 80, 3, 3, 20);");
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->rows.size(), 1u);
  EXPECT_EQ(result->columns[0].name, "convoy_id");
  EXPECT_TRUE(
      session_.Execute("SELECT CONVOYS(fleet, 80, 3);").status()
          .IsInvalidArgument());
}

TEST_F(SqlSessionTest, FindStoreIsCaseInsensitive) {
  ASSERT_TRUE(session_.Execute("CREATE MOD Mixed;").ok());
  EXPECT_NE(session_.FindStore("mixed"), nullptr);
  EXPECT_NE(session_.FindStore("MIXED"), nullptr);
  EXPECT_EQ(session_.FindStore("other"), nullptr);
}

// ---------------------------------------------------------------------------
// Table rendering
// ---------------------------------------------------------------------------

TEST(TableTest, ToStringGoldenAlignment) {
  Table t;
  t.columns = {{"a", ValueType::kInt}, {"long_column", ValueType::kString}};
  t.rows = {{Value::Int(1), Value::Str("x")},
            {Value::Int(22), Value::Str("yy")},
            {Value::Str("sum"), Value::Null()}};
  EXPECT_EQ(t.ToString(),
            "| a   | long_column |\n"
            "+-----+-------------+\n"
            "| 1   | x           |\n"
            "| 22  | yy          |\n"
            "| sum |             |\n");
}

// ---------------------------------------------------------------------------
// Script semantics
// ---------------------------------------------------------------------------

TEST_F(SqlSessionTest, ExecuteScriptReturnsLastResult) {
  auto result = session_.ExecuteScript(
      "CREATE MOD d; INSERT INTO d VALUES (1,0,0,0),(1,1,1,1); "
      "SELECT STATS(d);");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->columns[0].name, "trajectories");
}

TEST_F(SqlSessionTest, ExecuteScriptSkipsEmptyStatements) {
  auto result = session_.ExecuteScript(
      ";;CREATE MOD d;; INSERT INTO d VALUES (1,0,0,0),(1,1,1,1);"
      ";SELECT STATS(d);;");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0], Value::Int(1));
}

TEST_F(SqlSessionTest, ExecuteScriptReportsFailingStatementOrdinal) {
  // Statement 2 fails (no such MOD); statement 3 must not run.
  auto result = session_.ExecuteScript(
      "CREATE MOD a; SELECT STATS(missing); CREATE MOD b;");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_NE(result.status().message().find("statement 2:"),
            std::string::npos)
      << result.status().message();
  // The script stopped: MOD b was never created, MOD a was.
  EXPECT_TRUE(session_.Execute("SELECT STATS(b);").status().IsNotFound());
  EXPECT_TRUE(session_.Execute("SELECT STATS(a);").ok());
}

TEST_F(SqlSessionTest, ExecuteScriptEmptyFails) {
  EXPECT_TRUE(session_.ExecuteScript("").status().IsInvalidArgument());
  EXPECT_TRUE(session_.ExecuteScript(";;;").status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Settings via SQL: SET / SHOW
// ---------------------------------------------------------------------------

TEST_F(SqlSessionTest, SetThreadsControlsSessionParallelism) {
  EXPECT_EQ(session_.threads(), 1u);
  EXPECT_EQ(session_.exec_context(), nullptr);

  auto result = session_.Execute("SET hermes.threads = 4;");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0], Value::Str("SET hermes.threads = 4"));
  EXPECT_EQ(session_.threads(), 4u);
  ASSERT_NE(session_.exec_context(), nullptr);
  EXPECT_EQ(session_.exec_context()->threads(), 4u);

  // Back to sequential: the context is dropped.
  ASSERT_TRUE(session_.Execute("SET hermes.threads = 1;").ok());
  EXPECT_EQ(session_.exec_context(), nullptr);
}

TEST_F(SqlSessionTest, ShowStatsExposesHotTierCounters) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      2, 6, 5000.0, 1600.0, 10.0, 10.0, /*seed=*/5, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("lanes", std::move(lanes)).ok());
  ASSERT_TRUE(
      session_.Execute("SELECT QUT(lanes, 0, 160, 80, 40, 12, 80, 8);").ok());
  // Second identical query: the tree is reused and the partitions the
  // first query promoted now serve from the hot tier.
  ASSERT_TRUE(
      session_.Execute("SELECT QUT(lanes, 0, 160, 80, 40, 12, 80, 8);").ok());
  auto stats = session_.Execute("SHOW STATS;");
  ASSERT_TRUE(stats.ok());
  int64_t hot = -1, cold = -1, bytes = -1, promotions = -1;
  for (const auto& row : stats->rows) {
    if (row[0] == Value::Str("qut_hot_probes")) hot = row[1].AsInt();
    if (row[0] == Value::Str("qut_cold_probes")) cold = row[1].AsInt();
    if (row[0] == Value::Str("hot_index_bytes")) bytes = row[1].AsInt();
    if (row[0] == Value::Str("hot_promotions")) promotions = row[1].AsInt();
  }
  EXPECT_GT(hot, 0);
  EXPECT_GT(cold, 0);  // The first (promoting) pass counted cold.
  EXPECT_GT(bytes, 0);
  EXPECT_GT(promotions, 0);
}

TEST_F(SqlSessionTest, HotIndexBudgetZeroKeepsQutCold) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      2, 6, 5000.0, 1600.0, 10.0, 10.0, /*seed=*/5, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("lanes", std::move(lanes)).ok());
  ASSERT_TRUE(session_.Execute("SET hermes.hot_index_budget = 0;").ok());
  ASSERT_TRUE(
      session_.Execute("SELECT QUT(lanes, 0, 160, 80, 40, 12, 80, 8);").ok());
  ASSERT_TRUE(
      session_.Execute("SELECT QUT(lanes, 0, 160, 80, 40, 12, 80, 8);").ok());
  auto stats = session_.Execute("SHOW STATS;");
  ASSERT_TRUE(stats.ok());
  for (const auto& row : stats->rows) {
    if (row[0] == Value::Str("qut_hot_probes")) {
      EXPECT_EQ(row[1], Value::Int(0));
    }
    if (row[0] == Value::Str("hot_index_bytes")) {
      EXPECT_EQ(row[1], Value::Int(0));
    }
  }
}

TEST_F(SqlSessionTest, SettingsValidateAtTheBoundary) {
  // Regression: 0 / negative / non-integer / out-of-range values used to
  // slip through as silent casts; the registry must reject them all with
  // InvalidArgument and leave the setting untouched.
  for (const char* bad :
       {"SET hermes.threads = 0;", "SET hermes.threads = -2;",
        "SET hermes.threads = 2.5;", "SET hermes.threads = 1e9;",
        "SET hermes.threads = 99999999999999999999;",
        "SET hermes.threads = 'four';"}) {
    EXPECT_TRUE(session_.Execute(bad).status().IsInvalidArgument()) << bad;
    EXPECT_EQ(session_.threads(), 1u) << bad;
  }
  EXPECT_TRUE(session_.Execute("SET hermes.sigma = 0;")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session_.Execute("SET hermes.epsilon = -1;")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session_.Execute("SET hermes.use_index = 2;")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session_.Execute("SET hermes.hot_index_budget = -1;")
                  .status()
                  .IsInvalidArgument());
  // 0 is in-domain: it disables the hot tier rather than being an error.
  EXPECT_TRUE(session_.Execute("SET hermes.hot_index_budget = 0;").ok());
  // Unknown knobs are NotSupported (distinct from bad values).
  EXPECT_TRUE(session_.Execute("SET hermes.workers = 2;")
                  .status()
                  .IsNotSupported());
}

TEST_F(SqlSessionTest, ShowSingleSettingAndAll) {
  ASSERT_TRUE(session_.Execute("SET hermes.threads = 2;").ok());
  auto one = session_.Execute("SHOW hermes.threads;");
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->rows.size(), 1u);
  EXPECT_EQ(one->rows[0][0], Value::Str("hermes.threads"));
  EXPECT_EQ(one->rows[0][1], Value::Int(2));  // Typed, not a string.
  EXPECT_EQ(one->rows[0][2], Value::Str("int"));

  auto all = session_.Execute("SHOW ALL;");
  ASSERT_TRUE(all.ok());
  ASSERT_GE(all->rows.size(), 4u);
  bool saw_sigma = false, saw_use_index = false;
  for (const auto& row : all->rows) {
    if (row[0] == Value::Str("hermes.sigma")) {
      saw_sigma = true;
      EXPECT_EQ(row[1].type(), ValueType::kDouble);
    }
    if (row[0] == Value::Str("hermes.use_index")) {
      saw_use_index = true;
      EXPECT_EQ(row[1], Value::Int(1));
    }
  }
  EXPECT_TRUE(saw_sigma);
  EXPECT_TRUE(saw_use_index);

  EXPECT_TRUE(
      session_.Execute("SHOW hermes.nope;").status().IsNotSupported());
}

TEST_F(SqlSessionTest, S2TUsesSessionDefaultsWhenArgsOmitted) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      2, 4, 2000.0, 800.0, 10.0, 10.0, /*seed=*/3, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("lanes", std::move(lanes)).ok());

  auto explicit_args = session_.Execute("SELECT S2T(lanes, 30, 60);");
  ASSERT_TRUE(explicit_args.ok());

  ASSERT_TRUE(session_.Execute("SET hermes.sigma = 30;").ok());
  ASSERT_TRUE(session_.Execute("SET hermes.epsilon = 60;").ok());
  auto defaults = session_.Execute("SELECT S2T(lanes);");
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(explicit_args->rows, defaults->rows);

  // One trailing arg: sigma explicit, epsilon from the session default.
  auto partial = session_.Execute("SELECT S2T(lanes, 30);");
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(explicit_args->rows, partial->rows);
}

TEST_F(SqlSessionTest, UseIndexSettingSwitchesEngineBitExactly) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      2, 4, 2000.0, 800.0, 10.0, 10.0, /*seed=*/7, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("lanes", std::move(lanes)).ok());
  auto indexed = session_.Execute("SELECT S2T(lanes, 30, 60);");
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(session_.Execute("SET hermes.use_index = off;").ok());
  auto naive = session_.Execute("SELECT S2T(lanes, 30, 60);");
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(indexed->rows, naive->rows);  // Engines agree exactly.
}

TEST_F(SqlSessionTest, ShowStatsAccumulatesTypedTimings) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      2, 4, 2000.0, 800.0, 10.0, 10.0, /*seed=*/3, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("lanes", std::move(lanes)).ok());
  ASSERT_TRUE(session_.Execute("SELECT S2T(lanes, 30, 60);").ok());
  auto stats = session_.Execute("SHOW STATS;");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->columns.size(), 2u);
  EXPECT_EQ(stats->columns[1].type, ValueType::kInt);
  bool saw_voting = false;
  for (const auto& row : stats->rows) {
    if (row[0] == Value::Str("s2t_voting")) {
      saw_voting = true;
      EXPECT_GE(row[1].AsInt(), 0);
    }
  }
  EXPECT_TRUE(saw_voting);
  // The session accessor exposes the same numbers typed.
  EXPECT_GE(session_.stats().PhaseUs("s2t_segmentation"), 0);
}

TEST_F(SqlSessionTest, ThreadsSettingMidSessionKeepsS2TBitIdentical) {
  // `SET hermes.threads` must take effect mid-session without changing a
  // single output bit: the member listing of a 4-thread run — every
  // parallel phase engaged (probe handles, vote kernel, NaTS two-pass) —
  // equals the 1-thread run row for row.
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      2, 5, 2000.0, 800.0, 10.0, 10.0, /*seed=*/9, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("lanes", std::move(lanes)).ok());

  auto seq = session_.Execute("SELECT S2T_MEMBERS(lanes, 30, 60);");
  ASSERT_TRUE(seq.ok());
  ASSERT_GE(seq->rows.size(), 2u);
  EXPECT_EQ(session_.exec_context(), nullptr);

  ASSERT_TRUE(session_.Execute("SET hermes.threads = 4;").ok());
  auto par = session_.Execute("SELECT S2T_MEMBERS(lanes, 30, 60);");
  ASSERT_TRUE(par.ok());
  ASSERT_EQ(session_.threads(), 4u);
  EXPECT_EQ(seq->rows, par->rows);  // Bit-identical, not merely similar.

  // SHOW STATS surfaces the newly parallel phases' timings, merged across
  // the sequential archive and the live 4-thread context.
  auto stats = session_.Execute("SHOW STATS;");
  ASSERT_TRUE(stats.ok());
  bool saw_probe = false, saw_kernel = false, saw_dp = false,
       saw_materialize = false;
  for (const auto& row : stats->rows) {
    if (row[0] == Value::Str("s2t_voting_probe")) saw_probe = true;
    if (row[0] == Value::Str("s2t_voting_kernel")) saw_kernel = true;
    if (row[0] == Value::Str("s2t_segmentation_dp")) saw_dp = true;
    if (row[0] == Value::Str("s2t_segmentation_materialize")) {
      saw_materialize = true;
    }
    if (row[0].type() == ValueType::kString) {
      EXPECT_GE(row[1].AsInt(), 0) << row[0].ToString();
    }
  }
  EXPECT_TRUE(saw_probe);
  EXPECT_TRUE(saw_kernel);
  EXPECT_TRUE(saw_dp);
  EXPECT_TRUE(saw_materialize);

  // And back down to 1 thread: still the same rows.
  ASSERT_TRUE(session_.Execute("SET hermes.threads = 1;").ok());
  auto seq_again = session_.Execute("SELECT S2T_MEMBERS(lanes, 30, 60);");
  ASSERT_TRUE(seq_again.ok());
  EXPECT_EQ(seq->rows, seq_again->rows);
}

TEST_F(SqlSessionTest, QutTreeBuildTimingsArchivedSequentially) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      2, 6, 5000.0, 1600.0, 10.0, 10.0, /*seed=*/5, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("lanes", std::move(lanes)).ok());
  ASSERT_TRUE(
      session_.Execute("SELECT QUT(lanes, 0, 160, 80, 40, 12, 80, 8);").ok());
  // Even without a live context, the tree build's S2T phases land in the
  // session archive (regression: SHOW STATS coverage depended on
  // hermes.threads).
  const auto phases = session_.stats().PhaseTimings();
  EXPECT_EQ(phases.count("s2t_voting"), 1u);
  EXPECT_EQ(phases.count("qut_query"), 1u);
}

TEST_F(SqlSessionTest, ShowStatsNotDoubleCountedWithLiveContext) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      2, 4, 2000.0, 800.0, 10.0, 10.0, /*seed=*/3, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("lanes", std::move(lanes)).ok());
  ASSERT_TRUE(session_.Execute("SET hermes.threads = 2;").ok());
  ASSERT_TRUE(session_.Execute("SELECT S2T(lanes, 30, 60);").ok());
  // With a live context the core records the s2t_* phases into it; the
  // session archive must NOT hold a second copy (regression: SHOW STATS
  // double-counted every phase while threads > 1).
  EXPECT_EQ(session_.stats().PhaseTimings().count("s2t_voting"), 0u);
  auto stats = session_.Execute("SHOW STATS;");
  ASSERT_TRUE(stats.ok());
  bool saw_voting = false;
  for (const auto& row : stats->rows) {
    if (row[0] == Value::Str("s2t_voting")) saw_voting = true;
  }
  EXPECT_TRUE(saw_voting);
  // Retiring the context (threads back to 1) folds its timings into the
  // session archive, so the breakdown survives the swap.
  ASSERT_TRUE(session_.Execute("SET hermes.threads = 1;").ok());
  EXPECT_EQ(session_.stats().PhaseTimings().count("s2t_voting"), 1u);
}

// ---------------------------------------------------------------------------
// Prepared statements
// ---------------------------------------------------------------------------

TEST_F(SqlSessionTest, PreparedRangeExecutesWithBoundValues) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  ASSERT_TRUE(session_
                  .Execute("INSERT INTO d VALUES (1, 0, 0, 0), (1, 100, 10, "
                           "0), (2, 500, 0, 0), (2, 600, 10, 0);")
                  .ok());
  auto prepared = session_.Prepare("SELECT RANGE(d, $1, $2);");
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->num_params(), 2);

  ASSERT_TRUE(prepared->Bind(1, Value::Double(0)).ok());
  ASSERT_TRUE(prepared->Bind(2, Value::Double(200)).ok());
  auto bound = prepared->Execute();
  ASSERT_TRUE(bound.ok());
  auto direct = session_.Execute("SELECT RANGE(d, 0, 200);");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(bound->rows, direct->rows);

  // Re-bind one parameter and re-execute — no re-parse, new window.
  ASSERT_TRUE(prepared->Bind(2, Value::Double(700)).ok());
  auto wider = prepared->Execute();
  ASSERT_TRUE(wider.ok());
  EXPECT_EQ(wider->rows.size(), 2u);
}

TEST_F(SqlSessionTest, PreparedRangeWithModPlaceholder) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  ASSERT_TRUE(session_
                  .Execute("INSERT INTO d VALUES (1, 0, 0, 0), (1, 100, 10, "
                           "0), (2, 500, 0, 0), (2, 600, 10, 0);")
                  .ok());
  // The MOD position itself is a placeholder: the acceptance shape
  // `SELECT RANGE($1, $2, $3)` from the issue.
  auto prepared = session_.Prepare("SELECT RANGE($1, $2, $3);");
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->num_params(), 3);
  ASSERT_TRUE(prepared->Bind(1, Value::Str("d")).ok());
  ASSERT_TRUE(prepared->Bind(2, Value::Double(0)).ok());
  ASSERT_TRUE(prepared->Bind(3, Value::Double(200)).ok());
  auto bound = prepared->Execute();
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  auto direct = session_.Execute("SELECT RANGE(d, 0, 200);");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(bound->rows, direct->rows);
  // A non-string MOD binding is a typed error; an unknown name NotFound.
  ASSERT_TRUE(prepared->Bind(1, Value::Int(7)).ok());
  EXPECT_TRUE(prepared->Execute().status().IsInvalidArgument());
  ASSERT_TRUE(prepared->Bind(1, Value::Str("missing")).ok());
  EXPECT_TRUE(prepared->Execute().status().IsNotFound());
}

TEST_F(SqlSessionTest, PreparedBindingErrors) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  auto prepared = session_.Prepare("SELECT RANGE(d, $1, $2);");
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE(prepared->Bind(0, Value::Int(1)).IsInvalidArgument());
  EXPECT_TRUE(prepared->Bind(3, Value::Int(1)).IsInvalidArgument());
  // Unbound $2: execution refuses.
  ASSERT_TRUE(prepared->Bind(1, Value::Int(0)).ok());
  const Status status = prepared->Execute().status();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("$2"), std::string::npos);
  // Binding a non-number surfaces at execution with a typed error.
  ASSERT_TRUE(prepared->Bind(2, Value::Str("oops")).ok());
  EXPECT_TRUE(prepared->Execute().status().IsInvalidArgument());
}

TEST_F(SqlSessionTest, PreparedInsertReusedByMaintenanceLoop) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  auto insert = session_.Prepare("INSERT INTO d VALUES ($1, $2, $3, $4);");
  ASSERT_TRUE(insert.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(insert->Bind(1, Value::Int(100 + i)).ok());
    ASSERT_TRUE(insert->Bind(2, Value::Double(0)).ok());
    ASSERT_TRUE(insert->Bind(3, Value::Double(i)).ok());
    ASSERT_TRUE(insert->Bind(4, Value::Double(0)).ok());
    auto ack = insert->Execute();
    ASSERT_TRUE(ack.ok());
    EXPECT_EQ(ack->rows[0][1], Value::Int(1));
  }
  auto stats = session_.Execute("SELECT STATS(d);");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows[0][0], Value::Int(5));
}

TEST_F(SqlSessionTest, PreparedSetStatement) {
  auto set = session_.Prepare("SET hermes.threads = $1;");
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE(set->Bind(1, Value::Int(2)).ok());
  ASSERT_TRUE(set->Execute().ok());
  EXPECT_EQ(session_.threads(), 2u);
  // Bad bound value hits the same boundary validation.
  ASSERT_TRUE(set->Bind(1, Value::Int(0)).ok());
  EXPECT_TRUE(set->Execute().status().IsInvalidArgument());
  EXPECT_EQ(session_.threads(), 2u);
}

TEST_F(SqlSessionTest, UnpreparedExecuteRejectsPlaceholders) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  EXPECT_TRUE(session_.Execute("SELECT RANGE(d, $1, $2);")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session_.ExecuteScript("CREATE MOD e; SELECT RANGE(e, $1, 2);")
                  .status()
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Cursors
// ---------------------------------------------------------------------------

TEST_F(SqlSessionTest, RangeCursorMatchesExecute) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  ASSERT_TRUE(session_
                  .Execute("INSERT INTO d VALUES (1, 0, 0, 0), (1, 100, 10, "
                           "0), (2, 0, 0, 9), (2, 100, 10, 9), "
                           "(3, 500, 0, 0), (3, 600, 10, 0);")
                  .ok());
  auto table = session_.Execute("SELECT RANGE(d, 0, 200);");
  ASSERT_TRUE(table.ok());

  auto cursor = session_.ExecuteCursor("SELECT RANGE(d, 0, 200);");
  ASSERT_TRUE(cursor.ok());
  ASSERT_EQ((*cursor)->columns().size(), 2u);
  EXPECT_EQ((*cursor)->columns()[0].name, "object_id");
  std::vector<std::vector<Value>> streamed;
  std::vector<Value> row;
  while (true) {
    auto more = (*cursor)->Next(&row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    streamed.push_back(row);
  }
  EXPECT_EQ(streamed, table->rows);
  // Exhausted cursors stay exhausted.
  auto again = (*cursor)->Next(&row);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
}

TEST_F(SqlSessionTest, CursorCanStopEarly) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  for (int obj = 0; obj < 20; ++obj) {
    std::string sql = "INSERT INTO d VALUES (" + std::to_string(obj) +
                      ", 0, 0, 0), (" + std::to_string(obj) + ", 10, 5, 0);";
    ASSERT_TRUE(session_.Execute(sql).ok());
  }
  auto cursor = session_.ExecuteCursor("SELECT RANGE(d, 0, 100);");
  ASSERT_TRUE(cursor.ok());
  // Read only the first three rows; dropping the cursor abandons the rest
  // without materializing them.
  std::vector<Value> row;
  for (int i = 0; i < 3; ++i) {
    auto more = (*cursor)->Next(&row);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
    EXPECT_EQ(row[0], Value::Int(i));
  }
}

TEST_F(SqlSessionTest, S2TMembersCursorStreamsEveryMember) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      2, 4, 2000.0, 800.0, 10.0, 10.0, /*seed=*/3, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("lanes", std::move(lanes)).ok());
  auto summary = session_.Execute("SELECT S2T(lanes, 30, 60);");
  ASSERT_TRUE(summary.ok());
  // Total members across clusters + outliers, from the typed summary.
  int64_t expected = 0;
  for (const auto& r : summary->rows) expected += r[1].AsInt();

  auto cursor = session_.ExecuteCursor("SELECT S2T_MEMBERS(lanes, 30, 60);");
  ASSERT_TRUE(cursor.ok());
  int64_t streamed = 0;
  int64_t outlier_rows = 0;
  std::vector<Value> row;
  while (true) {
    auto more = (*cursor)->Next(&row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ++streamed;
    if (row[0].is_null()) ++outlier_rows;
    EXPECT_EQ(row[1].type(), ValueType::kInt);     // object_id.
    EXPECT_EQ(row[2].type(), ValueType::kDouble);  // start.
  }
  EXPECT_EQ(streamed, expected);
  EXPECT_EQ(outlier_rows, summary->rows.back()[1].AsInt());
}

TEST_F(SqlSessionTest, MaterializingStatementsStillCursor) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  auto cursor = session_.ExecuteCursor("SELECT STATS(d);");
  ASSERT_TRUE(cursor.ok());
  auto table = (*cursor)->ToTable();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0][0], Value::Int(0));
}

// ---------------------------------------------------------------------------
// Settings are session-scoped, never process-global
// ---------------------------------------------------------------------------

TEST(SessionScopingTest, SettingsInTwoSessionsDoNotInterfere) {
  Session a;
  Session b;
  // Defaults are independent registries seeded from the same constants.
  EXPECT_EQ(a.settings().Get("hermes.sigma")->AsDouble(), 100.0);
  EXPECT_EQ(b.settings().Get("hermes.sigma")->AsDouble(), 100.0);

  // Every hermes.* knob set in `a` — including the ones whose on-change
  // hooks react (threads swaps the ExecContext) — must leave `b` at its
  // defaults: the hooks mutate only their owning session.
  ASSERT_TRUE(a.Execute("SET hermes.threads = 4;").ok());
  ASSERT_TRUE(a.Execute("SET hermes.sigma = 42;").ok());
  ASSERT_TRUE(a.Execute("SET hermes.epsilon = 84;").ok());
  ASSERT_TRUE(a.Execute("SET hermes.use_index = off;").ok());
  EXPECT_EQ(a.threads(), 4u);
  EXPECT_NE(a.exec_context(), nullptr);
  EXPECT_EQ(b.threads(), 1u);
  EXPECT_EQ(b.exec_context(), nullptr);
  EXPECT_EQ(b.settings().Get("hermes.threads")->AsInt(), 1);
  EXPECT_EQ(b.settings().Get("hermes.sigma")->AsDouble(), 100.0);
  EXPECT_EQ(b.settings().Get("hermes.epsilon")->AsDouble(), 200.0);
  EXPECT_EQ(b.settings().Get("hermes.use_index")->AsInt(), 1);

  // And each session's S2T picks up its *own* defaults: same MOD data,
  // different bandwidths, independently resolved.
  traj::TrajectoryStore lanes_a = datagen::MakeParallelLanes(
      2, 3, 2000.0, 800.0, 10.0, 10.0, /*seed=*/5, /*jitter=*/1.0);
  traj::TrajectoryStore lanes_b = lanes_a;
  ASSERT_TRUE(a.RegisterStore("lanes", std::move(lanes_a)).ok());
  ASSERT_TRUE(b.RegisterStore("lanes", std::move(lanes_b)).ok());
  auto wide = b.Execute("SELECT S2T(lanes);");      // sigma=100, eps=200.
  ASSERT_TRUE(wide.ok());
  auto explicit_b = b.Execute("SELECT S2T(lanes, 100, 200);");
  ASSERT_TRUE(explicit_b.ok());
  EXPECT_EQ(wide->rows, explicit_b->rows);
  auto narrow = a.Execute("SELECT S2T(lanes);");    // sigma=42, eps=84.
  ASSERT_TRUE(narrow.ok());
  auto explicit_a = a.Execute("SELECT S2T(lanes, 42, 84);");
  ASSERT_TRUE(explicit_a.ok());
  EXPECT_EQ(narrow->rows, explicit_a->rows);
}

TEST(SessionScopingTest, FlushIsANoOpAckAndServiceStatsNeedsAService) {
  Session session;
  // Embedded sessions apply INSERT synchronously, so FLUSH just acks.
  auto flush = session.Execute("FLUSH;");
  ASSERT_TRUE(flush.ok());
  EXPECT_EQ(flush->rows[0][0], Value::Str("FLUSH"));
  // SHOW SERVICE STATS is a service-session statement.
  auto svc = session.Execute("SHOW SERVICE STATS;");
  EXPECT_FALSE(svc.ok());
  EXPECT_EQ(svc.status().code(), StatusCode::kNotSupported);
}

// ---------------------------------------------------------------------------
// Thread-count invariance (unchanged contract)
// ---------------------------------------------------------------------------

TEST_F(SqlSessionTest, S2TResultsAreThreadCountInvariant) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      2, 4, 2000.0, 800.0, 10.0, 10.0, /*seed=*/3, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("parlanes", std::move(lanes)).ok());
  auto seq = session_.Execute("SELECT S2T(parlanes, 30, 60);");
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(session_.Execute("SET hermes.threads = 4;").ok());
  auto par = session_.Execute("SELECT S2T(parlanes, 30, 60);");
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(seq->rows, par->rows);
}

}  // namespace
}  // namespace hermes::sql
