#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "datagen/noise.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/tokenizer.h"

namespace hermes::sql {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

TEST(TokenizerTest, BasicStatement) {
  auto tokens = Tokenize("SELECT QUT(d, 0, 100);");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 11u);  // incl. kEnd.
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "QUT");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kLParen);
  EXPECT_EQ((*tokens)[3].text, "D");  // Upper-cased.
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ((*tokens)[5].number, 0.0);
}

TEST(TokenizerTest, NumbersSignedAndScientific) {
  auto tokens = Tokenize("-1.5 +2e3 .25 7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ((*tokens)[0].number, -1.5);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, 2000.0);
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 0.25);
  EXPECT_DOUBLE_EQ((*tokens)[3].number, 7.0);
}

TEST(TokenizerTest, StringsAndComments) {
  auto tokens = Tokenize("LOAD MOD m FROM 'a b.csv'; -- comment\n");
  ASSERT_TRUE(tokens.ok());
  bool found = false;
  for (const auto& t : *tokens) {
    if (t.kind == TokenKind::kString) {
      EXPECT_EQ(t.text, "a b.csv");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TokenizerTest, UnterminatedStringFails) {
  EXPECT_TRUE(Tokenize("LOAD MOD m FROM 'oops").status().IsInvalidArgument());
}

TEST(TokenizerTest, StrayCharacterFails) {
  EXPECT_TRUE(Tokenize("SELECT @").status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ParserTest, CreateDropLoad) {
  auto create = ParseStatement("CREATE MOD flights;");
  ASSERT_TRUE(create.ok());
  EXPECT_EQ(create->kind, Statement::Kind::kCreateMod);
  EXPECT_EQ(create->mod, "FLIGHTS");

  auto drop = ParseStatement("drop mod flights");
  ASSERT_TRUE(drop.ok());
  EXPECT_EQ(drop->kind, Statement::Kind::kDropMod);

  auto load = ParseStatement("LOAD MOD flights FROM '/tmp/f.csv';");
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(load->kind, Statement::Kind::kLoadMod);
  EXPECT_EQ(load->path, "/tmp/f.csv");
}

TEST(ParserTest, InsertMultipleRows) {
  auto stmt = ParseStatement(
      "INSERT INTO d VALUES (1, 0, 10, 20), (1, 5, 11, 21);");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, Statement::Kind::kInsert);
  ASSERT_EQ(stmt->rows.size(), 2u);
  EXPECT_DOUBLE_EQ(stmt->rows[1][1], 5.0);
  EXPECT_DOUBLE_EQ(stmt->rows[1][3], 21.0);
}

TEST(ParserTest, SelectQutSignature) {
  auto stmt = ParseStatement(
      "SELECT QUT(D, 0, 3600, 900, 300, 75, 150, 32);");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, Statement::Kind::kSelect);
  EXPECT_EQ(stmt->function, "QUT");
  EXPECT_EQ(stmt->mod, "D");
  ASSERT_EQ(stmt->args.size(), 7u);
  EXPECT_DOUBLE_EQ(stmt->args[2], 900.0);
}

TEST(ParserTest, ErrorsAreDescriptive) {
  EXPECT_TRUE(ParseStatement("FROB x").status().IsInvalidArgument());
  EXPECT_TRUE(ParseStatement("SELECT S2T d").status().IsInvalidArgument());
  EXPECT_TRUE(ParseStatement("CREATE TABLE t").status().IsInvalidArgument());
  EXPECT_TRUE(ParseStatement("SELECT QUT(d, 1").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseStatement("CREATE MOD a; extra").status().IsInvalidArgument());
}

TEST(ParserTest, ScriptSplitsStatements) {
  auto script = ParseScript(
      "CREATE MOD a; INSERT INTO a VALUES (1,0,0,0),(1,1,1,1); "
      "SELECT STATS(a);");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->size(), 3u);
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

class SqlSessionTest : public ::testing::Test {
 protected:
  Session session_;
};

TEST_F(SqlSessionTest, CreateInsertStats) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  ASSERT_TRUE(session_
                  .Execute("INSERT INTO d VALUES (1, 0, 0, 0), (1, 10, 100, "
                           "0), (2, 0, 0, 50), (2, 10, 100, 50);")
                  .ok());
  auto stats = session_.Execute("SELECT STATS(d);");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->rows.size(), 1u);
  EXPECT_EQ(stats->rows[0][0], "2");  // Trajectories.
  EXPECT_EQ(stats->rows[0][1], "4");  // Points.
}

TEST_F(SqlSessionTest, DuplicateCreateFails) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  EXPECT_TRUE(session_.Execute("CREATE MOD d;").status().IsAlreadyExists());
}

TEST_F(SqlSessionTest, DropThenMissing) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  ASSERT_TRUE(session_.Execute("DROP MOD d;").ok());
  EXPECT_TRUE(session_.Execute("SELECT STATS(d);").status().IsNotFound());
  EXPECT_TRUE(session_.Execute("DROP MOD d;").status().IsNotFound());
}

TEST_F(SqlSessionTest, RangeQueryFiltersWindow) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  ASSERT_TRUE(session_
                  .Execute("INSERT INTO d VALUES (1, 0, 0, 0), (1, 100, 10, "
                           "0), (2, 500, 0, 0), (2, 600, 10, 0);")
                  .ok());
  auto result = session_.Execute("SELECT RANGE(d, 0, 200);");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);  // Only object 1.
  EXPECT_EQ(result->rows[0][0], "1");
}

TEST_F(SqlSessionTest, S2TOverRegisteredScenario) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      2, 4, 2000.0, 800.0, 10.0, 10.0, /*seed=*/3, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("lanes", std::move(lanes)).ok());
  auto result = session_.Execute("SELECT S2T(lanes, 30, 60);");
  ASSERT_TRUE(result.ok());
  // Rows: clusters + the outlier summary line.
  ASSERT_GE(result->rows.size(), 3u);
  EXPECT_EQ(result->rows.back()[0], "outliers");
}

TEST_F(SqlSessionTest, QutBuildsTreeAndAnswers) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      2, 6, 5000.0, 1600.0, 10.0, 10.0, /*seed=*/5, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("lanes", std::move(lanes)).ok());
  auto result = session_.Execute(
      "SELECT QUT(lanes, 0, 160, 80, 40, 12, 80, 8);");
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->rows.size(), 1u);
  // Re-running with the same tree parameters reuses the tree.
  auto again = session_.Execute(
      "SELECT QUT(lanes, 40, 120, 80, 40, 12, 80, 8);");
  ASSERT_TRUE(again.ok());
}

TEST_F(SqlSessionTest, QutArgumentCountValidated) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  EXPECT_TRUE(session_.Execute("SELECT QUT(d, 1, 2);").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session_.Execute("SELECT S2T(d, 1);").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session_.Execute("SELECT RANGE(d, 5, 5);").status()
                  .IsInvalidArgument());
}

TEST_F(SqlSessionTest, UnknownFunctionRejected) {
  ASSERT_TRUE(session_.Execute("CREATE MOD d;").ok());
  EXPECT_TRUE(
      session_.Execute("SELECT FOO(d, 1);").status().IsNotSupported());
}

TEST_F(SqlSessionTest, LoadFromCsvFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "hermes_sql_load.csv")
          .string();
  {
    std::ofstream out(path);
    out << "obj_id,t,x,y\n";
    for (int i = 0; i < 10; ++i) {
      out << "7," << i * 10 << "," << i * 100 << ",0\n";
    }
  }
  auto result = session_.Execute("LOAD MOD fleet FROM '" + path + "';");
  ASSERT_TRUE(result.ok());
  auto stats = session_.Execute("SELECT STATS(fleet);");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows[0][0], "1");
  EXPECT_EQ(stats->rows[0][1], "10");
  std::filesystem::remove(path);
}

TEST_F(SqlSessionTest, ExecuteScriptReturnsLastResult) {
  auto result = session_.ExecuteScript(
      "CREATE MOD d; INSERT INTO d VALUES (1,0,0,0),(1,1,1,1); "
      "SELECT STATS(d);");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->columns[0], "trajectories");
}

TEST_F(SqlSessionTest, TraclusFunctionRuns) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      1, 6, 10.0, 800.0, 10.0, 10.0, /*seed=*/9, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("bundle", std::move(lanes)).ok());
  auto result = session_.Execute("SELECT TRACLUS(bundle, 60, 3);");
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->rows.size(), 2u);  // >=1 cluster + noise row.
  EXPECT_EQ(result->rows.back()[0], "noise");
  EXPECT_TRUE(
      session_.Execute("SELECT TRACLUS(bundle, 60);").status()
          .IsInvalidArgument());
}

TEST_F(SqlSessionTest, TOpticsFunctionRuns) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      2, 4, 2000.0, 800.0, 10.0, 10.0, /*seed=*/11, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("lanes2", std::move(lanes)).ok());
  auto result = session_.Execute("SELECT TOPTICS(lanes2, 300, 3);");
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->rows.size(), 3u);  // 2 clusters + noise row.
  EXPECT_EQ(result->rows.back()[0], "noise");
}

TEST_F(SqlSessionTest, ConvoysFunctionRuns) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      1, 5, 10.0, 800.0, 10.0, 10.0, /*seed=*/13, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("fleet", std::move(lanes)).ok());
  auto result = session_.Execute("SELECT CONVOYS(fleet, 80, 3, 3, 20);");
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->rows.size(), 1u);
  EXPECT_EQ(result->columns[0], "convoy_id");
  EXPECT_TRUE(
      session_.Execute("SELECT CONVOYS(fleet, 80, 3);").status()
          .IsInvalidArgument());
}

TEST_F(SqlSessionTest, TableRendersAligned) {
  Table t;
  t.columns = {"a", "long_column"};
  t.rows = {{"1", "x"}, {"22", "yy"}};
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("long_column"), std::string::npos);
  EXPECT_NE(s.find("+--"), std::string::npos);
}

TEST_F(SqlSessionTest, FindStoreIsCaseInsensitive) {
  ASSERT_TRUE(session_.Execute("CREATE MOD Mixed;").ok());
  EXPECT_NE(session_.FindStore("mixed"), nullptr);
  EXPECT_NE(session_.FindStore("MIXED"), nullptr);
  EXPECT_EQ(session_.FindStore("other"), nullptr);
}

TEST(ParserTest, SetStatement) {
  auto stmt = ParseStatement("SET hermes.threads = 4;");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, Statement::Kind::kSet);
  EXPECT_EQ(stmt->setting, "HERMES.THREADS");
  EXPECT_DOUBLE_EQ(stmt->set_value, 4.0);
  EXPECT_TRUE(ParseStatement("SET hermes.threads 4;")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseStatement("SET = 4;").status().IsInvalidArgument());
}

TEST_F(SqlSessionTest, SetThreadsControlsSessionParallelism) {
  EXPECT_EQ(session_.threads(), 1u);
  EXPECT_EQ(session_.exec_context(), nullptr);

  auto result = session_.Execute("SET hermes.threads = 4;");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0], "SET HERMES.THREADS = 4");
  EXPECT_EQ(session_.threads(), 4u);
  ASSERT_NE(session_.exec_context(), nullptr);
  EXPECT_EQ(session_.exec_context()->threads(), 4u);

  // Back to sequential: the context is dropped.
  ASSERT_TRUE(session_.Execute("SET hermes.threads = 1;").ok());
  EXPECT_EQ(session_.exec_context(), nullptr);

  EXPECT_TRUE(session_.Execute("SET hermes.threads = 0;")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session_.Execute("SET hermes.threads = 2.5;")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(session_.Execute("SET hermes.workers = 2;")
                  .status()
                  .IsNotSupported());
}

TEST_F(SqlSessionTest, S2TResultsAreThreadCountInvariant) {
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      2, 4, 2000.0, 800.0, 10.0, 10.0, /*seed=*/3, /*jitter=*/1.0);
  ASSERT_TRUE(session_.RegisterStore("parlanes", std::move(lanes)).ok());
  auto seq = session_.Execute("SELECT S2T(parlanes, 30, 60);");
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(session_.Execute("SET hermes.threads = 4;").ok());
  auto par = session_.Execute("SELECT S2T(parlanes, 30, 60);");
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(seq->rows, par->rows);
}

}  // namespace
}  // namespace hermes::sql
