// Negative fixture: writes a GUARDED_BY field without holding its mutex.
// Under Clang with `-Wthread-safety -Werror` this translation unit MUST
// fail to compile — the ctest entry is marked WILL_FAIL, so a compiler
// that accepts it (i.e. a silently disabled analysis) fails the suite.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Guarded {
 public:
  // BUG (deliberate): no lock around the guarded write.
  void Set(int v) { value_ = v; }

 private:
  hermes::common::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Set(1);
  return 0;
}
