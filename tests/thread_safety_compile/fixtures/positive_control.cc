// Positive control for the thread-safety compile gate: a correctly
// locked class. This translation unit must compile under EVERY
// configuration — GCC (annotations are no-ops) and Clang with
// `-Wthread-safety -Werror` (the analysis finds nothing to flag). If it
// stops compiling, the gate itself is broken and the negative fixtures
// prove nothing.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Guarded {
 public:
  void Set(int v) {
    hermes::common::MutexLock lock(&mu_);
    value_ = v;
  }

  int Get() const {
    hermes::common::MutexLock lock(&mu_);
    return value_;
  }

  void AddLocked(int v) REQUIRES(mu_) { value_ += v; }

  void Add(int v) {
    hermes::common::MutexLock lock(&mu_);
    AddLocked(v);
  }

 private:
  mutable hermes::common::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

class SharedGuarded {
 public:
  void Set(int v) {
    hermes::common::WriterMutexLock lock(&mu_);
    value_ = v;
  }

  int Get() const {
    hermes::common::ReaderMutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable hermes::common::SharedMutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Set(1);
  g.Add(2);
  SharedGuarded s;
  s.Set(3);
  return g.Get() + s.Get() == 6 ? 0 : 1;
}
