// Negative fixture: calls a REQUIRES(mu_) method without holding the
// mutex. Under Clang with `-Wthread-safety -Werror` this translation
// unit MUST fail to compile (ctest marks it WILL_FAIL).
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Guarded {
 public:
  void AddLocked(int v) REQUIRES(mu_) { value_ += v; }

  // BUG (deliberate): the caller never acquires mu_ before calling the
  // REQUIRES(mu_) helper.
  void Add(int v) { AddLocked(v); }

 private:
  hermes::common::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Add(1);
  return 0;
}
