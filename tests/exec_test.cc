#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "datagen/noise.h"
#include "exec/exec_context.h"
#include "exec/parallel_for.h"
#include "exec/parallel_sort.h"
#include "exec/thread_pool.h"
#include "traj/segment_arena.h"

namespace hermes::exec {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  // Sync state outlives the pool (reverse destruction order), and tasks
  // notify under the mutex so the waiter can never observe completion
  // while a task still holds a reference to cv.
  std::mutex mu;
  std::condition_variable cv;
  int count = 0;
  constexpr int kTasks = 100;
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&]() {
      std::lock_guard<std::mutex> lock(mu);
      if (++count == kTasks) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&]() { return count == kTasks; });
  EXPECT_EQ(count, kTasks);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&]() { count.fetch_add(1); });
    }
  }  // Join.
  EXPECT_EQ(count.load(), 50);
}

TEST(ChunkingTest, ChunksCoverRangeExactly) {
  for (size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    for (size_t grain : {1u, 3u, 16u, 2000u}) {
      const size_t chunks = NumChunks(n, grain);
      size_t covered = 0;
      size_t expected_begin = 0;
      for (size_t c = 0; c < chunks; ++c) {
        const auto [begin, end] = ChunkBounds(n, grain, c);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_GT(end, begin);
        EXPECT_LE(end, n);
        covered += end - begin;
        expected_begin = end;
      }
      EXPECT_EQ(covered, n) << "n=" << n << " grain=" << grain;
    }
  }
}

TEST(ParallelForTest, SequentialAndParallelVisitEveryIndexOnce) {
  constexpr size_t kN = 10000;
  for (size_t threads : {1u, 2u, 4u}) {
    ExecContext ctx(threads);
    std::vector<int> visits(kN, 0);
    ParallelFor(&ctx, kN, 64, [&](size_t begin, size_t end, size_t) {
      for (size_t i = begin; i < end; ++i) ++visits[i];
    });
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0),
              static_cast<int>(kN));
  }
}

TEST(ParallelForTest, ChunkIndicesAreDense) {
  ExecContext ctx(4);
  constexpr size_t kN = 1000;
  constexpr size_t kGrain = 10;
  std::vector<int> seen(NumChunks(kN, kGrain), 0);
  std::mutex mu;
  ParallelFor(&ctx, kN, kGrain, [&](size_t, size_t, size_t chunk) {
    std::lock_guard<std::mutex> lock(mu);
    ++seen[chunk];
  });
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(ParallelForTest, NullContextRunsInline) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, 2, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, CurrentIdentifiesWorkerThreads) {
  EXPECT_EQ(ThreadPool::Current(), nullptr);
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  ThreadPool* seen = nullptr;
  ThreadPool pool(2);
  pool.Submit([&]() {
    ThreadPool* current = ThreadPool::Current();
    std::lock_guard<std::mutex> lock(mu);
    seen = current;
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&]() { return done; });
  EXPECT_EQ(seen, &pool);
  EXPECT_EQ(ThreadPool::Current(), nullptr);  // Still outside, here.
}

TEST(ParallelForTest, NestedFanOutCompletes) {
  // A chunk body fanning out again on the same context must complete:
  // the nested caller drains chunks itself, so it can never block on a
  // queue that nobody services.
  ExecContext ctx(4);
  constexpr size_t kOuter = 6;
  constexpr size_t kInner = 40;
  std::vector<std::vector<int>> hits(kOuter, std::vector<int>(kInner, 0));
  ParallelFor(&ctx, kOuter, 1, [&](size_t ob, size_t oe, size_t) {
    for (size_t o = ob; o < oe; ++o) {
      ParallelFor(&ctx, kInner, 4, [&](size_t ib, size_t ie, size_t) {
        for (size_t i = ib; i < ie; ++i) ++hits[o][i];
      });
    }
  });
  for (const auto& row : hits) {
    for (int h : row) EXPECT_EQ(h, 1);
  }
  EXPECT_GE(ctx.stats().Counter("exec_fanouts"), 7);
}

TEST(ParallelForTest, NestedFanOutFromPoolSizeOneDoesNotDeadlock) {
  // threads=2 means a pool of exactly one worker (the ParallelFor caller
  // is the second executor) — the regression trap on a 1-CPU CI runner.
  // Fanning out *from* that lone worker used to deadlock: the nested call
  // parked chunks on the pool's queue and waited for a worker that was
  // itself. Now the nested caller drains every chunk inline.
  ExecContext ctx(2);
  ASSERT_NE(ctx.pool(), nullptr);
  ASSERT_EQ(ctx.pool()->num_threads(), 1u);
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::vector<int> sums(32, 0);
  ctx.pool()->Submit([&]() {
    ParallelFor(&ctx, 32, 4, [&](size_t begin, size_t end, size_t) {
      for (size_t i = begin; i < end; ++i) ++sums[i];
    });
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&]() { return done; });
  for (int s : sums) EXPECT_EQ(s, 1);
  EXPECT_EQ(ctx.stats().Counter("exec_nested_fanouts"), 1);
  EXPECT_EQ(ctx.stats().Counter("exec_fanouts"), 1);
}

TEST(ParallelForTest, CompletesWhileEveryWorkerIsBusy) {
  // Saturate the pool with a task that blocks until we say otherwise;
  // ParallelFor must still finish (the caller drains all chunks).
  ExecContext ctx(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ctx.pool()->Submit([&]() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&]() { return release; });
  });
  std::atomic<int> count{0};
  ParallelFor(&ctx, 100, 1, [&](size_t begin, size_t end, size_t) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 100);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ExecContext ctx(4);
  EXPECT_THROW(
      ParallelFor(&ctx, 100, 1,
                  [&](size_t, size_t, size_t chunk) {
                    if (chunk == 57) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool survives the exception and keeps executing fan-outs.
  std::atomic<int> count{0};
  ParallelFor(&ctx, 64, 1, [&](size_t begin, size_t end, size_t) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelForTest, ExceptionPropagatesFromNestedFanOut) {
  ExecContext ctx(2);
  std::atomic<int> outer_failures{0};
  ParallelFor(&ctx, 4, 1, [&](size_t, size_t, size_t) {
    try {
      ParallelFor(&ctx, 8, 1, [&](size_t, size_t, size_t chunk) {
        if (chunk == 3) throw std::runtime_error("inner");
      });
    } catch (const std::runtime_error&) {
      outer_failures.fetch_add(1);
    }
  });
  EXPECT_EQ(outer_failures.load(), 4);
}

TEST(ParallelSortTest, MatchesSequentialSortWithTotalOrder) {
  std::vector<uint64_t> data(50000);
  uint64_t x = 88172645463325252ull;
  for (auto& v : data) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    v = x;
  }
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    auto copy = data;
    ExecContext ctx(threads);
    ParallelSort(&ctx, copy.begin(), copy.end(), std::less<uint64_t>());
    EXPECT_EQ(copy, expected) << "threads=" << threads;
  }
}

TEST(ExecContextTest, SequentialContextHasNoPool) {
  ExecContext ctx(1);
  EXPECT_EQ(ctx.threads(), 1u);
  EXPECT_EQ(ctx.pool(), nullptr);
  ExecContext par(3);
  EXPECT_EQ(par.threads(), 3u);
  EXPECT_NE(par.pool(), nullptr);
  EXPECT_EQ(par.pool(), par.pool());  // Lazy singleton per context.
}

TEST(ExecContextTest, StatsAccumulateAcrossPhases) {
  ExecContext ctx(1);
  ctx.stats().RecordPhaseUs("voting", 100);
  ctx.stats().RecordPhaseUs("voting", 50);
  ctx.stats().AddCounter("pairs", 7);
  EXPECT_EQ(ctx.stats().PhaseUs("voting"), 150);
  EXPECT_EQ(ctx.stats().Counter("pairs"), 7);
  EXPECT_EQ(ctx.stats().PhaseUs("missing"), 0);
  ctx.stats().Reset();
  EXPECT_EQ(ctx.stats().PhaseUs("voting"), 0);
}

}  // namespace
}  // namespace hermes::exec

namespace hermes::traj {
namespace {

TEST(SegmentArenaTest, LayoutMatchesStore) {
  TrajectoryStore store = datagen::MakeParallelLanes(
      3, 2, 50.0, 600.0, 10.0, 10.0, /*seed=*/4, /*jitter=*/2.0);
  const SegmentArena arena = SegmentArena::Build(store);
  ASSERT_EQ(arena.num_trajectories(), store.NumTrajectories());
  ASSERT_EQ(arena.num_segments(), store.NumSegments());
  for (TrajectoryId tid = 0; tid < store.NumTrajectories(); ++tid) {
    const Trajectory& t = store.Get(tid);
    ASSERT_EQ(arena.RowEnd(tid) - arena.RowBegin(tid), t.NumSegments());
    for (size_t i = 0; i < t.NumSegments(); ++i) {
      const size_t r = arena.RowBegin(tid) + i;
      const geom::Segment3D expected = t.SegmentAt(i);
      const geom::Segment3D got = arena.SegmentOf(r);
      EXPECT_EQ(got.a.x, expected.a.x);
      EXPECT_EQ(got.a.y, expected.a.y);
      EXPECT_EQ(got.a.t, expected.a.t);
      EXPECT_EQ(got.b.x, expected.b.x);
      EXPECT_EQ(got.b.y, expected.b.y);
      EXPECT_EQ(got.b.t, expected.b.t);
      EXPECT_TRUE(arena.BoundsOf(r) == expected.Bounds());
      EXPECT_EQ(arena.owner(r), tid);
      EXPECT_EQ(arena.segment_index(r), i);
      EXPECT_TRUE(arena.RefOf(r) ==
                  (SegmentRef{tid, static_cast<uint32_t>(i)}));
    }
  }
}

TEST(SegmentArenaTest, SnapshotsAreIdenticalAcrossContexts) {
  // The layout is a pure function of insertion order: snapshots taken
  // through a parallel context and sequentially are the same epoch.
  TrajectoryStore store = datagen::MakeParallelLanes(
      4, 4, 40.0, 900.0, 10.0, 10.0, /*seed=*/8, /*jitter=*/1.5);
  const SegmentArena seq = SegmentArena::Build(store);
  exec::ExecContext ctx(4);
  const SegmentArena par = SegmentArena::Build(store, &ctx);
  ASSERT_EQ(par.num_segments(), seq.num_segments());
  EXPECT_EQ(par.offsets(), seq.offsets());
  for (size_t r = 0; r < seq.num_segments(); ++r) {
    EXPECT_EQ(par.ax(r), seq.ax(r));
    EXPECT_EQ(par.ay(r), seq.ay(r));
    EXPECT_EQ(par.bx(r), seq.bx(r));
    EXPECT_EQ(par.by(r), seq.by(r));
    EXPECT_EQ(par.t0(r), seq.t0(r));
    EXPECT_EQ(par.t1(r), seq.t1(r));
    EXPECT_EQ(par.owner(r), seq.owner(r));
    EXPECT_EQ(par.segment_index(r), seq.segment_index(r));
  }
  // An unchanged store re-publishes the cached epoch: same blocks.
  ASSERT_EQ(par.num_blocks(), seq.num_blocks());
  for (size_t b = 0; b < seq.num_blocks(); ++b) {
    EXPECT_EQ(par.BlockIdentity(b), seq.BlockIdentity(b));
  }
  const auto phases = ctx.stats().PhaseTimings();
  EXPECT_EQ(phases.count("arena_build"), 1u);
}

TEST(SegmentArenaTest, AppendsDoNotRebuildBlocks) {
  TrajectoryStore store = datagen::MakeParallelLanes(
      3, 3, 30.0, 600.0, 10.0, 10.0, /*seed=*/5, /*jitter=*/1.0);
  const SegmentArena before = SegmentArena::Build(store);
  const SegmentArenaCounters c0 = store.arena_counters();
  EXPECT_EQ(c0.full_rebuilds, 0u);
  EXPECT_EQ(c0.rows_appended, store.NumSegments());

  // Append more trajectories: existing blocks must be reused, not
  // re-materialized — the epoch switch only publishes new offsets.
  Trajectory extra(99);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(extra.Append({i * 5.0, 1.0, i * 10.0}).ok());
  }
  ASSERT_TRUE(store.Add(std::move(extra)).ok());
  const SegmentArena after = SegmentArena::Build(store);
  const SegmentArenaCounters c1 = store.arena_counters();
  EXPECT_EQ(c1.full_rebuilds, 0u);
  EXPECT_EQ(c1.rows_appended, store.NumSegments());
  EXPECT_EQ(c1.epochs_published, c0.epochs_published + 1);

  ASSERT_EQ(after.num_segments(), before.num_segments() + 7);
  ASSERT_EQ(after.num_trajectories(), before.num_trajectories() + 1);
  // Every block of the old epoch is shared by the new one (pointer
  // identity — the rebuild-free guarantee).
  ASSERT_GE(after.num_blocks(), before.num_blocks());
  for (size_t b = 0; b < before.num_blocks(); ++b) {
    EXPECT_EQ(after.BlockIdentity(b), before.BlockIdentity(b));
  }
  // The old epoch still reads its own rows (and never sees the append).
  for (size_t r = 0; r < before.num_segments(); ++r) {
    EXPECT_EQ(before.ax(r), after.ax(r));
    EXPECT_EQ(before.t1(r), after.t1(r));
  }
}

TEST(SegmentArenaTest, ConcurrentReadersSeeStableEpochsDuringAppends) {
  // A reader sweeping a published epoch while the store keeps appending
  // (and switching epochs) must observe bit-stable rows throughout.
  TrajectoryStore store;
  auto make_traj = [](ObjectId id, double y) {
    Trajectory t(id);
    for (int i = 0; i < 64; ++i) {
      EXPECT_TRUE(t.Append({i * 2.0, y, i * 1.0}).ok());
    }
    return t;
  };
  for (int k = 0; k < 4; ++k) {
    ASSERT_TRUE(store.Add(make_traj(k, k * 10.0)).ok());
  }
  const SegmentArena epoch = store.ArenaSnapshot();
  std::vector<double> expected(epoch.num_segments());
  for (size_t r = 0; r < epoch.num_segments(); ++r) expected[r] = epoch.ax(r);

  std::atomic<bool> stop{false};
  std::atomic<bool> mismatch{false};
  std::thread reader([&] {
    while (!stop.load()) {
      for (size_t r = 0; r < epoch.num_segments(); ++r) {
        if (epoch.ax(r) != expected[r]) {
          mismatch.store(true);
          return;
        }
      }
      SegmentArena fresh = store.ArenaSnapshot();
      // A concurrently-taken epoch is internally consistent: its row
      // count matches its own offsets table.
      if (fresh.num_segments() != fresh.offsets().back()) {
        mismatch.store(true);
        return;
      }
    }
  });
  for (int k = 4; k < 64; ++k) {
    ASSERT_TRUE(store.Add(make_traj(k, k * 10.0)).ok());
    if (k % 8 == 0) (void)store.ArenaSnapshot();
  }
  stop.store(true);
  reader.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(store.arena_counters().full_rebuilds, 0u);
  // The original epoch is untouched by all of it.
  for (size_t r = 0; r < epoch.num_segments(); ++r) {
    EXPECT_EQ(epoch.ax(r), expected[r]);
  }
}

TEST(SegmentArenaTest, EmptyStoreAndPointTrajectories) {
  TrajectoryStore store;
  const SegmentArena empty = SegmentArena::Build(store);
  EXPECT_EQ(empty.num_segments(), 0u);
  EXPECT_TRUE(empty.empty());

  // A single-sample trajectory contributes zero rows but keeps CSR sane.
  Trajectory lone(9);
  ASSERT_TRUE(lone.Append({1.0, 2.0, 3.0}).ok());
  ASSERT_TRUE(store.Add(std::move(lone)).ok());
  Trajectory pair(10);
  ASSERT_TRUE(pair.Append({0.0, 0.0, 0.0}).ok());
  ASSERT_TRUE(pair.Append({1.0, 1.0, 1.0}).ok());
  ASSERT_TRUE(store.Add(std::move(pair)).ok());
  const SegmentArena arena = SegmentArena::Build(store);
  EXPECT_EQ(arena.num_trajectories(), 2u);
  EXPECT_EQ(arena.num_segments(), 1u);
  EXPECT_EQ(arena.RowBegin(0), arena.RowEnd(0));
  EXPECT_EQ(arena.RowEnd(1) - arena.RowBegin(1), 1u);
  EXPECT_EQ(arena.owner(0), 1u);
}

}  // namespace
}  // namespace hermes::traj
