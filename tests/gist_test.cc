#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "gist/gist.h"
#include "gist/gist_page.h"
#include "rtree/rtree_opclass.h"
#include "storage/env.h"

namespace hermes::gist {
namespace {

using rtree::DecodeKey;
using rtree::EncodeKey;
using rtree::QueryMode;
using rtree::RTreeOpClass;
using rtree::RTreeQuery;

geom::Mbb3D RandomBox(Rng* rng, double extent, double size) {
  const double x = rng->Uniform(0, extent);
  const double y = rng->Uniform(0, extent);
  const double t = rng->Uniform(0, extent);
  return geom::Mbb3D(x, y, t, x + rng->Uniform(0.1, size),
                     y + rng->Uniform(0.1, size),
                     t + rng->Uniform(0.1, size));
}

class GistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = storage::Env::NewMemEnv();
    auto tree = Gist::Open(env_.get(), "test.gist", RTreeOpClass::Instance());
    ASSERT_TRUE(tree.ok());
    tree_ = std::move(tree).value();
  }

  std::vector<uint64_t> Search(const geom::Mbb3D& box) {
    RTreeQuery q{box, QueryMode::kIntersects};
    std::vector<uint64_t> out;
    EXPECT_TRUE(tree_
                    ->Search(&q,
                             [&](const void*, uint64_t d) {
                               out.push_back(d);
                               return true;
                             })
                    .ok());
    std::sort(out.begin(), out.end());
    return out;
  }

  std::unique_ptr<storage::Env> env_;
  std::unique_ptr<Gist> tree_;
};

TEST_F(GistTest, EmptyTreeSearchesCleanly) {
  EXPECT_TRUE(tree_->empty());
  EXPECT_EQ(tree_->num_entries(), 0u);
  EXPECT_TRUE(Search(geom::Mbb3D(0, 0, 0, 1, 1, 1)).empty());
  EXPECT_TRUE(tree_->Validate().ok());
}

TEST_F(GistTest, SingleInsertAndExactSearch) {
  const geom::Mbb3D box(1, 1, 1, 2, 2, 2);
  const std::string key = EncodeKey(box);
  ASSERT_TRUE(tree_->Insert(key.data(), 42).ok());
  EXPECT_EQ(tree_->num_entries(), 1u);
  EXPECT_EQ(tree_->height(), 1u);
  const auto hits = Search(box);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42u);
  EXPECT_TRUE(Search(geom::Mbb3D(5, 5, 5, 6, 6, 6)).empty());
}

TEST_F(GistTest, ManyInsertsMatchBruteForce) {
  Rng rng(2024);
  std::vector<geom::Mbb3D> boxes;
  for (uint64_t i = 0; i < 800; ++i) {
    const geom::Mbb3D box = RandomBox(&rng, 1000.0, 60.0);
    boxes.push_back(box);
    const std::string key = EncodeKey(box);
    ASSERT_TRUE(tree_->Insert(key.data(), i).ok());
  }
  EXPECT_EQ(tree_->num_entries(), 800u);
  EXPECT_GE(tree_->height(), 2u);  // Must have split.
  ASSERT_TRUE(tree_->Validate().ok());

  for (int q = 0; q < 25; ++q) {
    const geom::Mbb3D query = RandomBox(&rng, 1000.0, 200.0);
    std::vector<uint64_t> expected;
    for (uint64_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].Intersects(query)) expected.push_back(i);
    }
    EXPECT_EQ(Search(query), expected) << "query " << query.ToString();
  }
}

TEST_F(GistTest, SearchEarlyTermination) {
  Rng rng(7);
  for (uint64_t i = 0; i < 200; ++i) {
    const std::string key = EncodeKey(RandomBox(&rng, 100.0, 50.0));
    ASSERT_TRUE(tree_->Insert(key.data(), i).ok());
  }
  RTreeQuery q{geom::Mbb3D(0, 0, 0, 200, 200, 200), QueryMode::kIntersects};
  int visits = 0;
  ASSERT_TRUE(tree_
                  ->Search(&q,
                           [&](const void*, uint64_t) {
                             return ++visits < 5;
                           })
                  .ok());
  EXPECT_EQ(visits, 5);
}

TEST_F(GistTest, DeleteRemovesExactEntry) {
  Rng rng(99);
  std::vector<geom::Mbb3D> boxes;
  for (uint64_t i = 0; i < 300; ++i) {
    boxes.push_back(RandomBox(&rng, 500.0, 40.0));
    const std::string key = EncodeKey(boxes.back());
    ASSERT_TRUE(tree_->Insert(key.data(), i).ok());
  }
  // Delete every third entry.
  for (uint64_t i = 0; i < 300; i += 3) {
    const std::string key = EncodeKey(boxes[i]);
    ASSERT_TRUE(tree_->Delete(key.data(), i).ok()) << i;
  }
  EXPECT_EQ(tree_->num_entries(), 200u);
  // Deleted entries no longer found; others still are.
  const auto all = Search(geom::Mbb3D(-1e9, -1e9, -1e9, 1e9, 1e9, 1e9));
  EXPECT_EQ(all.size(), 200u);
  for (uint64_t d : all) EXPECT_NE(d % 3, 0u);
}

TEST_F(GistTest, DeleteMissingEntryFails) {
  const std::string key = EncodeKey(geom::Mbb3D(0, 0, 0, 1, 1, 1));
  EXPECT_TRUE(tree_->Delete(key.data(), 1).IsNotFound());
  ASSERT_TRUE(tree_->Insert(key.data(), 1).ok());
  EXPECT_TRUE(tree_->Delete(key.data(), 2).IsNotFound());  // Wrong datum.
  const std::string other = EncodeKey(geom::Mbb3D(5, 5, 5, 6, 6, 6));
  EXPECT_TRUE(tree_->Delete(other.data(), 1).IsNotFound());  // Wrong key.
}

TEST_F(GistTest, PersistsAcrossReopen) {
  Rng rng(3);
  std::vector<geom::Mbb3D> boxes;
  for (uint64_t i = 0; i < 150; ++i) {
    boxes.push_back(RandomBox(&rng, 100.0, 10.0));
    const std::string key = EncodeKey(boxes.back());
    ASSERT_TRUE(tree_->Insert(key.data(), i).ok());
  }
  ASSERT_TRUE(tree_->Flush().ok());
  tree_.reset();

  auto reopened =
      Gist::Open(env_.get(), "test.gist", RTreeOpClass::Instance());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->num_entries(), 150u);
  ASSERT_TRUE((*reopened)->Validate().ok());
  RTreeQuery q{boxes[0], QueryMode::kIntersects};
  bool found = false;
  ASSERT_TRUE((*reopened)
                  ->Search(&q,
                           [&](const void*, uint64_t d) {
                             found |= (d == 0);
                             return true;
                           })
                  .ok());
  EXPECT_TRUE(found);
}

TEST_F(GistTest, BulkLoadMatchesInserts) {
  Rng rng(11);
  std::vector<std::pair<std::string, uint64_t>> entries;
  std::vector<geom::Mbb3D> boxes;
  for (uint64_t i = 0; i < 500; ++i) {
    boxes.push_back(RandomBox(&rng, 400.0, 30.0));
    entries.emplace_back(EncodeKey(boxes.back()), i);
  }
  ASSERT_TRUE(tree_->BulkLoad(entries).ok());
  EXPECT_EQ(tree_->num_entries(), 500u);
  ASSERT_TRUE(tree_->Validate().ok());

  const geom::Mbb3D query(100, 100, 100, 250, 250, 250);
  std::vector<uint64_t> expected;
  for (uint64_t i = 0; i < boxes.size(); ++i) {
    if (boxes[i].Intersects(query)) expected.push_back(i);
  }
  EXPECT_EQ(Search(query), expected);
}

TEST_F(GistTest, BulkLoadRequiresEmptyTree) {
  const std::string key = EncodeKey(geom::Mbb3D(0, 0, 0, 1, 1, 1));
  ASSERT_TRUE(tree_->Insert(key.data(), 1).ok());
  EXPECT_TRUE(tree_->BulkLoad({{key, 2}}).IsInvalidArgument());
}

TEST_F(GistTest, BulkLoadValidatesKeySizeAndFillFactor) {
  EXPECT_TRUE(tree_->BulkLoad({{"short", 1}}).IsInvalidArgument());
  const std::string key = EncodeKey(geom::Mbb3D(0, 0, 0, 1, 1, 1));
  EXPECT_TRUE(tree_->BulkLoad({{key, 1}}, 0.0).IsInvalidArgument());
  EXPECT_TRUE(tree_->BulkLoad({{key, 1}}, 1.5).IsInvalidArgument());
}

TEST_F(GistTest, StatsTrackNodeVisits) {
  Rng rng(5);
  for (uint64_t i = 0; i < 400; ++i) {
    const std::string key = EncodeKey(RandomBox(&rng, 1000.0, 20.0));
    ASSERT_TRUE(tree_->Insert(key.data(), i).ok());
  }
  tree_->ResetStats();
  // A tiny query should visit far fewer nodes than the tree holds.
  Search(geom::Mbb3D(0, 0, 0, 10, 10, 10));
  const uint64_t small_visits = tree_->stats().nodes_visited;
  tree_->ResetStats();
  Search(geom::Mbb3D(-1e9, -1e9, -1e9, 1e9, 1e9, 1e9));
  const uint64_t full_visits = tree_->stats().nodes_visited;
  EXPECT_LT(small_visits, full_visits);
}

TEST_F(GistTest, ReadNodeExposesStructure) {
  Rng rng(13);
  for (uint64_t i = 0; i < 300; ++i) {
    const std::string key = EncodeKey(RandomBox(&rng, 100.0, 10.0));
    ASSERT_TRUE(tree_->Insert(key.data(), i).ok());
  }
  auto root = tree_->ReadNode(tree_->root());
  ASSERT_TRUE(root.ok());
  EXPECT_FALSE(root->is_leaf);
  EXPECT_GE(root->keys.size(), 2u);
  // Every child of the root must be covered by its entry key.
  for (size_t i = 0; i < root->keys.size(); ++i) {
    auto child = tree_->ReadNode(
        static_cast<storage::PageId>(root->datums[i]));
    ASSERT_TRUE(child.ok());
    const geom::Mbb3D parent_key = DecodeKey(root->keys[i].data());
    for (const auto& ck : child->keys) {
      EXPECT_TRUE(parent_key.Contains(DecodeKey(ck.data())));
    }
  }
}

// ---------------------------------------------------------------------------
// Genericity: a second operator class (1-D closed intervals) runs on the
// same unmodified Gist — the GiST extensibility contract in action.
// ---------------------------------------------------------------------------

class IntervalOpClass : public GistOpClass {
 public:
  struct Interval {
    double lo;
    double hi;
  };

  static std::string Encode(double lo, double hi) {
    std::string key(sizeof(Interval), '\0');
    Interval iv{lo, hi};
    std::memcpy(key.data(), &iv, sizeof(iv));
    return key;
  }
  static Interval Decode(const void* key) {
    Interval iv;
    std::memcpy(&iv, key, sizeof(iv));
    return iv;
  }

  size_t KeySize() const override { return sizeof(Interval); }

  bool Consistent(const void* key, const void* query, bool) const override {
    const Interval k = Decode(key);
    const Interval q = *static_cast<const Interval*>(query);
    return k.lo <= q.hi && q.lo <= k.hi;
  }
  void UnionInPlace(void* dst, const void* src) const override {
    Interval d = Decode(dst);
    const Interval s = Decode(src);
    d.lo = std::min(d.lo, s.lo);
    d.hi = std::max(d.hi, s.hi);
    std::memcpy(dst, &d, sizeof(d));
  }
  double Penalty(const void* existing, const void* incoming) const override {
    const Interval e = Decode(existing);
    const Interval in = Decode(incoming);
    const double grown =
        std::max(e.hi, in.hi) - std::min(e.lo, in.lo) - (e.hi - e.lo);
    return grown;
  }
  void PickSplit(const std::vector<const void*>& keys,
                 std::vector<bool>* to_right) const override {
    // Split around the median midpoint.
    std::vector<std::pair<double, size_t>> mids;
    for (size_t i = 0; i < keys.size(); ++i) {
      const Interval iv = Decode(keys[i]);
      mids.emplace_back((iv.lo + iv.hi) / 2, i);
    }
    std::sort(mids.begin(), mids.end());
    to_right->assign(keys.size(), false);
    for (size_t r = mids.size() / 2; r < mids.size(); ++r) {
      (*to_right)[mids[r].second] = true;
    }
  }
  bool Covers(const void* parent, const void* child) const override {
    const Interval p = Decode(parent);
    const Interval c = Decode(child);
    return p.lo <= c.lo && c.hi <= p.hi;
  }
};

TEST(GistGenericityTest, IntervalOpClassWorksUnmodified) {
  auto env = storage::Env::NewMemEnv();
  IntervalOpClass opclass;
  auto tree = Gist::Open(env.get(), "intervals.gist", &opclass);
  ASSERT_TRUE(tree.ok());

  Rng rng(55);
  std::vector<IntervalOpClass::Interval> intervals;
  for (uint64_t i = 0; i < 700; ++i) {
    const double lo = rng.Uniform(0, 1000);
    const double hi = lo + rng.Uniform(0.1, 30);
    intervals.push_back({lo, hi});
    const std::string key = IntervalOpClass::Encode(lo, hi);
    ASSERT_TRUE((*tree)->Insert(key.data(), i).ok());
  }
  ASSERT_TRUE((*tree)->Validate().ok());
  EXPECT_GE((*tree)->height(), 2u);

  // Stabbing-style queries vs brute force.
  for (int q = 0; q < 20; ++q) {
    IntervalOpClass::Interval query{rng.Uniform(0, 1000), 0};
    query.hi = query.lo + rng.Uniform(1, 60);
    std::vector<uint64_t> expected;
    for (uint64_t i = 0; i < intervals.size(); ++i) {
      if (intervals[i].lo <= query.hi && query.lo <= intervals[i].hi) {
        expected.push_back(i);
      }
    }
    std::vector<uint64_t> got;
    ASSERT_TRUE((*tree)
                    ->Search(&query,
                             [&](const void*, uint64_t d) {
                               got.push_back(d);
                               return true;
                             })
                    .ok());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
  }
}

TEST(GistGenericityTest, IntervalDeleteAndBulkLoad) {
  auto env = storage::Env::NewMemEnv();
  IntervalOpClass opclass;
  auto tree = Gist::Open(env.get(), "iv2.gist", &opclass);
  ASSERT_TRUE(tree.ok());
  std::vector<std::pair<std::string, uint64_t>> entries;
  for (uint64_t i = 0; i < 300; ++i) {
    entries.emplace_back(IntervalOpClass::Encode(i * 2.0, i * 2.0 + 1.0), i);
  }
  ASSERT_TRUE((*tree)->BulkLoad(entries).ok());
  ASSERT_TRUE((*tree)->Validate().ok());
  // Delete the even entries.
  for (uint64_t i = 0; i < 300; i += 2) {
    ASSERT_TRUE((*tree)->Delete(entries[i].first.data(), i).ok());
  }
  EXPECT_EQ((*tree)->num_entries(), 150u);
  IntervalOpClass::Interval all{-1e9, 1e9};
  size_t count = 0;
  ASSERT_TRUE((*tree)
                  ->Search(&all,
                           [&](const void*, uint64_t d) {
                             EXPECT_EQ(d % 2, 1u);
                             ++count;
                             return true;
                           })
                  .ok());
  EXPECT_EQ(count, 150u);
}

// GistNodeView unit checks.
TEST(GistNodeViewTest, CapacityForRTreeKeys) {
  storage::Page page;
  GistNodeView view(&page, 48);
  // (8192 - 8) / 56 = 146.
  EXPECT_EQ(view.Capacity(), 146u);
}

TEST(GistNodeViewTest, AppendRemoveRoundTrip) {
  storage::Page page;
  GistNodeView view(&page, 8);
  view.Init(true);
  EXPECT_TRUE(view.is_leaf());
  const char k1[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  const char k2[8] = {9, 9, 9, 9, 9, 9, 9, 9};
  view.Append(k1, 100);
  view.Append(k2, 200);
  EXPECT_EQ(view.num_entries(), 2u);
  EXPECT_EQ(view.DatumAt(0), 100u);
  EXPECT_EQ(view.DatumAt(1), 200u);
  view.Remove(0);
  EXPECT_EQ(view.num_entries(), 1u);
  EXPECT_EQ(view.DatumAt(0), 200u);
  EXPECT_EQ(view.KeyAt(0)[0], 9);
}

// Opclass unit checks.
TEST(RTreeOpClassTest, KeyCodecRoundTrip) {
  const geom::Mbb3D box(-1.5, 2.5, 3.5, 4.5, 5.5, 6.5);
  EXPECT_EQ(DecodeKey(EncodeKey(box).data()), box);
}

TEST(RTreeOpClassTest, PenaltyPrefersNoEnlargement) {
  const RTreeOpClass* op = RTreeOpClass::Instance();
  const std::string big = EncodeKey(geom::Mbb3D(0, 0, 0, 10, 10, 10));
  const std::string far_box = EncodeKey(geom::Mbb3D(100, 100, 100, 101, 101, 101));
  const std::string inside = EncodeKey(geom::Mbb3D(1, 1, 1, 2, 2, 2));
  EXPECT_LT(op->Penalty(big.data(), inside.data()),
            op->Penalty(big.data(), far_box.data()));
}

TEST(RTreeOpClassTest, UnionInPlaceGrows) {
  const RTreeOpClass* op = RTreeOpClass::Instance();
  std::string a = EncodeKey(geom::Mbb3D(0, 0, 0, 1, 1, 1));
  const std::string b = EncodeKey(geom::Mbb3D(5, 5, 5, 6, 6, 6));
  op->UnionInPlace(a.data(), b.data());
  const geom::Mbb3D u = DecodeKey(a.data());
  EXPECT_DOUBLE_EQ(u.max_x, 6.0);
  EXPECT_DOUBLE_EQ(u.min_x, 0.0);
}

TEST(RTreeOpClassTest, PickSplitSeparatesTwoClouds) {
  const RTreeOpClass* op = RTreeOpClass::Instance();
  std::vector<std::string> keys;
  // Two well-separated clouds of 10 boxes each.
  for (int i = 0; i < 10; ++i) {
    keys.push_back(EncodeKey(
        geom::Mbb3D(i, i, i, i + 1.0, i + 1.0, i + 1.0)));
  }
  for (int i = 0; i < 10; ++i) {
    keys.push_back(EncodeKey(geom::Mbb3D(1000 + i, 1000 + i, 1000 + i,
                                         1001.0 + i, 1001.0 + i,
                                         1001.0 + i)));
  }
  std::vector<const void*> ptrs;
  for (const auto& k : keys) ptrs.push_back(k.data());
  std::vector<bool> to_right;
  op->PickSplit(ptrs, &to_right);
  // All of cloud 1 on one side, all of cloud 2 on the other.
  for (int i = 1; i < 10; ++i) EXPECT_EQ(to_right[i], to_right[0]);
  for (int i = 11; i < 20; ++i) EXPECT_EQ(to_right[i], to_right[10]);
  EXPECT_NE(to_right[0], to_right[10]);
}

TEST(RTreeOpClassTest, ConsistentModes) {
  const RTreeOpClass* op = RTreeOpClass::Instance();
  const std::string key = EncodeKey(geom::Mbb3D(2, 2, 2, 4, 4, 4));
  RTreeQuery intersect{geom::Mbb3D(3, 3, 3, 10, 10, 10),
                       QueryMode::kIntersects};
  RTreeQuery contained{geom::Mbb3D(0, 0, 0, 10, 10, 10),
                       QueryMode::kContainedBy};
  RTreeQuery contains{geom::Mbb3D(2.5, 2.5, 2.5, 3, 3, 3),
                      QueryMode::kContains};
  EXPECT_TRUE(op->Consistent(key.data(), &intersect, true));
  EXPECT_TRUE(op->Consistent(key.data(), &contained, true));
  EXPECT_TRUE(op->Consistent(key.data(), &contains, true));
  RTreeQuery not_contained{geom::Mbb3D(0, 0, 0, 3, 3, 3),
                           QueryMode::kContainedBy};
  EXPECT_FALSE(op->Consistent(key.data(), &not_contained, true));
}

}  // namespace
}  // namespace hermes::gist
