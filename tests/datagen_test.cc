#include <gtest/gtest.h>

#include <cmath>

#include "datagen/aircraft.h"
#include "datagen/maritime.h"
#include "datagen/noise.h"
#include "datagen/urban.h"

namespace hermes::datagen {
namespace {

// ---------------------------------------------------------------------------
// Aircraft scenario
// ---------------------------------------------------------------------------

TEST(AircraftTest, DeterministicForSeed) {
  AircraftScenarioParams p = AircraftScenarioParams::Default();
  p.num_flights = 20;
  auto a = GenerateAircraftScenario(p);
  auto b = GenerateAircraftScenario(p);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->store.NumPoints(), b->store.NumPoints());
  for (size_t tid = 0; tid < a->store.NumTrajectories(); ++tid) {
    const auto& ta = a->store.Get(tid);
    const auto& tb = b->store.Get(tid);
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i], tb[i]);
    }
  }
}

TEST(AircraftTest, FlightsAreValidTrajectories) {
  AircraftScenarioParams p = AircraftScenarioParams::Default();
  p.num_flights = 30;
  auto scenario = GenerateAircraftScenario(p);
  ASSERT_TRUE(scenario.ok());
  EXPECT_EQ(scenario->store.NumTrajectories(), scenario->flights.size());
  for (traj::TrajectoryId tid = 0; tid < scenario->store.NumTrajectories();
       ++tid) {
    const traj::Trajectory& t = scenario->store.Get(tid);
    EXPECT_TRUE(t.Validate().ok());
    EXPECT_GE(t.size(), 2u);
  }
}

TEST(AircraftTest, NonOutliersLandAtTheirAirport) {
  AircraftScenarioParams p = AircraftScenarioParams::Default();
  p.num_flights = 40;
  p.outlier_fraction = 0.0;
  auto scenario = GenerateAircraftScenario(p);
  ASSERT_TRUE(scenario.ok());
  for (size_t i = 0; i < scenario->flights.size(); ++i) {
    const FlightInfo& info = scenario->flights[i];
    const auto& t = scenario->store.Get(i);
    const geom::Point2D threshold = p.airports[info.airport].position;
    EXPECT_LT(geom::Distance(t.back().xy(), threshold), 500.0)
        << "flight " << i;
  }
}

TEST(AircraftTest, HoldingFlightsAreLonger) {
  AircraftScenarioParams p = AircraftScenarioParams::Default();
  p.num_flights = 60;
  p.outlier_fraction = 0.0;
  p.holding_probability = 0.5;
  auto scenario = GenerateAircraftScenario(p);
  ASSERT_TRUE(scenario.ok());
  double hold_len = 0, nohold_len = 0;
  size_t holds = 0, noholds = 0;
  for (size_t i = 0; i < scenario->flights.size(); ++i) {
    const auto& t = scenario->store.Get(i);
    if (scenario->flights[i].has_holding) {
      hold_len += t.SpatialLength();
      ++holds;
    } else {
      nohold_len += t.SpatialLength();
      ++noholds;
    }
  }
  ASSERT_GT(holds, 5u);
  ASSERT_GT(noholds, 5u);
  EXPECT_GT(hold_len / holds, nohold_len / noholds);
}

TEST(AircraftTest, HoldingLoopReturnsNearFix) {
  // A holding flight passes near the approach fix multiple times.
  AircraftScenarioParams p = AircraftScenarioParams::Default();
  p.num_flights = 40;
  p.outlier_fraction = 0.0;
  p.holding_probability = 1.0;
  p.min_holding_loops = 2;
  p.max_holding_loops = 2;
  auto scenario = GenerateAircraftScenario(p);
  ASSERT_TRUE(scenario.ok());
  for (size_t i = 0; i < scenario->flights.size(); ++i) {
    const FlightInfo& info = scenario->flights[i];
    const Airport& ap = p.airports[info.airport];
    const geom::Point2D fix{
        ap.position.x - std::cos(ap.runway_heading) * p.fix_distance,
        ap.position.y - std::sin(ap.runway_heading) * p.fix_distance};
    int near_fix_visits = 0;
    bool was_near = false;
    for (const auto& sample : scenario->store.Get(i).samples()) {
      const bool near = geom::Distance(sample.xy(), fix) < 1500.0;
      if (near && !was_near) ++near_fix_visits;
      was_near = near;
    }
    EXPECT_GE(near_fix_visits, 2) << "flight " << i;
  }
}

TEST(AircraftTest, RejectsBadParams) {
  AircraftScenarioParams p = AircraftScenarioParams::Default();
  p.airports.clear();
  EXPECT_FALSE(GenerateAircraftScenario(p).ok());
  p = AircraftScenarioParams::Default();
  p.sample_dt = 0.0;
  EXPECT_FALSE(GenerateAircraftScenario(p).ok());
}

// ---------------------------------------------------------------------------
// Maritime scenario
// ---------------------------------------------------------------------------

TEST(MaritimeTest, LaneShipsStayNearLane) {
  MaritimeScenarioParams p;
  p.num_ships = 30;
  p.wanderer_fraction = 0.0;
  p.lateral_sigma = 200.0;
  auto scenario = GenerateMaritimeScenario(p);
  ASSERT_TRUE(scenario.ok());
  for (size_t i = 0; i < scenario->ships.size(); ++i) {
    const ShipInfo& info = scenario->ships[i];
    const auto [pa, pb] = scenario->effective_lanes[info.lane];
    const geom::Segment2D lane(p.ports[pa], p.ports[pb]);
    for (const auto& sample : scenario->store.Get(i).samples()) {
      EXPECT_LT(geom::PointSegmentDistance(sample.xy(), lane), 2500.0);
    }
  }
}

TEST(MaritimeTest, DeterministicForSeed) {
  MaritimeScenarioParams p;
  p.num_ships = 15;
  auto a = GenerateMaritimeScenario(p);
  auto b = GenerateMaritimeScenario(p);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->store.NumPoints(), b->store.NumPoints());
}

TEST(MaritimeTest, NeedsTwoPorts) {
  MaritimeScenarioParams p;
  p.ports = {{0, 0}};
  EXPECT_FALSE(GenerateMaritimeScenario(p).ok());
}

// ---------------------------------------------------------------------------
// Urban scenario
// ---------------------------------------------------------------------------

TEST(UrbanTest, VehiclesFollowGrid) {
  UrbanScenarioParams p;
  p.num_vehicles = 25;
  auto scenario = GenerateUrbanScenario(p);
  ASSERT_TRUE(scenario.ok());
  EXPECT_GT(scenario->store.NumTrajectories(), 0u);
  // Manhattan routes: every sample lies on a grid line (x or y is a
  // multiple of the block length).
  for (traj::TrajectoryId tid = 0; tid < scenario->store.NumTrajectories();
       ++tid) {
    const traj::Trajectory& t = scenario->store.Get(tid);
    for (const auto& s : t.samples()) {
      const double fx = std::fmod(s.x, p.block);
      const double fy = std::fmod(s.y, p.block);
      const bool on_x = fx < 1.0 || fx > p.block - 1.0;
      const bool on_y = fy < 1.0 || fy > p.block - 1.0;
      EXPECT_TRUE(on_x || on_y);
    }
  }
}

TEST(UrbanTest, RejectsTinyGrid) {
  UrbanScenarioParams p;
  p.grid_size = 1;
  EXPECT_FALSE(GenerateUrbanScenario(p).ok());
}

// ---------------------------------------------------------------------------
// Noise / lanes helpers
// ---------------------------------------------------------------------------

TEST(NoiseTest, StaysWithinTimeBoundsAndValid) {
  traj::TrajectoryStore store;
  geom::Mbb3D bounds(0, 0, 100, 1000, 1000, 500);
  ASSERT_TRUE(
      AddNoiseTrajectories(&store, 5, bounds, 10.0, 10.0, 3, 50).ok());
  EXPECT_EQ(store.NumTrajectories(), 5u);
  for (traj::TrajectoryId tid = 0; tid < store.NumTrajectories(); ++tid) {
    const traj::Trajectory& t = store.Get(tid);
    EXPECT_TRUE(t.Validate().ok());
    EXPECT_GE(t.StartTime(), 100.0);
    EXPECT_LE(t.EndTime(), 500.0);
    EXPECT_GE(t.object_id(), 50u);
  }
}

TEST(NoiseTest, RejectsBadBounds) {
  traj::TrajectoryStore store;
  EXPECT_FALSE(
      AddNoiseTrajectories(&store, 5, geom::Mbb3D(), 10.0, 10.0, 3, 0).ok());
}

TEST(LanesTest, GeometryMatchesSpec) {
  traj::TrajectoryStore store =
      MakeParallelLanes(3, 2, 100.0, 500.0, 10.0, 5.0, /*seed=*/1,
                        /*jitter=*/0.0);
  EXPECT_EQ(store.NumTrajectories(), 6u);
  // Lane k objects have y == k*100 exactly (jitter 0).
  for (size_t tid = 0; tid < 6; ++tid) {
    const double expected_y = static_cast<double>(tid / 2) * 100.0;
    for (const auto& s : store.Get(tid).samples()) {
      EXPECT_DOUBLE_EQ(s.y, expected_y);
    }
  }
}

}  // namespace
}  // namespace hermes::datagen
