// Restart-under-load: the process-level half of the crash-recovery
// acceptance criterion. Where recovery_test.cc simulates crashes by
// re-opening a MemEnv, this test fork/execs the real `hermes_serve`
// daemon against a real filesystem WAL, ingests over TCP, SIGKILLs it
// mid-stream, restarts it on the same --wal-dir, and asserts every
// FLUSH-acked trajectory is queryable again with identical values.
//
// Requires HERMES_SERVE_BIN (set by CMake to $<TARGET_FILE:hermes_serve>);
// the test SKIPs when it is absent so the binary stays runnable alone.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "sql/value.h"

namespace hermes {
namespace {

/// One spawned daemon. Owns the pid and the stdout pipe; the destructor
/// SIGKILLs + reaps whatever is still running so no test leaks a server.
struct Daemon {
  pid_t pid = -1;
  int out_fd = -1;      ///< Read end of the child's stdout.
  uint16_t port = 0;
  bool recovered = false;

  ~Daemon() {
    if (pid > 0) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
    }
    if (out_fd >= 0) close(out_fd);
  }

  void Kill() {
    ASSERT_GT(pid, 0);
    ASSERT_EQ(kill(pid, SIGKILL), 0);
    ASSERT_EQ(waitpid(pid, nullptr, 0), pid);
    pid = -1;
  }

  /// SIGTERM and wait for a clean (exit code 0) shutdown.
  void Terminate() {
    ASSERT_GT(pid, 0);
    ASSERT_EQ(kill(pid, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    pid = -1;
  }
};

/// Spawns `hermes_serve --port=0 --ships=8 --wal-dir=<wal_dir>` with cwd
/// `work_dir` and blocks until its "listening on" banner names the port.
std::unique_ptr<Daemon> Spawn(const std::string& bin,
                              const std::string& work_dir,
                              const std::string& wal_dir) {
  int pipefd[2];
  if (pipe(pipefd) != 0) return nullptr;
  const pid_t pid = fork();
  if (pid < 0) {
    close(pipefd[0]);
    close(pipefd[1]);
    return nullptr;
  }
  if (pid == 0) {
    dup2(pipefd[1], STDOUT_FILENO);
    close(pipefd[0]);
    close(pipefd[1]);
    if (chdir(work_dir.c_str()) != 0) _exit(127);
    const std::string wal_arg = "--wal-dir=" + wal_dir;
    execl(bin.c_str(), bin.c_str(), "--port=0", "--ships=8",
          wal_arg.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  close(pipefd[1]);

  auto daemon = std::make_unique<Daemon>();
  daemon->pid = pid;
  daemon->out_fd = pipefd[0];

  // Read the banner: "hermes_serve listening on 127.0.0.1:PORT (MOD
  // ships seeded|recovered)". Blocking reads; a dead child gives EOF.
  std::string line;
  char c;
  while (line.find("listening on") == std::string::npos ||
         line.back() != '\n') {
    const ssize_t r = read(daemon->out_fd, &c, 1);
    if (r <= 0) return nullptr;  // daemon died before listening
    if (c == '\n' && line.find("listening on") == std::string::npos) {
      line.clear();
      continue;
    }
    line.push_back(c);
  }
  const size_t colon = line.rfind(':');
  if (colon == std::string::npos) return nullptr;
  daemon->port = static_cast<uint16_t>(std::atoi(line.c_str() + colon + 1));
  daemon->recovered = line.find("recovered") != std::string::npos;
  return daemon;
}

std::unique_ptr<net::Client> Connect(const Daemon& daemon) {
  auto client = net::Client::Connect("127.0.0.1", daemon.port);
  EXPECT_TRUE(client.ok()) << client.status().message();
  if (!client.ok()) return nullptr;
  // Dogfood the client deadline: a hung daemon fails the test instead
  // of wedging ctest.
  (*client)->set_receive_timeout_ms(30000);
  return std::move(client).value();
}

/// A 3-point synthetic trajectory for `object`, values derived from the
/// id so every acked row is independently checkable after recovery.
std::string InsertSql(int object) {
  std::string sql = "INSERT INTO ships VALUES";
  for (int k = 0; k < 3; ++k) {
    const int t = k * 60;
    const int x = object * 10 + k;
    const int y = object * 20 + k;
    sql += std::string(k == 0 ? " " : ", ") + "(" + std::to_string(object) +
           ", " + std::to_string(t) + ", " + std::to_string(x) + ", " +
           std::to_string(y) + ")";
  }
  sql += ";";
  return sql;
}

constexpr char kRangeAll[] = "SELECT RANGE(ships, -1e18, 1e18);";

TEST(RestartTest, KilledMidIngestRecoversEveryAckedTrajectory) {
  const char* bin = std::getenv("HERMES_SERVE_BIN");
  if (bin == nullptr || *bin == '\0') {
    GTEST_SKIP() << "HERMES_SERVE_BIN not set (run via ctest)";
  }
  char tmpl[] = "/tmp/hermes_restart_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string work_dir = tmpl;
  const std::string wal_dir = work_dir + "/wal";

  // ---- First life: seed, ingest, ack, then die mid-stream. ----
  auto daemon = Spawn(bin, work_dir, wal_dir);
  ASSERT_NE(daemon, nullptr);
  EXPECT_FALSE(daemon->recovered);  // first boot seeds the demo fleet

  sql::Table acked_range;
  {
    auto client = Connect(*daemon);
    ASSERT_NE(client, nullptr);
    for (int object = 9001; object <= 9005; ++object) {
      ASSERT_TRUE(client->Execute(InsertSql(object)).ok());
    }
    auto flush = client->Flush();
    ASSERT_TRUE(flush.ok()) << flush.status().message();
    // Everything the FLUSH ack covers, as the client will see it later:
    // one (object_id, points) row per trajectory, in id order.
    auto range = client->Execute(kRangeAll);
    ASSERT_TRUE(range.ok());
    acked_range = std::move(range).value();
    // 8 seeded ships + 5 acked inserts.
    ASSERT_EQ(acked_range.rows.size(), 13u);
  }

  // Un-acked load: a second connection streams inserts without reading
  // responses while the main thread pulls the trigger. Send errors are
  // expected once the process dies.
  std::thread streamer([&daemon] {
    auto client = net::Client::Connect("127.0.0.1", daemon->port);
    if (!client.ok()) return;
    for (int object = 9100; object < 9600; ++object) {
      if (!(*client)->SendExecute(InsertSql(object)).ok()) return;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  daemon->Kill();  // SIGKILL: no drain, no final fsync, no goodbye
  streamer.join();
  daemon.reset();

  // ---- Second life: same WAL dir, fresh port. ----
  daemon = Spawn(bin, work_dir, wal_dir);
  ASSERT_NE(daemon, nullptr);
  EXPECT_TRUE(daemon->recovered);

  auto client = Connect(*daemon);
  ASSERT_NE(client, nullptr);
  auto range = client->Execute(kRangeAll);
  ASSERT_TRUE(range.ok()) << range.status().message();

  // The recovery contract is one-sided: every acked trajectory must be
  // back with identical values; un-acked in-flight inserts may appear
  // (the worker group-commits continuously) but only ever *after* the
  // acked prefix, whole, and in send order.
  ASSERT_GE(range->rows.size(), acked_range.rows.size());
  for (size_t r = 0; r < acked_range.rows.size(); ++r) {
    ASSERT_EQ(range->rows[r].size(), acked_range.rows[r].size());
    for (size_t col = 0; col < acked_range.rows[r].size(); ++col) {
      EXPECT_TRUE(range->rows[r][col] == acked_range.rows[r][col])
          << "row " << r << " col " << col;
    }
  }
  for (size_t r = acked_range.rows.size(); r < range->rows.size(); ++r) {
    // Resurrected un-acked rows are exactly the streamed objects, dense
    // from 9100 — a drain is logged whole or not at all.
    const int64_t object =
        9100 + static_cast<int64_t>(r - acked_range.rows.size());
    EXPECT_TRUE(range->rows[r][0] == sql::Value::Int(object)) << "row " << r;
    EXPECT_TRUE(range->rows[r][1] == sql::Value::Int(3)) << "row " << r;
  }

  // The recovered daemon is fully live: ingest, ack, checkpoint.
  ASSERT_TRUE(client->Execute(InsertSql(9700)).ok());
  ASSERT_TRUE(client->Flush().ok());
  auto ckpt = client->Execute("CHECKPOINT;");
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().message();

  // ---- Third life: recovery straight from the checkpoint. ----
  daemon->Terminate();
  daemon.reset();
  daemon = Spawn(bin, work_dir, wal_dir);
  ASSERT_NE(daemon, nullptr);
  EXPECT_TRUE(daemon->recovered);
  auto final_client = Connect(*daemon);
  ASSERT_NE(final_client, nullptr);
  auto final_range = final_client->Execute(kRangeAll);
  ASSERT_TRUE(final_range.ok());
  EXPECT_GE(final_range->rows.size(), acked_range.rows.size() + 1);
  daemon->Terminate();
}

}  // namespace
}  // namespace hermes
