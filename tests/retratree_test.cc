#include <gtest/gtest.h>

#include <cmath>

#include "core/retratree.h"
#include "datagen/noise.h"
#include "exec/exec_context.h"
#include "storage/env.h"
#include "traj/distance.h"

namespace hermes::core {
namespace {

ReTraTreeParams SmallTreeParams() {
  ReTraTreeParams p;
  p.tau = 400.0;
  p.delta = 100.0;
  p.t_align = 30.0;
  p.d_assign = 80.0;
  p.gamma = 8;
  p.min_new_cluster_size = 2;
  p.s2t.SetSigma(40.0).SetEpsilon(80.0);
  p.s2t.segmentation.min_part_length = 2;
  p.s2t.sampling.sigma = 120.0;
  p.s2t.sampling.gain_stop_ratio = 0.2;
  return p;
}

/// Straight-line trajectory along x at height y over [t0, t1].
traj::Trajectory Line(traj::ObjectId id, double y, double t0, double t1,
                      double dt = 10.0) {
  traj::Trajectory t(id);
  for (double now = t0; now <= t1 + 1e-9; now += dt) {
    EXPECT_TRUE(t.Append({(now - t0) * 10.0, y, now}).ok());
  }
  return t;
}

class ReTraTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = storage::Env::NewMemEnv();
    auto tree = ReTraTree::Open(env_.get(), "tree", SmallTreeParams());
    ASSERT_TRUE(tree.ok());
    tree_ = std::move(tree).value();
  }
  std::unique_ptr<storage::Env> env_;
  std::unique_ptr<ReTraTree> tree_;
};

TEST_F(ReTraTreeTest, OpenValidatesParameters) {
  ReTraTreeParams bad = SmallTreeParams();
  bad.tau = -1.0;
  EXPECT_FALSE(ReTraTree::Open(env_.get(), "bad1", bad).ok());
  bad = SmallTreeParams();
  bad.delta = bad.tau * 2;
  EXPECT_FALSE(ReTraTree::Open(env_.get(), "bad2", bad).ok());
}

TEST_F(ReTraTreeTest, DeltaSnapsToDivideTau) {
  ReTraTreeParams p = SmallTreeParams();
  p.tau = 100.0;
  p.delta = 33.0;  // Snaps to 100/3.
  auto tree = ReTraTree::Open(env_.get(), "snap", p);
  ASSERT_TRUE(tree.ok());
  EXPECT_NEAR((*tree)->params().delta, 100.0 / 3.0, 1e-9);
}

TEST_F(ReTraTreeTest, InsertSplitsAtSubChunkBoundaries) {
  // A trajectory spanning [0, 350] with delta=100 creates sub-chunks
  // 0..3 inside chunk 0.
  ASSERT_TRUE(tree_->Insert(Line(1, 0, 0, 350), 0).ok());
  ASSERT_EQ(tree_->chunks().size(), 1u);
  const Chunk& chunk = tree_->chunks().begin()->second;
  EXPECT_EQ(chunk.sub_chunks.size(), 4u);
  // Pieces land in the outlier partitions (no representatives yet).
  EXPECT_EQ(tree_->stats().sent_to_outliers, 4u);
  EXPECT_EQ(tree_->stats().assigned_to_existing, 0u);
}

TEST_F(ReTraTreeTest, InsertSpanningChunks) {
  ASSERT_TRUE(tree_->Insert(Line(1, 0, 300, 500), 0).ok());
  EXPECT_EQ(tree_->chunks().size(), 2u);  // Chunks 0 and 1.
}

TEST_F(ReTraTreeTest, RejectsDegenerateTrajectory) {
  traj::Trajectory t(1);
  ASSERT_TRUE(t.Append({0, 0, 0}).ok());
  EXPECT_TRUE(tree_->Insert(t, 0).IsInvalidArgument());
}

TEST_F(ReTraTreeTest, GammaTriggersS2TAndCreatesRepresentatives) {
  // 12 co-moving objects in one sub-chunk: after gamma=8 buffered
  // outliers, S2T runs and back-propagates representatives.
  for (int k = 0; k < 12; ++k) {
    ASSERT_TRUE(tree_->Insert(Line(k, k * 10.0, 0, 95), k).ok());
  }
  EXPECT_GE(tree_->stats().s2t_runs, 1u);
  EXPECT_GE(tree_->TotalRepresentatives(), 1u);
  // Later arrivals are assigned directly to the new representative.
  ASSERT_TRUE(tree_->Insert(Line(50, 55.0, 0, 95), 50).ok());
  EXPECT_GE(tree_->stats().assigned_to_existing, 1u);
  ASSERT_TRUE(tree_->Validate().ok());
}

TEST_F(ReTraTreeTest, MembersArePersistedAndReadable) {
  for (int k = 0; k < 12; ++k) {
    ASSERT_TRUE(tree_->Insert(Line(k, k * 10.0, 0, 95), k).ok());
  }
  ASSERT_GE(tree_->TotalRepresentatives(), 1u);
  size_t total_members = 0;
  for (const auto& [ci, chunk] : tree_->chunks()) {
    for (const auto& [si, sc] : chunk.sub_chunks) {
      for (const auto& entry : sc.representatives) {
        auto members = tree_->ReadMembers(*entry);
        ASSERT_TRUE(members.ok());
        EXPECT_EQ(members->size(), entry->member_count);
        total_members += members->size();
        for (const auto& m : *members) {
          EXPECT_GE(m.points.size(), 2u);
          // Members live inside the sub-chunk's interval.
          EXPECT_GE(m.StartTime(), sc.start - 1e-6);
          EXPECT_LE(m.EndTime(), sc.end + 1e-6);
        }
      }
    }
  }
  EXPECT_GT(total_members, 0u);
}

TEST_F(ReTraTreeTest, ReadMembersInWindowFiltersByTime) {
  ReTraTreeParams p = SmallTreeParams();
  p.delta = 400.0;  // One sub-chunk = one chunk for this test.
  p.t_align = 400.0;
  auto tree = ReTraTree::Open(env_.get(), "win", p);
  ASSERT_TRUE(tree.ok());
  for (int k = 0; k < 12; ++k) {
    ASSERT_TRUE((*tree)->Insert(Line(k, k * 10.0, 0, 395), k).ok());
  }
  ASSERT_GE((*tree)->TotalRepresentatives(), 1u);
  const auto& chunk = (*tree)->chunks().begin()->second;
  const auto& sc = chunk.sub_chunks.begin()->second;
  const auto& entry = sc.representatives.front();
  auto all = (*tree)->ReadMembers(*entry);
  auto windowed = (*tree)->ReadMembersInWindow(*entry, 0.0, 50.0);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(windowed.ok());
  // The index read must return exactly the members whose lifespan
  // intersects [0, 50] (re-segmentation can produce later-starting ones).
  size_t expected = 0;
  for (const auto& m : *all) {
    if (m.StartTime() <= 50.0 && m.EndTime() >= 0.0) ++expected;
  }
  EXPECT_EQ(windowed->size(), expected);
  EXPECT_LE(windowed->size(), all->size());
  auto empty = (*tree)->ReadMembersInWindow(*entry, 10000.0, 20000.0);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST_F(ReTraTreeTest, OutliersStayBufferedWhenNoClusterForms) {
  // Far-apart objects cannot form clusters: everything stays outlier.
  for (int k = 0; k < 6; ++k) {
    ASSERT_TRUE(tree_->Insert(Line(k, k * 5000.0, 0, 95), k).ok());
  }
  EXPECT_EQ(tree_->TotalRepresentatives(), 0u);
  const auto subchunks = tree_->SubChunksIn(0, 100);
  ASSERT_EQ(subchunks.size(), 1u);
  auto outliers = tree_->ReadOutliers(*subchunks[0]);
  ASSERT_TRUE(outliers.ok());
  EXPECT_EQ(outliers->size(), 6u);
}

TEST_F(ReTraTreeTest, SubChunksInSelectsWindow) {
  ASSERT_TRUE(tree_->Insert(Line(1, 0, 0, 795), 0).ok());
  EXPECT_EQ(tree_->SubChunksIn(0, 800).size(), 8u);
  EXPECT_EQ(tree_->SubChunksIn(0, 100).size(), 1u);
  EXPECT_EQ(tree_->SubChunksIn(150, 250).size(), 2u);
  EXPECT_TRUE(tree_->SubChunksIn(10000, 20000).empty());
  // Boundary: [100, 200) intersects only sub-chunk 1.
  EXPECT_EQ(tree_->SubChunksIn(100, 200).size(), 1u);
}

TEST_F(ReTraTreeTest, SerializationRoundTrip) {
  traj::SubTrajectory st;
  st.id = 77;
  st.source_trajectory = 5;
  st.object_id = 9;
  st.first_sample_index = 3;
  st.mean_voting = 2.25;
  st.points = Line(9, 42.0, 10, 60);
  const std::string bytes = EncodeSubTrajectory(st);
  auto back = DecodeSubTrajectory(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id, 77u);
  EXPECT_EQ(back->source_trajectory, 5u);
  EXPECT_EQ(back->object_id, 9u);
  EXPECT_EQ(back->first_sample_index, 3u);
  EXPECT_DOUBLE_EQ(back->mean_voting, 2.25);
  ASSERT_EQ(back->points.size(), st.points.size());
  for (size_t i = 0; i < st.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(back->points[i].x, st.points[i].x);
    EXPECT_DOUBLE_EQ(back->points[i].t, st.points[i].t);
  }
}

TEST_F(ReTraTreeTest, DecodeRejectsCorruptBytes) {
  EXPECT_TRUE(DecodeSubTrajectory("garbage").status().IsCorruption());
  traj::SubTrajectory st;
  st.points = Line(1, 0, 0, 50);
  std::string bytes = EncodeSubTrajectory(st);
  bytes.resize(bytes.size() - 5);  // Truncate.
  EXPECT_TRUE(DecodeSubTrajectory(bytes).status().IsCorruption());
}

TEST_F(ReTraTreeTest, StatsAccounting) {
  for (int k = 0; k < 12; ++k) {
    ASSERT_TRUE(tree_->Insert(Line(k, k * 10.0, 0, 95), k).ok());
  }
  const ReTraTreeStats& s = tree_->stats();
  EXPECT_EQ(s.pieces_inserted,
            s.assigned_to_existing + s.sent_to_outliers);
  EXPECT_GT(s.records_written, 0u);
}

TEST_F(ReTraTreeTest, InsertStoreProcessesEverything) {
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      2, 5, 50.0, 900.0, 10.0, 10.0, /*seed=*/3, /*jitter=*/1.0);
  ASSERT_TRUE(tree_->InsertStore(store).ok());
  EXPECT_GT(tree_->stats().pieces_inserted, 0u);
  ASSERT_TRUE(tree_->Validate().ok());
  // The batch path records its phase split even without an exec context.
  EXPECT_GE(tree_->stats().ingest_split_us, 0);
  EXPECT_GE(tree_->stats().ingest_apply_us, 0);
}

/// Shared comparison for the batch-vs-sequential edge cases below: same
/// counters, same structure, same persisted pieces.
void ExpectSameCatalog(const ReTraTree& a, const ReTraTree& b) {
  ASSERT_EQ(a.stats().pieces_inserted, b.stats().pieces_inserted);
  ASSERT_EQ(a.stats().sent_to_outliers, b.stats().sent_to_outliers);
  ASSERT_EQ(a.stats().assigned_to_existing, b.stats().assigned_to_existing);
  ASSERT_EQ(a.stats().s2t_runs, b.stats().s2t_runs);
  ASSERT_EQ(a.TotalRepresentatives(), b.TotalRepresentatives());
  ASSERT_EQ(a.chunks().size(), b.chunks().size());
  auto ac = a.chunks().begin();
  auto bc = b.chunks().begin();
  for (; ac != a.chunks().end(); ++ac, ++bc) {
    ASSERT_EQ(ac->first, bc->first);
    ASSERT_EQ(ac->second.sub_chunks.size(), bc->second.sub_chunks.size());
    auto as = ac->second.sub_chunks.begin();
    auto bs = bc->second.sub_chunks.begin();
    for (; as != ac->second.sub_chunks.end(); ++as, ++bs) {
      ASSERT_EQ(as->first, bs->first);
      ASSERT_EQ(as->second.outlier_count, bs->second.outlier_count);
      auto a_out = a.ReadOutliers(as->second);
      auto b_out = b.ReadOutliers(bs->second);
      ASSERT_TRUE(a_out.ok());
      ASSERT_TRUE(b_out.ok());
      ASSERT_EQ(a_out->size(), b_out->size());
      for (size_t i = 0; i < a_out->size(); ++i) {
        ASSERT_EQ((*a_out)[i].id, (*b_out)[i].id);
        ASSERT_EQ((*a_out)[i].points.size(), (*b_out)[i].points.size());
      }
    }
  }
}

TEST_F(ReTraTreeTest, BatchInsertEmptyStoreIsNoOp) {
  traj::TrajectoryStore empty;
  exec::ExecContext ctx(4);
  ASSERT_TRUE(tree_->InsertStore(empty, &ctx).ok());
  EXPECT_TRUE(tree_->chunks().empty());
  EXPECT_EQ(tree_->stats().pieces_inserted, 0u);
}

TEST_F(ReTraTreeTest, BatchInsertRejectsDegenerateTrajectoryUpfront) {
  traj::TrajectoryStore store;
  traj::Trajectory ok_traj(1);
  ASSERT_TRUE(ok_traj.Append({0, 0, 0}).ok());
  ASSERT_TRUE(ok_traj.Append({10, 0, 10}).ok());
  ASSERT_TRUE(store.Add(std::move(ok_traj)).ok());
  traj::Trajectory lone(2);
  ASSERT_TRUE(lone.Append({0, 0, 50}).ok());
  ASSERT_TRUE(store.Add(std::move(lone)).ok());
  exec::ExecContext ctx(2);
  EXPECT_TRUE(tree_->InsertStore(store, &ctx).IsInvalidArgument());
  // The batch failed in the split phase: nothing was applied.
  EXPECT_EQ(tree_->stats().pieces_inserted, 0u);
}

TEST_F(ReTraTreeTest, BatchSingleTrajectoryMatchesSequentialInsert) {
  traj::TrajectoryStore store;
  ASSERT_TRUE(store.Add(Line(7, 20.0, 0, 350)).ok());
  auto seq_tree =
      std::move(ReTraTree::Open(env_.get(), "seq1", SmallTreeParams()))
          .value();
  ASSERT_TRUE(seq_tree->Insert(store.Get(0), 0).ok());
  exec::ExecContext ctx(4);
  ASSERT_TRUE(tree_->InsertStore(store, &ctx).ok());
  ExpectSameCatalog(*seq_tree, *tree_);
  EXPECT_EQ(tree_->stats().pieces_inserted, 4u);  // delta=100 over [0,350].
}

TEST_F(ReTraTreeTest, BatchSplitsLongPiecesAcrossManySubChunks) {
  // delta=500 with dt=1 puts ~500 samples in each sub-chunk: every
  // sub-chunk piece exceeds the 300-sample record bound and splits with
  // one overlapping sample, and the trajectory spans 4 sub-chunks.
  ReTraTreeParams p = SmallTreeParams();
  p.tau = 2000.0;
  p.delta = 500.0;
  p.gamma = 1000;  // No re-clustering: isolate the splitting behavior.
  auto seq_tree = std::move(ReTraTree::Open(env_.get(), "seqlong", p)).value();
  auto batch_tree =
      std::move(ReTraTree::Open(env_.get(), "batchlong", p)).value();

  traj::TrajectoryStore store;
  ASSERT_TRUE(store.Add(Line(3, 0.0, 0, 1999, /*dt=*/1.0)).ok());
  ASSERT_TRUE(seq_tree->Insert(store.Get(0), 0).ok());
  exec::ExecContext ctx(4);
  ASSERT_TRUE(batch_tree->InsertStore(store, &ctx).ok());

  ExpectSameCatalog(*seq_tree, *batch_tree);
  // 4 sub-chunks x (501 samples -> pieces of <=300 with 1-sample overlap).
  EXPECT_EQ(batch_tree->chunks().begin()->second.sub_chunks.size(), 4u);
  EXPECT_GT(batch_tree->stats().pieces_inserted, 4u);
  ASSERT_TRUE(batch_tree->Validate().ok());
}

TEST_F(ReTraTreeTest, ReclusterFiresInsideParallelApply) {
  // Co-moving objects across several sub-chunks with a tiny gamma: the
  // apply fan-out re-clusters inside its tasks (nested S2T fan-out) and
  // still matches the sequential loop.
  traj::TrajectoryStore store;
  for (int k = 0; k < 12; ++k) {
    ASSERT_TRUE(store.Add(Line(k, k * 10.0, 0, 395)).ok());
  }
  auto seq_tree =
      std::move(ReTraTree::Open(env_.get(), "seqrc", SmallTreeParams()))
          .value();
  for (traj::TrajectoryId tid = 0; tid < store.NumTrajectories(); ++tid) {
    ASSERT_TRUE(seq_tree->Insert(store.Get(tid), tid).ok());
  }
  ASSERT_GE(seq_tree->stats().s2t_runs, 1u);

  exec::ExecContext ctx(4);
  auto batch_tree =
      std::move(ReTraTree::Open(env_.get(), "batchrc", SmallTreeParams(),
                                &ctx))
          .value();
  ASSERT_TRUE(batch_tree->InsertStore(store).ok());  // Uses the tree's ctx.
  EXPECT_GE(batch_tree->stats().s2t_runs, 1u);
  ExpectSameCatalog(*seq_tree, *batch_tree);
  ASSERT_TRUE(batch_tree->Validate().ok());
  // Representatives discovered inside apply tasks carry derived ids
  // (bit 63) — disjoint from the prefix-sum piece-id space.
  for (const auto& [ci, chunk] : batch_tree->chunks()) {
    for (const auto& [si, sc] : chunk.sub_chunks) {
      for (const auto& entry : sc.representatives) {
        EXPECT_NE(entry->representative.id & (uint64_t{1} << 63), 0u);
      }
    }
  }
}

TEST_F(ReTraTreeTest, SaveAndReopenRestoresStructure) {
  for (int k = 0; k < 12; ++k) {
    ASSERT_TRUE(tree_->Insert(Line(k, k * 10.0, 0, 95), k).ok());
  }
  ASSERT_GE(tree_->TotalRepresentatives(), 1u);
  const size_t reps_before = tree_->TotalRepresentatives();
  const auto chunks_before = tree_->chunks().size();
  ASSERT_TRUE(tree_->Save().ok());
  tree_.reset();  // Close everything.

  auto reopened = ReTraTree::Open(env_.get(), "tree", SmallTreeParams());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->TotalRepresentatives(), reps_before);
  EXPECT_EQ((*reopened)->chunks().size(), chunks_before);
  ASSERT_TRUE((*reopened)->Validate().ok());

  // The restored tree keeps serving: members readable, assignment works.
  for (const auto& [ci, chunk] : (*reopened)->chunks()) {
    for (const auto& [si, sc] : chunk.sub_chunks) {
      for (const auto& entry : sc.representatives) {
        auto members = (*reopened)->ReadMembers(*entry);
        ASSERT_TRUE(members.ok());
        EXPECT_EQ(members->size(), entry->member_count);
      }
    }
  }
  ASSERT_TRUE((*reopened)->Insert(Line(70, 55.0, 0, 95), 70).ok());
  EXPECT_GE((*reopened)->stats().assigned_to_existing, 1u);
}

TEST_F(ReTraTreeTest, ReopenWithDifferentStructuralParamsFails) {
  for (int k = 0; k < 12; ++k) {
    ASSERT_TRUE(tree_->Insert(Line(k, k * 10.0, 0, 95), k).ok());
  }
  ASSERT_TRUE(tree_->Save().ok());
  tree_.reset();

  ReTraTreeParams other = SmallTreeParams();
  other.tau = 800.0;  // Different chunking: the catalog must refuse.
  EXPECT_TRUE(
      ReTraTree::Open(env_.get(), "tree", other).status()
          .IsInvalidArgument());
}

TEST_F(ReTraTreeTest, SaveIsIdempotentAcrossReopens) {
  for (int k = 0; k < 12; ++k) {
    ASSERT_TRUE(tree_->Insert(Line(k, k * 10.0, 0, 95), k).ok());
  }
  ASSERT_TRUE(tree_->Save().ok());
  const size_t reps = tree_->TotalRepresentatives();
  tree_.reset();
  for (int round = 0; round < 3; ++round) {
    auto reopened = ReTraTree::Open(env_.get(), "tree", SmallTreeParams());
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ((*reopened)->TotalRepresentatives(), reps);
    ASSERT_TRUE((*reopened)->Save().ok());
  }
}

TEST_F(ReTraTreeTest, RepresentativeAssignmentRespectsDistance) {
  for (int k = 0; k < 12; ++k) {
    ASSERT_TRUE(tree_->Insert(Line(k, k * 10.0, 0, 95), k).ok());
  }
  ASSERT_GE(tree_->TotalRepresentatives(), 1u);
  const uint64_t outliers_before = tree_->stats().sent_to_outliers;
  // A trajectory far from every representative must buffer as outlier.
  ASSERT_TRUE(tree_->Insert(Line(99, 90000.0, 0, 95), 99).ok());
  EXPECT_EQ(tree_->stats().sent_to_outliers, outliers_before + 1);
}

}  // namespace
}  // namespace hermes::core
