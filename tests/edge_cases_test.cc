// Cross-module edge cases: behaviours at boundaries that the per-module
// suites do not reach (negative time domains, parameter changes between
// queries, stitching limits, degenerate inputs).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>

#include "core/qut_clustering.h"
#include "core/retratree.h"
#include "core/s2t_clustering.h"
#include "datagen/noise.h"
#include "rtree/str_bulk_load.h"
#include "sql/executor.h"
#include "storage/env.h"
#include "va/exporters.h"
#include "voting/voting.h"

namespace hermes {
namespace {

traj::Trajectory Line(traj::ObjectId id, double y, double t0, double t1,
                      double dt = 10.0) {
  traj::Trajectory t(id);
  for (double now = t0; now <= t1 + 1e-9; now += dt) {
    EXPECT_TRUE(t.Append({(now - t0) * 10.0, y, now}).ok());
  }
  return t;
}

core::ReTraTreeParams SmallTree() {
  core::ReTraTreeParams p;
  p.tau = 400.0;
  p.delta = 100.0;
  p.t_align = 30.0;
  p.d_assign = 80.0;
  p.gamma = 8;
  p.s2t.SetSigma(40.0).SetEpsilon(80.0);
  p.s2t.segmentation.min_part_length = 2;
  p.s2t.sampling.sigma = 120.0;
  p.s2t.sampling.gain_stop_ratio = 0.2;
  return p;
}

// ---------------------------------------------------------------------------
// Negative / shifted time domains
// ---------------------------------------------------------------------------

TEST(EdgeCases, ReTraTreeHandlesNegativeTimes) {
  auto env = storage::Env::NewMemEnv();
  auto tree = core::ReTraTree::Open(env.get(), "neg", SmallTree());
  ASSERT_TRUE(tree.ok());
  // Trajectories living before the origin (t in [-395, -5]).
  for (int k = 0; k < 12; ++k) {
    ASSERT_TRUE((*tree)->Insert(Line(k, k * 10.0, -395, -5), k).ok());
  }
  ASSERT_TRUE((*tree)->Validate().ok());
  EXPECT_FALSE((*tree)->chunks().empty());
  for (const auto& [ci, chunk] : (*tree)->chunks()) {
    EXPECT_LT(ci, 0);  // Negative chunk indices.
  }
  core::QuTClustering qut(tree->get());
  auto result = qut.Query(-400, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->TotalMembers() + result->outliers.size(), 0u);
}

TEST(EdgeCases, ReTraTreeOriginShiftAlignsChunks) {
  auto env = storage::Env::NewMemEnv();
  core::ReTraTreeParams p = SmallTree();
  p.origin = 50.0;
  auto tree = core::ReTraTree::Open(env.get(), "shift", p);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE((*tree)->Insert(Line(1, 0, 50, 445), 0).ok());
  const auto subchunks = (*tree)->SubChunksIn(50, 450);
  ASSERT_EQ(subchunks.size(), 4u);
  EXPECT_DOUBLE_EQ(subchunks.front()->start, 50.0);  // Grid starts at 50.
}

// ---------------------------------------------------------------------------
// Stitching limits
// ---------------------------------------------------------------------------

TEST(EdgeCases, NoStitchAcrossTemporalGap) {
  // Co-located lanes in sub-chunks 0 and 2 (nothing in 1): the cluster
  // pieces are separated by a dead sub-chunk and must not merge.
  auto env = storage::Env::NewMemEnv();
  auto tree = core::ReTraTree::Open(env.get(), "gap", SmallTree());
  ASSERT_TRUE(tree.ok());
  for (int k = 0; k < 12; ++k) {
    ASSERT_TRUE((*tree)->Insert(Line(k, k * 10.0, 0, 95), k).ok());
    ASSERT_TRUE((*tree)->Insert(Line(100 + k, k * 10.0, 200, 295),
                                100 + k)
                    .ok());
  }
  core::QuTClustering qut(tree->get());
  auto result = qut.Query(0, 400);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.stitches, 0u);
  for (const auto& cluster : result->clusters) {
    // No cluster spans the dead zone (95, 200).
    EXPECT_TRUE(cluster.EndTime() <= 100.0 + 1e-6 ||
                cluster.StartTime() >= 200.0 - 1e-6);
  }
}

TEST(EdgeCases, StitchRespectsSpatialGap) {
  // Continuous in time but the flow teleports 10 km at the boundary:
  // the representatives cannot be continuous, so no stitch.
  auto env = storage::Env::NewMemEnv();
  auto tree = core::ReTraTree::Open(env.get(), "tele", SmallTree());
  ASSERT_TRUE(tree.ok());
  for (int k = 0; k < 12; ++k) {
    // Piece 1 in sub-chunk 0 at y ~ k*10.
    ASSERT_TRUE((*tree)->Insert(Line(k, k * 10.0, 0, 95), k).ok());
    // Piece 2 in sub-chunk 1 at y ~ 10000 + k*10.
    ASSERT_TRUE(
        (*tree)->Insert(Line(200 + k, 10000.0 + k * 10.0, 100, 195),
                        200 + k)
            .ok());
  }
  core::QuTClustering qut(tree->get());
  auto result = qut.Query(0, 200);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.stitches, 0u);
}

// ---------------------------------------------------------------------------
// SQL session dynamics
// ---------------------------------------------------------------------------

TEST(EdgeCases, QutTreeRebuiltOnParameterChange) {
  sql::Session session;
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      1, 6, 10.0, 800.0, 10.0, 10.0, /*seed=*/3, /*jitter=*/1.0);
  ASSERT_TRUE(session.RegisterStore("m", std::move(lanes)).ok());
  ASSERT_TRUE(session.Execute("SELECT QUT(m, 0, 80, 40, 20, 6, 80, 6);").ok());
  // Different tau: a new tree must be built (and still answer correctly).
  auto result = session.Execute("SELECT QUT(m, 0, 80, 80, 20, 6, 80, 6);");
  ASSERT_TRUE(result.ok());
}

TEST(EdgeCases, InsertInvalidatesExistingTree) {
  sql::Session session;
  traj::TrajectoryStore lanes = datagen::MakeParallelLanes(
      1, 6, 10.0, 800.0, 10.0, 10.0, /*seed=*/3, /*jitter=*/1.0);
  ASSERT_TRUE(session.RegisterStore("m", std::move(lanes)).ok());
  ASSERT_TRUE(session.Execute("SELECT QUT(m, 0, 80, 40, 20, 6, 80, 6);").ok());
  ASSERT_TRUE(
      session.Execute("INSERT INTO m VALUES (99, 0, 0, 5), (99, 40, 400, 5);")
          .ok());
  // The rebuilt tree sees the new object.
  auto result = session.Execute("SELECT QUT(m, 0, 80, 40, 20, 6, 80, 6);");
  ASSERT_TRUE(result.ok());
}

// ---------------------------------------------------------------------------
// Voting properties
// ---------------------------------------------------------------------------

TEST(EdgeCases, IdenticalCoMoversVoteNminusOne) {
  // N identical trajectories: every segment receives N-1 full votes.
  traj::TrajectoryStore store;
  const int n = 6;
  for (int k = 0; k < n; ++k) {
    ASSERT_TRUE(store.Add(Line(k, 0.0, 0, 200)).ok());
  }
  voting::VotingParams vp{50.0, 3.0, 0.5};
  auto votes = voting::ComputeVotingNaive(store, vp);
  ASSERT_TRUE(votes.ok());
  for (int k = 0; k < n; ++k) {
    for (double v : votes->votes[k]) {
      EXPECT_NEAR(v, n - 1.0, 1e-6);
    }
  }
}

TEST(EdgeCases, VotingOnEmptyStore) {
  traj::TrajectoryStore store;
  voting::VotingParams vp{50.0, 3.0, 0.5};
  auto votes = voting::ComputeVotingNaive(store, vp);
  ASSERT_TRUE(votes.ok());
  EXPECT_TRUE(votes->votes.empty());
}

// ---------------------------------------------------------------------------
// S2T degenerate inputs
// ---------------------------------------------------------------------------

TEST(EdgeCases, S2TSingleTrajectoryIsOutlier) {
  traj::TrajectoryStore store;
  ASSERT_TRUE(store.Add(Line(1, 0.0, 0, 200)).ok());
  core::S2TParams p;
  p.SetSigma(50.0).SetEpsilon(100.0);
  core::S2TClustering s2t(p);
  auto result = s2t.Run(store);
  ASSERT_TRUE(result.ok());
  // Nothing votes for it: no representative can be sampled.
  EXPECT_EQ(result->NumClusters(), 0u);
  EXPECT_GE(result->NumOutliers(), 1u);
}

TEST(EdgeCases, S2TEmptyStore) {
  traj::TrajectoryStore store;
  core::S2TParams p;
  core::S2TClustering s2t(p);
  auto result = s2t.Run(store);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumClusters(), 0u);
  EXPECT_TRUE(result->sub_trajectories.empty());
}

// ---------------------------------------------------------------------------
// VA on QuT answers
// ---------------------------------------------------------------------------

TEST(EdgeCases, QutMapCsvRoundTripCounts) {
  auto env = storage::Env::NewMemEnv();
  auto tree = core::ReTraTree::Open(env.get(), "vaq", SmallTree());
  ASSERT_TRUE(tree.ok());
  for (int k = 0; k < 12; ++k) {
    ASSERT_TRUE((*tree)->Insert(Line(k, k * 10.0, 0, 95), k).ok());
  }
  core::QuTClustering qut(tree->get());
  auto result = qut.Query(0, 100);
  ASSERT_TRUE(result.ok());
  const std::string path = "/tmp/hermes_qut_map.csv";
  ASSERT_TRUE(va::ExportQuTMapCsv(path, *result).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  size_t lines = 0;
  int c;
  while ((c = std::fgetc(f)) != EOF) lines += (c == '\n');
  std::fclose(f);
  size_t expected = 1;  // Header.
  for (const auto& cl : result->clusters) {
    for (const auto& m : cl.members) expected += m.points.size();
  }
  for (const auto& o : result->outliers) expected += o.points.size();
  EXPECT_EQ(lines, expected);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Concurrency: independent read handles over one index file
// ---------------------------------------------------------------------------

TEST(EdgeCases, ConcurrentReadersSeeIdenticalAnswers) {
  auto env = storage::Env::NewMemEnv();
  traj::TrajectoryStore store = datagen::MakeParallelLanes(
      4, 4, 100.0, 1000.0, 10.0, 10.0, /*seed=*/21, /*jitter=*/2.0);
  {
    auto built = rtree::BuildSegmentIndex(env.get(), "conc.idx", store);
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE((*built)->Flush().ok());
  }
  const geom::Mbb3D query(0, 0, 10, 500, 400, 60);
  // Reference answer from one handle.
  auto ref_handle = rtree::RTree3D::Open(env.get(), "conc.idx");
  ASSERT_TRUE(ref_handle.ok());
  auto reference = (*ref_handle)->Search(query);
  ASSERT_TRUE(reference.ok());
  std::sort(reference->begin(), reference->end());

  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::vector<bool> ok(kThreads, false);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w]() {
      auto handle = rtree::RTree3D::Open(env.get(), "conc.idx");
      if (!handle.ok()) return;
      for (int round = 0; round < 50; ++round) {
        auto got = (*handle)->Search(query);
        if (!got.ok()) return;
        std::sort(got->begin(), got->end());
        if (*got != *reference) return;
      }
      ok[w] = true;
    });
  }
  for (auto& t : workers) t.join();
  for (int w = 0; w < kThreads; ++w) {
    EXPECT_TRUE(ok[w]) << "worker " << w;
  }
}

}  // namespace
}  // namespace hermes
