// Cross-thread determinism harness for the full S2T pipeline: datagen-
// seeded MODs from all three synthetic movement domains, several
// sigma/epsilon settings each, run at 1/2/4/8 threads. Every run must be
// *bit-identical* to the 1-thread run — voting signals, sub-trajectory
// ids/boundaries, representatives, and cluster memberships — because
// every parallel phase (arena build, STR sorts, voting probe + kernel,
// NaTS DP + materialization) is deterministic by construction, not by
// tolerance.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/s2t_clustering.h"
#include "datagen/aircraft.h"
#include "datagen/maritime.h"
#include "datagen/urban.h"
#include "exec/exec_context.h"

namespace hermes::core {
namespace {

struct SigmaEps {
  double sigma;
  double epsilon;
};

struct Scenario {
  std::string name;
  traj::TrajectoryStore store;
  std::vector<SigmaEps> settings;
};

std::vector<Scenario> MakeScenarios() {
  std::vector<Scenario> scenarios;
  {
    datagen::AircraftScenarioParams p =
        datagen::AircraftScenarioParams::Default();
    p.num_flights = 16;
    p.sample_dt = 40.0;
    p.seed = 12;
    auto s = datagen::GenerateAircraftScenario(p);
    scenarios.push_back({"aircraft", std::move(s->store),
                         {{1500.0, 3000.0}, {800.0, 1600.0}}});
  }
  {
    datagen::MaritimeScenarioParams p;
    p.num_ships = 14;
    p.sample_dt = 300.0;
    p.seed = 13;
    auto s = datagen::GenerateMaritimeScenario(p);
    scenarios.push_back({"maritime", std::move(s->store),
                         {{800.0, 1600.0}, {400.0, 900.0}}});
  }
  {
    datagen::UrbanScenarioParams p;
    p.num_vehicles = 16;
    p.sample_dt = 20.0;
    p.seed = 14;
    auto s = datagen::GenerateUrbanScenario(p);
    scenarios.push_back(
        {"urban", std::move(s->store), {{120.0, 240.0}, {60.0, 150.0}}});
  }
  return scenarios;
}

S2TParams MakeParams(const SigmaEps& se, bool use_index) {
  S2TParams p;
  p.SetSigma(se.sigma).SetEpsilon(se.epsilon);
  p.use_index = use_index;
  p.segmentation.min_part_length = 3;
  p.voting.min_overlap_ratio = 0.3;
  p.sampling.min_overlap_ratio = 0.3;
  p.clustering.min_overlap_ratio = 0.3;
  return p;
}

/// Bitwise equality of two full pipeline results. EXPECT_EQ on doubles is
/// exact comparison — the point of the harness.
void ExpectBitIdentical(const S2TResult& base, const S2TResult& run,
                        const std::string& what) {
  // Voting signals.
  ASSERT_EQ(base.voting.votes.size(), run.voting.votes.size()) << what;
  for (size_t tid = 0; tid < base.voting.votes.size(); ++tid) {
    ASSERT_EQ(base.voting.votes[tid].size(), run.voting.votes[tid].size())
        << what << " tid=" << tid;
    for (size_t i = 0; i < base.voting.votes[tid].size(); ++i) {
      ASSERT_EQ(base.voting.votes[tid][i], run.voting.votes[tid][i])
          << what << " tid=" << tid << " seg=" << i;
    }
  }
  ASSERT_EQ(base.voting.pairs_evaluated, run.voting.pairs_evaluated) << what;

  // Sub-trajectory ids, provenance, boundaries, and geometry.
  ASSERT_EQ(base.sub_trajectories.size(), run.sub_trajectories.size())
      << what;
  for (size_t i = 0; i < base.sub_trajectories.size(); ++i) {
    const traj::SubTrajectory& a = base.sub_trajectories[i];
    const traj::SubTrajectory& b = run.sub_trajectories[i];
    ASSERT_EQ(a.id, b.id) << what << " sub=" << i;
    ASSERT_EQ(a.source_trajectory, b.source_trajectory) << what << " " << i;
    ASSERT_EQ(a.object_id, b.object_id) << what << " " << i;
    ASSERT_EQ(a.first_sample_index, b.first_sample_index) << what << " " << i;
    ASSERT_EQ(a.mean_voting, b.mean_voting) << what << " " << i;
    ASSERT_EQ(a.points.size(), b.points.size()) << what << " " << i;
    for (size_t s = 0; s < a.points.size(); ++s) {
      ASSERT_EQ(a.points[s].x, b.points[s].x) << what << " " << i;
      ASSERT_EQ(a.points[s].y, b.points[s].y) << what << " " << i;
      ASSERT_EQ(a.points[s].t, b.points[s].t) << what << " " << i;
    }
  }

  // Sampling and clustering output.
  ASSERT_EQ(base.representatives, run.representatives) << what;
  ASSERT_EQ(base.clustering.clusters.size(), run.clustering.clusters.size())
      << what;
  for (size_t c = 0; c < base.clustering.clusters.size(); ++c) {
    ASSERT_EQ(base.clustering.clusters[c].representative,
              run.clustering.clusters[c].representative)
        << what << " cluster=" << c;
    ASSERT_EQ(base.clustering.clusters[c].members,
              run.clustering.clusters[c].members)
        << what << " cluster=" << c;
  }
  ASSERT_EQ(base.clustering.outliers, run.clustering.outliers) << what;
}

TEST(DeterminismTest, S2TIsBitIdenticalAcrossThreadCounts) {
  for (auto& sc : MakeScenarios()) {
    SCOPED_TRACE(sc.name);
    ASSERT_GT(sc.store.NumSegments(), 0u);
    for (const SigmaEps& se : sc.settings) {
      const S2TClustering s2t(MakeParams(se, /*use_index=*/true));
      exec::ExecContext one(1);
      auto base = s2t.Run(sc.store, &one);
      ASSERT_TRUE(base.ok()) << base.status().ToString();
      ASSERT_FALSE(base->sub_trajectories.empty());
      for (size_t threads : {2u, 4u, 8u}) {
        exec::ExecContext ctx(threads);
        auto run = s2t.Run(sc.store, &ctx);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        ExpectBitIdentical(*base, *run,
                           sc.name + " sigma=" + std::to_string(se.sigma) +
                               " threads=" + std::to_string(threads));
        // The two newly parallel phases really did run through the exec
        // engine: the probe fanned out over per-chunk handles and both
        // segmentation passes recorded their wall times.
        EXPECT_GT(ctx.stats().Counter("voting_probe_handles"), 0);
        EXPECT_GT(ctx.stats().Counter("exec_fanouts"), 0);
        const auto phases = ctx.stats().PhaseTimings();
        EXPECT_EQ(phases.count("segmentation_dp"), 1u);
        EXPECT_EQ(phases.count("segmentation_materialize"), 1u);
        EXPECT_EQ(phases.count("voting_probe"), 1u);
        EXPECT_EQ(phases.count("voting_kernel"), 1u);
        EXPECT_LE(run->timings.voting_probe_us + run->timings.voting_kernel_us,
                  run->timings.voting_us + 1000);
      }
    }
  }
}

TEST(DeterminismTest, NaiveEngineIsBitIdenticalAcrossThreadCounts) {
  // The no-index path (naive voting sweep) must hold the same guarantee.
  auto scenarios = MakeScenarios();
  auto& sc = scenarios.front();
  const S2TClustering s2t(MakeParams(sc.settings.front(), false));
  exec::ExecContext one(1);
  auto base = s2t.Run(sc.store, &one);
  ASSERT_TRUE(base.ok());
  for (size_t threads : {2u, 8u}) {
    exec::ExecContext ctx(threads);
    auto run = s2t.Run(sc.store, &ctx);
    ASSERT_TRUE(run.ok());
    ExpectBitIdentical(*base, *run,
                       "naive threads=" + std::to_string(threads));
  }
}

TEST(DeterminismTest, RepeatedRunsAreBitIdentical) {
  // Same context, same store, run twice: nothing in the pipeline may
  // depend on pool warm-up, allocator state, or accumulated stats.
  auto scenarios = MakeScenarios();
  auto& sc = scenarios.back();
  const S2TClustering s2t(MakeParams(sc.settings.front(), true));
  exec::ExecContext ctx(4);
  auto first = s2t.Run(sc.store, &ctx);
  auto second = s2t.Run(sc.store, &ctx);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectBitIdentical(*first, *second, "repeat");
}

}  // namespace
}  // namespace hermes::core
