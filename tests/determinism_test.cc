// Cross-thread determinism harness for the full S2T pipeline: datagen-
// seeded MODs from all three synthetic movement domains, several
// sigma/epsilon settings each, run at 1/2/4/8 threads. Every run must be
// *bit-identical* to the 1-thread run — voting signals, sub-trajectory
// ids/boundaries, representatives, and cluster memberships — because
// every parallel phase (arena build, STR sorts, voting probe + kernel,
// NaTS DP + materialization) is deterministic by construction, not by
// tolerance.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/qut_clustering.h"
#include "core/retratree.h"
#include "core/s2t_clustering.h"
#include "datagen/aircraft.h"
#include "datagen/maritime.h"
#include "datagen/urban.h"
#include "exec/exec_context.h"
#include "storage/env.h"

namespace hermes::core {
namespace {

struct SigmaEps {
  double sigma;
  double epsilon;
};

struct Scenario {
  std::string name;
  traj::TrajectoryStore store;
  std::vector<SigmaEps> settings;
};

std::vector<Scenario> MakeScenarios() {
  std::vector<Scenario> scenarios;
  {
    datagen::AircraftScenarioParams p =
        datagen::AircraftScenarioParams::Default();
    p.num_flights = 16;
    p.sample_dt = 40.0;
    p.seed = 12;
    auto s = datagen::GenerateAircraftScenario(p);
    scenarios.push_back({"aircraft", std::move(s->store),
                         {{1500.0, 3000.0}, {800.0, 1600.0}}});
  }
  {
    datagen::MaritimeScenarioParams p;
    p.num_ships = 14;
    p.sample_dt = 300.0;
    p.seed = 13;
    auto s = datagen::GenerateMaritimeScenario(p);
    scenarios.push_back({"maritime", std::move(s->store),
                         {{800.0, 1600.0}, {400.0, 900.0}}});
  }
  {
    datagen::UrbanScenarioParams p;
    p.num_vehicles = 16;
    p.sample_dt = 20.0;
    p.seed = 14;
    auto s = datagen::GenerateUrbanScenario(p);
    scenarios.push_back(
        {"urban", std::move(s->store), {{120.0, 240.0}, {60.0, 150.0}}});
  }
  return scenarios;
}

S2TParams MakeParams(const SigmaEps& se, bool use_index) {
  S2TParams p;
  p.SetSigma(se.sigma).SetEpsilon(se.epsilon);
  p.use_index = use_index;
  p.segmentation.min_part_length = 3;
  p.voting.min_overlap_ratio = 0.3;
  p.sampling.min_overlap_ratio = 0.3;
  p.clustering.min_overlap_ratio = 0.3;
  return p;
}

/// Bitwise equality of two full pipeline results. EXPECT_EQ on doubles is
/// exact comparison — the point of the harness.
void ExpectBitIdentical(const S2TResult& base, const S2TResult& run,
                        const std::string& what) {
  // Voting signals.
  ASSERT_EQ(base.voting.votes.size(), run.voting.votes.size()) << what;
  for (size_t tid = 0; tid < base.voting.votes.size(); ++tid) {
    ASSERT_EQ(base.voting.votes[tid].size(), run.voting.votes[tid].size())
        << what << " tid=" << tid;
    for (size_t i = 0; i < base.voting.votes[tid].size(); ++i) {
      ASSERT_EQ(base.voting.votes[tid][i], run.voting.votes[tid][i])
          << what << " tid=" << tid << " seg=" << i;
    }
  }
  ASSERT_EQ(base.voting.pairs_evaluated, run.voting.pairs_evaluated) << what;

  // Sub-trajectory ids, provenance, boundaries, and geometry.
  ASSERT_EQ(base.sub_trajectories.size(), run.sub_trajectories.size())
      << what;
  for (size_t i = 0; i < base.sub_trajectories.size(); ++i) {
    const traj::SubTrajectory& a = base.sub_trajectories[i];
    const traj::SubTrajectory& b = run.sub_trajectories[i];
    ASSERT_EQ(a.id, b.id) << what << " sub=" << i;
    ASSERT_EQ(a.source_trajectory, b.source_trajectory) << what << " " << i;
    ASSERT_EQ(a.object_id, b.object_id) << what << " " << i;
    ASSERT_EQ(a.first_sample_index, b.first_sample_index) << what << " " << i;
    ASSERT_EQ(a.mean_voting, b.mean_voting) << what << " " << i;
    ASSERT_EQ(a.points.size(), b.points.size()) << what << " " << i;
    for (size_t s = 0; s < a.points.size(); ++s) {
      ASSERT_EQ(a.points[s].x, b.points[s].x) << what << " " << i;
      ASSERT_EQ(a.points[s].y, b.points[s].y) << what << " " << i;
      ASSERT_EQ(a.points[s].t, b.points[s].t) << what << " " << i;
    }
  }

  // Sampling and clustering output.
  ASSERT_EQ(base.representatives, run.representatives) << what;
  ASSERT_EQ(base.clustering.clusters.size(), run.clustering.clusters.size())
      << what;
  for (size_t c = 0; c < base.clustering.clusters.size(); ++c) {
    ASSERT_EQ(base.clustering.clusters[c].representative,
              run.clustering.clusters[c].representative)
        << what << " cluster=" << c;
    ASSERT_EQ(base.clustering.clusters[c].members,
              run.clustering.clusters[c].members)
        << what << " cluster=" << c;
  }
  ASSERT_EQ(base.clustering.outliers, run.clustering.outliers) << what;
}

TEST(DeterminismTest, S2TIsBitIdenticalAcrossThreadCounts) {
  for (auto& sc : MakeScenarios()) {
    SCOPED_TRACE(sc.name);
    ASSERT_GT(sc.store.NumSegments(), 0u);
    for (const SigmaEps& se : sc.settings) {
      const S2TClustering s2t(MakeParams(se, /*use_index=*/true));
      exec::ExecContext one(1);
      auto base = s2t.Run(sc.store, &one);
      ASSERT_TRUE(base.ok()) << base.status().ToString();
      ASSERT_FALSE(base->sub_trajectories.empty());
      for (size_t threads : {2u, 4u, 8u}) {
        exec::ExecContext ctx(threads);
        auto run = s2t.Run(sc.store, &ctx);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        ExpectBitIdentical(*base, *run,
                           sc.name + " sigma=" + std::to_string(se.sigma) +
                               " threads=" + std::to_string(threads));
        // The two newly parallel phases really did run through the exec
        // engine: the probe fanned out over per-chunk handles and both
        // segmentation passes recorded their wall times.
        EXPECT_GT(ctx.stats().Counter("voting_probe_handles"), 0);
        EXPECT_GT(ctx.stats().Counter("exec_fanouts"), 0);
        const auto phases = ctx.stats().PhaseTimings();
        EXPECT_EQ(phases.count("segmentation_dp"), 1u);
        EXPECT_EQ(phases.count("segmentation_materialize"), 1u);
        EXPECT_EQ(phases.count("voting_probe"), 1u);
        EXPECT_EQ(phases.count("voting_kernel"), 1u);
        EXPECT_LE(run->timings.voting_probe_us + run->timings.voting_kernel_us,
                  run->timings.voting_us + 1000);
      }
    }
  }
}

TEST(DeterminismTest, NaiveEngineIsBitIdenticalAcrossThreadCounts) {
  // The no-index path (naive voting sweep) must hold the same guarantee.
  auto scenarios = MakeScenarios();
  auto& sc = scenarios.front();
  const S2TClustering s2t(MakeParams(sc.settings.front(), false));
  exec::ExecContext one(1);
  auto base = s2t.Run(sc.store, &one);
  ASSERT_TRUE(base.ok());
  for (size_t threads : {2u, 8u}) {
    exec::ExecContext ctx(threads);
    auto run = s2t.Run(sc.store, &ctx);
    ASSERT_TRUE(run.ok());
    ExpectBitIdentical(*base, *run,
                       "naive threads=" + std::to_string(threads));
  }
}

// ---------------------------------------------------------------------------
// Batch-ingest parity: ReTraTree::InsertBatch at any thread count must
// produce the exact catalog of the sequential per-trajectory Insert loop —
// sub-trajectory ids, representatives, members, outliers, and counters.
// ---------------------------------------------------------------------------

core::ReTraTreeParams IngestParams(const traj::TrajectoryStore& store,
                                   const SigmaEps& se) {
  const auto [t0, t1] = store.TimeDomain();
  core::ReTraTreeParams p;
  p.tau = (t1 - t0) / 2;
  p.delta = p.tau / 4;
  p.t_align = p.delta;
  p.d_assign = se.epsilon;
  p.gamma = 6;  // Small enough that re-clustering fires inside the batch.
  p.origin = t0;
  p.s2t.SetSigma(se.sigma).SetEpsilon(se.epsilon);
  p.s2t.segmentation.min_part_length = 3;
  p.s2t.voting.min_overlap_ratio = 0.3;
  p.s2t.sampling.min_overlap_ratio = 0.3;
  p.s2t.clustering.min_overlap_ratio = 0.3;
  return p;
}

void ExpectSubTrajectoryBitIdentical(const traj::SubTrajectory& a,
                                     const traj::SubTrajectory& b,
                                     const std::string& what) {
  ASSERT_EQ(a.id, b.id) << what;
  ASSERT_EQ(a.source_trajectory, b.source_trajectory) << what;
  ASSERT_EQ(a.object_id, b.object_id) << what;
  ASSERT_EQ(a.first_sample_index, b.first_sample_index) << what;
  ASSERT_EQ(a.mean_voting, b.mean_voting) << what;
  ASSERT_EQ(a.points.size(), b.points.size()) << what;
  for (size_t s = 0; s < a.points.size(); ++s) {
    ASSERT_EQ(a.points[s].x, b.points[s].x) << what << " sample=" << s;
    ASSERT_EQ(a.points[s].y, b.points[s].y) << what << " sample=" << s;
    ASSERT_EQ(a.points[s].t, b.points[s].t) << what << " sample=" << s;
  }
}

/// Full catalog comparison: L1/L2 structure, L3 representatives (with
/// their persisted member lists), outlier buffers, and the
/// order-independent maintenance counters. Timing fields are wall clocks
/// and deliberately excluded.
void ExpectTreesBitIdentical(const core::ReTraTree& base,
                             const core::ReTraTree& run,
                             const std::string& what) {
  const core::ReTraTreeStats& bs = base.stats();
  const core::ReTraTreeStats& rs = run.stats();
  ASSERT_EQ(bs.pieces_inserted, rs.pieces_inserted) << what;
  ASSERT_EQ(bs.assigned_to_existing, rs.assigned_to_existing) << what;
  ASSERT_EQ(bs.sent_to_outliers, rs.sent_to_outliers) << what;
  ASSERT_EQ(bs.s2t_runs, rs.s2t_runs) << what;
  ASSERT_EQ(bs.representatives_created, rs.representatives_created) << what;
  ASSERT_EQ(bs.reinserted_after_s2t, rs.reinserted_after_s2t) << what;
  ASSERT_EQ(bs.records_written, rs.records_written) << what;

  ASSERT_EQ(base.chunks().size(), run.chunks().size()) << what;
  auto bc = base.chunks().begin();
  auto rc = run.chunks().begin();
  for (; bc != base.chunks().end(); ++bc, ++rc) {
    ASSERT_EQ(bc->first, rc->first) << what;
    ASSERT_EQ(bc->second.sub_chunks.size(), rc->second.sub_chunks.size())
        << what << " chunk=" << bc->first;
    auto bsc = bc->second.sub_chunks.begin();
    auto rsc = rc->second.sub_chunks.begin();
    for (; bsc != bc->second.sub_chunks.end(); ++bsc, ++rsc) {
      const std::string at =
          what + " sub-chunk=" + std::to_string(bsc->first);
      ASSERT_EQ(bsc->first, rsc->first) << what;
      const core::SubChunk& a = bsc->second;
      const core::SubChunk& b = rsc->second;
      ASSERT_EQ(a.outlier_partition, b.outlier_partition) << at;
      ASSERT_EQ(a.outlier_count, b.outlier_count) << at;
      ASSERT_EQ(a.recluster_watermark, b.recluster_watermark) << at;
      ASSERT_EQ(a.derived_seq, b.derived_seq) << at;
      ASSERT_EQ(a.rep_seq, b.rep_seq) << at;

      auto a_outliers = base.ReadOutliers(a);
      auto b_outliers = run.ReadOutliers(b);
      ASSERT_TRUE(a_outliers.ok()) << at;
      ASSERT_TRUE(b_outliers.ok()) << at;
      ASSERT_EQ(a_outliers->size(), b_outliers->size()) << at;
      for (size_t i = 0; i < a_outliers->size(); ++i) {
        ExpectSubTrajectoryBitIdentical((*a_outliers)[i], (*b_outliers)[i],
                                        at + " outlier=" + std::to_string(i));
      }

      ASSERT_EQ(a.representatives.size(), b.representatives.size()) << at;
      for (size_t ri = 0; ri < a.representatives.size(); ++ri) {
        const core::RepresentativeEntry& ae = *a.representatives[ri];
        const core::RepresentativeEntry& be = *b.representatives[ri];
        const std::string rat = at + " rep=" + std::to_string(ri);
        ASSERT_EQ(ae.partition_name, be.partition_name) << rat;
        ASSERT_EQ(ae.member_count, be.member_count) << rat;
        ExpectSubTrajectoryBitIdentical(ae.representative, be.representative,
                                        rat);
        auto a_members = base.ReadMembers(ae);
        auto b_members = run.ReadMembers(be);
        ASSERT_TRUE(a_members.ok()) << rat;
        ASSERT_TRUE(b_members.ok()) << rat;
        ASSERT_EQ(a_members->size(), b_members->size()) << rat;
        for (size_t i = 0; i < a_members->size(); ++i) {
          ExpectSubTrajectoryBitIdentical(
              (*a_members)[i], (*b_members)[i],
              rat + " member=" + std::to_string(i));
        }
      }
    }
  }
}

TEST(DeterminismTest, BatchIngestMatchesSequentialAcrossThreadCounts) {
  for (auto& sc : MakeScenarios()) {
    SCOPED_TRACE(sc.name);
    const SigmaEps& se = sc.settings.front();
    const core::ReTraTreeParams params = IngestParams(sc.store, se);

    // Baseline: the sequential per-trajectory Insert loop.
    auto base_env = storage::Env::NewMemEnv();
    auto base = std::move(core::ReTraTree::Open(base_env.get(), "base",
                                                params))
                    .value();
    for (traj::TrajectoryId tid = 0; tid < sc.store.NumTrajectories();
         ++tid) {
      ASSERT_TRUE(base->Insert(sc.store.Get(tid), tid).ok());
    }
    ASSERT_GT(base->stats().pieces_inserted, 0u);
    ASSERT_GE(base->stats().s2t_runs, 1u)
        << "gamma never fired; the parity test would not exercise "
           "re-clustering";
    ASSERT_TRUE(base->Validate().ok());

    for (size_t threads : {1u, 2u, 4u, 8u}) {
      exec::ExecContext ctx(threads);
      auto env = storage::Env::NewMemEnv();
      auto tree = std::move(core::ReTraTree::Open(env.get(), "batch",
                                                  params))
                      .value();
      ASSERT_TRUE(tree->InsertStore(sc.store, &ctx).ok());
      ASSERT_TRUE(tree->Validate().ok());
      ExpectTreesBitIdentical(
          *base, *tree,
          sc.name + " threads=" + std::to_string(threads));
      // The batch really went through the two-phase pipeline.
      const auto phases = ctx.stats().PhaseTimings();
      EXPECT_EQ(phases.count("ingest_split"), 1u);
      EXPECT_EQ(phases.count("ingest_apply"), 1u);
      if (threads > 1) {
        EXPECT_GT(ctx.stats().Counter("exec_fanouts"), 0);
      }
      EXPECT_GE(tree->stats().ingest_split_us, 0);
      EXPECT_GE(tree->stats().ingest_apply_us, 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrent ingest + query at the traj layer: readers snapshotting the
// store mid-ingest must see a clean id-order prefix, and S2T over that
// snapshot must be bit-identical to a quiesced run over the same prefix.
// This is the storage-level half of the service-layer guarantee
// (tests/service_test.cc holds the SQL-level half); the TSan CI leg runs
// both.
// ---------------------------------------------------------------------------

TEST(DeterminismTest, SnapshotReadersDuringIngestMatchQuiescedPrefixes) {
  auto scenarios = MakeScenarios();
  auto& sc = scenarios[1];  // maritime
  const size_t total = sc.store.NumTrajectories();
  const size_t initial = total / 2;
  const S2TClustering s2t(MakeParams(sc.settings.front(), true));

  // Quiesced baselines for every prefix a snapshot could land on.
  std::vector<traj::TrajectoryStore> prefix_stores;
  std::vector<S2TResult> baselines;
  for (size_t k = initial; k <= total; ++k) {
    traj::TrajectoryStore prefix;
    for (traj::TrajectoryId tid = 0; tid < k; ++tid) {
      ASSERT_TRUE(prefix.Add(sc.store.Get(tid)).ok());
    }
    exec::ExecContext one(1);
    auto base = s2t.Run(prefix, &one);
    ASSERT_TRUE(base.ok());
    baselines.push_back(std::move(*base));
    prefix_stores.push_back(std::move(prefix));
  }

  // Single writer appends the back half while readers keep snapshotting
  // and clustering. Every reader result must equal the quiesced baseline
  // of exactly its snapshot's trajectory count.
  traj::TrajectoryStore live;
  for (traj::TrajectoryId tid = 0; tid < initial; ++tid) {
    ASSERT_TRUE(live.Add(sc.store.Get(tid)).ok());
  }
  constexpr int kReaders = 3;
  constexpr int kRunsPerReader = 3;
  std::vector<std::vector<std::pair<size_t, S2TResult>>> results(kReaders);
  std::vector<std::string> failures(kReaders);
  std::vector<std::thread> readers;
  for (int rix = 0; rix < kReaders; ++rix) {
    readers.emplace_back([&, rix] {
      exec::ExecContext ctx(2);
      for (int run = 0; run < kRunsPerReader; ++run) {
        const traj::TrajectoryStore snap = live.Snapshot();
        auto result = s2t.Run(snap, &ctx);
        if (!result.ok()) {
          failures[rix] = result.status().ToString();
          return;
        }
        results[rix].emplace_back(snap.NumTrajectories(),
                                  std::move(*result));
      }
    });
  }
  for (traj::TrajectoryId tid = initial; tid < total; ++tid) {
    ASSERT_TRUE(live.Add(sc.store.Get(tid)).ok());
  }
  for (auto& t : readers) t.join();

  for (int rix = 0; rix < kReaders; ++rix) {
    ASSERT_EQ(failures[rix], "") << "reader " << rix;
    for (auto& [k, result] : results[rix]) {
      ASSERT_GE(k, initial);
      ASSERT_LE(k, total);
      ExpectBitIdentical(baselines[k - initial], result,
                         "snapshot reader " + std::to_string(rix) +
                             " prefix=" + std::to_string(k));
    }
  }
  // The snapshots released their epochs; the builder lineage reports no
  // stale pins once readers are done.
  EXPECT_EQ(live.arena_counters().epochs_pinned, 0u);
}

// ---------------------------------------------------------------------------
// Hot/cold tier parity: a QUT answer served from the in-memory
// MemRTree3D snapshots (hot tier) must be bit-identical to the
// heap-file + Gist cold path — on every scenario, at every build thread
// count, and both while the tier is promoting and once it is warm.
// ---------------------------------------------------------------------------

void ExpectQutBitIdentical(const core::QuTResult& a, const core::QuTResult& b,
                           const std::string& what) {
  ASSERT_EQ(a.clusters.size(), b.clusters.size()) << what;
  for (size_t c = 0; c < a.clusters.size(); ++c) {
    const std::string at = what + " cluster=" + std::to_string(c);
    ASSERT_EQ(a.clusters[c].representatives.size(),
              b.clusters[c].representatives.size())
        << at;
    for (size_t r = 0; r < a.clusters[c].representatives.size(); ++r) {
      ExpectSubTrajectoryBitIdentical(a.clusters[c].representatives[r],
                                      b.clusters[c].representatives[r],
                                      at + " rep=" + std::to_string(r));
    }
    ASSERT_EQ(a.clusters[c].members.size(), b.clusters[c].members.size())
        << at;
    for (size_t m = 0; m < a.clusters[c].members.size(); ++m) {
      ExpectSubTrajectoryBitIdentical(a.clusters[c].members[m],
                                      b.clusters[c].members[m],
                                      at + " member=" + std::to_string(m));
    }
  }
  ASSERT_EQ(a.outliers.size(), b.outliers.size()) << what;
  for (size_t o = 0; o < a.outliers.size(); ++o) {
    ExpectSubTrajectoryBitIdentical(a.outliers[o], b.outliers[o],
                                    what + " outlier=" + std::to_string(o));
  }
}

TEST(DeterminismTest, HotTierQutMatchesColdAcrossThreadCounts) {
  for (auto& sc : MakeScenarios()) {
    SCOPED_TRACE(sc.name);
    const SigmaEps& se = sc.settings.front();
    const core::ReTraTreeParams params = IngestParams(sc.store, se);
    // A window strictly inside the time domain, so boundary sub-chunks
    // exercise the trimmed `ReadMembersInWindow` path on both tiers.
    const auto [t0, t1] = sc.store.TimeDomain();
    const double wi = t0 + (t1 - t0) * 0.2;
    const double we = t0 + (t1 - t0) * 0.8;
    std::unique_ptr<core::QuTResult> baseline;  // 1-thread cold answer.
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      exec::ExecContext ctx(threads);
      auto env = storage::Env::NewMemEnv();
      auto tree =
          std::move(core::ReTraTree::Open(env.get(), "tier", params)).value();
      ASSERT_TRUE(tree->InsertStore(sc.store, &ctx).ok());
      core::QuTClustering qut(tree.get());
      const std::string at = sc.name + " threads=" + std::to_string(threads);

      tree->SetHotIndexBudget(0);  // Cold tier only.
      auto cold = qut.Query(wi, we);
      ASSERT_TRUE(cold.ok()) << at;
      EXPECT_EQ(tree->hot_stats().qut_hot_probes, 0u) << at;

      tree->SetHotIndexBudget(core::kDefaultHotIndexBudget);
      auto promote = qut.Query(wi, we);  // Promotes while it reads.
      ASSERT_TRUE(promote.ok()) << at;
      auto hot = qut.Query(wi, we);  // Served from the warm hot tier.
      ASSERT_TRUE(hot.ok()) << at;
      EXPECT_GT(tree->hot_stats().qut_hot_probes, 0u) << at;
      EXPECT_GT(tree->hot_stats().hot_promotions, 0u) << at;

      ExpectQutBitIdentical(*cold, *promote, at + " promote-pass");
      ExpectQutBitIdentical(*cold, *hot, at + " hot-pass");
      if (baseline == nullptr) {
        baseline = std::make_unique<core::QuTResult>(std::move(*cold));
      } else {
        ExpectQutBitIdentical(*baseline, *hot, at + " vs 1-thread");
      }
    }
  }
}

TEST(DeterminismTest, RepeatedRunsAreBitIdentical) {
  // Same context, same store, run twice: nothing in the pipeline may
  // depend on pool warm-up, allocator state, or accumulated stats.
  auto scenarios = MakeScenarios();
  auto& sc = scenarios.back();
  const S2TClustering s2t(MakeParams(sc.settings.front(), true));
  exec::ExecContext ctx(4);
  auto first = s2t.Run(sc.store, &ctx);
  auto second = s2t.Run(sc.store, &ctx);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectBitIdentical(*first, *second, "repeat");
}

}  // namespace
}  // namespace hermes::core
