#ifndef HERMES_GEOM_MBB_H_
#define HERMES_GEOM_MBB_H_

#include <limits>
#include <string>

#include "geom/point.h"

namespace hermes::geom {

/// \brief 3D minimum bounding box over (x, y, t) — the key type of the
/// pg3D-Rtree operator class.
///
/// An empty box (default-constructed) has inverted bounds and behaves as the
/// identity for `Extend`.
struct Mbb3D {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double min_t = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
  double max_t = -std::numeric_limits<double>::infinity();

  Mbb3D() = default;
  Mbb3D(double x0, double y0, double t0, double x1, double y1, double t1)
      : min_x(x0), min_y(y0), min_t(t0), max_x(x1), max_y(y1), max_t(t1) {}

  /// Box covering a single spatio-temporal sample.
  static Mbb3D FromPoint(const Point3D& p) {
    return Mbb3D(p.x, p.y, p.t, p.x, p.y, p.t);
  }

  /// Box covering two samples (a 3D line segment's MBB).
  static Mbb3D FromSegment(const Point3D& a, const Point3D& b);

  bool empty() const { return min_x > max_x || min_y > max_y || min_t > max_t; }

  /// Grows this box to cover `o`.
  void Extend(const Mbb3D& o);
  /// Grows this box to cover sample `p`.
  void ExtendPoint(const Point3D& p);

  /// True when the closed boxes share at least one point.
  bool Intersects(const Mbb3D& o) const;
  /// True when `o` lies fully inside this box.
  bool Contains(const Mbb3D& o) const;
  /// True when sample `p` lies inside this box.
  bool ContainsPoint(const Point3D& p) const;

  /// Volume in x*y*t units; 0 for empty or degenerate boxes.
  double Volume() const;
  /// Sum of side lengths (the R*-tree margin surrogate).
  double Margin() const;
  /// Volume of the intersection with `o` (0 when disjoint).
  double IntersectionVolume(const Mbb3D& o) const;
  /// Volume of the smallest box covering both.
  double UnionVolume(const Mbb3D& o) const;

  /// Returns a copy expanded by `dxy` in both spatial axes and `dt` in time.
  Mbb3D Expanded(double dxy, double dt) const;

  /// Center point of the box (undefined for empty boxes).
  Point3D Center() const;

  bool operator==(const Mbb3D& o) const;

  std::string ToString() const;
};

/// The smallest box covering both arguments.
Mbb3D Union(const Mbb3D& a, const Mbb3D& b);

}  // namespace hermes::geom

#endif  // HERMES_GEOM_MBB_H_
