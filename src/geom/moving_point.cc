#include "geom/moving_point.h"

#include <algorithm>
#include <cmath>

#include "common/mathutil.h"

namespace hermes::geom {

double SeparationAt(const Segment3D& u, const Segment3D& v, double t) {
  return Distance(u.At(t), v.At(t));
}

MovingDistance DistanceBetweenMoving(const Segment3D& u, const Segment3D& v) {
  MovingDistance out;
  const double t0 = std::max(u.a.t, v.a.t);
  const double t1 = std::min(u.b.t, v.b.t);
  if (t0 > t1) {
    // Disjoint lifespans: no co-existence.
    out.overlap = 0.0;
    out.min_dist = out.max_dist = out.avg_dist =
        std::numeric_limits<double>::infinity();
    return out;
  }

  out.overlap = t1 - t0;
  if (t1 - t0 <= 0.0) {
    const double d = SeparationAt(u, v, t0);
    out.min_dist = out.max_dist = out.avg_dist = d;
    out.t_min = t0;
    return out;
  }

  // Relative motion: p(t) = p0 + w * (t - t0) where w is the relative
  // velocity; |p(t)|^2 = a s^2 + b s + c with s = t - t0.
  const Point2D pu0 = u.At(t0);
  const Point2D pv0 = v.At(t0);
  const double du = u.duration();
  const double dv = v.duration();
  const Point2D vel_u =
      du > 0.0 ? (u.b.xy() - u.a.xy()) * (1.0 / du) : Point2D{0.0, 0.0};
  const Point2D vel_v =
      dv > 0.0 ? (v.b.xy() - v.a.xy()) * (1.0 / dv) : Point2D{0.0, 0.0};
  const Point2D p0 = pu0 - pv0;
  const Point2D w = vel_u - vel_v;

  const double a = Dot(w, w);
  const double b = 2.0 * Dot(p0, w);
  const double c = Dot(p0, p0);
  const double span = t1 - t0;

  auto dist_at = [&](double s) {
    const double q = std::max(0.0, a * s * s + b * s + c);
    return std::sqrt(q);
  };

  // Minimum of the quadratic (clamped to [0, span]).
  double s_min = 0.0;
  if (a > 0.0) s_min = Clamp(-b / (2.0 * a), 0.0, span);
  const double d_start = dist_at(0.0);
  const double d_end = dist_at(span);
  const double d_mid = dist_at(s_min);
  out.min_dist = std::min({d_start, d_end, d_mid});
  out.max_dist = std::max(d_start, d_end);
  out.t_min = t0 + (d_mid <= std::min(d_start, d_end)
                        ? s_min
                        : (d_start <= d_end ? 0.0 : span));

  // Time-averaged separation via Simpson over the overlap. The integrand
  // sqrt(quadratic) is smooth except for a kink where the separation
  // approaches zero, so integrate the two sides of the minimum separately.
  double integral = 0.0;
  auto f = [&](double s) { return dist_at(s); };
  if (s_min > 0.0 && s_min < span) {
    integral = SimpsonIntegrate(f, 0.0, s_min, 16) +
               SimpsonIntegrate(f, s_min, span, 16);
  } else {
    integral = SimpsonIntegrate(f, 0.0, span, 16);
  }
  out.avg_dist = integral / span;
  return out;
}

}  // namespace hermes::geom
