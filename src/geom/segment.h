#ifndef HERMES_GEOM_SEGMENT_H_
#define HERMES_GEOM_SEGMENT_H_

#include "geom/mbb.h"
#include "geom/point.h"

namespace hermes::geom {

/// \brief A 3D trajectory segment: the straight movement between two
/// consecutive samples of one object. Requires a.t <= b.t.
struct Segment3D {
  Point3D a;
  Point3D b;

  Segment3D() = default;
  Segment3D(const Point3D& pa, const Point3D& pb) : a(pa), b(pb) {}

  double duration() const { return b.t - a.t; }
  double SpatialLength() const { return SpatialDistance(a, b); }

  /// Position of the moving point at time `t` (clamped to the lifespan).
  Point2D At(double t) const { return InterpolateAt(a, b, t); }

  Mbb3D Bounds() const { return Mbb3D::FromSegment(a, b); }
};

/// \brief Static 2D segment geometry used by the TRACLUS baseline.
struct Segment2D {
  Point2D a;
  Point2D b;

  Segment2D() = default;
  Segment2D(const Point2D& pa, const Point2D& pb) : a(pa), b(pb) {}

  double Length() const { return Distance(a, b); }
};

/// Distance from point `p` to the (closed) 2D segment `s`.
double PointSegmentDistance(const Point2D& p, const Segment2D& s);

/// Projection parameter u in [0,1] of `p` onto the line of `s`, clamped.
double ProjectOntoSegment(const Point2D& p, const Segment2D& s);

/// \brief The three TRACLUS distance components between 2D segments
/// (Lee et al., SIGMOD 2007, Section 3.2). `longer` should be the longer
/// segment; the helper `TraclusDistance` handles ordering.
struct TraclusComponents {
  double perpendicular = 0.0;
  double parallel = 0.0;
  double angular = 0.0;
};

TraclusComponents TraclusComponentsOf(const Segment2D& longer,
                                      const Segment2D& shorter);

/// Weighted TRACLUS distance w_perp*d_perp + w_par*d_par + w_ang*d_ang,
/// ordering the segments internally so the longer one defines the frame.
double TraclusDistance(const Segment2D& s1, const Segment2D& s2,
                       double w_perp = 1.0, double w_par = 1.0,
                       double w_ang = 1.0);

}  // namespace hermes::geom

#endif  // HERMES_GEOM_SEGMENT_H_
