#include "geom/mbb.h"

#include <algorithm>
#include <cstdio>

namespace hermes::geom {

Mbb3D Mbb3D::FromSegment(const Point3D& a, const Point3D& b) {
  Mbb3D box = FromPoint(a);
  box.ExtendPoint(b);
  return box;
}

void Mbb3D::Extend(const Mbb3D& o) {
  if (o.empty()) return;
  min_x = std::min(min_x, o.min_x);
  min_y = std::min(min_y, o.min_y);
  min_t = std::min(min_t, o.min_t);
  max_x = std::max(max_x, o.max_x);
  max_y = std::max(max_y, o.max_y);
  max_t = std::max(max_t, o.max_t);
}

void Mbb3D::ExtendPoint(const Point3D& p) { Extend(FromPoint(p)); }

bool Mbb3D::Intersects(const Mbb3D& o) const {
  if (empty() || o.empty()) return false;
  return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
         o.min_y <= max_y && min_t <= o.max_t && o.min_t <= max_t;
}

bool Mbb3D::Contains(const Mbb3D& o) const {
  if (empty() || o.empty()) return false;
  return min_x <= o.min_x && o.max_x <= max_x && min_y <= o.min_y &&
         o.max_y <= max_y && min_t <= o.min_t && o.max_t <= max_t;
}

bool Mbb3D::ContainsPoint(const Point3D& p) const {
  return Contains(FromPoint(p));
}

double Mbb3D::Volume() const {
  if (empty()) return 0.0;
  return (max_x - min_x) * (max_y - min_y) * (max_t - min_t);
}

double Mbb3D::Margin() const {
  if (empty()) return 0.0;
  return (max_x - min_x) + (max_y - min_y) + (max_t - min_t);
}

double Mbb3D::IntersectionVolume(const Mbb3D& o) const {
  if (!Intersects(o)) return 0.0;
  const double dx = std::min(max_x, o.max_x) - std::max(min_x, o.min_x);
  const double dy = std::min(max_y, o.max_y) - std::max(min_y, o.min_y);
  const double dt = std::min(max_t, o.max_t) - std::max(min_t, o.min_t);
  return dx * dy * dt;
}

double Mbb3D::UnionVolume(const Mbb3D& o) const {
  Mbb3D u = *this;
  u.Extend(o);
  return u.Volume();
}

Mbb3D Mbb3D::Expanded(double dxy, double dt) const {
  if (empty()) return *this;
  return Mbb3D(min_x - dxy, min_y - dxy, min_t - dt, max_x + dxy, max_y + dxy,
               max_t + dt);
}

Point3D Mbb3D::Center() const {
  return Point3D((min_x + max_x) / 2, (min_y + max_y) / 2,
                 (min_t + max_t) / 2);
}

bool Mbb3D::operator==(const Mbb3D& o) const {
  if (empty() && o.empty()) return true;
  return min_x == o.min_x && min_y == o.min_y && min_t == o.min_t &&
         max_x == o.max_x && max_y == o.max_y && max_t == o.max_t;
}

std::string Mbb3D::ToString() const {
  if (empty()) return "[empty]";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "[%.3f,%.3f,%.3f | %.3f,%.3f,%.3f]", min_x,
                min_y, min_t, max_x, max_y, max_t);
  return buf;
}

Mbb3D Union(const Mbb3D& a, const Mbb3D& b) {
  Mbb3D u = a;
  u.Extend(b);
  return u;
}

}  // namespace hermes::geom
