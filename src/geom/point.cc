#include "geom/point.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/mathutil.h"

namespace hermes::geom {

std::string Point2D::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.3f, %.3f)", x, y);
  return buf;
}

std::string Point3D::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "(%.3f, %.3f @ %.3f)", x, y, t);
  return buf;
}

double Distance(const Point2D& a, const Point2D& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double SquaredDistance(const Point2D& a, const Point2D& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

double SpatialDistance(const Point3D& a, const Point3D& b) {
  return Distance(a.xy(), b.xy());
}

double Dot(const Point2D& a, const Point2D& b) { return a.x * b.x + a.y * b.y; }

double Cross(const Point2D& a, const Point2D& b) {
  return a.x * b.y - a.y * b.x;
}

double Norm(const Point2D& a) { return std::sqrt(a.x * a.x + a.y * a.y); }

Point2D InterpolateAt(const Point3D& a, const Point3D& b, double t) {
  HERMES_DCHECK(a.t <= b.t) << "InterpolateAt requires a.t <= b.t";
  if (b.t <= a.t) return a.xy();  // Degenerate zero-duration segment.
  const double u = Clamp((t - a.t) / (b.t - a.t), 0.0, 1.0);
  return {a.x + (b.x - a.x) * u, a.y + (b.y - a.y) * u};
}

}  // namespace hermes::geom
