#ifndef HERMES_GEOM_POINT_H_
#define HERMES_GEOM_POINT_H_

#include <string>

namespace hermes::geom {

/// \brief A 2D spatial point (meters in a local projected frame).
struct Point2D {
  double x = 0.0;
  double y = 0.0;

  Point2D() = default;
  Point2D(double px, double py) : x(px), y(py) {}

  Point2D operator+(const Point2D& o) const { return {x + o.x, y + o.y}; }
  Point2D operator-(const Point2D& o) const { return {x - o.x, y - o.y}; }
  Point2D operator*(double s) const { return {x * s, y * s}; }

  bool operator==(const Point2D& o) const { return x == o.x && y == o.y; }

  std::string ToString() const;
};

/// \brief A spatio-temporal sample: 2D position plus timestamp (seconds).
///
/// This is the atom of the Hermes trajectory model: a trajectory is an
/// ordered sequence of `Point3D` with strictly increasing `t`.
struct Point3D {
  double x = 0.0;
  double y = 0.0;
  double t = 0.0;

  Point3D() = default;
  Point3D(double px, double py, double pt) : x(px), y(py), t(pt) {}

  Point2D xy() const { return {x, y}; }

  bool operator==(const Point3D& o) const {
    return x == o.x && y == o.y && t == o.t;
  }

  std::string ToString() const;
};

/// Euclidean distance in the plane.
double Distance(const Point2D& a, const Point2D& b);

/// Squared Euclidean distance in the plane.
double SquaredDistance(const Point2D& a, const Point2D& b);

/// Spatial (x, y only) distance between two spatio-temporal samples.
double SpatialDistance(const Point3D& a, const Point3D& b);

/// Dot product of 2D vectors.
double Dot(const Point2D& a, const Point2D& b);

/// Z-component of the 2D cross product.
double Cross(const Point2D& a, const Point2D& b);

/// Euclidean norm of a 2D vector.
double Norm(const Point2D& a);

/// Linear interpolation between two spatio-temporal samples at time `t`.
/// `t` is clamped to [a.t, b.t]. Requires a.t <= b.t.
Point2D InterpolateAt(const Point3D& a, const Point3D& b, double t);

}  // namespace hermes::geom

#endif  // HERMES_GEOM_POINT_H_
