#ifndef HERMES_GEOM_MOVING_POINT_H_
#define HERMES_GEOM_MOVING_POINT_H_

#include "geom/segment.h"

namespace hermes::geom {

/// \brief Distance analysis between two linearly moving points over a
/// common time interval — the time-aware core of Hermes.
///
/// Two objects moving linearly have a separation whose square is a
/// quadratic polynomial in t; minimum and average separation over an
/// interval therefore have cheap closed/semi-closed forms.
struct MovingDistance {
  double min_dist = 0.0;      ///< Minimum separation over the interval.
  double max_dist = 0.0;      ///< Maximum separation over the interval.
  double avg_dist = 0.0;      ///< Time-averaged separation.
  double t_min = 0.0;         ///< Time at which `min_dist` is attained.
  double overlap = 0.0;       ///< Duration of the analyzed interval.
};

/// \brief Computes the separation statistics between the moving points of
/// `u` and `v` over the intersection of their lifespans.
///
/// Returns `overlap == 0` when the lifespans are disjoint (no co-existence,
/// hence no time-aware relation). Instantaneous overlaps (a single shared
/// time point) report the pointwise distance with `overlap == 0`.
MovingDistance DistanceBetweenMoving(const Segment3D& u, const Segment3D& v);

/// Separation of the two moving points at absolute time `t` (clamped to
/// each segment's lifespan).
double SeparationAt(const Segment3D& u, const Segment3D& v, double t);

}  // namespace hermes::geom

#endif  // HERMES_GEOM_MOVING_POINT_H_
