#include "geom/segment.h"

#include <algorithm>
#include <cmath>

#include "common/mathutil.h"

namespace hermes::geom {

double ProjectOntoSegment(const Point2D& p, const Segment2D& s) {
  const Point2D d = s.b - s.a;
  const double len2 = Dot(d, d);
  if (len2 <= 0.0) return 0.0;
  return Clamp(Dot(p - s.a, d) / len2, 0.0, 1.0);
}

double PointSegmentDistance(const Point2D& p, const Segment2D& s) {
  const double u = ProjectOntoSegment(p, s);
  const Point2D proj = s.a + (s.b - s.a) * u;
  return Distance(p, proj);
}

TraclusComponents TraclusComponentsOf(const Segment2D& longer,
                                      const Segment2D& shorter) {
  TraclusComponents c;
  const Point2D dir = longer.b - longer.a;
  const double len = Norm(dir);
  if (len <= 0.0) {
    // Degenerate: fall back to point distances.
    c.perpendicular = (Distance(longer.a, shorter.a) +
                       Distance(longer.a, shorter.b)) /
                      2.0;
    return c;
  }

  // Perpendicular distances of the shorter segment's endpoints to the
  // longer segment's supporting line.
  auto perp = [&](const Point2D& p) {
    return std::fabs(Cross(dir, p - longer.a)) / len;
  };
  const double l_perp1 = perp(shorter.a);
  const double l_perp2 = perp(shorter.b);
  c.perpendicular = (l_perp1 + l_perp2 <= 0.0)
                        ? 0.0
                        : (l_perp1 * l_perp1 + l_perp2 * l_perp2) /
                              (l_perp1 + l_perp2);

  // Parallel distance: distance from the projection of the shorter
  // segment's endpoints (onto the longer's line) to the nearer endpoint
  // of the longer segment, taking the smaller of the two.
  auto proj_param = [&](const Point2D& p) {
    return Dot(p - longer.a, dir) / (len * len);  // Unclamped.
  };
  const double u1 = proj_param(shorter.a);
  const double u2 = proj_param(shorter.b);
  auto par_dist = [&](double u) {
    // Distance along the line from the projection to the nearest end.
    const double beyond = std::max({-u, u - 1.0, 0.0});
    return beyond * len;
  };
  c.parallel = std::min(par_dist(u1), par_dist(u2));

  // Angular distance: ||shorter|| * sin(theta) for theta in [0, pi/2];
  // for obtuse angles TRACLUS uses ||shorter|| itself.
  const Point2D sdir = shorter.b - shorter.a;
  const double slen = Norm(sdir);
  if (slen <= 0.0) {
    c.angular = 0.0;
  } else {
    const double cos_theta = Clamp(Dot(dir, sdir) / (len * slen), -1.0, 1.0);
    if (cos_theta < 0.0) {
      c.angular = slen;
    } else {
      const double sin_theta = std::sqrt(std::max(0.0, 1.0 - cos_theta * cos_theta));
      c.angular = slen * sin_theta;
    }
  }
  return c;
}

double TraclusDistance(const Segment2D& s1, const Segment2D& s2, double w_perp,
                       double w_par, double w_ang) {
  const bool first_longer = s1.Length() >= s2.Length();
  const Segment2D& longer = first_longer ? s1 : s2;
  const Segment2D& shorter = first_longer ? s2 : s1;
  const TraclusComponents c = TraclusComponentsOf(longer, shorter);
  return w_perp * c.perpendicular + w_par * c.parallel + w_ang * c.angular;
}

}  // namespace hermes::geom
