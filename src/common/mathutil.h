#ifndef HERMES_COMMON_MATHUTIL_H_
#define HERMES_COMMON_MATHUTIL_H_

#include <cstddef>
#include <vector>

namespace hermes {

/// \brief Numeric helpers shared across modules.

/// Clamps `v` to [lo, hi].
double Clamp(double v, double lo, double hi);

/// True when |a-b| <= abs_tol + rel_tol*max(|a|,|b|).
bool AlmostEqual(double a, double b, double abs_tol = 1e-9,
                 double rel_tol = 1e-9);

/// Mean of a non-empty range; 0 for an empty one.
double Mean(const std::vector<double>& xs);

/// Population variance of a range; 0 when size < 2.
double Variance(const std::vector<double>& xs);

/// Sum of squared errors around the mean of xs[first..last] inclusive.
/// Used by the NaTS segmentation dynamic program.
double RangeSse(const std::vector<double>& prefix_sum,
                const std::vector<double>& prefix_sq_sum, size_t first,
                size_t last);

/// Builds prefix sums (size n+1, element 0 is 0) for `xs`.
std::vector<double> PrefixSum(const std::vector<double>& xs);

/// Builds prefix sums of squares (size n+1) for `xs`.
std::vector<double> PrefixSqSum(const std::vector<double>& xs);

/// Composite Simpson integration of `f` over [a, b] with `n` (even,
/// >= 2) subintervals.
template <typename F>
double SimpsonIntegrate(F f, double a, double b, int n) {
  if (n < 2) n = 2;
  if (n % 2 != 0) ++n;
  const double h = (b - a) / n;
  double sum = f(a) + f(b);
  for (int i = 1; i < n; ++i) {
    sum += f(a + i * h) * ((i % 2 == 0) ? 2.0 : 4.0);
  }
  return sum * h / 3.0;
}

/// Gaussian kernel exp(-d^2 / (2 sigma^2)); returns 0 for sigma <= 0
/// unless d == 0 (degenerate kernel = indicator).
double GaussianKernel(double d, double sigma);

}  // namespace hermes

#endif  // HERMES_COMMON_MATHUTIL_H_
