#include "common/status.h"

namespace hermes {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += msg_;
  return s;
}

}  // namespace hermes
