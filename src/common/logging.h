#ifndef HERMES_COMMON_LOGGING_H_
#define HERMES_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace hermes {

/// \brief Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kFatal = 4 };

/// \brief Sets the minimum level that is emitted to stderr. Defaults to
/// `kWarn` so library internals stay quiet in tests and benchmarks.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log message collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Message sink that aborts the process after emitting.
class FatalLogMessage : public LogMessage {
 public:
  FatalLogMessage(const char* file, int line)
      : LogMessage(LogLevel::kFatal, file, line) {}
  [[noreturn]] ~FatalLogMessage() { std::abort(); }

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    LogMessage::operator<<(v);
    return *this;
  }
};

}  // namespace internal

#define HERMES_LOG(level)                                             \
  ::hermes::internal::LogMessage(::hermes::LogLevel::k##level, __FILE__, \
                                 __LINE__)

/// \brief Aborts with a message when `cond` is false. Used for invariants
/// whose violation indicates a bug, not a runtime error.
#define HERMES_CHECK(cond)                                      \
  if (!(cond))                                                  \
  ::hermes::internal::FatalLogMessage(__FILE__, __LINE__)       \
      << "Check failed: " #cond " "

#define HERMES_CHECK_OK(expr)                                   \
  do {                                                          \
    ::hermes::Status _st = (expr);                              \
    HERMES_CHECK(_st.ok()) << _st.ToString();                   \
  } while (0)

#define HERMES_DCHECK(cond) HERMES_CHECK(cond)

}  // namespace hermes

#endif  // HERMES_COMMON_LOGGING_H_
