#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace hermes {

namespace {
// splitmix64, used to expand the 64-bit seed into xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(&x);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBelow(uint64_t n) {
  HERMES_CHECK(n > 0) << "NextBelow(0)";
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; u1 in (0,1] to keep the log finite.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

}  // namespace hermes
