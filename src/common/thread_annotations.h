#ifndef HERMES_COMMON_THREAD_ANNOTATIONS_H_
#define HERMES_COMMON_THREAD_ANNOTATIONS_H_

/// \file
/// Clang thread-safety-analysis capability macros (no-ops elsewhere).
///
/// These wrap the attributes documented at
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html so the locking
/// discipline of every concurrent class in the tree is machine-checked:
/// Clang builds compile with `-Wthread-safety -Werror` (see the
/// `thread-safety` CI leg), and GCC builds see empty macros. Annotate with
/// the capability types from `common/mutex.h` — the raw `std::mutex` of
/// libstdc++ carries no capability attribute, so annotating it directly
/// would itself be a `-Wthread-safety-attributes` error under Clang.
///
/// Vocabulary (all variadic args are capability expressions, typically a
/// mutex member like `mu_` or a member of a parameter like `mod->mu`):
///
///   GUARDED_BY(mu)      field: reads need `mu` held (shared suffices),
///                       writes need it exclusively.
///   PT_GUARDED_BY(mu)   pointer field: same, for the pointee.
///   REQUIRES(mu)        function: caller must hold `mu` exclusively.
///   REQUIRES_SHARED(mu) function: caller must hold `mu` at least shared.
///   ACQUIRE/RELEASE     function acquires/releases `mu` itself (lock
///                       helpers); `_SHARED` variants for reader locks.
///   TRY_ACQUIRE(b, mu)  returns `b` exactly when `mu` was acquired.
///   EXCLUDES(mu)        caller must NOT hold `mu` (non-reentrancy).
///   CAPABILITY(name)    class is a capability (a lock).
///   SCOPED_CAPABILITY   class is an RAII guard (ctor acquires, dtor
///                       releases).
///   ASSERT_CAPABILITY   function asserts `mu` is held (runtime check).
///   RETURN_CAPABILITY   function returns a reference to `mu`.
///   NO_THREAD_SAFETY_ANALYSIS  escape hatch; every use carries a comment
///                       stating the external contract that replaces the
///                       analysis.

#if defined(__clang__) && !defined(SWIG)
#define HERMES_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define HERMES_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

#define CAPABILITY(x) HERMES_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define SCOPED_CAPABILITY HERMES_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define GUARDED_BY(x) HERMES_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define PT_GUARDED_BY(x) HERMES_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(                                        \
      try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  HERMES_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // HERMES_COMMON_THREAD_ANNOTATIONS_H_
