#ifndef HERMES_COMMON_CODING_H_
#define HERMES_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace hermes {

/// \brief Little-endian fixed-width binary encoding helpers (the
/// RocksDB-style coding layer used by the storage and index formats).

inline void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  std::memcpy(buf, &v, 2);
  dst->append(buf, 2);
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline void PutDouble(std::string* dst, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline uint16_t GetFixed16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

inline uint32_t GetFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t GetFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline double GetDouble(const char* p) {
  double v;
  std::memcpy(&v, p, 8);
  return v;
}

/// \brief Cursor for sequential decoding with bounds checking by the caller.
class Decoder {
 public:
  Decoder(const char* data, size_t size) : p_(data), end_(data + size) {}
  explicit Decoder(const std::string& s) : Decoder(s.data(), s.size()) {}

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool ok() const { return p_ <= end_; }

  /// Current read position (for variable-length fields the caller copies
  /// out itself after checking `remaining()`).
  const char* data() const { return p_; }
  void Skip(size_t n) { Advance(n); }

  uint16_t ReadFixed16() { return Advance(2), GetFixed16(p_ - 2); }
  uint32_t ReadFixed32() { return Advance(4), GetFixed32(p_ - 4); }
  uint64_t ReadFixed64() { return Advance(8), GetFixed64(p_ - 8); }
  double ReadDouble() { return Advance(8), GetDouble(p_ - 8); }

 private:
  void Advance(size_t n) { p_ += n; }
  const char* p_;
  const char* end_;
};

}  // namespace hermes

#endif  // HERMES_COMMON_CODING_H_
