#ifndef HERMES_COMMON_STATUS_H_
#define HERMES_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace hermes {

/// \brief Error categories used across the library.
///
/// Hermes does not use exceptions (per the database-engine idiom); every
/// fallible operation returns a `Status` or a `StatusOr<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kCorruption,
  kNotSupported,
  kInternal,
  kResourceExhausted,
  kUnavailable,
};

/// \brief Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// \brief A lightweight success/error result, modeled after the
/// RocksDB/Arrow `Status` idiom.
///
/// The OK status carries no allocation; error statuses carry a code and a
/// message. `Status` is cheap to copy and move.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Returns "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Propagates a non-OK `Status` from the current function.
#define HERMES_RETURN_NOT_OK(expr)             \
  do {                                         \
    ::hermes::Status _st = (expr);             \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace hermes

#endif  // HERMES_COMMON_STATUS_H_
