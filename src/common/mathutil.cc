#include "common/mathutil.h"

#include <algorithm>
#include <cmath>

namespace hermes {

double Clamp(double v, double lo, double hi) {
  return std::max(lo, std::min(hi, v));
}

bool AlmostEqual(double a, double b, double abs_tol, double rel_tol) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

std::vector<double> PrefixSum(const std::vector<double>& xs) {
  std::vector<double> p(xs.size() + 1, 0.0);
  for (size_t i = 0; i < xs.size(); ++i) p[i + 1] = p[i] + xs[i];
  return p;
}

std::vector<double> PrefixSqSum(const std::vector<double>& xs) {
  std::vector<double> p(xs.size() + 1, 0.0);
  for (size_t i = 0; i < xs.size(); ++i) p[i + 1] = p[i] + xs[i] * xs[i];
  return p;
}

double RangeSse(const std::vector<double>& prefix_sum,
                const std::vector<double>& prefix_sq_sum, size_t first,
                size_t last) {
  const double n = static_cast<double>(last - first + 1);
  const double s = prefix_sum[last + 1] - prefix_sum[first];
  const double sq = prefix_sq_sum[last + 1] - prefix_sq_sum[first];
  // SSE = sum(x^2) - (sum(x))^2 / n; clamp tiny negatives from rounding.
  const double sse = sq - (s * s) / n;
  return sse > 0.0 ? sse : 0.0;
}

double GaussianKernel(double d, double sigma) {
  if (sigma <= 0.0) return d == 0.0 ? 1.0 : 0.0;
  const double z = d / sigma;
  return std::exp(-0.5 * z * z);
}

}  // namespace hermes
