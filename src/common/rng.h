#ifndef HERMES_COMMON_RNG_H_
#define HERMES_COMMON_RNG_H_

#include <cstdint>

namespace hermes {

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the repository (data generators, sampled
/// workloads) is seeded explicitly through this class so that tests and
/// benchmarks are reproducible bit-for-bit across runs and platforms.
class Rng {
 public:
  /// Seeds the generator; equal seeds produce equal streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Standard normal via Box–Muller (deterministic pair caching).
  double NextGaussian();

  /// Bernoulli draw with probability `p` of true.
  bool NextBool(double p);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace hermes

#endif  // HERMES_COMMON_RNG_H_
