#ifndef HERMES_COMMON_MUTEX_H_
#define HERMES_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace hermes::common {

/// \brief `std::mutex` carrying the Clang `capability` attribute, so
/// fields can be `GUARDED_BY` it and helpers can `REQUIRES` it.
///
/// libstdc++'s `std::mutex` has no capability attribute — annotating it
/// directly is a hard `-Wthread-safety-attributes` error — hence this
/// wrapper. It adds no state and no behavior; `native()` exposes the
/// underlying mutex for `std::condition_variable` (prefer
/// `MutexLock::Wait`, which keeps the capability bookkeeping in one
/// place).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// \brief `std::shared_mutex` as a capability: exclusive for writers,
/// shared for readers. `GUARDED_BY(mu)` fields may be *read* under either
/// mode and written only under exclusive — exactly the reader/writer
/// contract of the storage and service layers.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// \brief RAII exclusive guard over `Mutex` (the annotated
/// `std::lock_guard`). Holds a real `std::unique_lock` internally so
/// condition-variable waits go through `Wait` without giving up the
/// scoped-capability bookkeeping.
///
/// Write cv wait loops as explicit `while (!predicate) lock.Wait(cv);` —
/// a predicate lambda would be analyzed as a separate function that holds
/// nothing, and every guarded field it reads would (falsely) warn.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : lock_(mu->native()) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Atomically releases the mutex and blocks until notified; the mutex
  /// is re-held on return. (The analysis models the capability as held
  /// across the wait, which is sound for callers: they can only observe
  /// the re-acquired state.)
  void Wait(std::condition_variable& cv) { cv.wait(lock_); }

 private:
  // The capability itself lives in the ACQUIRE/RELEASE annotations; only
  // the underlying std::unique_lock is needed for cv waits + unlock.
  std::unique_lock<std::mutex> lock_;
};

/// \brief RAII exclusive (writer) guard over `SharedMutex`.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// \brief RAII shared (reader) guard over `SharedMutex`.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->lock_shared();
  }
  ~ReaderMutexLock() RELEASE() { mu_->unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

}  // namespace hermes::common

#endif  // HERMES_COMMON_MUTEX_H_
