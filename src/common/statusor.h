#ifndef HERMES_COMMON_STATUSOR_H_
#define HERMES_COMMON_STATUSOR_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace hermes {

/// \brief Either a value of type `T` or a non-OK `Status`.
///
/// Mirrors `arrow::Result` / `absl::StatusOr`. Accessing the value of an
/// errored `StatusOr` aborts the process (programming error, not a runtime
/// condition).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (the common success path).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  /// Implicit construction from an error status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      // An OK status without a value is a contract violation.
      status_ = Status::Internal("StatusOr constructed from OK status");
      std::abort();
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    if (!ok()) std::abort();
    return *value_;
  }
  const T& value() const& {
    if (!ok()) std::abort();
    return *value_;
  }
  T&& value() && {
    if (!ok()) std::abort();
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// \brief Assigns the value of a `StatusOr` expression to `lhs`, or
/// propagates its error status.
#define HERMES_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define HERMES_ASSIGN_OR_RETURN_CONCAT_(a, b) a##b
#define HERMES_ASSIGN_OR_RETURN_CONCAT(a, b) \
  HERMES_ASSIGN_OR_RETURN_CONCAT_(a, b)

#define HERMES_ASSIGN_OR_RETURN(lhs, expr)                                   \
  HERMES_ASSIGN_OR_RETURN_IMPL(                                              \
      HERMES_ASSIGN_OR_RETURN_CONCAT(_statusor_tmp_, __LINE__), lhs, expr)

}  // namespace hermes

#endif  // HERMES_COMMON_STATUSOR_H_
