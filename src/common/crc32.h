#ifndef HERMES_COMMON_CRC32_H_
#define HERMES_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace hermes::common {

namespace crc32_internal {

/// Standard reflected CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the
/// checksum the WAL and checkpoint formats use to detect torn or
/// corrupted records. Table-driven, one byte per step; built at compile
/// time so the header stays dependency-free.
constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace crc32_internal

/// CRC-32 of `data[0, n)`, continuing from `seed` (pass a previous call's
/// result to checksum discontiguous pieces as one stream; 0 starts fresh).
inline uint32_t Crc32(const char* data, size_t n, uint32_t seed = 0) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = crc32_internal::kTable[(c ^ static_cast<uint8_t>(data[i])) & 0xFFu] ^
        (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

inline uint32_t Crc32(const std::string& s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

}  // namespace hermes::common

#endif  // HERMES_COMMON_CRC32_H_
