#ifndef HERMES_GIST_GIST_PAGE_H_
#define HERMES_GIST_GIST_PAGE_H_

#include <cstdint>
#include <cstring>

#include "storage/pager.h"

namespace hermes::gist {

/// \brief Typed view over a pager page holding one GiST node.
///
/// Node layout (offsets in bytes):
///   0  : u8  is_leaf
///   1  : u8  reserved
///   2  : u16 num_entries
///   4  : u32 reserved
///   8.. : entries, each `key_size` key bytes followed by a u64 datum
///         (leaf: user datum; internal: child page id).
///
/// Keys are opaque fixed-size byte strings; all interpretation lives in the
/// operator class (the GiST extensibility contract).
class GistNodeView {
 public:
  GistNodeView(storage::Page* page, size_t key_size)
      : page_(page), key_size_(key_size) {}

  static constexpr size_t kHeaderSize = 8;

  size_t entry_size() const { return key_size_ + 8; }
  /// Maximum entries a node can hold for this key size.
  size_t Capacity() const {
    return (storage::kPageSize - kHeaderSize) / entry_size();
  }

  bool is_leaf() const { return page_->data[0] != 0; }
  void set_is_leaf(bool leaf) { page_->data[0] = leaf ? 1 : 0; }

  uint16_t num_entries() const {
    uint16_t n;
    std::memcpy(&n, page_->data.data() + 2, 2);
    return n;
  }
  void set_num_entries(uint16_t n) { std::memcpy(page_->data.data() + 2, &n, 2); }

  /// Zeroes the node and sets its leaf flag.
  void Init(bool leaf) {
    std::memset(page_->data.data(), 0, storage::kPageSize);
    set_is_leaf(leaf);
    set_num_entries(0);
  }

  const char* KeyAt(size_t i) const {
    return page_->data.data() + kHeaderSize + i * entry_size();
  }
  char* MutableKeyAt(size_t i) {
    return page_->data.data() + kHeaderSize + i * entry_size();
  }

  uint64_t DatumAt(size_t i) const {
    uint64_t v;
    std::memcpy(&v, KeyAt(i) + key_size_, 8);
    return v;
  }
  void SetDatumAt(size_t i, uint64_t v) {
    std::memcpy(MutableKeyAt(i) + key_size_, &v, 8);
  }

  void SetKeyAt(size_t i, const void* key) {
    std::memcpy(MutableKeyAt(i), key, key_size_);
  }

  /// Appends an entry; caller must check Capacity() first.
  void Append(const void* key, uint64_t datum) {
    const uint16_t n = num_entries();
    SetKeyAt(n, key);
    SetDatumAt(n, datum);
    set_num_entries(n + 1);
  }

  /// Removes entry `i` by shifting the tail down.
  void Remove(size_t i) {
    const uint16_t n = num_entries();
    if (i + 1 < n) {
      std::memmove(MutableKeyAt(i), KeyAt(i + 1), (n - i - 1) * entry_size());
    }
    set_num_entries(n - 1);
  }

  storage::Page* page() const { return page_; }

 private:
  storage::Page* page_;
  size_t key_size_;
};

}  // namespace hermes::gist

#endif  // HERMES_GIST_GIST_PAGE_H_
