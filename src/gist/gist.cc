#include "gist/gist.h"

#include <cstring>

#include "common/logging.h"

namespace hermes::gist {

namespace {
constexpr uint32_t kGistMagic = 0x47495354u;  // "GIST"
// Meta page layout: [magic u32][root u32][height u32][pad u32][entries u64].
constexpr size_t kMetaMagicOff = 0;
constexpr size_t kMetaRootOff = 4;
constexpr size_t kMetaHeightOff = 8;
constexpr size_t kMetaEntriesOff = 16;
}  // namespace

bool GistOpClass::Same(const void* a, const void* b) const {
  return std::memcmp(a, b, KeySize()) == 0;
}

Gist::Gist(std::unique_ptr<storage::Pager> pager, const GistOpClass* opclass)
    : pager_(std::move(pager)),
      opclass_(opclass),
      key_size_(opclass->KeySize()) {}

StatusOr<std::unique_ptr<Gist>> Gist::Open(storage::Env* env,
                                           const std::string& fname,
                                           const GistOpClass* opclass,
                                           size_t cache_pages) {
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<storage::Pager> pager,
                          storage::Pager::Open(env, fname, cache_pages));
  auto tree = std::unique_ptr<Gist>(new Gist(std::move(pager), opclass));
  // The handle is not shared yet, but LoadMeta writes guarded state, so
  // take the (uncontended) writer lock for the analysis.
  common::WriterMutexLock lock(&tree->mu_);
  if (tree->pager_->num_pages() == 0) {
    HERMES_ASSIGN_OR_RETURN(storage::Page * meta, tree->pager_->Allocate());
    storage::PinnedPage pin(tree->pager_.get(), meta);
    std::memset(meta->data.data(), 0, storage::kPageSize);
    std::memcpy(meta->data.data() + kMetaMagicOff, &kGistMagic, 4);
    uint32_t invalid = storage::kInvalidPage;
    std::memcpy(meta->data.data() + kMetaRootOff, &invalid, 4);
    pin.MarkDirty();
  } else {
    HERMES_RETURN_NOT_OK(tree->LoadMeta());
  }
  return tree;
}

Status Gist::LoadMeta() {
  HERMES_ASSIGN_OR_RETURN(storage::Page * meta, pager_->Fetch(0));
  storage::PinnedPage pin(pager_.get(), meta);
  uint32_t magic;
  std::memcpy(&magic, meta->data.data() + kMetaMagicOff, 4);
  if (magic != kGistMagic) return Status::Corruption("bad GiST magic");
  std::memcpy(&root_, meta->data.data() + kMetaRootOff, 4);
  std::memcpy(&height_, meta->data.data() + kMetaHeightOff, 4);
  std::memcpy(&num_entries_, meta->data.data() + kMetaEntriesOff, 8);
  return Status::OK();
}

Status Gist::SaveMeta() {
  HERMES_ASSIGN_OR_RETURN(storage::Page * meta, pager_->Fetch(0));
  storage::PinnedPage pin(pager_.get(), meta);
  std::memcpy(meta->data.data() + kMetaRootOff, &root_, 4);
  std::memcpy(meta->data.data() + kMetaHeightOff, &height_, 4);
  std::memcpy(meta->data.data() + kMetaEntriesOff, &num_entries_, 8);
  pin.MarkDirty();
  return Status::OK();
}

StatusOr<storage::PageId> Gist::NewNode(bool leaf) {
  HERMES_ASSIGN_OR_RETURN(storage::Page * page, pager_->Allocate());
  storage::PinnedPage pin(pager_.get(), page);
  GistNodeView view(page, key_size_);
  view.Init(leaf);
  pin.MarkDirty();
  return page->id;
}

std::string Gist::ComputeUnion(const GistNodeView& view) const {
  HERMES_CHECK(view.num_entries() > 0) << "union of empty node";
  std::string u(view.KeyAt(0), key_size_);
  for (size_t i = 1; i < view.num_entries(); ++i) {
    opclass_->UnionInPlace(u.data(), view.KeyAt(i));
  }
  return u;
}

Status Gist::Insert(const void* key, uint64_t datum) {
  storage::CountedExclusiveLock lock(mu_, &lock_counters_);
  if (root_ == storage::kInvalidPage) {
    HERMES_ASSIGN_OR_RETURN(root_, NewNode(/*leaf=*/true));
    height_ = 1;
  }
  HERMES_ASSIGN_OR_RETURN(InsertResult res, InsertRecursive(root_, key, datum));
  if (res.split) {
    // Root split: grow the tree upward.
    HERMES_ASSIGN_OR_RETURN(storage::PageId new_root,
                            NewNode(/*leaf=*/false));
    HERMES_ASSIGN_OR_RETURN(storage::Page * page, pager_->Fetch(new_root));
    storage::PinnedPage pin(pager_.get(), page);
    GistNodeView view(page, key_size_);
    view.Append(res.subtree_union.data(), root_);
    view.Append(res.right_union.data(), res.right_page);
    pin.MarkDirty();
    root_ = new_root;
    ++height_;
  }
  ++num_entries_;
  return SaveMeta();
}

StatusOr<Gist::InsertResult> Gist::InsertRecursive(storage::PageId node_id,
                                                   const void* key,
                                                   uint64_t datum) {
  HERMES_ASSIGN_OR_RETURN(storage::Page * page, pager_->Fetch(node_id));
  storage::PinnedPage pin(pager_.get(), page);
  GistNodeView view(page, key_size_);

  if (view.is_leaf()) {
    if (view.num_entries() < view.Capacity()) {
      view.Append(key, datum);
      pin.MarkDirty();
      InsertResult res;
      res.subtree_union = ComputeUnion(view);
      return res;
    }
    auto res = SplitNode(&view, key, datum);
    if (res.ok()) pin.MarkDirty();
    return res;
  }

  // Choose the subtree with minimal penalty (ties: first).
  size_t best = 0;
  double best_penalty = opclass_->Penalty(view.KeyAt(0), key);
  for (size_t i = 1; i < view.num_entries(); ++i) {
    const double p = opclass_->Penalty(view.KeyAt(i), key);
    if (p < best_penalty) {
      best_penalty = p;
      best = i;
    }
  }
  const storage::PageId child =
      static_cast<storage::PageId>(view.DatumAt(best));
  HERMES_ASSIGN_OR_RETURN(InsertResult child_res,
                          InsertRecursive(child, key, datum));

  // AdjustKeys: tighten the chosen entry to the child's new union.
  view.SetKeyAt(best, child_res.subtree_union.data());
  pin.MarkDirty();

  if (!child_res.split) {
    InsertResult res;
    res.subtree_union = ComputeUnion(view);
    return res;
  }

  // Install the new right sibling produced by the child split.
  if (view.num_entries() < view.Capacity()) {
    view.Append(child_res.right_union.data(), child_res.right_page);
    InsertResult res;
    res.subtree_union = ComputeUnion(view);
    return res;
  }
  return SplitNode(&view, child_res.right_union.data(), child_res.right_page);
}

StatusOr<Gist::InsertResult> Gist::SplitNode(GistNodeView* view,
                                             const void* key, uint64_t datum) {
  splits_.fetch_add(1, std::memory_order_relaxed);
  const size_t n = view->num_entries();
  // Gather all keys (existing + pending) for PickSplit.
  std::vector<std::string> keys;
  std::vector<uint64_t> datums;
  keys.reserve(n + 1);
  datums.reserve(n + 1);
  for (size_t i = 0; i < n; ++i) {
    keys.emplace_back(view->KeyAt(i), key_size_);
    datums.push_back(view->DatumAt(i));
  }
  keys.emplace_back(static_cast<const char*>(key), key_size_);
  datums.push_back(datum);

  std::vector<const void*> key_ptrs;
  key_ptrs.reserve(keys.size());
  for (const auto& k : keys) key_ptrs.push_back(k.data());
  std::vector<bool> to_right;
  opclass_->PickSplit(key_ptrs, &to_right);
  HERMES_CHECK(to_right.size() == keys.size()) << "PickSplit size mismatch";

  // Both sides must be non-empty; fall back to a half split otherwise.
  size_t right_count = 0;
  for (bool b : to_right) right_count += b ? 1 : 0;
  if (right_count == 0 || right_count == keys.size()) {
    for (size_t i = 0; i < to_right.size(); ++i) to_right[i] = i >= keys.size() / 2;
  }

  const bool leaf = view->is_leaf();
  HERMES_ASSIGN_OR_RETURN(storage::PageId right_id, NewNode(leaf));
  HERMES_ASSIGN_OR_RETURN(storage::Page * right_page, pager_->Fetch(right_id));
  storage::PinnedPage right_pin(pager_.get(), right_page);
  GistNodeView right(right_page, key_size_);
  right.Init(leaf);

  view->Init(leaf);  // Rebuild the left node in place.
  for (size_t i = 0; i < keys.size(); ++i) {
    if (to_right[i]) {
      right.Append(keys[i].data(), datums[i]);
    } else {
      view->Append(keys[i].data(), datums[i]);
    }
  }
  right_pin.MarkDirty();

  InsertResult res;
  res.subtree_union = ComputeUnion(*view);
  res.split = true;
  res.right_union = ComputeUnion(right);
  res.right_page = right_id;
  return res;
}

Status Gist::Search(
    const void* query,
    const std::function<bool(const void*, uint64_t)>& fn) const {
  storage::CountedSharedLock lock(mu_, &lock_counters_);
  if (root_ == storage::kInvalidPage) return Status::OK();
  // Iterative DFS with an explicit stack: this is the hottest read path
  // (every voting range query descends here).
  storage::PageId stack_buf[64];
  size_t depth = 0;
  stack_buf[depth++] = root_;
  std::vector<storage::PageId> overflow;  // Beyond the inline stack.

  while (depth > 0 || !overflow.empty()) {
    storage::PageId node_id;
    if (!overflow.empty()) {
      node_id = overflow.back();
      overflow.pop_back();
    } else {
      node_id = stack_buf[--depth];
    }
    HERMES_ASSIGN_OR_RETURN(storage::Page * page, pager_->Fetch(node_id));
    storage::PinnedPage pin(pager_.get(), page);
    GistNodeView view(page, key_size_);
    nodes_visited_.fetch_add(1, std::memory_order_relaxed);

    const bool leaf = view.is_leaf();
    const size_t n = view.num_entries();
    for (size_t i = 0; i < n; ++i) {
      if (!opclass_->Consistent(view.KeyAt(i), query, leaf)) continue;
      if (leaf) {
        leaf_hits_.fetch_add(1, std::memory_order_relaxed);
        if (!fn(view.KeyAt(i), view.DatumAt(i))) return Status::OK();
      } else {
        const auto child = static_cast<storage::PageId>(view.DatumAt(i));
        if (depth < 64) {
          stack_buf[depth++] = child;
        } else {
          overflow.push_back(child);
        }
      }
    }
  }
  return Status::OK();
}

Status Gist::Delete(const void* key, uint64_t datum) {
  storage::CountedExclusiveLock lock(mu_, &lock_counters_);
  if (root_ == storage::kInvalidPage) return Status::NotFound("empty tree");
  std::string new_union;
  HERMES_ASSIGN_OR_RETURN(bool found,
                          DeleteRecursive(root_, key, datum, &new_union));
  if (!found) return Status::NotFound("no matching entry");
  --num_entries_;
  return SaveMeta();
}

StatusOr<bool> Gist::DeleteRecursive(storage::PageId node_id, const void* key,
                                     uint64_t datum, std::string* new_union) {
  HERMES_ASSIGN_OR_RETURN(storage::Page * page, pager_->Fetch(node_id));
  storage::PinnedPage pin(pager_.get(), page);
  GistNodeView view(page, key_size_);

  if (view.is_leaf()) {
    for (size_t i = 0; i < view.num_entries(); ++i) {
      if (view.DatumAt(i) == datum && opclass_->Same(view.KeyAt(i), key)) {
        view.Remove(i);
        pin.MarkDirty();
        if (view.num_entries() > 0) {
          *new_union = ComputeUnion(view);
        } else {
          new_union->clear();  // Empty node: parent keeps its stale key.
        }
        return true;
      }
    }
    return false;
  }

  for (size_t i = 0; i < view.num_entries(); ++i) {
    // Descend only into subtrees whose key covers the victim.
    if (!opclass_->Covers(view.KeyAt(i), key)) continue;
    std::string child_union;
    HERMES_ASSIGN_OR_RETURN(
        bool found, DeleteRecursive(static_cast<storage::PageId>(
                                        view.DatumAt(i)),
                                    key, datum, &child_union));
    if (found) {
      if (!child_union.empty()) {
        view.SetKeyAt(i, child_union.data());
        pin.MarkDirty();
        *new_union = ComputeUnion(view);
      } else {
        new_union->clear();
      }
      return true;
    }
  }
  return false;
}

Status Gist::BulkLoad(
    const std::vector<std::pair<std::string, uint64_t>>& entries,
    double fill_factor) {
  storage::CountedExclusiveLock lock(mu_, &lock_counters_);
  if (root_ != storage::kInvalidPage) {
    return Status::InvalidArgument("BulkLoad requires an empty tree");
  }
  if (entries.empty()) return Status::OK();
  if (fill_factor <= 0.0 || fill_factor > 1.0) {
    return Status::InvalidArgument("fill_factor must be in (0, 1]");
  }
  for (const auto& [k, d] : entries) {
    if (k.size() != key_size_) {
      return Status::InvalidArgument("key size mismatch in BulkLoad");
    }
  }

  // Pack the current level into nodes, collect (union, page) for the next.
  struct LevelEntry {
    std::string key;
    uint64_t datum;
  };
  std::vector<LevelEntry> level;
  level.reserve(entries.size());
  for (const auto& [k, d] : entries) level.push_back({k, d});

  bool leaf_level = true;
  uint32_t levels = 0;
  while (true) {
    GistNodeView probe(nullptr, key_size_);
    const size_t capacity =
        (storage::kPageSize - GistNodeView::kHeaderSize) / (key_size_ + 8);
    size_t per_node = static_cast<size_t>(capacity * fill_factor);
    if (per_node < 2) per_node = 2;
    (void)probe;

    std::vector<LevelEntry> next;
    for (size_t i = 0; i < level.size(); i += per_node) {
      const size_t end = std::min(i + per_node, level.size());
      HERMES_ASSIGN_OR_RETURN(storage::PageId node_id, NewNode(leaf_level));
      HERMES_ASSIGN_OR_RETURN(storage::Page * page, pager_->Fetch(node_id));
      storage::PinnedPage pin(pager_.get(), page);
      GistNodeView view(page, key_size_);
      std::string u(level[i].key);
      for (size_t j = i; j < end; ++j) {
        view.Append(level[j].key.data(), level[j].datum);
        if (j > i) opclass_->UnionInPlace(u.data(), level[j].key.data());
      }
      pin.MarkDirty();
      next.push_back({std::move(u), node_id});
    }
    ++levels;
    if (next.size() == 1) {
      root_ = static_cast<storage::PageId>(next[0].datum);
      break;
    }
    level = std::move(next);
    leaf_level = false;
  }
  height_ = levels;
  num_entries_ = entries.size();
  return SaveMeta();
}

Status Gist::Validate() const {
  storage::CountedSharedLock lock(mu_, &lock_counters_);
  if (root_ == storage::kInvalidPage) {
    if (num_entries_ != 0) return Status::Corruption("entries in empty tree");
    return Status::OK();
  }
  uint64_t seen = 0;
  HERMES_RETURN_NOT_OK(ValidateRecursive(root_, 1, nullptr, &seen));
  if (seen != num_entries_) {
    return Status::Corruption("entry count mismatch: meta says " +
                              std::to_string(num_entries_) + ", found " +
                              std::to_string(seen));
  }
  return Status::OK();
}

Status Gist::ValidateRecursive(storage::PageId node_id, uint32_t depth,
                               const std::string* expected_cover,
                               uint64_t* entries_seen) const {
  HERMES_ASSIGN_OR_RETURN(storage::Page * page, pager_->Fetch(node_id));
  storage::PinnedPage pin(pager_.get(), page);
  GistNodeView view(page, key_size_);

  const bool leaf = view.is_leaf();
  if (leaf && depth != height_) {
    return Status::Corruption("leaf at depth " + std::to_string(depth) +
                              " height " + std::to_string(height_));
  }
  if (!leaf && depth >= height_) {
    return Status::Corruption("internal node below leaf level");
  }
  for (size_t i = 0; i < view.num_entries(); ++i) {
    if (expected_cover != nullptr &&
        !opclass_->Covers(expected_cover->data(), view.KeyAt(i))) {
      return Status::Corruption("parent key does not cover child entry");
    }
    if (leaf) {
      ++*entries_seen;
    } else {
      std::string cover(view.KeyAt(i), key_size_);
      HERMES_RETURN_NOT_OK(ValidateRecursive(
          static_cast<storage::PageId>(view.DatumAt(i)), depth + 1, &cover,
          entries_seen));
    }
  }
  return Status::OK();
}

StatusOr<Gist::NodeSnapshot> Gist::ReadNode(storage::PageId id) const {
  storage::CountedSharedLock lock(mu_, &lock_counters_);
  HERMES_ASSIGN_OR_RETURN(storage::Page * page, pager_->Fetch(id));
  storage::PinnedPage pin(pager_.get(), page);
  GistNodeView view(page, key_size_);
  NodeSnapshot snap;
  snap.is_leaf = view.is_leaf();
  for (size_t i = 0; i < view.num_entries(); ++i) {
    snap.keys.emplace_back(view.KeyAt(i), key_size_);
    snap.datums.push_back(view.DatumAt(i));
  }
  return snap;
}

Status Gist::Flush() {
  storage::CountedExclusiveLock lock(mu_, &lock_counters_);
  return pager_->Flush();
}

}  // namespace hermes::gist
