#include "gist/gist_page.h"

// All members are defined inline in the header; this translation unit exists
// so the build graph mirrors the module layout.
