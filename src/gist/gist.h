#ifndef HERMES_GIST_GIST_H_
#define HERMES_GIST_GIST_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "gist/gist_page.h"
#include "storage/env.h"
#include "storage/lock_stats.h"
#include "storage/pager.h"

namespace hermes::gist {

/// \brief The GiST extensibility interface (Hellerstein, Naughton & Pfeffer,
/// VLDB 1995): six methods that specialize the generic balanced tree into a
/// concrete access method. `pg3D-Rtree` is one operator class over this
/// interface; nothing R-tree-specific lives in `Gist` itself.
///
/// Keys are opaque fixed-size byte strings (`KeySize()` bytes). Queries are
/// opaque too — `Consistent` alone interprets them.
class GistOpClass {
 public:
  virtual ~GistOpClass() = default;

  /// Size in bytes of every key.
  virtual size_t KeySize() const = 0;

  /// May the subtree/leaf under `key` contain matches for `query`?
  virtual bool Consistent(const void* key, const void* query,
                          bool is_leaf) const = 0;

  /// Replaces `dst` with the union of `dst` and `src`.
  virtual void UnionInPlace(void* dst, const void* src) const = 0;

  /// Cost of inserting `incoming` under `existing` (lower is better).
  virtual double Penalty(const void* existing, const void* incoming) const = 0;

  /// Splits `keys` (>= 2) into two groups; `to_right[i]` selects the side.
  /// Both groups must be non-empty.
  virtual void PickSplit(const std::vector<const void*>& keys,
                         std::vector<bool>* to_right) const = 0;

  /// Exact key equality (used by Delete); default is bytewise comparison.
  virtual bool Same(const void* a, const void* b) const;

  /// Does `parent` cover `child`? Used only by `Validate`.
  virtual bool Covers(const void* parent, const void* child) const = 0;

  /// Debug rendering of a key.
  virtual std::string KeyToString(const void* key) const { (void)key; return "?"; }
};

/// \brief Search/maintenance counters for the benchmark harness.
struct GistStats {
  uint64_t nodes_visited = 0;
  uint64_t leaf_hits = 0;
  uint64_t splits = 0;
};

/// \brief Disk-based Generalized Search Tree.
///
/// Page 0 is the meta page (magic, root id, height, entry count); all other
/// pages are nodes. The tree grows at the root on split (standard GiST).
/// Deletion removes leaf entries and tightens ancestor keys but does not
/// merge underfull nodes (PostgreSQL's GiST makes the same trade-off;
/// space is reclaimed by dropping the index file).
///
/// Thread safety: tree operations take an internal reader/writer lock —
/// `Search`/`Validate`/`ReadNode` shared, mutations exclusive — so one
/// handle may be shared by concurrent readers without serializing them
/// (the pager guards its own LRU state internally; the shared lock here
/// only keeps readers of page payloads from racing writers). Lock traffic
/// is counted in `lock_stats()` so the hot/cold tier split can assert the
/// probe path stays lock-free.
class Gist {
 public:
  /// Opens or creates a GiST at `fname`. The op class must outlive the tree
  /// and match the one the file was created with.
  static StatusOr<std::unique_ptr<Gist>> Open(storage::Env* env,
                                              const std::string& fname,
                                              const GistOpClass* opclass,
                                              size_t cache_pages = 256);

  /// Inserts (key, datum).
  Status Insert(const void* key, uint64_t datum);

  /// Removes one entry with an identical key and datum; NotFound otherwise.
  Status Delete(const void* key, uint64_t datum);

  /// Visits every entry consistent with `query`. The callback gets the leaf
  /// key bytes and datum; returning false stops the search.
  Status Search(const void* query,
                const std::function<bool(const void*, uint64_t)>& fn) const;

  /// \brief Bottom-up bulk load into an EMPTY tree. `entries` must already
  /// be in the desired leaf order (e.g. STR order); `fill_factor` in (0, 1]
  /// controls node utilization.
  Status BulkLoad(const std::vector<std::pair<std::string, uint64_t>>& entries,
                  double fill_factor = 0.9);

  /// Checks structural invariants (parent keys cover children, height
  /// consistent, entry count matches).
  Status Validate() const;

  /// Structure accessors take the reader lock: they are called from
  /// outside the tree (benches, the R-tree kNN seed) where a concurrent
  /// root split must not be observed half-applied.
  uint64_t num_entries() const {
    common::ReaderMutexLock lock(&mu_);
    return num_entries_;
  }
  uint32_t height() const {
    common::ReaderMutexLock lock(&mu_);
    return height_;
  }
  storage::PageId root() const {
    common::ReaderMutexLock lock(&mu_);
    return root_;
  }
  bool empty() const {
    common::ReaderMutexLock lock(&mu_);
    return root_ == storage::kInvalidPage;
  }

  /// Point-in-time counter snapshots (by value: the search counters are
  /// bumped under the *shared* lock, so a reference would race).
  GistStats stats() const {
    GistStats s;
    s.nodes_visited = nodes_visited_.load(std::memory_order_relaxed);
    s.leaf_hits = leaf_hits_.load(std::memory_order_relaxed);
    s.splits = splits_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    nodes_visited_.store(0, std::memory_order_relaxed);
    leaf_hits_.store(0, std::memory_order_relaxed);
    splits_.store(0, std::memory_order_relaxed);
  }
  storage::PagerStats io_stats() const { return pager_->stats(); }
  storage::LockStats lock_stats() const { return lock_counters_.Snapshot(); }
  void ResetLockStats() { lock_counters_.Reset(); }

  Status Flush();

  /// \brief Decoded node snapshot for advanced read paths (e.g. the R-tree
  /// best-first kNN) that need raw access to internal entries.
  struct NodeSnapshot {
    bool is_leaf = false;
    std::vector<std::string> keys;
    std::vector<uint64_t> datums;
  };
  StatusOr<NodeSnapshot> ReadNode(storage::PageId id) const;

 private:
  Gist(std::unique_ptr<storage::Pager> pager, const GistOpClass* opclass);

  Status LoadMeta() REQUIRES(mu_);
  Status SaveMeta() REQUIRES(mu_);
  StatusOr<storage::PageId> NewNode(bool leaf) REQUIRES(mu_);

  /// Result of a recursive insert into a subtree.
  struct InsertResult {
    std::string subtree_union;    // Tightened union key of the subtree.
    bool split = false;
    std::string right_union;      // Valid when split.
    storage::PageId right_page = storage::kInvalidPage;
  };
  StatusOr<InsertResult> InsertRecursive(storage::PageId node_id,
                                         const void* key, uint64_t datum)
      REQUIRES(mu_);

  /// Splits the full node `view` plus the pending entry into two nodes.
  StatusOr<InsertResult> SplitNode(GistNodeView* view, const void* key,
                                   uint64_t datum) REQUIRES(mu_);

  /// Returns true when found+removed; refreshed union in `new_union`.
  StatusOr<bool> DeleteRecursive(storage::PageId node_id, const void* key,
                                 uint64_t datum, std::string* new_union)
      REQUIRES(mu_);

  Status ValidateRecursive(storage::PageId node_id, uint32_t depth,
                           const std::string* expected_cover,
                           uint64_t* entries_seen) const REQUIRES_SHARED(mu_);

  std::string ComputeUnion(const GistNodeView& view) const;

  /// Reader/writer lock over public tree operations (see class comment).
  mutable common::SharedMutex mu_;
  mutable storage::LockStatsCounters lock_counters_;
  /// Never reassigned after construction; the pager locks internally, so
  /// `io_stats()` reads it without `mu_`.
  std::unique_ptr<storage::Pager> pager_;
  const GistOpClass* opclass_;
  size_t key_size_;

  storage::PageId root_ GUARDED_BY(mu_) = storage::kInvalidPage;
  uint32_t height_ GUARDED_BY(mu_) = 0;  // 0 = empty; 1 = root is a leaf.
  uint64_t num_entries_ GUARDED_BY(mu_) = 0;

  /// Search counters run under the shared lock, hence atomic.
  mutable std::atomic<uint64_t> nodes_visited_{0};
  mutable std::atomic<uint64_t> leaf_hits_{0};
  mutable std::atomic<uint64_t> splits_{0};
};

}  // namespace hermes::gist

#endif  // HERMES_GIST_GIST_H_
