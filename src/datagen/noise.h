#ifndef HERMES_DATAGEN_NOISE_H_
#define HERMES_DATAGEN_NOISE_H_

#include <cstdint>

#include "common/status.h"
#include "geom/mbb.h"
#include "traj/trajectory_store.h"

namespace hermes::datagen {

/// \brief Appends `count` random-walk trajectories inside `bounds` to an
/// existing store (outlier injection for robustness tests).
Status AddNoiseTrajectories(traj::TrajectoryStore* store, size_t count,
                            const geom::Mbb3D& bounds, double speed,
                            double sample_dt, uint64_t seed,
                            traj::ObjectId first_object_id);

/// \brief Builds a store of `count` parallel-lane trajectories: `lanes`
/// groups of co-moving objects plus optional stragglers — the canonical
/// ground-truth workload for clustering tests.
traj::TrajectoryStore MakeParallelLanes(size_t lanes, size_t per_lane,
                                        double lane_gap, double length,
                                        double speed, double sample_dt,
                                        uint64_t seed, double jitter = 1.0,
                                        double start_stagger = 0.0);

}  // namespace hermes::datagen

#endif  // HERMES_DATAGEN_NOISE_H_
