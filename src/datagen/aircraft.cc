#include "datagen/aircraft.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace hermes::datagen {

namespace {

/// Unit vector for a heading (radians, standard math convention).
geom::Point2D Heading(double radians) {
  return {std::cos(radians), std::sin(radians)};
}

/// Appends straight flight from `from` toward `to` at `speed`, sampling
/// every `dt`, adding cross-track noise; updates position/time in place.
void FlyStraight(traj::Trajectory* out, geom::Point2D* pos, double* t,
                 const geom::Point2D& to, double speed, double dt,
                 double noise, Rng* rng) {
  const geom::Point2D d = to - *pos;
  const double len = geom::Norm(d);
  if (len <= 1.0) return;
  const geom::Point2D dir = d * (1.0 / len);
  const geom::Point2D perp{-dir.y, dir.x};
  const double duration = len / speed;
  const int steps = std::max(1, static_cast<int>(duration / dt));
  for (int i = 1; i <= steps; ++i) {
    const double u = static_cast<double>(i) / steps;
    const double wobble = (i == steps) ? 0.0 : rng->NextGaussian() * noise;
    const geom::Point2D p = *pos + d * u + perp * wobble;
    *t += duration / steps;
    HERMES_CHECK_OK(out->Append({p.x, p.y, *t}));
  }
  *pos = to;
}

/// Appends an arc of `angle` radians around `center` starting at the
/// current position, at `speed`.
void FlyArc(traj::Trajectory* out, geom::Point2D* pos, double* t,
            const geom::Point2D& center, double angle, double speed,
            double dt) {
  const geom::Point2D r0 = *pos - center;
  const double radius = geom::Norm(r0);
  if (radius <= 1.0) return;
  const double arc_len = std::fabs(angle) * radius;
  const double duration = arc_len / speed;
  const int steps = std::max(2, static_cast<int>(duration / dt));
  const double a0 = std::atan2(r0.y, r0.x);
  for (int i = 1; i <= steps; ++i) {
    const double a = a0 + angle * static_cast<double>(i) / steps;
    const geom::Point2D p = center + geom::Point2D{std::cos(a), std::sin(a)} *
                                         radius;
    *t += duration / steps;
    HERMES_CHECK_OK(out->Append({p.x, p.y, *t}));
  }
  *pos = center + Heading(a0 + angle) * radius;
}

}  // namespace

AircraftScenarioParams AircraftScenarioParams::Default() {
  AircraftScenarioParams p;
  p.airports = {
      {{0.0, 0.0}, 0.0},            // West airport, landing eastbound.
      {{30000.0, -15000.0}, M_PI},  // East airport, landing westbound.
  };
  return p;
}

StatusOr<AircraftScenario> GenerateAircraftScenario(
    const AircraftScenarioParams& params) {
  if (params.airports.empty()) {
    return Status::InvalidArgument("need at least one airport");
  }
  if (params.sample_dt <= 0.0 || params.cruise_speed <= 0.0) {
    return Status::InvalidArgument("bad kinematic parameters");
  }
  AircraftScenario scenario;
  Rng rng(params.seed);

  for (size_t f = 0; f < params.num_flights; ++f) {
    FlightInfo info;
    info.object_id = f;
    info.departure_time = rng.Uniform(0.0, params.time_span);
    traj::Trajectory t(f);
    double now = info.departure_time;

    const bool outlier = rng.NextBool(params.outlier_fraction);
    info.is_outlier = outlier;
    if (outlier) {
      // Stray overflight: random straight crossing of the area.
      const double bearing = rng.Uniform(0.0, 2.0 * M_PI);
      const double offset = rng.Uniform(-40000.0, 40000.0);
      const geom::Point2D dir = Heading(bearing);
      const geom::Point2D perp{-dir.y, dir.x};
      geom::Point2D pos =
          dir * -params.entry_radius + perp * offset;
      HERMES_CHECK_OK(t.Append({pos.x, pos.y, now}));
      FlyStraight(&t, &pos, &now, dir * params.entry_radius + perp * offset,
                  params.cruise_speed, params.sample_dt,
                  params.lateral_noise * 3.0, &rng);
    } else {
      info.airport = rng.NextBelow(params.airports.size());
      const Airport& ap = params.airports[info.airport];
      const geom::Point2D land_dir = Heading(ap.runway_heading);
      // Approach fix sits `fix_distance` before the threshold.
      const geom::Point2D fix =
          ap.position - land_dir * params.fix_distance;

      // Cruise entry: a random bearing in the half-plane behind the fix.
      const double spread = rng.Uniform(-M_PI / 3.0, M_PI / 3.0);
      const geom::Point2D entry =
          fix - Heading(ap.runway_heading + spread) * params.entry_radius;
      geom::Point2D pos = entry;
      HERMES_CHECK_OK(t.Append({pos.x, pos.y, now}));

      // Cruise to the fix.
      FlyStraight(&t, &pos, &now, fix, params.cruise_speed, params.sample_dt,
                  params.lateral_noise, &rng);

      // Optional holding: racetrack loops anchored at the fix, oriented
      // along the runway axis, offset to one side.
      if (rng.NextBool(params.holding_probability)) {
        info.has_holding = true;
        info.holding_loops =
            params.min_holding_loops +
            static_cast<int>(rng.NextBelow(static_cast<uint64_t>(
                params.max_holding_loops - params.min_holding_loops + 1)));
        const geom::Point2D perp{-land_dir.y, land_dir.x};
        const geom::Point2D leg_end = fix - land_dir * params.holding_leg;
        for (int loop = 0; loop < info.holding_loops; ++loop) {
          // Outbound leg (away from the airport).
          FlyStraight(&t, &pos, &now, leg_end, params.holding_speed,
                      params.sample_dt, params.lateral_noise * 0.3, &rng);
          // Half turn.
          FlyArc(&t, &pos, &now, leg_end + perp * params.holding_radius,
                 M_PI, params.holding_speed, params.sample_dt);
          // Inbound leg (parallel, offset by 2R).
          FlyStraight(&t, &pos, &now,
                      fix + perp * (2.0 * params.holding_radius),
                      params.holding_speed, params.sample_dt,
                      params.lateral_noise * 0.3, &rng);
          // Half turn back onto the fix.
          FlyArc(&t, &pos, &now, fix + perp * params.holding_radius, M_PI,
                 params.holding_speed, params.sample_dt);
        }
      }

      // Final approach: fix -> threshold along the shared corridor.
      FlyStraight(&t, &pos, &now, ap.position, params.approach_speed,
                  params.sample_dt, params.lateral_noise * 0.2, &rng);
    }

    if (t.size() >= 2) {
      HERMES_ASSIGN_OR_RETURN(traj::TrajectoryId ignored,
                              scenario.store.Add(std::move(t)));
      (void)ignored;
      scenario.flights.push_back(info);
    }
  }
  return scenario;
}

}  // namespace hermes::datagen
