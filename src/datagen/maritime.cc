#include "datagen/maritime.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace hermes::datagen {

StatusOr<MaritimeScenario> GenerateMaritimeScenario(
    const MaritimeScenarioParams& params) {
  if (params.ports.size() < 2) {
    return Status::InvalidArgument("need at least two ports");
  }
  MaritimeScenario scenario;
  scenario.effective_lanes = params.lanes;
  if (scenario.effective_lanes.empty()) {
    for (size_t i = 0; i < params.ports.size(); ++i) {
      for (size_t j = i + 1; j < params.ports.size(); ++j) {
        scenario.effective_lanes.emplace_back(i, j);
      }
    }
  }
  Rng rng(params.seed);

  for (size_t s = 0; s < params.num_ships; ++s) {
    ShipInfo info;
    info.object_id = s;
    info.departure_time = rng.Uniform(0.0, params.time_span);
    traj::Trajectory t(s);
    double now = info.departure_time;

    info.is_wanderer = rng.NextBool(params.wanderer_fraction);
    if (info.is_wanderer) {
      // Random-walk fishing vessel.
      geom::Point2D pos{rng.Uniform(-20000.0, 100000.0),
                        rng.Uniform(-20000.0, 80000.0)};
      double heading = rng.Uniform(0.0, 2.0 * M_PI);
      HERMES_CHECK_OK(t.Append({pos.x, pos.y, now}));
      const int steps = 80 + static_cast<int>(rng.NextBelow(60));
      for (int i = 0; i < steps; ++i) {
        heading += rng.NextGaussian() * 0.35;
        const double v =
            std::max(1.0, params.ship_speed * 0.5 +
                              rng.NextGaussian() * params.speed_jitter);
        pos = pos + geom::Point2D{std::cos(heading), std::sin(heading)} *
                        (v * params.sample_dt);
        now += params.sample_dt;
        HERMES_CHECK_OK(t.Append({pos.x, pos.y, now}));
      }
    } else {
      info.lane = rng.NextBelow(scenario.effective_lanes.size());
      auto [pa, pb] = scenario.effective_lanes[info.lane];
      // Half the traffic runs the lane in reverse.
      if (rng.NextBool(0.5)) std::swap(pa, pb);
      const geom::Point2D from = params.ports[pa];
      const geom::Point2D to = params.ports[pb];
      const geom::Point2D d = to - from;
      const double len = geom::Norm(d);
      const geom::Point2D dir = d * (1.0 / len);
      const geom::Point2D perp{-dir.y, dir.x};
      const double offset = rng.NextGaussian() * params.lateral_sigma;

      const double v = std::max(
          2.0, params.ship_speed + rng.NextGaussian() * params.speed_jitter);
      const double duration = len / v;
      const int steps =
          std::max(2, static_cast<int>(duration / params.sample_dt));
      HERMES_CHECK_OK(t.Append(
          {from.x + perp.x * offset, from.y + perp.y * offset, now}));
      for (int i = 1; i <= steps; ++i) {
        const double u = static_cast<double>(i) / steps;
        const double wob =
            offset + rng.NextGaussian() * params.lateral_sigma * 0.2;
        const geom::Point2D p = from + d * u + perp * wob;
        now += duration / steps;
        HERMES_CHECK_OK(t.Append({p.x, p.y, now}));
      }
    }

    if (t.size() >= 2) {
      HERMES_ASSIGN_OR_RETURN(traj::TrajectoryId ignored,
                              scenario.store.Add(std::move(t)));
      (void)ignored;
      scenario.ships.push_back(info);
    }
  }
  return scenario;
}

}  // namespace hermes::datagen
