#ifndef HERMES_DATAGEN_MARITIME_H_
#define HERMES_DATAGEN_MARITIME_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "geom/point.h"
#include "traj/trajectory_store.h"

namespace hermes::datagen {

/// \brief Synthetic AIS-like maritime scenario: ships follow shipping
/// lanes between ports with lateral deviation; a fraction wanders freely.
struct MaritimeScenarioParams {
  std::vector<geom::Point2D> ports = {
      {0.0, 0.0}, {80000.0, 10000.0}, {40000.0, 60000.0}};
  /// Port index pairs forming lanes; empty = all pairs.
  std::vector<std::pair<size_t, size_t>> lanes;
  size_t num_ships = 50;
  double wanderer_fraction = 0.1;
  double ship_speed = 8.0;          ///< m/s (~16 kn).
  double speed_jitter = 1.0;        ///< m/s sigma.
  double lateral_sigma = 400.0;     ///< Cross-lane deviation (m).
  double sample_dt = 120.0;         ///< AIS period (s).
  double time_span = 4 * 3600.0;    ///< Departure stagger (s).
  uint64_t seed = 7;
};

struct ShipInfo {
  traj::ObjectId object_id = 0;
  size_t lane = 0;        ///< Index into the effective lane list.
  bool is_wanderer = false;
  double departure_time = 0.0;
};

struct MaritimeScenario {
  traj::TrajectoryStore store;
  std::vector<ShipInfo> ships;
  std::vector<std::pair<size_t, size_t>> effective_lanes;
};

StatusOr<MaritimeScenario> GenerateMaritimeScenario(
    const MaritimeScenarioParams& params);

}  // namespace hermes::datagen

#endif  // HERMES_DATAGEN_MARITIME_H_
