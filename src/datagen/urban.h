#ifndef HERMES_DATAGEN_URBAN_H_
#define HERMES_DATAGEN_URBAN_H_

#include <cstdint>

#include "common/statusor.h"
#include "traj/trajectory_store.h"

namespace hermes::datagen {

/// \brief Synthetic urban traffic: vehicles drive Manhattan routes on a
/// regular street grid — a third movement domain (the demo notes maritime
/// and urban traffic employ the same machinery as the aviation MOD).
struct UrbanScenarioParams {
  size_t grid_size = 8;        ///< Intersections per side.
  double block = 500.0;        ///< Block edge length (m).
  size_t num_vehicles = 60;
  double speed = 12.0;         ///< m/s.
  double speed_jitter = 2.0;
  double sample_dt = 5.0;
  double time_span = 1800.0;
  uint64_t seed = 11;
};

struct UrbanScenario {
  traj::TrajectoryStore store;
};

StatusOr<UrbanScenario> GenerateUrbanScenario(
    const UrbanScenarioParams& params);

}  // namespace hermes::datagen

#endif  // HERMES_DATAGEN_URBAN_H_
