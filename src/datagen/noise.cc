#include "datagen/noise.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace hermes::datagen {

Status AddNoiseTrajectories(traj::TrajectoryStore* store, size_t count,
                            const geom::Mbb3D& bounds, double speed,
                            double sample_dt, uint64_t seed,
                            traj::ObjectId first_object_id) {
  if (bounds.empty() || sample_dt <= 0.0 || speed <= 0.0) {
    return Status::InvalidArgument("bad noise parameters");
  }
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    traj::Trajectory t(first_object_id + i);
    double x = rng.Uniform(bounds.min_x, bounds.max_x);
    double y = rng.Uniform(bounds.min_y, bounds.max_y);
    double now = rng.Uniform(bounds.min_t,
                             std::max(bounds.min_t, bounds.max_t - 1.0));
    double heading = rng.Uniform(0.0, 2.0 * M_PI);
    HERMES_RETURN_NOT_OK(t.Append({x, y, now}));
    while (now + sample_dt <= bounds.max_t) {
      heading += rng.NextGaussian() * 0.5;
      x += std::cos(heading) * speed * sample_dt;
      y += std::sin(heading) * speed * sample_dt;
      now += sample_dt;
      HERMES_RETURN_NOT_OK(t.Append({x, y, now}));
      if (t.size() > 500) break;
    }
    if (t.size() >= 2) {
      auto added = store->Add(std::move(t));
      if (!added.ok()) return added.status();
    }
  }
  return Status::OK();
}

traj::TrajectoryStore MakeParallelLanes(size_t lanes, size_t per_lane,
                                        double lane_gap, double length,
                                        double speed, double sample_dt,
                                        uint64_t seed, double jitter,
                                        double start_stagger) {
  traj::TrajectoryStore store;
  Rng rng(seed);
  traj::ObjectId obj = 0;
  for (size_t lane = 0; lane < lanes; ++lane) {
    const double y = static_cast<double>(lane) * lane_gap;
    for (size_t k = 0; k < per_lane; ++k) {
      traj::Trajectory t(obj++);
      double now = start_stagger > 0.0 ? rng.Uniform(0.0, start_stagger) : 0.0;
      const int steps = std::max(2, static_cast<int>(length / (speed * sample_dt)));
      for (int i = 0; i <= steps; ++i) {
        const double x = speed * sample_dt * i;
        const double wob = (i == 0 || i == steps)
                               ? 0.0
                               : rng.NextGaussian() * jitter;
        HERMES_CHECK_OK(t.Append({x, y + wob, now}));
        now += sample_dt;
      }
      HERMES_CHECK_OK(store.Add(std::move(t)).ok()
                          ? Status::OK()
                          : Status::Internal("add failed"));
    }
  }
  return store;
}

}  // namespace hermes::datagen
