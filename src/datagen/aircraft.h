#ifndef HERMES_DATAGEN_AIRCRAFT_H_
#define HERMES_DATAGEN_AIRCRAFT_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "geom/point.h"
#include "traj/trajectory_store.h"

namespace hermes::datagen {

/// \brief One airport of the synthetic terminal area.
struct Airport {
  geom::Point2D position;       ///< Runway threshold (meters, local frame).
  double runway_heading = 0.0;  ///< Radians; aircraft land flying this way.
};

/// \brief Parameters of the synthetic terminal-area scenario that stands in
/// for the paper's (proprietary) London-area radar MOD.
///
/// The generator reproduces the structural features the demo exercises:
/// shared approach corridors (dense sub-trajectory clusters), racetrack
/// holding patterns near the approach fix (Fig. 4), a cruise phase that
/// precedes the landing phase in time (scenario 2's widening window), and
/// stray overflights (outliers).
struct AircraftScenarioParams {
  std::vector<Airport> airports;  ///< Default: two airports (LHR/LGW-like).
  size_t num_flights = 60;
  double outlier_fraction = 0.1;  ///< Stray overflights.
  double holding_probability = 0.3;
  int min_holding_loops = 1;
  int max_holding_loops = 3;

  double entry_radius = 90000.0;      ///< Cruise entry distance from fix (m).
  double fix_distance = 20000.0;      ///< Approach fix to threshold (m).
  double holding_leg = 8000.0;        ///< Racetrack straight leg (m).
  double holding_radius = 2000.0;     ///< Racetrack half-turn radius (m).
  double cruise_speed = 200.0;        ///< m/s.
  double approach_speed = 80.0;       ///< m/s on final.
  double holding_speed = 120.0;       ///< m/s in the hold.
  double sample_dt = 10.0;            ///< Radar sampling period (s).
  double time_span = 3600.0;          ///< Departure stagger window (s).
  double lateral_noise = 150.0;       ///< Cross-track jitter sigma (m).
  uint64_t seed = 42;

  /// Two-airport default terminal area (30 km apart).
  static AircraftScenarioParams Default();
};

/// \brief Metadata of one generated flight (for test oracles).
struct FlightInfo {
  traj::ObjectId object_id = 0;
  size_t airport = 0;
  bool is_outlier = false;
  bool has_holding = false;
  int holding_loops = 0;
  double departure_time = 0.0;
};

/// \brief Result of scenario generation.
struct AircraftScenario {
  traj::TrajectoryStore store;
  std::vector<FlightInfo> flights;
};

/// Generates the scenario deterministically from `params.seed`.
StatusOr<AircraftScenario> GenerateAircraftScenario(
    const AircraftScenarioParams& params);

}  // namespace hermes::datagen

#endif  // HERMES_DATAGEN_AIRCRAFT_H_
