#include "datagen/urban.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "geom/point.h"

namespace hermes::datagen {

StatusOr<UrbanScenario> GenerateUrbanScenario(
    const UrbanScenarioParams& params) {
  if (params.grid_size < 2) {
    return Status::InvalidArgument("grid must have >= 2 intersections");
  }
  UrbanScenario scenario;
  Rng rng(params.seed);
  const int64_t g = static_cast<int64_t>(params.grid_size);

  for (size_t v = 0; v < params.num_vehicles; ++v) {
    // Manhattan route between two random intersections: first along x,
    // then along y (a common simple routing model).
    int64_t x0 = static_cast<int64_t>(rng.NextBelow(g));
    int64_t y0 = static_cast<int64_t>(rng.NextBelow(g));
    int64_t x1 = static_cast<int64_t>(rng.NextBelow(g));
    int64_t y1 = static_cast<int64_t>(rng.NextBelow(g));
    if (x0 == x1 && y0 == y1) x1 = (x1 + 1) % g;

    traj::Trajectory t(v);
    double now = rng.Uniform(0.0, params.time_span);
    geom::Point2D pos{x0 * params.block, y0 * params.block};
    HERMES_CHECK_OK(t.Append({pos.x, pos.y, now}));

    auto drive_to = [&](const geom::Point2D& target) {
      const geom::Point2D d = target - pos;
      const double len = geom::Norm(d);
      if (len < 1.0) return;
      const double speed = std::max(
          3.0, params.speed + rng.NextGaussian() * params.speed_jitter);
      const double duration = len / speed;
      const int steps =
          std::max(1, static_cast<int>(duration / params.sample_dt));
      for (int i = 1; i <= steps; ++i) {
        const double u = static_cast<double>(i) / steps;
        now += duration / steps;
        HERMES_CHECK_OK(
            t.Append({pos.x + d.x * u, pos.y + d.y * u, now}));
      }
      pos = target;
    };

    drive_to({x1 * params.block, y0 * params.block});
    drive_to({x1 * params.block, y1 * params.block});

    if (t.size() >= 2) {
      HERMES_ASSIGN_OR_RETURN(traj::TrajectoryId ignored,
                              scenario.store.Add(std::move(t)));
      (void)ignored;
    }
  }
  return scenario;
}

}  // namespace hermes::datagen
