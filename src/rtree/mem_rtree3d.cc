#include "rtree/mem_rtree3d.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <iterator>

#include "exec/parallel_for.h"
#include "rtree/rtree3d.h"
#include "rtree/str_bulk_load.h"

namespace hermes::rtree {

MemRTreeNode* MemRTree3D::AllocNode() {
  if ((num_nodes_ & kNodeMask) == 0) {
    blocks_.push_back(std::make_unique<NodeBlock>());
  }
  MemRTreeNode* node =
      &(*blocks_[num_nodes_ >> kNodesPerBlockShift])[num_nodes_ & kNodeMask];
  ++num_nodes_;
  return node;
}

std::unique_ptr<MemRTree3D> MemRTree3D::BulkLoad(
    std::vector<std::pair<geom::Mbb3D, uint64_t>> items, double fill_factor,
    exec::ExecContext* ctx) {
  auto tree = std::unique_ptr<MemRTree3D>(new MemRTree3D());
  tree->num_entries_ = items.size();
  if (items.empty()) return tree;

  // Same per-node occupancy rule as the Gist bulk load: a fill-factor
  // fraction of the fanout, never below 2.
  const size_t per_node = std::max<size_t>(
      2, static_cast<size_t>(static_cast<double>(MemRTreeNode::kFanout) *
                             fill_factor));

  items = StrOrder(std::move(items), per_node, ctx);

  // Pack the leaf level from the STR run, then parent levels bottom-up
  // until one node remains. Sequential by design: the ordering above is
  // already thread-count independent, and packing is a linear sweep.
  struct LevelEntry {
    geom::Mbb3D box;
    uint64_t ref;  // Leaf datum at level 0, child ordinal above.
  };
  std::vector<LevelEntry> level;
  level.reserve(items.size());
  for (const auto& [box, datum] : items) level.push_back({box, datum});

  bool is_leaf = true;
  std::vector<LevelEntry> next;
  while (true) {
    next.clear();
    next.reserve((level.size() + per_node - 1) / per_node);
    for (size_t i = 0; i < level.size(); i += per_node) {
      const size_t end = std::min(i + per_node, level.size());
      const size_t ordinal = tree->num_nodes_;
      MemRTreeNode* node = tree->AllocNode();
      node->is_leaf = is_leaf;
      node->count = static_cast<uint16_t>(end - i);
      geom::Mbb3D cover;
      for (size_t j = i; j < end; ++j) {
        node->bounds[j - i] = level[j].box;
        node->child[j - i] = level[j].ref;
        cover.Extend(level[j].box);
      }
      next.push_back({cover, ordinal});
    }
    ++tree->height_;
    if (next.size() == 1) {
      tree->root_ = next[0].ref;
      break;
    }
    level.swap(next);
    is_leaf = false;
  }
  return tree;
}

void MemRTree3D::SearchInto(const geom::Mbb3D& box, QueryMode mode,
                            std::vector<uint64_t>* out) const {
  out->clear();
  if (num_nodes_ == 0) return;

  // Internal keys may only prune: every predicate needs intersection —
  // except kContains, which needs the subtree box to cover the query.
  // Mirrors RTreeOpClass::Consistent so hot and cold probes agree.
  auto internal_consistent = [&](const geom::Mbb3D& b) {
    if (mode == QueryMode::kContains) return b.Contains(box);
    return b.Intersects(box);
  };
  auto leaf_consistent = [&](const geom::Mbb3D& b) {
    switch (mode) {
      case QueryMode::kIntersects:
        return b.Intersects(box);
      case QueryMode::kContainedBy:
        return box.Contains(b);
      case QueryMode::kContains:
        return b.Contains(box);
    }
    return false;
  };

  // Iterative DFS. Popping a node frees one slot and pushes at most
  // kFanout children, once per internal level, so worst-case occupancy
  // is 1 + (height - 1) * (kFanout - 1). An inline buffer covers trees
  // up to height 5; deeper ones (> ~500k entries at the default fill
  // factor) spill the stack to the heap.
  size_t inline_buf[64];
  std::vector<size_t> heap_buf;
  size_t* stack_buf = inline_buf;
  const size_t capacity =
      1 + static_cast<size_t>(height_ > 0 ? height_ - 1 : 0) *
              (MemRTreeNode::kFanout - 1);
  if (capacity > std::size(inline_buf)) {
    heap_buf.resize(capacity);
    stack_buf = heap_buf.data();
  }
  size_t depth = 0;
  stack_buf[depth++] = root_;
  while (depth > 0) {
    const MemRTreeNode& node = NodeAt(stack_buf[--depth]);
    for (size_t i = 0; i < node.count; ++i) {
      if (node.is_leaf) {
        if (leaf_consistent(node.bounds[i])) out->push_back(node.child[i]);
      } else if (internal_consistent(node.bounds[i])) {
        assert(depth < capacity);
        stack_buf[depth++] = node.child[i];
      }
    }
  }
}

size_t MemRTree3D::bytes() const {
  return blocks_.size() * sizeof(NodeBlock) +
         blocks_.capacity() * sizeof(blocks_[0]) + sizeof(*this);
}

uint64_t MemRTree3D::Fingerprint() const {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis.
  auto mix = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  auto mix_double = [&](double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  mix(num_nodes_);
  mix(num_entries_);
  mix(root_);
  mix(height_);
  for (size_t n = 0; n < num_nodes_; ++n) {
    const MemRTreeNode& node = NodeAt(n);
    mix(node.is_leaf ? 1 : 0);
    mix(node.count);
    for (size_t i = 0; i < node.count; ++i) {
      const geom::Mbb3D& b = node.bounds[i];
      mix_double(b.min_x);
      mix_double(b.min_y);
      mix_double(b.min_t);
      mix_double(b.max_x);
      mix_double(b.max_y);
      mix_double(b.max_t);
      mix(node.child[i]);
    }
  }
  return h;
}

Status MemRTree3D::Validate() const {
  if (num_nodes_ == 0) {
    if (num_entries_ != 0 || height_ != 0) {
      return Status::Corruption("empty mem rtree with entries/height");
    }
    return Status::OK();
  }
  size_t entries = 0;
  Status status = Status::OK();
  // (ordinal, depth) DFS; all leaves must sit at depth height_ - 1.
  std::vector<std::pair<size_t, uint32_t>> stack{{root_, 0}};
  std::vector<bool> seen(num_nodes_, false);
  while (!stack.empty() && status.ok()) {
    auto [ordinal, d] = stack.back();
    stack.pop_back();
    if (ordinal >= num_nodes_) {
      return Status::Corruption("child ordinal out of range");
    }
    if (seen[ordinal]) return Status::Corruption("node reachable twice");
    seen[ordinal] = true;
    const MemRTreeNode& node = NodeAt(ordinal);
    if (node.count == 0 || node.count > MemRTreeNode::kFanout) {
      return Status::Corruption("node entry count out of range");
    }
    if (node.is_leaf) {
      if (d + 1 != height_) return Status::Corruption("leaf at wrong depth");
      entries += node.count;
      continue;
    }
    for (size_t i = 0; i < node.count; ++i) {
      const size_t child = node.child[i];
      if (child >= num_nodes_) {
        return Status::Corruption("child ordinal out of range");
      }
      const MemRTreeNode& c = NodeAt(child);
      geom::Mbb3D cover;
      for (size_t j = 0; j < c.count; ++j) cover.Extend(c.bounds[j]);
      if (!node.bounds[i].Contains(cover)) {
        return Status::Corruption("parent box does not cover child union");
      }
      stack.push_back({child, d + 1});
    }
  }
  if (entries != num_entries_) {
    return Status::Corruption("entry count mismatch");
  }
  return status;
}

std::unique_ptr<MemRTree3D> BuildMemSegmentIndex(
    const traj::SegmentArena& arena, double fill_factor,
    exec::ExecContext* ctx) {
  std::vector<std::pair<geom::Mbb3D, uint64_t>> items(arena.num_segments());
  // Row order is the arena's append order — a pure function of the store
  // content — and every row writes its own pre-sized slot, so the item
  // list is identical at any thread count.
  exec::ParallelFor(ctx, arena.num_segments(), /*grain=*/1024,
                    [&](size_t begin, size_t end, size_t /*chunk*/) {
                      for (size_t r = begin; r < end; ++r) {
                        items[r] = {arena.BoundsOf(r),
                                    PackSegmentRef(arena.RefOf(r))};
                      }
                    });
  return MemRTree3D::BulkLoad(std::move(items), fill_factor, ctx);
}

}  // namespace hermes::rtree
