#ifndef HERMES_RTREE_RTREE3D_H_
#define HERMES_RTREE_RTREE3D_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "exec/exec_context.h"
#include "geom/mbb.h"
#include "geom/point.h"
#include "gist/gist.h"
#include "rtree/rtree_opclass.h"
#include "storage/env.h"

namespace hermes::rtree {

/// \brief One search hit: the indexed box and the caller's datum.
struct RTreeHit {
  geom::Mbb3D box;
  uint64_t datum = 0;
};

/// \brief Typed convenience facade over the GiST + pg3D-Rtree opclass: the
/// index Hermes builds over trajectory segments and partition members.
class RTree3D {
 public:
  /// Opens or creates an index file.
  static StatusOr<std::unique_ptr<RTree3D>> Open(storage::Env* env,
                                                 const std::string& fname,
                                                 size_t cache_pages = 256);

  Status Insert(const geom::Mbb3D& box, uint64_t datum);
  Status Remove(const geom::Mbb3D& box, uint64_t datum);

  /// Datums of all entries matching (`box`, `mode`).
  StatusOr<std::vector<uint64_t>> Search(
      const geom::Mbb3D& box, QueryMode mode = QueryMode::kIntersects) const;

  /// Allocation-free variant for hot loops: clears and refills `out`
  /// (capacity is reused across calls).
  Status SearchInto(const geom::Mbb3D& box, QueryMode mode,
                    std::vector<uint64_t>* out) const;

  /// Like `Search` but returning the stored boxes too.
  StatusOr<std::vector<RTreeHit>> SearchHits(
      const geom::Mbb3D& box, QueryMode mode = QueryMode::kIntersects) const;

  /// \brief k nearest entries to `p` by MINDIST over (x, y, t·time_scale):
  /// best-first descent over the GiST nodes. `time_scale` converts seconds
  /// into meters-equivalent so the 3 axes are commensurable.
  StatusOr<std::vector<RTreeHit>> Knn(const geom::Point3D& p, size_t k,
                                      double time_scale = 1.0) const;

  /// Bulk load (STR order is produced by `StrBulkLoad`).
  Status BulkLoad(const std::vector<std::pair<geom::Mbb3D, uint64_t>>& items,
                  double fill_factor = 0.9);

  uint64_t num_entries() const { return gist_->num_entries(); }
  uint32_t height() const { return gist_->height(); }
  Status Validate() const { return gist_->Validate(); }
  Status Flush() { return gist_->Flush(); }

  gist::GistStats stats() const { return gist_->stats(); }
  void ResetStats() { gist_->ResetStats(); }
  storage::PagerStats io_stats() const { return gist_->io_stats(); }
  storage::LockStats lock_stats() const { return gist_->lock_stats(); }

 private:
  explicit RTree3D(std::unique_ptr<gist::Gist> tree) : gist_(std::move(tree)) {}

  std::unique_ptr<gist::Gist> gist_;
};

/// \brief Sort-Tile-Recursive ordering (Leutenegger et al.): returns the
/// items reordered so consecutive runs form spatially compact leaves.
///
/// The exec-aware overload parallelizes the sort phases (the global x-sort
/// and the per-slab y/t sorts) over `ctx`. Comparators tie-break on the
/// datum, so the ordering is deterministic at any thread count.
std::vector<std::pair<geom::Mbb3D, uint64_t>> StrOrder(
    std::vector<std::pair<geom::Mbb3D, uint64_t>> items, size_t leaf_capacity,
    exec::ExecContext* ctx);

inline std::vector<std::pair<geom::Mbb3D, uint64_t>> StrOrder(
    std::vector<std::pair<geom::Mbb3D, uint64_t>> items,
    size_t leaf_capacity) {
  return StrOrder(std::move(items), leaf_capacity, nullptr);
}

}  // namespace hermes::rtree

#endif  // HERMES_RTREE_RTREE3D_H_
