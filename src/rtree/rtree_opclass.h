#ifndef HERMES_RTREE_RTREE_OPCLASS_H_
#define HERMES_RTREE_RTREE_OPCLASS_H_

#include <string>

#include "geom/mbb.h"
#include "gist/gist.h"

namespace hermes::rtree {

/// Search predicates supported by the pg3D-Rtree operator class.
enum class QueryMode : uint8_t {
  kIntersects = 0,   ///< Leaf key intersects the query box.
  kContainedBy = 1,  ///< Leaf key lies inside the query box.
  kContains = 2,     ///< Leaf key contains the query box.
};

/// \brief On-the-wire query for `GistOpClass::Consistent`: a 3D box plus a
/// predicate byte.
struct RTreeQuery {
  geom::Mbb3D box;
  QueryMode mode = QueryMode::kIntersects;
};

/// Serializes an Mbb3D into the fixed 48-byte GiST key representation.
std::string EncodeKey(const geom::Mbb3D& box);
/// Writes the 48-byte key into `out` (no allocation).
void EncodeKeyTo(const geom::Mbb3D& box, char* out);
/// Reads a key back into an Mbb3D.
geom::Mbb3D DecodeKey(const void* key);

/// \brief The pg3D-Rtree operator class: Guttman's R-tree mapped onto the
/// six GiST extension points over 3D (x, y, t) boxes. Quadratic PickSplit,
/// volume-enlargement penalty with volume tie-break.
///
/// This mirrors the paper's "pg3D-Rtree ... implemented from scratch on top
/// of GiST", independent of any PostGIS-like geometry stack.
class RTreeOpClass : public gist::GistOpClass {
 public:
  size_t KeySize() const override { return 6 * sizeof(double); }

  bool Consistent(const void* key, const void* query,
                  bool is_leaf) const override;
  void UnionInPlace(void* dst, const void* src) const override;
  double Penalty(const void* existing, const void* incoming) const override;
  void PickSplit(const std::vector<const void*>& keys,
                 std::vector<bool>* to_right) const override;
  bool Covers(const void* parent, const void* child) const override;
  std::string KeyToString(const void* key) const override;

  /// Process-wide instance (stateless).
  static const RTreeOpClass* Instance();
};

}  // namespace hermes::rtree

#endif  // HERMES_RTREE_RTREE_OPCLASS_H_
