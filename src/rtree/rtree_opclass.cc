#include "rtree/rtree_opclass.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace hermes::rtree {

std::string EncodeKey(const geom::Mbb3D& box) {
  std::string out(6 * sizeof(double), '\0');
  EncodeKeyTo(box, out.data());
  return out;
}

void EncodeKeyTo(const geom::Mbb3D& box, char* out) {
  double vals[6] = {box.min_x, box.min_y, box.min_t,
                    box.max_x, box.max_y, box.max_t};
  std::memcpy(out, vals, sizeof(vals));
}

geom::Mbb3D DecodeKey(const void* key) {
  double vals[6];
  std::memcpy(vals, key, sizeof(vals));
  return geom::Mbb3D(vals[0], vals[1], vals[2], vals[3], vals[4], vals[5]);
}

bool RTreeOpClass::Consistent(const void* key, const void* query,
                              bool is_leaf) const {
  const auto* q = static_cast<const RTreeQuery*>(query);
  const geom::Mbb3D box = DecodeKey(key);
  if (!is_leaf) {
    // Internal keys may only prune: every predicate needs intersection —
    // except kContains, which needs the subtree box to cover the query.
    if (q->mode == QueryMode::kContains) return box.Contains(q->box);
    return box.Intersects(q->box);
  }
  switch (q->mode) {
    case QueryMode::kIntersects:
      return box.Intersects(q->box);
    case QueryMode::kContainedBy:
      return q->box.Contains(box);
    case QueryMode::kContains:
      return box.Contains(q->box);
  }
  return false;
}

void RTreeOpClass::UnionInPlace(void* dst, const void* src) const {
  geom::Mbb3D a = DecodeKey(dst);
  a.Extend(DecodeKey(src));
  EncodeKeyTo(a, static_cast<char*>(dst));
}

double RTreeOpClass::Penalty(const void* existing, const void* incoming) const {
  const geom::Mbb3D e = DecodeKey(existing);
  const geom::Mbb3D in = DecodeKey(incoming);
  const double enlargement = e.UnionVolume(in) - e.Volume();
  // Tie-break on the resulting volume so equal enlargements prefer the
  // smaller box (Guttman's ChooseLeaf refinement).
  return enlargement * 1e6 + e.Volume() * 1e-6;
}

void RTreeOpClass::PickSplit(const std::vector<const void*>& keys,
                             std::vector<bool>* to_right) const {
  const size_t n = keys.size();
  to_right->assign(n, false);
  if (n < 2) return;

  std::vector<geom::Mbb3D> boxes;
  boxes.reserve(n);
  for (const void* k : keys) boxes.push_back(DecodeKey(k));

  // Quadratic PickSeeds: the pair wasting the most volume.
  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double waste =
          boxes[i].UnionVolume(boxes[j]) - boxes[i].Volume() -
          boxes[j].Volume();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  geom::Mbb3D left = boxes[seed_a];
  geom::Mbb3D right = boxes[seed_b];
  (*to_right)[seed_a] = false;
  (*to_right)[seed_b] = true;
  size_t left_count = 1, right_count = 1;
  const size_t min_fill = std::max<size_t>(1, n * 2 / 5);  // 40% min fill.

  std::vector<bool> assigned(n, false);
  assigned[seed_a] = assigned[seed_b] = true;

  for (size_t step = 2; step < n; ++step) {
    // If one side must take everything left to reach min fill, do so.
    const size_t remaining = n - step;
    if (left_count + remaining <= min_fill) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          assigned[i] = true;
          (*to_right)[i] = false;
          ++left_count;
        }
      }
      break;
    }
    if (right_count + remaining <= min_fill) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          assigned[i] = true;
          (*to_right)[i] = true;
          ++right_count;
        }
      }
      break;
    }

    // PickNext: the entry with the greatest preference for one side.
    size_t best = n;
    double best_diff = -1.0;
    double best_dl = 0.0, best_dr = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      const double dl = left.UnionVolume(boxes[i]) - left.Volume();
      const double dr = right.UnionVolume(boxes[i]) - right.Volume();
      const double diff = std::fabs(dl - dr);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
        best_dl = dl;
        best_dr = dr;
      }
    }
    assigned[best] = true;
    bool go_right;
    if (best_dl < best_dr) {
      go_right = false;
    } else if (best_dr < best_dl) {
      go_right = true;
    } else {
      go_right = right.Volume() < left.Volume();
    }
    (*to_right)[best] = go_right;
    if (go_right) {
      right.Extend(boxes[best]);
      ++right_count;
    } else {
      left.Extend(boxes[best]);
      ++left_count;
    }
  }
}

bool RTreeOpClass::Covers(const void* parent, const void* child) const {
  return DecodeKey(parent).Contains(DecodeKey(child));
}

std::string RTreeOpClass::KeyToString(const void* key) const {
  return DecodeKey(key).ToString();
}

const RTreeOpClass* RTreeOpClass::Instance() {
  static const RTreeOpClass* instance = new RTreeOpClass();
  return instance;
}

}  // namespace hermes::rtree
