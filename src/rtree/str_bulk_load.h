#ifndef HERMES_RTREE_STR_BULK_LOAD_H_
#define HERMES_RTREE_STR_BULK_LOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "exec/exec_context.h"
#include "rtree/rtree3d.h"
#include "storage/env.h"
#include "traj/segment_arena.h"
#include "traj/trajectory_store.h"

namespace hermes::rtree {

/// \brief Datum encoding for segment indexes: trajectory id in the high 32
/// bits, segment index in the low 32.
inline uint64_t PackSegmentRef(const traj::SegmentRef& ref) {
  return (ref.trajectory << 32) | ref.segment_index;
}
inline traj::SegmentRef UnpackSegmentRef(uint64_t datum) {
  return {datum >> 32, static_cast<uint32_t>(datum & 0xFFFFFFFFu)};
}

/// \brief Builds a segment-level pg3D-Rtree over a columnar arena snapshot
/// using STR bulk loading (the fast index-construction path used when the
/// scenario-2 baseline re-indexes a range-query result). Item collection
/// and the STR sort phases fan out over `ctx`.
StatusOr<std::unique_ptr<RTree3D>> BuildSegmentIndex(
    storage::Env* env, const std::string& fname,
    const traj::SegmentArena& arena, double fill_factor = 0.9,
    size_t cache_pages = 512, exec::ExecContext* ctx = nullptr);

/// Store-walking convenience: snapshots an arena, then builds from it.
StatusOr<std::unique_ptr<RTree3D>> BuildSegmentIndex(
    storage::Env* env, const std::string& fname,
    const traj::TrajectoryStore& store, double fill_factor = 0.9,
    size_t cache_pages = 512);

/// \brief Same, via one-at-a-time inserts (the maintenance path); used to
/// compare insert vs bulk-load build costs.
StatusOr<std::unique_ptr<RTree3D>> BuildSegmentIndexByInsert(
    storage::Env* env, const std::string& fname,
    const traj::TrajectoryStore& store, size_t cache_pages = 512);

}  // namespace hermes::rtree

#endif  // HERMES_RTREE_STR_BULK_LOAD_H_
