#include "rtree/str_bulk_load.h"

#include "exec/parallel_for.h"
#include "gist/gist_page.h"

namespace hermes::rtree {

namespace {
std::vector<std::pair<geom::Mbb3D, uint64_t>> CollectSegments(
    const traj::SegmentArena& arena, exec::ExecContext* ctx) {
  std::vector<std::pair<geom::Mbb3D, uint64_t>> items(arena.num_segments());
  constexpr size_t kGrain = 1024;
  exec::ParallelFor(ctx, arena.num_segments(), kGrain,
                    [&](size_t begin, size_t end, size_t /*chunk*/) {
    for (size_t r = begin; r < end; ++r) {
      items[r] = {arena.BoundsOf(r), PackSegmentRef(arena.RefOf(r))};
    }
  });
  return items;
}

size_t LeafCapacity(double fill_factor) {
  const size_t key_entry = 48 + 8;
  const size_t capacity =
      (storage::kPageSize - gist::GistNodeView::kHeaderSize) / key_entry;
  return std::max<size_t>(2, static_cast<size_t>(capacity * fill_factor));
}
}  // namespace

StatusOr<std::unique_ptr<RTree3D>> BuildSegmentIndex(
    storage::Env* env, const std::string& fname,
    const traj::SegmentArena& arena, double fill_factor, size_t cache_pages,
    exec::ExecContext* ctx) {
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<RTree3D> index,
                          RTree3D::Open(env, fname, cache_pages));
  auto items = CollectSegments(arena, ctx);
  items = StrOrder(std::move(items), LeafCapacity(fill_factor), ctx);
  HERMES_RETURN_NOT_OK(index->BulkLoad(items, fill_factor));
  // Write the finished tree through to the file: the parallel voting
  // probe opens additional read-only handles over it, which must not see
  // pages still sitting dirty in this handle's buffer pool.
  HERMES_RETURN_NOT_OK(index->Flush());
  return index;
}

StatusOr<std::unique_ptr<RTree3D>> BuildSegmentIndex(
    storage::Env* env, const std::string& fname,
    const traj::TrajectoryStore& store, double fill_factor,
    size_t cache_pages) {
  const traj::SegmentArena arena = traj::SegmentArena::Build(store);
  return BuildSegmentIndex(env, fname, arena, fill_factor, cache_pages,
                           nullptr);
}

StatusOr<std::unique_ptr<RTree3D>> BuildSegmentIndexByInsert(
    storage::Env* env, const std::string& fname,
    const traj::TrajectoryStore& store, size_t cache_pages) {
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<RTree3D> index,
                          RTree3D::Open(env, fname, cache_pages));
  const traj::SegmentArena arena = traj::SegmentArena::Build(store);
  for (size_t r = 0; r < arena.num_segments(); ++r) {
    HERMES_RETURN_NOT_OK(
        index->Insert(arena.BoundsOf(r), PackSegmentRef(arena.RefOf(r))));
  }
  return index;
}

}  // namespace hermes::rtree
