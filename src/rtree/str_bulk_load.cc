#include "rtree/str_bulk_load.h"

#include "gist/gist_page.h"

namespace hermes::rtree {

namespace {
std::vector<std::pair<geom::Mbb3D, uint64_t>> CollectSegments(
    const traj::TrajectoryStore& store) {
  std::vector<std::pair<geom::Mbb3D, uint64_t>> items;
  items.reserve(store.NumSegments());
  for (traj::TrajectoryId tid = 0; tid < store.NumTrajectories(); ++tid) {
    const traj::Trajectory& t = store.Get(tid);
    for (size_t i = 0; i < t.NumSegments(); ++i) {
      items.emplace_back(
          t.SegmentAt(i).Bounds(),
          PackSegmentRef({tid, static_cast<uint32_t>(i)}));
    }
  }
  return items;
}
}  // namespace

StatusOr<std::unique_ptr<RTree3D>> BuildSegmentIndex(
    storage::Env* env, const std::string& fname,
    const traj::TrajectoryStore& store, double fill_factor,
    size_t cache_pages) {
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<RTree3D> index,
                          RTree3D::Open(env, fname, cache_pages));
  auto items = CollectSegments(store);
  const size_t key_entry = 48 + 8;
  const size_t capacity =
      (storage::kPageSize - gist::GistNodeView::kHeaderSize) / key_entry;
  const size_t leaf_cap =
      std::max<size_t>(2, static_cast<size_t>(capacity * fill_factor));
  items = StrOrder(std::move(items), leaf_cap);
  HERMES_RETURN_NOT_OK(index->BulkLoad(items, fill_factor));
  return index;
}

StatusOr<std::unique_ptr<RTree3D>> BuildSegmentIndexByInsert(
    storage::Env* env, const std::string& fname,
    const traj::TrajectoryStore& store, size_t cache_pages) {
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<RTree3D> index,
                          RTree3D::Open(env, fname, cache_pages));
  for (const auto& [box, datum] : CollectSegments(store)) {
    HERMES_RETURN_NOT_OK(index->Insert(box, datum));
  }
  return index;
}

}  // namespace hermes::rtree
