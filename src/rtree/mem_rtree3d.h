#ifndef HERMES_RTREE_MEM_RTREE3D_H_
#define HERMES_RTREE_MEM_RTREE3D_H_

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "geom/mbb.h"
#include "rtree/rtree_opclass.h"
#include "traj/segment_arena.h"

namespace hermes::rtree {

/// \brief One fixed-fanout node of the in-memory pg3D R-tree. Nodes live
/// in fixed-capacity blocks bump-allocated by `MemRTree3D` (matras-style):
/// a block is never relocated after allocation, so readers traversing a
/// published tree never chase moved pointers.
struct MemRTreeNode {
  static constexpr size_t kFanout = 16;

  std::array<geom::Mbb3D, kFanout> bounds;
  /// Leaf: the caller's datum. Internal: the child node's ordinal.
  std::array<uint64_t, kFanout> child;
  uint16_t count = 0;
  bool is_leaf = true;
};

/// \brief Arena-backed in-memory pg3D R-tree — the hot tier in front of
/// the file-backed `Gist` (see docs/ARCHITECTURE.md "Hot/cold index
/// tiers").
///
/// Construction is bulk-load only: `BulkLoad` orders the items with the
/// same exec-aware `StrOrder` the on-disk STR path uses (datum tie-breaks
/// make the order a pure function of the item set), then packs nodes
/// bottom-up into bump-allocated blocks — so the node layout is
/// bit-identical at any thread count (`Fingerprint` locks this down in
/// tests). After `BulkLoad` returns the tree is immutable; `SearchInto`
/// is const, touches no mutable state, and takes no lock, so any number
/// of readers may probe one published tree concurrently.
///
/// `SearchInto` mirrors `RTreeOpClass::Consistent` exactly (closed boxes;
/// internal nodes prune on intersection except `kContains`, which needs
/// the subtree box to cover the query), so a hot probe and a Gist probe
/// over the same items return the same candidate set.
class MemRTree3D {
 public:
  /// Builds a tree over `items` (consumed). `ctx` parallelizes the STR
  /// sort phases; the resulting layout does not depend on it.
  static std::unique_ptr<MemRTree3D> BulkLoad(
      std::vector<std::pair<geom::Mbb3D, uint64_t>> items,
      double fill_factor = 0.9, exec::ExecContext* ctx = nullptr);

  /// Datums of all entries matching (`box`, `mode`), appended to `out`
  /// (cleared first). Lock-free; safe for concurrent readers.
  void SearchInto(const geom::Mbb3D& box, QueryMode mode,
                  std::vector<uint64_t>* out) const;

  size_t num_entries() const { return num_entries_; }
  uint32_t height() const { return height_; }
  size_t num_nodes() const { return num_nodes_; }
  /// Heap footprint of the node arena (what `hermes.hot_index_budget`
  /// accounts against).
  size_t bytes() const;

  /// FNV-1a hash over the complete node layout (flags, counts, key bit
  /// patterns, datums/child ordinals, in node order) — equal fingerprints
  /// mean bit-identical trees, which is how the determinism tests assert
  /// thread-count independence of the bulk load.
  uint64_t Fingerprint() const;

  /// Structural invariants: parent boxes cover child unions, counts in
  /// range, entry total matches, all leaves at the same depth.
  Status Validate() const;

 private:
  static constexpr size_t kNodesPerBlockShift = 6;
  static constexpr size_t kNodesPerBlock = size_t{1} << kNodesPerBlockShift;
  static constexpr size_t kNodeMask = kNodesPerBlock - 1;
  using NodeBlock = std::array<MemRTreeNode, kNodesPerBlock>;

  MemRTree3D() = default;

  MemRTreeNode* AllocNode();
  const MemRTreeNode& NodeAt(size_t ordinal) const {
    return (*blocks_[ordinal >> kNodesPerBlockShift])[ordinal & kNodeMask];
  }

  std::vector<std::unique_ptr<NodeBlock>> blocks_;
  size_t num_nodes_ = 0;
  size_t num_entries_ = 0;
  size_t root_ = 0;
  uint32_t height_ = 0;  ///< 0 = empty, 1 = root is a leaf.
};

/// \brief Builds a segment-level hot index straight from a `SegmentArena`
/// epoch: items are gathered from the column blocks in row order (fanned
/// out over `ctx` into pre-sized slots, so the item list — and hence the
/// tree — is identical at any thread count), datums are
/// `PackSegmentRef(arena.RefOf(r))`.
std::unique_ptr<MemRTree3D> BuildMemSegmentIndex(
    const traj::SegmentArena& arena, double fill_factor = 0.9,
    exec::ExecContext* ctx = nullptr);

}  // namespace hermes::rtree

#endif  // HERMES_RTREE_MEM_RTREE3D_H_
