#include "rtree/rtree3d.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "exec/parallel_for.h"
#include "exec/parallel_sort.h"

namespace hermes::rtree {

StatusOr<std::unique_ptr<RTree3D>> RTree3D::Open(storage::Env* env,
                                                 const std::string& fname,
                                                 size_t cache_pages) {
  HERMES_ASSIGN_OR_RETURN(
      std::unique_ptr<gist::Gist> tree,
      gist::Gist::Open(env, fname, RTreeOpClass::Instance(), cache_pages));
  return std::unique_ptr<RTree3D>(new RTree3D(std::move(tree)));
}

Status RTree3D::Insert(const geom::Mbb3D& box, uint64_t datum) {
  char key[48];
  EncodeKeyTo(box, key);
  return gist_->Insert(key, datum);
}

Status RTree3D::Remove(const geom::Mbb3D& box, uint64_t datum) {
  char key[48];
  EncodeKeyTo(box, key);
  return gist_->Delete(key, datum);
}

StatusOr<std::vector<uint64_t>> RTree3D::Search(const geom::Mbb3D& box,
                                                QueryMode mode) const {
  std::vector<uint64_t> out;
  HERMES_RETURN_NOT_OK(SearchInto(box, mode, &out));
  return out;
}

Status RTree3D::SearchInto(const geom::Mbb3D& box, QueryMode mode,
                           std::vector<uint64_t>* out) const {
  out->clear();
  RTreeQuery query{box, mode};
  return gist_->Search(&query, [out](const void*, uint64_t d) {
    out->push_back(d);
    return true;
  });
}

StatusOr<std::vector<RTreeHit>> RTree3D::SearchHits(const geom::Mbb3D& box,
                                                    QueryMode mode) const {
  std::vector<RTreeHit> out;
  RTreeQuery query{box, mode};
  HERMES_RETURN_NOT_OK(
      gist_->Search(&query, [&](const void* key, uint64_t d) {
        out.push_back({DecodeKey(key), d});
        return true;
      }));
  return out;
}

namespace {
/// Squared MINDIST from a (scaled) point to a (scaled) box.
double MinDistSq(const geom::Point3D& p, const geom::Mbb3D& b,
                 double time_scale) {
  auto axis = [](double v, double lo, double hi) {
    if (v < lo) return lo - v;
    if (v > hi) return v - hi;
    return 0.0;
  };
  const double dx = axis(p.x, b.min_x, b.max_x);
  const double dy = axis(p.y, b.min_y, b.max_y);
  const double dt = axis(p.t, b.min_t, b.max_t) * time_scale;
  return dx * dx + dy * dy + dt * dt;
}
}  // namespace

StatusOr<std::vector<RTreeHit>> RTree3D::Knn(const geom::Point3D& p, size_t k,
                                             double time_scale) const {
  std::vector<RTreeHit> out;
  if (k == 0 || gist_->empty()) return out;

  struct QueueItem {
    double dist;
    bool is_entry;  // True: a leaf entry; false: a node to expand.
    storage::PageId page;
    RTreeHit hit;
  };
  auto cmp = [](const QueueItem& a, const QueueItem& b) {
    return a.dist > b.dist;
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> pq(cmp);
  pq.push({0.0, false, gist_->root(), {}});

  while (!pq.empty() && out.size() < k) {
    QueueItem item = pq.top();
    pq.pop();
    if (item.is_entry) {
      out.push_back(item.hit);
      continue;
    }
    HERMES_ASSIGN_OR_RETURN(gist::Gist::NodeSnapshot node,
                            gist_->ReadNode(item.page));
    for (size_t i = 0; i < node.keys.size(); ++i) {
      const geom::Mbb3D box = DecodeKey(node.keys[i].data());
      const double d = MinDistSq(p, box, time_scale);
      if (node.is_leaf) {
        pq.push({d, true, 0, {box, node.datums[i]}});
      } else {
        pq.push({d, false,
                 static_cast<storage::PageId>(node.datums[i]),
                 {}});
      }
    }
  }
  return out;
}

Status RTree3D::BulkLoad(
    const std::vector<std::pair<geom::Mbb3D, uint64_t>>& items,
    double fill_factor) {
  std::vector<std::pair<std::string, uint64_t>> encoded;
  encoded.reserve(items.size());
  for (const auto& [box, datum] : items) {
    encoded.emplace_back(EncodeKey(box), datum);
  }
  return gist_->BulkLoad(encoded, fill_factor);
}

std::vector<std::pair<geom::Mbb3D, uint64_t>> StrOrder(
    std::vector<std::pair<geom::Mbb3D, uint64_t>> items, size_t leaf_capacity,
    exec::ExecContext* ctx) {
  if (items.size() <= leaf_capacity || leaf_capacity == 0) return items;
  const double n = static_cast<double>(items.size());
  const double leaves = std::ceil(n / static_cast<double>(leaf_capacity));
  // Tile counts: split x into s slabs, each slab into s2 runs of y, sorted
  // by t within — the 3D STR generalization.
  const size_t s1 = static_cast<size_t>(std::ceil(std::cbrt(leaves)));
  const size_t s2 = s1;

  // Comparators tie-break on the datum so the order (and hence the tree
  // layout) is a pure function of the item set, independent of the sort
  // algorithm and thread count.
  auto center = [](const geom::Mbb3D& b) { return b.Center(); };
  auto by_axis = [&](auto axis) {
    return [&, axis](const auto& a, const auto& b) {
      const double ca = axis(center(a.first));
      const double cb = axis(center(b.first));
      if (ca != cb) return ca < cb;
      return a.second < b.second;
    };
  };
  exec::ParallelSort(ctx, items.begin(), items.end(),
                     by_axis([](const geom::Point3D& p) { return p.x; }));
  const size_t slab =
      (items.size() + s1 - 1) / s1;  // Items per x-slab (ceil).
  const size_t num_slabs = (items.size() + slab - 1) / slab;
  // Slabs are disjoint ranges; sorting them is embarrassingly parallel.
  exec::ParallelFor(ctx, num_slabs, /*grain=*/1,
                    [&](size_t sbegin, size_t send, size_t /*chunk*/) {
    for (size_t s = sbegin; s < send; ++s) {
      const size_t i = s * slab;
      const size_t end = std::min(i + slab, items.size());
      std::sort(items.begin() + i, items.begin() + end,
                by_axis([](const geom::Point3D& p) { return p.y; }));
      const size_t run = (end - i + s2 - 1) / s2;
      for (size_t j = i; j < end; j += run) {
        const size_t rend = std::min(j + run, end);
        std::sort(items.begin() + j, items.begin() + rend,
                  by_axis([](const geom::Point3D& p) { return p.t; }));
      }
    }
  });
  return items;
}

}  // namespace hermes::rtree
