#ifndef HERMES_WAL_WAL_H_
#define HERMES_WAL_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "storage/env.h"

namespace hermes::wal {

/// \brief What one WAL record describes. Values are part of the on-disk
/// format — append only, never renumber.
enum class RecordType : uint8_t {
  kCreateMod = 1,   ///< payload: mod name
  kDropMod = 2,     ///< payload: mod name
  kInsertBatch = 3, ///< payload: mod name + encoded trajectory batch
  kSwapStore = 4,   ///< payload: mod name + encoded full store contents
};

/// \brief One decoded WAL record.
struct Record {
  uint64_t lsn = 0;
  RecordType type = RecordType::kInsertBatch;
  std::string payload;
};

/// Segment file name for id `n` (e.g. "wal_000007.log").
std::string SegmentFileName(uint64_t id);
/// Parses a segment file name back to its id; false when `name` is not a
/// WAL segment.
bool ParseSegmentFileName(const std::string& name, uint64_t* id);

/// \brief Appender over one WAL segment file.
///
/// Record layout (all little-endian):
///
///     u32 len      bytes from `crc` to the end of the payload
///     u32 crc      CRC-32 over [lsn, type, payload]
///     u64 lsn      monotonic sequence number, continues across segments
///     u8  type     RecordType
///     ...payload
///
/// `Append` assigns the LSN and writes the record at the running end
/// offset; it does NOT sync. `Sync` is the durability barrier — group
/// commit is N appends followed by one `Sync`. Both are internally
/// locked, so the ingest worker and DDL paths may share one writer (the
/// service layer additionally serializes append→apply windows to keep
/// WAL order equal to apply order; see service::Server).
class Writer {
 public:
  /// Creates (or truncating-overwrites via delete) segment `segment_id`
  /// under `dir`. `next_lsn` seeds the LSN counter — recovery passes
  /// last-replayed + 1 so LSNs never repeat across restarts.
  static StatusOr<std::unique_ptr<Writer>> Open(storage::Env* env,
                                                const std::string& dir,
                                                uint64_t segment_id,
                                                uint64_t next_lsn);

  /// Appends one record; returns its LSN. Not yet durable until `Sync`.
  StatusOr<uint64_t> Append(RecordType type, const std::string& payload);

  /// Durability barrier over everything appended so far.
  Status Sync();

  uint64_t segment_id() const { return segment_id_; }
  /// LSN the next `Append` will assign.
  uint64_t next_lsn() const;
  /// Bytes appended to this segment (records, not counting failures).
  uint64_t bytes_appended() const;

 private:
  Writer(std::unique_ptr<storage::RandomRWFile> file, uint64_t segment_id,
         uint64_t next_lsn)
      : file_(std::move(file)), segment_id_(segment_id), next_lsn_(next_lsn) {}

  mutable common::Mutex mu_;
  std::unique_ptr<storage::RandomRWFile> file_ GUARDED_BY(mu_);
  const uint64_t segment_id_;
  uint64_t next_lsn_ GUARDED_BY(mu_);
  uint64_t offset_ GUARDED_BY(mu_) = 0;

  Status io_error_ GUARDED_BY(mu_);  ///< Sticky: first append IO failure.
};

/// \brief Result of scanning one segment during recovery.
struct SegmentScan {
  std::vector<Record> records;  ///< CRC-valid prefix, in append order.
  /// Bytes after the valid prefix (a torn tail, or garbage after an
  /// injected fault). Recovery drops them — they were never acked.
  uint64_t tail_bytes_dropped = 0;
  uint64_t valid_bytes = 0;     ///< Offset where the valid prefix ends.
};

/// Reads segment `segment_id` under `dir` and returns its CRC-valid
/// record prefix. Scanning stops — without error — at the first record
/// whose length prefix or CRC does not check out; a crash can only tear
/// the unsynced tail, so everything before it is intact. A missing file
/// is `NotFound`.
StatusOr<SegmentScan> ReadSegment(storage::Env* env, const std::string& dir,
                                  uint64_t segment_id);

/// Segment ids present under `dir`, sorted ascending.
StatusOr<std::vector<uint64_t>> ListSegments(storage::Env* env,
                                             const std::string& dir);

}  // namespace hermes::wal

#endif  // HERMES_WAL_WAL_H_
