#include "wal/wal.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/coding.h"
#include "common/crc32.h"

namespace hermes::wal {

namespace {

/// len(u32) + crc(u32) precede the checksummed region; lsn(u64) + type(u8)
/// precede the payload inside it.
constexpr size_t kHeaderBytes = 4 + 4;
constexpr size_t kChecksummedHeaderBytes = 8 + 1;

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  return dir.back() == '/' ? dir + name : dir + "/" + name;
}

}  // namespace

std::string SegmentFileName(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal_%06llu.log",
                static_cast<unsigned long long>(id));
  return buf;
}

bool ParseSegmentFileName(const std::string& name, uint64_t* id) {
  if (name.size() < 9 || name.rfind("wal_", 0) != 0 ||
      name.substr(name.size() - 4) != ".log") {
    return false;
  }
  const std::string digits = name.substr(4, name.size() - 8);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *id = std::stoull(digits);
  return true;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<Writer>> Writer::Open(storage::Env* env,
                                               const std::string& dir,
                                               uint64_t segment_id,
                                               uint64_t next_lsn) {
  const std::string path = JoinPath(dir, SegmentFileName(segment_id));
  // Segments are created exactly once (recovery always rotates to a
  // fresh id), so an existing file is stale garbage from a removed
  // future: drop it rather than appending after its bytes.
  if (env->FileExists(path)) {
    HERMES_RETURN_NOT_OK(env->DeleteFile(path));
  }
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<storage::RandomRWFile> file,
                          env->NewRWFile(path));
  return std::unique_ptr<Writer>(
      new Writer(std::move(file), segment_id, next_lsn));
}

StatusOr<uint64_t> Writer::Append(RecordType type,
                                  const std::string& payload) {
  common::MutexLock lock(&mu_);
  // After one failed append the segment's byte stream is untrustworthy
  // (a prefix may be on disk); every later append must fail too, or a
  // valid record written after the hole would be unreachable to the
  // scanner anyway while looking durable to the caller.
  HERMES_RETURN_NOT_OK(io_error_);

  const uint64_t lsn = next_lsn_;
  std::string rec;
  rec.reserve(kHeaderBytes + kChecksummedHeaderBytes + payload.size());
  PutFixed32(&rec,
             static_cast<uint32_t>(kChecksummedHeaderBytes + payload.size()));
  std::string body;
  body.reserve(kChecksummedHeaderBytes + payload.size());
  PutFixed64(&body, lsn);
  body.push_back(static_cast<char>(type));
  body.append(payload);
  PutFixed32(&rec, common::Crc32(body));
  rec.append(body);

  Status st = file_->WriteAt(offset_, rec.size(), rec.data());
  if (!st.ok()) {
    io_error_ = st;
    return st;
  }
  offset_ += rec.size();
  ++next_lsn_;
  return lsn;
}

Status Writer::Sync() {
  common::MutexLock lock(&mu_);
  HERMES_RETURN_NOT_OK(io_error_);
  return file_->Sync();
}

uint64_t Writer::next_lsn() const {
  common::MutexLock lock(&mu_);
  return next_lsn_;
}

uint64_t Writer::bytes_appended() const {
  common::MutexLock lock(&mu_);
  return offset_;
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

StatusOr<SegmentScan> ReadSegment(storage::Env* env, const std::string& dir,
                                  uint64_t segment_id) {
  const std::string path = JoinPath(dir, SegmentFileName(segment_id));
  if (!env->FileExists(path)) {
    return Status::NotFound("no WAL segment " + path);
  }
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<storage::RandomRWFile> file,
                          env->NewRWFile(path));
  HERMES_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  std::string data(size, '\0');
  if (size > 0) {
    HERMES_RETURN_NOT_OK(file->ReadAt(0, size, data.data()));
  }

  SegmentScan scan;
  size_t off = 0;
  while (off + kHeaderBytes <= data.size()) {
    const uint32_t len = GetFixed32(data.data() + off);
    if (len < kChecksummedHeaderBytes ||
        off + kHeaderBytes + len > data.size()) {
      break;  // Torn length prefix or truncated body.
    }
    const uint32_t crc = GetFixed32(data.data() + off + 4);
    const char* body = data.data() + off + kHeaderBytes;
    if (common::Crc32(body, static_cast<size_t>(len)) != crc) {
      break;  // Torn or corrupted record: drop it and everything after.
    }
    Record rec;
    rec.lsn = GetFixed64(body);
    rec.type = static_cast<RecordType>(static_cast<uint8_t>(body[8]));
    rec.payload.assign(body + kChecksummedHeaderBytes,
                       len - kChecksummedHeaderBytes);
    scan.records.push_back(std::move(rec));
    off += kHeaderBytes + len;
  }
  scan.valid_bytes = off;
  scan.tail_bytes_dropped = data.size() - off;
  return scan;
}

StatusOr<std::vector<uint64_t>> ListSegments(storage::Env* env,
                                             const std::string& dir) {
  HERMES_ASSIGN_OR_RETURN(std::vector<std::string> names, env->ListDir(dir));
  std::vector<uint64_t> ids;
  for (const std::string& name : names) {
    uint64_t id = 0;
    if (ParseSegmentFileName(name, &id)) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace hermes::wal
