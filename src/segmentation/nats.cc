#include "segmentation/nats.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>

#include "common/logging.h"
#include "common/mathutil.h"
#include "exec/parallel_for.h"

namespace hermes::segmentation {

namespace {
int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

double EffectiveLambda(const std::vector<double>& votes,
                       const NatsParams& params) {
  const double var = Variance(votes);
  double lambda =
      params.lambda_scale * var * static_cast<double>(votes.size());
  if (lambda <= 0.0) {
    // Constant signal: every partition has zero SSE, so any positive
    // penalty selects the single-part optimum. Anchor the floor to the
    // configured bandwidth to stay clear of denormals when sigma is tiny.
    lambda = 1e-12 * std::max(params.sigma, 1e-3);
  }
  return lambda;
}

double SegmentationCost(const std::vector<double>& votes,
                        const std::vector<SegmentationPart>& parts,
                        double lambda) {
  const auto ps = PrefixSum(votes);
  const auto pq = PrefixSqSum(votes);
  double cost = lambda * static_cast<double>(parts.size());
  for (const auto& p : parts) {
    cost += RangeSse(ps, pq, p.first_segment, p.last_segment);
  }
  return cost;
}

std::vector<SegmentationPart> SegmentVotingSignal(
    const std::vector<double>& votes, const NatsParams& params) {
  const size_t m = votes.size();
  std::vector<SegmentationPart> out;
  if (m == 0) return out;

  const size_t w = std::max<size_t>(1, params.min_part_length);
  const double lambda = EffectiveLambda(votes, params);
  const auto ps = PrefixSum(votes);
  const auto pq = PrefixSqSum(votes);

  if (m < 2 * w) {
    // Too short to split: single part.
    SegmentationPart part{0, m - 1, 0.0};
    part.mean_voting = (ps[m] - ps[0]) / static_cast<double>(m);
    return {part};
  }

  // dp[j] = min cost of segmenting votes[0..j-1]; cut[j] = start of the
  // last part in the optimum for prefix j.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dp(m + 1, kInf);
  std::vector<size_t> cut(m + 1, 0);
  std::vector<size_t> parts_used(m + 1, 0);
  dp[0] = 0.0;
  for (size_t j = 1; j <= m; ++j) {
    // Last part is votes[i..j-1]; needs length >= w (or exactly the whole
    // prefix when the prefix itself is shorter than w — handled by i==0).
    for (size_t i = 0; i + 1 <= j; ++i) {
      const size_t len = j - i;
      if (len < w) continue;  // Interior parts must respect the min length.
      if (dp[i] == kInf) continue;
      if (params.max_parts > 0 && parts_used[i] + 1 > params.max_parts) {
        continue;
      }
      const double cost = dp[i] + RangeSse(ps, pq, i, j - 1) + lambda;
      if (cost < dp[j]) {
        dp[j] = cost;
        cut[j] = i;
        parts_used[j] = parts_used[i] + 1;
      }
    }
  }

  // Backtrack.
  size_t j = m;
  while (j > 0) {
    const size_t i = cut[j];
    SegmentationPart part{i, j - 1, 0.0};
    part.mean_voting = (ps[j] - ps[i]) / static_cast<double>(j - i);
    out.push_back(part);
    j = i;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

namespace {
void EnumeratePartitions(size_t m, size_t w, std::vector<size_t>* cuts,
                         size_t start,
                         const std::function<void(const std::vector<size_t>&)>&
                             emit) {
  // cuts holds part start indices; a part must have length >= w.
  if (start == m) {
    emit(*cuts);
    return;
  }
  for (size_t len = w; start + len <= m; ++len) {
    cuts->push_back(start);
    EnumeratePartitions(m, w, cuts, start + len, emit);
    cuts->pop_back();
  }
}
}  // namespace

std::vector<SegmentationPart> SegmentVotingSignalBruteForce(
    const std::vector<double>& votes, const NatsParams& params) {
  const size_t m = votes.size();
  if (m == 0) return {};
  const size_t w = std::max<size_t>(1, params.min_part_length);
  const double lambda = EffectiveLambda(votes, params);
  const auto ps = PrefixSum(votes);
  const auto pq = PrefixSqSum(votes);

  if (m < 2 * w) {
    SegmentationPart part{0, m - 1, (ps[m]) / static_cast<double>(m)};
    return {part};
  }

  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<SegmentationPart> best;
  std::vector<size_t> cuts;
  EnumeratePartitions(m, w, &cuts, 0, [&](const std::vector<size_t>& starts) {
    if (params.max_parts > 0 && starts.size() > params.max_parts) return;
    double cost = lambda * static_cast<double>(starts.size());
    std::vector<SegmentationPart> parts;
    for (size_t k = 0; k < starts.size(); ++k) {
      const size_t first = starts[k];
      const size_t last = (k + 1 < starts.size()) ? starts[k + 1] - 1 : m - 1;
      cost += RangeSse(ps, pq, first, last);
      parts.push_back(
          {first, last,
           (ps[last + 1] - ps[first]) / static_cast<double>(last - first + 1)});
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = std::move(parts);
    }
  });
  return best;
}

std::vector<traj::SubTrajectory> SegmentStore(
    const traj::TrajectoryStore& store, const voting::VotingResult& voting,
    const NatsParams& params, exec::ExecContext* ctx,
    SegmentationTimings* timings) {
  HERMES_CHECK(voting.votes.size() == store.NumTrajectories())
      << "voting/store mismatch";
  const size_t n = store.NumTrajectories();

  // Pass 1: the per-trajectory DPs are independent — fan out, one chunk
  // owning each trajectory's part list.
  int64_t t0 = NowUs();
  std::vector<std::vector<SegmentationPart>> parts(n);
  exec::ParallelFor(ctx, n, /*grain=*/1,
                    [&](size_t begin, size_t end, size_t /*chunk*/) {
    for (traj::TrajectoryId tid = begin; tid < end; ++tid) {
      if (store.Get(tid).NumSegments() == 0) continue;
      parts[tid] = SegmentVotingSignal(voting.votes[tid], params);
    }
  });
  const int64_t dp_us = NowUs() - t0;

  // Pass 2: prefix-sum part counts in trajectory order — base[tid] is the
  // first sub-trajectory id of trajectory tid, exactly the value a
  // sequential `next_id++` sweep would hand out — then materialize each
  // trajectory's pieces into its pre-assigned slots.
  t0 = NowUs();
  std::vector<size_t> base(n + 1, 0);
  for (size_t tid = 0; tid < n; ++tid) {
    base[tid + 1] = base[tid] + parts[tid].size();
  }
  std::vector<traj::SubTrajectory> subs(base[n]);
  exec::ParallelFor(ctx, n, /*grain=*/1,
                    [&](size_t begin, size_t end, size_t /*chunk*/) {
    for (traj::TrajectoryId tid = begin; tid < end; ++tid) {
      const traj::Trajectory& t = store.Get(tid);
      for (size_t k = 0; k < parts[tid].size(); ++k) {
        const SegmentationPart& part = parts[tid][k];
        traj::SubTrajectory& st = subs[base[tid] + k];
        st.id = base[tid] + k;
        st.source_trajectory = tid;
        st.object_id = t.object_id();
        st.first_sample_index = part.first_segment;
        st.mean_voting = part.mean_voting;
        traj::Trajectory piece(t.object_id());
        // Segments [first, last] cover samples [first, last+1].
        for (size_t s = part.first_segment; s <= part.last_segment + 1; ++s) {
          HERMES_CHECK_OK(piece.Append(t[s]));
        }
        st.points = std::move(piece);
      }
    }
  });
  const int64_t materialize_us = NowUs() - t0;

  if (ctx != nullptr) {
    ctx->stats().RecordPhaseUs("segmentation_dp", dp_us);
    ctx->stats().RecordPhaseUs("segmentation_materialize", materialize_us);
  }
  if (timings != nullptr) {
    timings->dp_us = dp_us;
    timings->materialize_us = materialize_us;
  }
  return subs;
}

}  // namespace hermes::segmentation
