#ifndef HERMES_SEGMENTATION_NATS_H_
#define HERMES_SEGMENTATION_NATS_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "exec/exec_context.h"
#include "traj/sub_trajectory.h"
#include "traj/trajectory_store.h"
#include "voting/voting.h"

namespace hermes::segmentation {

/// \brief Parameters of Neighborhood-aware Trajectory Segmentation.
struct NatsParams {
  /// Split-penalty scale: the DP cost is Σ SSE(part) + λ·#parts with
  /// λ = lambda_scale · Var(votes) · num_segments. Larger values produce
  /// fewer, coarser sub-trajectories.
  double lambda_scale = 0.05;
  /// Minimum segments per part (w in the papers).
  size_t min_part_length = 4;
  /// Upper bound on parts per trajectory (0 = unbounded). With a bound the
  /// DP prunes greedily (exact only when unbounded).
  size_t max_parts = 0;
  /// Bandwidth of the vote kernel that produced the signal being
  /// segmented, in the same spatial units as `voting::VotingParams::sigma`.
  /// Kept in sync with the voting and sampling phases by
  /// `core::S2TParams::SetSigma`; it anchors the numerical floor of the
  /// split penalty for degenerate (constant) signals.
  double sigma = 100.0;
};

/// \brief One part of a segmentation: segment indices [first, last]
/// (inclusive) of the source trajectory, with the mean vote of the part.
struct SegmentationPart {
  size_t first_segment = 0;
  size_t last_segment = 0;
  double mean_voting = 0.0;

  size_t NumSegments() const { return last_segment - first_segment + 1; }
};

/// \brief Splits one voting signal into contiguous parts of homogeneous
/// representativeness.
///
/// Exact O(m²) dynamic program minimizing penalized within-part SSE — the
/// "homogeneous representativeness, irrespective of shape complexity"
/// objective of NaTS. Returns at least one part for a non-empty signal.
std::vector<SegmentationPart> SegmentVotingSignal(
    const std::vector<double>& votes, const NatsParams& params);

/// \brief Wall-clock breakdown of one `SegmentStore` run (microseconds).
struct SegmentationTimings {
  /// Pass 1: the per-trajectory dynamic programs.
  int64_t dp_us = 0;
  /// Pass 2: prefix-sum id assignment + sub-trajectory materialization.
  int64_t materialize_us = 0;
};

/// \brief Runs NaTS over every trajectory of the MOD: segments each voting
/// signal and materializes the resulting sub-trajectories (ids assigned
/// sequentially from 0).
///
/// Two passes, both riding `ParallelFor` when `ctx` is parallel:
///  1. The per-trajectory DPs (independent by construction) fan out; each
///     trajectory's part list is produced by exactly one chunk.
///  2. Part counts are prefix-summed in trajectory order into the global
///     sub-trajectory id space, then every trajectory materializes its
///     pieces into its pre-assigned output slots in parallel.
/// Because ids come from the prefix sum — a pure function of the per-
/// trajectory part counts — output is bit-identical at any thread count.
///
/// Pass timings are recorded into `ctx`'s stats ("segmentation_dp",
/// "segmentation_materialize") and, when `timings` is non-null, returned
/// field-wise for the S2T per-phase breakdown.
std::vector<traj::SubTrajectory> SegmentStore(
    const traj::TrajectoryStore& store, const voting::VotingResult& voting,
    const NatsParams& params, exec::ExecContext* ctx = nullptr,
    SegmentationTimings* timings = nullptr);

/// \brief Brute-force optimal segmentation for cross-checking the DP in
/// tests (exponential; only for tiny inputs).
std::vector<SegmentationPart> SegmentVotingSignalBruteForce(
    const std::vector<double>& votes, const NatsParams& params);

/// The penalized cost of a given segmentation of `votes` (Σ SSE + λ·parts);
/// exposed for tests.
double SegmentationCost(const std::vector<double>& votes,
                        const std::vector<SegmentationPart>& parts,
                        double lambda);

/// Effective λ for a signal under `params`.
double EffectiveLambda(const std::vector<double>& votes,
                       const NatsParams& params);

}  // namespace hermes::segmentation

#endif  // HERMES_SEGMENTATION_NATS_H_
