#ifndef HERMES_STORAGE_FAULT_ENV_H_
#define HERMES_STORAGE_FAULT_ENV_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "storage/env.h"

namespace hermes::storage {

/// \brief Failpoint-driven `Env` decorator for crash-recovery tests.
///
/// Wraps a base environment (typically a `MemEnv`) and injects the
/// failure modes a WAL must survive:
///
///  - **fsync failure** (`set_fail_syncs`): every `Sync()` returns
///    `IOError` while set; the bytes may or may not be durable, exactly
///    the ambiguity a real fsync error leaves behind.
///  - **torn / short writes + ENOSPC + crash-after-N-bytes**
///    (`set_write_budget`): a cumulative byte budget across all files.
///    A write that would exceed the remaining budget persists only the
///    prefix that fits (a torn write) and returns `IOError`; later
///    writes fail outright. Setting the budget to N and then abandoning
///    the writer simulates a crash after N durable bytes.
///
/// "Recovery" in tests = drop every handle opened through this wrapper
/// and re-open the **base** env: whatever the failpoints let through is
/// the disk image the crashed process left behind.
///
/// Thread-safe to the same degree as the base env: failpoint state is
/// atomic, and the wrapper adds no locking of its own.
class FaultInjectionEnv : public Env {
 public:
  /// `base` must outlive this wrapper and every file opened through it.
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  /// While true, every `Sync()` on files opened through this env fails.
  void set_fail_syncs(bool on) {
    fail_syncs_.store(on, std::memory_order_relaxed);
  }

  /// Limits the *total* bytes any future `WriteAt` calls may persist
  /// (cumulative across files). Negative disables the limit.
  void set_write_budget(int64_t bytes) {
    write_budget_.store(bytes, std::memory_order_relaxed);
  }

  /// Bytes written through this env since construction.
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  /// Writes rejected (fully or torn) by the budget failpoint.
  uint64_t writes_failed() const {
    return writes_failed_.load(std::memory_order_relaxed);
  }

  StatusOr<std::unique_ptr<RandomRWFile>> NewRWFile(
      const std::string& fname) override;
  bool FileExists(const std::string& fname) const override {
    return base_->FileExists(fname);
  }
  Status DeleteFile(const std::string& fname) override {
    return base_->DeleteFile(fname);
  }
  Status RenameFile(const std::string& src, const std::string& dst) override;
  Status CreateDirs(const std::string& dirname) override {
    return base_->CreateDirs(dirname);
  }
  StatusOr<std::vector<std::string>> ListDir(
      const std::string& dirname) const override {
    return base_->ListDir(dirname);
  }

 private:
  friend class FaultRWFile;

  Env* base_;
  std::atomic<bool> fail_syncs_{false};
  std::atomic<int64_t> write_budget_{-1};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> writes_failed_{0};
};

}  // namespace hermes::storage

#endif  // HERMES_STORAGE_FAULT_ENV_H_
