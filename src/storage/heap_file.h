#ifndef HERMES_STORAGE_HEAP_FILE_H_
#define HERMES_STORAGE_HEAP_FILE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "storage/lock_stats.h"
#include "storage/pager.h"

namespace hermes::storage {

/// \brief Address of a record in a heap file: (page, slot).
struct RecordId {
  PageId page = kInvalidPage;
  uint16_t slot = 0;

  bool valid() const { return page != kInvalidPage; }
  bool operator==(const RecordId& o) const {
    return page == o.page && slot == o.slot;
  }
  /// Packs into one integer (for index datums).
  uint64_t Pack() const {
    return (static_cast<uint64_t>(page) << 16) | slot;
  }
  static RecordId Unpack(uint64_t v) {
    RecordId rid;
    rid.page = static_cast<PageId>(v >> 16);
    rid.slot = static_cast<uint16_t>(v & 0xFFFF);
    return rid;
  }
};

/// \brief Slotted-page heap file: the on-disk representation of a ReTraTree
/// partition (member sub-trajectories of one representative, or the outlier
/// partition of a sub-chunk).
///
/// Layout: page 0 is the meta page (record & page counts, tail pointer);
/// data pages use a classic slotted layout (slot directory grows from the
/// page end, record bytes from the header). Records are immutable once
/// written; `Delete` installs a tombstone. Space is reclaimed by dropping
/// the whole partition, matching the engine's usage.
///
/// Thread safety: record operations take an internal reader/writer lock —
/// `Read`/`Scan` shared, `Append`/`Delete` exclusive — so one handle may be
/// shared by concurrent readers without serializing them (the pager guards
/// its own buffer pool internally). Lock traffic is counted in
/// `lock_stats()`. Writers still need external coordination against
/// `PartitionManager::Drop`.
class HeapFile {
 public:
  /// Opens or creates a heap file backed by `fname` under `env`.
  static StatusOr<std::unique_ptr<HeapFile>> Open(Env* env,
                                                  const std::string& fname,
                                                  size_t cache_pages = 64);

  /// Appends a record (size must fit a page payload; ~8 KiB).
  StatusOr<RecordId> Append(const std::string& record);

  /// Reads a record; NotFound for tombstones and invalid ids.
  StatusOr<std::string> Read(const RecordId& rid) const;

  /// Tombstones a record. Idempotent.
  Status Delete(const RecordId& rid);

  /// Visits all live records in storage order. The callback returns false
  /// to stop the scan early.
  Status Scan(
      const std::function<bool(const RecordId&, const std::string&)>& fn)
      const;

  /// Number of live (non-deleted) records.
  uint64_t live_records() const {
    return live_records_.load(std::memory_order_relaxed);
  }
  /// Total appended records including tombstoned ones.
  uint64_t total_records() const {
    return total_records_.load(std::memory_order_relaxed);
  }

  Status Flush();

  /// Point-in-time counter snapshots (by value: they mutate concurrently).
  PagerStats io_stats() const;
  LockStats lock_stats() const { return lock_counters_.Snapshot(); }
  void ResetLockStats() { lock_counters_.Reset(); }

 private:
  explicit HeapFile(std::unique_ptr<Pager> pager);

  Status LoadMeta() REQUIRES(mu_);
  Status SaveMeta() REQUIRES(mu_);

  /// Reader/writer lock over record operations (see class comment).
  mutable common::SharedMutex mu_;
  mutable LockStatsCounters lock_counters_;
  /// Never reassigned after construction; the pager locks internally, so
  /// `io_stats()` reads it without `mu_`.
  std::unique_ptr<Pager> pager_;
  /// Last data page (append target).
  PageId tail_page_ GUARDED_BY(mu_) = kInvalidPage;
  std::atomic<uint64_t> live_records_{0};
  std::atomic<uint64_t> total_records_{0};
};

}  // namespace hermes::storage

#endif  // HERMES_STORAGE_HEAP_FILE_H_
