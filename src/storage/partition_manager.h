#ifndef HERMES_STORAGE_PARTITION_MANAGER_H_
#define HERMES_STORAGE_PARTITION_MANAGER_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "storage/heap_file.h"

namespace hermes::storage {

/// \brief Named on-disk partitions backing the ReTraTree data level.
///
/// Each partition is one heap file in the manager's directory — the
/// "pg3D-Rtree-k" member partitions and the outlier partitions of Fig. 2.
/// Dropping a partition deletes its file (how ReTraTree reclaims space
/// after re-clustering an outlier buffer).
///
/// Concurrency contract: the manager's own catalog (open handles, create,
/// drop, list) is mutex-guarded, so concurrent ingest tasks may open and
/// drop *different* partitions freely — the batch apply fan-out relies on
/// this. The returned `HeapFile*` handles are NOT thread-safe: callers
/// must ensure each partition is used by at most one task at a time
/// (ReTraTree guarantees it by giving every apply task disjoint
/// sub-chunks, whose partitions are disjoint by construction), and must
/// not race a handle's use against `Drop` of the same partition.
class PartitionManager {
 public:
  /// Creates a manager rooted at `dir` (created if absent).
  static StatusOr<std::unique_ptr<PartitionManager>> Open(
      Env* env, const std::string& dir);

  /// Opens (creating if needed) the named partition.
  StatusOr<HeapFile*> GetOrCreate(const std::string& name);

  /// True when the partition exists (open or on disk).
  bool Exists(const std::string& name) const;

  /// Closes and deletes the named partition.
  Status Drop(const std::string& name);

  /// Names of all partitions (open handles plus on-disk files), sorted.
  std::vector<std::string> List() const;

  /// Flushes every open partition.
  Status FlushAll();

  /// Visits every open partition handle under the catalog lock, in
  /// deterministic (name-sorted) order. Used to aggregate per-partition
  /// I/O and lock counters into tree-level observability stats; the
  /// visitor must not call back into the manager.
  void ForEachOpen(
      const std::function<void(const std::string&, HeapFile*)>& fn) const;

  const std::string& dir() const { return dir_; }

 private:
  PartitionManager(Env* env, std::string dir);

  std::string FileName(const std::string& name) const;

  Env* env_;
  std::string dir_;
  /// Guards `open_` against concurrent GetOrCreate/Drop from apply tasks.
  mutable common::Mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<HeapFile>> open_
      GUARDED_BY(mu_);
};

}  // namespace hermes::storage

#endif  // HERMES_STORAGE_PARTITION_MANAGER_H_
