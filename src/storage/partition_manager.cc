#include "storage/partition_manager.h"

#include <algorithm>
#include <set>

namespace hermes::storage {

namespace {
constexpr char kSuffix[] = ".part";
}

PartitionManager::PartitionManager(Env* env, std::string dir)
    : env_(env), dir_(std::move(dir)) {}

StatusOr<std::unique_ptr<PartitionManager>> PartitionManager::Open(
    Env* env, const std::string& dir) {
  HERMES_RETURN_NOT_OK(env->CreateDirs(dir));
  return std::unique_ptr<PartitionManager>(new PartitionManager(env, dir));
}

std::string PartitionManager::FileName(const std::string& name) const {
  return dir_ + "/" + name + kSuffix;
}

StatusOr<HeapFile*> PartitionManager::GetOrCreate(const std::string& name) {
  common::MutexLock lock(&mu_);
  auto it = open_.find(name);
  if (it != open_.end()) return it->second.get();
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> hf,
                          HeapFile::Open(env_, FileName(name)));
  HeapFile* raw = hf.get();
  open_[name] = std::move(hf);
  return raw;
}

bool PartitionManager::Exists(const std::string& name) const {
  common::MutexLock lock(&mu_);
  if (open_.count(name) > 0) return true;
  return env_->FileExists(FileName(name));
}

Status PartitionManager::Drop(const std::string& name) {
  common::MutexLock lock(&mu_);
  auto it = open_.find(name);
  if (it != open_.end()) {
    open_.erase(it);  // Destructor flushes; file is deleted next.
  } else if (!env_->FileExists(FileName(name))) {
    return Status::NotFound("no partition " + name);
  }
  return env_->DeleteFile(FileName(name));
}

std::vector<std::string> PartitionManager::List() const {
  common::MutexLock lock(&mu_);
  std::set<std::string> names;
  // HERMES-LINT-ALLOW(unordered-iteration): names land in a std::set,
  // which sorts them regardless of visit order.
  for (const auto& [name, hf] : open_) names.insert(name);
  auto on_disk = env_->ListDir(dir_);
  if (on_disk.ok()) {
    for (const auto& fname : *on_disk) {
      const size_t suffix_len = sizeof(kSuffix) - 1;
      if (fname.size() > suffix_len &&
          fname.compare(fname.size() - suffix_len, suffix_len, kSuffix) == 0) {
        names.insert(fname.substr(0, fname.size() - suffix_len));
      }
    }
  }
  return std::vector<std::string>(names.begin(), names.end());
}

void PartitionManager::ForEachOpen(
    const std::function<void(const std::string&, HeapFile*)>& fn) const {
  common::MutexLock lock(&mu_);
  std::vector<std::pair<std::string, HeapFile*>> handles;
  handles.reserve(open_.size());
  // HERMES-LINT-ALLOW(unordered-iteration): the collected handles are
  // sorted by name below before the visitor sees them.
  for (const auto& [name, hf] : open_) handles.emplace_back(name, hf.get());
  std::sort(handles.begin(), handles.end());
  for (const auto& [name, hf] : handles) fn(name, hf);
}

Status PartitionManager::FlushAll() {
  common::MutexLock lock(&mu_);
  // HERMES-LINT-ALLOW(unordered-iteration): each partition flushes to its
  // own file; flush order cannot affect any file's contents.
  for (auto& [name, hf] : open_) {
    HERMES_RETURN_NOT_OK(hf->Flush());
  }
  return Status::OK();
}

}  // namespace hermes::storage
