#ifndef HERMES_STORAGE_LOCK_STATS_H_
#define HERMES_STORAGE_LOCK_STATS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

namespace hermes::storage {

/// \brief Point-in-time lock-contention counters for one reader/writer
/// lock. "Contended" counts acquisitions that could not be satisfied by a
/// try-lock and had to block — the before/after signal for the hot/cold
/// tier work (a warm hot-tier QUT probe must leave these flat).
struct LockStats {
  uint64_t shared_acquisitions = 0;
  uint64_t shared_contended = 0;
  uint64_t exclusive_acquisitions = 0;
  uint64_t exclusive_contended = 0;
};

/// \brief Atomic backing for `LockStats`, bumped on the (possibly shared)
/// lock paths themselves, so counting never needs a lock of its own.
struct LockStatsCounters {
  std::atomic<uint64_t> shared_acquisitions{0};
  std::atomic<uint64_t> shared_contended{0};
  std::atomic<uint64_t> exclusive_acquisitions{0};
  std::atomic<uint64_t> exclusive_contended{0};

  LockStats Snapshot() const {
    LockStats s;
    s.shared_acquisitions = shared_acquisitions.load(std::memory_order_relaxed);
    s.shared_contended = shared_contended.load(std::memory_order_relaxed);
    s.exclusive_acquisitions =
        exclusive_acquisitions.load(std::memory_order_relaxed);
    s.exclusive_contended =
        exclusive_contended.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    shared_acquisitions.store(0, std::memory_order_relaxed);
    shared_contended.store(0, std::memory_order_relaxed);
    exclusive_acquisitions.store(0, std::memory_order_relaxed);
    exclusive_contended.store(0, std::memory_order_relaxed);
  }
};

/// Takes `mu` shared, counting the acquisition and whether it had to block.
inline std::shared_lock<std::shared_mutex> CountedSharedLock(
    std::shared_mutex& mu, LockStatsCounters* counters) {
  counters->shared_acquisitions.fetch_add(1, std::memory_order_relaxed);
  if (mu.try_lock_shared()) {
    return std::shared_lock<std::shared_mutex>(mu, std::adopt_lock);
  }
  counters->shared_contended.fetch_add(1, std::memory_order_relaxed);
  return std::shared_lock<std::shared_mutex>(mu);
}

/// Takes `mu` exclusive, counting the acquisition and whether it blocked.
inline std::unique_lock<std::shared_mutex> CountedExclusiveLock(
    std::shared_mutex& mu, LockStatsCounters* counters) {
  counters->exclusive_acquisitions.fetch_add(1, std::memory_order_relaxed);
  if (mu.try_lock()) {
    return std::unique_lock<std::shared_mutex>(mu, std::adopt_lock);
  }
  counters->exclusive_contended.fetch_add(1, std::memory_order_relaxed);
  return std::unique_lock<std::shared_mutex>(mu);
}

}  // namespace hermes::storage

#endif  // HERMES_STORAGE_LOCK_STATS_H_
