#ifndef HERMES_STORAGE_LOCK_STATS_H_
#define HERMES_STORAGE_LOCK_STATS_H_

#include <atomic>
#include <cstdint>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hermes::storage {

/// \brief Point-in-time lock-contention counters for one reader/writer
/// lock. "Contended" counts acquisitions that could not be satisfied by a
/// try-lock and had to block — the before/after signal for the hot/cold
/// tier work (a warm hot-tier QUT probe must leave these flat).
struct LockStats {
  uint64_t shared_acquisitions = 0;
  uint64_t shared_contended = 0;
  uint64_t exclusive_acquisitions = 0;
  uint64_t exclusive_contended = 0;
};

/// \brief Atomic backing for `LockStats`, bumped on the (possibly shared)
/// lock paths themselves, so counting never needs a lock of its own.
struct LockStatsCounters {
  std::atomic<uint64_t> shared_acquisitions{0};
  std::atomic<uint64_t> shared_contended{0};
  std::atomic<uint64_t> exclusive_acquisitions{0};
  std::atomic<uint64_t> exclusive_contended{0};

  LockStats Snapshot() const {
    LockStats s;
    s.shared_acquisitions = shared_acquisitions.load(std::memory_order_relaxed);
    s.shared_contended = shared_contended.load(std::memory_order_relaxed);
    s.exclusive_acquisitions =
        exclusive_acquisitions.load(std::memory_order_relaxed);
    s.exclusive_contended =
        exclusive_contended.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    shared_acquisitions.store(0, std::memory_order_relaxed);
    shared_contended.store(0, std::memory_order_relaxed);
    exclusive_acquisitions.store(0, std::memory_order_relaxed);
    exclusive_contended.store(0, std::memory_order_relaxed);
  }
};

/// \brief RAII shared guard over an annotated `SharedMutex`, counting the
/// acquisition and whether it had to block. A scoped capability: holding
/// one satisfies `REQUIRES_SHARED(mu)` for the guarded scope.
class SCOPED_CAPABILITY CountedSharedLock {
 public:
  CountedSharedLock(common::SharedMutex& mu, LockStatsCounters* counters)
      ACQUIRE_SHARED(mu)
      : mu_(mu) {
    counters->shared_acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (!mu_.try_lock_shared()) {
      counters->shared_contended.fetch_add(1, std::memory_order_relaxed);
      mu_.lock_shared();
    }
  }
  ~CountedSharedLock() RELEASE() { mu_.unlock_shared(); }

  CountedSharedLock(const CountedSharedLock&) = delete;
  CountedSharedLock& operator=(const CountedSharedLock&) = delete;

 private:
  common::SharedMutex& mu_;
};

/// \brief RAII exclusive guard over an annotated `SharedMutex`, counting
/// the acquisition and whether it blocked.
class SCOPED_CAPABILITY CountedExclusiveLock {
 public:
  CountedExclusiveLock(common::SharedMutex& mu, LockStatsCounters* counters)
      ACQUIRE(mu)
      : mu_(mu) {
    counters->exclusive_acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (!mu_.try_lock()) {
      counters->exclusive_contended.fetch_add(1, std::memory_order_relaxed);
      mu_.lock();
    }
  }
  ~CountedExclusiveLock() RELEASE() { mu_.unlock(); }

  CountedExclusiveLock(const CountedExclusiveLock&) = delete;
  CountedExclusiveLock& operator=(const CountedExclusiveLock&) = delete;

 private:
  common::SharedMutex& mu_;
};

}  // namespace hermes::storage

#endif  // HERMES_STORAGE_LOCK_STATS_H_
