#include "storage/heap_file.h"

#include <cstring>

#include "common/coding.h"
#include "common/logging.h"

namespace hermes::storage {

namespace {

// Meta page (page 0) layout.
constexpr uint32_t kHeapMagic = 0x48455246u;  // "HERF"
constexpr size_t kMetaMagicOff = 0;
constexpr size_t kMetaTailOff = 4;
constexpr size_t kMetaLiveOff = 8;
constexpr size_t kMetaTotalOff = 16;

// Data page layout: [nslots u16][free_start u16][payload ...][slots ...].
// Slot i lives at kPageSize - 4*(i+1): {off u16, len u16}; len 0xFFFF is a
// tombstone marker stored alongside the original length in off? No — a
// tombstone is encoded as len == 0xFFFF (original bytes stay in place).
constexpr size_t kDataHeaderSize = 4;
constexpr size_t kSlotSize = 4;
constexpr uint16_t kTombstoneLen = 0xFFFF;

uint16_t ReadU16(const char* p) { return GetFixed16(p); }
void WriteU16(char* p, uint16_t v) { std::memcpy(p, &v, 2); }

uint16_t PageNumSlots(const Page& page) { return ReadU16(page.data.data()); }
void SetPageNumSlots(Page* page, uint16_t n) {
  WriteU16(page->data.data(), n);
}
uint16_t PageFreeStart(const Page& page) {
  return ReadU16(page.data.data() + 2);
}
void SetPageFreeStart(Page* page, uint16_t v) {
  WriteU16(page->data.data() + 2, v);
}

size_t SlotOffset(uint16_t slot) { return kPageSize - kSlotSize * (slot + 1); }

size_t PageFreeSpace(const Page& page) {
  const uint16_t nslots = PageNumSlots(page);
  const size_t slot_area = kSlotSize * (nslots + 1);  // +1 for the new slot.
  const size_t free_start = PageFreeStart(page);
  if (free_start + slot_area >= kPageSize) return 0;
  return kPageSize - slot_area - free_start;
}

}  // namespace

HeapFile::HeapFile(std::unique_ptr<Pager> pager) : pager_(std::move(pager)) {}

StatusOr<std::unique_ptr<HeapFile>> HeapFile::Open(Env* env,
                                                   const std::string& fname,
                                                   size_t cache_pages) {
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager,
                          Pager::Open(env, fname, cache_pages));
  auto hf = std::unique_ptr<HeapFile>(new HeapFile(std::move(pager)));
  // The handle is not shared yet, but LoadMeta writes guarded state, so
  // take the (uncontended) writer lock for the analysis.
  common::WriterMutexLock lock(&hf->mu_);
  if (hf->pager_->num_pages() == 0) {
    // Fresh file: write the meta page.
    HERMES_ASSIGN_OR_RETURN(Page * meta, hf->pager_->Allocate());
    PinnedPage pin(hf->pager_.get(), meta);
    std::memset(meta->data.data(), 0, kPageSize);
    uint32_t magic = kHeapMagic;
    std::memcpy(meta->data.data() + kMetaMagicOff, &magic, 4);
    uint32_t tail = kInvalidPage;
    std::memcpy(meta->data.data() + kMetaTailOff, &tail, 4);
    pin.MarkDirty();
  } else {
    HERMES_RETURN_NOT_OK(hf->LoadMeta());
  }
  return hf;
}

Status HeapFile::LoadMeta() {
  HERMES_ASSIGN_OR_RETURN(Page * meta, pager_->Fetch(0));
  PinnedPage pin(pager_.get(), meta);
  uint32_t magic;
  std::memcpy(&magic, meta->data.data() + kMetaMagicOff, 4);
  if (magic != kHeapMagic) return Status::Corruption("bad heap file magic");
  uint32_t tail;
  std::memcpy(&tail, meta->data.data() + kMetaTailOff, 4);
  tail_page_ = tail;
  live_records_ = GetFixed64(meta->data.data() + kMetaLiveOff);
  total_records_ = GetFixed64(meta->data.data() + kMetaTotalOff);
  return Status::OK();
}

Status HeapFile::SaveMeta() {
  HERMES_ASSIGN_OR_RETURN(Page * meta, pager_->Fetch(0));
  PinnedPage pin(pager_.get(), meta);
  std::memcpy(meta->data.data() + kMetaTailOff, &tail_page_, 4);
  const uint64_t live = live_records_.load(std::memory_order_relaxed);
  const uint64_t total = total_records_.load(std::memory_order_relaxed);
  std::memcpy(meta->data.data() + kMetaLiveOff, &live, 8);
  std::memcpy(meta->data.data() + kMetaTotalOff, &total, 8);
  pin.MarkDirty();
  return Status::OK();
}

StatusOr<RecordId> HeapFile::Append(const std::string& record) {
  CountedExclusiveLock lock(mu_, &lock_counters_);
  const size_t need = record.size();
  if (need + kDataHeaderSize + kSlotSize > kPageSize) {
    return Status::InvalidArgument("record too large for a page");
  }

  Page* page = nullptr;
  bool fresh = false;
  if (tail_page_ != kInvalidPage) {
    HERMES_ASSIGN_OR_RETURN(page, pager_->Fetch(tail_page_));
    if (PageFreeSpace(*page) < need) {
      pager_->Unpin(page, false);
      page = nullptr;
    }
  }
  if (page == nullptr) {
    HERMES_ASSIGN_OR_RETURN(page, pager_->Allocate());
    fresh = true;
  }
  PinnedPage pin(pager_.get(), page);
  if (fresh) {
    std::memset(page->data.data(), 0, kPageSize);
    SetPageNumSlots(page, 0);
    SetPageFreeStart(page, kDataHeaderSize);
    tail_page_ = page->id;
  }

  const uint16_t slot = PageNumSlots(*page);
  const uint16_t off = PageFreeStart(*page);
  std::memcpy(page->data.data() + off, record.data(), need);
  char* slot_ptr = page->data.data() + SlotOffset(slot);
  WriteU16(slot_ptr, off);
  WriteU16(slot_ptr + 2, static_cast<uint16_t>(need));
  SetPageNumSlots(page, slot + 1);
  SetPageFreeStart(page, static_cast<uint16_t>(off + need));
  pin.MarkDirty();

  ++live_records_;
  ++total_records_;
  HERMES_RETURN_NOT_OK(SaveMeta());
  return RecordId{page->id, slot};
}

StatusOr<std::string> HeapFile::Read(const RecordId& rid) const {
  CountedSharedLock lock(mu_, &lock_counters_);
  if (!rid.valid() || rid.page == 0 || rid.page >= pager_->num_pages()) {
    return Status::NotFound("invalid record id");
  }
  HERMES_ASSIGN_OR_RETURN(Page * page, pager_->Fetch(rid.page));
  PinnedPage pin(pager_.get(), page);
  if (rid.slot >= PageNumSlots(*page)) {
    return Status::NotFound("no such slot");
  }
  const char* slot_ptr = page->data.data() + SlotOffset(rid.slot);
  const uint16_t off = ReadU16(slot_ptr);
  const uint16_t len = ReadU16(slot_ptr + 2);
  if (len == kTombstoneLen) return Status::NotFound("record deleted");
  return std::string(page->data.data() + off, len);
}

Status HeapFile::Delete(const RecordId& rid) {
  CountedExclusiveLock lock(mu_, &lock_counters_);
  if (!rid.valid() || rid.page == 0 || rid.page >= pager_->num_pages()) {
    return Status::NotFound("invalid record id");
  }
  HERMES_ASSIGN_OR_RETURN(Page * page, pager_->Fetch(rid.page));
  PinnedPage pin(pager_.get(), page);
  if (rid.slot >= PageNumSlots(*page)) {
    return Status::NotFound("no such slot");
  }
  char* slot_ptr = page->data.data() + SlotOffset(rid.slot);
  const uint16_t len = ReadU16(slot_ptr + 2);
  if (len == kTombstoneLen) return Status::OK();  // Idempotent.
  WriteU16(slot_ptr + 2, kTombstoneLen);
  pin.MarkDirty();
  HERMES_CHECK(live_records_ > 0);
  --live_records_;
  return SaveMeta();
}

Status HeapFile::Scan(
    const std::function<bool(const RecordId&, const std::string&)>& fn) const {
  CountedSharedLock lock(mu_, &lock_counters_);
  for (PageId pid = 1; pid < pager_->num_pages(); ++pid) {
    HERMES_ASSIGN_OR_RETURN(Page * page, pager_->Fetch(pid));
    PinnedPage pin(pager_.get(), page);
    const uint16_t nslots = PageNumSlots(*page);
    for (uint16_t s = 0; s < nslots; ++s) {
      const char* slot_ptr = page->data.data() + SlotOffset(s);
      const uint16_t off = ReadU16(slot_ptr);
      const uint16_t len = ReadU16(slot_ptr + 2);
      if (len == kTombstoneLen) continue;
      std::string rec(page->data.data() + off, len);
      if (!fn(RecordId{pid, s}, rec)) return Status::OK();
    }
  }
  return Status::OK();
}

Status HeapFile::Flush() {
  CountedExclusiveLock lock(mu_, &lock_counters_);
  return pager_->Flush();
}

PagerStats HeapFile::io_stats() const { return pager_->stats(); }

}  // namespace hermes::storage
