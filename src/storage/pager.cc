#include "storage/pager.h"

#include "common/logging.h"

namespace hermes::storage {

StatusOr<std::unique_ptr<Pager>> Pager::Open(Env* env,
                                             const std::string& fname,
                                             size_t cache_pages) {
  if (cache_pages < 4) cache_pages = 4;
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<RandomRWFile> file,
                          env->NewRWFile(fname));
  auto pager =
      std::unique_ptr<Pager>(new Pager(env, std::move(file), cache_pages));
  HERMES_ASSIGN_OR_RETURN(uint64_t size, pager->file_->Size());
  if (size % kPageSize != 0) {
    return Status::Corruption(fname + ": size not page-aligned");
  }
  pager->num_pages_ = static_cast<PageId>(size / kPageSize);
  return pager;
}

Pager::Pager(Env* env, std::unique_ptr<RandomRWFile> file, size_t cache_pages)
    : env_(env), file_(std::move(file)), cache_capacity_(cache_pages) {
  (void)env_;
}

Pager::~Pager() { HERMES_CHECK_OK(Flush()); }

StatusOr<Page*> Pager::Allocate() {
  common::MutexLock lock(&mu_);
  HERMES_RETURN_NOT_OK(EvictIfNeeded());
  const PageId id = num_pages_.fetch_add(1, std::memory_order_acq_rel);
  auto page = std::make_unique<Page>();
  page->id = id;
  page->dirty = true;  // New pages must reach disk even if untouched.
  page->pins = 1;
  Page* raw = page.get();
  frames_[id] = std::move(page);
  if (page_table_.size() <= id) page_table_.resize(id + 1, nullptr);
  page_table_[id] = raw;
  lru_.push_front(id);
  lru_pos_[id] = lru_.begin();
  return raw;
}

StatusOr<Page*> Pager::Fetch(PageId id) {
  common::MutexLock lock(&mu_);
  // Hot path: resident page, no recency bookkeeping.
  if (id < page_table_.size() && page_table_[id] != nullptr) {
    ++stats_.cache_hits;
    Page* page = page_table_[id];
    ++page->pins;
    return page;
  }
  if (id >= num_pages_.load(std::memory_order_relaxed)) {
    return Status::OutOfRange(
        "page " + std::to_string(id) + " of " +
        std::to_string(num_pages_.load(std::memory_order_relaxed)));
  }
  ++stats_.cache_misses;
  HERMES_RETURN_NOT_OK(EvictIfNeeded());
  auto page = std::make_unique<Page>();
  page->id = id;
  page->pins = 1;
  HERMES_RETURN_NOT_OK(file_->ReadAt(static_cast<uint64_t>(id) * kPageSize,
                                     kPageSize, page->data.data()));
  ++stats_.physical_reads;
  Page* raw = page.get();
  frames_[id] = std::move(page);
  if (page_table_.size() <= id) page_table_.resize(id + 1, nullptr);
  page_table_[id] = raw;
  lru_.push_front(id);
  lru_pos_[id] = lru_.begin();
  return raw;
}

void Pager::Unpin(Page* page, bool dirty) {
  common::MutexLock lock(&mu_);
  HERMES_CHECK(page != nullptr && page->pins > 0) << "unbalanced Unpin";
  if (dirty) page->dirty = true;
  --page->pins;
}

Status Pager::EvictIfNeeded() {
  while (frames_.size() >= cache_capacity_) {
    // Scan from the LRU tail for an unpinned victim.
    PageId victim = kInvalidPage;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (frames_[*it]->pins == 0) {
        victim = *it;
        break;
      }
    }
    if (victim == kInvalidPage) {
      // Everything pinned: allow temporary overflow rather than failing.
      return Status::OK();
    }
    Page* page = frames_[victim].get();
    if (page->dirty) {
      HERMES_RETURN_NOT_OK(WriteBack(page));
    }
    lru_.erase(lru_pos_[victim]);
    lru_pos_.erase(victim);
    page_table_[victim] = nullptr;
    frames_.erase(victim);
    ++stats_.evictions;
  }
  return Status::OK();
}

Status Pager::WriteBack(Page* page) {
  HERMES_RETURN_NOT_OK(file_->WriteAt(
      static_cast<uint64_t>(page->id) * kPageSize, kPageSize,
      page->data.data()));
  ++stats_.physical_writes;
  page->dirty = false;
  return Status::OK();
}

Status Pager::Flush() {
  common::MutexLock lock(&mu_);
  // HERMES-LINT-ALLOW(unordered-iteration): every dirty page is written
  // to its own file position; write order cannot affect the bytes.
  for (auto& [id, page] : frames_) {
    if (page->dirty) {
      HERMES_RETURN_NOT_OK(WriteBack(page.get()));
    }
  }
  return file_->Sync();
}

}  // namespace hermes::storage
