#include "storage/env.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hermes::storage {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// POSIX environment
// ---------------------------------------------------------------------------

class PosixRWFile : public RandomRWFile {
 public:
  explicit PosixRWFile(std::FILE* f) : f_(f) {}
  ~PosixRWFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  Status ReadAt(uint64_t offset, size_t n, char* buf) const override {
    common::MutexLock lock(&mu_);
    if (std::fseek(f_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IOError("seek failed");
    }
    const size_t got = std::fread(buf, 1, n, f_);
    if (got != n) return Status::IOError("short read");
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, size_t n, const char* buf) override {
    common::MutexLock lock(&mu_);
    if (std::fseek(f_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IOError("seek failed");
    }
    const size_t put = std::fwrite(buf, 1, n, f_);
    if (put != n) return Status::IOError("short write");
    return Status::OK();
  }

  StatusOr<uint64_t> Size() const override {
    common::MutexLock lock(&mu_);
    if (std::fseek(f_, 0, SEEK_END) != 0) return Status::IOError("seek failed");
    const long sz = std::ftell(f_);
    if (sz < 0) return Status::IOError("ftell failed");
    return static_cast<uint64_t>(sz);
  }

  Status Sync() override {
    common::MutexLock lock(&mu_);
    if (std::fflush(f_) != 0) return Status::IOError("flush failed");
    // A durability barrier, not just a stdio flush: the WAL's group
    // commit acks FLUSH only after this returns.
    if (fsync(fileno(f_)) != 0) return Status::IOError("fsync failed");
    return Status::OK();
  }

 private:
  /// Guarded: stdio seek+read/write pairs on one handle must not
  /// interleave. The pointer itself is set once in the constructor.
  std::FILE* f_ GUARDED_BY(mu_);
  mutable common::Mutex mu_;
};

class PosixEnv : public Env {
 public:
  StatusOr<std::unique_ptr<RandomRWFile>> NewRWFile(
      const std::string& fname) override {
    // "a" then reopen r+b so the file exists without truncation.
    std::FILE* f = std::fopen(fname.c_str(), "r+b");
    if (f == nullptr) {
      f = std::fopen(fname.c_str(), "w+b");
    }
    if (f == nullptr) return Status::IOError("cannot open " + fname);
    return std::unique_ptr<RandomRWFile>(new PosixRWFile(f));
  }

  bool FileExists(const std::string& fname) const override {
    std::error_code ec;
    return fs::exists(fname, ec) && fs::is_regular_file(fname, ec);
  }

  Status DeleteFile(const std::string& fname) override {
    std::error_code ec;
    if (!fs::remove(fname, ec) || ec) {
      return Status::IOError("cannot delete " + fname);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& src, const std::string& dst) override {
    std::error_code ec;
    fs::rename(src, dst, ec);
    if (ec) {
      return Status::IOError("cannot rename " + src + " -> " + dst + ": " +
                             ec.message());
    }
    return Status::OK();
  }

  Status CreateDirs(const std::string& dirname) override {
    std::error_code ec;
    fs::create_directories(dirname, ec);
    if (ec) return Status::IOError("cannot create dir " + dirname);
    return Status::OK();
  }

  StatusOr<std::vector<std::string>> ListDir(
      const std::string& dirname) const override {
    std::error_code ec;
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(dirname, ec)) {
      if (entry.is_regular_file()) names.push_back(entry.path().filename());
    }
    if (ec) return Status::IOError("cannot list dir " + dirname);
    std::sort(names.begin(), names.end());
    return names;
  }
};

// ---------------------------------------------------------------------------
// In-memory environment
// ---------------------------------------------------------------------------

struct MemFileData {
  common::Mutex mu;
  std::vector<char> bytes GUARDED_BY(mu);
};

class MemRWFile : public RandomRWFile {
 public:
  explicit MemRWFile(std::shared_ptr<MemFileData> data)
      : data_(std::move(data)) {}

  Status ReadAt(uint64_t offset, size_t n, char* buf) const override {
    common::MutexLock lock(&data_->mu);
    if (offset + n > data_->bytes.size()) return Status::IOError("short read");
    std::copy_n(data_->bytes.data() + offset, n, buf);
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, size_t n, const char* buf) override {
    common::MutexLock lock(&data_->mu);
    if (offset + n > data_->bytes.size()) data_->bytes.resize(offset + n);
    std::copy_n(buf, n, data_->bytes.data() + offset);
    return Status::OK();
  }

  StatusOr<uint64_t> Size() const override {
    common::MutexLock lock(&data_->mu);
    return static_cast<uint64_t>(data_->bytes.size());
  }

  Status Sync() override { return Status::OK(); }

 private:
  std::shared_ptr<MemFileData> data_;
};

class MemEnv : public Env {
 public:
  StatusOr<std::unique_ptr<RandomRWFile>> NewRWFile(
      const std::string& fname) override {
    common::MutexLock lock(&mu_);
    auto& slot = files_[fname];
    if (slot == nullptr) slot = std::make_shared<MemFileData>();
    return std::unique_ptr<RandomRWFile>(new MemRWFile(slot));
  }

  bool FileExists(const std::string& fname) const override {
    common::MutexLock lock(&mu_);
    return files_.count(fname) > 0;
  }

  Status DeleteFile(const std::string& fname) override {
    common::MutexLock lock(&mu_);
    if (files_.erase(fname) == 0) {
      return Status::NotFound("no such file " + fname);
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& src, const std::string& dst) override {
    common::MutexLock lock(&mu_);
    auto it = files_.find(src);
    if (it == files_.end()) {
      return Status::NotFound("no such file " + src);
    }
    if (src == dst) return Status::OK();
    // Replace-on-rename, like POSIX rename(2). Handles already open on a
    // replaced `dst` keep their old (now unlinked) contents.
    files_[dst] = std::move(it->second);
    files_.erase(src);
    return Status::OK();
  }

  Status CreateDirs(const std::string&) override { return Status::OK(); }

  StatusOr<std::vector<std::string>> ListDir(
      const std::string& dirname) const override {
    common::MutexLock lock(&mu_);
    std::vector<std::string> names;
    std::string prefix = dirname;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    for (const auto& [name, data] : files_) {
      if (name.rfind(prefix, 0) == 0) {
        std::string rest = name.substr(prefix.size());
        if (rest.find('/') == std::string::npos) names.push_back(rest);
      }
    }
    std::sort(names.begin(), names.end());
    return names;
  }

 private:
  mutable common::Mutex mu_;
  std::map<std::string, std::shared_ptr<MemFileData>> files_ GUARDED_BY(mu_);
};

}  // namespace

Env* Env::Posix() {
  static PosixEnv* env = new PosixEnv();  // Never destroyed (static-safe).
  return env;
}

std::unique_ptr<Env> Env::NewMemEnv() { return std::make_unique<MemEnv>(); }

}  // namespace hermes::storage
