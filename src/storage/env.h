#ifndef HERMES_STORAGE_ENV_H_
#define HERMES_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace hermes::storage {

/// \brief Random-access read/write file handle used by the pager.
class RandomRWFile {
 public:
  virtual ~RandomRWFile() = default;

  /// Reads exactly `n` bytes at `offset` into `buf`; short reads are errors.
  virtual Status ReadAt(uint64_t offset, size_t n, char* buf) const = 0;
  /// Writes `n` bytes at `offset`, extending the file if needed.
  virtual Status WriteAt(uint64_t offset, size_t n, const char* buf) = 0;
  /// Current file size in bytes.
  virtual StatusOr<uint64_t> Size() const = 0;
  /// Durability barrier (no-op for the in-memory Env).
  virtual Status Sync() = 0;
};

/// \brief Filesystem abstraction (RocksDB-style `Env`), so the whole engine
/// runs identically on the real filesystem and fully in memory (tests).
class Env {
 public:
  virtual ~Env() = default;

  /// Opens (creating if absent) a random-access read/write file.
  virtual StatusOr<std::unique_ptr<RandomRWFile>> NewRWFile(
      const std::string& fname) = 0;

  virtual bool FileExists(const std::string& fname) const = 0;
  virtual Status DeleteFile(const std::string& fname) = 0;
  /// Atomically renames `src` to `dst`, replacing any existing `dst` —
  /// the publication primitive of the checkpoint manifest: readers see
  /// either the old manifest or the new one, never a partial write.
  virtual Status RenameFile(const std::string& src, const std::string& dst) = 0;
  /// Creates a directory (and parents). No-op when it exists.
  virtual Status CreateDirs(const std::string& dirname) = 0;
  /// Lists regular files directly under `dirname` (names only, sorted).
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& dirname) const = 0;

  /// Process-wide POSIX environment.
  static Env* Posix();
  /// Creates a private in-memory environment.
  static std::unique_ptr<Env> NewMemEnv();
};

}  // namespace hermes::storage

#endif  // HERMES_STORAGE_ENV_H_
