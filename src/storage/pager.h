#ifndef HERMES_STORAGE_PAGER_H_
#define HERMES_STORAGE_PAGER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "storage/env.h"

namespace hermes::storage {

/// Fixed page size of the engine (PostgreSQL-compatible 8 KiB).
inline constexpr size_t kPageSize = 8192;

using PageId = uint32_t;
inline constexpr PageId kInvalidPage = 0xFFFFFFFFu;

/// \brief A pinned in-memory page frame.
struct Page {
  PageId id = kInvalidPage;
  std::array<char, kPageSize> data{};
  bool dirty = false;
  int pins = 0;
};

/// \brief I/O counters exposed for the benchmark harness.
struct PagerStats {
  uint64_t physical_reads = 0;
  uint64_t physical_writes = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t evictions = 0;
};

/// \brief Page allocator + LRU buffer pool over one file.
///
/// Pages are allocated append-only (the engine frees space by dropping whole
/// partition files, matching the ReTraTree storage discipline). Page reads
/// pin frames; callers must `Unpin` when done. Dirty pages are written back
/// on eviction and on `Flush`.
///
/// Concurrency: the pool metadata (frames, LRU, pins, stats) mutates even
/// on pure reads, so every entry point locks an internal mutex — which is
/// what lets the owning `HeapFile`/`Gist` take only a *shared* lock on
/// their read paths. Page *payloads* are not guarded here: the owner's
/// reader/writer lock keeps readers of `Page::data` from racing writers.
class Pager {
 public:
  /// Opens `fname` under `env`. `cache_pages` bounds the buffer pool.
  static StatusOr<std::unique_ptr<Pager>> Open(Env* env,
                                               const std::string& fname,
                                               size_t cache_pages = 256);

  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Allocates a zeroed page at the end of the file; returns it pinned.
  StatusOr<Page*> Allocate();

  /// Fetches a page, reading from disk on a cache miss; returns it pinned.
  StatusOr<Page*> Fetch(PageId id);

  /// Releases a pin. Marks the page dirty when `dirty` is true.
  void Unpin(Page* page, bool dirty);

  /// Writes back all dirty pages and syncs the file.
  Status Flush();

  /// Number of pages in the file (allocated so far). Lock-free: readers
  /// use it for bounds checks without entering the pool mutex.
  PageId num_pages() const {
    return num_pages_.load(std::memory_order_acquire);
  }

  /// Point-in-time counter snapshot (by value: the counters mutate under
  /// the pool mutex, so a reference would race).
  PagerStats stats() const {
    common::MutexLock lock(&mu_);
    return stats_;
  }
  void ResetStats() {
    common::MutexLock lock(&mu_);
    stats_ = PagerStats{};
  }

 private:
  Pager(Env* env, std::unique_ptr<RandomRWFile> file, size_t cache_pages);

  Status EvictIfNeeded() REQUIRES(mu_);
  Status WriteBack(Page* page) REQUIRES(mu_);

  Env* env_;
  std::unique_ptr<RandomRWFile> file_;
  size_t cache_capacity_;
  std::atomic<PageId> num_pages_{0};

  /// Guards frames_/page_table_/lru_/pins/stats_ (see class comment).
  mutable common::Mutex mu_;

  std::unordered_map<PageId, std::unique_ptr<Page>> frames_ GUARDED_BY(mu_);
  /// O(1) id -> frame fast path for the hot read paths (index descents);
  /// entries are nullptr for non-resident pages.
  std::vector<Page*> page_table_ GUARDED_BY(mu_);
  /// Approximate recency order (refreshed on miss, not on every hit — a
  /// FIFO/LRU hybrid that keeps cache hits branch-cheap).
  std::list<PageId> lru_ GUARDED_BY(mu_);
  std::unordered_map<PageId, std::list<PageId>::iterator> lru_pos_
      GUARDED_BY(mu_);

  PagerStats stats_ GUARDED_BY(mu_);
};

/// \brief RAII pin guard.
class PinnedPage {
 public:
  PinnedPage(Pager* pager, Page* page) : pager_(pager), page_(page) {}
  ~PinnedPage() {
    if (page_ != nullptr) pager_->Unpin(page_, dirty_);
  }
  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;
  PinnedPage(PinnedPage&& o) noexcept
      : pager_(o.pager_), page_(o.page_), dirty_(o.dirty_) {
    o.page_ = nullptr;
  }

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  void MarkDirty() { dirty_ = true; }

 private:
  Pager* pager_;
  Page* page_;
  bool dirty_ = false;
};

}  // namespace hermes::storage

#endif  // HERMES_STORAGE_PAGER_H_
