#include "storage/fault_env.h"

#include <utility>

namespace hermes::storage {

// At namespace scope (not anonymous) so FaultInjectionEnv's friend
// declaration actually grants it access to the failpoint atomics.
class FaultRWFile : public RandomRWFile {
 public:
  FaultRWFile(std::unique_ptr<RandomRWFile> base, FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status ReadAt(uint64_t offset, size_t n, char* buf) const override {
    return base_->ReadAt(offset, n, buf);
  }

  Status WriteAt(uint64_t offset, size_t n, const char* buf) override {
    const int64_t budget =
        env_->write_budget_.load(std::memory_order_relaxed);
    size_t allowed = n;
    if (budget >= 0) {
      // Claim bytes from the shared budget; whatever does not fit is
      // torn off the end of this write, mimicking a device that ran out
      // of space (or a crash) mid-write.
      int64_t cur = budget;
      for (;;) {
        const int64_t grant =
            cur < static_cast<int64_t>(n) ? cur : static_cast<int64_t>(n);
        if (env_->write_budget_.compare_exchange_weak(
                cur, cur - grant, std::memory_order_relaxed)) {
          allowed = static_cast<size_t>(grant);
          break;
        }
        if (cur < 0) {  // Limit disabled concurrently.
          allowed = n;
          break;
        }
      }
    }
    if (allowed > 0) {
      HERMES_RETURN_NOT_OK(base_->WriteAt(offset, allowed, buf));
      env_->bytes_written_.fetch_add(allowed, std::memory_order_relaxed);
    }
    if (allowed < n) {
      env_->writes_failed_.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError("injected write failure (budget exhausted, " +
                             std::to_string(allowed) + "/" +
                             std::to_string(n) + " bytes persisted)");
    }
    return Status::OK();
  }

  StatusOr<uint64_t> Size() const override { return base_->Size(); }

  Status Sync() override {
    if (env_->fail_syncs_.load(std::memory_order_relaxed)) {
      return Status::IOError("injected fsync failure");
    }
    return base_->Sync();
  }

 private:
  std::unique_ptr<RandomRWFile> base_;
  FaultInjectionEnv* env_;
};

StatusOr<std::unique_ptr<RandomRWFile>> FaultInjectionEnv::NewRWFile(
    const std::string& fname) {
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<RandomRWFile> base,
                          base_->NewRWFile(fname));
  return std::unique_ptr<RandomRWFile>(
      new FaultRWFile(std::move(base), this));
}

Status FaultInjectionEnv::RenameFile(const std::string& src,
                                     const std::string& dst) {
  // Rename consumes no byte budget (it is metadata), but a fully
  // exhausted budget means "the disk is gone": fail the publication too,
  // so a checkpoint cannot appear durable past an injected ENOSPC.
  const int64_t budget = write_budget_.load(std::memory_order_relaxed);
  if (budget == 0) {
    writes_failed_.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("injected rename failure (budget exhausted)");
  }
  return base_->RenameFile(src, dst);
}

}  // namespace hermes::storage
