#include "baselines/convoys.h"

#include <algorithm>
#include <map>

#include "baselines/dbscan.h"

namespace hermes::baselines {

namespace {
/// A growing convoy candidate.
struct Candidate {
  std::set<traj::ObjectId> objects;
  double start_time = 0.0;
  double last_time = 0.0;
};

std::set<traj::ObjectId> Intersect(const std::set<traj::ObjectId>& a,
                                   const std::set<traj::ObjectId>& b) {
  std::set<traj::ObjectId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(out, out.begin()));
  return out;
}
}  // namespace

std::vector<Convoy> DiscoverConvoys(const traj::TrajectoryStore& store,
                                    const ConvoyParams& params) {
  std::vector<Convoy> convoys;
  const auto [t_lo, t_hi] = store.TimeDomain();
  if (t_hi <= t_lo || store.NumTrajectories() == 0) return convoys;

  std::vector<Candidate> candidates;
  auto emit = [&](const Candidate& c) {
    if (c.objects.size() < params.m) return;
    const size_t life = static_cast<size_t>(
                            (c.last_time - c.start_time) / params.snapshot_dt) +
                        1;
    if (life < params.k) return;
    Convoy conv;
    conv.objects = c.objects;
    conv.start_time = c.start_time;
    conv.end_time = c.last_time;
    convoys.push_back(std::move(conv));
  };

  for (double t = t_lo; t <= t_hi + 1e-9; t += params.snapshot_dt) {
    // Objects alive at t with their positions.
    std::vector<geom::Point2D> positions;
    std::vector<traj::ObjectId> ids;
    for (traj::TrajectoryId tid = 0; tid < store.NumTrajectories(); ++tid) {
      const traj::Trajectory& traj = store.Get(tid);
      if (auto p = traj.PositionAt(t)) {
        positions.push_back(*p);
        ids.push_back(traj.object_id());
      }
    }
    // Snapshot clusters.
    const Labels labels = DbscanPoints(positions, params.eps, params.m);
    std::map<int, std::set<traj::ObjectId>> snapshot_clusters;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (labels[i] >= 0) snapshot_clusters[labels[i]].insert(ids[i]);
    }

    // Extend candidates (CMC intersection step).
    std::vector<Candidate> next;
    std::vector<bool> cluster_extended(snapshot_clusters.size(), false);
    for (const Candidate& cand : candidates) {
      bool extended = false;
      size_t ci = 0;
      for (const auto& [label, objs] : snapshot_clusters) {
        auto common = Intersect(cand.objects, objs);
        if (common.size() >= params.m) {
          Candidate grown;
          grown.objects = std::move(common);
          grown.start_time = cand.start_time;
          grown.last_time = t;
          next.push_back(std::move(grown));
          cluster_extended[ci] = true;
          extended = true;
        }
        ++ci;
      }
      if (!extended) emit(cand);  // The candidate's life ends here.
    }
    // Every snapshot cluster also starts a fresh candidate (unless it only
    // continues an existing one with the same object set).
    size_t ci = 0;
    for (const auto& [label, objs] : snapshot_clusters) {
      if (objs.size() >= params.m) {
        bool duplicate = false;
        for (const Candidate& cand : next) {
          if (cand.last_time == t && cand.objects == objs) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          Candidate fresh;
          fresh.objects = objs;
          fresh.start_time = t;
          fresh.last_time = t;
          next.push_back(std::move(fresh));
        }
      }
      ++ci;
    }
    candidates = std::move(next);
  }
  for (const Candidate& cand : candidates) emit(cand);

  // Drop convoys strictly dominated by another (subset objects within a
  // containing lifetime).
  std::vector<Convoy> filtered;
  for (size_t i = 0; i < convoys.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < convoys.size() && !dominated; ++j) {
      if (i == j) continue;
      const bool subset = std::includes(
          convoys[j].objects.begin(), convoys[j].objects.end(),
          convoys[i].objects.begin(), convoys[i].objects.end());
      const bool within = convoys[j].start_time <= convoys[i].start_time &&
                          convoys[j].end_time >= convoys[i].end_time;
      const bool strictly_smaller =
          convoys[i].objects.size() < convoys[j].objects.size() ||
          (convoys[j].start_time < convoys[i].start_time ||
           convoys[j].end_time > convoys[i].end_time);
      if (subset && within && strictly_smaller) dominated = true;
    }
    if (!dominated) filtered.push_back(convoys[i]);
  }
  return filtered;
}

}  // namespace hermes::baselines
