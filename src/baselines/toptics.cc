#include "baselines/toptics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "traj/distance.h"

namespace hermes::baselines {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

TOpticsResult RunTOptics(const traj::TrajectoryStore& store,
                         const TOpticsParams& params) {
  const size_t n = store.NumTrajectories();
  TOpticsResult result;
  result.labels.assign(n, -1);
  if (n == 0) return result;

  // Pairwise time-aware distances (symmetric).
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, kInf));
  for (size_t i = 0; i < n; ++i) {
    dist[i][i] = 0.0;
    for (size_t j = i + 1; j < n; ++j) {
      const double d = traj::ClusteringDistance(store.Get(i), store.Get(j),
                                                params.min_overlap_ratio);
      dist[i][j] = dist[j][i] = d;
    }
  }

  auto neighbors = [&](size_t i) {
    std::vector<size_t> out;
    for (size_t j = 0; j < n; ++j) {
      if (j != i && dist[i][j] <= params.eps) out.push_back(j);
    }
    return out;
  };
  auto core_distance = [&](size_t i) {
    std::vector<double> ds;
    for (size_t j = 0; j < n; ++j) {
      if (j != i && dist[i][j] <= params.eps) ds.push_back(dist[i][j]);
    }
    if (ds.size() + 1 < params.min_pts) return kInf;
    std::nth_element(ds.begin(), ds.begin() + (params.min_pts - 2), ds.end());
    return ds[params.min_pts - 2];  // (minPts-1)-th neighbor distance.
  };

  // OPTICS main loop with a lazily-filtered priority queue.
  std::vector<bool> processed(n, false);
  std::vector<double> reach(n, kInf);
  result.ordering.reserve(n);
  result.reachability.reserve(n);

  using QItem = std::pair<double, size_t>;  // (reachability, id)
  for (size_t seed = 0; seed < n; ++seed) {
    if (processed[seed]) continue;
    std::priority_queue<QItem, std::vector<QItem>, std::greater<QItem>> pq;
    pq.push({kInf, seed});
    while (!pq.empty()) {
      auto [r, i] = pq.top();
      pq.pop();
      if (processed[i]) continue;
      processed[i] = true;
      result.ordering.push_back(i);
      result.reachability.push_back(reach[i]);

      const double core = core_distance(i);
      if (!std::isfinite(core)) continue;
      for (size_t j : neighbors(i)) {
        if (processed[j]) continue;
        const double new_reach = std::max(core, dist[i][j]);
        if (new_reach < reach[j]) {
          reach[j] = new_reach;
          pq.push({new_reach, j});
        }
      }
    }
  }

  // Flat extraction: a new cluster starts wherever reachability exceeds the
  // threshold and the next point is density-reachable.
  const double cut = params.extract_eps > 0.0 ? params.extract_eps : params.eps;
  int current = -1;
  for (size_t k = 0; k < result.ordering.size(); ++k) {
    const size_t i = result.ordering[k];
    if (result.reachability[k] > cut) {
      if (core_distance(i) <= cut) {
        current = static_cast<int>(result.num_clusters++);
        result.labels[i] = current;
      } else {
        result.labels[i] = -1;
        current = -1;
      }
    } else if (current >= 0) {
      result.labels[i] = current;
    }
  }
  return result;
}

}  // namespace hermes::baselines
