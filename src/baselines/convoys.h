#ifndef HERMES_BASELINES_CONVOYS_H_
#define HERMES_BASELINES_CONVOYS_H_

#include <set>
#include <vector>

#include "traj/trajectory_store.h"

namespace hermes::baselines {

/// \brief Parameters of convoy discovery (Jeung et al., VLDB 2008, CMC).
struct ConvoyParams {
  double eps = 100.0;        ///< DBSCAN radius per snapshot.
  size_t m = 3;              ///< Minimum objects per convoy.
  size_t k = 3;              ///< Minimum consecutive snapshots (lifetime).
  double snapshot_dt = 60.0; ///< Snapshot grid step (seconds).
};

/// \brief A discovered convoy: an object set co-moving over
/// [start_time, end_time] (inclusive snapshot bounds).
struct Convoy {
  std::set<traj::ObjectId> objects;
  double start_time = 0.0;
  double end_time = 0.0;

  size_t Lifetime(double dt) const {
    return static_cast<size_t>((end_time - start_time) / dt) + 1;
  }
};

/// \brief Coherent Moving Cluster algorithm: density-based clusters per
/// time snapshot, intersected across consecutive snapshots; convoys are
/// candidates alive for >= k snapshots with >= m shared objects.
/// Exemplifies the hard-to-tune co-movement parameters (m, k, eps) the
/// paper contrasts with S2T/QuT.
std::vector<Convoy> DiscoverConvoys(const traj::TrajectoryStore& store,
                                    const ConvoyParams& params);

}  // namespace hermes::baselines

#endif  // HERMES_BASELINES_CONVOYS_H_
