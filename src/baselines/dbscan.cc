#include "baselines/dbscan.h"

#include <cmath>
#include <cstdint>
#include <deque>
#include <unordered_map>

namespace hermes::baselines {

namespace {
/// Hashable grid cell.
struct CellKey {
  int64_t cx;
  int64_t cy;
  bool operator==(const CellKey& o) const { return cx == o.cx && cy == o.cy; }
};
struct CellHash {
  size_t operator()(const CellKey& k) const {
    return std::hash<int64_t>()(k.cx * 73856093LL ^ k.cy * 19349663LL);
  }
};
}  // namespace

Labels DbscanPoints(const std::vector<geom::Point2D>& points, double eps,
                    size_t min_pts) {
  const size_t n = points.size();
  // Grid index with cell size eps: all eps-neighbors live in the 3x3
  // neighborhood of a point's cell.
  std::unordered_map<CellKey, std::vector<size_t>, CellHash> grid;
  auto cell_of = [&](const geom::Point2D& p) {
    return CellKey{static_cast<int64_t>(std::floor(p.x / eps)),
                   static_cast<int64_t>(std::floor(p.y / eps))};
  };
  for (size_t i = 0; i < n; ++i) grid[cell_of(points[i])].push_back(i);

  auto neighbors = [&](size_t i) {
    std::vector<size_t> out;
    const CellKey c = cell_of(points[i]);
    const double eps2 = eps * eps;
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        auto it = grid.find({c.cx + dx, c.cy + dy});
        if (it == grid.end()) continue;
        for (size_t j : it->second) {
          if (j != i && geom::SquaredDistance(points[i], points[j]) <= eps2) {
            out.push_back(j);
          }
        }
      }
    }
    return out;
  };
  return DbscanGeneric(n, neighbors, min_pts);
}

Labels DbscanGeneric(
    size_t n, const std::function<std::vector<size_t>(size_t)>& neighbors,
    size_t min_pts) {
  constexpr int kUnvisited = -2;
  constexpr int kNoise = -1;
  Labels labels(n, kUnvisited);
  int next_cluster = 0;

  for (size_t i = 0; i < n; ++i) {
    if (labels[i] != kUnvisited) continue;
    std::vector<size_t> nb = neighbors(i);
    if (nb.size() + 1 < min_pts) {
      labels[i] = kNoise;
      continue;
    }
    const int cid = next_cluster++;
    labels[i] = cid;
    std::deque<size_t> frontier(nb.begin(), nb.end());
    while (!frontier.empty()) {
      const size_t j = frontier.front();
      frontier.pop_front();
      if (labels[j] == kNoise) labels[j] = cid;  // Border point.
      if (labels[j] != kUnvisited) continue;
      labels[j] = cid;
      std::vector<size_t> nb_j = neighbors(j);
      if (nb_j.size() + 1 >= min_pts) {
        for (size_t k : nb_j) {
          if (labels[k] == kUnvisited || labels[k] == kNoise) {
            frontier.push_back(k);
          }
        }
      }
    }
  }
  return labels;
}

}  // namespace hermes::baselines
