#ifndef HERMES_BASELINES_RANGE_REBUILD_H_
#define HERMES_BASELINES_RANGE_REBUILD_H_

#include <memory>

#include "common/statusor.h"
#include "core/s2t_clustering.h"
#include "rtree/rtree3d.h"
#include "traj/trajectory_store.h"

namespace hermes::baselines {

/// \brief Phase timings of the scenario-2 alternative pipeline.
struct RangeRebuildTimings {
  int64_t range_query_us = 0;
  int64_t index_build_us = 0;
  int64_t s2t_us = 0;
  int64_t TotalUs() const {
    return range_query_us + index_build_us + s2t_us;
  }
};

/// \brief Output: the from-scratch S2T result over the window plus the
/// phase breakdown.
struct RangeRebuildResult {
  traj::TrajectoryStore window_store;  ///< Materialized range-query result.
  core::S2TResult s2t;
  RangeRebuildTimings timings;
};

/// \brief The alternative the demo compares QuT-Clustering against:
/// (i) temporal range query over a global segment index, (ii) build a
/// fresh 3D R-tree on the result, (iii) run S2T-Clustering on it.
///
/// `global_index` is a pre-built pg3D-Rtree over all of `store`'s segments
/// (its construction is amortized setup, not part of the per-query cost).
StatusOr<RangeRebuildResult> RunRangeRebuild(
    const traj::TrajectoryStore& store, const rtree::RTree3D& global_index,
    double wi, double we, const core::S2TParams& s2t_params);

}  // namespace hermes::baselines

#endif  // HERMES_BASELINES_RANGE_REBUILD_H_
