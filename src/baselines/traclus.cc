#include "baselines/traclus.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "baselines/dbscan.h"
#include "common/mathutil.h"

namespace hermes::baselines {

namespace {

double Log2Safe(double x) { return std::log2(std::max(x, 1.0)); }

/// L(H): description length of the hypothesis — the length of the
/// candidate characteristic segment.
double MdlModelCost(const geom::Point2D& a, const geom::Point2D& b) {
  return Log2Safe(geom::Distance(a, b));
}

/// L(D|H): encoding cost of the original sub-polyline against the
/// candidate segment — per contained segment, log2 of its perpendicular
/// and angular distances to the candidate (Lee et al., Section 3.1).
double MdlDataCost(const traj::Trajectory& t, size_t first, size_t last) {
  const geom::Segment2D cand(t[first].xy(), t[last].xy());
  double cost = 0.0;
  for (size_t i = first; i < last; ++i) {
    const geom::Segment2D piece(t[i].xy(), t[i + 1].xy());
    const geom::TraclusComponents c = geom::TraclusComponentsOf(cand, piece);
    cost += Log2Safe(c.perpendicular) + Log2Safe(c.angular);
  }
  return cost;
}

}  // namespace

std::vector<size_t> PartitionCharacteristicPoints(const traj::Trajectory& t,
                                                  double mdl_advantage) {
  std::vector<size_t> cps;
  if (t.size() == 0) return cps;
  cps.push_back(0);
  if (t.size() == 1) return cps;

  size_t start = 0;
  size_t length = 1;
  while (start + length < t.size()) {
    const size_t cur = start + length;
    const double cost_par =
        MdlModelCost(t[start].xy(), t[cur].xy()) + MdlDataCost(t, start, cur);
    // No-partition cost: exact encoding of every segment.
    double cost_nopar = 0.0;
    for (size_t i = start; i < cur; ++i) {
      cost_nopar += Log2Safe(geom::Distance(t[i].xy(), t[i + 1].xy()));
    }
    if (cost_par > cost_nopar + mdl_advantage) {
      // Partitioning here would cost more than keeping raw points: emit the
      // previous point as a characteristic point.
      cps.push_back(cur - 1);
      start = cur - 1;
      length = 1;
    } else {
      ++length;
    }
  }
  if (cps.back() != t.size() - 1) cps.push_back(t.size() - 1);
  return cps;
}

TraclusResult RunTraclus(const traj::TrajectoryStore& store,
                         const TraclusParams& params) {
  TraclusResult result;

  // Phase 1: partition every trajectory into characteristic segments.
  for (traj::TrajectoryId tid = 0; tid < store.NumTrajectories(); ++tid) {
    const traj::Trajectory& t = store.Get(tid);
    const auto cps = PartitionCharacteristicPoints(t, params.mdl_advantage);
    for (size_t k = 0; k + 1 < cps.size(); ++k) {
      TraclusSegment seg;
      seg.geometry = geom::Segment2D(t[cps[k]].xy(), t[cps[k + 1]].xy());
      seg.source = tid;
      if (seg.geometry.Length() > 0.0) result.segments.push_back(seg);
    }
  }

  // Phase 2: density-based grouping with the weighted segment distance.
  const size_t n = result.segments.size();
  auto neighbors = [&](size_t i) {
    std::vector<size_t> out;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double d = geom::TraclusDistance(
          result.segments[i].geometry, result.segments[j].geometry,
          params.w_perpendicular, params.w_parallel, params.w_angular);
      if (d <= params.eps) out.push_back(j);
    }
    return out;
  };
  const Labels labels = DbscanGeneric(n, neighbors, params.min_lns);

  int max_label = -1;
  for (int l : labels) max_label = std::max(max_label, l);
  result.clusters.resize(static_cast<size_t>(max_label + 1));
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] < 0) {
      result.noise.push_back(i);
    } else {
      result.clusters[labels[i]].segment_indices.push_back(i);
    }
  }

  // Representative trajectory per cluster: average-direction sweep.
  for (auto& cluster : result.clusters) {
    std::unordered_set<traj::TrajectoryId> sources;
    geom::Point2D dir{0.0, 0.0};
    for (size_t si : cluster.segment_indices) {
      const auto& seg = result.segments[si];
      sources.insert(seg.source);
      geom::Point2D v = seg.geometry.b - seg.geometry.a;
      // Align all segments to a common orientation before averaging.
      if (v.x < 0.0 || (v.x == 0.0 && v.y < 0.0)) v = v * -1.0;
      dir = dir + v;
    }
    cluster.distinct_trajectories = sources.size();
    const double norm = geom::Norm(dir);
    if (norm <= 0.0) continue;
    dir = dir * (1.0 / norm);
    const geom::Point2D perp{-dir.y, dir.x};

    // Sweep endpoints ordered along the average direction.
    struct Event {
      double along;
      size_t seg;
    };
    std::vector<Event> events;
    for (size_t si : cluster.segment_indices) {
      const auto& g = result.segments[si].geometry;
      events.push_back({geom::Dot(g.a, dir), si});
      events.push_back({geom::Dot(g.b, dir), si});
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.along < b.along; });

    double last_along = -std::numeric_limits<double>::infinity();
    for (const Event& ev : events) {
      if (ev.along - last_along < params.sweep_gamma) continue;
      // Count segments crossing the sweep line, averaging their
      // perpendicular coordinate at the crossing.
      size_t crossing = 0;
      double sum_perp = 0.0;
      for (size_t si : cluster.segment_indices) {
        const auto& g = result.segments[si].geometry;
        double a0 = geom::Dot(g.a, dir);
        double a1 = geom::Dot(g.b, dir);
        geom::Point2D p0 = g.a;
        geom::Point2D p1 = g.b;
        if (a0 > a1) {
          std::swap(a0, a1);
          std::swap(p0, p1);
        }
        if (a0 <= ev.along && ev.along <= a1) {
          ++crossing;
          const double u =
              a1 > a0 ? (ev.along - a0) / (a1 - a0) : 0.0;
          const geom::Point2D at = p0 + (p1 - p0) * u;
          sum_perp += geom::Dot(at, perp);
        }
      }
      if (crossing >= params.sweep_min_lines) {
        const double avg_perp = sum_perp / static_cast<double>(crossing);
        cluster.representative.push_back(dir * ev.along + perp * avg_perp);
        last_along = ev.along;
      }
    }
  }
  return result;
}

}  // namespace hermes::baselines
