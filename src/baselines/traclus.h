#ifndef HERMES_BASELINES_TRACLUS_H_
#define HERMES_BASELINES_TRACLUS_H_

#include <vector>

#include "geom/segment.h"
#include "traj/trajectory_store.h"

namespace hermes::baselines {

/// \brief Parameters of TRACLUS (Lee, Han & Whang, SIGMOD 2007).
struct TraclusParams {
  double eps = 100.0;    ///< Segment-distance neighborhood radius.
  size_t min_lns = 3;    ///< MinLns density threshold.
  /// MDL partitioning cost advantage required to emit a characteristic
  /// point (0 = standard MDL comparison).
  double mdl_advantage = 0.0;
  /// Weights of the three distance components.
  double w_perpendicular = 1.0;
  double w_parallel = 1.0;
  double w_angular = 1.0;
  /// Representative-trajectory sweep: min segments crossing the sweep line.
  size_t sweep_min_lines = 3;
  /// Min distance between consecutive representative points.
  double sweep_gamma = 20.0;
};

/// \brief A partitioned characteristic segment with provenance.
struct TraclusSegment {
  geom::Segment2D geometry;
  traj::TrajectoryId source = 0;
};

/// \brief One TRACLUS cluster: member segments + representative polyline.
struct TraclusCluster {
  std::vector<size_t> segment_indices;
  std::vector<geom::Point2D> representative;
  size_t distinct_trajectories = 0;
};

/// \brief Output of the full TRACLUS pipeline.
struct TraclusResult {
  std::vector<TraclusSegment> segments;  ///< All characteristic segments.
  std::vector<TraclusCluster> clusters;
  std::vector<size_t> noise;             ///< Segment indices not clustered.
};

/// \brief Approximate-MDL partitioning of one trajectory into
/// characteristic points (returns sample indices, first and last included).
std::vector<size_t> PartitionCharacteristicPoints(const traj::Trajectory& t,
                                                  double mdl_advantage = 0.0);

/// \brief Runs partition-and-group TRACLUS over a MOD. Spatial-only: the
/// temporal dimension is ignored by design — this is exactly the
/// limitation the Hermes framework addresses.
TraclusResult RunTraclus(const traj::TrajectoryStore& store,
                         const TraclusParams& params);

}  // namespace hermes::baselines

#endif  // HERMES_BASELINES_TRACLUS_H_
