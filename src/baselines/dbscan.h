#ifndef HERMES_BASELINES_DBSCAN_H_
#define HERMES_BASELINES_DBSCAN_H_

#include <functional>
#include <vector>

#include "geom/point.h"

namespace hermes::baselines {

/// Cluster label of a point: >= 0 cluster id, -1 noise.
using Labels = std::vector<int>;

/// \brief DBSCAN over 2D points with a uniform-grid neighbor index
/// (cell = eps). Used by the Convoys baseline's per-snapshot clustering.
Labels DbscanPoints(const std::vector<geom::Point2D>& points, double eps,
                    size_t min_pts);

/// \brief Generic DBSCAN over `n` items with a caller-supplied
/// eps-neighborhood oracle (excluding the item itself). Used by TRACLUS's
/// line-segment grouping, where the distance is not a metric embedding.
Labels DbscanGeneric(
    size_t n, const std::function<std::vector<size_t>(size_t)>& neighbors,
    size_t min_pts);

}  // namespace hermes::baselines

#endif  // HERMES_BASELINES_DBSCAN_H_
