#include "baselines/range_rebuild.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "rtree/str_bulk_load.h"
#include "storage/env.h"

namespace hermes::baselines {

namespace {
int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

StatusOr<RangeRebuildResult> RunRangeRebuild(
    const traj::TrajectoryStore& store, const rtree::RTree3D& global_index,
    double wi, double we, const core::S2TParams& s2t_params) {
  if (we <= wi) return Status::InvalidArgument("empty window");
  RangeRebuildResult result;

  // (i) Temporal range query: all segments intersecting W, grouped back
  // into per-trajectory windows, then materialized (sliced to W).
  int64_t t0 = NowUs();
  const double kBig = 1e18;
  geom::Mbb3D window(-kBig, -kBig, wi, kBig, kBig, we);
  HERMES_ASSIGN_OR_RETURN(std::vector<uint64_t> hits,
                          global_index.Search(window));
  std::set<traj::TrajectoryId> touched;
  for (uint64_t datum : hits) {
    touched.insert(rtree::UnpackSegmentRef(datum).trajectory);
  }
  for (traj::TrajectoryId tid : touched) {
    traj::Trajectory sliced = store.Get(tid).Slice(wi, we);
    if (sliced.size() >= 2) {
      HERMES_ASSIGN_OR_RETURN(traj::TrajectoryId ignored,
                              result.window_store.Add(std::move(sliced)));
      (void)ignored;
    }
  }
  result.timings.range_query_us = NowUs() - t0;

  // (ii) Build a fresh pg3D-Rtree on the materialized result.
  t0 = NowUs();
  auto env = storage::Env::NewMemEnv();
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<rtree::RTree3D> fresh,
                          rtree::BuildSegmentIndex(env.get(), "window.idx",
                                                   result.window_store));
  result.timings.index_build_us = NowUs() - t0;

  // (iii) S2T-Clustering from scratch over the window.
  t0 = NowUs();
  core::S2TClustering s2t(s2t_params);
  HERMES_ASSIGN_OR_RETURN(result.s2t,
                          s2t.RunWithIndex(result.window_store, *fresh));
  result.timings.s2t_us = NowUs() - t0;
  return result;
}

}  // namespace hermes::baselines
