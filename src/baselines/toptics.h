#ifndef HERMES_BASELINES_TOPTICS_H_
#define HERMES_BASELINES_TOPTICS_H_

#include <vector>

#include "traj/trajectory_store.h"

namespace hermes::baselines {

/// \brief Parameters of T-OPTICS (Nanni & Pedreschi, JIIS 2006): OPTICS
/// over whole trajectories with the time-synchronized average distance.
struct TOpticsParams {
  double eps = 500.0;            ///< Generating distance.
  size_t min_pts = 4;            ///< Core-point threshold.
  double min_overlap_ratio = 0.1;///< Temporal overlap needed for a finite
                                 ///< distance.
  /// Reachability threshold used for flat cluster extraction (defaults to
  /// eps when <= 0).
  double extract_eps = -1.0;
};

/// \brief The OPTICS ordering with reachability distances.
struct TOpticsResult {
  std::vector<traj::TrajectoryId> ordering;
  std::vector<double> reachability;  ///< Parallel to `ordering`; inf = new
                                     ///< cluster seed.
  /// Flat clusters extracted at `extract_eps`: label per trajectory
  /// (cluster id >= 0, -1 noise).
  std::vector<int> labels;
  size_t num_clusters = 0;
};

/// Runs T-OPTICS over all trajectories of the MOD.
TOpticsResult RunTOptics(const traj::TrajectoryStore& store,
                         const TOpticsParams& params);

}  // namespace hermes::baselines

#endif  // HERMES_BASELINES_TOPTICS_H_
