#ifndef HERMES_SAMPLING_SACO_SAMPLING_H_
#define HERMES_SAMPLING_SACO_SAMPLING_H_

#include <vector>

#include "traj/sub_trajectory.h"

namespace hermes::sampling {

/// \brief Parameters of the SaCO sampling step.
struct SamplingParams {
  /// Maximum number of representatives (|S| bound).
  size_t max_representatives = 32;
  /// Stop when the next marginal gain drops below this fraction of the
  /// first pick's gain.
  double gain_stop_ratio = 0.05;
  /// Similarity bandwidth (same spatial unit as voting sigma).
  double sigma = 100.0;
  /// Minimum temporal overlap ratio for two sub-trajectories to be
  /// considered similar at all.
  double min_overlap_ratio = 0.5;
};

/// \brief Greedy voting-and-coverage sampling: repeatedly selects the
/// sub-trajectory maximizing
///   gain(r) = V̄(r) · duration(r) · (1 − max_{s∈S} sim(r, s)),
/// i.e. highly voted sub-trajectories that cover parts of the
/// spatio-temporal domain not yet represented — the paper's "highly voted
/// trajectories ... which would cover the 3D space occupied by the entire
/// dataset as much as possible".
///
/// Returns indices into `subs`, in selection order.
std::vector<size_t> SelectRepresentatives(
    const std::vector<traj::SubTrajectory>& subs, const SamplingParams& params);

/// The base score used by the greedy selection (exposed for tests).
double BaseScore(const traj::SubTrajectory& st);

}  // namespace hermes::sampling

#endif  // HERMES_SAMPLING_SACO_SAMPLING_H_
