#include "sampling/saco_sampling.h"

#include <algorithm>

#include "traj/distance.h"

namespace hermes::sampling {

double BaseScore(const traj::SubTrajectory& st) {
  // Voting-weighted duration: a long, highly co-moved piece is the best
  // cluster seed. Degenerate (instantaneous) pieces score 0.
  return st.mean_voting * st.Duration();
}

std::vector<size_t> SelectRepresentatives(
    const std::vector<traj::SubTrajectory>& subs,
    const SamplingParams& params) {
  std::vector<size_t> chosen;
  const size_t n = subs.size();
  if (n == 0 || params.max_representatives == 0) return chosen;

  std::vector<double> base(n);
  std::vector<double> max_sim(n, 0.0);  // Max similarity to the chosen set.
  for (size_t i = 0; i < n; ++i) base[i] = BaseScore(subs[i]);

  double first_gain = 0.0;
  while (chosen.size() < params.max_representatives) {
    size_t best = n;
    double best_gain = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (max_sim[i] >= 1.0) continue;  // Already fully covered (or chosen).
      const double gain = base[i] * (1.0 - max_sim[i]);
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == n || best_gain <= 0.0) break;
    if (chosen.empty()) {
      first_gain = best_gain;
    } else if (best_gain < params.gain_stop_ratio * first_gain) {
      break;
    }
    chosen.push_back(best);
    max_sim[best] = 1.0;  // Never re-selected.

    // Update coverage: everything similar to the new representative is now
    // (partially) covered.
    for (size_t i = 0; i < n; ++i) {
      if (max_sim[i] >= 1.0) continue;
      const double sim = traj::TimeAwareSimilarity(
          subs[i].points, subs[best].points, params.sigma,
          params.min_overlap_ratio);
      max_sim[i] = std::max(max_sim[i], sim);
    }
  }
  return chosen;
}

}  // namespace hermes::sampling
