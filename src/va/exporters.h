#ifndef HERMES_VA_EXPORTERS_H_
#define HERMES_VA_EXPORTERS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/qut_clustering.h"
#include "core/s2t_clustering.h"

namespace hermes::va {

/// \brief RGB color assigned to a cluster (stable palette, cycling).
struct Color {
  uint8_t r = 0, g = 0, b = 0;
  std::string ToHex() const;
};

/// Stable palette color for a cluster id (outliers use gray via id < 0).
Color ColorFor(int cluster_id);

/// \brief The data behind Fig. 1 (top): cluster-colored map polylines.
/// CSV columns: cluster_id,color,object_id,sub_id,seq,x,y,t
/// (cluster_id -1 = outlier).
Status ExportClusterMapCsv(const std::string& path,
                           const core::S2TResult& result);

/// Same display for a QuT answer.
Status ExportQuTMapCsv(const std::string& path, const core::QuTResult& result);

/// \brief The data behind Fig. 1 (middle): evolution of cluster cardinality
/// over time. CSV columns: bin_start,bin_end,cluster_id,members_alive.
Status ExportTimeHistogramCsv(const std::string& path,
                              const core::S2TResult& result, size_t bins);

Status ExportQuTTimeHistogramCsv(const std::string& path,
                                 const core::QuTResult& result, size_t bins);

/// \brief The data behind Fig. 1 (bottom) / Fig. 3: 3D (x, y, t) shapes of
/// cluster members or representatives.
/// CSV columns: series,cluster_id,kind,seq,x,y,t  (kind: rep|member).
Status Export3DShapesCsv(const std::string& path,
                         const core::S2TResult& result,
                         const std::string& series_name,
                         bool representatives_only);

/// \brief GeoJSON FeatureCollection of LineStrings with cluster properties
/// (QGIS/Kepler-ready map display).
Status ExportGeoJson(const std::string& path, const core::S2TResult& result);

/// \brief Per-bin cluster cardinality table (the histogram's numbers),
/// returned in memory for tests and terminal rendering.
struct TimeHistogram {
  double t0 = 0.0;
  double t1 = 0.0;
  size_t bins = 0;
  /// counts[bin][cluster]; cluster index == result cluster order, the last
  /// column is the outliers.
  std::vector<std::vector<size_t>> counts;
};

TimeHistogram BuildTimeHistogram(const core::S2TResult& result, size_t bins);
TimeHistogram BuildQuTTimeHistogram(const core::QuTResult& result,
                                    size_t bins);

}  // namespace hermes::va

#endif  // HERMES_VA_EXPORTERS_H_
