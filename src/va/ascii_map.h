#ifndef HERMES_VA_ASCII_MAP_H_
#define HERMES_VA_ASCII_MAP_H_

#include <string>

#include "core/qut_clustering.h"
#include "core/s2t_clustering.h"

namespace hermes::va {

/// \brief Terminal stand-in for the V-Analytics map display: renders
/// cluster members as cluster-labelled characters ('A'..'Z' cycling;
/// '.' = outliers) on a width x height character grid.
std::string RenderAsciiMap(const core::S2TResult& result, size_t width = 100,
                           size_t height = 32);

std::string RenderQuTAsciiMap(const core::QuTResult& result,
                              size_t width = 100, size_t height = 32);

/// \brief Terminal time histogram (Fig. 1 middle): one row per time bin,
/// cluster cardinality as a bar of cluster letters.
std::string RenderAsciiHistogram(const core::S2TResult& result,
                                 size_t bins = 24, size_t max_width = 72);

}  // namespace hermes::va

#endif  // HERMES_VA_ASCII_MAP_H_
