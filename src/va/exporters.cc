#include "va/exporters.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace hermes::va {

namespace {
/// 12-color qualitative palette (ColorBrewer Paired-like).
constexpr Color kPalette[] = {
    {31, 119, 180}, {255, 127, 14}, {44, 160, 44},  {214, 39, 40},
    {148, 103, 189}, {140, 86, 75},  {227, 119, 194}, {127, 127, 127},
    {188, 189, 34}, {23, 190, 207}, {174, 199, 232}, {255, 187, 120},
};
constexpr Color kOutlierColor = {80, 80, 80};

void WritePolyline(std::ofstream& out, int cluster_id, const Color& color,
                   const traj::SubTrajectory& st) {
  size_t seq = 0;
  for (const auto& p : st.points.samples()) {
    char buf[192];
    std::snprintf(buf, sizeof(buf), "%d,%s,%llu,%llu,%zu,%.3f,%.3f,%.3f\n",
                  cluster_id, color.ToHex().c_str(),
                  static_cast<unsigned long long>(st.object_id),
                  static_cast<unsigned long long>(st.id), seq++, p.x, p.y,
                  p.t);
    out << buf;
  }
}
}  // namespace

std::string Color::ToHex() const {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", r, g, b);
  return buf;
}

Color ColorFor(int cluster_id) {
  if (cluster_id < 0) return kOutlierColor;
  return kPalette[static_cast<size_t>(cluster_id) %
                  (sizeof(kPalette) / sizeof(kPalette[0]))];
}

Status ExportClusterMapCsv(const std::string& path,
                           const core::S2TResult& result) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "cluster_id,color,object_id,sub_id,seq,x,y,t\n";
  for (size_t ci = 0; ci < result.clustering.clusters.size(); ++ci) {
    for (size_t m : result.clustering.clusters[ci].members) {
      WritePolyline(out, static_cast<int>(ci), ColorFor(static_cast<int>(ci)),
                    result.sub_trajectories[m]);
    }
  }
  for (size_t o : result.clustering.outliers) {
    WritePolyline(out, -1, kOutlierColor, result.sub_trajectories[o]);
  }
  return out ? Status::OK() : Status::IOError("write failed");
}

Status ExportQuTMapCsv(const std::string& path,
                       const core::QuTResult& result) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "cluster_id,color,object_id,sub_id,seq,x,y,t\n";
  for (size_t ci = 0; ci < result.clusters.size(); ++ci) {
    for (const auto& m : result.clusters[ci].members) {
      WritePolyline(out, static_cast<int>(ci), ColorFor(static_cast<int>(ci)),
                    m);
    }
  }
  for (const auto& o : result.outliers) {
    WritePolyline(out, -1, kOutlierColor, o);
  }
  return out ? Status::OK() : Status::IOError("write failed");
}

namespace {
template <typename MemberVisitor>
TimeHistogram BuildHistogramImpl(size_t num_clusters, size_t bins,
                                 const MemberVisitor& visit) {
  TimeHistogram h;
  h.bins = bins;
  // Pass 1: time domain.
  double t0 = std::numeric_limits<double>::infinity();
  double t1 = -std::numeric_limits<double>::infinity();
  visit([&](int, const traj::SubTrajectory& st) {
    t0 = std::min(t0, st.StartTime());
    t1 = std::max(t1, st.EndTime());
  });
  if (!(t1 > t0) || bins == 0) return h;
  h.t0 = t0;
  h.t1 = t1;
  h.counts.assign(bins, std::vector<size_t>(num_clusters + 1, 0));
  const double width = (t1 - t0) / static_cast<double>(bins);
  // Pass 2: member alive per bin.
  visit([&](int cluster, const traj::SubTrajectory& st) {
    const size_t col =
        cluster < 0 ? num_clusters : static_cast<size_t>(cluster);
    size_t first = static_cast<size_t>((st.StartTime() - t0) / width);
    size_t last = static_cast<size_t>((st.EndTime() - t0) / width);
    first = std::min(first, bins - 1);
    last = std::min(last, bins - 1);
    for (size_t b = first; b <= last; ++b) ++h.counts[b][col];
  });
  return h;
}
}  // namespace

TimeHistogram BuildTimeHistogram(const core::S2TResult& result, size_t bins) {
  return BuildHistogramImpl(
      result.clustering.clusters.size(), bins, [&](auto&& fn) {
        for (size_t ci = 0; ci < result.clustering.clusters.size(); ++ci) {
          for (size_t m : result.clustering.clusters[ci].members) {
            fn(static_cast<int>(ci), result.sub_trajectories[m]);
          }
        }
        for (size_t o : result.clustering.outliers) {
          fn(-1, result.sub_trajectories[o]);
        }
      });
}

TimeHistogram BuildQuTTimeHistogram(const core::QuTResult& result,
                                    size_t bins) {
  return BuildHistogramImpl(
      result.clusters.size(), bins, [&](auto&& fn) {
        for (size_t ci = 0; ci < result.clusters.size(); ++ci) {
          for (const auto& m : result.clusters[ci].members) {
            fn(static_cast<int>(ci), m);
          }
        }
        for (const auto& o : result.outliers) fn(-1, o);
      });
}

namespace {
Status WriteHistogramCsv(const std::string& path, const TimeHistogram& h) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "bin_start,bin_end,cluster_id,members_alive\n";
  if (h.bins == 0 || h.counts.empty()) return Status::OK();
  const double width = (h.t1 - h.t0) / static_cast<double>(h.bins);
  const size_t cols = h.counts[0].size();
  for (size_t b = 0; b < h.bins; ++b) {
    for (size_t c = 0; c < cols; ++c) {
      const int cluster_id =
          (c + 1 == cols) ? -1 : static_cast<int>(c);  // Last col: outliers.
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%.3f,%.3f,%d,%zu\n",
                    h.t0 + b * width, h.t0 + (b + 1) * width, cluster_id,
                    h.counts[b][c]);
      out << buf;
    }
  }
  return out ? Status::OK() : Status::IOError("write failed");
}
}  // namespace

Status ExportTimeHistogramCsv(const std::string& path,
                              const core::S2TResult& result, size_t bins) {
  return WriteHistogramCsv(path, BuildTimeHistogram(result, bins));
}

Status ExportQuTTimeHistogramCsv(const std::string& path,
                                 const core::QuTResult& result, size_t bins) {
  return WriteHistogramCsv(path, BuildQuTTimeHistogram(result, bins));
}

Status Export3DShapesCsv(const std::string& path,
                         const core::S2TResult& result,
                         const std::string& series_name,
                         bool representatives_only) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "series,cluster_id,kind,sub_id,seq,x,y,t\n";
  auto write = [&](int cluster, const char* kind,
                   const traj::SubTrajectory& st) {
    size_t seq = 0;
    for (const auto& p : st.points.samples()) {
      char buf[224];
      std::snprintf(buf, sizeof(buf), "%s,%d,%s,%llu,%zu,%.3f,%.3f,%.3f\n",
                    series_name.c_str(), cluster, kind,
                    static_cast<unsigned long long>(st.id), seq++, p.x, p.y,
                    p.t);
      out << buf;
    }
  };
  for (size_t ci = 0; ci < result.clustering.clusters.size(); ++ci) {
    const auto& cluster = result.clustering.clusters[ci];
    write(static_cast<int>(ci), "rep",
          result.sub_trajectories[cluster.representative]);
    if (!representatives_only) {
      for (size_t m : cluster.members) {
        if (m == cluster.representative) continue;
        write(static_cast<int>(ci), "member", result.sub_trajectories[m]);
      }
    }
  }
  return out ? Status::OK() : Status::IOError("write failed");
}

Status ExportGeoJson(const std::string& path, const core::S2TResult& result) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "{\"type\":\"FeatureCollection\",\"features\":[";
  bool first = true;
  auto write = [&](int cluster, const traj::SubTrajectory& st) {
    if (!first) out << ",";
    first = false;
    out << "{\"type\":\"Feature\",\"properties\":{\"cluster\":" << cluster
        << ",\"object\":" << st.object_id << ",\"color\":\""
        << ColorFor(cluster).ToHex() << "\"},\"geometry\":{\"type\":"
        << "\"LineString\",\"coordinates\":[";
    for (size_t i = 0; i < st.points.size(); ++i) {
      const auto& p = st.points[i];
      if (i > 0) out << ",";
      char buf[96];
      std::snprintf(buf, sizeof(buf), "[%.3f,%.3f]", p.x, p.y);
      out << buf;
    }
    out << "]}}";
  };
  for (size_t ci = 0; ci < result.clustering.clusters.size(); ++ci) {
    for (size_t m : result.clustering.clusters[ci].members) {
      write(static_cast<int>(ci), result.sub_trajectories[m]);
    }
  }
  for (size_t o : result.clustering.outliers) {
    write(-1, result.sub_trajectories[o]);
  }
  out << "]}";
  return out ? Status::OK() : Status::IOError("write failed");
}

}  // namespace hermes::va
