#include "va/ascii_map.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "va/exporters.h"

namespace hermes::va {

namespace {
char GlyphFor(int cluster) {
  if (cluster < 0) return '.';
  return static_cast<char>('A' + (cluster % 26));
}

struct Canvas {
  size_t width;
  size_t height;
  geom::Mbb3D bounds;
  std::vector<char> cells;

  Canvas(size_t w, size_t h, const geom::Mbb3D& b)
      : width(w), height(h), bounds(b), cells(w * h, ' ') {}

  void Plot(double x, double y, char glyph) {
    if (bounds.max_x <= bounds.min_x || bounds.max_y <= bounds.min_y) return;
    const double u = (x - bounds.min_x) / (bounds.max_x - bounds.min_x);
    const double v = (y - bounds.min_y) / (bounds.max_y - bounds.min_y);
    if (u < 0.0 || u > 1.0 || v < 0.0 || v > 1.0) return;
    const size_t cx =
        std::min(width - 1, static_cast<size_t>(u * (width - 1)));
    const size_t cy =
        std::min(height - 1, static_cast<size_t>((1.0 - v) * (height - 1)));
    char& cell = cells[cy * width + cx];
    // Cluster glyphs win over outlier dots.
    if (cell == ' ' || cell == '.') cell = glyph;
  }

  std::string ToString() const {
    std::string out;
    out.reserve((width + 1) * height);
    for (size_t y = 0; y < height; ++y) {
      out.append(&cells[y * width], width);
      out.push_back('\n');
    }
    return out;
  }
};

void PlotSub(Canvas* canvas, int cluster, const traj::SubTrajectory& st) {
  for (const auto& p : st.points.samples()) {
    canvas->Plot(p.x, p.y, GlyphFor(cluster));
  }
}
}  // namespace

std::string RenderAsciiMap(const core::S2TResult& result, size_t width,
                           size_t height) {
  geom::Mbb3D bounds;
  for (const auto& st : result.sub_trajectories) bounds.Extend(st.Bounds());
  Canvas canvas(width, height, bounds);
  for (size_t o : result.clustering.outliers) {
    PlotSub(&canvas, -1, result.sub_trajectories[o]);
  }
  for (size_t ci = 0; ci < result.clustering.clusters.size(); ++ci) {
    for (size_t m : result.clustering.clusters[ci].members) {
      PlotSub(&canvas, static_cast<int>(ci), result.sub_trajectories[m]);
    }
  }
  return canvas.ToString();
}

std::string RenderQuTAsciiMap(const core::QuTResult& result, size_t width,
                              size_t height) {
  geom::Mbb3D bounds;
  for (const auto& c : result.clusters) {
    for (const auto& m : c.members) bounds.Extend(m.Bounds());
  }
  for (const auto& o : result.outliers) bounds.Extend(o.Bounds());
  Canvas canvas(width, height, bounds);
  for (const auto& o : result.outliers) PlotSub(&canvas, -1, o);
  for (size_t ci = 0; ci < result.clusters.size(); ++ci) {
    for (const auto& m : result.clusters[ci].members) {
      PlotSub(&canvas, static_cast<int>(ci), m);
    }
  }
  return canvas.ToString();
}

std::string RenderAsciiHistogram(const core::S2TResult& result, size_t bins,
                                 size_t max_width) {
  const TimeHistogram h = BuildTimeHistogram(result, bins);
  if (h.counts.empty()) return "(empty)\n";
  size_t max_total = 1;
  for (const auto& row : h.counts) {
    size_t total = 0;
    for (size_t c : row) total += c;
    max_total = std::max(max_total, total);
  }
  std::string out;
  const double width = (h.t1 - h.t0) / static_cast<double>(h.bins);
  for (size_t b = 0; b < h.bins; ++b) {
    char head[48];
    std::snprintf(head, sizeof(head), "%9.0f |", h.t0 + b * width);
    out += head;
    const auto& row = h.counts[b];
    for (size_t c = 0; c < row.size(); ++c) {
      const int cluster =
          (c + 1 == row.size()) ? -1 : static_cast<int>(c);
      const size_t scaled =
          (row[c] * max_width + max_total - 1) / max_total;
      out.append(scaled, GlyphFor(cluster));
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace hermes::va
