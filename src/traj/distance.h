#ifndef HERMES_TRAJ_DISTANCE_H_
#define HERMES_TRAJ_DISTANCE_H_

#include "traj/sub_trajectory.h"
#include "traj/trajectory.h"

namespace hermes::traj {

/// \brief The time-aware distance between two (sub-)trajectories.
///
/// Defined over the intersection of the two lifespans: the positions are
/// synchronized by linear interpolation and the Euclidean separation is
/// averaged over time (piecewise-exact between breakpoints). When the
/// lifespans are disjoint the distance is infinite — objects that never
/// co-exist are never "close" in the time-aware sense. This is precisely
/// the property TRACLUS lacks (spatial-only comparison).
struct TimeAwareDistance {
  double avg = 0.0;            ///< Time-averaged synchronized separation.
  double min = 0.0;            ///< Minimum separation over the overlap.
  double overlap = 0.0;        ///< Common lifespan duration (seconds).
  double overlap_ratio = 0.0;  ///< overlap / min(duration_a, duration_b).

  bool Coexist() const { return overlap > 0.0; }
};

/// Computes the time-aware distance between two polylines.
TimeAwareDistance ComputeTimeAwareDistance(const Trajectory& a,
                                           const Trajectory& b);

/// Convenience overload on sub-trajectories.
TimeAwareDistance ComputeTimeAwareDistance(const SubTrajectory& a,
                                           const SubTrajectory& b);

/// \brief Scalar distance used for clustering decisions: the average
/// synchronized separation, or +inf when the temporal overlap ratio is
/// below `min_overlap_ratio`.
double ClusteringDistance(const Trajectory& a, const Trajectory& b,
                          double min_overlap_ratio = 0.5);

/// \brief Similarity in [0, 1]: Gaussian kernel of the clustering distance
/// with bandwidth `sigma`, scaled by the temporal overlap ratio. 0 when the
/// trajectories never co-exist.
double TimeAwareSimilarity(const Trajectory& a, const Trajectory& b,
                           double sigma, double min_overlap_ratio = 0.5);

}  // namespace hermes::traj

#endif  // HERMES_TRAJ_DISTANCE_H_
