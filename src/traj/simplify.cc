#include "traj/simplify.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "geom/segment.h"

namespace hermes::traj {

namespace {

/// Recursive Douglas–Peucker over samples [first, last]; marks kept
/// indices. Deviation combines the spatial distance to the chord with the
/// time-synchronized displacement.
void DouglasPeucker(const std::vector<geom::Point3D>& samples, size_t first,
                    size_t last, double epsilon, std::vector<bool>* keep) {
  if (last <= first + 1) return;
  const geom::Point3D& a = samples[first];
  const geom::Point3D& b = samples[last];
  const geom::Segment2D chord(a.xy(), b.xy());

  double worst = -1.0;
  size_t worst_idx = first;
  for (size_t i = first + 1; i < last; ++i) {
    const double spatial = geom::PointSegmentDistance(samples[i].xy(), chord);
    // Temporal guard: where would the simplified object be at t_i?
    const geom::Point2D at_time = geom::InterpolateAt(a, b, samples[i].t);
    const double temporal = geom::Distance(samples[i].xy(), at_time);
    const double dev = std::max(spatial, temporal);
    if (dev > worst) {
      worst = dev;
      worst_idx = i;
    }
  }
  if (worst > epsilon) {
    (*keep)[worst_idx] = true;
    DouglasPeucker(samples, first, worst_idx, epsilon, keep);
    DouglasPeucker(samples, worst_idx, last, epsilon, keep);
  }
}

}  // namespace

StatusOr<Trajectory> Simplify(const Trajectory& trajectory, double epsilon) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("Simplify requires epsilon > 0");
  }
  if (trajectory.size() < 3) return trajectory;

  const auto& samples = trajectory.samples();
  std::vector<bool> keep(samples.size(), false);
  keep.front() = keep.back() = true;
  DouglasPeucker(samples, 0, samples.size() - 1, epsilon, &keep);

  Trajectory out(trajectory.object_id());
  for (size_t i = 0; i < samples.size(); ++i) {
    if (keep[i]) {
      HERMES_CHECK_OK(out.Append(samples[i]));
    }
  }
  return out;
}

double MotionProfile::MeanSpeed() const {
  if (speeds.empty()) return 0.0;
  double s = 0.0;
  for (double v : speeds) s += v;
  return s / static_cast<double>(speeds.size());
}

double MotionProfile::MaxSpeed() const {
  double m = 0.0;
  for (double v : speeds) m = std::max(m, v);
  return m;
}

MotionProfile ComputeMotionProfile(const Trajectory& trajectory) {
  MotionProfile profile;
  const size_t n = trajectory.NumSegments();
  profile.speeds.reserve(n);
  profile.headings.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const geom::Segment3D seg = trajectory.SegmentAt(i);
    const double dur = seg.duration();
    profile.speeds.push_back(dur > 0.0 ? seg.SpatialLength() / dur : 0.0);
    const geom::Point2D d = seg.b.xy() - seg.a.xy();
    profile.headings.push_back(std::atan2(d.y, d.x));
  }
  return profile;
}

double TotalTurning(const Trajectory& trajectory) {
  const MotionProfile profile = ComputeMotionProfile(trajectory);
  double total = 0.0;
  for (size_t i = 1; i < profile.headings.size(); ++i) {
    double dh = profile.headings[i] - profile.headings[i - 1];
    while (dh > M_PI) dh -= 2 * M_PI;
    while (dh < -M_PI) dh += 2 * M_PI;
    total += std::fabs(dh);
  }
  return total;
}

bool LooksLikeLoop(const Trajectory& trajectory, double ratio) {
  if (trajectory.size() < 4) return false;
  const geom::Mbb3D box = trajectory.Bounds();
  const double diag = std::hypot(box.max_x - box.min_x,
                                 box.max_y - box.min_y);
  if (diag <= 0.0) return trajectory.SpatialLength() > 0.0;
  return trajectory.SpatialLength() > ratio * diag;
}

}  // namespace hermes::traj
