#include "traj/trajectory.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace hermes::traj {

Status Trajectory::Append(const geom::Point3D& p) {
  if (!std::isfinite(p.x) || !std::isfinite(p.y) || !std::isfinite(p.t)) {
    return Status::InvalidArgument("non-finite sample");
  }
  if (!samples_.empty() && p.t <= samples_.back().t) {
    return Status::InvalidArgument("timestamps must strictly increase");
  }
  samples_.push_back(p);
  return Status::OK();
}

geom::Segment3D Trajectory::SegmentAt(size_t i) const {
  HERMES_CHECK(i + 1 < samples_.size()) << "segment index out of range";
  return geom::Segment3D(samples_[i], samples_[i + 1]);
}

double Trajectory::SpatialLength() const {
  double len = 0.0;
  for (size_t i = 0; i + 1 < samples_.size(); ++i) {
    len += geom::SpatialDistance(samples_[i], samples_[i + 1]);
  }
  return len;
}

std::optional<geom::Point2D> Trajectory::PositionAt(double t) const {
  if (samples_.empty() || t < StartTime() || t > EndTime()) {
    return std::nullopt;
  }
  if (samples_.size() == 1) return samples_[0].xy();
  // First sample with time >= t.
  auto it = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const geom::Point3D& p, double v) { return p.t < v; });
  if (it == samples_.begin()) return samples_.front().xy();
  if (it == samples_.end()) return samples_.back().xy();
  const geom::Point3D& hi = *it;
  const geom::Point3D& lo = *(it - 1);
  return geom::InterpolateAt(lo, hi, t);
}

geom::Mbb3D Trajectory::Bounds() const {
  geom::Mbb3D box;
  for (const auto& p : samples_) box.ExtendPoint(p);
  return box;
}

Trajectory Trajectory::Slice(double t0, double t1) const {
  HERMES_CHECK(t0 <= t1) << "Slice requires t0 <= t1";
  Trajectory out(object_id_);
  if (samples_.empty() || t1 < StartTime() || t0 > EndTime()) return out;

  const double lo = std::max(t0, StartTime());
  const double hi = std::min(t1, EndTime());

  // Interpolated entry sample.
  if (auto p = PositionAt(lo)) {
    out.samples_.push_back({p->x, p->y, lo});
  }
  // Interior samples strictly inside (lo, hi).
  for (const auto& s : samples_) {
    if (s.t > lo && s.t < hi) out.samples_.push_back(s);
  }
  // Interpolated exit sample (skip when the slice is instantaneous).
  if (hi > lo) {
    if (auto p = PositionAt(hi)) {
      out.samples_.push_back({p->x, p->y, hi});
    }
  }
  return out;
}

StatusOr<Trajectory> Trajectory::Resample(double dt) const {
  if (dt <= 0.0) return Status::InvalidArgument("Resample requires dt > 0");
  if (samples_.size() < 2) {
    return Status::InvalidArgument("Resample requires >= 2 samples");
  }
  Trajectory out(object_id_);
  const double t_start = StartTime();
  const double t_end = EndTime();
  for (double t = t_start; t < t_end; t += dt) {
    auto p = PositionAt(t);
    HERMES_CHECK(p.has_value());
    HERMES_CHECK_OK(out.Append({p->x, p->y, t}));
  }
  auto p = PositionAt(t_end);
  HERMES_CHECK(p.has_value());
  HERMES_CHECK_OK(out.Append({p->x, p->y, t_end}));
  return out;
}

Status Trajectory::Validate() const {
  for (size_t i = 0; i < samples_.size(); ++i) {
    const auto& p = samples_[i];
    if (!std::isfinite(p.x) || !std::isfinite(p.y) || !std::isfinite(p.t)) {
      return Status::Corruption("non-finite sample");
    }
    if (i > 0 && p.t <= samples_[i - 1].t) {
      return Status::Corruption("timestamps not strictly increasing");
    }
  }
  return Status::OK();
}

}  // namespace hermes::traj
