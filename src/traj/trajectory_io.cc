#include "traj/trajectory_io.h"

#include <utility>

namespace hermes::traj {

void EncodeTrajectory(const Trajectory& t, std::string* out) {
  PutFixed64(out, t.object_id());
  PutFixed32(out, static_cast<uint32_t>(t.size()));
  for (const geom::Point3D& p : t.samples()) {
    PutDouble(out, p.x);
    PutDouble(out, p.y);
    PutDouble(out, p.t);
  }
}

StatusOr<Trajectory> DecodeTrajectory(Decoder* dec) {
  if (dec->remaining() < 12) {
    return Status::Corruption("truncated trajectory header");
  }
  const ObjectId obj = dec->ReadFixed64();
  const uint32_t n = dec->ReadFixed32();
  if (dec->remaining() < static_cast<size_t>(n) * 24) {
    return Status::Corruption("truncated trajectory samples");
  }
  std::vector<geom::Point3D> samples;
  samples.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    geom::Point3D p;
    p.x = dec->ReadDouble();
    p.y = dec->ReadDouble();
    p.t = dec->ReadDouble();
    samples.push_back(p);
  }
  Trajectory t(obj, std::move(samples));
  HERMES_RETURN_NOT_OK(t.Validate());
  return t;
}

void EncodeTrajectories(const std::vector<Trajectory>& batch,
                        std::string* out) {
  PutFixed32(out, static_cast<uint32_t>(batch.size()));
  for (const Trajectory& t : batch) EncodeTrajectory(t, out);
}

StatusOr<std::vector<Trajectory>> DecodeTrajectories(Decoder* dec) {
  if (dec->remaining() < 4) {
    return Status::Corruption("truncated trajectory batch");
  }
  const uint32_t n = dec->ReadFixed32();
  std::vector<Trajectory> batch;
  for (uint32_t i = 0; i < n; ++i) {
    HERMES_ASSIGN_OR_RETURN(Trajectory t, DecodeTrajectory(dec));
    batch.push_back(std::move(t));
  }
  return batch;
}

void EncodeStore(const TrajectoryStore& store, std::string* out) {
  const size_t n = store.NumTrajectories();
  PutFixed32(out, static_cast<uint32_t>(n));
  for (TrajectoryId id = 0; id < n; ++id) {
    EncodeTrajectory(store.Get(id), out);
  }
}

StatusOr<TrajectoryStore> DecodeStore(Decoder* dec) {
  HERMES_ASSIGN_OR_RETURN(std::vector<Trajectory> batch,
                          DecodeTrajectories(dec));
  TrajectoryStore store;
  for (Trajectory& t : batch) {
    HERMES_RETURN_NOT_OK(store.Add(std::move(t)).status());
  }
  return store;
}

}  // namespace hermes::traj
