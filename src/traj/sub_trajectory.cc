#include "traj/sub_trajectory.h"

#include <cstdio>

namespace hermes::traj {

std::string SubTrajectory::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "sub#%llu(obj=%llu, traj=%llu, n=%zu, [%.2f,%.2f], V=%.3f)",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(object_id),
                static_cast<unsigned long long>(source_trajectory),
                points.size(), StartTime(), EndTime(), mean_voting);
  return buf;
}

SubTrajectory TrimToWindow(const SubTrajectory& st, double t0, double t1) {
  SubTrajectory out = st;
  out.points = st.points.Slice(t0, t1);
  return out;
}

}  // namespace hermes::traj
