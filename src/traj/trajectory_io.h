#ifndef HERMES_TRAJ_TRAJECTORY_IO_H_
#define HERMES_TRAJ_TRAJECTORY_IO_H_

#include <string>
#include <vector>

#include "common/coding.h"
#include "common/status.h"
#include "common/statusor.h"
#include "traj/trajectory.h"
#include "traj/trajectory_store.h"

namespace hermes::traj {

/// \brief Binary (de)serialization of trajectories and whole stores —
/// the payload format shared by WAL insert-batch records and checkpoint
/// store files.
///
/// Everything is little-endian fixed-width (common/coding.h), so an
/// encode → decode round trip is bit-exact: doubles are memcpy'd, never
/// formatted. A store is encoded as its trajectories in id order; since
/// store ids are assigned in `Add` order and both the trajectory list
/// and the segment arena depend only on that order, decoding (which
/// re-`Add`s in sequence) reconstructs a store whose published state is
/// bit-identical to the source — the property the recovery tests pin.

/// Appends one trajectory: u64 object id, u32 sample count, then
/// (x, y, t) doubles per sample.
void EncodeTrajectory(const Trajectory& t, std::string* out);

/// Decodes one trajectory from `dec`; fails on truncation or on samples
/// violating the strictly-increasing-time invariant.
StatusOr<Trajectory> DecodeTrajectory(Decoder* dec);

/// Appends a batch: u32 count, then each trajectory.
void EncodeTrajectories(const std::vector<Trajectory>& batch,
                        std::string* out);
StatusOr<std::vector<Trajectory>> DecodeTrajectories(Decoder* dec);

/// Appends the whole store (u32 count + trajectories in id order). Safe
/// on a quiesced store or a snapshot (the store's read contract).
void EncodeStore(const TrajectoryStore& store, std::string* out);

/// Rebuilds a store by re-adding the encoded trajectories in order.
StatusOr<TrajectoryStore> DecodeStore(Decoder* dec);

}  // namespace hermes::traj

#endif  // HERMES_TRAJ_TRAJECTORY_IO_H_
