#ifndef HERMES_TRAJ_TRAJECTORY_H_
#define HERMES_TRAJ_TRAJECTORY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "geom/mbb.h"
#include "geom/point.h"
#include "geom/segment.h"

namespace hermes::traj {

/// Identifier of a moving object (user-assigned, stable across sessions).
using ObjectId = uint64_t;
/// Identifier of a trajectory inside a `TrajectoryStore`.
using TrajectoryId = uint64_t;

/// \brief Reference to one 3D segment inside a store: (trajectory, index).
struct SegmentRef {
  TrajectoryId trajectory = 0;
  uint32_t segment_index = 0;

  bool operator==(const SegmentRef& o) const {
    return trajectory == o.trajectory && segment_index == o.segment_index;
  }
};

/// \brief A trajectory: the recorded movement of one object as an ordered
/// polyline in (x, y, t) with strictly increasing timestamps.
///
/// Between consecutive samples the object is assumed to move linearly
/// (constant speed), the standard MOD interpolation model.
class Trajectory {
 public:
  Trajectory() = default;
  explicit Trajectory(ObjectId object_id) : object_id_(object_id) {}
  Trajectory(ObjectId object_id, std::vector<geom::Point3D> samples)
      : object_id_(object_id), samples_(std::move(samples)) {}

  ObjectId object_id() const { return object_id_; }
  void set_object_id(ObjectId id) { object_id_ = id; }

  const std::vector<geom::Point3D>& samples() const { return samples_; }
  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  const geom::Point3D& operator[](size_t i) const { return samples_[i]; }
  const geom::Point3D& front() const { return samples_.front(); }
  const geom::Point3D& back() const { return samples_.back(); }

  /// Appends a sample; returns InvalidArgument when `p.t` does not strictly
  /// increase the time domain.
  Status Append(const geom::Point3D& p);

  /// Number of 3D segments (size()-1, or 0 when fewer than 2 samples).
  size_t NumSegments() const {
    return samples_.size() < 2 ? 0 : samples_.size() - 1;
  }

  /// The i-th 3D segment (between samples i and i+1).
  geom::Segment3D SegmentAt(size_t i) const;

  double StartTime() const { return samples_.empty() ? 0.0 : front().t; }
  double EndTime() const { return samples_.empty() ? 0.0 : back().t; }
  double Duration() const { return EndTime() - StartTime(); }

  /// Total spatial (2D) path length.
  double SpatialLength() const;

  /// Interpolated position at time `t`, or nullopt outside the lifespan.
  std::optional<geom::Point2D> PositionAt(double t) const;

  /// Minimum bounding box over all samples.
  geom::Mbb3D Bounds() const;

  /// \brief The portion of this trajectory inside [t0, t1], with
  /// interpolated boundary samples when the cut falls inside a segment.
  /// Returns an empty trajectory when the lifespan and [t0, t1] are
  /// disjoint. Requires t0 <= t1.
  Trajectory Slice(double t0, double t1) const;

  /// \brief Resamples onto a uniform time grid of step `dt` covering the
  /// lifespan (both endpoints kept). Requires dt > 0 and size() >= 2.
  StatusOr<Trajectory> Resample(double dt) const;

  /// Validates the invariants (strictly increasing t, finite coordinates).
  Status Validate() const;

 private:
  ObjectId object_id_ = 0;
  std::vector<geom::Point3D> samples_;
};

}  // namespace hermes::traj

#endif  // HERMES_TRAJ_TRAJECTORY_H_
