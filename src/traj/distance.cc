#include "traj/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/mathutil.h"
#include "geom/moving_point.h"

namespace hermes::traj {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Positions of `t` at the sample times of both trajectories restricted to
/// [t0, t1], merged and deduplicated, including both boundaries.
std::vector<double> MergeBreakpoints(const Trajectory& a, const Trajectory& b,
                                     double t0, double t1) {
  std::vector<double> ts;
  ts.push_back(t0);
  for (const auto& p : a.samples()) {
    if (p.t > t0 && p.t < t1) ts.push_back(p.t);
  }
  for (const auto& p : b.samples()) {
    if (p.t > t0 && p.t < t1) ts.push_back(p.t);
  }
  ts.push_back(t1);
  std::sort(ts.begin(), ts.end());
  ts.erase(std::unique(ts.begin(), ts.end(),
                       [](double x, double y) { return AlmostEqual(x, y); }),
           ts.end());
  return ts;
}

geom::Point3D SampleAt(const Trajectory& t, double time) {
  auto p = t.PositionAt(time);
  // Callers only ask inside the lifespan.
  return {p->x, p->y, time};
}
}  // namespace

TimeAwareDistance ComputeTimeAwareDistance(const Trajectory& a,
                                           const Trajectory& b) {
  TimeAwareDistance out;
  if (a.size() < 2 || b.size() < 2) {
    out.avg = out.min = kInf;
    return out;
  }
  const double t0 = std::max(a.StartTime(), b.StartTime());
  const double t1 = std::min(a.EndTime(), b.EndTime());
  if (t0 >= t1) {
    out.avg = out.min = kInf;
    out.overlap = 0.0;
    return out;
  }
  out.overlap = t1 - t0;
  const double min_dur = std::min(a.Duration(), b.Duration());
  out.overlap_ratio = min_dur > 0.0 ? out.overlap / min_dur : 0.0;

  const std::vector<double> ts = MergeBreakpoints(a, b, t0, t1);
  double integral = 0.0;
  double min_d = kInf;
  for (size_t i = 0; i + 1 < ts.size(); ++i) {
    const double lo = ts[i];
    const double hi = ts[i + 1];
    if (hi <= lo) continue;
    // Within (lo, hi) both objects move linearly, so the moving-point
    // analysis is exact for this elementary interval.
    geom::Segment3D sa(SampleAt(a, lo), SampleAt(a, hi));
    geom::Segment3D sb(SampleAt(b, lo), SampleAt(b, hi));
    const geom::MovingDistance md = geom::DistanceBetweenMoving(sa, sb);
    integral += md.avg_dist * (hi - lo);
    min_d = std::min(min_d, md.min_dist);
  }
  out.avg = integral / out.overlap;
  out.min = min_d;
  return out;
}

TimeAwareDistance ComputeTimeAwareDistance(const SubTrajectory& a,
                                           const SubTrajectory& b) {
  return ComputeTimeAwareDistance(a.points, b.points);
}

double ClusteringDistance(const Trajectory& a, const Trajectory& b,
                          double min_overlap_ratio) {
  const TimeAwareDistance d = ComputeTimeAwareDistance(a, b);
  if (!d.Coexist() || d.overlap_ratio < min_overlap_ratio) return kInf;
  return d.avg;
}

double TimeAwareSimilarity(const Trajectory& a, const Trajectory& b,
                           double sigma, double min_overlap_ratio) {
  const TimeAwareDistance d = ComputeTimeAwareDistance(a, b);
  if (!d.Coexist() || d.overlap_ratio < min_overlap_ratio) return 0.0;
  return GaussianKernel(d.avg, sigma) * Clamp(d.overlap_ratio, 0.0, 1.0);
}

}  // namespace hermes::traj
