#ifndef HERMES_TRAJ_SUB_TRAJECTORY_H_
#define HERMES_TRAJ_SUB_TRAJECTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "traj/trajectory.h"

namespace hermes::traj {

/// Identifier of a sub-trajectory within a clustering run / ReTraTree.
using SubTrajectoryId = uint64_t;

/// \brief A sub-trajectory: a contiguous piece of a source trajectory,
/// materialized as its own polyline and carrying provenance plus the
/// voting descriptor produced by NaTS.
///
/// Sub-trajectories are the unit of clustering in both S2T- and
/// QuT-Clustering.
struct SubTrajectory {
  SubTrajectoryId id = 0;
  TrajectoryId source_trajectory = 0;
  ObjectId object_id = 0;
  /// Index of the first source sample covered (provenance; boundary
  /// samples introduced by temporal trimming keep the nearest index).
  size_t first_sample_index = 0;
  /// The movement itself.
  Trajectory points;
  /// Mean voting value over the covered segments (0 when unknown).
  double mean_voting = 0.0;

  double StartTime() const { return points.StartTime(); }
  double EndTime() const { return points.EndTime(); }
  double Duration() const { return points.Duration(); }
  geom::Mbb3D Bounds() const { return points.Bounds(); }

  std::string ToString() const;
};

/// \brief Trims `st` to the window [t0, t1]; result keeps provenance and
/// voting descriptor. Returns an empty-points sub-trajectory when disjoint.
SubTrajectory TrimToWindow(const SubTrajectory& st, double t0, double t1);

}  // namespace hermes::traj

#endif  // HERMES_TRAJ_SUB_TRAJECTORY_H_
