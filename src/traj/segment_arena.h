#ifndef HERMES_TRAJ_SEGMENT_ARENA_H_
#define HERMES_TRAJ_SEGMENT_ARENA_H_

#include <cstdint>
#include <vector>

#include "exec/exec_context.h"
#include "geom/mbb.h"
#include "geom/segment.h"
#include "traj/trajectory_store.h"

namespace hermes::traj {

/// \brief Structure-of-arrays snapshot of every 3D segment of a
/// `TrajectoryStore`, built once and shared by all passes of the voting →
/// segmentation → clustering hot path (and by STR index construction).
///
/// The AoS `Trajectory` API re-derives each segment's geometry
/// (`SegmentAt` + `Bounds`) on every pass; the arena materializes the
/// per-segment endpoints and bounding boxes as contiguous columns, so
/// repeated sweeps are cache-linear and trivially partitionable across
/// threads. Rows are ordered by (trajectory id, segment index) — the CSR
/// `offsets` array maps a trajectory to its contiguous row range — and the
/// layout is identical at any build thread count.
///
/// The arena is an immutable snapshot: it does not observe trajectories
/// appended to the store after `Build`.
class SegmentArena {
 public:
  SegmentArena() = default;

  /// Builds the snapshot. When `ctx` provides more than one thread the
  /// per-trajectory fill is parallelized (the output is byte-identical to
  /// the sequential build). The build time is recorded in `ctx->stats()`
  /// under phase "arena_build".
  static SegmentArena Build(const TrajectoryStore& store,
                            exec::ExecContext* ctx = nullptr);

  size_t num_segments() const { return ax_.size(); }
  size_t num_trajectories() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  bool empty() const { return ax_.empty(); }

  /// Rows of trajectory `tid`: [offsets()[tid], offsets()[tid + 1]).
  const std::vector<size_t>& offsets() const { return offsets_; }
  size_t RowBegin(TrajectoryId tid) const { return offsets_[tid]; }
  size_t RowEnd(TrajectoryId tid) const { return offsets_[tid + 1]; }

  // Endpoint columns (segment rows; time strictly increases: t0 < t1).
  const std::vector<double>& ax() const { return ax_; }
  const std::vector<double>& ay() const { return ay_; }
  const std::vector<double>& bx() const { return bx_; }
  const std::vector<double>& by() const { return by_; }
  const std::vector<double>& t0() const { return t0_; }
  const std::vector<double>& t1() const { return t1_; }

  /// Owning trajectory of each row.
  const std::vector<TrajectoryId>& owner() const { return owner_; }
  /// Segment index of each row inside its trajectory.
  const std::vector<uint32_t>& segment_index() const { return segment_index_; }

  /// Row `r` reconstructed as the AoS segment.
  geom::Segment3D SegmentOf(size_t r) const {
    return geom::Segment3D({ax_[r], ay_[r], t0_[r]}, {bx_[r], by_[r], t1_[r]});
  }

  /// MBB of row `r` (computed from the endpoints; segments are straight so
  /// the endpoint extremes bound the motion).
  geom::Mbb3D BoundsOf(size_t r) const {
    return geom::Mbb3D(ax_[r] < bx_[r] ? ax_[r] : bx_[r],
                       ay_[r] < by_[r] ? ay_[r] : by_[r], t0_[r],
                       ax_[r] < bx_[r] ? bx_[r] : ax_[r],
                       ay_[r] < by_[r] ? by_[r] : ay_[r], t1_[r]);
  }

  SegmentRef RefOf(size_t r) const {
    return {owner_[r], segment_index_[r]};
  }

 private:
  std::vector<size_t> offsets_;
  std::vector<double> ax_, ay_, bx_, by_, t0_, t1_;
  std::vector<TrajectoryId> owner_;
  std::vector<uint32_t> segment_index_;
};

}  // namespace hermes::traj

#endif  // HERMES_TRAJ_SEGMENT_ARENA_H_
