#ifndef HERMES_TRAJ_SEGMENT_ARENA_H_
#define HERMES_TRAJ_SEGMENT_ARENA_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "exec/exec_context.h"
#include "geom/mbb.h"
#include "geom/segment.h"
#include "traj/trajectory.h"

namespace hermes::traj {

class TrajectoryStore;

/// \brief One fixed-capacity column block of the chunked segment arena.
///
/// Rows are written once, in append order, and a block is never touched
/// again after it fills — which is what lets snapshots share blocks with
/// an appending builder instead of copying them.
struct SegmentBlock {
  static constexpr size_t kShift = 12;
  static constexpr size_t kRows = size_t{1} << kShift;  // 4096 rows.
  static constexpr size_t kMask = kRows - 1;

  std::array<double, kRows> ax, ay, bx, by, t0, t1;
  std::array<TrajectoryId, kRows> owner;
  std::array<uint32_t, kRows> segment_index;
};

/// Observability counters of a `SegmentArenaBuilder`; the regression tests
/// assert that appends never re-materialize existing blocks
/// (`full_rebuilds` stays 0 and block identity is stable across epochs).
struct SegmentArenaCounters {
  uint64_t rows_appended = 0;
  uint64_t blocks_allocated = 0;
  uint64_t epochs_published = 0;
  /// Full re-materializations of already-appended rows. The append path
  /// never performs one; the counter exists so tests can prove it.
  uint64_t full_rebuilds = 0;
  /// Epoch pins: every `Snapshot()` hands out one pin, released when the
  /// last copy of that snapshot dies. `epochs_pinned` is the live count
  /// (readers currently sweeping an epoch), `epoch_pins` the total handed
  /// out — the service layer's `SHOW SERVICE STATS` surfaces both.
  uint64_t epochs_pinned = 0;
  uint64_t epoch_pins = 0;
  /// Times an append dropped the builder's stale cached epoch because no
  /// reader held a pin — releasing the superseded offsets table (and any
  /// tail block copy) instead of holding it until the next `Snapshot`.
  uint64_t epochs_reclaimed = 0;
};

/// \brief Pin bookkeeping shared by one builder lineage (builder copies —
/// e.g. store snapshots — share the registry, so a service reports one
/// fleet-wide live-pin count per MOD regardless of how many snapshot
/// copies exist).
struct EpochPinRegistry {
  std::atomic<uint64_t> live{0};
  std::atomic<uint64_t> total{0};
};

/// \brief RAII pin: one per `Snapshot()` call, shared (via `shared_ptr`)
/// by every copy of that snapshot; the registry's live count drops when
/// the last copy is destroyed.
class EpochPin {
 public:
  explicit EpochPin(std::shared_ptr<EpochPinRegistry> reg)
      : reg_(std::move(reg)) {
    reg_->live.fetch_add(1, std::memory_order_relaxed);
    reg_->total.fetch_add(1, std::memory_order_relaxed);
  }
  ~EpochPin() { reg_->live.fetch_sub(1, std::memory_order_relaxed); }
  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;

 private:
  std::shared_ptr<EpochPinRegistry> reg_;
};

/// \brief Structure-of-arrays view of every 3D segment of a
/// `TrajectoryStore`, shared by all passes of the voting → segmentation →
/// clustering hot path (and by STR index construction).
///
/// A `SegmentArena` is one immutable *epoch* published by a
/// `SegmentArenaBuilder` (see `TrajectoryStore::ArenaSnapshot`): it holds
/// shared ownership of fixed-capacity column blocks plus an offsets table
/// frozen at publication time. Rows are ordered by (trajectory id, segment
/// index) — the CSR `offsets` array maps a trajectory to its contiguous
/// row range — and the layout depends only on insertion order, never on
/// thread counts. The view never observes rows appended after it was
/// taken, so voting and STR bulk load can sweep a stable epoch while
/// ingest keeps appending to the builder.
class SegmentArena {
 public:
  SegmentArena() = default;

  /// Snapshots the store's incrementally-maintained arena (appends since
  /// the last snapshot are published as a new epoch; nothing is rebuilt).
  /// The snapshot cost is recorded in `ctx->stats()` under "arena_build".
  static SegmentArena Build(const TrajectoryStore& store,
                            exec::ExecContext* ctx = nullptr);

  size_t num_segments() const { return rows_; }
  size_t num_trajectories() const {
    return offsets_ == nullptr || offsets_->empty() ? 0 : offsets_->size() - 1;
  }
  bool empty() const { return rows_ == 0; }

  /// Rows of trajectory `tid`: [offsets()[tid], offsets()[tid + 1]).
  const std::vector<size_t>& offsets() const;
  size_t RowBegin(TrajectoryId tid) const { return (*offsets_)[tid]; }
  size_t RowEnd(TrajectoryId tid) const { return (*offsets_)[tid + 1]; }

  // Endpoint columns (segment rows; time strictly increases: t0 < t1).
  double ax(size_t r) const { return block(r).ax[sub(r)]; }
  double ay(size_t r) const { return block(r).ay[sub(r)]; }
  double bx(size_t r) const { return block(r).bx[sub(r)]; }
  double by(size_t r) const { return block(r).by[sub(r)]; }
  double t0(size_t r) const { return block(r).t0[sub(r)]; }
  double t1(size_t r) const { return block(r).t1[sub(r)]; }

  /// Owning trajectory of row `r`.
  TrajectoryId owner(size_t r) const { return block(r).owner[sub(r)]; }
  /// Segment index of row `r` inside its trajectory.
  uint32_t segment_index(size_t r) const {
    return block(r).segment_index[sub(r)];
  }

  /// Row `r` reconstructed as the AoS segment.
  geom::Segment3D SegmentOf(size_t r) const {
    const SegmentBlock& b = block(r);
    const size_t i = sub(r);
    return geom::Segment3D({b.ax[i], b.ay[i], b.t0[i]},
                           {b.bx[i], b.by[i], b.t1[i]});
  }

  /// MBB of row `r` (computed from the endpoints; segments are straight so
  /// the endpoint extremes bound the motion).
  geom::Mbb3D BoundsOf(size_t r) const {
    const SegmentBlock& b = block(r);
    const size_t i = sub(r);
    return geom::Mbb3D(b.ax[i] < b.bx[i] ? b.ax[i] : b.bx[i],
                       b.ay[i] < b.by[i] ? b.ay[i] : b.by[i], b.t0[i],
                       b.ax[i] < b.bx[i] ? b.bx[i] : b.ax[i],
                       b.ay[i] < b.by[i] ? b.by[i] : b.ay[i], b.t1[i]);
  }

  SegmentRef RefOf(size_t r) const {
    const SegmentBlock& b = block(r);
    const size_t i = sub(r);
    return {b.owner[i], b.segment_index[i]};
  }

  size_t num_blocks() const { return blocks_.size(); }
  /// Identity of block `b`, for the no-rebuild assertions in tests: two
  /// epochs sharing a block return the same address.
  const void* BlockIdentity(size_t b) const { return blocks_[b].get(); }

 private:
  friend class SegmentArenaBuilder;

  const SegmentBlock& block(size_t r) const {
    return *blocks_[r >> SegmentBlock::kShift];
  }
  static size_t sub(size_t r) { return r & SegmentBlock::kMask; }

  std::vector<std::shared_ptr<const SegmentBlock>> blocks_;
  std::shared_ptr<const std::vector<size_t>> offsets_;
  size_t rows_ = 0;
  /// Held while any copy of this published epoch is alive; null for
  /// default-constructed arenas and the builder's internal cache.
  std::shared_ptr<const EpochPin> pin_;
};

/// \brief The appendable side of the arena: `TrajectoryStore::Add` feeds
/// one trajectory at a time into fixed-capacity column blocks, and
/// `Snapshot` publishes an immutable epoch.
///
/// Concurrency contract: appends are externally serialized (they come from
/// the store's single-writer `Add` path), but `Snapshot` may be called
/// concurrently with an append, and any number of readers may sweep
/// previously-published epochs while appends proceed — published rows are
/// never rewritten, full blocks are never touched again, and the epoch
/// switch copies only the offsets table and the block pointer list.
class SegmentArenaBuilder {
 public:
  SegmentArenaBuilder() = default;
  SegmentArenaBuilder(const SegmentArenaBuilder& o) { CopyFrom(o); }
  SegmentArenaBuilder& operator=(const SegmentArenaBuilder& o) {
    if (this != &o) CopyFrom(o);
    return *this;
  }
  SegmentArenaBuilder(SegmentArenaBuilder&& o) noexcept {
    MoveFrom(std::move(o));
  }
  SegmentArenaBuilder& operator=(SegmentArenaBuilder&& o) noexcept {
    if (this != &o) MoveFrom(std::move(o));
    return *this;
  }

  /// Appends trajectory `tid`'s segments; `tid` must equal the number of
  /// trajectories appended so far (the store's id assignment).
  void Append(const Trajectory& t, TrajectoryId tid);

  /// Publishes (or re-returns, when nothing was appended since the last
  /// call) the current epoch.
  SegmentArena Snapshot() const;

  SegmentArenaCounters counters() const;

 private:
  // Like `TrajectoryStore::CopyFrom`: only the *source* builder is locked;
  // `this` is exclusively owned by the constructing/assigning caller, an
  // asymmetry the thread-safety analysis cannot express.
  void CopyFrom(const SegmentArenaBuilder& o) NO_THREAD_SAFETY_ANALYSIS;
  void MoveFrom(SegmentArenaBuilder&& o) NO_THREAD_SAFETY_ANALYSIS;

  /// Guards the block list / offsets metadata against concurrent
  /// `Snapshot`; row payloads need no lock (single writer, and readers
  /// only see rows published before their epoch).
  mutable common::Mutex mu_;
  std::vector<std::shared_ptr<SegmentBlock>> blocks_ GUARDED_BY(mu_);
  std::vector<size_t> offsets_ GUARDED_BY(mu_){0};
  size_t rows_ GUARDED_BY(mu_) = 0;
  /// epochs_published bumps in const `Snapshot`.
  mutable SegmentArenaCounters counters_ GUARDED_BY(mu_);
  mutable SegmentArena cached_epoch_ GUARDED_BY(mu_);
  mutable bool epoch_valid_ GUARDED_BY(mu_) = false;
  /// Shared by builder copies (see `EpochPinRegistry`). The registry's
  /// counters are atomics; the pointer itself is reassigned only under
  /// `mu_` (or in CopyFrom/MoveFrom, which own `this` exclusively).
  std::shared_ptr<EpochPinRegistry> pins_ GUARDED_BY(mu_) =
      std::make_shared<EpochPinRegistry>();
};

}  // namespace hermes::traj

#endif  // HERMES_TRAJ_SEGMENT_ARENA_H_
