#include "traj/trajectory_store.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/logging.h"

namespace hermes::traj {

StatusOr<TrajectoryId> TrajectoryStore::Add(Trajectory trajectory) {
  HERMES_RETURN_NOT_OK(trajectory.Validate());
  if (trajectory.empty()) {
    return Status::InvalidArgument("empty trajectory");
  }
  // The whole append happens under the snapshot lock, so a concurrent
  // `Snapshot` sees the list and the arena at the same trajectory count.
  common::MutexLock lock(&mu_);
  const TrajectoryId id = size_;
  if ((size_ & TrajBlock::kMask) == 0) {
    blocks_.push_back(std::make_shared<TrajBlock>());
  }
  num_points_ += trajectory.size();
  auto& slot = blocks_.back()->slots[size_ & TrajBlock::kMask];
  slot = std::make_shared<const Trajectory>(std::move(trajectory));
  ++size_;
  arena_.Append(*slot, id);
  return id;
}

const Trajectory& TrajectoryStore::Get(TrajectoryId id) const {
  HERMES_CHECK(id < size_) << "trajectory id out of range";
  return At(id);
}

size_t TrajectoryStore::NumSegments() const {
  size_t n = 0;
  for (TrajectoryId id = 0; id < size_; ++id) n += At(id).NumSegments();
  return n;
}

void TrajectoryStore::CopyFrom(const TrajectoryStore& o) {
  common::MutexLock lock(&o.mu_);
  blocks_ = o.blocks_;  // Shares every full (hence immutable) block.
  if (!blocks_.empty() && (o.size_ & TrajBlock::kMask) != 0) {
    // The tail block is still being appended to; give the snapshot its
    // own copy so the writer's later slot stores cannot race readers.
    blocks_.back() = std::make_shared<TrajBlock>(*o.blocks_.back());
  }
  size_ = o.size_;
  num_points_ = o.num_points_;
  arena_ = o.arena_;  // Builder copy shares full blocks (own tail copy).
}

void TrajectoryStore::MoveFrom(TrajectoryStore&& o) {
  common::MutexLock lock(&o.mu_);
  blocks_ = std::move(o.blocks_);
  size_ = o.size_;
  num_points_ = o.num_points_;
  arena_ = std::move(o.arena_);
  o.blocks_.clear();
  o.size_ = 0;
  o.num_points_ = 0;
}

std::vector<TrajectoryId> TrajectoryStore::TrajectoriesOf(
    ObjectId object) const {
  std::vector<TrajectoryId> ids;
  for (TrajectoryId id = 0; id < size_; ++id) {
    if (At(id).object_id() == object) ids.push_back(id);
  }
  return ids;
}

geom::Mbb3D TrajectoryStore::Bounds() const {
  geom::Mbb3D box;
  for (TrajectoryId id = 0; id < size_; ++id) box.Extend(At(id).Bounds());
  return box;
}

std::pair<double, double> TrajectoryStore::TimeDomain() const {
  if (size_ == 0) return {0.0, 0.0};
  double lo = At(0).StartTime();
  double hi = At(0).EndTime();
  for (TrajectoryId id = 0; id < size_; ++id) {
    lo = std::min(lo, At(id).StartTime());
    hi = std::max(hi, At(id).EndTime());
  }
  return {lo, hi};
}

geom::Segment3D TrajectoryStore::Resolve(const SegmentRef& ref) const {
  return Get(ref.trajectory).SegmentAt(ref.segment_index);
}

Status TrajectoryStore::LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  // Buffer per object id, preserving file order within each object.
  std::map<ObjectId, Trajectory> builders;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1 && line.find_first_not_of(
                            "0123456789+-.eE, \t") != std::string::npos) {
      continue;  // Header row.
    }
    std::istringstream ss(line);
    std::string field;
    double vals[4];
    int k = 0;
    while (k < 4 && std::getline(ss, field, ',')) {
      try {
        vals[k] = std::stod(field);
      } catch (...) {
        return Status::Corruption("bad CSV field at line " +
                                  std::to_string(line_no));
      }
      ++k;
    }
    if (k != 4) {
      return Status::Corruption("expected obj_id,t,x,y at line " +
                                std::to_string(line_no));
    }
    const ObjectId obj = static_cast<ObjectId>(vals[0]);
    auto [it, inserted] = builders.try_emplace(obj, Trajectory(obj));
    Status st = it->second.Append({vals[2], vals[3], vals[1]});
    if (!st.ok()) {
      return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                st.message());
    }
  }
  for (auto& [obj, t] : builders) {
    HERMES_RETURN_NOT_OK(Add(std::move(t)).ok()
                             ? Status::OK()
                             : Status::Corruption("add failed"));
  }
  return Status::OK();
}

Status TrajectoryStore::SaveCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "obj_id,t,x,y\n";
  for (TrajectoryId id = 0; id < size_; ++id) {
    const Trajectory& t = At(id);
    for (const auto& p : t.samples()) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%llu,%.6f,%.6f,%.6f\n",
                    static_cast<unsigned long long>(t.object_id()), p.t, p.x,
                    p.y);
      out << buf;
    }
  }
  return out ? Status::OK() : Status::IOError("write failed");
}

}  // namespace hermes::traj
