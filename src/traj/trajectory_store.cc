#include "traj/trajectory_store.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/logging.h"

namespace hermes::traj {

StatusOr<TrajectoryId> TrajectoryStore::Add(Trajectory trajectory) {
  HERMES_RETURN_NOT_OK(trajectory.Validate());
  if (trajectory.empty()) {
    return Status::InvalidArgument("empty trajectory");
  }
  // The whole append happens under the snapshot lock, so a concurrent
  // `Snapshot` sees the list and the arena at the same trajectory count.
  common::MutexLock lock(&mu_);
  const TrajectoryId id = trajectories_.size();
  num_points_ += trajectory.size();
  by_object_[trajectory.object_id()].push_back(id);
  trajectories_.push_back(
      std::make_shared<const Trajectory>(std::move(trajectory)));
  arena_.Append(*trajectories_.back(), id);
  return id;
}

const Trajectory& TrajectoryStore::Get(TrajectoryId id) const {
  HERMES_CHECK(id < trajectories_.size()) << "trajectory id out of range";
  return *trajectories_[id];
}

size_t TrajectoryStore::NumSegments() const {
  size_t n = 0;
  for (const auto& t : trajectories_) n += t->NumSegments();
  return n;
}

void TrajectoryStore::CopyFrom(const TrajectoryStore& o) {
  common::MutexLock lock(&o.mu_);
  trajectories_ = o.trajectories_;  // Shared immutable trajectories.
  by_object_ = o.by_object_;
  num_points_ = o.num_points_;
  arena_ = o.arena_;  // Builder copy shares full blocks (own tail copy).
}

void TrajectoryStore::MoveFrom(TrajectoryStore&& o) {
  common::MutexLock lock(&o.mu_);
  trajectories_ = std::move(o.trajectories_);
  by_object_ = std::move(o.by_object_);
  num_points_ = o.num_points_;
  arena_ = std::move(o.arena_);
  o.trajectories_.clear();
  o.by_object_.clear();
  o.num_points_ = 0;
}

std::vector<TrajectoryId> TrajectoryStore::TrajectoriesOf(
    ObjectId object) const {
  auto it = by_object_.find(object);
  if (it == by_object_.end()) return {};
  return it->second;
}

geom::Mbb3D TrajectoryStore::Bounds() const {
  geom::Mbb3D box;
  for (const auto& t : trajectories_) box.Extend(t->Bounds());
  return box;
}

std::pair<double, double> TrajectoryStore::TimeDomain() const {
  if (trajectories_.empty()) return {0.0, 0.0};
  double lo = trajectories_.front()->StartTime();
  double hi = trajectories_.front()->EndTime();
  for (const auto& t : trajectories_) {
    lo = std::min(lo, t->StartTime());
    hi = std::max(hi, t->EndTime());
  }
  return {lo, hi};
}

geom::Segment3D TrajectoryStore::Resolve(const SegmentRef& ref) const {
  return Get(ref.trajectory).SegmentAt(ref.segment_index);
}

Status TrajectoryStore::LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  // Buffer per object id, preserving file order within each object.
  std::map<ObjectId, Trajectory> builders;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1 && line.find_first_not_of(
                            "0123456789+-.eE, \t") != std::string::npos) {
      continue;  // Header row.
    }
    std::istringstream ss(line);
    std::string field;
    double vals[4];
    int k = 0;
    while (k < 4 && std::getline(ss, field, ',')) {
      try {
        vals[k] = std::stod(field);
      } catch (...) {
        return Status::Corruption("bad CSV field at line " +
                                  std::to_string(line_no));
      }
      ++k;
    }
    if (k != 4) {
      return Status::Corruption("expected obj_id,t,x,y at line " +
                                std::to_string(line_no));
    }
    const ObjectId obj = static_cast<ObjectId>(vals[0]);
    auto [it, inserted] = builders.try_emplace(obj, Trajectory(obj));
    Status st = it->second.Append({vals[2], vals[3], vals[1]});
    if (!st.ok()) {
      return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                st.message());
    }
  }
  for (auto& [obj, t] : builders) {
    HERMES_RETURN_NOT_OK(Add(std::move(t)).ok()
                             ? Status::OK()
                             : Status::Corruption("add failed"));
  }
  return Status::OK();
}

Status TrajectoryStore::SaveCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "obj_id,t,x,y\n";
  for (const auto& t : trajectories_) {
    for (const auto& p : t->samples()) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%llu,%.6f,%.6f,%.6f\n",
                    static_cast<unsigned long long>(t->object_id()), p.t, p.x,
                    p.y);
      out << buf;
    }
  }
  return out ? Status::OK() : Status::IOError("write failed");
}

}  // namespace hermes::traj
