#ifndef HERMES_TRAJ_SIMPLIFY_H_
#define HERMES_TRAJ_SIMPLIFY_H_

#include <vector>

#include "common/statusor.h"
#include "traj/trajectory.h"

namespace hermes::traj {

/// \brief Douglas–Peucker simplification in the spatial plane with a
/// temporal guard: a sample is also kept when dropping it would displace
/// the interpolated position at its timestamp by more than `epsilon`
/// (so the simplified trajectory stays a faithful *moving* object, not
/// just a faithful polyline). Endpoints are always kept.
///
/// Returns InvalidArgument for epsilon <= 0; trajectories with fewer than
/// three samples are returned unchanged.
StatusOr<Trajectory> Simplify(const Trajectory& trajectory, double epsilon);

/// \brief Per-segment motion profile of a trajectory.
struct MotionProfile {
  std::vector<double> speeds;    ///< m/s per segment (size = NumSegments).
  std::vector<double> headings;  ///< Radians in (-pi, pi] per segment.

  double MeanSpeed() const;
  double MaxSpeed() const;
};

/// Computes speeds and headings for every segment.
MotionProfile ComputeMotionProfile(const Trajectory& trajectory);

/// \brief Total absolute heading change (radians) — large values indicate
/// loops such as holding patterns (used by the Fig. 4 detector).
double TotalTurning(const Trajectory& trajectory);

/// \brief True when the trajectory loops: its path length exceeds
/// `ratio` times its bounding-box diagonal (the holding-pattern signature
/// from the aircraft demo).
bool LooksLikeLoop(const Trajectory& trajectory, double ratio = 2.2);

}  // namespace hermes::traj

#endif  // HERMES_TRAJ_SIMPLIFY_H_
