#ifndef HERMES_TRAJ_TRAJECTORY_STORE_H_
#define HERMES_TRAJ_TRAJECTORY_STORE_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "traj/segment_arena.h"
#include "traj/trajectory.h"

namespace hermes::traj {

/// \brief One fixed-capacity block of trajectory pointers. Blocks other
/// than the last are full and immutable, so snapshots share them by
/// `shared_ptr` instead of copying 512 refcounted pointers each — the
/// same trick `SegmentBlock` plays for the columnar arena.
struct TrajBlock {
  static constexpr size_t kShift = 9;  ///< 512 trajectories per block.
  static constexpr size_t kRows = size_t{1} << kShift;
  static constexpr size_t kMask = kRows - 1;

  std::array<std::shared_ptr<const Trajectory>, kRows> slots;
};

/// \brief The Moving Object Database (MOD): an append-only collection of
/// trajectories with aggregate statistics and CSV import/export.
///
/// This plays the role of the Hermes@PostgreSQL relation holding the raw
/// trajectory data; on top of it the voting engine builds the pg3D-Rtree
/// and the ReTraTree partitions its contents.
///
/// Concurrency contract (mirrors `SegmentArenaBuilder`): `Add`/`LoadCsv`
/// calls are externally serialized — they come from a single writer (the
/// service's ingest worker, or a single-threaded embedder). `Snapshot()`
/// (and the copy constructor, which is the same operation) may run
/// concurrently with the writer; every other accessor is safe on a
/// quiesced store or on a snapshot, but must not race an in-flight `Add`.
/// Trajectories are individually heap-allocated and immutable once added,
/// so snapshots share them (and all full arena blocks) instead of copying
/// sample data. The pointer list itself is chunked into `TrajBlock`s:
/// full blocks are shared wholesale and only the mutable tail block is
/// copied, so a snapshot costs O(#blocks + tail) rather than
/// O(#trajectories) — the difference between republish cost growing with
/// total MOD size and growing with what changed since the last publish.
class TrajectoryStore {
 public:
  TrajectoryStore() = default;
  /// Copying IS snapshotting: locks `o` against its writer and shares the
  /// immutable trajectory objects + arena blocks.
  TrajectoryStore(const TrajectoryStore& o) { CopyFrom(o); }
  TrajectoryStore& operator=(const TrajectoryStore& o) {
    if (this != &o) CopyFrom(o);
    return *this;
  }
  TrajectoryStore(TrajectoryStore&& o) noexcept { MoveFrom(std::move(o)); }
  TrajectoryStore& operator=(TrajectoryStore&& o) noexcept {
    if (this != &o) MoveFrom(std::move(o));
    return *this;
  }

  /// Adds a trajectory after validation; returns its id.
  StatusOr<TrajectoryId> Add(Trajectory trajectory);

  // The read accessors below carry NO_THREAD_SAFETY_ANALYSIS: they read
  // guarded fields without `mu_` under the class contract (quiesced store
  // or private snapshot — see the class comment). Taking the lock here
  // would serialize concurrent snapshot readers on the writer's mutex for
  // races that cannot occur; the annotation records the deliberate escape
  // instead of hiding the fields from the analysis entirely.
  const Trajectory& Get(TrajectoryId id) const NO_THREAD_SAFETY_ANALYSIS;
  size_t NumTrajectories() const NO_THREAD_SAFETY_ANALYSIS { return size_; }
  size_t NumPoints() const NO_THREAD_SAFETY_ANALYSIS { return num_points_; }
  size_t NumSegments() const NO_THREAD_SAFETY_ANALYSIS;

  /// \brief An immutable read view for concurrent query execution: readers
  /// sweep the snapshot (full `TrajectoryStore` interface) while the
  /// writer keeps appending to `this`. The snapshot holds shared ownership
  /// of every trajectory and arena block it can see, so it stays valid for
  /// as long as the caller keeps it.
  TrajectoryStore Snapshot() const { return *this; }

  /// Ids of all trajectories of one object (an object may have several
  /// recorded trips). O(#trajectories) scan: the per-object index this
  /// used to maintain cost every snapshot an O(#objects) map copy, and
  /// nothing on the query path needs the grouping — only diagnostics do.
  std::vector<TrajectoryId> TrajectoriesOf(ObjectId object) const
      NO_THREAD_SAFETY_ANALYSIS;

  /// Bounding box over the whole MOD.
  geom::Mbb3D Bounds() const NO_THREAD_SAFETY_ANALYSIS;
  /// [min start time, max end time] over the MOD; (0,0) when empty.
  std::pair<double, double> TimeDomain() const NO_THREAD_SAFETY_ANALYSIS;

  /// Resolves a segment reference to its geometry.
  geom::Segment3D Resolve(const SegmentRef& ref) const;

  /// \brief The current epoch of the store's columnar segment arena.
  ///
  /// The arena is maintained incrementally: `Add` appends the new
  /// trajectory's rows to fixed-capacity column blocks instead of
  /// re-materializing the snapshot, and this call publishes (or re-returns)
  /// an immutable epoch over the rows added so far. Callers may keep
  /// sweeping an older epoch while further `Add`s proceed. The returned
  /// epoch is pinned (see `SegmentArenaCounters::epochs_pinned`) until the
  /// last copy of it is destroyed.
  SegmentArena ArenaSnapshot() const { return arena_.Snapshot(); }

  /// Append/epoch counters of the arena (observability + regression tests).
  SegmentArenaCounters arena_counters() const { return arena_.counters(); }

  /// \brief Loads `obj_id,t,x,y` CSV rows (header optional). Rows of one
  /// object must be time-ordered; each object yields one trajectory.
  Status LoadCsv(const std::string& path);

  /// Writes the store as `obj_id,t,x,y` CSV.
  Status SaveCsv(const std::string& path) const NO_THREAD_SAFETY_ANALYSIS;

 private:
  // CopyFrom/MoveFrom lock only the *source* store: `this` is a fresh or
  // assignment-target object owned exclusively by the caller, so its
  // fields need no lock. Thread-safety analysis cannot express that
  // asymmetry (it would demand `mu_` for the writes to `this`), hence the
  // deliberate escape.
  void CopyFrom(const TrajectoryStore& o) NO_THREAD_SAFETY_ANALYSIS;
  void MoveFrom(TrajectoryStore&& o) NO_THREAD_SAFETY_ANALYSIS;

  /// Unsynchronized read of slot `id`; callers own the class's read
  /// contract (quiesced store or private snapshot).
  const Trajectory& At(TrajectoryId id) const NO_THREAD_SAFETY_ANALYSIS {
    return *blocks_[id >> TrajBlock::kShift]->slots[id & TrajBlock::kMask];
  }

  /// Guards the block list / aggregate metadata against `Snapshot`
  /// racing the writer (the pointed-to trajectories never need it).
  mutable common::Mutex mu_;
  /// Chunked pointer list; `blocks_[i]` holds ids [i*kRows, (i+1)*kRows).
  /// All blocks but the last are full and never mutated again.
  std::vector<std::shared_ptr<TrajBlock>> blocks_ GUARDED_BY(mu_);
  size_t size_ GUARDED_BY(mu_) = 0;
  size_t num_points_ GUARDED_BY(mu_) = 0;
  /// Columnar mirror of `trajectories_`, appended to by `Add`. Internally
  /// locked (its own `mu_`); reassigned only by CopyFrom/MoveFrom, which
  /// own `this` exclusively, so it carries no GUARDED_BY.
  SegmentArenaBuilder arena_;
};

}  // namespace hermes::traj

#endif  // HERMES_TRAJ_TRAJECTORY_STORE_H_
