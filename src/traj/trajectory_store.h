#ifndef HERMES_TRAJ_TRAJECTORY_STORE_H_
#define HERMES_TRAJ_TRAJECTORY_STORE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "traj/trajectory.h"

namespace hermes::traj {

/// \brief Reference to one 3D segment inside a store: (trajectory, index).
struct SegmentRef {
  TrajectoryId trajectory = 0;
  uint32_t segment_index = 0;

  bool operator==(const SegmentRef& o) const {
    return trajectory == o.trajectory && segment_index == o.segment_index;
  }
};

/// \brief The Moving Object Database (MOD): an append-only collection of
/// trajectories with aggregate statistics and CSV import/export.
///
/// This plays the role of the Hermes@PostgreSQL relation holding the raw
/// trajectory data; on top of it the voting engine builds the pg3D-Rtree
/// and the ReTraTree partitions its contents.
class TrajectoryStore {
 public:
  TrajectoryStore() = default;

  /// Adds a trajectory after validation; returns its id.
  StatusOr<TrajectoryId> Add(Trajectory trajectory);

  const Trajectory& Get(TrajectoryId id) const;
  size_t NumTrajectories() const { return trajectories_.size(); }
  size_t NumPoints() const { return num_points_; }
  size_t NumSegments() const;

  const std::vector<Trajectory>& trajectories() const { return trajectories_; }

  /// Ids of all trajectories of one object (an object may have several
  /// recorded trips).
  std::vector<TrajectoryId> TrajectoriesOf(ObjectId object) const;

  /// Bounding box over the whole MOD.
  geom::Mbb3D Bounds() const;
  /// [min start time, max end time] over the MOD; (0,0) when empty.
  std::pair<double, double> TimeDomain() const;

  /// Resolves a segment reference to its geometry.
  geom::Segment3D Resolve(const SegmentRef& ref) const;

  /// \brief Loads `obj_id,t,x,y` CSV rows (header optional). Rows of one
  /// object must be time-ordered; each object yields one trajectory.
  Status LoadCsv(const std::string& path);

  /// Writes the store as `obj_id,t,x,y` CSV.
  Status SaveCsv(const std::string& path) const;

 private:
  std::vector<Trajectory> trajectories_;
  std::unordered_map<ObjectId, std::vector<TrajectoryId>> by_object_;
  size_t num_points_ = 0;
};

}  // namespace hermes::traj

#endif  // HERMES_TRAJ_TRAJECTORY_STORE_H_
