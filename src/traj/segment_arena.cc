#include "traj/segment_arena.h"

#include <chrono>

#include "common/logging.h"
#include "traj/trajectory_store.h"

namespace hermes::traj {

namespace {
int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

const std::vector<size_t>& SegmentArena::offsets() const {
  static const std::vector<size_t> kEmpty;
  return offsets_ == nullptr ? kEmpty : *offsets_;
}

SegmentArena SegmentArena::Build(const TrajectoryStore& store,
                                 exec::ExecContext* ctx) {
  const int64_t start = NowUs();
  SegmentArena arena = store.ArenaSnapshot();
  if (ctx != nullptr) {
    ctx->stats().RecordPhaseUs("arena_build", NowUs() - start);
  }
  return arena;
}

void SegmentArenaBuilder::Append(const Trajectory& t, TrajectoryId tid) {
  std::lock_guard<std::mutex> lock(mu_);
  HERMES_CHECK(tid + 1 == offsets_.size())
      << "arena append out of order: tid " << tid << " with "
      << offsets_.size() - 1 << " trajectories appended";
  const auto& samples = t.samples();
  const size_t segs = t.NumSegments();
  for (size_t i = 0; i < segs; ++i) {
    if ((rows_ & SegmentBlock::kMask) == 0) {
      blocks_.push_back(std::make_shared<SegmentBlock>());
      ++counters_.blocks_allocated;
    }
    SegmentBlock& b = *blocks_.back();
    const size_t s = rows_ & SegmentBlock::kMask;
    b.ax[s] = samples[i].x;
    b.ay[s] = samples[i].y;
    b.t0[s] = samples[i].t;
    b.bx[s] = samples[i + 1].x;
    b.by[s] = samples[i + 1].y;
    b.t1[s] = samples[i + 1].t;
    b.owner[s] = tid;
    b.segment_index[s] = static_cast<uint32_t>(i);
    ++rows_;
  }
  offsets_.push_back(rows_);
  counters_.rows_appended += segs;
  epoch_valid_ = false;
}

SegmentArena SegmentArenaBuilder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!epoch_valid_) {
    SegmentArena epoch;
    epoch.blocks_.assign(blocks_.begin(), blocks_.end());
    epoch.offsets_ = std::make_shared<const std::vector<size_t>>(offsets_);
    epoch.rows_ = rows_;
    cached_epoch_ = std::move(epoch);
    epoch_valid_ = true;
    ++counters_.epochs_published;
  }
  return cached_epoch_;
}

SegmentArenaCounters SegmentArenaBuilder::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void SegmentArenaBuilder::CopyFrom(const SegmentArenaBuilder& o) {
  std::lock_guard<std::mutex> lock(o.mu_);
  blocks_ = o.blocks_;
  // Full blocks are immutable forever and may be shared; a partially
  // filled tail is still append-mutable in `o`, so the copy gets its own.
  if (!blocks_.empty() && (o.rows_ & SegmentBlock::kMask) != 0) {
    blocks_.back() = std::make_shared<SegmentBlock>(*o.blocks_.back());
  }
  offsets_ = o.offsets_;
  rows_ = o.rows_;
  counters_ = o.counters_;
  cached_epoch_ = o.cached_epoch_;
  epoch_valid_ = o.epoch_valid_;
}

void SegmentArenaBuilder::MoveFrom(SegmentArenaBuilder&& o) {
  std::lock_guard<std::mutex> lock(o.mu_);
  blocks_ = std::move(o.blocks_);
  offsets_ = std::move(o.offsets_);
  rows_ = o.rows_;
  counters_ = o.counters_;
  cached_epoch_ = std::move(o.cached_epoch_);
  epoch_valid_ = o.epoch_valid_;
  o.blocks_.clear();
  o.offsets_ = {0};
  o.rows_ = 0;
  o.counters_ = {};
  o.cached_epoch_ = {};
  o.epoch_valid_ = false;
}

}  // namespace hermes::traj
