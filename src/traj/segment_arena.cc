#include "traj/segment_arena.h"

#include <chrono>

#include "exec/parallel_for.h"

namespace hermes::traj {

namespace {
int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

SegmentArena SegmentArena::Build(const TrajectoryStore& store,
                                 exec::ExecContext* ctx) {
  const int64_t start = NowUs();
  SegmentArena arena;
  const size_t n = store.NumTrajectories();
  arena.offsets_.resize(n + 1, 0);
  for (TrajectoryId tid = 0; tid < n; ++tid) {
    arena.offsets_[tid + 1] =
        arena.offsets_[tid] + store.Get(tid).NumSegments();
  }
  const size_t rows = arena.offsets_[n];
  arena.ax_.resize(rows);
  arena.ay_.resize(rows);
  arena.bx_.resize(rows);
  arena.by_.resize(rows);
  arena.t0_.resize(rows);
  arena.t1_.resize(rows);
  arena.owner_.resize(rows);
  arena.segment_index_.resize(rows);

  // Each chunk of trajectories fills a disjoint row range, so the parallel
  // fill needs no synchronization and matches the sequential layout.
  constexpr size_t kGrain = 16;
  exec::ParallelFor(ctx, n, kGrain,
                    [&](size_t begin, size_t end, size_t /*chunk*/) {
    for (TrajectoryId tid = begin; tid < end; ++tid) {
      const Trajectory& t = store.Get(tid);
      const auto& samples = t.samples();
      size_t r = arena.offsets_[tid];
      for (size_t i = 0; i + 1 < samples.size(); ++i, ++r) {
        arena.ax_[r] = samples[i].x;
        arena.ay_[r] = samples[i].y;
        arena.t0_[r] = samples[i].t;
        arena.bx_[r] = samples[i + 1].x;
        arena.by_[r] = samples[i + 1].y;
        arena.t1_[r] = samples[i + 1].t;
        arena.owner_[r] = tid;
        arena.segment_index_[r] = static_cast<uint32_t>(i);
      }
    }
  });

  if (ctx != nullptr) {
    ctx->stats().RecordPhaseUs("arena_build", NowUs() - start);
  }
  return arena;
}

}  // namespace hermes::traj
