#include "traj/segment_arena.h"

#include <chrono>

#include "common/logging.h"
#include "traj/trajectory_store.h"

namespace hermes::traj {

namespace {
int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

const std::vector<size_t>& SegmentArena::offsets() const {
  static const std::vector<size_t> kEmpty;
  return offsets_ == nullptr ? kEmpty : *offsets_;
}

SegmentArena SegmentArena::Build(const TrajectoryStore& store,
                                 exec::ExecContext* ctx) {
  const int64_t start = NowUs();
  SegmentArena arena = store.ArenaSnapshot();
  if (ctx != nullptr) {
    ctx->stats().RecordPhaseUs("arena_build", NowUs() - start);
  }
  return arena;
}

void SegmentArenaBuilder::Append(const Trajectory& t, TrajectoryId tid) {
  common::MutexLock lock(&mu_);
  HERMES_CHECK(tid + 1 == offsets_.size())
      << "arena append out of order: tid " << tid << " with "
      << offsets_.size() - 1 << " trajectories appended";
  const auto& samples = t.samples();
  const size_t segs = t.NumSegments();
  for (size_t i = 0; i < segs; ++i) {
    if ((rows_ & SegmentBlock::kMask) == 0) {
      blocks_.push_back(std::make_shared<SegmentBlock>());
      ++counters_.blocks_allocated;
    }
    SegmentBlock& b = *blocks_.back();
    const size_t s = rows_ & SegmentBlock::kMask;
    b.ax[s] = samples[i].x;
    b.ay[s] = samples[i].y;
    b.t0[s] = samples[i].t;
    b.bx[s] = samples[i + 1].x;
    b.by[s] = samples[i + 1].y;
    b.t1[s] = samples[i + 1].t;
    b.owner[s] = tid;
    b.segment_index[s] = static_cast<uint32_t>(i);
    ++rows_;
  }
  offsets_.push_back(rows_);
  counters_.rows_appended += segs;
  if (epoch_valid_ && cached_epoch_.rows_ > 0 &&
      pins_->live.load(std::memory_order_relaxed) == 0) {
    // The epoch we are about to invalidate has no live readers: drop it
    // now so its offsets table (O(#trajectories)) is not retained across
    // an arbitrarily long gap until the next Snapshot. If a pin is still
    // live the shared state must stay; the snapshot holders keep their
    // own block/offsets references either way, this only frees the
    // builder's cache.
    cached_epoch_ = {};
    ++counters_.epochs_reclaimed;
  }
  epoch_valid_ = false;
}

SegmentArena SegmentArenaBuilder::Snapshot() const {
  common::MutexLock lock(&mu_);
  if (!epoch_valid_) {
    SegmentArena epoch;
    epoch.blocks_.assign(blocks_.begin(), blocks_.end());
    epoch.offsets_ = std::make_shared<const std::vector<size_t>>(offsets_);
    epoch.rows_ = rows_;
    cached_epoch_ = std::move(epoch);
    epoch_valid_ = true;
    ++counters_.epochs_published;
  }
  // The internal cache itself is never pinned; every handed-out snapshot
  // carries one pin that its copies share.
  SegmentArena out = cached_epoch_;
  out.pin_ = std::make_shared<const EpochPin>(pins_);
  return out;
}

SegmentArenaCounters SegmentArenaBuilder::counters() const {
  common::MutexLock lock(&mu_);
  SegmentArenaCounters out = counters_;
  out.epochs_pinned = pins_->live.load(std::memory_order_relaxed);
  out.epoch_pins = pins_->total.load(std::memory_order_relaxed);
  return out;
}

void SegmentArenaBuilder::CopyFrom(const SegmentArenaBuilder& o) {
  common::MutexLock lock(&o.mu_);
  blocks_ = o.blocks_;
  // Full blocks are immutable forever and may be shared; a partially
  // filled tail is still append-mutable in `o`, so the copy gets its own.
  if (!blocks_.empty() && (o.rows_ & SegmentBlock::kMask) != 0) {
    blocks_.back() = std::make_shared<SegmentBlock>(*o.blocks_.back());
  }
  offsets_ = o.offsets_;
  rows_ = o.rows_;
  counters_ = o.counters_;
  cached_epoch_ = o.cached_epoch_;
  epoch_valid_ = o.epoch_valid_;
  // Copies (store snapshots) stay in the source's pin lineage so the
  // service sees one fleet-wide pin count per MOD.
  pins_ = o.pins_;
}

void SegmentArenaBuilder::MoveFrom(SegmentArenaBuilder&& o) {
  common::MutexLock lock(&o.mu_);
  blocks_ = std::move(o.blocks_);
  offsets_ = std::move(o.offsets_);
  rows_ = o.rows_;
  counters_ = o.counters_;
  cached_epoch_ = std::move(o.cached_epoch_);
  epoch_valid_ = o.epoch_valid_;
  pins_ = o.pins_;
  o.blocks_.clear();
  o.offsets_ = {0};
  o.rows_ = 0;
  o.counters_ = {};
  o.cached_epoch_ = {};
  o.epoch_valid_ = false;
  o.pins_ = std::make_shared<EpochPinRegistry>();
}

}  // namespace hermes::traj
