#include "service/service_config.h"

namespace hermes::service {

namespace {

/// Shards beyond this are a configuration error, not a deployment: each
/// shard owns a worker thread, an exec context, and (durable) a WAL.
constexpr size_t kMaxShards = 256;

}  // namespace

Status ServiceConfig::Validate() const {
  if (shards < 1) {
    return Status::InvalidArgument("ServiceConfig.shards must be >= 1");
  }
  if (shards > kMaxShards) {
    return Status::InvalidArgument("ServiceConfig.shards must be <= " +
                                   std::to_string(kMaxShards));
  }
  if (data_dir.empty()) {
    return Status::InvalidArgument("ServiceConfig.data_dir must be non-empty");
  }
  if (!shard_wal_dirs.empty() && shard_wal_dirs.size() != shards) {
    return Status::InvalidArgument(
        "ServiceConfig.shard_wal_dirs must have exactly one entry per "
        "shard (" +
        std::to_string(shard_wal_dirs.size()) + " entries, " +
        std::to_string(shards) + " shards)");
  }
  for (size_t i = 0; i < shard_wal_dirs.size(); ++i) {
    if (shard_wal_dirs[i].empty()) {
      return Status::InvalidArgument("ServiceConfig.shard_wal_dirs[" +
                                     std::to_string(i) + "] is empty");
    }
    for (size_t j = i + 1; j < shard_wal_dirs.size(); ++j) {
      if (shard_wal_dirs[i] == shard_wal_dirs[j]) {
        return Status::InvalidArgument(
            "per-shard wal_dir collision: shards " + std::to_string(i) +
            " and " + std::to_string(j) + " both log to '" +
            shard_wal_dirs[i] + "'");
      }
    }
  }
  if (backlog < 1) {
    return Status::InvalidArgument("ServiceConfig.backlog must be >= 1");
  }
  if (idle_timeout_ms < 0) {
    return Status::InvalidArgument(
        "ServiceConfig.idle_timeout_ms must be >= 0");
  }
  if (listen_addr.empty()) {
    return Status::InvalidArgument(
        "ServiceConfig.listen_addr must be non-empty");
  }
  // Every shard shares the same threads/queue/session-default knobs, so
  // validating shard 0's derived options covers them all.
  return ValidateServerOptions(ShardServerOptions(0));
}

std::string ServiceConfig::ShardDataDir(size_t shard) const {
  if (shards <= 1) return data_dir;
  return data_dir + "/shard" + std::to_string(shard);
}

std::string ServiceConfig::ShardWalDir(size_t shard) const {
  if (!shard_wal_dirs.empty()) return shard_wal_dirs[shard];
  if (wal_dir.empty()) return "";
  if (shards <= 1) return wal_dir;
  return wal_dir + "/shard" + std::to_string(shard);
}

ServerOptions ServiceConfig::ShardServerOptions(size_t shard) const {
  ServerOptions opts;
  opts.threads = threads;
  opts.data_dir = ShardDataDir(shard);
  opts.ingest_queue_capacity = ingest_queue_capacity;
  opts.session_defaults = session_defaults;
  opts.wal_dir = ShardWalDir(shard);
  return opts;
}

}  // namespace hermes::service
