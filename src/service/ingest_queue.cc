#include "service/ingest_queue.h"

#include <iterator>
#include <utility>

namespace hermes::service {

IngestQueue::IngestQueue(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

StatusOr<uint64_t> IngestQueue::Push(IngestBatch batch) {
  common::MutexLock lock(&mu_);
  while (!closed_ && pending_.size() >= capacity_) lock.Wait(can_push_);
  if (closed_) {
    // Distinct from the at-capacity backpressure path: a Push racing
    // shutdown gets a retryable-elsewhere "service is gone" code, not a
    // capacity error.
    return Status::Unavailable("ingest queue closed (server shutdown)");
  }
  batch.seq = ++next_seq_;
  const uint64_t seq = batch.seq;
  pending_.push_back(std::move(batch));
  can_pop_.notify_one();
  return seq;
}

bool IngestQueue::PopAll(std::vector<IngestBatch>* out) {
  out->clear();
  common::MutexLock lock(&mu_);
  while (!closed_ && pending_.empty()) lock.Wait(can_pop_);
  if (pending_.empty()) return false;  // Closed and drained.
  out->assign(std::make_move_iterator(pending_.begin()),
              std::make_move_iterator(pending_.end()));
  pending_.clear();
  can_push_.notify_all();
  return true;
}

void IngestQueue::Close() {
  common::MutexLock lock(&mu_);
  closed_ = true;
  can_push_.notify_all();
  can_pop_.notify_all();
}

uint64_t IngestQueue::last_enqueued_seq() const {
  common::MutexLock lock(&mu_);
  return next_seq_;
}

size_t IngestQueue::depth() const {
  common::MutexLock lock(&mu_);
  return pending_.size();
}

}  // namespace hermes::service
