#ifndef HERMES_SERVICE_CLIENT_SESSION_H_
#define HERMES_SERVICE_CLIENT_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "exec/exec_context.h"
#include "service/server.h"
#include "sql/cursor.h"
#include "sql/parser.h"
#include "sql/query_functions.h"
#include "sql/settings.h"
#include "sql/statement_executor.h"
#include "sql/value.h"

namespace hermes::service {

/// \brief One client's view of the service: the embedded `sql::Session`
/// dialect executed against the server's *shared* catalog.
///
/// Differences from the embedded session, by design:
///
///  - MODs are shared across sessions; DDL is visible to everyone.
///  - `SELECT`s run against the MOD's *published snapshot*: immutable,
///    never blocking on — or blocked by — the ingest worker. Streaming
///    cursors keep their snapshot (and its pinned arena epoch) alive even
///    while newer epochs are published, so a cursor is never invalidated
///    by concurrent ingest.
///  - `INSERT INTO` enqueues onto the server's MPSC ingest queue and acks
///    with the queued count; `FLUSH` blocks until everything previously
///    queued is applied and query-visible.
///  - `SET`/`SHOW` operate on this session's own settings registry
///    (seeded from the server defaults); `hermes.threads` swaps only this
///    session's `ExecContext`. Two sessions with different settings never
///    interfere.
///  - `SHOW SERVICE STATS` reports the server's service counters.
///
/// Thread safety: one ClientSession serves one client thread (like a
/// PostgreSQL backend); different sessions run fully concurrently. The
/// server must outlive the session and every cursor it returned.
class ClientSession {
 public:
  ~ClientSession();

  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  /// Parses and executes one statement, materializing the full result.
  StatusOr<sql::Table> Execute(const std::string& sql);

  /// Parses and executes one statement, returning a pull-based cursor.
  /// `RANGE` / `S2T_MEMBERS` stream rows from the statement's snapshot.
  StatusOr<std::unique_ptr<sql::RowCursor>> ExecuteCursor(
      const std::string& sql);

  /// Parses a statement with `$N` placeholders into a reusable handle
  /// running against this session (same semantics as
  /// `sql::Session::Prepare` — the wire protocol's PREPARE/BIND+EXECUTE
  /// path). The handle must not outlive this session.
  StatusOr<sql::PreparedStatement> Prepare(const std::string& sql);

  /// Executes a ';'-separated script, returning the last statement's
  /// table (same semantics as `sql::Session::ExecuteScript`).
  StatusOr<sql::Table> ExecuteScript(const std::string& sql);

  /// This session's settings registry (`SET`/`SHOW` surface).
  const sql::Settings& settings() const { return settings_; }

  /// This session's execution context (nullptr while hermes.threads = 1).
  exec::ExecContext* exec_context() { return exec_.get(); }

  /// Session-accumulated statistics (`SHOW STATS`).
  const exec::ExecStats& stats() const { return session_stats_; }

 private:
  friend class Server;
  explicit ClientSession(Server* server);

  StatusOr<std::unique_ptr<sql::RowCursor>> ExecuteStatement(
      const sql::Statement& stmt, const std::vector<sql::Value>& binds);
  StatusOr<std::unique_ptr<sql::RowCursor>> ExecuteShow(
      const sql::Statement& stmt);
  StatusOr<std::unique_ptr<sql::RowCursor>> ExecuteSelect(
      const sql::Statement& stmt, const std::vector<sql::Value>& binds);

  Server* server_;
  sql::Settings settings_;
  exec::ExecStats session_stats_;
  /// Kept in sync with hermes.threads by its on-change hook.
  size_t threads_ = 1;
  std::unique_ptr<exec::ExecContext> exec_;
};

/// Wraps a connected service session in the backend-neutral
/// `sql::StatementExecutor` interface (owning the session), so callers —
/// the shard coordinator, examples, benches — speak one statement API
/// whether the backend is embedded, in-process service, or remote.
std::unique_ptr<sql::StatementExecutor> MakeStatementExecutor(
    std::unique_ptr<ClientSession> session);

}  // namespace hermes::service

#endif  // HERMES_SERVICE_CLIENT_SESSION_H_
