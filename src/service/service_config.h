#ifndef HERMES_SERVICE_SERVICE_CONFIG_H_
#define HERMES_SERVICE_SERVICE_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/server.h"

namespace hermes::service {

/// \brief One validated configuration for the whole service stack:
/// shard count, the per-shard `service::Server` knobs, and the TCP
/// front end — replacing the previously scattered, unchecked trio of
/// `ServerOptions`, `net::NetServerOptions`, and ad-hoc daemon flag
/// parsing.
///
/// The network fields are plain scalars (not `net::NetServerOptions`)
/// so `service/` stays independent of `net/`; `net::MakeNetServerOptions`
/// converts. Per-shard directories derive deterministically: shard k of
/// an N > 1 deployment gets `<data_dir>/shard<k>` and
/// `<wal_dir>/shard<k>`, while a 1-shard deployment keeps the plain
/// paths — so existing unsharded WAL dirs recover unchanged.
struct ServiceConfig {
  /// Number of single-writer `service::Server` shards the coordinator
  /// owns. 1 = the unsharded topology.
  size_t shards = 1;

  // ---- Per-shard server knobs (mirrors ServerOptions) ----
  size_t threads = 1;
  std::string data_dir = "hermes_service";
  size_t ingest_queue_capacity = 1024;
  sql::HermesSettingDefaults session_defaults;
  /// WAL/checkpoint root; empty disables durability on every shard.
  std::string wal_dir;
  /// Explicit per-shard WAL directories (advanced; overrides the
  /// derived `<wal_dir>/shard<k>` layout). When non-empty it must hold
  /// exactly `shards` pairwise-distinct non-empty entries — `Validate`
  /// rejects collisions, which would interleave two shards' logs.
  std::vector<std::string> shard_wal_dirs;

  // ---- TCP front end (plain scalars; see net::MakeNetServerOptions) ----
  std::string listen_addr = "127.0.0.1";
  uint16_t port = 0;
  int backlog = 128;
  int idle_timeout_ms = 0;
  /// 0 = the wire protocol's default frame cap.
  uint32_t max_frame_bytes = 0;

  /// Rejects invalid configurations up front: `shards < 1` (or absurdly
  /// large), per-shard `wal_dir` collisions, out-of-domain session
  /// defaults, and nonsensical network knobs.
  Status Validate() const;

  /// Shard k's ReTraTree partition directory.
  std::string ShardDataDir(size_t shard) const;
  /// Shard k's WAL directory ("" when durability is off).
  std::string ShardWalDir(size_t shard) const;
  /// The `ServerOptions` shard k starts with.
  ServerOptions ShardServerOptions(size_t shard) const;
};

}  // namespace hermes::service

#endif  // HERMES_SERVICE_SERVICE_CONFIG_H_
