#ifndef HERMES_SERVICE_WAL_PAYLOADS_H_
#define HERMES_SERVICE_WAL_PAYLOADS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/coding.h"
#include "common/statusor.h"
#include "traj/trajectory_io.h"

namespace hermes::service {

/// \brief Payload codecs for the service's WAL record types. A record's
/// payload always starts with the canonical MOD name (u16 length +
/// bytes); insert/swap payloads follow it with the trajectory_io batch
/// encoding, so WAL replay and checkpoint store files share one format.

inline void EncodeModName(const std::string& name, std::string* out) {
  PutFixed16(out, static_cast<uint16_t>(name.size()));
  out->append(name);
}

inline StatusOr<std::string> DecodeModName(Decoder* dec) {
  if (dec->remaining() < 2) {
    return Status::Corruption("truncated WAL payload (mod name length)");
  }
  const uint16_t n = dec->ReadFixed16();
  if (dec->remaining() < n) {
    return Status::Corruption("truncated WAL payload (mod name)");
  }
  std::string name(dec->data(), n);
  dec->Skip(n);
  return name;
}

/// kCreateMod / kDropMod payload: just the name.
inline std::string NamePayload(const std::string& name) {
  std::string out;
  EncodeModName(name, &out);
  return out;
}

/// kInsertBatch payload: name + encoded trajectory batch.
inline std::string InsertPayload(const std::string& name,
                                 const std::vector<traj::Trajectory>& batch) {
  std::string out;
  EncodeModName(name, &out);
  traj::EncodeTrajectories(batch, &out);
  return out;
}

/// kInsertBatch payload from a pre-parsed store (the CSV load path);
/// `EncodeStore` emits the identical batch encoding.
inline std::string InsertPayloadFromStore(const std::string& name,
                                          const traj::TrajectoryStore& store) {
  std::string out;
  EncodeModName(name, &out);
  traj::EncodeStore(store, &out);
  return out;
}

/// kSwapStore payload: name + full store contents (same batch encoding —
/// the semantic difference is replace-whole-MOD vs append).
inline std::string SwapPayload(const std::string& name,
                               const traj::TrajectoryStore& store) {
  return InsertPayloadFromStore(name, store);
}

}  // namespace hermes::service

#endif  // HERMES_SERVICE_WAL_PAYLOADS_H_
