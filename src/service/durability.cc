/// \file
/// \brief The durable side of service::Server: WAL logging helpers,
/// checkpointing, and crash recovery.
///
/// On-disk layout under `ServerOptions.wal_dir`:
///
///     wal_000001.log          WAL segments (wal/wal.h record format)
///     ckpt_000003_SHIPS.store checkpointed store, one per MOD
///     MANIFEST                current checkpoint (atomic rename publish)
///
/// Blob files (manifest + store files) are self-validating:
/// u32 magic, u32 version, u32 CRC-32 over the payload, payload. A torn
/// or half-written blob fails its CRC and is treated as absent — which
/// is safe because blobs only become *reachable* through the MANIFEST
/// rename, itself atomic.

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/coding.h"
#include "common/crc32.h"
#include "service/server.h"
#include "service/wal_payloads.h"
#include "sql/query_functions.h"
#include "traj/trajectory_io.h"

namespace hermes::service {

namespace {

constexpr uint32_t kManifestMagic = 0x484D414E;  // "HMAN"
constexpr uint32_t kStoreMagic = 0x48434B50;     // "HCKP"
constexpr uint32_t kBlobVersion = 1;
constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestTmpName[] = "MANIFEST.tmp";

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  return dir.back() == '/' ? dir + name : dir + "/" + name;
}

std::string CkptStoreFileName(uint64_t ckpt_id, const std::string& key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt_%06llu_",
                static_cast<unsigned long long>(ckpt_id));
  return buf + key + ".store";
}

/// Parses "ckpt_<id>_<key>.store"; false for anything else.
bool ParseCkptFileName(const std::string& name, uint64_t* ckpt_id) {
  if (name.rfind("ckpt_", 0) != 0 || name.size() < 13 ||
      name.substr(name.size() - 6) != ".store") {
    return false;
  }
  const std::string digits = name.substr(5, 6);
  if (digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *ckpt_id = std::stoull(digits);
  return true;
}

/// Writes magic/version/crc + payload and syncs. Deletes any stale file
/// at `path` first (a crashed earlier attempt must not leave its tail
/// behind a shorter rewrite).
Status WriteBlobFile(storage::Env* env, const std::string& path,
                     uint32_t magic, const std::string& payload) {
  if (env->FileExists(path)) {
    HERMES_RETURN_NOT_OK(env->DeleteFile(path));
  }
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<storage::RandomRWFile> file,
                          env->NewRWFile(path));
  std::string data;
  data.reserve(12 + payload.size());
  PutFixed32(&data, magic);
  PutFixed32(&data, kBlobVersion);
  PutFixed32(&data, common::Crc32(payload));
  data.append(payload);
  HERMES_RETURN_NOT_OK(file->WriteAt(0, data.size(), data.data()));
  return file->Sync();
}

StatusOr<std::string> ReadBlobFile(storage::Env* env, const std::string& path,
                                   uint32_t magic) {
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<storage::RandomRWFile> file,
                          env->NewRWFile(path));
  HERMES_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size < 12) return Status::Corruption(path + ": truncated header");
  std::string data(size, '\0');
  HERMES_RETURN_NOT_OK(file->ReadAt(0, size, data.data()));
  if (GetFixed32(data.data()) != magic) {
    return Status::Corruption(path + ": bad magic");
  }
  if (GetFixed32(data.data() + 4) != kBlobVersion) {
    return Status::Corruption(path + ": unsupported version");
  }
  std::string payload = data.substr(12);
  if (GetFixed32(data.data() + 8) != common::Crc32(payload)) {
    return Status::Corruption(path + ": payload CRC mismatch");
  }
  return payload;
}

void PutString(std::string* out, const std::string& s) {
  PutFixed16(out, static_cast<uint16_t>(s.size()));
  out->append(s);
}

StatusOr<std::string> ReadString(Decoder* dec) {
  if (dec->remaining() < 2) return Status::Corruption("truncated string");
  const uint16_t n = dec->ReadFixed16();
  if (dec->remaining() < n) return Status::Corruption("truncated string");
  std::string s(dec->data(), n);
  dec->Skip(n);
  return s;
}

/// Per-MOD checkpoint metadata, as recorded in the manifest.
struct ModMeta {
  std::string name;        ///< Canonical MOD key.
  std::string store_file;  ///< File name (within wal_dir) of the store.
  bool has_tree = false;
  std::string tree_dir;            ///< ReTraTree directory (env path).
  std::vector<double> tree_params; ///< The 5 raw QUT tree params.
  uint64_t tree_next = 0;
  uint64_t tree_seq = 0;
};

struct Manifest {
  uint64_t checkpoint_id = 0;
  uint64_t wal_start_segment = 1;  ///< Replay floor (segments below died).
  uint64_t next_lsn = 1;           ///< First LSN after the checkpoint.
  uint64_t gen = 0;                ///< Recovery generation that wrote it.
  std::vector<ModMeta> mods;
};

std::string EncodeManifest(const Manifest& m) {
  std::string out;
  PutFixed64(&out, m.checkpoint_id);
  PutFixed64(&out, m.wal_start_segment);
  PutFixed64(&out, m.next_lsn);
  PutFixed64(&out, m.gen);
  PutFixed32(&out, static_cast<uint32_t>(m.mods.size()));
  for (const ModMeta& mod : m.mods) {
    PutString(&out, mod.name);
    PutString(&out, mod.store_file);
    out.push_back(mod.has_tree ? 1 : 0);
    if (mod.has_tree) {
      PutString(&out, mod.tree_dir);
      for (double p : mod.tree_params) PutDouble(&out, p);
      PutFixed64(&out, mod.tree_next);
    }
    PutFixed64(&out, mod.tree_seq);
  }
  return out;
}

StatusOr<Manifest> DecodeManifest(const std::string& payload) {
  Decoder dec(payload);
  if (dec.remaining() < 36) return Status::Corruption("manifest too short");
  Manifest m;
  m.checkpoint_id = dec.ReadFixed64();
  m.wal_start_segment = dec.ReadFixed64();
  m.next_lsn = dec.ReadFixed64();
  m.gen = dec.ReadFixed64();
  const uint32_t nmods = dec.ReadFixed32();
  for (uint32_t i = 0; i < nmods; ++i) {
    ModMeta mod;
    HERMES_ASSIGN_OR_RETURN(mod.name, ReadString(&dec));
    HERMES_ASSIGN_OR_RETURN(mod.store_file, ReadString(&dec));
    if (dec.remaining() < 1) return Status::Corruption("manifest truncated");
    mod.has_tree = *dec.data() != 0;
    dec.Skip(1);
    if (mod.has_tree) {
      HERMES_ASSIGN_OR_RETURN(mod.tree_dir, ReadString(&dec));
      if (dec.remaining() < 5 * 8 + 8) {
        return Status::Corruption("manifest truncated (tree meta)");
      }
      mod.tree_params.resize(5);
      for (double& p : mod.tree_params) p = dec.ReadDouble();
      mod.tree_next = dec.ReadFixed64();
    }
    if (dec.remaining() < 8) return Status::Corruption("manifest truncated");
    mod.tree_seq = dec.ReadFixed64();
    m.mods.push_back(std::move(mod));
  }
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// WAL logging
// ---------------------------------------------------------------------------

Status Server::WalAppend(wal::RecordType type, const std::string& payload) {
  if (wal_ == nullptr) return Status::OK();
  HERMES_RETURN_NOT_OK(wal_error_);
  auto lsn = wal_->Append(type, payload);
  if (!lsn.ok()) {
    wal_error_ = lsn.status();
    wal_failed_.store(true, std::memory_order_relaxed);
    wal_errors_.fetch_add(1, std::memory_order_relaxed);
    return lsn.status();
  }
  wal_records_appended_.fetch_add(1, std::memory_order_relaxed);
  // 17 = len + crc + lsn + type framing around the payload.
  wal_bytes_appended_.fetch_add(payload.size() + 17,
                                std::memory_order_relaxed);
  return Status::OK();
}

Status Server::WalSync() {
  if (wal_ == nullptr) return Status::OK();
  HERMES_RETURN_NOT_OK(wal_error_);
  Status st = wal_->Sync();
  if (!st.ok()) {
    // A failed fsync means the kernel may or may not have persisted the
    // appended records — the durable prefix is unknowable from here, so
    // the server goes read-only and recovery decides from what is
    // actually on disk.
    wal_error_ = st;
    wal_failed_.store(true, std::memory_order_relaxed);
    wal_errors_.fetch_add(1, std::memory_order_relaxed);
    return st;
  }
  wal_syncs_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Server::WalLogAndSync(wal::RecordType type,
                             const std::string& payload) {
  HERMES_RETURN_NOT_OK(WalAppend(type, payload));
  return WalSync();
}

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

Status Server::Checkpoint() {
  if (!durable()) {
    return Status::NotSupported(
        "CHECKPOINT requires a WAL-enabled server (ServerOptions.wal_dir)");
  }
  const std::string& dir = options_.wal_dir;
  common::MutexLock wal_lock(&wal_mu_);
  HERMES_RETURN_NOT_OK(wal_error_);

  // Everything WAL-logged is applied by now (append and apply share the
  // wal_mu_ window), so the in-memory catalog IS the durable-prefix
  // state; persisting it and cutting the WAL at the current LSN loses
  // nothing.
  Manifest m;
  m.checkpoint_id = checkpoint_id_ + 1;
  m.gen = gen_;

  std::vector<std::pair<std::string, std::shared_ptr<SharedMod>>> mods;
  {
    common::MutexLock lock(&catalog_mu_);
    for (const auto& [key, mod] : mods_) mods.emplace_back(key, mod);
  }
  for (const auto& [key, mod] : mods) {
    common::WriterMutexLock wlock(&mod->mu);
    ModMeta meta;
    meta.name = key;
    meta.store_file = CkptStoreFileName(m.checkpoint_id, key);
    std::string payload;
    traj::EncodeStore(mod->store, &payload);
    HERMES_RETURN_NOT_OK(
        WriteBlobFile(env_, JoinPath(dir, meta.store_file), kStoreMagic,
                      payload));
    if (mod->tree != nullptr) {
      // Persist the tree's own catalog so recovery reopens it instead
      // of rebuilding; replayed tail inserts land via the normal QUT
      // catch-up path (tree_next marks how far the saved tree got).
      HERMES_RETURN_NOT_OK(mod->tree->Save());
      meta.has_tree = true;
      meta.tree_dir = mod->tree_dir;
      meta.tree_params = mod->tree_params;
      meta.tree_next = mod->tree_next;
    }
    meta.tree_seq = mod->tree_seq;
    m.mods.push_back(std::move(meta));
  }

  // Rotate the WAL before publishing: the manifest names the fresh
  // segment as its replay floor, and every post-checkpoint record lands
  // there. If anything below fails, the OLD manifest stays in force —
  // and because replay walks all segments >= its (old) floor in id
  // order, records already written to the fresh segment are still
  // recovered.
  const uint64_t fresh_segment = wal_->segment_id() + 1;
  m.wal_start_segment = fresh_segment;
  m.next_lsn = wal_->next_lsn();
  HERMES_ASSIGN_OR_RETURN(
      wal_, wal::Writer::Open(env_, dir, fresh_segment, m.next_lsn));

  HERMES_RETURN_NOT_OK(WriteBlobFile(env_, JoinPath(dir, kManifestTmpName),
                                     kManifestMagic, EncodeManifest(m)));
  HERMES_RETURN_NOT_OK(env_->RenameFile(JoinPath(dir, kManifestTmpName),
                                        JoinPath(dir, kManifestName)));
  checkpoint_id_ = m.checkpoint_id;
  wal_start_segment_ = fresh_segment;
  checkpoints_taken_.fetch_add(1, std::memory_order_relaxed);

  // Best-effort cleanup of what the new manifest no longer references:
  // covered WAL segments and store files of older checkpoints. Failures
  // here only leak disk space; the next checkpoint retries.
  auto segments = wal::ListSegments(env_, dir);
  if (segments.ok()) {
    for (uint64_t seg : segments.value()) {
      if (seg < fresh_segment) {
        (void)env_->DeleteFile(JoinPath(dir, wal::SegmentFileName(seg)));
      }
    }
  }
  auto names = env_->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : names.value()) {
      uint64_t ckpt_id = 0;
      if (ParseCkptFileName(name, &ckpt_id) &&
          ckpt_id != m.checkpoint_id) {
        (void)env_->DeleteFile(JoinPath(dir, name));
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

Status Server::ReplayRecord(const wal::Record& rec) {
  Decoder dec(rec.payload);
  HERMES_ASSIGN_OR_RETURN(std::string key, DecodeModName(&dec));
  switch (rec.type) {
    case wal::RecordType::kCreateMod: {
      common::MutexLock lock(&catalog_mu_);
      if (mods_.count(key) > 0) return Status::OK();
      auto mod = std::make_shared<SharedMod>();
      {
        common::WriterMutexLock wlock(&mod->mu);
        Republish(mod.get());
      }
      mods_.emplace(key, std::move(mod));
      return Status::OK();
    }
    case wal::RecordType::kDropMod: {
      common::MutexLock lock(&catalog_mu_);
      mods_.erase(key);
      return Status::OK();
    }
    case wal::RecordType::kInsertBatch: {
      HERMES_ASSIGN_OR_RETURN(std::vector<traj::Trajectory> batch,
                              traj::DecodeTrajectories(&dec));
      auto mod = FindMod(key);
      if (mod == nullptr) {
        // The MOD was dropped by a later record in the log's own
        // past... which cannot precede this record; treat as the live
        // path treats a vanished MOD: an ingest error, not corruption.
        ingest_errors_.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      }
      common::WriterMutexLock wlock(&mod->mu);
      for (traj::Trajectory& t : batch) {
        auto r = mod->store.Add(std::move(t));
        if (!r.ok()) {
          // Mirror the live apply loop: first failure ends the batch
          // (already-added trajectories stay), so replay reproduces the
          // partially-applied state bit for bit.
          ingest_errors_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
      return Status::OK();
    }
    case wal::RecordType::kSwapStore: {
      HERMES_ASSIGN_OR_RETURN(traj::TrajectoryStore store,
                              traj::DecodeStore(&dec));
      auto mod = std::make_shared<SharedMod>();
      {
        common::WriterMutexLock wlock(&mod->mu);
        mod->store = std::move(store);
        Republish(mod.get());
      }
      common::MutexLock lock(&catalog_mu_);
      mods_[key] = std::move(mod);
      return Status::OK();
    }
  }
  return Status::Corruption("unknown WAL record type " +
                            std::to_string(static_cast<int>(rec.type)));
}

Status Server::RecoverOrInit() {
  const std::string& dir = options_.wal_dir;
  HERMES_RETURN_NOT_OK(env_->CreateDirs(dir));
  common::MutexLock wal_lock(&wal_mu_);

  uint64_t start_segment = 1;
  uint64_t next_lsn = 1;
  uint64_t manifest_gen = 0;
  if (env_->FileExists(JoinPath(dir, kManifestName))) {
    HERMES_ASSIGN_OR_RETURN(
        std::string payload,
        ReadBlobFile(env_, JoinPath(dir, kManifestName), kManifestMagic));
    HERMES_ASSIGN_OR_RETURN(Manifest m, DecodeManifest(payload));
    checkpoint_id_ = m.checkpoint_id;
    start_segment = m.wal_start_segment;
    next_lsn = m.next_lsn;
    manifest_gen = m.gen;
    for (const ModMeta& meta : m.mods) {
      HERMES_ASSIGN_OR_RETURN(
          std::string blob,
          ReadBlobFile(env_, JoinPath(dir, meta.store_file), kStoreMagic));
      Decoder dec(blob);
      HERMES_ASSIGN_OR_RETURN(traj::TrajectoryStore store,
                              traj::DecodeStore(&dec));
      auto mod = std::make_shared<SharedMod>();
      {
        common::WriterMutexLock wlock(&mod->mu);
        mod->store = std::move(store);
        if (meta.has_tree) {
          const core::ReTraTreeParams params =
              sql::MakeQutTreeParams(meta.tree_params);
          auto tree = core::ReTraTree::Open(env_, meta.tree_dir, params,
                                            exec_.get());
          if (tree.ok()) {
            mod->tree = std::move(tree).value();
            mod->tree->SetHotIndexBudget(static_cast<size_t>(
                options_.session_defaults.hot_index_budget));
            mod->tree_params = meta.tree_params;
            mod->tree_dir = meta.tree_dir;
            mod->tree_next =
                static_cast<traj::TrajectoryId>(meta.tree_next);
          }
          // A tree that fails to open is not data loss — the store is
          // authoritative; the next QUT simply rebuilds.
        }
        mod->tree_seq = meta.tree_seq;
        Republish(mod.get());
      }
      common::MutexLock lock(&catalog_mu_);
      mods_[meta.name] = std::move(mod);
    }
  }
  gen_ = manifest_gen + 1;

  // Replay the WAL tail in segment (and hence LSN) order. Only the LAST
  // segment can end torn — writers never append to a segment once a
  // later one exists — but a scan stops at the first bad record either
  // way, so replaying each segment's valid prefix is exactly replaying
  // the durable prefix.
  HERMES_ASSIGN_OR_RETURN(std::vector<uint64_t> segments,
                          wal::ListSegments(env_, dir));
  for (uint64_t seg : segments) {
    if (seg < start_segment) continue;  // Covered; deletion raced a crash.
    HERMES_ASSIGN_OR_RETURN(wal::SegmentScan scan,
                            wal::ReadSegment(env_, dir, seg));
    wal_torn_bytes_dropped_.fetch_add(scan.tail_bytes_dropped,
                                      std::memory_order_relaxed);
    for (const wal::Record& rec : scan.records) {
      if (rec.lsn < next_lsn) continue;  // Below the checkpoint's floor.
      HERMES_RETURN_NOT_OK(ReplayRecord(rec));
      next_lsn = rec.lsn + 1;
      wal_records_replayed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Republish every MOD once after the full tail is applied (per-record
  // republishing would be wasted work with no reader yet alive).
  {
    common::MutexLock lock(&catalog_mu_);
    for (const auto& [key, mod] : mods_) {
      common::WriterMutexLock wlock(&mod->mu);
      Republish(mod.get());
    }
  }

  // Always rotate to a never-before-used segment id: recovery must not
  // append after a possibly-torn tail, and replay relies on "a segment
  // is never written again once a later one exists".
  const uint64_t fresh_segment = std::max(
      start_segment, segments.empty() ? start_segment : segments.back() + 1);
  HERMES_ASSIGN_OR_RETURN(
      wal_, wal::Writer::Open(env_, dir, fresh_segment, next_lsn));
  wal_start_segment_ = start_segment;
  return Status::OK();
}

}  // namespace hermes::service
