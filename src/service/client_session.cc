#include "service/client_session.h"

#include <utility>

#include "sql/query_functions.h"

namespace hermes::service {

namespace {

std::string At(size_t pos, const std::string& tok) {
  return sql::ErrorLocation(pos, tok);
}

std::unique_ptr<sql::RowCursor> Ack(std::string status) {
  return sql::MakeTableCursor(sql::AckTable(std::move(status)));
}

}  // namespace

ClientSession::ClientSession(Server* server) : server_(server) {
  // Per-session knobs seeded from the server's configured defaults; the
  // threads hook swaps only *this* session's context (shared trees run on
  // the server's context, so no catalog state is touched here).
  (void)sql::RegisterHermesSettings(
      &settings_, server_->options().session_defaults, [this](size_t n) {
        if (n != threads_) {
          threads_ = n;
          sql::SwapExecContext(n, &exec_, &session_stats_);
        }
        return Status::OK();
      });
  threads_ = static_cast<size_t>(
      server_->options().session_defaults.threads);
  if (threads_ > 1) exec_ = std::make_unique<exec::ExecContext>(threads_);
}

ClientSession::~ClientSession() { server_->OnSessionClosed(); }

StatusOr<sql::Table> ClientSession::Execute(const std::string& sql) {
  HERMES_ASSIGN_OR_RETURN(std::unique_ptr<sql::RowCursor> cursor,
                          ExecuteCursor(sql));
  return cursor->ToTable();
}

StatusOr<std::unique_ptr<sql::RowCursor>> ClientSession::ExecuteCursor(
    const std::string& sql) {
  HERMES_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  if (stmt.num_params > 0) {
    return Status::InvalidArgument(
        "statement has $N placeholders; use Prepare and Bind");
  }
  return ExecuteStatement(stmt, {});
}

StatusOr<sql::PreparedStatement> ClientSession::Prepare(
    const std::string& sql) {
  HERMES_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  // The runner pins this session; the server (and this session) must
  // outlive the handle, mirroring the cursor-lifetime contract.
  return sql::PreparedStatement(
      std::move(stmt),
      [this](const sql::Statement& s, const std::vector<sql::Value>& b) {
        return ExecuteStatement(s, b);
      });
}

StatusOr<sql::Table> ClientSession::ExecuteScript(const std::string& sql) {
  return sql::RunScript(sql, [this](const sql::Statement& stmt) {
    return ExecuteStatement(stmt, {});
  });
}

StatusOr<std::unique_ptr<sql::RowCursor>> ClientSession::ExecuteStatement(
    const sql::Statement& stmt, const std::vector<sql::Value>& binds) {
  using Kind = sql::Statement::Kind;
  switch (stmt.kind) {
    case Kind::kCreateMod: {
      HERMES_RETURN_NOT_OK(server_->CreateMod(stmt.mod));
      return Ack("CREATE MOD " + stmt.mod);
    }
    case Kind::kDropMod: {
      HERMES_RETURN_NOT_OK(server_->DropMod(stmt.mod));
      return Ack("DROP MOD " + stmt.mod);
    }
    case Kind::kLoadMod: {
      HERMES_ASSIGN_OR_RETURN(auto totals,
                              server_->LoadMod(stmt.mod, stmt.path));
      sql::Table table;
      table.columns = {{"status", sql::ValueType::kString},
                       {"trajectories", sql::ValueType::kInt},
                       {"points", sql::ValueType::kInt}};
      table.rows = {{sql::Value::Str("LOAD " + stmt.mod),
                     sql::Value::Int(static_cast<int64_t>(totals.first)),
                     sql::Value::Int(static_cast<int64_t>(totals.second))}};
      return sql::MakeTableCursor(std::move(table));
    }
    case Kind::kInsert: {
      HERMES_ASSIGN_OR_RETURN(std::vector<traj::Trajectory> batch,
                              sql::BuildInsertTrajectories(stmt, binds));
      const auto queued = static_cast<int64_t>(batch.size());
      HERMES_ASSIGN_OR_RETURN(uint64_t ticket,
                              server_->EnqueueInsert(stmt.mod,
                                                     std::move(batch)));
      // Asynchronous ack: the rows are queued, not yet query-visible;
      // FLUSH (or time) makes them so. The ticket orders against FLUSH.
      sql::Table table;
      table.columns = {{"status", sql::ValueType::kString},
                       {"trajectories_queued", sql::ValueType::kInt},
                       {"ticket", sql::ValueType::kInt}};
      table.rows = {{sql::Value::Str("QUEUE INSERT " + stmt.mod),
                     sql::Value::Int(queued),
                     sql::Value::Int(static_cast<int64_t>(ticket))}};
      return sql::MakeTableCursor(std::move(table));
    }
    case Kind::kSet: {
      HERMES_ASSIGN_OR_RETURN(sql::Value v,
                              sql::EvalScalar(stmt.set_value, binds));
      Status st = settings_.Set(stmt.setting, std::move(v));
      if (!st.ok()) {
        return Status(st.code(),
                      st.message() + At(stmt.setting_pos, stmt.setting));
      }
      HERMES_ASSIGN_OR_RETURN(sql::Value stored, settings_.Get(stmt.setting));
      return Ack("SET " + stmt.setting + " = " + stored.ToString());
    }
    case Kind::kShow:
      return ExecuteShow(stmt);
    case Kind::kFlush: {
      HERMES_RETURN_NOT_OK(server_->Flush());
      return Ack("FLUSH");
    }
    case Kind::kCheckpoint: {
      HERMES_RETURN_NOT_OK(server_->Checkpoint());
      return Ack("CHECKPOINT");
    }
    case Kind::kSelect:
      return ExecuteSelect(stmt, binds);
  }
  return Status::Internal("unreachable");
}

StatusOr<std::unique_ptr<sql::RowCursor>> ClientSession::ExecuteShow(
    const sql::Statement& stmt) {
  if (stmt.setting == "service.stats") {
    sql::Table table;
    table.columns = {{"counter", sql::ValueType::kString},
                     {"value", sql::ValueType::kInt}};
    AppendServiceStatsRows(server_->Stats(), "", &table);
    return sql::MakeTableCursor(std::move(table));
  }

  if (stmt.setting == "stats") {
    return sql::MakeTableCursor(
        sql::PhaseStatsTable(session_stats_, exec_.get()));
  }
  HERMES_ASSIGN_OR_RETURN(sql::Table table,
                          sql::SettingsShowTable(settings_, stmt));
  return sql::MakeTableCursor(std::move(table));
}

StatusOr<std::unique_ptr<sql::RowCursor>> ClientSession::ExecuteSelect(
    const sql::Statement& stmt, const std::vector<sql::Value>& binds) {
  // Shared `$N`-as-MOD-name resolution, identical to the embedded path.
  HERMES_ASSIGN_OR_RETURN(std::string mod,
                          sql::ResolveSelectModName(stmt, binds));
  auto at_fn = [&stmt] { return At(stmt.function_pos, stmt.function); };
  std::vector<double> args;
  args.reserve(stmt.args.size());
  for (const auto& arg : stmt.args) {
    HERMES_ASSIGN_OR_RETURN(double v, sql::EvalNumber(arg, binds));
    args.push_back(v);
  }

  if (stmt.function == "QUT") {
    if (args.size() != 7) {
      return Status::InvalidArgument(
          "QUT(D, Wi, We, tau, delta, t, d, gamma) takes 7 numbers" +
          at_fn());
    }
    const std::vector<double> tree_params(args.begin() + 2, args.end());
    return server_->QutQuery(mod, args[0], args[1], tree_params,
                             &session_stats_);
  }

  // Statement-level snapshot isolation: one published snapshot per
  // statement, owned by any cursor the statement returns.
  HERMES_ASSIGN_OR_RETURN(std::shared_ptr<const traj::TrajectoryStore> snap,
                          server_->SnapshotMod(mod));
  sql::QueryEnv env;
  env.store = std::move(snap);
  env.exec = exec_.get();
  env.session_stats = &session_stats_;
  env.default_sigma = settings_.Get("hermes.sigma")->AsDouble();
  env.default_epsilon = settings_.Get("hermes.epsilon")->AsDouble();
  env.use_index = settings_.Get("hermes.use_index")->AsInt() != 0;
  return sql::EvalSelectFunction(stmt.function, args, env, at_fn());
}

namespace {

/// ClientSession behind the backend-neutral statement API. Prepared
/// statements live in the base-class id map; everything else delegates.
class ClientSessionExecutor final : public sql::PreparedStatementMapExecutor {
 public:
  explicit ClientSessionExecutor(std::unique_ptr<ClientSession> session)
      : session_(std::move(session)) {}

  StatusOr<sql::Table> Execute(const std::string& sql) override {
    return session_->Execute(sql);
  }

  StatusOr<std::unique_ptr<sql::RowCursor>> ExecuteCursor(
      const std::string& sql) override {
    return session_->ExecuteCursor(sql);
  }

 protected:
  StatusOr<sql::PreparedStatement> PrepareStatement(
      const std::string& sql) override {
    return session_->Prepare(sql);
  }

 private:
  std::unique_ptr<ClientSession> session_;
};

}  // namespace

std::unique_ptr<sql::StatementExecutor> MakeStatementExecutor(
    std::unique_ptr<ClientSession> session) {
  return std::make_unique<ClientSessionExecutor>(std::move(session));
}

}  // namespace hermes::service
