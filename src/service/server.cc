#include "service/server.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "service/client_session.h"
#include "service/wal_payloads.h"
#include "sql/query_functions.h"

namespace hermes::service {

// ---------------------------------------------------------------------------
// Construction / shutdown
// ---------------------------------------------------------------------------

Server::Server(ServerOptions options, storage::Env* env)
    : options_(std::move(options)),
      queue_(options_.ingest_queue_capacity) {
  if (env == nullptr) {
    owned_env_ = storage::Env::NewMemEnv();
    env_ = owned_env_.get();
  } else {
    env_ = env;
  }
  exec_ = std::make_unique<exec::ExecContext>(
      std::max<size_t>(options_.threads, 1));
}

Status ValidateServerOptions(const ServerOptions& options) {
  if (options.threads > 1024) {
    return Status::InvalidArgument("ServerOptions.threads out of range");
  }
  // Session defaults bypass the Set-path validators (Settings::Register
  // only checks non-null), so enforce the same domains here — otherwise
  // every session would silently run with values SET would reject.
  const sql::HermesSettingDefaults& d = options.session_defaults;
  if (d.threads < 1 || d.threads > 1024) {
    return Status::InvalidArgument(
        "session_defaults.threads must be in [1, 1024]");
  }
  if (!(d.sigma > 0.0) || !(d.epsilon > 0.0)) {
    return Status::InvalidArgument(
        "session_defaults.sigma/epsilon must be > 0");
  }
  if (d.use_index != 0 && d.use_index != 1) {
    return Status::InvalidArgument("session_defaults.use_index must be 0/1");
  }
  if (d.hot_index_budget < 0) {
    return Status::InvalidArgument(
        "session_defaults.hot_index_budget must be >= 0 bytes");
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<Server>> Server::Start(ServerOptions options,
                                                storage::Env* env) {
  HERMES_RETURN_NOT_OK(ValidateServerOptions(options));
  auto server = std::unique_ptr<Server>(new Server(std::move(options), env));
  if (server->durable()) {
    // Recovery runs single-threaded, before the worker (or any session)
    // exists: checkpoint load + WAL tail replay, then a fresh segment.
    HERMES_RETURN_NOT_OK(server->RecoverOrInit());
  }
  server->worker_ = std::thread([s = server.get()] { s->WorkerLoop(); });
  return server;
}

Server::~Server() { Shutdown(); }

void Server::Shutdown() {
  common::MutexLock lock(&shutdown_mu_);
  if (!worker_.joinable()) return;  // Already shut down.
  queue_.Close();
  worker_.join();
}

std::unique_ptr<ClientSession> Server::Connect() {
  sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  sessions_active_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<ClientSession>(new ClientSession(this));
}

void Server::OnSessionClosed() {
  sessions_active_.fetch_sub(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

std::string Server::Canonical(const std::string& name) {
  return sql::CanonicalModName(name);
}

std::shared_ptr<Server::SharedMod> Server::FindMod(
    const std::string& canonical) const {
  common::MutexLock lock(&catalog_mu_);
  auto it = mods_.find(canonical);
  return it == mods_.end() ? nullptr : it->second;
}

void Server::Republish(SharedMod* mod) {
  auto pub = std::make_shared<SharedMod::Published>();
  pub->store = mod->store.Snapshot();
  // One pinned epoch per published snapshot: `epochs_pinned` counts it
  // (plus every reader-held snapshot) until the last holder lets go.
  pub->arena = pub->store.ArenaSnapshot();
  {
    common::MutexLock lock(&mod->published_mu);
    mod->published = std::move(pub);
  }
  snapshots_published_.fetch_add(1, std::memory_order_relaxed);
}

bool Server::TreeFresh(const SharedMod& m, const std::vector<double>& params) {
  return m.tree != nullptr && m.tree_params == params &&
         m.tree_next == m.store.NumTrajectories();
}

void Server::DropTree(SharedMod* mod) {
  mod->tree.reset();
  mod->tree_params.clear();
  mod->tree_dir.clear();
  mod->tree_next = 0;
}

Status Server::CreateMod(const std::string& name) {
  const std::string key = Canonical(name);
  // wal_mu_ spans the whole [check, log+sync, apply] window so the WAL
  // sees catalog mutations in exactly the order they take effect.
  common::MutexLock wal_lock(&wal_mu_);
  common::MutexLock lock(&catalog_mu_);
  if (mods_.count(key) > 0) {
    return Status::AlreadyExists("MOD " + key + " exists");
  }
  HERMES_RETURN_NOT_OK(WalLogAndSync(wal::RecordType::kCreateMod,
                                     NamePayload(key)));
  auto mod = std::make_shared<SharedMod>();
  {
    common::WriterMutexLock wlock(&mod->mu);
    Republish(mod.get());
  }
  mods_.emplace(key, std::move(mod));
  return Status::OK();
}

Status Server::DropMod(const std::string& name) {
  const std::string key = Canonical(name);
  // Remove from the catalog first, then drain: any batch still queued
  // for the MOD — enqueued before or racing the drop — fails the
  // worker's catalog lookup and surfaces as an ingest error instead of
  // being applied to (and silently lost with) the orphaned store.
  {
    common::MutexLock wal_lock(&wal_mu_);
    common::MutexLock lock(&catalog_mu_);
    if (mods_.count(key) == 0) {
      return Status::NotFound("no MOD named " + key);
    }
    HERMES_RETURN_NOT_OK(WalLogAndSync(wal::RecordType::kDropMod,
                                       NamePayload(key)));
    mods_.erase(key);
  }
  // Outside wal_mu_: the worker needs it to drain the queue.
  return Flush();
}

Status Server::RegisterStore(const std::string& name,
                             traj::TrajectoryStore store) {
  const std::string key = Canonical(name);
  // Encode before taking the lock; the caller still owns `store`.
  const std::string payload = durable() ? SwapPayload(key, store) : "";
  common::MutexLock wal_lock(&wal_mu_);
  HERMES_RETURN_NOT_OK(WalLogAndSync(wal::RecordType::kSwapStore, payload));
  auto mod = std::make_shared<SharedMod>();
  {
    common::WriterMutexLock wlock(&mod->mu);
    mod->store = std::move(store);
    Republish(mod.get());
  }
  common::MutexLock lock(&catalog_mu_);
  mods_[key] = std::move(mod);
  return Status::OK();
}

StatusOr<std::pair<size_t, size_t>> Server::LoadMod(const std::string& name,
                                                    const std::string& path) {
  const std::string key = Canonical(name);
  // Parse the CSV into a scratch store up front: nothing is logged or
  // visible until the whole file parsed, so a bad row can no longer
  // leave a phantom (or half-loaded) MOD behind — and the parsed batch
  // is what the WAL records, making replay independent of the CSV file
  // still existing at its old path.
  traj::TrajectoryStore parsed;
  HERMES_RETURN_NOT_OK(parsed.LoadCsv(path));

  common::MutexLock wal_lock(&wal_mu_);
  std::shared_ptr<SharedMod> mod;
  bool created = false;
  {
    common::MutexLock lock(&catalog_mu_);
    auto it = mods_.find(key);
    if (it == mods_.end()) {
      // Publish the (empty) snapshot before the MOD becomes visible in
      // the catalog: a concurrent SELECT racing the load must find a
      // valid — if still empty — snapshot, never a null one.
      auto fresh = std::make_shared<SharedMod>();
      {
        common::WriterMutexLock wlock(&fresh->mu);
        Republish(fresh.get());
      }
      it = mods_.emplace(key, std::move(fresh)).first;
      created = true;
    }
    mod = it->second;
  }
  Status logged = Status::OK();
  if (created) {
    logged = WalAppend(wal::RecordType::kCreateMod, NamePayload(key));
  }
  if (logged.ok() && parsed.NumTrajectories() > 0) {
    logged = WalAppend(wal::RecordType::kInsertBatch,
                       InsertPayloadFromStore(key, parsed));
  }
  if (logged.ok()) logged = WalSync();
  if (!logged.ok()) {
    if (created) {
      // An unlogged create must not survive in memory either.
      common::MutexLock lock(&catalog_mu_);
      auto it = mods_.find(key);
      if (it != mods_.end() && it->second == mod) mods_.erase(it);
    }
    return logged;
  }
  common::WriterMutexLock wlock(&mod->mu);
  for (traj::TrajectoryId id = 0; id < parsed.NumTrajectories(); ++id) {
    // Cannot fail: every trajectory already passed `Add` into `parsed`.
    HERMES_RETURN_NOT_OK(mod->store.Add(parsed.Get(id)).status());
  }
  // The shared tree no longer matches the store; the next QUT rebuilds.
  DropTree(mod.get());
  Republish(mod.get());
  return std::make_pair(mod->store.NumTrajectories(), mod->store.NumPoints());
}

StatusOr<std::shared_ptr<const traj::TrajectoryStore>> Server::SnapshotMod(
    const std::string& name) const {
  auto mod = FindMod(Canonical(name));
  if (mod == nullptr) {
    return Status::NotFound("no MOD named " + Canonical(name));
  }
  common::MutexLock lock(&mod->published_mu);
  if (mod->published == nullptr) {
    // Every creation path republishes before catalog insertion; this
    // guards the invariant instead of dereferencing null.
    return Status::Internal("MOD " + Canonical(name) +
                            " has no published snapshot");
  }
  // Aliased: the handle keeps the whole published snapshot — store plus
  // pinned arena epoch — alive for as long as any cursor holds it.
  return std::shared_ptr<const traj::TrajectoryStore>(mod->published,
                                                      &mod->published->store);
}

// ---------------------------------------------------------------------------
// Ingest
// ---------------------------------------------------------------------------

StatusOr<uint64_t> Server::EnqueueInsert(const std::string& name,
                                         std::vector<traj::Trajectory> batch) {
  const std::string key = Canonical(name);
  if (wal_failed_.load(std::memory_order_relaxed)) {
    return Status::IOError(
        "WAL write failed; server is read-only (restart to recover the "
        "durable prefix)");
  }
  if (FindMod(key) == nullptr) {
    return Status::NotFound("no MOD named " + key);
  }
  // The ack means "queued for ingest", so preconditions the worker would
  // hit asynchronously must fail *here*: the ReTraTree rejects pieces
  // from <2-sample trajectories, and a poisoned queue entry would only
  // ever surface as a service-wide ingest_errors count.
  for (const traj::Trajectory& t : batch) {
    if (t.size() < 2) {
      return Status::InvalidArgument(
          "trajectory for object " + std::to_string(t.object_id()) +
          " needs >= 2 samples");
    }
  }
  IngestBatch b;
  b.mod = key;
  b.trajectories = std::move(batch);
  HERMES_ASSIGN_OR_RETURN(uint64_t seq, queue_.Push(std::move(b)));
  batches_enqueued_.fetch_add(1, std::memory_order_relaxed);
  return seq;
}

Status Server::Flush() {
  // Every ticket in `target` was a successful Push, and the worker
  // applies (or error-counts) all of them before exiting — even during
  // shutdown — so the wait always terminates.
  const uint64_t target = queue_.last_enqueued_seq();
  common::MutexLock lock(&flush_mu_);
  while (applied_seq_ < target) lock.Wait(flush_cv_);
  flushes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void Server::WorkerLoop() {
  std::vector<IngestBatch> batches;
  while (queue_.PopAll(&batches)) {
    uint64_t max_seq = 0;
    for (const IngestBatch& b : batches) max_seq = std::max(max_seq, b.seq);

    // Group commit: the whole drain is one durability unit — one WAL
    // record per batch, then a single fsync, all before anything is
    // applied. wal_mu_ stays held across the applies too, so a
    // concurrent DDL commit cannot interleave between our append and
    // our apply (WAL order == apply order). A FLUSH ticket therefore
    // completes only after its batch is on disk.
    common::MutexLock wal_lock(&wal_mu_);
    Status group = Status::OK();
    if (durable()) {
      for (const IngestBatch& b : batches) {
        group = WalAppend(wal::RecordType::kInsertBatch,
                          InsertPayload(b.mod, b.trajectories));
        if (!group.ok()) break;
      }
      if (group.ok()) group = WalSync();
    }
    if (!group.ok()) {
      // Not durable ⇒ not applied: the live state keeps matching the
      // durable prefix, the batches surface as ingest errors, and the
      // flush ticket still resolves (Flush must not hang on an error).
      ingest_errors_.fetch_add(batches.size(), std::memory_order_relaxed);
      {
        common::MutexLock lock(&flush_mu_);
        applied_seq_ = std::max(applied_seq_, max_seq);
      }
      flush_cv_.notify_all();
      continue;
    }

    // Dedup in arrival order so republication happens once per MOD per
    // drain, after all of its batches applied.
    std::vector<std::shared_ptr<SharedMod>> touched;
    for (IngestBatch& b : batches) {
      auto mod = FindMod(b.mod);
      if (mod == nullptr) {
        // Dropped (or never created) while queued.
        ingest_errors_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      common::WriterMutexLock wlock(&mod->mu);
      size_t added = 0;
      Status st = Status::OK();
      for (traj::Trajectory& t : b.trajectories) {
        auto r = mod->store.Add(std::move(t));
        if (!r.ok()) {
          st = r.status();
          break;
        }
        ++added;
      }
      if (st.ok() && added > 0 && mod->tree != nullptr) {
        // Keep the shared tree caught up so QUT sees queued inserts
        // right after a FLUSH without a rebuild. Advance from the tree's
        // own cursor (not the batch start) so a query-path catch-up that
        // raced ahead is never double-applied.
        const auto size =
            static_cast<traj::TrajectoryId>(mod->store.NumTrajectories());
        if (mod->tree_next < size) {
          st = mod->tree->InsertBatch(mod->store, exec_.get(),
                                      mod->tree_next, size - mod->tree_next);
          if (st.ok()) {
            mod->tree_next = size;
            tree_catchups_.fetch_add(1, std::memory_order_relaxed);
          } else {
            // Partially mutated tree: drop it so the next QUT rebuilds
            // cleanly instead of double-applying the range.
            DropTree(mod.get());
          }
        }
      }
      if (!st.ok()) {
        ingest_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      trajectories_ingested_.fetch_add(added, std::memory_order_relaxed);
      batches_applied_.fetch_add(1, std::memory_order_relaxed);
      bool seen = false;
      for (const auto& m : touched) seen = seen || m == mod;
      if (!seen) touched.push_back(std::move(mod));
    }
    for (const auto& mod : touched) {
      common::WriterMutexLock wlock(&mod->mu);
      Republish(mod.get());
    }
    {
      common::MutexLock lock(&flush_mu_);
      applied_seq_ = std::max(applied_seq_, max_seq);
    }
    flush_cv_.notify_all();
  }
  // Drained and closed: release any flusher that raced shutdown.
  {
    common::MutexLock lock(&flush_mu_);
    applied_seq_ = std::max(applied_seq_, queue_.last_enqueued_seq());
  }
  flush_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// QUT over the shared tree
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<sql::RowCursor>> Server::QutQuery(
    const std::string& name, double wi, double we,
    const std::vector<double>& tree_params, exec::ExecStats* session_stats) {
  if (tree_params.size() != 5) {
    return Status::InvalidArgument(
        "QUT tree params must be (tau, delta, t, d, gamma), got " +
        std::to_string(tree_params.size()) + " value(s)");
  }
  auto mod = FindMod(Canonical(name));
  if (mod == nullptr) {
    return Status::NotFound("no MOD named " + Canonical(name));
  }
  {
    // Fast path: fresh tree, query under the shared lock — concurrent
    // QUT readers proceed in parallel (HeapFile/Gist are internally
    // locked), while the ingest worker waits its turn.
    common::ReaderMutexLock rlock(&mod->mu);
    if (TreeFresh(*mod, tree_params)) {
      return sql::QutQuery(mod->tree.get(), wi, we, session_stats);
    }
  }
  common::WriterMutexLock wlock(&mod->mu);
  if (!TreeFresh(*mod, tree_params)) {
    // A failed build or catch-up leaves a partially mutated tree behind;
    // dropping it (`DropTree`) forces the next query into a clean rebuild
    // instead of retrying a range into poisoned state.
    if (mod->tree == nullptr || mod->tree_params != tree_params) {
      const core::ReTraTreeParams params =
          sql::MakeQutTreeParams(tree_params);
      // The recovery generation in the name keeps fresh trees from
      // colliding with directories a crashed previous generation leaked.
      const std::string dir = options_.data_dir + "/" + Canonical(name) +
                              "_g" + std::to_string(gen_) + "_tree_" +
                              std::to_string(mod->tree_seq++);
      DropTree(mod.get());
      HERMES_ASSIGN_OR_RETURN(
          mod->tree, core::ReTraTree::Open(env_, dir, params, exec_.get()));
      mod->tree_dir = dir;
      // Shared trees are server-scoped resources, so the server's
      // configured default governs their hot-tier budget (per-session
      // `SET hermes.hot_index_budget` only affects embedded sessions).
      mod->tree->SetHotIndexBudget(
          static_cast<size_t>(options_.session_defaults.hot_index_budget));
      Status st = mod->tree->InsertBatch(mod->store, exec_.get(), 0,
                                         mod->store.NumTrajectories());
      if (!st.ok()) {
        DropTree(mod.get());
        return st;
      }
      mod->tree_params = tree_params;
      mod->tree_next =
          static_cast<traj::TrajectoryId>(mod->store.NumTrajectories());
    } else {
      // Same params, new trajectories: incremental catch-up.
      const auto n =
          static_cast<traj::TrajectoryId>(mod->store.NumTrajectories());
      Status st = mod->tree->InsertBatch(mod->store, exec_.get(),
                                         mod->tree_next, n - mod->tree_next);
      if (!st.ok()) {
        DropTree(mod.get());
        return st;
      }
      mod->tree_next = n;
      tree_catchups_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return sql::QutQuery(mod->tree.get(), wi, we, session_stats);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

ServiceStats Server::Stats() const {
  ServiceStats s;
  s.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  s.sessions_active = sessions_active_.load(std::memory_order_relaxed);
  s.ingest_queue_depth = queue_.depth();
  s.batches_enqueued = batches_enqueued_.load(std::memory_order_relaxed);
  s.batches_applied = batches_applied_.load(std::memory_order_relaxed);
  s.trajectories_ingested =
      trajectories_ingested_.load(std::memory_order_relaxed);
  s.ingest_errors = ingest_errors_.load(std::memory_order_relaxed);
  s.flushes = flushes_.load(std::memory_order_relaxed);
  s.snapshots_published = snapshots_published_.load(std::memory_order_relaxed);
  s.tree_catchups = tree_catchups_.load(std::memory_order_relaxed);
  std::vector<std::shared_ptr<SharedMod>> mods;
  {
    common::MutexLock lock(&catalog_mu_);
    s.mods = mods_.size();
    for (const auto& [name, mod] : mods_) mods.push_back(mod);
  }
  for (const auto& mod : mods) {
    // The builder's counters are internally locked; safe against the
    // worker's concurrent appends.
    const traj::SegmentArenaCounters c = mod->store.arena_counters();
    s.epochs_pinned += c.epochs_pinned;
    s.epoch_pins += c.epoch_pins;
    // The tree pointer itself mutates under the MOD's writer lock
    // (rebuilds, catch-up failures), so read it shared; the hot-tier
    // counters behind it are atomics.
    common::ReaderMutexLock rlock(&mod->mu);
    if (mod->tree != nullptr) {
      const core::HotTierStats h = mod->tree->hot_stats();
      s.qut_hot_probes += h.qut_hot_probes;
      s.qut_cold_probes += h.qut_cold_probes;
      s.hot_promotions += h.hot_promotions;
      s.hot_demotions += h.hot_demotions;
      s.hot_index_bytes += h.hot_index_bytes;
      s.hot_partitions += h.hot_partitions;
      s.hot_pins_total += h.hot_pins_total;
    }
  }
  s.ingest_split_us = exec_->stats().PhaseUs("ingest_split");
  s.ingest_apply_us = exec_->stats().PhaseUs("ingest_apply");
  s.wal_records_appended =
      wal_records_appended_.load(std::memory_order_relaxed);
  s.wal_bytes_appended = wal_bytes_appended_.load(std::memory_order_relaxed);
  s.wal_syncs = wal_syncs_.load(std::memory_order_relaxed);
  s.wal_errors = wal_errors_.load(std::memory_order_relaxed);
  s.checkpoints_taken = checkpoints_taken_.load(std::memory_order_relaxed);
  s.wal_records_replayed =
      wal_records_replayed_.load(std::memory_order_relaxed);
  s.wal_torn_bytes_dropped =
      wal_torn_bytes_dropped_.load(std::memory_order_relaxed);
  return s;
}

void AccumulateServiceStats(const ServiceStats& s, ServiceStats* total) {
  total->sessions_opened += s.sessions_opened;
  total->sessions_active += s.sessions_active;
  // All shards broadcast DDL, so every shard reports the same catalog;
  // the aggregate keeps the max rather than multiplying MODs by shards.
  total->mods = std::max(total->mods, s.mods);
  total->ingest_queue_depth += s.ingest_queue_depth;
  total->batches_enqueued += s.batches_enqueued;
  total->batches_applied += s.batches_applied;
  total->trajectories_ingested += s.trajectories_ingested;
  total->ingest_errors += s.ingest_errors;
  total->flushes += s.flushes;
  total->snapshots_published += s.snapshots_published;
  total->tree_catchups += s.tree_catchups;
  total->epochs_pinned += s.epochs_pinned;
  total->epoch_pins += s.epoch_pins;
  total->ingest_split_us += s.ingest_split_us;
  total->ingest_apply_us += s.ingest_apply_us;
  total->qut_hot_probes += s.qut_hot_probes;
  total->qut_cold_probes += s.qut_cold_probes;
  total->hot_promotions += s.hot_promotions;
  total->hot_demotions += s.hot_demotions;
  total->hot_index_bytes += s.hot_index_bytes;
  total->hot_partitions += s.hot_partitions;
  total->hot_pins_total += s.hot_pins_total;
  total->wal_records_appended += s.wal_records_appended;
  total->wal_bytes_appended += s.wal_bytes_appended;
  total->wal_syncs += s.wal_syncs;
  total->wal_errors += s.wal_errors;
  total->checkpoints_taken += s.checkpoints_taken;
  total->wal_records_replayed += s.wal_records_replayed;
  total->wal_torn_bytes_dropped += s.wal_torn_bytes_dropped;
}

void AppendServiceStatsRows(const ServiceStats& s, const std::string& prefix,
                            sql::Table* table) {
  auto row = [table, &prefix](const char* name, uint64_t v) {
    table->rows.push_back({sql::Value::Str(prefix + name),
                           sql::Value::Int(static_cast<int64_t>(v))});
  };
  row("sessions_opened", s.sessions_opened);
  row("sessions_active", s.sessions_active);
  row("mods", s.mods);
  row("ingest_queue_depth", s.ingest_queue_depth);
  row("batches_enqueued", s.batches_enqueued);
  row("batches_applied", s.batches_applied);
  row("trajectories_ingested", s.trajectories_ingested);
  row("ingest_errors", s.ingest_errors);
  row("flushes", s.flushes);
  row("snapshots_published", s.snapshots_published);
  row("tree_catchups", s.tree_catchups);
  row("arena_epochs_pinned", s.epochs_pinned);
  row("arena_epoch_pins", s.epoch_pins);
  row("ingest_split_us", static_cast<uint64_t>(s.ingest_split_us));
  row("ingest_apply_us", static_cast<uint64_t>(s.ingest_apply_us));
  row("qut_hot_probes", s.qut_hot_probes);
  row("qut_cold_probes", s.qut_cold_probes);
  row("hot_promotions", s.hot_promotions);
  row("hot_demotions", s.hot_demotions);
  row("hot_index_bytes", s.hot_index_bytes);
  row("hot_partitions", s.hot_partitions);
  row("hot_pins_total", s.hot_pins_total);
  row("wal_records_appended", s.wal_records_appended);
  row("wal_bytes_appended", s.wal_bytes_appended);
  row("wal_syncs", s.wal_syncs);
  row("wal_errors", s.wal_errors);
  row("checkpoints_taken", s.checkpoints_taken);
  row("wal_records_replayed", s.wal_records_replayed);
  row("wal_torn_bytes_dropped", s.wal_torn_bytes_dropped);
}

}  // namespace hermes::service
