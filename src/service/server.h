#ifndef HERMES_SERVICE_SERVER_H_
#define HERMES_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "core/retratree.h"
#include "exec/exec_context.h"
#include "service/ingest_queue.h"
#include "sql/cursor.h"
#include "sql/settings.h"
#include "storage/env.h"
#include "traj/trajectory_store.h"
#include "wal/wal.h"

namespace hermes::service {

class ClientSession;

/// \brief Server configuration.
struct ServerOptions {
  /// Worker threads of the server's own `ExecContext` — used by the
  /// ingest worker's `InsertBatch` drains and shared-tree builds. Client
  /// sessions parallelize their *own* statements via their per-session
  /// `hermes.threads`.
  size_t threads = 1;
  /// Directory under the server env for ReTraTree partitions.
  std::string data_dir = "hermes_service";
  /// Pending-batch bound of the ingest queue before `Push` blocks.
  size_t ingest_queue_capacity = 1024;
  /// Initial `hermes.*` settings of every new client session.
  sql::HermesSettingDefaults session_defaults;
  /// Directory (under the server env) for the ingest WAL and
  /// checkpoints. Empty disables durability: no logging, no recovery,
  /// `CHECKPOINT` is rejected — exactly the pre-WAL server. Non-empty
  /// makes `Start` recover (checkpoint + WAL-tail replay) before the
  /// ingest worker spawns, and every catalog mutation write-ahead-logged
  /// with group commit (one fsync per worker drain).
  std::string wal_dir;
};

/// \brief Monotonic service counters, surfaced as `SHOW SERVICE STATS`.
struct ServiceStats {
  uint64_t sessions_opened = 0;
  uint64_t sessions_active = 0;
  uint64_t mods = 0;
  uint64_t ingest_queue_depth = 0;
  uint64_t batches_enqueued = 0;
  uint64_t batches_applied = 0;
  uint64_t trajectories_ingested = 0;
  uint64_t ingest_errors = 0;
  uint64_t flushes = 0;
  uint64_t snapshots_published = 0;
  uint64_t tree_catchups = 0;
  /// Arena epoch pins summed over all MODs: `epochs_pinned` counts
  /// snapshots readers currently hold (the server's published snapshot
  /// itself keeps one per MOD), `epoch_pins` the total ever handed out.
  uint64_t epochs_pinned = 0;
  uint64_t epoch_pins = 0;
  /// Cumulative batch-ingest phase split recorded on the server context
  /// (µs): the worker's drains plus query-path shared-tree builds and
  /// catch-ups, which run the same `InsertBatch` pipeline.
  int64_t ingest_split_us = 0;
  int64_t ingest_apply_us = 0;
  /// Hot in-memory index tier, summed over every shared tree (see
  /// `core::HotTierStats`): QUT probes served from hot snapshots vs the
  /// on-disk heap+Gist cold path, promote/demote churn, resident bytes.
  uint64_t qut_hot_probes = 0;
  uint64_t qut_cold_probes = 0;
  uint64_t hot_promotions = 0;
  uint64_t hot_demotions = 0;
  uint64_t hot_index_bytes = 0;
  uint64_t hot_partitions = 0;
  uint64_t hot_pins_total = 0;
  /// Durability counters (all zero on a non-WAL server). `wal_errors`
  /// counting up means the server went read-only: a WAL append or fsync
  /// failed, so mutations are rejected rather than applied undurably.
  uint64_t wal_records_appended = 0;
  uint64_t wal_bytes_appended = 0;
  uint64_t wal_syncs = 0;
  uint64_t wal_errors = 0;
  uint64_t checkpoints_taken = 0;
  /// Recovery: records replayed from the WAL tail at `Start`, and bytes
  /// dropped as a torn (CRC-failing) tail — never-acked residue of a
  /// crash mid-write.
  uint64_t wal_records_replayed = 0;
  uint64_t wal_torn_bytes_dropped = 0;
};

/// Validates an options struct the way `Server::Start` will (threads
/// range, session-default domains). Shared with `ServiceConfig::Validate`
/// so a sharded deployment rejects a bad configuration before any shard
/// spawns.
Status ValidateServerOptions(const ServerOptions& options);

/// Folds `s` into `*total` field-by-field — the shard coordinator's
/// `SHOW SERVICE STATS` aggregation (gauges like `ingest_queue_depth`
/// sum too: the total is "pending anywhere").
void AccumulateServiceStats(const ServiceStats& s, ServiceStats* total);

/// Appends the `SHOW SERVICE STATS` counter rows to a (counter, value)
/// table, each name prefixed with `prefix` ("" for the flat unsharded
/// listing, "shard0." etc. for per-shard breakdown rows).
void AppendServiceStatsRows(const ServiceStats& s, const std::string& prefix,
                            sql::Table* table);

/// \brief The multi-session service: a shared catalog of MODs, a
/// background ingest worker, and a factory for `ClientSession`s.
///
/// Ownership / threading (see docs/ARCHITECTURE.md "Service layer"):
///
///  - The server owns the env, the catalog, one `ExecContext`, the
///    `IngestQueue`, and the worker thread. It must outlive every
///    `ClientSession` it connects.
///  - Each MOD holds the writable store (touched only by the ingest
///    worker and DDL, under the MOD's writer lock), the shared ReTraTree
///    (readers take the lock shared for QUT; the worker takes it
///    exclusive to append), and an immutable *published snapshot* swapped
///    in after every drain. Query sessions read published snapshots only
///    and therefore never block on — or race with — ingest.
///  - `INSERT` statements from sessions enqueue; the worker drains them
///    through `ReTraTree::InsertBatch` on the server context, then
///    republishes. `FLUSH` blocks until every batch enqueued before it is
///    applied and visible.
class Server {
 public:
  /// Starts the service (spawns the ingest worker). `env` defaults to a
  /// private in-memory environment; pass a Posix env to persist
  /// partitions under `options.data_dir`.
  static StatusOr<std::unique_ptr<Server>> Start(ServerOptions options,
                                                 storage::Env* env = nullptr);

  ~Server();

  /// Closes the queue, drains what is pending, and joins the worker.
  /// Idempotent. Sessions stay usable for queries; later `INSERT`s fail
  /// with `Unavailable` ("ingest queue closed").
  void Shutdown();

  /// Opens an independent client session (its own settings + exec
  /// context + cursors). The server must outlive it.
  std::unique_ptr<ClientSession> Connect();

  // ---- Catalog DDL (serialized internally; sessions call these) ----
  Status CreateMod(const std::string& name);
  /// Removes the MOD from the catalog, then drains the queue: batches
  /// still queued for it count as ingest errors (a dropped table
  /// discards pending writes). Published snapshots already handed to
  /// readers stay valid (shared ownership).
  Status DropMod(const std::string& name);
  /// Loads CSV into the MOD (created if absent); returns
  /// (trajectories, points) totals after the load.
  StatusOr<std::pair<size_t, size_t>> LoadMod(const std::string& name,
                                              const std::string& path);
  /// Registers a pre-built store, replacing any existing MOD of that
  /// name (mirroring `sql::Session::RegisterStore`; use `CreateMod` for
  /// the AlreadyExists-checked DDL path).
  Status RegisterStore(const std::string& name, traj::TrajectoryStore store);

  /// The MOD's current published snapshot: immutable, shared, keeps its
  /// arena epoch pinned while any caller (or cursor) holds it.
  StatusOr<std::shared_ptr<const traj::TrajectoryStore>> SnapshotMod(
      const std::string& name) const;

  /// Queues trajectories for asynchronous ingest; returns the flush
  /// ticket. The data becomes query-visible when the worker republishes.
  StatusOr<uint64_t> EnqueueInsert(const std::string& name,
                                   std::vector<traj::Trajectory> batch);

  /// Blocks until everything enqueued before the call is applied and
  /// republished.
  Status Flush();

  /// Persists the full catalog (stores + tree catalogs) as a checkpoint,
  /// atomically publishes its manifest, rotates the WAL, and deletes the
  /// WAL prefix the checkpoint covers. Recovery then replays only the
  /// post-checkpoint tail. `NotSupported` on a non-WAL server; an IO
  /// failure leaves the previous manifest in force (recovery is from the
  /// old checkpoint + a longer tail — never from a half-written one).
  Status Checkpoint();

  /// QUT over the MOD's *shared* tree. The tree is built (or caught up
  /// with trajectories ingested since) under the MOD's exclusive lock
  /// when stale; fresh-tree queries run under a shared lock, so
  /// concurrent QUT readers proceed in parallel (the storage read path
  /// is internally locked). `tree_params` is (tau, delta, t, d, gamma).
  StatusOr<std::unique_ptr<sql::RowCursor>> QutQuery(
      const std::string& name, double wi, double we,
      const std::vector<double>& tree_params, exec::ExecStats* session_stats);

  /// Point-in-time service counters.
  ServiceStats Stats() const;

  const ServerOptions& options() const { return options_; }
  exec::ExecContext* exec() { return exec_.get(); }

 private:
  friend class ClientSession;

  struct SharedMod {
    /// Writer lock: ingest drains and DDL exclusive; QUT queries shared.
    /// Snapshot readers never take it.
    common::SharedMutex mu;
    traj::TrajectoryStore store GUARDED_BY(mu);
    std::unique_ptr<core::ReTraTree> tree GUARDED_BY(mu);
    std::vector<double> tree_params GUARDED_BY(mu);
    /// Env directory backing `tree` (checkpoint manifests record it so
    /// recovery can reopen the tree instead of rebuilding).
    std::string tree_dir GUARDED_BY(mu);
    /// First store id not yet inserted into the tree (catch-up cursor).
    traj::TrajectoryId tree_next GUARDED_BY(mu) = 0;
    uint64_t tree_seq GUARDED_BY(mu) = 0;

    /// One published snapshot: the store copy plus one pinned arena
    /// epoch, so `epochs_pinned` reflects it (and every cursor-held
    /// copy) until the last reader lets go.
    struct Published {
      traj::TrajectoryStore store;
      traj::SegmentArena arena;
    };
    /// Ordered strictly after `mu` (Republish swaps the snapshot while
    /// holding the writer lock); never held across a wait.
    mutable common::Mutex published_mu ACQUIRED_AFTER(mu);
    std::shared_ptr<const Published> published GUARDED_BY(published_mu);
  };

  Server(ServerOptions options, storage::Env* env);

  static std::string Canonical(const std::string& name);
  std::shared_ptr<SharedMod> FindMod(const std::string& canonical) const;
  /// Re-publishes the MOD's snapshot from its current store state.
  void Republish(SharedMod* mod) REQUIRES(mod->mu);
  /// True when the MOD's shared tree matches `params` and has consumed
  /// the whole store (no rebuild or catch-up needed before serving QUT).
  static bool TreeFresh(const SharedMod& m, const std::vector<double>& params)
      REQUIRES_SHARED(m.mu);
  /// Drops a partially mutated tree so the next query rebuilds cleanly.
  static void DropTree(SharedMod* mod) REQUIRES(mod->mu);
  void WorkerLoop();
  void OnSessionClosed();

  // ---- Durability (implemented in durability.cc) ----
  bool durable() const { return !options_.wal_dir.empty(); }
  /// Recovery at `Start` (before the worker spawns): load the manifest's
  /// checkpoint, replay the WAL tail in LSN order, open a fresh segment.
  Status RecoverOrInit();
  /// Appends one record; no-op OK on a non-WAL server. After any WAL
  /// failure the error is sticky (`wal_error_`) and re-returned.
  Status WalAppend(wal::RecordType type, const std::string& payload)
      REQUIRES(wal_mu_);
  /// Group-commit barrier: one fsync covering every append since the
  /// last. No-op OK on a non-WAL server.
  Status WalSync() REQUIRES(wal_mu_);
  /// Append + sync, for single-record DDL commits.
  Status WalLogAndSync(wal::RecordType type, const std::string& payload)
      REQUIRES(wal_mu_);
  /// Applies one replayed record to the catalog during recovery.
  Status ReplayRecord(const wal::Record& rec);

  ServerOptions options_;
  std::unique_ptr<storage::Env> owned_env_;
  storage::Env* env_;
  std::unique_ptr<exec::ExecContext> exec_;

  /// The durability lock. Held across each (WAL append…sync, apply)
  /// window — the worker holds it for a whole drain, DDL for its single
  /// commit — which makes WAL order identical to apply order: exactly
  /// what lets recovery rebuild a bit-identical catalog by replaying in
  /// LSN order. Taken on every mutation path even without a WAL (then
  /// uncontended and the log calls no-op), so the locking regime does
  /// not fork on configuration. Order: wal_mu_ → catalog_mu_ → mod->mu
  /// → mod->published_mu; never held across `Flush`.
  common::Mutex wal_mu_;
  std::unique_ptr<wal::Writer> wal_ GUARDED_BY(wal_mu_);
  /// Sticky first WAL failure: once an append or sync fails the durable
  /// prefix is frozen, so every later mutation is rejected with this.
  Status wal_error_ GUARDED_BY(wal_mu_);
  /// Lock-free mirror of `!wal_error_.ok()` for fast-fail checks.
  std::atomic<bool> wal_failed_{false};
  /// Recovery generation: manifest's + 1 each `Start`. Baked into shared
  /// tree directory names so a recovered catalog never collides with
  /// stale tree dirs a crashed generation leaked (those leak harmlessly
  /// until the next checkpoint cleanup). Written only before the worker
  /// spawns.
  uint64_t gen_ = 0;
  uint64_t checkpoint_id_ GUARDED_BY(wal_mu_) = 0;
  /// First WAL segment the current manifest covers (replay floor).
  uint64_t wal_start_segment_ GUARDED_BY(wal_mu_) = 0;

  mutable common::Mutex catalog_mu_ ACQUIRED_AFTER(wal_mu_);
  std::map<std::string, std::shared_ptr<SharedMod>> mods_
      GUARDED_BY(catalog_mu_);

  IngestQueue queue_;
  /// Spawned once in `Start` (before any concurrent access exists) and
  /// joined in `Shutdown` under `shutdown_mu_`.
  std::thread worker_;
  /// Serializes Shutdown against itself (dtor + explicit call).
  common::Mutex shutdown_mu_;

  common::Mutex flush_mu_;
  std::condition_variable flush_cv_;
  uint64_t applied_seq_ GUARDED_BY(flush_mu_) = 0;

  // Counters (relaxed: monotonic observability, no ordering contract).
  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> sessions_active_{0};
  std::atomic<uint64_t> batches_enqueued_{0};
  std::atomic<uint64_t> batches_applied_{0};
  std::atomic<uint64_t> trajectories_ingested_{0};
  std::atomic<uint64_t> ingest_errors_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> snapshots_published_{0};
  std::atomic<uint64_t> tree_catchups_{0};
  std::atomic<uint64_t> wal_records_appended_{0};
  std::atomic<uint64_t> wal_bytes_appended_{0};
  std::atomic<uint64_t> wal_syncs_{0};
  std::atomic<uint64_t> wal_errors_{0};
  std::atomic<uint64_t> checkpoints_taken_{0};
  std::atomic<uint64_t> wal_records_replayed_{0};
  std::atomic<uint64_t> wal_torn_bytes_dropped_{0};
};

}  // namespace hermes::service

#endif  // HERMES_SERVICE_SERVER_H_
