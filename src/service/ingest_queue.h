#ifndef HERMES_SERVICE_INGEST_QUEUE_H_
#define HERMES_SERVICE_INGEST_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "traj/trajectory.h"

namespace hermes::service {

/// \brief One queued unit of asynchronous ingest: the trajectories of one
/// `INSERT INTO <mod> ...` statement, bound for one MOD.
struct IngestBatch {
  std::string mod;  ///< Canonical (upper-case) MOD name.
  std::vector<traj::Trajectory> trajectories;
  /// Monotonic ticket assigned by `Push`; `FLUSH` waits until the worker
  /// reports every ticket issued before the flush as applied.
  uint64_t seq = 0;
};

/// \brief Bounded MPSC queue between client sessions (producers) and the
/// server's single ingest worker (consumer).
///
/// `Push` blocks while the queue is at capacity — backpressure instead of
/// unbounded memory under ingest storms. `PopAll` hands the worker every
/// pending batch at once so one drain amortizes the per-batch store
/// snapshot republication.
class IngestQueue {
 public:
  explicit IngestQueue(size_t capacity = 1024);

  /// Enqueues `batch` (blocking while full) and returns its ticket.
  /// `Unavailable` once the queue is closed (server shutdown).
  StatusOr<uint64_t> Push(IngestBatch batch);

  /// Blocks until batches are pending — swapping them all, in enqueue
  /// order, into `*out` — or the queue is closed and drained (returns
  /// false, `*out` left empty).
  bool PopAll(std::vector<IngestBatch>* out);

  /// Fails later `Push`es and wakes the worker so it can drain the
  /// remainder and exit. Idempotent.
  void Close();

  /// Ticket of the most recently enqueued batch (0 = none yet).
  uint64_t last_enqueued_seq() const;

  /// Batches currently pending (queued, not yet popped).
  size_t depth() const;

 private:
  mutable common::Mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<IngestBatch> pending_ GUARDED_BY(mu_);
  const size_t capacity_;
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace hermes::service

#endif  // HERMES_SERVICE_INGEST_QUEUE_H_
