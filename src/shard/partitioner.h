#ifndef HERMES_SHARD_PARTITIONER_H_
#define HERMES_SHARD_PARTITIONER_H_

#include <cstdint>
#include <memory>
#include <string>

namespace hermes::shard {

/// \brief Maps an object id to the shard that owns it.
///
/// The partition key is the *object* id (not trajectory or point):
/// every sub-trajectory of one moving object must land on one shard, so
/// that per-object point order — which the clustering pipeline depends
/// on — is a purely shard-local property. The mapping must be a pure
/// function of (object id, shard count): routing is deterministic and
/// stateless, so any coordinator instance (today's in-process one or a
/// future remote router) agrees on ownership without coordination.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// The owning shard for `object_id`, in `[0, num_shards)`.
  /// `num_shards` is always >= 1.
  virtual size_t ShardOf(uint64_t object_id, size_t num_shards) const = 0;

  /// Stable identifier for logs and stats.
  virtual std::string name() const = 0;
};

/// The default: FNV-1a over the object id's little-endian bytes, modulo
/// the shard count. Mixing through FNV (rather than `id % n`) keeps
/// striding id sequences — datagen emits 0..N-1 — from aliasing with
/// the shard count.
std::unique_ptr<Partitioner> MakeHashPartitioner();

}  // namespace hermes::shard

#endif  // HERMES_SHARD_PARTITIONER_H_
