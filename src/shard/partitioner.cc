#include "shard/partitioner.h"

namespace hermes::shard {

namespace {

class HashPartitioner final : public Partitioner {
 public:
  size_t ShardOf(uint64_t object_id, size_t num_shards) const override {
    if (num_shards <= 1) return 0;
    // FNV-1a, 64-bit, over the id's 8 little-endian bytes.
    uint64_t h = 1469598103934665603ull;
    for (int i = 0; i < 8; ++i) {
      h ^= (object_id >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h % num_shards);
  }

  std::string name() const override { return "hash"; }
};

}  // namespace

std::unique_ptr<Partitioner> MakeHashPartitioner() {
  return std::make_unique<HashPartitioner>();
}

}  // namespace hermes::shard
