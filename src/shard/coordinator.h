#ifndef HERMES_SHARD_COORDINATOR_H_
#define HERMES_SHARD_COORDINATOR_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "core/retratree.h"
#include "exec/exec_context.h"
#include "service/server.h"
#include "service/service_config.h"
#include "shard/partitioner.h"
#include "sql/cursor.h"
#include "sql/statement_executor.h"
#include "storage/env.h"
#include "traj/trajectory_store.h"

namespace hermes::shard {

/// Coordinator-level counters: the shard-wise aggregate plus each
/// shard's own `service::ServiceStats` (the `SHOW SERVICE STATS`
/// breakdown rows).
struct CoordinatorStats {
  service::ServiceStats total;
  std::vector<service::ServiceStats> per_shard;
};

/// \brief Scatter–gather front end over N single-writer `service::Server`
/// shards, speaking the same SQL dialect through the same
/// `sql::StatementExecutor` interface as every other backend.
///
/// Ownership / threading:
///
///  - The coordinator owns the env (shared by all shards, each under its
///    own `data_dir/shard<k>` subtree), one `ExecContext` for merges and
///    merged-tree builds, the partitioner, and the N shard servers. It
///    must outlive every session it connects.
///  - Statement routing (see docs/SQL.md "Sharded execution"):
///    DDL (`CREATE`/`DROP` MOD), `FLUSH`, and `CHECKPOINT` broadcast to
///    every shard; `INSERT` routes each row to the owning shard by the
///    partitioner (object-id hash); `RANGE` and `STATS` scatter to all
///    shards and gather — `RANGE` merges row-wise with a stable sort on
///    the object-id key (never arrival order), `STATS` folds the
///    per-shard aggregates exactly (sums for counts, min/max for
///    domains). Clustering analytics (`S2T`, `S2T_MEMBERS`, `QUT`,
///    `TRACLUS`, ...) are *not* shard-decomposable — a cluster may span
///    shards — so they evaluate on a merged snapshot instead.
///  - The merged snapshot is the determinism keystone: per-shard
///    published snapshots are gathered and their trajectories merged in
///    ascending object-id order (stable within an object, and an object
///    lives entirely on one shard), so the merged store — and therefore
///    every analytic result — is bit-identical for any shard count, and
///    identical to the unsharded server whenever objects first appear in
///    ascending id order (the datagen convention). Merged stores and
///    merged QUT trees are cached per MOD and rebuilt only when some
///    shard publishes a new snapshot.
///
/// Startup is atomic: if shard k fails to recover, `Start` fails with a
/// `"shard k: ..."`-prefixed Status and every already-started shard is
/// shut down — a half-started topology never escapes.
class Coordinator {
 public:
  /// Starts every shard from `config` (validated first). `env` defaults
  /// to a private in-memory environment shared by all shards;
  /// `partitioner` defaults to `MakeHashPartitioner()`.
  static StatusOr<std::unique_ptr<Coordinator>> Start(
      service::ServiceConfig config, storage::Env* env = nullptr,
      std::unique_ptr<Partitioner> partitioner = nullptr);

  ~Coordinator();

  /// Shuts every shard down (drains their ingest queues). Idempotent.
  void Shutdown();

  /// Opens an independent coordinator session: its own settings, exec
  /// context, and one statement session per shard. The coordinator must
  /// outlive it.
  std::unique_ptr<sql::StatementExecutor> Connect();

  /// Splits `store` by the partitioner and registers each piece on its
  /// owning shard (every shard gets the MOD, possibly empty) — the bulk
  /// seeding path mirroring `service::Server::RegisterStore`.
  Status RegisterStore(const std::string& name, traj::TrajectoryStore store);

  /// Loads a CSV, routes each trajectory to its owning shard, and
  /// flushes; returns the MOD's post-load (trajectories, points) totals
  /// — the sharded counterpart of `service::Server::LoadMod` (the MOD is
  /// created on every shard if absent).
  StatusOr<std::pair<size_t, size_t>> LoadMod(const std::string& name,
                                              const std::string& path);

  /// Blocks until every shard's queued ingest is applied and visible.
  Status Flush();

  /// Point-in-time counters: aggregate + per-shard breakdown.
  CoordinatorStats Stats() const;

  /// The MOD's merged snapshot across all shards (cached; rebuilt only
  /// when a shard republished). Canonical object-id order — see the
  /// class comment for the determinism contract.
  StatusOr<std::shared_ptr<const traj::TrajectoryStore>> GatherSnapshot(
      const std::string& name);

  /// QUT over the MOD's merged tree (built from the merged snapshot,
  /// cached until the merge changes). Same locking shape as
  /// `service::Server::QutQuery`: fresh-tree queries run under a shared
  /// lock, rebuilds take it exclusive.
  StatusOr<std::unique_ptr<sql::RowCursor>> QutQuery(
      const std::string& name, double wi, double we,
      const std::vector<double>& tree_params, exec::ExecStats* session_stats);

  size_t num_shards() const { return shards_.size(); }
  const service::ServiceConfig& config() const { return config_; }
  const Partitioner& partitioner() const { return *partitioner_; }
  /// Direct shard access (tests, drain paths). `k < num_shards()`.
  service::Server* shard(size_t k) { return shards_[k].get(); }

 private:
  /// One MOD's merged view. `sources` records the per-shard snapshot
  /// identities the cache was built from (held shared so a pointer can
  /// never be reused while we still compare against it); `merged` is the
  /// canonical-order merge of exactly those snapshots; the tree is built
  /// over `merged` and `tree_store` pins the snapshot it consumed.
  struct MergedMod {
    /// Writers rebuild the merge/tree; QUT readers on a fresh cache take
    /// it shared, so concurrent queries proceed in parallel.
    common::SharedMutex mu;
    std::vector<std::shared_ptr<const traj::TrajectoryStore>> sources
        GUARDED_BY(mu);
    std::shared_ptr<const traj::TrajectoryStore> merged GUARDED_BY(mu);
    std::unique_ptr<core::ReTraTree> tree GUARDED_BY(mu);
    std::vector<double> tree_params GUARDED_BY(mu);
    /// The merged snapshot `tree` was built from (rebuild when it moves).
    std::shared_ptr<const traj::TrajectoryStore> tree_store GUARDED_BY(mu);
    uint64_t tree_seq GUARDED_BY(mu) = 0;
  };

  Coordinator(service::ServiceConfig config, storage::Env* env,
              std::unique_ptr<Partitioner> partitioner);

  std::shared_ptr<MergedMod> FindOrCreateMerged(const std::string& canonical);
  /// Rebuilds `mm->merged` from `snaps` (dropping the stale tree).
  Status RebuildMerged(MergedMod* mm,
                       std::vector<std::shared_ptr<const traj::TrajectoryStore>>
                           snaps) REQUIRES(mm->mu);
  /// Per-shard published snapshots of the MOD, in shard order.
  StatusOr<std::vector<std::shared_ptr<const traj::TrajectoryStore>>>
  ShardSnapshots(const std::string& canonical) const;

  service::ServiceConfig config_;
  std::unique_ptr<storage::Env> owned_env_;
  storage::Env* env_;
  std::unique_ptr<exec::ExecContext> exec_;
  std::unique_ptr<Partitioner> partitioner_;
  /// Started once in `Start`, immutable afterwards.
  std::vector<std::unique_ptr<service::Server>> shards_;

  mutable common::Mutex merged_mu_;
  std::map<std::string, std::shared_ptr<MergedMod>> merged_
      GUARDED_BY(merged_mu_);

  /// Serializes Shutdown against itself (dtor + explicit call).
  common::Mutex shutdown_mu_;
  bool shut_down_ GUARDED_BY(shutdown_mu_) = false;
};

}  // namespace hermes::shard

#endif  // HERMES_SHARD_COORDINATOR_H_
